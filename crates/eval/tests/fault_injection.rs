//! Fault-injection harness: every recovery path of the fault-tolerant
//! trainer is exercised against deliberate damage — NaN losses/parameters
//! injected mid-run, retry budgets exhausted, and checkpoint files
//! corrupted, truncated, or stamped with a future format version.

use facility_ckpt::{CkptError, ModelState};
use facility_eval::trainer::{DivergenceCause, TrainError, TrainSettings};
use facility_eval::{checkpoint_path, train_resumed, try_train};
use facility_kg::{CkgBuilder, Id, Interactions, KnowledgeSource, SourceMask};
use facility_models::{EpochProfile, ModelConfig, ModelKind, Recommender, TrainContext};
use rand::rngs::StdRng;
use std::path::PathBuf;

fn world() -> (Interactions, facility_kg::Ckg) {
    let mut events: Vec<(Id, Id)> = Vec::new();
    for u in 0..12u32 {
        for j in 0..5u32 {
            events.push((u, (u % 4) * 5 + j));
        }
    }
    let inter = Interactions::split(12, 20, &events, 0.25, &mut facility_linalg::seeded_rng(0));
    let mut b = CkgBuilder::new(12, 20);
    b.add_interactions(&inter.train_pairs);
    for i in 0..20u32 {
        b.add_item_attribute(KnowledgeSource::Dkg, "hasDataType", i, format!("t:{}", i / 5));
    }
    (inter.clone(), b.build(SourceMask::all()))
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("facility-fault-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// What the injector damages when it fires.
#[derive(Clone, Copy, PartialEq)]
enum Poison {
    /// Replace the epoch's loss with NaN (a NaN gradient reaching the
    /// reported loss).
    Loss,
    /// Leave the loss finite but report non-finite parameters.
    Params,
    /// Fire on every epoch — the retry budget must run out.
    LossAlways,
}

/// Wraps a real model and injects one (or an endless stream of) NaN
/// faults at a chosen `train_epoch` call, delegating everything else.
struct Injector {
    inner: Box<dyn Recommender>,
    poison: Poison,
    fire_at_call: usize,
    calls: usize,
    fired: bool,
    params_poisoned: bool,
    lr_factors: Vec<f32>,
}

impl Injector {
    fn new(inner: Box<dyn Recommender>, poison: Poison, fire_at_call: usize) -> Self {
        Self {
            inner,
            poison,
            fire_at_call,
            calls: 0,
            fired: false,
            params_poisoned: false,
            lr_factors: Vec::new(),
        }
    }
}

impl Recommender for Injector {
    fn name(&self) -> String {
        self.inner.name()
    }

    fn train_epoch(&mut self, ctx: &TrainContext<'_>, rng: &mut StdRng) -> f32 {
        self.calls += 1;
        let loss = self.inner.train_epoch(ctx, rng);
        match self.poison {
            Poison::LossAlways => f32::NAN,
            Poison::Loss if self.calls == self.fire_at_call && !self.fired => {
                self.fired = true;
                f32::NAN
            }
            Poison::Params if self.calls == self.fire_at_call && !self.fired => {
                self.fired = true;
                self.params_poisoned = true;
                loss
            }
            _ => loss,
        }
    }

    fn prepare_eval(&mut self, ctx: &TrainContext<'_>) {
        self.inner.prepare_eval(ctx)
    }

    fn score_items(&self, user: Id) -> Vec<f32> {
        self.inner.score_items(user)
    }

    fn num_parameters(&self) -> usize {
        self.inner.num_parameters()
    }

    fn take_epoch_profile(&mut self) -> Option<EpochProfile> {
        self.inner.take_epoch_profile()
    }

    fn save_state(&self) -> ModelState {
        self.inner.save_state()
    }

    fn load_state(&mut self, state: &ModelState) -> Result<(), CkptError> {
        // A rollback heals the injected parameter poison.
        self.params_poisoned = false;
        self.inner.load_state(state)
    }

    fn scale_lr(&mut self, factor: f32) {
        self.lr_factors.push(factor);
        self.inner.scale_lr(factor)
    }

    fn params_finite(&mut self) -> bool {
        !self.params_poisoned && self.inner.params_finite()
    }
}

fn settings(max_epochs: usize) -> TrainSettings {
    TrainSettings {
        max_epochs,
        eval_every: 2,
        patience: 0,
        k: 5,
        seed: 3,
        ..TrainSettings::default()
    }
}

fn build_injected(
    poison: Poison,
    fire_at_call: usize,
) -> (Injector, Interactions, facility_kg::Ckg) {
    let (inter, ckg) = world();
    let model = {
        let ctx = TrainContext { inter: &inter, ckg: &ckg };
        ModelKind::Bprmf.build(&ctx, &ModelConfig::fast())
    };
    (Injector::new(model, poison, fire_at_call), inter, ckg)
}

#[test]
fn nan_loss_triggers_rollback_lr_halving_and_run_completes() {
    let (mut model, inter, ckg) = build_injected(Poison::Loss, 3);
    let ctx = TrainContext { inter: &inter, ckg: &ckg };
    let report = try_train(&mut model, &ctx, &settings(6)).expect("run recovers and completes");

    // The retry is visible in the report...
    assert_eq!(report.divergences.len(), 1);
    let d = report.divergences[0];
    assert_eq!(d.epoch, 3);
    assert_eq!(d.retry, 1);
    assert_eq!(d.cause, DivergenceCause::NonFiniteLoss);
    assert!(d.loss.is_nan());
    // ...the learning rate was halved exactly once...
    assert_eq!(model.lr_factors, vec![0.5]);
    // ...and the run still reaches finite best-epoch metrics.
    assert!(report.best.recall.is_finite());
    assert!(report.best_epoch >= 1);
    assert_eq!(report.logs.len(), 6, "all epochs completed after recovery");
    assert!(report.logs.iter().all(|l| l.loss.is_finite()), "no NaN epoch was logged");
}

#[test]
fn nan_params_are_caught_by_the_guard_too() {
    let (mut model, inter, ckg) = build_injected(Poison::Params, 2);
    let ctx = TrainContext { inter: &inter, ckg: &ckg };
    let report = try_train(&mut model, &ctx, &settings(4)).expect("run recovers");
    assert_eq!(report.divergences.len(), 1);
    assert_eq!(report.divergences[0].cause, DivergenceCause::NonFiniteParams);
    assert_eq!(model.lr_factors, vec![0.5]);
    assert!(report.best.recall.is_finite());
}

#[test]
fn exhausted_retry_budget_is_a_structured_error() {
    let (mut model, inter, ckg) = build_injected(Poison::LossAlways, 0);
    let ctx = TrainContext { inter: &inter, ckg: &ckg };
    let err = try_train(&mut model, &ctx, &settings(6)).expect_err("cannot recover");
    match &err {
        TrainError::Diverged { model: name, epoch, retries_used, events } => {
            assert_eq!(name, "BPRMF");
            assert_eq!(*epoch, 1, "never got past the first epoch");
            assert_eq!(*retries_used, 2, "default budget is 2");
            assert_eq!(events.len(), 3, "every attempt is on record");
        }
        other => panic!("expected Diverged, got {other}"),
    }
    let msg = err.to_string();
    assert!(msg.contains("BPRMF diverged at epoch 1"), "{msg}");
    assert!(msg.contains("NonFiniteLoss"), "{msg}");
}

/// Write a healthy 2-epoch checkpoint and return its path.
fn healthy_checkpoint(tag: &str) -> (PathBuf, PathBuf, Interactions, facility_kg::Ckg) {
    let (inter, ckg) = world();
    let dir = tmpdir(tag);
    {
        let ctx = TrainContext { inter: &inter, ckg: &ckg };
        let mut model = ModelKind::Bprmf.build(&ctx, &ModelConfig::fast());
        let mut s = settings(2);
        s.ckpt_every = 2;
        s.ckpt_dir = Some(dir.clone());
        try_train(model.as_mut(), &ctx, &s).expect("trains");
    }
    (checkpoint_path(&dir, 2), dir, inter, ckg)
}

fn resume_from(path: &std::path::Path, inter: &Interactions, ckg: &facility_kg::Ckg) -> TrainError {
    let ctx = TrainContext { inter, ckg };
    let mut model = ModelKind::Bprmf.build(&ctx, &ModelConfig::fast());
    train_resumed(model.as_mut(), &ctx, &settings(4), path)
        .expect_err("damaged checkpoint must be rejected")
}

#[test]
fn corrupted_checkpoint_is_a_checksum_error_not_a_panic() {
    let (ckpt, dir, inter, ckg) = healthy_checkpoint("corrupt");
    let mut raw = std::fs::read(&ckpt).unwrap();
    let mid = raw.len() / 2;
    raw[mid] ^= 0x08;
    std::fs::write(&ckpt, &raw).unwrap();
    match resume_from(&ckpt, &inter, &ckg) {
        TrainError::Checkpoint(CkptError::Checksum { .. }) => {}
        other => panic!("expected a checksum error, got {other}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_checkpoint_is_a_format_error_not_a_panic() {
    let (ckpt, dir, inter, ckg) = healthy_checkpoint("truncate");
    let raw = std::fs::read(&ckpt).unwrap();
    std::fs::write(&ckpt, &raw[..raw.len() / 3]).unwrap();
    match resume_from(&ckpt, &inter, &ckg) {
        TrainError::Checkpoint(CkptError::Format(_)) => {}
        other => panic!("expected a format error, got {other}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_forward_compat_rejects_unknown_version() {
    let (ckpt, dir, inter, ckg) = healthy_checkpoint("version");
    let mut raw = std::fs::read(&ckpt).unwrap();
    raw[4] = 250; // a future format version this build cannot read
    std::fs::write(&ckpt, &raw).unwrap();
    match resume_from(&ckpt, &inter, &ckg) {
        TrainError::Checkpoint(CkptError::Version(250)) => {}
        other => panic!("expected a version error, got {other}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}
