//! Differential resume-determinism suite (style of
//! `crates/models/tests/batch_local_diff.rs`): an interrupted-then-resumed
//! training run must be **bitwise identical** (`f32::to_bits`) to an
//! uninterrupted run — parameters, Adam moments, and the `TrainReport`
//! logs all agree, with dropout on so the RNG round-trip is exercised.

use facility_ckpt::{CkptError, ModelState};
use facility_eval::trainer::TrainSettings;
use facility_eval::{checkpoint_path, train_resumed, try_train, ShutdownFlag, TrainReport};
use facility_kg::{CkgBuilder, Id, Interactions, KnowledgeSource, SourceMask};
use facility_models::{EpochProfile, ModelConfig, ModelKind, Recommender, TrainContext};
use rand::rngs::StdRng;
use std::path::PathBuf;

fn world() -> (Interactions, facility_kg::Ckg) {
    let mut events: Vec<(Id, Id)> = Vec::new();
    for u in 0..16u32 {
        for j in 0..6u32 {
            events.push((u, (u % 4) * 6 + j));
        }
    }
    let inter = Interactions::split(16, 24, &events, 0.25, &mut facility_linalg::seeded_rng(0));
    let mut b = CkgBuilder::new(16, 24);
    b.add_interactions(&inter.train_pairs);
    for i in 0..24u32 {
        b.add_item_attribute(KnowledgeSource::Dkg, "hasDataType", i, format!("t:{}", i / 6));
    }
    (inter.clone(), b.build(SourceMask::all()))
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("facility-resume-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Dropout on (`keep_prob < 1`), so determinism requires the epoch RNG
/// streams to round-trip through the checkpoint.
fn config() -> ModelConfig {
    ModelConfig { keep_prob: 0.8, ..ModelConfig::fast() }
}

fn settings(max_epochs: usize) -> TrainSettings {
    TrainSettings {
        max_epochs,
        eval_every: 2,
        patience: 0,
        k: 5,
        seed: 11,
        ..TrainSettings::default()
    }
}

fn assert_states_bitwise(a: &ModelState, b: &ModelState, what: &str) {
    assert_eq!(a.params.len(), b.params.len(), "{what}: parameter count");
    for ((name_a, ma), (name_b, mb)) in a.params.iter().zip(&b.params) {
        assert_eq!(name_a, name_b, "{what}: parameter order");
        assert_eq!(ma.shape(), mb.shape(), "{what}: `{name_a}` shape");
        for (i, (x, y)) in ma.as_slice().iter().zip(mb.as_slice()).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: `{name_a}`[{i}] differs: {x} vs {y}");
        }
    }
    assert_eq!(a.adam.lr.to_bits(), b.adam.lr.to_bits(), "{what}: adam lr");
    assert_eq!(a.adam.t, b.adam.t, "{what}: adam step counts");
    for (which, (xs, ys)) in [(&a.adam.m, &b.adam.m), (&a.adam.v, &b.adam.v)].iter().enumerate() {
        for (slot, (ma, mb)) in xs.iter().zip(ys.iter()).enumerate() {
            match (ma, mb) {
                (None, None) => {}
                (Some(ma), Some(mb)) => {
                    for (x, y) in ma.as_slice().iter().zip(mb.as_slice()) {
                        assert_eq!(x.to_bits(), y.to_bits(), "{what}: adam moment {which}[{slot}]");
                    }
                }
                _ => panic!("{what}: adam moment {which} slot {slot} presence differs"),
            }
        }
    }
}

fn assert_reports_identical(a: &TrainReport, b: &TrainReport) {
    assert_eq!(a.model, b.model);
    assert_eq!(a.best_epoch, b.best_epoch, "best epoch");
    assert_eq!(a.best.recall.to_bits(), b.best.recall.to_bits(), "best recall");
    assert_eq!(a.logs.len(), b.logs.len(), "log length");
    for (la, lb) in a.logs.iter().zip(&b.logs) {
        assert_eq!(la.epoch, lb.epoch);
        assert_eq!(
            la.loss.to_bits(),
            lb.loss.to_bits(),
            "epoch {} loss: {} vs {}",
            la.epoch,
            la.loss,
            lb.loss
        );
        match (&la.eval, &lb.eval) {
            (None, None) => {}
            (Some(ea), Some(eb)) => {
                assert_eq!(ea.recall.to_bits(), eb.recall.to_bits(), "epoch {} eval", la.epoch);
                assert_eq!(ea.ndcg.to_bits(), eb.ndcg.to_bits(), "epoch {} ndcg", la.epoch);
            }
            _ => panic!("epoch {}: eval presence differs", la.epoch),
        }
    }
    assert_eq!(a.divergences.len(), b.divergences.len());
}

/// Train `2n` epochs straight vs. `n` epochs → checkpoint → restore →
/// `n` more, and demand bitwise-identical state and reports.
fn check_resume_is_bitwise(kind: ModelKind, tag: &str) {
    check_resume_is_bitwise_cfg(kind, &config(), &config(), tag);
}

/// [`check_resume_is_bitwise`] with explicit configs: the straight run
/// and the first leg use `cfg`, the resumed leg uses `resume_cfg` (they
/// may differ only in ways that keep the gradient schedule identical,
/// e.g. two nonzero replica counts).
fn check_resume_is_bitwise_cfg(
    kind: ModelKind,
    cfg: &ModelConfig,
    resume_cfg: &ModelConfig,
    tag: &str,
) {
    let (inter, ckg) = world();
    let ctx = TrainContext { inter: &inter, ckg: &ckg };

    // Uninterrupted run: 8 epochs, no checkpointing.
    let mut straight = kind.build(&ctx, cfg);
    let report_straight =
        try_train(straight.as_mut(), &ctx, &settings(8)).expect("straight run trains");

    // Interrupted run: 4 epochs with a checkpoint at 4, then a *fresh*
    // model restores and continues to 8 (simulating a killed process —
    // nothing survives in memory).
    let dir = tmpdir(tag);
    let mut first_leg = kind.build(&ctx, cfg);
    let mut s4 = settings(4);
    s4.ckpt_every = 4;
    s4.ckpt_dir = Some(dir.clone());
    try_train(first_leg.as_mut(), &ctx, &s4).expect("first leg trains");
    drop(first_leg);

    let mut resumed = kind.build(&ctx, resume_cfg);
    let report_resumed =
        train_resumed(resumed.as_mut(), &ctx, &settings(8), &checkpoint_path(&dir, 4))
            .expect("resume trains");

    assert_eq!(report_resumed.resumed_from, Some(4));
    assert_states_bitwise(&straight.save_state(), &resumed.save_state(), tag);
    assert_reports_identical(&report_straight, &report_resumed);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bprmf_resume_is_bitwise_identical() {
    check_resume_is_bitwise(ModelKind::Bprmf, "bprmf");
}

#[test]
fn ckat_resume_is_bitwise_identical() {
    check_resume_is_bitwise(ModelKind::Ckat, "ckat");
}

/// Interrupt a replica-mode (`R = 4`) run mid-way and resume it — with a
/// *different* nonzero replica count — and demand the result is bitwise
/// identical to the uninterrupted run. The macro-step schedule is a pure
/// function of the seed, so the thread count may change freely across a
/// save/resume boundary.
#[test]
fn ckat_replica_resume_is_bitwise_identical() {
    let four = ModelConfig { replicas: 4, ..config() };
    let two = ModelConfig { replicas: 2, ..config() };
    check_resume_is_bitwise_cfg(ModelKind::Ckat, &four, &two, "ckat-replica");
}

#[test]
fn bprmf_replica_resume_is_bitwise_identical() {
    let four = ModelConfig { replicas: 4, ..config() };
    check_resume_is_bitwise_cfg(ModelKind::Bprmf, &four, &four, "bprmf-replica");
}

/// A checkpoint written in one training *mode* (legacy per-batch vs.
/// replica macro-step) must refuse to resume in the other: the two paths
/// draw different RNG schedules and would silently diverge.
#[test]
fn resume_refuses_replica_mode_change() {
    let (inter, ckg) = world();
    let ctx = TrainContext { inter: &inter, ckg: &ckg };
    let dir = tmpdir("mode-change");

    // Legacy-mode checkpoint...
    let legacy_cfg = config();
    let mut model = ModelKind::Bprmf.build(&ctx, &legacy_cfg);
    let mut s = settings(2);
    s.ckpt_every = 2;
    s.ckpt_dir = Some(dir.clone());
    try_train(model.as_mut(), &ctx, &s).expect("trains");
    let ckpt = checkpoint_path(&dir, 2);

    // ...must not resume in replica mode.
    let replica_cfg = ModelConfig { replicas: 2, ..config() };
    let mut replica = ModelKind::Bprmf.build(&ctx, &replica_cfg);
    let err = train_resumed(replica.as_mut(), &ctx, &settings(4), &ckpt)
        .expect_err("legacy checkpoint must not resume in replica mode");
    assert!(err.to_string().contains("replicas"), "{err}");

    // And the reverse: a replica-mode checkpoint refuses a legacy resume.
    let rdir = tmpdir("mode-change-rev");
    let mut rmodel = ModelKind::Bprmf.build(&ctx, &replica_cfg);
    let mut rs = settings(2);
    rs.ckpt_every = 2;
    rs.ckpt_dir = Some(rdir.clone());
    try_train(rmodel.as_mut(), &ctx, &rs).expect("trains");
    let rckpt = checkpoint_path(&rdir, 2);
    let mut back = ModelKind::Bprmf.build(&ctx, &legacy_cfg);
    let err = train_resumed(back.as_mut(), &ctx, &settings(4), &rckpt)
        .expect_err("replica checkpoint must not resume in legacy mode");
    assert!(err.to_string().contains("replicas"), "{err}");

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&rdir);
}

/// Wraps a model and requests a cooperative shutdown after `after`
/// completed epochs — a deterministic stand-in for `^C` landing mid-run.
/// Everything else delegates, so the wrapped runs train identically.
struct StopAfter {
    inner: Box<dyn Recommender>,
    after: usize,
    trained: usize,
    flag: ShutdownFlag,
}

impl Recommender for StopAfter {
    fn name(&self) -> String {
        self.inner.name()
    }
    fn train_epoch(&mut self, ctx: &TrainContext<'_>, rng: &mut StdRng) -> f32 {
        let loss = self.inner.train_epoch(ctx, rng);
        self.trained += 1;
        if self.trained == self.after {
            self.flag.request();
        }
        loss
    }
    fn prepare_eval(&mut self, ctx: &TrainContext<'_>) {
        self.inner.prepare_eval(ctx)
    }
    fn score_items(&self, user: Id) -> Vec<f32> {
        self.inner.score_items(user)
    }
    fn eval_matrices(&self) -> Option<(&facility_linalg::Matrix, &facility_linalg::Matrix)> {
        self.inner.eval_matrices()
    }
    fn num_parameters(&self) -> usize {
        self.inner.num_parameters()
    }
    fn take_epoch_profile(&mut self) -> Option<EpochProfile> {
        self.inner.take_epoch_profile()
    }
    fn save_state(&self) -> ModelState {
        self.inner.save_state()
    }
    fn load_state(&mut self, state: &ModelState) -> Result<(), CkptError> {
        self.inner.load_state(state)
    }
    fn scale_lr(&mut self, factor: f32) {
        self.inner.scale_lr(factor)
    }
    fn replicas(&self) -> usize {
        self.inner.replicas()
    }
    fn params_finite(&mut self) -> bool {
        self.inner.params_finite()
    }
}

/// A shutdown request mid-run must (a) surface in the report, (b) leave a
/// final checkpoint behind even with periodic checkpointing *disabled*,
/// and (c) resume into a run bitwise identical to never having stopped.
#[test]
fn interrupted_run_writes_final_checkpoint_and_resumes_bitwise() {
    let (inter, ckg) = world();
    let ctx = TrainContext { inter: &inter, ckg: &ckg };
    let cfg = config();

    // Uninterrupted reference: 8 epochs straight.
    let mut straight = ModelKind::Bprmf.build(&ctx, &cfg);
    let report_straight =
        try_train(straight.as_mut(), &ctx, &settings(8)).expect("straight run trains");

    // Interrupted leg: the "signal" lands after epoch 3. `ckpt_every`
    // stays 0, so the only checkpoint on disk is the interrupt-time one.
    let dir = tmpdir("interrupt");
    let flag = ShutdownFlag::new();
    let mut wrapped = StopAfter {
        inner: ModelKind::Bprmf.build(&ctx, &cfg),
        after: 3,
        trained: 0,
        flag: flag.clone(),
    };
    let mut s = settings(8);
    s.ckpt_dir = Some(dir.clone());
    s.stop = Some(flag);
    let report = try_train(&mut wrapped, &ctx, &s).expect("interrupted leg trains");
    assert!(report.interrupted, "stop request must surface in the report");
    assert_eq!(report.logs.len(), 3, "stopped at the epoch-3 boundary");
    let ckpt = checkpoint_path(&dir, 3);
    assert!(ckpt.exists(), "final checkpoint written off the periodic cadence");
    drop(wrapped); // simulate the killed process: nothing survives in memory

    // Fresh model resumes from the final checkpoint and finishes.
    let mut resumed = ModelKind::Bprmf.build(&ctx, &cfg);
    let report_resumed =
        train_resumed(resumed.as_mut(), &ctx, &settings(8), &ckpt).expect("resume trains");
    assert!(!report_resumed.interrupted);
    assert_eq!(report_resumed.resumed_from, Some(3));
    assert_states_bitwise(&straight.save_state(), &resumed.save_state(), "interrupt");
    assert_reports_identical(&report_straight, &report_resumed);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_refuses_wrong_model_and_wrong_seed() {
    let (inter, ckg) = world();
    let ctx = TrainContext { inter: &inter, ckg: &ckg };
    let cfg = config();
    let dir = tmpdir("mismatch");

    let mut model = ModelKind::Bprmf.build(&ctx, &cfg);
    let mut s = settings(2);
    s.ckpt_every = 2;
    s.ckpt_dir = Some(dir.clone());
    try_train(model.as_mut(), &ctx, &s).expect("trains");
    let ckpt = checkpoint_path(&dir, 2);

    // Wrong model kind.
    let mut other = ModelKind::Fm.build(&ctx, &cfg);
    let err = train_resumed(other.as_mut(), &ctx, &settings(4), &ckpt)
        .expect_err("FM must not resume a BPRMF checkpoint");
    assert!(err.to_string().contains("BPRMF"), "{err}");

    // Right model, wrong seed: the derived RNG streams would change.
    let mut same = ModelKind::Bprmf.build(&ctx, &cfg);
    let mut wrong_seed = settings(4);
    wrong_seed.seed = 999;
    let err = train_resumed(same.as_mut(), &ctx, &wrong_seed, &ckpt)
        .expect_err("wrong seed must be refused");
    assert!(err.to_string().contains("seed"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}
