//! Differential suite: the batched retrieval engine
//! (`facility_linalg::retrieval`) vs the per-query ranking oracle
//! (`facility_eval::rank_top_k`).
//!
//! The retrieval crate's own tests compare against a longhand reference
//! comparator (linalg cannot depend on eval); this suite closes the loop
//! against the *actual* production oracle. Every case demands
//! item-and-bit identical output: same ids in the same order, and the
//! returned score bits equal to the scanned score bits.
//!
//! The `d = 1, query = 1.0` trick pins the blocked scores exactly:
//! `1.0 * s` is bitwise `s` for every finite `s`, so we can hand the
//! engine adversarial score vectors (duplicates, signed zeros, equal
//! runs straddling tile boundaries) with full control.

use facility_eval::rank_top_k;
use facility_linalg::retrieval::{BatchTopK, TopKSelector};

/// Compare one ranked list against the oracle, bit for bit.
fn assert_ranked_eq(got: &[(u32, f32)], want: &[(u32, f32)], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length {} vs {}", got.len(), want.len());
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(g.0, w.0, "{what}: rank {i} id {} vs {}", g.0, w.0);
        assert_eq!(g.1.to_bits(), w.1.to_bits(), "{what}: rank {i} score {} vs {}", g.1, w.1);
    }
}

/// Run `scores` through a bare selector (no masking) and compare.
fn selector_vs_oracle(scores: &[f32], exclude: &[u32], k: usize, what: &str) {
    let mut sel = TopKSelector::new(k);
    for (i, &s) in scores.iter().enumerate() {
        let id = i as u32;
        if exclude.binary_search(&id).is_err() {
            sel.offer(id, s);
        }
    }
    let got = sel.into_sorted();
    let want = rank_top_k(scores, exclude, k);
    assert_ranked_eq(&got, &want, what);
}

#[test]
fn selector_matches_oracle_on_duplicates_and_signed_zeros() {
    let cases: Vec<Vec<f32>> = vec![
        vec![1.0, 1.0, 1.0, 1.0],           // all tied
        vec![0.0, -0.0, 0.0, -0.0, 1.0],    // signed-zero ties
        vec![2.0, 2.0, 1.0, 2.0, 0.5, 2.0], // duplicate runs
        vec![-1.0, -1.0, -2.0, -1.0],       // negative ties
        vec![f32::MIN_POSITIVE, 0.0, -f32::MIN_POSITIVE, -0.0],
        (0..100).map(|i| ((i * 37) % 10) as f32 / 3.0).collect(), // many collisions
    ];
    for (ci, scores) in cases.iter().enumerate() {
        for k in [0usize, 1, 2, 3, scores.len(), scores.len() * 2] {
            selector_vs_oracle(scores, &[], k, &format!("case {ci} k={k}"));
        }
        // With a mask covering every other id.
        let mask: Vec<u32> = (0..scores.len() as u32).step_by(2).collect();
        selector_vs_oracle(scores, &mask, 3, &format!("case {ci} masked"));
        // Fully masked: both must return empty.
        let all: Vec<u32> = (0..scores.len() as u32).collect();
        selector_vs_oracle(scores, &all, 3, &format!("case {ci} fully masked"));
    }
}

/// Build a `d = 1` engine run: each query row is `[1.0]`, the item
/// "matrix" is the score vector itself, so the blocked scan reproduces
/// `scores` for every query.
fn rank_block_d1(
    engine: &mut BatchTopK,
    scores: &[f32],
    excludes: &[&[u32]],
    k: usize,
) -> Vec<Vec<(u32, f32)>> {
    let queries = vec![1.0f32; excludes.len()];
    engine.rank_block(&queries, 1, scores, scores.len(), excludes, k)
}

/// What the per-query path would see for the same `d = 1` model: the
/// same lane-folded dot per item. (Not a plain copy — the kernel's
/// `-0.0 + 0.0` fold canonicalizes `-0.0` inputs to `+0.0`, and the
/// bitwise contract is against the *scanned* scores, which both paths
/// compute identically.)
fn d1_kernel_scores(scores: &[f32]) -> Vec<f32> {
    scores.iter().map(|&s| facility_linalg::kernels::dot(&[1.0], &[s])).collect()
}

#[test]
fn rank_block_matches_oracle_across_tile_boundaries() {
    // 53 items; an equal-score run [1.75; 12] spans indices 14..26 so it
    // straddles tile edges for tile sizes 4, 8, and 16.
    let mut scores: Vec<f32> = (0..53).map(|i| ((i * 29) % 13) as f32 * 0.25).collect();
    for s in scores.iter_mut().skip(14).take(12) {
        *s = 1.75;
    }
    scores[20] = -0.0; // a signed zero inside the run's range
    scores[3] = 0.0;

    // B = 4 queries: unmasked, lightly masked, masked inside the tie run,
    // and fully masked.
    let light: Vec<u32> = vec![0, 7, 30];
    let in_run: Vec<u32> = vec![15, 16, 17, 25];
    let all: Vec<u32> = (0..53).collect();
    let excludes: Vec<&[u32]> = vec![&[], &light, &in_run, &all];

    let kernel_scores = d1_kernel_scores(&scores);
    for tile in [1usize, 4, 8, 16, 53, 1024] {
        for k in [1usize, 5, 12, 53, 200] {
            let mut engine = BatchTopK::with_tile(tile);
            let ranked = rank_block_d1(&mut engine, &scores, &excludes, k);
            assert_eq!(ranked.len(), excludes.len());
            for (q, (got, ex)) in ranked.iter().zip(&excludes).enumerate() {
                let want = rank_top_k(&kernel_scores, ex, k);
                assert_ranked_eq(got, &want, &format!("tile={tile} k={k} q={q}"));
            }
        }
    }
}

#[test]
fn rank_block_matches_oracle_for_every_block_width() {
    let scores: Vec<f32> = (0..40).map(|i| (((i * 17) % 7) as f32) - 3.0).collect();
    for b in [1usize, 7, 8, 9] {
        // Distinct mask per query so the rows genuinely differ.
        let masks: Vec<Vec<u32>> =
            (0..b).map(|q| (0..40u32).filter(|&i| (i as usize + q) % 5 == 0).collect()).collect();
        let excludes: Vec<&[u32]> = masks.iter().map(Vec::as_slice).collect();
        let mut engine = BatchTopK::with_tile(8);
        let ranked = rank_block_d1(&mut engine, &scores, &excludes, 6);
        for (q, (got, ex)) in ranked.iter().zip(&excludes).enumerate() {
            let want = rank_top_k(&scores, ex, 6);
            assert_ranked_eq(got, &want, &format!("B={b} q={q}"));
        }
        let stats = engine.stats();
        assert_eq!(stats.queries, b as u64, "B={b} stats.queries");
    }
}

#[test]
fn k_at_least_candidate_count_returns_everything_ranked() {
    let scores = vec![0.5, 0.5, -0.0, 0.0, 2.0, 0.5];
    let mask = vec![4u32];
    let kernel_scores = d1_kernel_scores(&scores);
    for k in [5usize, 6, 100] {
        let mut engine = BatchTopK::with_tile(2);
        let excludes: Vec<&[u32]> = vec![&mask];
        let ranked = rank_block_d1(&mut engine, &scores, &excludes, k);
        let want = rank_top_k(&kernel_scores, &mask, k);
        assert_eq!(ranked[0].len(), 5, "all unmasked candidates returned");
        assert_ranked_eq(&ranked[0], &want, &format!("k={k}"));
    }
}
