//! Property-based tests for the evaluation metrics.

use facility_eval::metrics::topk_for_user;
use facility_kg::Id;
use proptest::prelude::*;

/// Random scores plus disjoint train/test item sets.
fn world() -> impl Strategy<Value = (Vec<f32>, Vec<Id>, Vec<Id>)> {
    (8usize..40).prop_flat_map(|n_items| {
        let scores = prop::collection::vec(-5.0f32..5.0, n_items);
        let membership = prop::collection::vec(0u8..3, n_items); // 0=free,1=train,2=test
        (scores, membership).prop_map(|(scores, membership)| {
            let mut train = Vec::new();
            let mut test = Vec::new();
            for (i, &m) in membership.iter().enumerate() {
                match m {
                    1 => train.push(i as Id),
                    2 => test.push(i as Id),
                    _ => {}
                }
            }
            (scores, train, test)
        })
    })
}

proptest! {
    #[test]
    fn metrics_are_bounded((scores, train, test) in world(), k in 1usize..30) {
        if let Some(m) = topk_for_user(&scores, &train, &test, k) {
            for v in [m.recall, m.ndcg, m.precision, m.hit] {
                prop_assert!((0.0..=1.0 + 1e-9).contains(&v), "{v}");
            }
            // hit is consistent with recall.
            prop_assert_eq!(m.hit > 0.0, m.recall > 0.0);
        }
    }

    #[test]
    fn recall_is_monotone_in_k((scores, train, test) in world()) {
        let mut prev = 0.0;
        for k in 1..=scores.len() {
            if let Some(m) = topk_for_user(&scores, &train, &test, k) {
                prop_assert!(
                    m.recall >= prev - 1e-9,
                    "recall@{k} = {} < recall@{} = {prev}", m.recall, k - 1
                );
                prev = m.recall;
            }
        }
    }

    #[test]
    fn full_k_recall_is_one_when_rankable((scores, train, test) in world()) {
        // With K = all items, every test item not in train must be found.
        if let Some(m) = topk_for_user(&scores, &train, &test, scores.len()) {
            prop_assert!((m.recall - 1.0).abs() < 1e-9);
            prop_assert!((m.hit - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn boosting_a_test_item_never_hurts((scores, train, test) in world(), k in 1usize..20) {
        prop_assume!(!test.is_empty());
        let before = topk_for_user(&scores, &train, &test, k);
        let mut boosted = scores.clone();
        boosted[test[0] as usize] = 100.0;
        let after = topk_for_user(&boosted, &train, &test, k);
        if let (Some(b), Some(a)) = (before, after) {
            prop_assert!(a.recall >= b.recall - 1e-9);
        }
    }

    #[test]
    fn score_shift_invariance((scores, train, test) in world(), k in 1usize..20, shift in -3.0f32..3.0) {
        let shifted: Vec<f32> = scores.iter().map(|s| s + shift).collect();
        let a = topk_for_user(&scores, &train, &test, k);
        let b = topk_for_user(&shifted, &train, &test, k);
        prop_assert_eq!(a, b, "metrics must be rank-based");
    }
}
