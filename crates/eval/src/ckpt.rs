//! Training checkpoints: the full trainer state serialized through the
//! `facility-ckpt` envelope (versioned, CRC-checked, atomically renamed).
//!
//! A [`TrainCheckpoint`] is everything needed to continue a run as if it
//! had never stopped: the model snapshot (parameters + Adam moments), the
//! harness counters (epoch, best/stale, retry budget), and the per-epoch
//! logs accumulated so far. The training RNG is *derived* per epoch from
//! `(seed, epoch, retries)` rather than serialized, so storing those three
//! integers round-trips the RNG state exactly — see
//! [`trainer::epoch_rng`](crate::trainer::epoch_rng).

use crate::metrics::EvalResult;
use crate::trainer::{DivergenceCause, DivergenceEvent, EpochLog};
use facility_ckpt::{load_bytes, save_bytes, CkptError, ModelState, Reader, Writer};
use facility_models::EpochProfile;
use std::path::{Path, PathBuf};

/// Complete trainer state at the end of a (healthy) epoch.
#[derive(Clone)]
pub struct TrainCheckpoint {
    /// `Recommender::name()` of the model that wrote this checkpoint;
    /// resume refuses a different model.
    pub model_name: String,
    /// Training seed; resume refuses a different seed (the epoch RNG
    /// derivation would silently change the stream).
    pub seed: u64,
    /// `Recommender::replicas()` of the model that wrote this checkpoint
    /// (0 = legacy per-batch path). Resume refuses a *mode* change
    /// (legacy ↔ replica) because the two paths draw different RNG
    /// schedules; switching between nonzero replica counts is fine — the
    /// macro-step schedule is thread-count-invariant.
    pub replicas: u64,
    /// Last completed epoch (1-based); resume continues at `epoch + 1`.
    pub epoch: usize,
    /// Best evaluation observed so far, if any epoch was evaluated.
    pub best: Option<EvalResult>,
    /// Epoch at which `best` was observed (0 = none yet).
    pub best_epoch: usize,
    /// Consecutive evaluations without improvement.
    pub stale: usize,
    /// Cumulative divergence retries consumed (salts the epoch RNG).
    pub retries: usize,
    /// Divergence events recorded so far.
    pub divergences: Vec<DivergenceEvent>,
    /// Per-epoch logs accumulated so far.
    pub logs: Vec<EpochLog>,
    /// Model parameters + optimizer moments.
    pub state: ModelState,
}

fn put_eval(w: &mut Writer, r: &EvalResult) {
    w.put_f64(r.recall);
    w.put_f64(r.ndcg);
    w.put_f64(r.precision);
    w.put_f64(r.hit);
    w.put_u64(r.n_users as u64);
    w.put_u64(r.k as u64);
}

fn get_eval(r: &mut Reader<'_>) -> Result<EvalResult, CkptError> {
    Ok(EvalResult {
        recall: r.get_f64()?,
        ndcg: r.get_f64()?,
        precision: r.get_f64()?,
        hit: r.get_f64()?,
        n_users: r.get_u64()? as usize,
        k: r.get_u64()? as usize,
    })
}

fn put_profile(w: &mut Writer, p: &EpochProfile) {
    for v in [
        p.sampling_ns,
        p.attention_ns,
        p.forward_ns,
        p.backward_ns,
        p.optimizer_ns,
        p.extract_ns,
        p.extract_wait_ns,
        p.eval_ns,
        p.forward_flops,
        p.gathered_rows,
        p.gathered_edges,
        p.full_rows,
        p.full_edges,
        p.batches,
        p.reduce_ns,
        p.wall_ns,
        p.replicas,
        // Format v4 appends the split extraction attribution and the
        // hub-cache refresh time at the end of the record.
        p.extract_wall_ns,
        p.hub_cache_ns,
    ] {
        w.put_u64(v);
    }
}

fn get_profile(r: &mut Reader<'_>) -> Result<EpochProfile, CkptError> {
    Ok(EpochProfile {
        sampling_ns: r.get_u64()?,
        attention_ns: r.get_u64()?,
        forward_ns: r.get_u64()?,
        backward_ns: r.get_u64()?,
        optimizer_ns: r.get_u64()?,
        extract_ns: r.get_u64()?,
        extract_wait_ns: r.get_u64()?,
        eval_ns: r.get_u64()?,
        forward_flops: r.get_u64()?,
        gathered_rows: r.get_u64()?,
        gathered_edges: r.get_u64()?,
        full_rows: r.get_u64()?,
        full_edges: r.get_u64()?,
        batches: r.get_u64()?,
        reduce_ns: r.get_u64()?,
        wall_ns: r.get_u64()?,
        replicas: r.get_u64()?,
        extract_wall_ns: r.get_u64()?,
        hub_cache_ns: r.get_u64()?,
    })
}

impl TrainCheckpoint {
    /// Serialize to payload bytes (envelope-free; see [`TrainCheckpoint::save`]).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_str(&self.model_name);
        w.put_u64(self.seed);
        w.put_u64(self.replicas);
        w.put_u64(self.epoch as u64);
        match &self.best {
            Some(b) => {
                w.put_u8(1);
                put_eval(&mut w, b);
            }
            None => w.put_u8(0),
        }
        w.put_u64(self.best_epoch as u64);
        w.put_u64(self.stale as u64);
        w.put_u64(self.retries as u64);
        w.put_u32(self.divergences.len() as u32);
        for d in &self.divergences {
            w.put_u64(d.epoch as u64);
            w.put_u64(d.retry as u64);
            w.put_f32(d.loss);
            w.put_u8(match d.cause {
                DivergenceCause::NonFiniteLoss => 0,
                DivergenceCause::NonFiniteParams => 1,
            });
        }
        w.put_u32(self.logs.len() as u32);
        for l in &self.logs {
            w.put_u64(l.epoch as u64);
            w.put_f32(l.loss);
            match &l.eval {
                Some(e) => {
                    w.put_u8(1);
                    put_eval(&mut w, e);
                }
                None => w.put_u8(0),
            }
            match &l.profile {
                Some(p) => {
                    w.put_u8(1);
                    put_profile(&mut w, p);
                }
                None => w.put_u8(0),
            }
        }
        self.state.encode(&mut w);
        w.into_bytes()
    }

    /// Deserialize payload bytes written by [`TrainCheckpoint::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CkptError> {
        let mut r = Reader::new(bytes);
        let model_name = r.get_str()?;
        let seed = r.get_u64()?;
        let replicas = r.get_u64()?;
        let epoch = r.get_u64()? as usize;
        let best = if r.get_u8()? == 1 { Some(get_eval(&mut r)?) } else { None };
        let best_epoch = r.get_u64()? as usize;
        let stale = r.get_u64()? as usize;
        let retries = r.get_u64()? as usize;
        let n_div = r.get_u32()? as usize;
        let mut divergences = Vec::with_capacity(n_div);
        for _ in 0..n_div {
            let epoch = r.get_u64()? as usize;
            let retry = r.get_u64()? as usize;
            let loss = r.get_f32()?;
            let cause = match r.get_u8()? {
                0 => DivergenceCause::NonFiniteLoss,
                1 => DivergenceCause::NonFiniteParams,
                other => {
                    return Err(CkptError::Format(format!("unknown divergence cause tag {other}")))
                }
            };
            divergences.push(DivergenceEvent { epoch, retry, loss, cause });
        }
        let n_logs = r.get_u32()? as usize;
        let mut logs = Vec::with_capacity(n_logs);
        for _ in 0..n_logs {
            let epoch = r.get_u64()? as usize;
            let loss = r.get_f32()?;
            let eval = if r.get_u8()? == 1 { Some(get_eval(&mut r)?) } else { None };
            let profile = if r.get_u8()? == 1 { Some(get_profile(&mut r)?) } else { None };
            logs.push(EpochLog { epoch, loss, eval, profile });
        }
        let state = ModelState::decode(&mut r)?;
        if !r.is_exhausted() {
            return Err(CkptError::Format("trailing bytes after checkpoint payload".into()));
        }
        Ok(Self {
            model_name,
            seed,
            replicas,
            epoch,
            best,
            best_epoch,
            stale,
            retries,
            divergences,
            logs,
            state,
        })
    }

    /// Write to `path` atomically inside the versioned, CRC-checked
    /// envelope.
    pub fn save(&self, path: &Path) -> Result<(), CkptError> {
        save_bytes(path, &self.to_bytes())
    }

    /// Load and validate a checkpoint file.
    pub fn load(path: &Path) -> Result<Self, CkptError> {
        Self::from_bytes(&load_bytes(path)?)
    }
}

/// Canonical checkpoint filename for an epoch: `ckpt_epoch00042.fkc`.
pub fn checkpoint_path(dir: &Path, epoch: usize) -> PathBuf {
    dir.join(format!("ckpt_epoch{epoch:05}.fkc"))
}

/// The highest-epoch `ckpt_epochNNNNN.fkc` in `dir`, if any.
pub fn latest_checkpoint(dir: &Path) -> Option<PathBuf> {
    let entries = std::fs::read_dir(dir).ok()?;
    let mut best: Option<(usize, PathBuf)> = None;
    for entry in entries.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let Some(num) = name.strip_prefix("ckpt_epoch").and_then(|s| s.strip_suffix(".fkc")) else {
            continue;
        };
        let Ok(epoch) = num.parse::<usize>() else { continue };
        if best.as_ref().is_none_or(|(e, _)| epoch > *e) {
            best = Some((epoch, entry.path()));
        }
    }
    best.map(|(_, p)| p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TrainCheckpoint {
        TrainCheckpoint {
            model_name: "BPRMF".into(),
            seed: 7,
            replicas: 2,
            epoch: 4,
            best: Some(EvalResult {
                recall: 0.25,
                ndcg: 0.5,
                precision: 0.125,
                hit: 1.0,
                n_users: 12,
                k: 5,
            }),
            best_epoch: 4,
            stale: 1,
            retries: 1,
            divergences: vec![DivergenceEvent {
                epoch: 3,
                retry: 1,
                loss: f32::NAN,
                cause: DivergenceCause::NonFiniteLoss,
            }],
            logs: vec![
                EpochLog { epoch: 1, loss: 0.7, eval: None, profile: None },
                EpochLog {
                    epoch: 2,
                    loss: 0.6,
                    eval: None,
                    profile: Some(EpochProfile {
                        batches: 3,
                        sampling_ns: 42,
                        ..Default::default()
                    }),
                },
            ],
            state: ModelState::default(),
        }
    }

    #[test]
    fn checkpoint_payload_roundtrips() {
        let ck = sample();
        let back = TrainCheckpoint::from_bytes(&ck.to_bytes()).unwrap();
        assert_eq!(back.model_name, "BPRMF");
        assert_eq!(back.epoch, 4);
        assert_eq!(back.seed, 7);
        assert_eq!(back.replicas, 2);
        assert_eq!(back.stale, 1);
        assert_eq!(back.retries, 1);
        assert_eq!(back.best.unwrap().recall, 0.25);
        assert_eq!(back.divergences.len(), 1);
        assert!(back.divergences[0].loss.is_nan());
        assert_eq!(back.logs.len(), 2);
        assert_eq!(back.logs[1].profile.unwrap().sampling_ns, 42);
    }

    #[test]
    fn latest_checkpoint_picks_highest_epoch() {
        let dir = std::env::temp_dir().join(format!("facility-latest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let ck = sample();
        ck.save(&checkpoint_path(&dir, 2)).unwrap();
        ck.save(&checkpoint_path(&dir, 10)).unwrap();
        std::fs::write(dir.join("notes.txt"), b"ignore me").unwrap();
        let latest = latest_checkpoint(&dir).unwrap();
        assert!(latest.ends_with("ckpt_epoch00010.fkc"), "{latest:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_dir_has_no_latest() {
        let dir = std::env::temp_dir().join(format!("facility-empty-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        assert!(latest_checkpoint(&dir).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
