#![warn(missing_docs)]

//! # facility-eval
//!
//! Top-K evaluation and the training harness, implementing the paper's
//! protocol (Section VI-A/B): per-user 80/20 split, full ranking of all
//! items the user has not trained on, and `recall@K` / `ndcg@K` with
//! `K = 20` by default.
//!
//! * [`metrics`] — per-user top-K metrics with careful edge-case handling
//!   (no test items, `K` > catalog size, ties).
//! * [`evaluate`] — full-ranking evaluation, parallelized over contiguous
//!   user chunks with scoped threads (models are `Sync`, scoring is
//!   read-only) and merged in user order, so the result is identical for
//!   every thread count.
//! * [`trainer`] — epoch loop with periodic evaluation, early stopping
//!   on `recall@K`, divergence recovery, and periodic checkpointing.
//! * [`shutdown`] — cooperative stop flag (wired to `SIGINT`/`SIGTERM`)
//!   that makes the trainer write a final checkpoint and return instead
//!   of losing an interrupted run.
//! * [`ckpt`] — the trainer-state checkpoint written through the
//!   `facility-ckpt` envelope; resuming one is bitwise identical to never
//!   having stopped.

pub mod ckpt;
pub mod grid;
pub mod metrics;
pub mod shutdown;
pub mod trainer;

pub use ckpt::{checkpoint_path, latest_checkpoint, TrainCheckpoint};
pub use grid::{grid_search, Grid, GridResult};
pub use metrics::{rank_top_k, EvalResult, TopKMetrics};
pub use shutdown::{install_ctrl_c, ShutdownFlag};
pub use trainer::{
    train, train_resumed, try_train, DivergenceCause, DivergenceEvent, EpochLog, TrainError,
    TrainReport, TrainSettings,
};

use facility_kg::Interactions;
use facility_models::Recommender;

/// Evaluate `model` on the held-out test interactions by full ranking.
///
/// For each user with test items, every item the user did *not* train on
/// is ranked; train positives are masked out. Users without test items are
/// skipped (they contribute nothing, matching the common protocol).
/// Returns averages over evaluated users.
///
/// Runs on [`eval_threads`] workers; see [`evaluate_chunked`] for the
/// threading contract (the result is thread-count-invariant).
///
/// The caller must have called [`Recommender::prepare_eval`].
pub fn evaluate(model: &dyn Recommender, inter: &Interactions, k: usize) -> EvalResult {
    evaluate_chunked(model, inter, k, eval_threads())
}

/// Default evaluation worker count: available cores, capped at 8.
pub fn eval_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(8)
}

/// [`evaluate`] with an explicit worker count.
///
/// Users are split into `threads` contiguous chunks, each scored on its
/// own scoped thread (scoring is read-only over a `Sync` model), and the
/// per-user metrics are concatenated back in user order before
/// aggregation. Because per-user scoring is independent and the merge is
/// in-order, the result is bitwise identical for every `threads` value;
/// `threads <= 1` (or a single-user chunk) runs inline with no spawns.
pub fn evaluate_chunked(
    model: &dyn Recommender,
    inter: &Interactions,
    k: usize,
    threads: usize,
) -> EvalResult {
    let users = inter.test_users();
    let score_chunk = |chunk: &[facility_kg::Id]| -> Vec<TopKMetrics> {
        chunk
            .iter()
            .filter_map(|&u| {
                let scores = model.score_items(u);
                metrics::topk_for_user(
                    &scores,
                    // audit: unwrap — u comes from 0..inter.n_users, and
                    // train/test both have exactly n_users rows
                    &inter.train[u as usize],
                    // audit: unwrap — same bound as train above
                    &inter.test[u as usize],
                    k,
                )
            })
            .collect()
    };

    let per_user: Vec<TopKMetrics> = if threads <= 1 || users.len() <= 1 {
        score_chunk(&users)
    } else {
        let chunk_len = users.len().div_ceil(threads);
        let score_chunk = &score_chunk;
        std::thread::scope(|scope| {
            let handles: Vec<_> = users
                .chunks(chunk_len)
                .map(|chunk| scope.spawn(move || score_chunk(chunk)))
                .collect();
            // audit: unwrap — a worker panic is unrecoverable here; join
            // only fails on panic, and re-raising it is the right behavior
            handles.into_iter().flat_map(|h| h.join().expect("eval worker panicked")).collect()
        })
    };
    EvalResult::aggregate(&per_user, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use facility_kg::Id;

    /// A fake recommender with fixed scores for evaluator tests.
    struct Oracle {
        scores: Vec<Vec<f32>>,
    }

    impl Recommender for Oracle {
        fn name(&self) -> String {
            "oracle".into()
        }
        fn train_epoch(
            &mut self,
            _ctx: &facility_models::TrainContext<'_>,
            _rng: &mut rand::rngs::StdRng,
        ) -> f32 {
            0.0
        }
        fn prepare_eval(&mut self, _ctx: &facility_models::TrainContext<'_>) {}
        fn score_items(&self, user: Id) -> Vec<f32> {
            self.scores[user as usize].clone()
        }
        fn num_parameters(&self) -> usize {
            0
        }
    }

    #[test]
    fn perfect_oracle_scores_one() {
        // 2 users, 4 items; test items get the top scores.
        let inter = Interactions::from_lists(4, vec![vec![0], vec![1]], vec![vec![1], vec![2]]);
        let oracle =
            Oracle { scores: vec![vec![0.0, 10.0, -1.0, -1.0], vec![0.0, 0.0, 10.0, -1.0]] };
        let r = evaluate(&oracle, &inter, 2);
        assert_eq!(r.n_users, 2);
        assert!((r.recall - 1.0).abs() < 1e-9, "recall {}", r.recall);
        assert!((r.ndcg - 1.0).abs() < 1e-9, "ndcg {}", r.ndcg);
        assert!((r.hit - 1.0).abs() < 1e-9);
    }

    #[test]
    fn anti_oracle_scores_zero() {
        let inter = Interactions::from_lists(4, vec![vec![]], vec![vec![3]]);
        // Test item ranked last.
        let oracle = Oracle { scores: vec![vec![3.0, 2.0, 1.0, 0.0]] };
        let r = evaluate(&oracle, &inter, 2);
        assert_eq!(r.recall, 0.0);
        assert_eq!(r.ndcg, 0.0);
    }

    #[test]
    fn train_items_are_masked_from_ranking() {
        // Item 0 is a train positive with a huge score; the test item 1 is
        // second-best. With masking, it's effectively first.
        let inter = Interactions::from_lists(3, vec![vec![0]], vec![vec![1]]);
        let oracle = Oracle { scores: vec![vec![100.0, 1.0, 0.5]] };
        let r = evaluate(&oracle, &inter, 1);
        assert!((r.recall - 1.0).abs() < 1e-9, "masking failed: recall {}", r.recall);
    }

    #[test]
    fn chunked_evaluation_matches_serial_for_every_thread_count() {
        // 9 users with assorted train/test lists (including skipped users)
        // so the chunks are uneven; every thread count must reproduce the
        // serial result bitwise.
        let n_users = 9usize;
        let mut train = Vec::new();
        let mut test = Vec::new();
        let mut scores = Vec::new();
        for u in 0..n_users {
            train.push(vec![(u % 5) as Id]);
            test.push(if u % 3 == 2 { vec![] } else { vec![((u + 1) % 5) as Id] });
            scores.push((0..5).map(|i| ((i * 7 + u * 3) % 11) as f32).collect());
        }
        let inter = Interactions::from_lists(5, train, test);
        let oracle = Oracle { scores };
        let serial = evaluate_chunked(&oracle, &inter, 3, 1);
        assert!(serial.n_users > 0);
        for threads in [2usize, 3, 4, 16] {
            let chunked = evaluate_chunked(&oracle, &inter, 3, threads);
            assert_eq!(chunked.n_users, serial.n_users, "threads={threads}");
            assert_eq!(chunked.recall.to_bits(), serial.recall.to_bits(), "threads={threads}");
            assert_eq!(chunked.ndcg.to_bits(), serial.ndcg.to_bits(), "threads={threads}");
            assert_eq!(chunked.hit.to_bits(), serial.hit.to_bits(), "threads={threads}");
        }
        // The public entry point uses the default pool.
        let default = evaluate(&oracle, &inter, 3);
        assert_eq!(default.recall.to_bits(), serial.recall.to_bits());
    }

    #[test]
    fn users_without_test_items_are_skipped() {
        let inter = Interactions::from_lists(3, vec![vec![0], vec![1]], vec![vec![1], vec![]]);
        let oracle = Oracle { scores: vec![vec![0.0, 1.0, 0.0], vec![0.0; 3]] };
        let r = evaluate(&oracle, &inter, 2);
        assert_eq!(r.n_users, 1);
    }
}
