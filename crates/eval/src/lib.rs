#![warn(missing_docs)]

//! # facility-eval
//!
//! Top-K evaluation and the training harness, implementing the paper's
//! protocol (Section VI-A/B): per-user 80/20 split, full ranking of all
//! items the user has not trained on, and `recall@K` / `ndcg@K` with
//! `K = 20` by default.
//!
//! * [`metrics`] — per-user top-K metrics with careful edge-case handling
//!   (no test items, `K` > catalog size, ties).
//! * [`evaluate`] — full-ranking evaluation, parallelized over contiguous
//!   user chunks with scoped threads (models are `Sync`, scoring is
//!   read-only) and merged in user order, so the result is identical for
//!   every thread count.
//! * [`trainer`] — epoch loop with periodic evaluation, early stopping
//!   on `recall@K`, divergence recovery, and periodic checkpointing.
//! * [`shutdown`] — cooperative stop flag (wired to `SIGINT`/`SIGTERM`)
//!   that makes the trainer write a final checkpoint and return instead
//!   of losing an interrupted run.
//! * [`ckpt`] — the trainer-state checkpoint written through the
//!   `facility-ckpt` envelope; resuming one is bitwise identical to never
//!   having stopped.

pub mod ckpt;
pub mod grid;
pub mod metrics;
pub mod shutdown;
pub mod trainer;

pub use ckpt::{checkpoint_path, latest_checkpoint, TrainCheckpoint};
pub use grid::{grid_search, Grid, GridResult};
pub use metrics::{rank_top_k, topk_metrics_from_ranked, EvalResult, TopKMetrics};
pub use shutdown::{install_ctrl_c, ShutdownFlag};
pub use trainer::{
    train, train_resumed, try_train, DivergenceCause, DivergenceEvent, EpochLog, TrainError,
    TrainReport, TrainSettings,
};

use facility_kg::Interactions;
use facility_models::Recommender;

/// Evaluate `model` on the held-out test interactions by full ranking.
///
/// For each user with test items, every item the user did *not* train on
/// is ranked; train positives are masked out. Users without test items are
/// skipped (they contribute nothing, matching the common protocol).
/// Returns averages over evaluated users.
///
/// Runs on [`eval_threads`] workers; see [`evaluate_chunked`] for the
/// threading contract (the result is thread-count-invariant).
///
/// The caller must have called [`Recommender::prepare_eval`].
pub fn evaluate(model: &dyn Recommender, inter: &Interactions, k: usize) -> EvalResult {
    evaluate_chunked(model, inter, k, eval_threads())
}

/// Default evaluation worker count: available cores, capped at 8.
pub fn eval_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(8)
}

/// [`evaluate`] with an explicit worker count.
///
/// Users are split into `threads` contiguous chunks, each scored on its
/// own scoped thread (scoring is read-only over a `Sync` model), and the
/// per-user metrics are concatenated back in user order before
/// aggregation. Because per-user scoring is independent and the merge is
/// in-order, the result is bitwise identical for every `threads` value;
/// `threads <= 1` (or a single-user chunk) runs inline with no spawns.
pub fn evaluate_chunked(
    model: &dyn Recommender,
    inter: &Interactions,
    k: usize,
    threads: usize,
) -> EvalResult {
    let users = inter.test_users();
    // Models that expose their eval factor matrices take the batched
    // retrieval path: one blocked multi-query scan per 8 users instead of
    // a fresh full score vector per user. Both paths produce bitwise
    // identical metrics — `score_block_into` computes each element with
    // the same lane-folded dot as `score_items`, and the streaming
    // selector's order exactly matches `rank_top_k` — so this is a pure
    // perf routing decision. Shape-mismatched matrices (a model whose
    // cache does not cover every test user) fall back to per-user scoring.
    let mats = model
        .eval_matrices()
        .filter(|(u_m, i_m)| u_m.cols() == i_m.cols() && u_m.rows() >= inter.train.len());
    let score_chunk = |chunk: &[facility_kg::Id]| -> Vec<TopKMetrics> {
        if let Some((users_m, items_m)) = mats {
            return score_chunk_blocked(users_m, items_m, inter, k, chunk);
        }
        chunk
            .iter()
            .filter_map(|&u| {
                let scores = model.score_items(u);
                metrics::topk_for_user(
                    &scores,
                    // audit: unwrap — u comes from 0..inter.n_users, and
                    // train/test both have exactly n_users rows
                    &inter.train[u as usize],
                    // audit: unwrap — same bound as train above
                    &inter.test[u as usize],
                    k,
                )
            })
            .collect()
    };

    let per_user: Vec<TopKMetrics> = if threads <= 1 || users.len() <= 1 {
        score_chunk(&users)
    } else {
        let chunk_len = users.len().div_ceil(threads);
        let score_chunk = &score_chunk;
        std::thread::scope(|scope| {
            let handles: Vec<_> = users
                .chunks(chunk_len)
                .map(|chunk| scope.spawn(move || score_chunk(chunk)))
                .collect();
            // audit: unwrap — a worker panic is unrecoverable here; join
            // only fails on panic, and re-raising it is the right behavior
            handles.into_iter().flat_map(|h| h.join().expect("eval worker panicked")).collect()
        })
    };
    EvalResult::aggregate(&per_user, k)
}

/// Queries scored together per blocked retrieval scan. Eight d-wide query
/// rows fit comfortably in L1 alongside an item tile, and the per-user
/// metrics are independent, so block composition cannot change results —
/// the thread-count-invariance contract is preserved regardless of how
/// chunks split across blocks.
const EVAL_QUERY_BLOCK: usize = 8;

/// Score one contiguous user chunk via the batched retrieval engine.
///
/// Users without test items are filtered out first so every scored query
/// row contributes; the remaining users are ranked in blocks of
/// [`EVAL_QUERY_BLOCK`] with one blocked scan each (train positives
/// masked per query). Metrics come from the same
/// [`metrics::topk_metrics_from_ranked`] tail as the per-user path.
fn score_chunk_blocked(
    users_m: &facility_linalg::Matrix,
    items_m: &facility_linalg::Matrix,
    inter: &Interactions,
    k: usize,
    chunk: &[facility_kg::Id],
) -> Vec<TopKMetrics> {
    let d = users_m.cols();
    let n_items = items_m.rows();
    let mut engine = facility_linalg::retrieval::BatchTopK::new();
    let mut queries: Vec<f32> = Vec::with_capacity(EVAL_QUERY_BLOCK * d);
    let mut excludes: Vec<&[facility_kg::Id]> = Vec::with_capacity(EVAL_QUERY_BLOCK);
    let mut out = Vec::with_capacity(chunk.len());
    let evaluable: Vec<facility_kg::Id> = chunk
        .iter()
        .copied()
        .filter(|&u| inter.test.get(u as usize).is_some_and(|t| !t.is_empty()))
        .collect();
    for block in evaluable.chunks(EVAL_QUERY_BLOCK) {
        queries.clear();
        excludes.clear();
        for &u in block {
            queries.extend_from_slice(users_m.row(u as usize));
            excludes.push(inter.train.get(u as usize).map(Vec::as_slice).unwrap_or(&[]));
        }
        let ranked = engine.rank_block(&queries, d, items_m.as_slice(), n_items, &excludes, k);
        for (&u, top) in block.iter().zip(&ranked) {
            let test = inter.test.get(u as usize).map(Vec::as_slice).unwrap_or(&[]);
            if let Some(m) = metrics::topk_metrics_from_ranked(top, test) {
                out.push(m);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use facility_kg::Id;

    /// A fake recommender with fixed scores for evaluator tests.
    struct Oracle {
        scores: Vec<Vec<f32>>,
    }

    impl Recommender for Oracle {
        fn name(&self) -> String {
            "oracle".into()
        }
        fn train_epoch(
            &mut self,
            _ctx: &facility_models::TrainContext<'_>,
            _rng: &mut rand::rngs::StdRng,
        ) -> f32 {
            0.0
        }
        fn prepare_eval(&mut self, _ctx: &facility_models::TrainContext<'_>) {}
        fn score_items(&self, user: Id) -> Vec<f32> {
            self.scores[user as usize].clone()
        }
        fn num_parameters(&self) -> usize {
            0
        }
    }

    #[test]
    fn perfect_oracle_scores_one() {
        // 2 users, 4 items; test items get the top scores.
        let inter = Interactions::from_lists(4, vec![vec![0], vec![1]], vec![vec![1], vec![2]]);
        let oracle =
            Oracle { scores: vec![vec![0.0, 10.0, -1.0, -1.0], vec![0.0, 0.0, 10.0, -1.0]] };
        let r = evaluate(&oracle, &inter, 2);
        assert_eq!(r.n_users, 2);
        assert!((r.recall - 1.0).abs() < 1e-9, "recall {}", r.recall);
        assert!((r.ndcg - 1.0).abs() < 1e-9, "ndcg {}", r.ndcg);
        assert!((r.hit - 1.0).abs() < 1e-9);
    }

    #[test]
    fn anti_oracle_scores_zero() {
        let inter = Interactions::from_lists(4, vec![vec![]], vec![vec![3]]);
        // Test item ranked last.
        let oracle = Oracle { scores: vec![vec![3.0, 2.0, 1.0, 0.0]] };
        let r = evaluate(&oracle, &inter, 2);
        assert_eq!(r.recall, 0.0);
        assert_eq!(r.ndcg, 0.0);
    }

    #[test]
    fn train_items_are_masked_from_ranking() {
        // Item 0 is a train positive with a huge score; the test item 1 is
        // second-best. With masking, it's effectively first.
        let inter = Interactions::from_lists(3, vec![vec![0]], vec![vec![1]]);
        let oracle = Oracle { scores: vec![vec![100.0, 1.0, 0.5]] };
        let r = evaluate(&oracle, &inter, 1);
        assert!((r.recall - 1.0).abs() < 1e-9, "masking failed: recall {}", r.recall);
    }

    #[test]
    fn chunked_evaluation_matches_serial_for_every_thread_count() {
        // 9 users with assorted train/test lists (including skipped users)
        // so the chunks are uneven; every thread count must reproduce the
        // serial result bitwise.
        let n_users = 9usize;
        let mut train = Vec::new();
        let mut test = Vec::new();
        let mut scores = Vec::new();
        for u in 0..n_users {
            train.push(vec![(u % 5) as Id]);
            test.push(if u % 3 == 2 { vec![] } else { vec![((u + 1) % 5) as Id] });
            scores.push((0..5).map(|i| ((i * 7 + u * 3) % 11) as f32).collect());
        }
        let inter = Interactions::from_lists(5, train, test);
        let oracle = Oracle { scores };
        let serial = evaluate_chunked(&oracle, &inter, 3, 1);
        assert!(serial.n_users > 0);
        for threads in [2usize, 3, 4, 16] {
            let chunked = evaluate_chunked(&oracle, &inter, 3, threads);
            assert_eq!(chunked.n_users, serial.n_users, "threads={threads}");
            assert_eq!(chunked.recall.to_bits(), serial.recall.to_bits(), "threads={threads}");
            assert_eq!(chunked.ndcg.to_bits(), serial.ndcg.to_bits(), "threads={threads}");
            assert_eq!(chunked.hit.to_bits(), serial.hit.to_bits(), "threads={threads}");
        }
        // The public entry point uses the default pool.
        let default = evaluate(&oracle, &inter, 3);
        assert_eq!(default.recall.to_bits(), serial.recall.to_bits());
    }

    #[test]
    fn users_without_test_items_are_skipped() {
        let inter = Interactions::from_lists(3, vec![vec![0], vec![1]], vec![vec![1], vec![]]);
        let oracle = Oracle { scores: vec![vec![0.0, 1.0, 0.0], vec![0.0; 3]] };
        let r = evaluate(&oracle, &inter, 2);
        assert_eq!(r.n_users, 1);
    }

    /// A factor-model fake: scores are user·item dots, and it exposes its
    /// matrices so `evaluate_chunked` takes the batched retrieval path.
    struct MatrixOracle {
        users: facility_linalg::Matrix,
        items: facility_linalg::Matrix,
        expose: bool,
    }

    impl Recommender for MatrixOracle {
        fn name(&self) -> String {
            "matrix-oracle".into()
        }
        fn train_epoch(
            &mut self,
            _ctx: &facility_models::TrainContext<'_>,
            _rng: &mut rand::rngs::StdRng,
        ) -> f32 {
            0.0
        }
        fn prepare_eval(&mut self, _ctx: &facility_models::TrainContext<'_>) {}
        fn score_items(&self, user: Id) -> Vec<f32> {
            let u = self.users.row(user as usize);
            self.items.iter_rows().map(|v| facility_linalg::matrix::dot(u, v)).collect()
        }
        fn num_parameters(&self) -> usize {
            0
        }
        fn eval_matrices(&self) -> Option<(&facility_linalg::Matrix, &facility_linalg::Matrix)> {
            if self.expose {
                Some((&self.users, &self.items))
            } else {
                None
            }
        }
    }

    /// The batched retrieval path must reproduce the per-user
    /// `score_items` + `rank_top_k` path bitwise — same EvalResult bits
    /// for every thread count and cutoff, including users that fall in
    /// partial trailing blocks and users with empty test lists.
    #[test]
    fn blocked_eval_matches_per_user_path_bitwise() {
        let n_users = 19usize; // 2 full blocks of 8 plus a ragged tail
        let n_items = 57usize;
        let d = 13usize;
        let mut users = Vec::with_capacity(n_users * d);
        let mut items = Vec::with_capacity(n_items * d);
        for i in 0..(n_users * d) as u64 {
            users.push(((i.wrapping_mul(2654435761) >> 16) as f32) / 65536.0 - 0.5);
        }
        for i in 0..(n_items * d) as u64 {
            items.push((((i + 99).wrapping_mul(2246822519) >> 16) as f32) / 65536.0 - 0.5);
        }
        let mut train = Vec::new();
        let mut test = Vec::new();
        for u in 0..n_users {
            train.push(vec![(u % n_items) as Id, ((u * 7 + 3) % n_items) as Id]);
            train[u].sort_unstable();
            train[u].dedup();
            test.push(if u % 5 == 4 {
                vec![]
            } else {
                vec![((u * 11 + 1) % n_items) as Id, ((u * 3 + 20) % n_items) as Id]
            });
            test[u].sort_unstable();
            test[u].dedup();
        }
        let inter = Interactions::from_lists(n_items, train, test);
        let users_m = facility_linalg::Matrix::from_vec(n_users, d, users);
        let items_m = facility_linalg::Matrix::from_vec(n_items, d, items);
        let blocked = MatrixOracle { users: users_m.clone(), items: items_m.clone(), expose: true };
        let per_user = MatrixOracle { users: users_m, items: items_m, expose: false };
        for k in [1usize, 5, 20, 100] {
            for threads in [1usize, 2, 4] {
                let a = evaluate_chunked(&blocked, &inter, k, threads);
                let b = evaluate_chunked(&per_user, &inter, k, threads);
                assert_eq!(a.n_users, b.n_users, "k={k} threads={threads}");
                assert_eq!(a.recall.to_bits(), b.recall.to_bits(), "k={k} threads={threads}");
                assert_eq!(a.ndcg.to_bits(), b.ndcg.to_bits(), "k={k} threads={threads}");
                assert_eq!(a.precision.to_bits(), b.precision.to_bits(), "k={k} threads={threads}");
                assert_eq!(a.hit.to_bits(), b.hit.to_bits(), "k={k} threads={threads}");
            }
        }
    }
}
