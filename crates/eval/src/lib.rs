#![warn(missing_docs)]

//! # facility-eval
//!
//! Top-K evaluation and the training harness, implementing the paper's
//! protocol (Section VI-A/B): per-user 80/20 split, full ranking of all
//! items the user has not trained on, and `recall@K` / `ndcg@K` with
//! `K = 20` by default.
//!
//! * [`metrics`] — per-user top-K metrics with careful edge-case handling
//!   (no test items, `K` > catalog size, ties).
//! * [`evaluate`] — full-ranking evaluation, parallelized over users with
//!   rayon (models are `Sync`, scoring is read-only).
//! * [`trainer`] — epoch loop with periodic evaluation, early stopping
//!   on `recall@K`, divergence recovery, and periodic checkpointing.
//! * [`ckpt`] — the trainer-state checkpoint written through the
//!   `facility-ckpt` envelope; resuming one is bitwise identical to never
//!   having stopped.

pub mod ckpt;
pub mod grid;
pub mod metrics;
pub mod trainer;

pub use ckpt::{checkpoint_path, latest_checkpoint, TrainCheckpoint};
pub use grid::{grid_search, Grid, GridResult};
pub use metrics::{EvalResult, TopKMetrics};
pub use trainer::{
    train, train_resumed, try_train, DivergenceCause, DivergenceEvent, EpochLog, TrainError,
    TrainReport, TrainSettings,
};

use facility_kg::Interactions;
use facility_models::Recommender;
use rayon::prelude::*;

/// Evaluate `model` on the held-out test interactions by full ranking.
///
/// For each user with test items, every item the user did *not* train on
/// is ranked; train positives are masked out. Users without test items are
/// skipped (they contribute nothing, matching the common protocol).
/// Returns averages over evaluated users.
///
/// The caller must have called [`Recommender::prepare_eval`].
pub fn evaluate(model: &dyn Recommender, inter: &Interactions, k: usize) -> EvalResult {
    let users = inter.test_users();
    let per_user: Vec<TopKMetrics> = users
        .par_iter()
        .filter_map(|&u| {
            let scores = model.score_items(u);
            metrics::topk_for_user(&scores, &inter.train[u as usize], &inter.test[u as usize], k)
        })
        .collect();
    EvalResult::aggregate(&per_user, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use facility_kg::Id;

    /// A fake recommender with fixed scores for evaluator tests.
    struct Oracle {
        scores: Vec<Vec<f32>>,
    }

    impl Recommender for Oracle {
        fn name(&self) -> String {
            "oracle".into()
        }
        fn train_epoch(
            &mut self,
            _ctx: &facility_models::TrainContext<'_>,
            _rng: &mut rand::rngs::StdRng,
        ) -> f32 {
            0.0
        }
        fn prepare_eval(&mut self, _ctx: &facility_models::TrainContext<'_>) {}
        fn score_items(&self, user: Id) -> Vec<f32> {
            self.scores[user as usize].clone()
        }
        fn num_parameters(&self) -> usize {
            0
        }
    }

    #[test]
    fn perfect_oracle_scores_one() {
        // 2 users, 4 items; test items get the top scores.
        let inter = Interactions::from_lists(4, vec![vec![0], vec![1]], vec![vec![1], vec![2]]);
        let oracle =
            Oracle { scores: vec![vec![0.0, 10.0, -1.0, -1.0], vec![0.0, 0.0, 10.0, -1.0]] };
        let r = evaluate(&oracle, &inter, 2);
        assert_eq!(r.n_users, 2);
        assert!((r.recall - 1.0).abs() < 1e-9, "recall {}", r.recall);
        assert!((r.ndcg - 1.0).abs() < 1e-9, "ndcg {}", r.ndcg);
        assert!((r.hit - 1.0).abs() < 1e-9);
    }

    #[test]
    fn anti_oracle_scores_zero() {
        let inter = Interactions::from_lists(4, vec![vec![]], vec![vec![3]]);
        // Test item ranked last.
        let oracle = Oracle { scores: vec![vec![3.0, 2.0, 1.0, 0.0]] };
        let r = evaluate(&oracle, &inter, 2);
        assert_eq!(r.recall, 0.0);
        assert_eq!(r.ndcg, 0.0);
    }

    #[test]
    fn train_items_are_masked_from_ranking() {
        // Item 0 is a train positive with a huge score; the test item 1 is
        // second-best. With masking, it's effectively first.
        let inter = Interactions::from_lists(3, vec![vec![0]], vec![vec![1]]);
        let oracle = Oracle { scores: vec![vec![100.0, 1.0, 0.5]] };
        let r = evaluate(&oracle, &inter, 1);
        assert!((r.recall - 1.0).abs() < 1e-9, "masking failed: recall {}", r.recall);
    }

    #[test]
    fn users_without_test_items_are_skipped() {
        let inter = Interactions::from_lists(3, vec![vec![0], vec![1]], vec![vec![1], vec![]]);
        let oracle = Oracle { scores: vec![vec![0.0, 1.0, 0.0], vec![0.0; 3]] };
        let r = evaluate(&oracle, &inter, 2);
        assert_eq!(r.n_users, 1);
    }
}
