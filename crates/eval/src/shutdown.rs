//! Cooperative shutdown for long training runs.
//!
//! A [`ShutdownFlag`] is a cheap cloneable handle the trainer polls after
//! every healthy epoch. [`install_ctrl_c`] additionally wires `SIGINT` /
//! `SIGTERM` into the flag, so a `^C` during `fkgrec train` stops the loop
//! at the next epoch boundary and lets it write a final checkpoint instead
//! of tearing the process down mid-epoch — the interrupted run then resumes
//! bitwise-identically (see `trainer`'s determinism contract).
//!
//! The signal handler itself only performs a relaxed store to a static
//! `AtomicBool` (async-signal-safe); everything else — checkpointing,
//! logging, unwinding the loop — happens on the training thread at a safe
//! point.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Set by the installed signal handler; observed by every flag.
static SIGNALLED: AtomicBool = AtomicBool::new(false);

/// A cooperative stop request, polled by the trainer between epochs.
///
/// Clones share the same underlying flag. Every flag also observes the
/// process-wide signal bit set by [`install_ctrl_c`], so programmatic
/// requests (tests, embedding applications) and OS signals look identical
/// to the trainer.
#[derive(Debug, Clone, Default)]
pub struct ShutdownFlag {
    local: Arc<AtomicBool>,
}

impl ShutdownFlag {
    /// A fresh, unset flag (not yet wired to any signal handler).
    pub fn new() -> Self {
        Self::default()
    }

    /// Request a stop: the trainer finishes the current epoch, writes a
    /// final checkpoint, and returns with `TrainReport::interrupted` set.
    pub fn request(&self) {
        self.local.store(true, Ordering::Relaxed);
    }

    /// True once a stop has been requested on this flag (or any clone of
    /// it), or a `SIGINT`/`SIGTERM` arrived after [`install_ctrl_c`].
    pub fn is_requested(&self) -> bool {
        self.local.load(Ordering::Relaxed) || SIGNALLED.load(Ordering::Relaxed)
    }
}

/// Install `SIGINT`/`SIGTERM` handlers (once per process) and return a
/// flag that observes them.
///
/// Idempotent: later calls skip re-registration and just hand out another
/// flag. On non-unix targets this is a no-op that returns a plain flag —
/// the trainer still honors programmatic [`ShutdownFlag::request`]s.
pub fn install_ctrl_c() -> ShutdownFlag {
    install_handlers();
    ShutdownFlag::new()
}

#[cfg(unix)]
fn install_handlers() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        extern "C" fn on_signal(_signum: i32) {
            SIGNALLED.store(true, Ordering::Relaxed);
        }
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        // SAFETY: `signal` is the C-standard registration call; the
        // handler is a plain `extern "C" fn(i32)` (sighandler_t ABI) whose
        // body is one relaxed store to a static — async-signal-safe.
        unsafe {
            signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
            signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
        }
    });
}

#[cfg(not(unix))]
fn install_handlers() {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_flag_is_unset_and_clones_share_state() {
        let flag = ShutdownFlag::new();
        assert!(!flag.is_requested());
        let clone = flag.clone();
        clone.request();
        assert!(flag.is_requested(), "clones share the underlying flag");
    }

    #[test]
    fn independent_flags_do_not_cross_talk() {
        let a = ShutdownFlag::new();
        let b = ShutdownFlag::new();
        a.request();
        assert!(!b.is_requested(), "a request on one flag must not leak to another");
    }

    #[test]
    fn install_ctrl_c_is_idempotent() {
        // Registration must not panic or double-register; the returned
        // flags start unset (no signal has been delivered in tests).
        let a = install_ctrl_c();
        let b = install_ctrl_c();
        assert!(!a.is_requested());
        assert!(!b.is_requested());
    }
}
