//! Epoch loop with periodic evaluation, early stopping, checkpointing,
//! and divergence recovery.
//!
//! ## Fault tolerance
//!
//! * **Checkpoint/resume** — with [`TrainSettings::ckpt_every`] > 0 and a
//!   [`TrainSettings::ckpt_dir`], the loop writes a [`TrainCheckpoint`]
//!   after every `ckpt_every`-th healthy epoch (atomic tmp + rename).
//!   [`train_resumed`] continues from one such file; because the training
//!   RNG is derived per epoch by [`epoch_rng`] from `(seed, epoch,
//!   retries)`, an interrupted-then-resumed run is *bitwise identical* to
//!   an uninterrupted one — no RNG state needs to survive the restart.
//! * **Graceful shutdown** — with a [`TrainSettings::stop`] flag (wired
//!   to `SIGINT`/`SIGTERM` by [`crate::shutdown::install_ctrl_c`]), the
//!   loop stops at the next epoch boundary, writes a final checkpoint
//!   even off the `ckpt_every` cadence, and reports
//!   [`TrainReport::interrupted`] instead of losing the run.
//! * **Divergence guards** — after every epoch the loop checks that the
//!   loss and all parameters are finite. On a divergence it rolls the
//!   model back to the last good in-memory snapshot, multiplies the
//!   learning rate by [`TrainSettings::lr_backoff`], and retries the
//!   epoch with a fresh RNG salt, up to [`TrainSettings::max_retries`]
//!   times across the run; past the budget [`try_train`] fails with a
//!   structured [`TrainError::Diverged`] instead of logging NaN metrics.

use crate::ckpt::{checkpoint_path, TrainCheckpoint};
use crate::shutdown::ShutdownFlag;
use crate::{evaluate, EvalResult};
use facility_ckpt::{CkptError, ModelState};
use facility_linalg::seeded_rng;
use facility_models::{EpochProfile, Recommender, TrainContext};
use rand::rngs::StdRng;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Harness settings.
#[derive(Debug, Clone)]
pub struct TrainSettings {
    /// Upper bound on epochs.
    pub max_epochs: usize,
    /// Evaluate every `eval_every` epochs (and after the final epoch).
    pub eval_every: usize,
    /// Stop after this many consecutive evaluations without a recall@K
    /// improvement. `0` disables early stopping.
    pub patience: usize,
    /// Top-K cutoff (paper default 20).
    pub k: usize,
    /// Seed for the training-time RNG (sampling, dropout).
    pub seed: u64,
    /// Print one line per evaluation to stderr.
    pub verbose: bool,
    /// Write a checkpoint after every `ckpt_every`-th healthy epoch.
    /// `0` disables checkpointing (requires [`TrainSettings::ckpt_dir`]).
    pub ckpt_every: usize,
    /// Directory for checkpoint files (created if missing).
    pub ckpt_dir: Option<PathBuf>,
    /// Total divergence-retry budget for the run; past it the trainer
    /// fails with [`TrainError::Diverged`].
    pub max_retries: usize,
    /// Learning-rate multiplier applied on each divergence rollback.
    pub lr_backoff: f32,
    /// Cooperative shutdown flag, polled after every healthy epoch. When
    /// requested (programmatically or by a signal via
    /// [`crate::shutdown::install_ctrl_c`]), the loop writes a final
    /// checkpoint into [`TrainSettings::ckpt_dir`] — even off the periodic
    /// [`TrainSettings::ckpt_every`] cadence — and returns early with
    /// [`TrainReport::interrupted`] set, so the run can be resumed
    /// bitwise-identically.
    pub stop: Option<ShutdownFlag>,
}

impl Default for TrainSettings {
    fn default() -> Self {
        Self {
            max_epochs: 60,
            eval_every: 5,
            patience: 3,
            k: 20,
            seed: 7,
            verbose: false,
            ckpt_every: 0,
            ckpt_dir: None,
            max_retries: 2,
            lr_backoff: 0.5,
            stop: None,
        }
    }
}

/// One logged step of the harness.
#[derive(Debug, Clone)]
pub struct EpochLog {
    /// Epoch index (1-based).
    pub epoch: usize,
    /// Mean training loss of the epoch.
    pub loss: f32,
    /// Evaluation result, when this epoch was evaluated.
    pub eval: Option<EvalResult>,
    /// Per-phase timings and work counters, for models that record them
    /// (see [`Recommender::take_epoch_profile`]). The trainer fills
    /// `eval_ns` on evaluated epochs.
    pub profile: Option<EpochProfile>,
}

/// What tripped the divergence guard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DivergenceCause {
    /// The epoch's mean loss came back NaN or ±∞.
    NonFiniteLoss,
    /// A parameter matrix contains a non-finite scalar.
    NonFiniteParams,
}

/// One detected divergence: the trainer rolled back and retried (or gave
/// up, if the budget was spent).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DivergenceEvent {
    /// Epoch whose update diverged.
    pub epoch: usize,
    /// Cumulative retry number (1-based) this event consumed.
    pub retry: usize,
    /// The non-finite (or last observed) epoch loss.
    pub loss: f32,
    /// What tripped the guard.
    pub cause: DivergenceCause,
}

/// Result of a full training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Best evaluation observed (by recall@K).
    pub best: EvalResult,
    /// Epoch at which `best` was observed.
    pub best_epoch: usize,
    /// Per-epoch log.
    pub logs: Vec<EpochLog>,
    /// Model name.
    pub model: String,
    /// Divergences the run recovered from (empty for a healthy run).
    pub divergences: Vec<DivergenceEvent>,
    /// Epoch of the checkpoint this run resumed from, when it did.
    pub resumed_from: Option<usize>,
    /// True when the run stopped early on a [`TrainSettings::stop`]
    /// request (signal or programmatic) rather than by convergence or
    /// the epoch budget; a final checkpoint was written if a
    /// [`TrainSettings::ckpt_dir`] was configured.
    pub interrupted: bool,
}

/// Why a fault-tolerant training run failed.
#[derive(Debug)]
pub enum TrainError {
    /// The model kept diverging after exhausting the retry budget.
    Diverged {
        /// Model name.
        model: String,
        /// Epoch that diverged past the budget.
        epoch: usize,
        /// Retries consumed before giving up.
        retries_used: usize,
        /// Every divergence observed during the run, in order.
        events: Vec<DivergenceEvent>,
    },
    /// Reading or writing a checkpoint failed.
    Checkpoint(CkptError),
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::Diverged { model, epoch, retries_used, events } => {
                writeln!(
                    f,
                    "{model} diverged at epoch {epoch} after {retries_used} rollback retr{}:",
                    if *retries_used == 1 { "y" } else { "ies" }
                )?;
                for e in events {
                    writeln!(
                        f,
                        "  epoch {:>4}  retry {}  loss {:>12}  cause {:?}",
                        e.epoch, e.retry, e.loss, e.cause
                    )?;
                }
                write!(f, "  (lower the learning rate or raise max_retries)")
            }
            TrainError::Checkpoint(e) => write!(f, "checkpoint failure: {e}"),
        }
    }
}

impl std::error::Error for TrainError {}

impl From<CkptError> for TrainError {
    fn from(e: CkptError) -> Self {
        TrainError::Checkpoint(e)
    }
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The training RNG for one epoch, derived from `(seed, epoch, retries)`.
///
/// Deriving a fresh stream per epoch (instead of threading one RNG across
/// the run) is what makes checkpoints self-contained: a resumed run
/// reconstructs the exact stream of every future epoch from three
/// integers that the checkpoint stores. `retries` — the cumulative
/// divergence-rollback count — salts the stream so a retried epoch draws
/// *different* samples than the attempt that diverged.
pub fn epoch_rng(seed: u64, epoch: usize, retries: usize) -> StdRng {
    let mixed =
        splitmix(seed ^ splitmix(epoch as u64) ^ splitmix((retries as u64).wrapping_add(0xD1F4)));
    seeded_rng(mixed)
}

/// Mutable harness state threaded through the loop (and round-tripped
/// through checkpoints).
struct LoopState {
    best: Option<EvalResult>,
    best_epoch: usize,
    stale: usize,
    retries: usize,
    divergences: Vec<DivergenceEvent>,
    logs: Vec<EpochLog>,
    resumed_from: Option<usize>,
    interrupted: bool,
}

impl LoopState {
    fn fresh() -> Self {
        Self {
            best: None,
            best_epoch: 0,
            stale: 0,
            retries: 0,
            divergences: Vec::new(),
            logs: Vec::new(),
            resumed_from: None,
            interrupted: false,
        }
    }

    fn from_checkpoint(ck: &TrainCheckpoint) -> Self {
        Self {
            best: ck.best,
            best_epoch: ck.best_epoch,
            stale: ck.stale,
            retries: ck.retries,
            divergences: ck.divergences.clone(),
            logs: ck.logs.clone(),
            resumed_from: Some(ck.epoch),
            interrupted: false,
        }
    }
}

/// Train `model` to convergence (or `max_epochs`) and report the best
/// held-out metrics observed, following the papers' standard protocol of
/// reporting the best evaluation epoch.
///
/// Thin infallible wrapper over [`try_train`] for callers that treat a
/// non-recoverable divergence or a checkpoint I/O failure as fatal.
///
/// # Panics
/// Panics with the structured [`TrainError`] report when [`try_train`]
/// fails.
pub fn train(
    model: &mut dyn Recommender,
    ctx: &TrainContext<'_>,
    settings: &TrainSettings,
) -> TrainReport {
    try_train(model, ctx, settings).unwrap_or_else(|e| panic!("training failed: {e}"))
}

/// Fault-tolerant training: like [`train`] but surfaces divergence-budget
/// exhaustion and checkpoint failures as [`TrainError`] instead of
/// panicking.
pub fn try_train(
    model: &mut dyn Recommender,
    ctx: &TrainContext<'_>,
    settings: &TrainSettings,
) -> Result<TrainReport, TrainError> {
    run_loop(model, ctx, settings, 1, LoopState::fresh())
}

/// Continue a run from a checkpoint written by an earlier (possibly
/// killed) invocation with the same settings.
///
/// Refuses checkpoints from a different model, a different seed, or a
/// different training *mode* (legacy per-batch vs. replica macro-step)
/// with [`CkptError::Mismatch`] — silently resuming them would change the
/// derived RNG streams and poison the run's determinism guarantee.
/// Resuming with a different **nonzero** replica count is allowed: the
/// macro-step gradient schedule does not depend on the thread count.
pub fn train_resumed(
    model: &mut dyn Recommender,
    ctx: &TrainContext<'_>,
    settings: &TrainSettings,
    path: &Path,
) -> Result<TrainReport, TrainError> {
    let ck = TrainCheckpoint::load(path)?;
    if ck.model_name != model.name() {
        return Err(CkptError::Mismatch(format!(
            "checkpoint is for model `{}`, resuming `{}`",
            ck.model_name,
            model.name()
        ))
        .into());
    }
    if ck.seed != settings.seed {
        return Err(CkptError::Mismatch(format!(
            "checkpoint was trained with seed {}, settings say {}",
            ck.seed, settings.seed
        ))
        .into());
    }
    // The legacy per-batch path and the replica macro-step path draw
    // different RNG schedules, so switching *modes* mid-run would silently
    // diverge from the uninterrupted run. Switching between nonzero
    // replica counts is safe: the macro-step schedule is fixed-width and
    // thread-count-invariant.
    let replicas = model.replicas() as u64;
    if (ck.replicas == 0) != (replicas == 0) {
        return Err(CkptError::Mismatch(format!(
            "checkpoint was trained with replicas = {} but the model resumes with replicas = {}; \
             legacy (0) and replica (>=1) modes draw different RNG schedules",
            ck.replicas, replicas
        ))
        .into());
    }
    model.load_state(&ck.state)?;
    let start = ck.epoch + 1;
    run_loop(model, ctx, settings, start, LoopState::from_checkpoint(&ck))
}

fn run_loop(
    model: &mut dyn Recommender,
    ctx: &TrainContext<'_>,
    settings: &TrainSettings,
    start_epoch: usize,
    mut st: LoopState,
) -> Result<TrainReport, TrainError> {
    assert!(settings.eval_every > 0, "eval_every must be positive");
    // Created whenever a checkpoint dir is configured, not only on the
    // periodic cadence: a shutdown request writes a final checkpoint even
    // with `ckpt_every == 0`.
    if let Some(dir) = settings.ckpt_dir.as_ref() {
        std::fs::create_dir_all(dir).map_err(CkptError::Io)?;
    }
    // Rollback target for the divergence guard: the snapshot taken after
    // the most recent healthy epoch (initially the untrained model).
    let mut last_good = model.save_state();

    let mut epoch = start_epoch;
    while epoch <= settings.max_epochs {
        let mut rng = epoch_rng(settings.seed, epoch, st.retries);
        let loss = model.train_epoch(ctx, &mut rng);
        let mut profile = model.take_epoch_profile();

        if !loss.is_finite() || !model.params_finite() {
            let cause = if loss.is_finite() {
                DivergenceCause::NonFiniteParams
            } else {
                DivergenceCause::NonFiniteLoss
            };
            if st.retries >= settings.max_retries {
                st.divergences.push(DivergenceEvent { epoch, retry: st.retries, loss, cause });
                return Err(TrainError::Diverged {
                    model: model.name(),
                    epoch,
                    retries_used: st.retries,
                    events: st.divergences,
                });
            }
            st.retries += 1;
            st.divergences.push(DivergenceEvent { epoch, retry: st.retries, loss, cause });
            model.load_state(&last_good)?;
            model.scale_lr(settings.lr_backoff);
            if settings.verbose {
                eprintln!(
                    "[{}] epoch {epoch}: DIVERGED ({cause:?}, loss {loss}) — rolled back, \
                     lr ×{}, retry {}/{}",
                    model.name(),
                    settings.lr_backoff,
                    st.retries,
                    settings.max_retries
                );
            }
            continue; // retry the same epoch with a salted RNG stream
        }

        let do_eval = epoch.is_multiple_of(settings.eval_every) || epoch == settings.max_epochs;
        let eval = if do_eval {
            let clock = Instant::now();
            model.prepare_eval(ctx);
            let r = evaluate(model, ctx.inter, settings.k);
            if let Some(p) = profile.as_mut() {
                p.eval_ns = clock.elapsed().as_nanos() as u64;
            }
            if settings.verbose {
                eprintln!(
                    "[{}] epoch {epoch}: loss {loss:.4} recall@{} {:.4} ndcg@{} {:.4}",
                    model.name(),
                    settings.k,
                    r.recall,
                    settings.k,
                    r.ndcg
                );
            }
            let improved = st.best.is_none_or(|b| r.recall > b.recall);
            if improved {
                st.best = Some(r);
                st.best_epoch = epoch;
                st.stale = 0;
            } else {
                st.stale += 1;
            }
            Some(r)
        } else {
            None
        };
        st.logs.push(EpochLog { epoch, loss, eval, profile });
        last_good = model.save_state();

        let mut checkpointed = false;
        if settings.ckpt_every > 0 && epoch.is_multiple_of(settings.ckpt_every) {
            if let Some(dir) = settings.ckpt_dir.as_ref() {
                persist_checkpoint(model, settings, &st, epoch, &last_good, dir)?;
                checkpointed = true;
            }
        }

        // Cooperative shutdown (signal or programmatic): leave a final
        // checkpoint behind — even off the periodic cadence — so the run
        // resumes bitwise-identically, then stop at this epoch boundary.
        if settings.stop.as_ref().is_some_and(ShutdownFlag::is_requested) {
            if let (false, Some(dir)) = (checkpointed, settings.ckpt_dir.as_ref()) {
                persist_checkpoint(model, settings, &st, epoch, &last_good, dir)?;
                checkpointed = true;
            }
            st.interrupted = true;
            if settings.verbose {
                eprintln!(
                    "[{}] epoch {epoch}: shutdown requested — stopping{}",
                    model.name(),
                    if checkpointed { ", final checkpoint written" } else { "" }
                );
            }
            break;
        }

        if settings.patience > 0 && st.stale >= settings.patience {
            break;
        }
        epoch += 1;
    }

    let best = st.best.unwrap_or(EvalResult {
        recall: 0.0,
        ndcg: 0.0,
        precision: 0.0,
        hit: 0.0,
        n_users: 0,
        k: settings.k,
    });
    Ok(TrainReport {
        best,
        best_epoch: st.best_epoch,
        logs: st.logs,
        model: model.name(),
        divergences: st.divergences,
        resumed_from: st.resumed_from,
        interrupted: st.interrupted,
    })
}

/// Persist the harness state as a [`TrainCheckpoint`] at `epoch`.
///
/// The per-epoch divergence guard is incremental (it scans only rows the
/// optimizer touched), so a checkpoint about to be persisted gets one
/// absolute full scan — a poisoned snapshot on disk would outlive every
/// in-memory rollback target.
fn persist_checkpoint(
    model: &dyn Recommender,
    settings: &TrainSettings,
    st: &LoopState,
    epoch: usize,
    state: &ModelState,
    dir: &Path,
) -> Result<(), TrainError> {
    if !state.all_finite() {
        return Err(CkptError::Mismatch(format!(
            "refusing to checkpoint non-finite state for {} at epoch {epoch}",
            model.name()
        ))
        .into());
    }
    let ck = TrainCheckpoint {
        model_name: model.name(),
        seed: settings.seed,
        replicas: model.replicas() as u64,
        epoch,
        best: st.best,
        best_epoch: st.best_epoch,
        stale: st.stale,
        retries: st.retries,
        divergences: st.divergences.clone(),
        logs: st.logs.clone(),
        state: state.clone(),
    };
    Ok(ck.save(&checkpoint_path(dir, epoch))?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use facility_kg::{CkgBuilder, Id, Interactions, KnowledgeSource, SourceMask};
    use facility_models::{ModelConfig, ModelKind};

    fn world() -> (Interactions, facility_kg::Ckg) {
        let mut events: Vec<(Id, Id)> = Vec::new();
        for u in 0..12u32 {
            for j in 0..5u32 {
                events.push((u, (u % 4) * 5 + j)); // blocks of preferred items
            }
        }
        let inter = Interactions::split(12, 20, &events, 0.25, &mut facility_linalg::seeded_rng(0));
        let mut b = CkgBuilder::new(12, 20);
        b.add_interactions(&inter.train_pairs);
        for i in 0..20u32 {
            b.add_item_attribute(KnowledgeSource::Dkg, "hasDataType", i, format!("t:{}", i / 5));
        }
        (inter.clone(), b.build(SourceMask::all()))
    }

    #[test]
    fn trainer_improves_over_untrained_model() {
        let (inter, ckg) = world();
        let ctx = TrainContext { inter: &inter, ckg: &ckg };
        let cfg = ModelConfig { keep_prob: 1.0, ..ModelConfig::fast() };
        let mut model = ModelKind::Bprmf.build(&ctx, &cfg);

        model.prepare_eval(&ctx);
        let before = evaluate(model.as_ref(), &inter, 5);

        let settings = TrainSettings {
            max_epochs: 40,
            eval_every: 5,
            patience: 0,
            k: 5,
            seed: 3,
            ..TrainSettings::default()
        };
        let report = train(model.as_mut(), &ctx, &settings);
        assert!(
            report.best.recall >= before.recall,
            "training should not hurt: {} -> {}",
            before.recall,
            report.best.recall
        );
        assert!(report.best.recall > 0.2, "recall@5 {}", report.best.recall);
        assert_eq!(report.logs.len(), 40);
        assert!(report.best_epoch >= 1);
        assert!(report.divergences.is_empty());
        assert!(report.resumed_from.is_none());
    }

    #[test]
    fn early_stopping_truncates_run() {
        let (inter, ckg) = world();
        let ctx = TrainContext { inter: &inter, ckg: &ckg };
        let cfg = ModelConfig { keep_prob: 1.0, ..ModelConfig::fast() };
        let mut model = ModelKind::Bprmf.build(&ctx, &cfg);
        let settings = TrainSettings {
            max_epochs: 1000,
            eval_every: 1,
            patience: 2,
            k: 5,
            seed: 3,
            ..TrainSettings::default()
        };
        let report = train(model.as_mut(), &ctx, &settings);
        assert!(report.logs.len() < 1000, "early stopping never triggered");
    }

    #[test]
    fn ckat_epochs_carry_profiles() {
        let (inter, ckg) = world();
        let ctx = TrainContext { inter: &inter, ckg: &ckg };
        let cfg = ModelConfig { keep_prob: 1.0, ..ModelConfig::fast() };
        let mut model = ModelKind::Ckat.build(&ctx, &cfg);
        let settings = TrainSettings {
            max_epochs: 2,
            eval_every: 2,
            patience: 0,
            k: 5,
            seed: 3,
            ..TrainSettings::default()
        };
        let report = train(model.as_mut(), &ctx, &settings);
        for log in &report.logs {
            let p = log.profile.expect("CKAT records an EpochProfile per epoch");
            assert!(p.batches >= 1);
            assert!(p.gathered_rows <= p.full_rows);
        }
        let evaluated = report.logs.last().unwrap().profile.unwrap();
        assert!(evaluated.eval_ns > 0, "trainer fills eval_ns on evaluated epochs");
    }

    #[test]
    fn report_logs_contain_eval_points() {
        let (inter, ckg) = world();
        let ctx = TrainContext { inter: &inter, ckg: &ckg };
        let cfg = ModelConfig { keep_prob: 1.0, ..ModelConfig::fast() };
        let mut model = ModelKind::Bprmf.build(&ctx, &cfg);
        let settings = TrainSettings {
            max_epochs: 6,
            eval_every: 3,
            patience: 0,
            k: 5,
            seed: 3,
            ..TrainSettings::default()
        };
        let report = train(model.as_mut(), &ctx, &settings);
        let evals = report.logs.iter().filter(|l| l.eval.is_some()).count();
        assert_eq!(evals, 2); // epochs 3 and 6
    }

    #[test]
    fn epoch_rng_streams_are_distinct_and_reproducible() {
        use rand::RngCore;
        let a1 = epoch_rng(7, 3, 0).next_u64();
        let a2 = epoch_rng(7, 3, 0).next_u64();
        assert_eq!(a1, a2, "same (seed, epoch, retries) must reproduce");
        assert_ne!(a1, epoch_rng(7, 4, 0).next_u64(), "epochs draw distinct streams");
        assert_ne!(a1, epoch_rng(7, 3, 1).next_u64(), "retry salt changes the stream");
        assert_ne!(a1, epoch_rng(8, 3, 0).next_u64(), "seed changes the stream");
    }

    #[test]
    fn trainer_writes_periodic_checkpoints() {
        let dir = std::env::temp_dir().join(format!("facility-trainer-ck-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (inter, ckg) = world();
        let ctx = TrainContext { inter: &inter, ckg: &ckg };
        let cfg = ModelConfig { keep_prob: 1.0, ..ModelConfig::fast() };
        let mut model = ModelKind::Bprmf.build(&ctx, &cfg);
        let settings = TrainSettings {
            max_epochs: 6,
            eval_every: 3,
            patience: 0,
            k: 5,
            seed: 3,
            ckpt_every: 2,
            ckpt_dir: Some(dir.clone()),
            ..TrainSettings::default()
        };
        train(model.as_mut(), &ctx, &settings);
        for epoch in [2, 4, 6] {
            let p = checkpoint_path(&dir, epoch);
            assert!(p.exists(), "missing checkpoint {p:?}");
            let ck = TrainCheckpoint::load(&p).unwrap();
            assert_eq!(ck.epoch, epoch);
            assert_eq!(ck.model_name, "BPRMF");
            assert_eq!(ck.logs.len(), epoch);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
