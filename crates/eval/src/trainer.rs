//! Epoch loop with periodic evaluation and early stopping.

use crate::{evaluate, EvalResult};
use facility_linalg::seeded_rng;
use facility_models::{EpochProfile, Recommender, TrainContext};
use std::time::Instant;

/// Harness settings.
#[derive(Debug, Clone)]
pub struct TrainSettings {
    /// Upper bound on epochs.
    pub max_epochs: usize,
    /// Evaluate every `eval_every` epochs (and after the final epoch).
    pub eval_every: usize,
    /// Stop after this many consecutive evaluations without a recall@K
    /// improvement. `0` disables early stopping.
    pub patience: usize,
    /// Top-K cutoff (paper default 20).
    pub k: usize,
    /// Seed for the training-time RNG (sampling, dropout).
    pub seed: u64,
    /// Print one line per evaluation to stderr.
    pub verbose: bool,
}

impl Default for TrainSettings {
    fn default() -> Self {
        Self { max_epochs: 60, eval_every: 5, patience: 3, k: 20, seed: 7, verbose: false }
    }
}

/// One logged step of the harness.
#[derive(Debug, Clone)]
pub struct EpochLog {
    /// Epoch index (1-based).
    pub epoch: usize,
    /// Mean training loss of the epoch.
    pub loss: f32,
    /// Evaluation result, when this epoch was evaluated.
    pub eval: Option<EvalResult>,
    /// Per-phase timings and work counters, for models that record them
    /// (see [`Recommender::take_epoch_profile`]). The trainer fills
    /// `eval_ns` on evaluated epochs.
    pub profile: Option<EpochProfile>,
}

/// Result of a full training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Best evaluation observed (by recall@K).
    pub best: EvalResult,
    /// Epoch at which `best` was observed.
    pub best_epoch: usize,
    /// Per-epoch log.
    pub logs: Vec<EpochLog>,
    /// Model name.
    pub model: String,
}

/// Train `model` to convergence (or `max_epochs`) and report the best
/// held-out metrics observed, following the papers' standard protocol of
/// reporting the best evaluation epoch.
pub fn train(
    model: &mut dyn Recommender,
    ctx: &TrainContext<'_>,
    settings: &TrainSettings,
) -> TrainReport {
    assert!(settings.eval_every > 0, "eval_every must be positive");
    let mut rng = seeded_rng(settings.seed);
    let mut logs = Vec::new();
    let mut best: Option<EvalResult> = None;
    let mut best_epoch = 0;
    let mut stale = 0usize;

    for epoch in 1..=settings.max_epochs {
        let loss = model.train_epoch(ctx, &mut rng);
        let mut profile = model.take_epoch_profile();
        let do_eval = epoch % settings.eval_every == 0 || epoch == settings.max_epochs;
        let eval = if do_eval {
            let clock = Instant::now();
            model.prepare_eval(ctx);
            let r = evaluate(model, ctx.inter, settings.k);
            if let Some(p) = profile.as_mut() {
                p.eval_ns = clock.elapsed().as_nanos() as u64;
            }
            if settings.verbose {
                eprintln!(
                    "[{}] epoch {epoch}: loss {loss:.4} recall@{} {:.4} ndcg@{} {:.4}",
                    model.name(),
                    settings.k,
                    r.recall,
                    settings.k,
                    r.ndcg
                );
            }
            let improved = best.is_none_or(|b| r.recall > b.recall);
            if improved {
                best = Some(r);
                best_epoch = epoch;
                stale = 0;
            } else {
                stale += 1;
            }
            Some(r)
        } else {
            None
        };
        logs.push(EpochLog { epoch, loss, eval, profile });
        if settings.patience > 0 && stale >= settings.patience {
            break;
        }
    }

    let best = best.unwrap_or(EvalResult {
        recall: 0.0,
        ndcg: 0.0,
        precision: 0.0,
        hit: 0.0,
        n_users: 0,
        k: settings.k,
    });
    TrainReport { best, best_epoch, logs, model: model.name() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use facility_kg::{CkgBuilder, Id, Interactions, KnowledgeSource, SourceMask};
    use facility_models::{ModelConfig, ModelKind};

    fn world() -> (Interactions, facility_kg::Ckg) {
        let mut events: Vec<(Id, Id)> = Vec::new();
        for u in 0..12u32 {
            for j in 0..5u32 {
                events.push((u, (u % 4) * 5 + j)); // blocks of preferred items
            }
        }
        let inter = Interactions::split(12, 20, &events, 0.25, &mut facility_linalg::seeded_rng(0));
        let mut b = CkgBuilder::new(12, 20);
        b.add_interactions(&inter.train_pairs);
        for i in 0..20u32 {
            b.add_item_attribute(KnowledgeSource::Dkg, "hasDataType", i, format!("t:{}", i / 5));
        }
        (inter.clone(), b.build(SourceMask::all()))
    }

    #[test]
    fn trainer_improves_over_untrained_model() {
        let (inter, ckg) = world();
        let ctx = TrainContext { inter: &inter, ckg: &ckg };
        let cfg = ModelConfig { keep_prob: 1.0, ..ModelConfig::fast() };
        let mut model = ModelKind::Bprmf.build(&ctx, &cfg);

        model.prepare_eval(&ctx);
        let before = evaluate(model.as_ref(), &inter, 5);

        let settings = TrainSettings {
            max_epochs: 40,
            eval_every: 5,
            patience: 0,
            k: 5,
            seed: 3,
            verbose: false,
        };
        let report = train(model.as_mut(), &ctx, &settings);
        assert!(
            report.best.recall >= before.recall,
            "training should not hurt: {} -> {}",
            before.recall,
            report.best.recall
        );
        assert!(report.best.recall > 0.2, "recall@5 {}", report.best.recall);
        assert_eq!(report.logs.len(), 40);
        assert!(report.best_epoch >= 1);
    }

    #[test]
    fn early_stopping_truncates_run() {
        let (inter, ckg) = world();
        let ctx = TrainContext { inter: &inter, ckg: &ckg };
        let cfg = ModelConfig { keep_prob: 1.0, ..ModelConfig::fast() };
        let mut model = ModelKind::Bprmf.build(&ctx, &cfg);
        let settings = TrainSettings {
            max_epochs: 1000,
            eval_every: 1,
            patience: 2,
            k: 5,
            seed: 3,
            verbose: false,
        };
        let report = train(model.as_mut(), &ctx, &settings);
        assert!(report.logs.len() < 1000, "early stopping never triggered");
    }

    #[test]
    fn ckat_epochs_carry_profiles() {
        let (inter, ckg) = world();
        let ctx = TrainContext { inter: &inter, ckg: &ckg };
        let cfg = ModelConfig { keep_prob: 1.0, ..ModelConfig::fast() };
        let mut model = ModelKind::Ckat.build(&ctx, &cfg);
        let settings = TrainSettings {
            max_epochs: 2,
            eval_every: 2,
            patience: 0,
            k: 5,
            seed: 3,
            verbose: false,
        };
        let report = train(model.as_mut(), &ctx, &settings);
        for log in &report.logs {
            let p = log.profile.expect("CKAT records an EpochProfile per epoch");
            assert!(p.batches >= 1);
            assert!(p.gathered_rows <= p.full_rows);
        }
        let evaluated = report.logs.last().unwrap().profile.unwrap();
        assert!(evaluated.eval_ns > 0, "trainer fills eval_ns on evaluated epochs");
    }

    #[test]
    fn report_logs_contain_eval_points() {
        let (inter, ckg) = world();
        let ctx = TrainContext { inter: &inter, ckg: &ckg };
        let cfg = ModelConfig { keep_prob: 1.0, ..ModelConfig::fast() };
        let mut model = ModelKind::Bprmf.build(&ctx, &cfg);
        let settings = TrainSettings {
            max_epochs: 6,
            eval_every: 3,
            patience: 0,
            k: 5,
            seed: 3,
            verbose: false,
        };
        let report = train(model.as_mut(), &ctx, &settings);
        let evals = report.logs.iter().filter(|l| l.eval.is_some()).count();
        assert_eq!(evals, 2); // epochs 3 and 6
    }
}
