//! Per-user top-K ranking metrics and their aggregation.

use facility_kg::Id;

/// Metrics of one user's ranked list at cutoff `K`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopKMetrics {
    /// `|top-K ∩ test| / |test|`.
    pub recall: f64,
    /// DCG@K normalized by the ideal DCG for this user.
    pub ndcg: f64,
    /// `|top-K ∩ test| / K`.
    pub precision: f64,
    /// 1 if any test item appears in the top-K.
    pub hit: f64,
}

/// Aggregated evaluation result (means over evaluated users).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalResult {
    /// Mean recall@K.
    pub recall: f64,
    /// Mean ndcg@K.
    pub ndcg: f64,
    /// Mean precision@K.
    pub precision: f64,
    /// Mean hit-ratio@K.
    pub hit: f64,
    /// Users contributing to the averages.
    pub n_users: usize,
    /// The cutoff used.
    pub k: usize,
}

impl EvalResult {
    /// Mean of per-user metrics; an empty slice yields zeros.
    pub fn aggregate(per_user: &[TopKMetrics], k: usize) -> Self {
        let n = per_user.len();
        if n == 0 {
            return Self { recall: 0.0, ndcg: 0.0, precision: 0.0, hit: 0.0, n_users: 0, k };
        }
        let mut out = Self { recall: 0.0, ndcg: 0.0, precision: 0.0, hit: 0.0, n_users: n, k };
        for m in per_user {
            out.recall += m.recall;
            out.ndcg += m.ndcg;
            out.precision += m.precision;
            out.hit += m.hit;
        }
        out.recall /= n as f64;
        out.ndcg /= n as f64;
        out.precision /= n as f64;
        out.hit /= n as f64;
        out
    }
}

/// Rank the top-`k` items by `(score desc, id asc)` over every item not
/// in `exclude` (sorted ascending), via partial selection — the scoring
/// kernel shared by offline evaluation and the online serving layer's
/// exact rung. Returns at most `k` `(item, score)` pairs, best first;
/// `k` is clamped to the number of rankable items.
pub fn rank_top_k(scores: &[f32], exclude: &[Id], k: usize) -> Vec<(Id, f32)> {
    if k == 0 {
        return Vec::new();
    }
    let mut candidates: Vec<u32> =
        (0..scores.len() as u32).filter(|&i| exclude.binary_search(&i).is_err()).collect();
    if candidates.is_empty() {
        return Vec::new();
    }
    let k_eff = k.min(candidates.len());
    // audit: unwrap — candidate ids are drawn from 0..scores.len() below.
    let by = |a: &u32, b: &u32| {
        scores[*b as usize]
            .partial_cmp(&scores[*a as usize])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(b))
    };
    // Partial selection of the top-k_eff by (score desc, id asc).
    candidates.select_nth_unstable_by(k_eff - 1, by);
    candidates.truncate(k_eff);
    candidates.sort_unstable_by(by);
    // audit: unwrap — candidate ids were drawn from 0..scores.len() above.
    candidates.into_iter().map(|i| (i, scores[i as usize])).collect()
}

/// Compute one user's top-K metrics from an already-ranked list.
///
/// `top` is the user's ranked list (best first, train positives already
/// masked out), `test_items` the held-out positives sorted ascending.
/// Returns `None` when there are no test items or the ranked list is
/// empty. This is the shared metric tail of [`topk_for_user`] and the
/// batched retrieval path in `evaluate_chunked` — both must produce
/// bitwise-identical metrics from the same ranked list.
pub fn topk_metrics_from_ranked(top: &[(Id, f32)], test_items: &[Id]) -> Option<TopKMetrics> {
    if test_items.is_empty() || top.is_empty() {
        return None;
    }
    let k_eff = top.len();

    let mut hits = 0usize;
    let mut dcg = 0.0f64;
    for (pos, &(item, _)) in top.iter().enumerate() {
        if test_items.binary_search(&item).is_ok() {
            hits += 1;
            dcg += 1.0 / ((pos + 2) as f64).log2();
        }
    }
    let ideal_hits = test_items.len().min(k_eff);
    let idcg: f64 = (0..ideal_hits).map(|p| 1.0 / ((p + 2) as f64).log2()).sum();

    Some(TopKMetrics {
        recall: hits as f64 / test_items.len() as f64,
        ndcg: if idcg > 0.0 { dcg / idcg } else { 0.0 },
        precision: hits as f64 / k_eff as f64,
        hit: if hits > 0 { 1.0 } else { 0.0 },
    })
}

/// Compute one user's top-K metrics from raw item scores.
///
/// * `scores` — one score per item;
/// * `train_items` — the user's train positives (masked out of the
///   ranking), sorted ascending;
/// * `test_items` — the held-out positives, sorted ascending.
///
/// Returns `None` when the user has no test items. `K` is clamped to the
/// number of rankable items. Ties break by item id (deterministic).
pub fn topk_for_user(
    scores: &[f32],
    train_items: &[Id],
    test_items: &[Id],
    k: usize,
) -> Option<TopKMetrics> {
    if test_items.is_empty() || k == 0 {
        return None;
    }
    let top = rank_top_k(scores, train_items, k);
    topk_metrics_from_ranked(&top, test_items)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_top_k_orders_masks_and_clamps() {
        let scores = vec![0.5, 2.0, 1.0, 2.0, 0.0];
        // Item 1 masked; ties (1 vs 3) would break by id, so 3 wins here.
        assert_eq!(rank_top_k(&scores, &[1], 3), vec![(3, 2.0), (2, 1.0), (0, 0.5)]);
        // Tie between 1 and 3: lower id first.
        assert_eq!(rank_top_k(&scores, &[], 2), vec![(1, 2.0), (3, 2.0)]);
        // k clamps to catalog, k=0 and all-masked yield empty.
        assert_eq!(rank_top_k(&scores, &[], 99).len(), 5);
        assert!(rank_top_k(&scores, &[], 0).is_empty());
        assert!(rank_top_k(&[1.0], &[0], 3).is_empty());
    }

    #[test]
    fn perfect_ranking_is_all_ones() {
        let scores = vec![0.1, 0.9, 0.8, 0.0];
        let m = topk_for_user(&scores, &[], &[1, 2], 2).unwrap();
        assert_eq!(m.recall, 1.0);
        assert_eq!(m.ndcg, 1.0);
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.hit, 1.0);
    }

    #[test]
    fn worst_ranking_is_all_zeros() {
        let scores = vec![0.9, 0.8, 0.1, 0.0];
        let m = topk_for_user(&scores, &[], &[3], 2).unwrap();
        assert_eq!(m.recall, 0.0);
        assert_eq!(m.ndcg, 0.0);
        assert_eq!(m.hit, 0.0);
    }

    #[test]
    fn ndcg_rewards_earlier_hits() {
        let scores_first = vec![1.0, 0.5, 0.4]; // hit at rank 1
        let scores_second = vec![0.5, 1.0, 0.4]; // hit at rank 2
        let m1 = topk_for_user(&scores_first, &[], &[0], 2).unwrap();
        let m2 = topk_for_user(&scores_second, &[], &[0], 2).unwrap();
        assert!(m1.ndcg > m2.ndcg);
        assert_eq!(m1.recall, m2.recall);
    }

    #[test]
    fn k_larger_than_catalog_clamps() {
        let scores = vec![0.3, 0.2];
        let m = topk_for_user(&scores, &[], &[1], 100).unwrap();
        assert_eq!(m.recall, 1.0);
        // precision uses the effective k (2), not 100.
        assert_eq!(m.precision, 0.5);
    }

    #[test]
    fn train_items_never_ranked() {
        // Item 0 dominates but is a train positive.
        let scores = vec![10.0, 1.0, 0.5];
        let m = topk_for_user(&scores, &[0], &[1], 1).unwrap();
        assert_eq!(m.recall, 1.0);
    }

    #[test]
    fn no_test_items_yields_none() {
        assert!(topk_for_user(&[1.0, 2.0], &[], &[], 5).is_none());
        assert!(topk_for_user(&[1.0, 2.0], &[], &[1], 0).is_none());
    }

    #[test]
    fn all_items_in_train_yields_none() {
        assert!(topk_for_user(&[1.0, 2.0], &[0, 1], &[1], 5).is_none());
    }

    #[test]
    fn recall_is_fraction_of_test_set() {
        let scores = vec![0.9, 0.8, 0.7, 0.0, 0.0];
        let m = topk_for_user(&scores, &[], &[0, 1, 3, 4], 2).unwrap();
        // Top-2 = {0, 1}; both are test items out of 4.
        assert_eq!(m.recall, 0.5);
        assert_eq!(m.precision, 1.0);
    }

    #[test]
    fn ties_break_deterministically_by_id() {
        let scores = vec![1.0, 1.0, 1.0];
        let a = topk_for_user(&scores, &[], &[0], 1).unwrap();
        let b = topk_for_user(&scores, &[], &[0], 1).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.recall, 1.0, "lowest id wins ties");
    }

    #[test]
    fn aggregate_empty_is_zero() {
        let r = EvalResult::aggregate(&[], 20);
        assert_eq!(r.n_users, 0);
        assert_eq!(r.recall, 0.0);
    }

    #[test]
    fn aggregate_means() {
        let ms = vec![
            TopKMetrics { recall: 1.0, ndcg: 1.0, precision: 0.5, hit: 1.0 },
            TopKMetrics { recall: 0.0, ndcg: 0.0, precision: 0.0, hit: 0.0 },
        ];
        let r = EvalResult::aggregate(&ms, 20);
        assert_eq!(r.recall, 0.5);
        assert_eq!(r.precision, 0.25);
        assert_eq!(r.n_users, 2);
    }

    #[test]
    fn metrics_always_in_unit_interval() {
        // Randomized-ish sweep over score patterns.
        for seed in 0..20 {
            let scores: Vec<f32> =
                (0..10).map(|i| ((i * 7 + seed * 13) % 11) as f32 / 11.0).collect();
            let test: Vec<Id> = vec![(seed % 10) as Id];
            if let Some(m) = topk_for_user(&scores, &[2, 5], &test, 3) {
                for v in [m.recall, m.ndcg, m.precision, m.hit] {
                    assert!((0.0..=1.0).contains(&v), "seed {seed}: {v}");
                }
            }
        }
    }
}
