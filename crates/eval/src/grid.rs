//! Grid search over shared hyperparameters — the paper's protocol
//! ("We apply a grid search for hyperparameters: the learning rate is
//! tuned in {0.05, 0.01, 0.005, 0.001}, the coefficient for L2
//! normalization within {1e-5 … 1e2} …", Section VI-D).

use crate::{train, TrainReport, TrainSettings};
use facility_models::{ModelConfig, ModelKind, TrainContext};

/// The search space: Cartesian product of learning rates, L2 weights, and
/// keep-probabilities.
#[derive(Debug, Clone)]
pub struct Grid {
    /// Learning-rate candidates.
    pub lrs: Vec<f32>,
    /// L2 coefficient candidates.
    pub l2s: Vec<f32>,
    /// Dropout keep-prob candidates.
    pub keep_probs: Vec<f32>,
}

impl Grid {
    /// The paper's grid, thinned to the values that matter at our scale.
    pub fn paper() -> Self {
        Self { lrs: vec![0.01, 0.005, 0.001], l2s: vec![1e-5, 1e-4, 1e-3], keep_probs: vec![0.9] }
    }

    /// A minimal 2-point grid for tests.
    pub fn tiny() -> Self {
        Self { lrs: vec![0.05, 0.01], l2s: vec![1e-5], keep_probs: vec![1.0] }
    }

    /// Number of configurations.
    pub fn len(&self) -> usize {
        self.lrs.len() * self.l2s.len() * self.keep_probs.len()
    }

    /// True when the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Outcome of a grid search.
pub struct GridResult {
    /// The winning configuration.
    pub best_config: ModelConfig,
    /// Its training report.
    pub best_report: TrainReport,
    /// Every `(config, recall@K)` pair evaluated, in search order.
    pub trials: Vec<(ModelConfig, f64)>,
}

/// Exhaustively train `kind` over the grid (sequentially — each training
/// run already saturates the worker pool) and return the configuration
/// with the best recall@K.
///
/// # Panics
/// Panics on an empty grid.
pub fn grid_search(
    ctx: &TrainContext<'_>,
    kind: ModelKind,
    base: &ModelConfig,
    grid: &Grid,
    settings: &TrainSettings,
) -> GridResult {
    assert!(!grid.is_empty(), "grid_search: empty grid");
    let mut best: Option<(ModelConfig, TrainReport)> = None;
    let mut trials = Vec::with_capacity(grid.len());
    for &lr in &grid.lrs {
        for &l2 in &grid.l2s {
            for &keep_prob in &grid.keep_probs {
                let config = ModelConfig { lr, l2, keep_prob, ..base.clone() };
                let mut model = kind.build(ctx, &config);
                let report = train(model.as_mut(), ctx, settings);
                trials.push((config.clone(), report.best.recall));
                let better = best.as_ref().is_none_or(|(_, b)| report.best.recall > b.best.recall);
                if better {
                    best = Some((config, report));
                }
            }
        }
    }
    let (best_config, best_report) = best.expect("non-empty grid");
    GridResult { best_config, best_report, trials }
}

#[cfg(test)]
mod tests {
    use super::*;
    use facility_kg::{CkgBuilder, Id, Interactions, SourceMask};
    use facility_linalg::seeded_rng;

    fn world() -> (Interactions, facility_kg::Ckg) {
        let mut events: Vec<(Id, Id)> = Vec::new();
        for u in 0..10u32 {
            for j in 0..4u32 {
                events.push((u, (u % 3) * 4 + j));
            }
        }
        let inter = Interactions::split(10, 12, &events, 0.25, &mut seeded_rng(0));
        let mut b = CkgBuilder::new(10, 12);
        b.add_interactions(&inter.train_pairs);
        (inter.clone(), b.build(SourceMask::all()))
    }

    #[test]
    fn grid_search_returns_the_argmax_trial() {
        let (inter, ckg) = world();
        let ctx = TrainContext { inter: &inter, ckg: &ckg };
        let settings = TrainSettings {
            max_epochs: 10,
            eval_every: 5,
            patience: 0,
            k: 5,
            seed: 2,
            verbose: false,
            ..TrainSettings::default()
        };
        let base = ModelConfig { embed_dim: 8, batch_size: 32, ..ModelConfig::default() };
        let result = grid_search(&ctx, ModelKind::Bprmf, &base, &Grid::tiny(), &settings);
        assert_eq!(result.trials.len(), 2);
        let max = result.trials.iter().map(|(_, r)| *r).fold(f64::MIN, f64::max);
        assert_eq!(result.best_report.best.recall, max);
        assert!(result.trials.iter().any(|(c, _)| c.lr == result.best_config.lr));
    }

    #[test]
    #[should_panic(expected = "empty grid")]
    fn empty_grid_panics() {
        let (inter, ckg) = world();
        let ctx = TrainContext { inter: &inter, ckg: &ckg };
        let grid = Grid { lrs: vec![], l2s: vec![1e-5], keep_probs: vec![1.0] };
        let _ = grid_search(
            &ctx,
            ModelKind::Bprmf,
            &ModelConfig::default(),
            &grid,
            &TrainSettings::default(),
        );
    }
}
