//! Corruption tests for the kg `debug-audit` subgraph checker: mangle an
//! extracted subgraph's public fields and assert `validate` panics with
//! a message that names the violation.
//!
//! Run with `cargo test -p facility-kg --features debug-audit`.

#![cfg(feature = "debug-audit")]

use facility_kg::builder::{Ckg, CkgBuilder, KnowledgeSource, SourceMask};
use facility_kg::subgraph::{BatchSubgraph, SubgraphScratch, UnionExtraction};

fn world() -> Ckg {
    let mut b = CkgBuilder::new(3, 4);
    b.add_interactions(&[(0, 0), (0, 1), (1, 1), (2, 2)]);
    for i in 0..4u32 {
        b.add_item_attribute(KnowledgeSource::Dkg, "dataType", i, format!("t{}", i % 2));
    }
    b.build(SourceMask::all())
}

fn extract(ckg: &Ckg) -> BatchSubgraph {
    let mut scratch = SubgraphScratch::new(ckg.n_entities());
    scratch.extract(ckg, &[0, 1], 2)
}

fn catch(f: impl FnOnce() + std::panic::UnwindSafe) -> String {
    let err = std::panic::catch_unwind(f).expect_err("validate must panic");
    err.downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default()
}

#[test]
fn clean_extraction_validates() {
    let ckg = world();
    let sub = extract(&ckg); // extract() itself validates under debug-audit
    sub.validate(&ckg);
    assert!(sub.n_nodes() > 0);
}

#[test]
fn dropped_edge_is_caught() {
    let ckg = world();
    let mut sub = extract(&ckg);
    assert!(sub.n_edges() > 1, "fixture needs edges");
    sub.edge_ids.remove(0);
    sub.tails.remove(0);
    sub.heads.remove(0);
    let msg = catch(move || sub.validate(&ckg));
    assert!(msg.contains("missing edge"), "unhelpful panic: {msg}");
}

#[test]
fn unsorted_nodes_are_caught() {
    let ckg = world();
    let mut sub = extract(&ckg);
    assert!(sub.n_interior >= 2, "fixture needs 2+ interior nodes");
    sub.nodes.swap(0, 1);
    let msg = catch(move || sub.validate(&ckg));
    assert!(msg.contains("not strictly sorted"), "unhelpful panic: {msg}");
}

#[test]
fn duplicated_node_is_caught() {
    let ckg = world();
    let mut sub = extract(&ckg);
    // Replace the last ring node with a copy of an interior node: both
    // groups stay sorted, but the union now has a duplicate.
    assert!(sub.n_interior < sub.n_nodes(), "fixture needs a ring");
    let n = sub.n_nodes();
    sub.nodes[n - 1] = sub.nodes[0];
    let msg = catch(move || sub.validate(&ckg));
    assert!(
        msg.contains("both interior and ring") || msg.contains("not strictly sorted"),
        "unhelpful panic: {msg}"
    );
}

#[test]
fn escaped_tail_is_caught() {
    let ckg = world();
    let mut sub = extract(&ckg);
    assert!(!sub.tails.is_empty(), "fixture needs edges");
    sub.tails[0] = sub.n_nodes(); // one past the node set
    let msg = catch(move || sub.validate(&ckg));
    assert!(msg.contains("escapes the node set"), "unhelpful panic: {msg}");
}

#[test]
fn trailing_phantom_edge_is_caught() {
    let ckg = world();
    let mut sub = extract(&ckg);
    sub.edge_ids.push(0);
    sub.tails.push(0);
    sub.heads.push(sub.n_interior.saturating_sub(1));
    let msg = catch(move || sub.validate(&ckg));
    assert!(
        msg.contains("beyond the interior") || msg.contains("missing edge"),
        "unhelpful panic: {msg}"
    );
}

#[test]
fn bad_seed_local_is_caught() {
    let ckg = world();
    let mut sub = extract(&ckg);
    sub.seed_locals[0] = sub.n_nodes() + 3;
    let msg = catch(move || sub.validate(&ckg));
    assert!(msg.contains("seed local id"), "unhelpful panic: {msg}");
}

fn extract_union(ckg: &Ckg) -> UnionExtraction {
    let mut scratch = SubgraphScratch::new(ckg.n_entities());
    // extract_many() itself validates under debug-audit.
    scratch.extract_many(ckg, &[vec![0, 1], vec![2]], 2, None)
}

#[test]
fn clean_union_extraction_validates() {
    let ckg = world();
    let union = extract_union(&ckg);
    union.validate(&ckg);
    assert_eq!(union.subgraphs.len(), 2);
    assert!(!union.union_nodes.is_empty());
}

#[test]
fn unsorted_union_nodes_are_caught() {
    let ckg = world();
    let mut union = extract_union(&ckg);
    assert!(union.union_nodes.len() >= 2, "fixture needs 2+ union nodes");
    union.union_nodes.swap(0, 1);
    let msg = catch(move || union.validate(&ckg));
    assert!(msg.contains("union nodes not strictly sorted"), "unhelpful panic: {msg}");
}

#[test]
fn out_of_range_union_node_is_caught() {
    let ckg = world();
    let mut union = extract_union(&ckg);
    // Keep the list sorted so only the range check can fire; the id is now
    // absent from the union, so the escape check fires on a subgraph —
    // either message names the corruption.
    *union.union_nodes.last_mut().unwrap() = ckg.n_entities();
    let msg = catch(move || union.validate(&ckg));
    assert!(
        msg.contains("outside the entity range") || msg.contains("escapes the union"),
        "unhelpful panic: {msg}"
    );
}

#[test]
fn subgraph_node_escaping_the_union_is_caught() {
    let ckg = world();
    let mut union = extract_union(&ckg);
    // Shrink the union under an untouched (still individually valid)
    // subgraph: its nodes now reference an id the union no longer holds.
    let victim = union.subgraphs[0].nodes[0];
    union.union_nodes.retain(|&g| g != victim);
    let msg = catch(move || union.validate(&ckg));
    assert!(msg.contains("escapes the union"), "unhelpful panic: {msg}");
}

#[test]
fn corrupt_member_subgraph_fails_union_validation() {
    let ckg = world();
    let mut union = extract_union(&ckg);
    // Union-level validation must recurse into every derived subgraph.
    union.subgraphs[1].tails[0] = union.subgraphs[1].n_nodes();
    let msg = catch(move || union.validate(&ckg));
    assert!(msg.contains("escapes the node set"), "unhelpful panic: {msg}");
}
