//! Corruption tests for the kg `debug-audit` subgraph checker: mangle an
//! extracted subgraph's public fields and assert `validate` panics with
//! a message that names the violation.
//!
//! Run with `cargo test -p facility-kg --features debug-audit`.

#![cfg(feature = "debug-audit")]

use facility_kg::builder::{Ckg, CkgBuilder, KnowledgeSource, SourceMask};
use facility_kg::subgraph::{BatchSubgraph, SubgraphScratch};

fn world() -> Ckg {
    let mut b = CkgBuilder::new(3, 4);
    b.add_interactions(&[(0, 0), (0, 1), (1, 1), (2, 2)]);
    for i in 0..4u32 {
        b.add_item_attribute(KnowledgeSource::Dkg, "dataType", i, format!("t{}", i % 2));
    }
    b.build(SourceMask::all())
}

fn extract(ckg: &Ckg) -> BatchSubgraph {
    let mut scratch = SubgraphScratch::new(ckg.n_entities());
    scratch.extract(ckg, &[0, 1], 2)
}

fn catch(f: impl FnOnce() + std::panic::UnwindSafe) -> String {
    let err = std::panic::catch_unwind(f).expect_err("validate must panic");
    err.downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default()
}

#[test]
fn clean_extraction_validates() {
    let ckg = world();
    let sub = extract(&ckg); // extract() itself validates under debug-audit
    sub.validate(&ckg);
    assert!(sub.n_nodes() > 0);
}

#[test]
fn dropped_edge_is_caught() {
    let ckg = world();
    let mut sub = extract(&ckg);
    assert!(sub.n_edges() > 1, "fixture needs edges");
    sub.edge_ids.remove(0);
    sub.tails.remove(0);
    sub.heads.remove(0);
    let msg = catch(move || sub.validate(&ckg));
    assert!(msg.contains("missing edge"), "unhelpful panic: {msg}");
}

#[test]
fn unsorted_nodes_are_caught() {
    let ckg = world();
    let mut sub = extract(&ckg);
    assert!(sub.n_interior >= 2, "fixture needs 2+ interior nodes");
    sub.nodes.swap(0, 1);
    let msg = catch(move || sub.validate(&ckg));
    assert!(msg.contains("not strictly sorted"), "unhelpful panic: {msg}");
}

#[test]
fn duplicated_node_is_caught() {
    let ckg = world();
    let mut sub = extract(&ckg);
    // Replace the last ring node with a copy of an interior node: both
    // groups stay sorted, but the union now has a duplicate.
    assert!(sub.n_interior < sub.n_nodes(), "fixture needs a ring");
    let n = sub.n_nodes();
    sub.nodes[n - 1] = sub.nodes[0];
    let msg = catch(move || sub.validate(&ckg));
    assert!(
        msg.contains("both interior and ring") || msg.contains("not strictly sorted"),
        "unhelpful panic: {msg}"
    );
}

#[test]
fn escaped_tail_is_caught() {
    let ckg = world();
    let mut sub = extract(&ckg);
    assert!(!sub.tails.is_empty(), "fixture needs edges");
    sub.tails[0] = sub.n_nodes(); // one past the node set
    let msg = catch(move || sub.validate(&ckg));
    assert!(msg.contains("escapes the node set"), "unhelpful panic: {msg}");
}

#[test]
fn trailing_phantom_edge_is_caught() {
    let ckg = world();
    let mut sub = extract(&ckg);
    sub.edge_ids.push(0);
    sub.tails.push(0);
    sub.heads.push(sub.n_interior.saturating_sub(1));
    let msg = catch(move || sub.validate(&ckg));
    assert!(
        msg.contains("beyond the interior") || msg.contains("missing edge"),
        "unhelpful panic: {msg}"
    );
}

#[test]
fn bad_seed_local_is_caught() {
    let ckg = world();
    let mut sub = extract(&ckg);
    sub.seed_locals[0] = sub.n_nodes() + 3;
    let msg = catch(move || sub.validate(&ckg));
    assert!(msg.contains("seed local id"), "unhelpful panic: {msg}");
}
