//! Property-based tests for CKG construction and sampling invariants.

use facility_kg::sampling::{sample_bpr_batch, sample_kg_batch};
use facility_kg::{CkgBuilder, Id, Interactions, KnowledgeSource, SourceMask};
use facility_linalg::seeded_rng;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct World {
    n_users: usize,
    n_items: usize,
    interactions: Vec<(Id, Id)>,
    user_user: Vec<(Id, Id)>,
    facts: Vec<(KnowledgeSource, u8, Id, u8)>, // (source, relation#, item, attr#)
}

fn world() -> impl Strategy<Value = World> {
    (2usize..8, 2usize..10).prop_flat_map(|(n_users, n_items)| {
        let inter = prop::collection::vec(
            ((0..n_users as Id), (0..n_items as Id)).prop_map(|(u, i)| (u, i)),
            1..30,
        );
        let uug = prop::collection::vec(((0..n_users as Id), (0..n_users as Id)), 0..10)
            .prop_map(|pairs| pairs.into_iter().filter(|(a, b)| a != b).collect::<Vec<_>>());
        let facts = prop::collection::vec(
            (
                prop_oneof![
                    Just(KnowledgeSource::Loc),
                    Just(KnowledgeSource::Dkg),
                    Just(KnowledgeSource::Md)
                ],
                0u8..3,
                0..n_items as Id,
                0u8..5,
            ),
            0..20,
        );
        (inter, uug, facts).prop_map(move |(interactions, user_user, facts)| World {
            n_users,
            n_items,
            interactions,
            user_user,
            facts,
        })
    })
}

fn build(w: &World, mask: SourceMask) -> facility_kg::Ckg {
    let mut b = CkgBuilder::new(w.n_users, w.n_items);
    b.add_interactions(&w.interactions);
    b.add_user_user(&w.user_user);
    for &(src, rel, item, attr) in &w.facts {
        b.add_item_attribute(src, format!("rel{rel}"), item, format!("attr{attr}"));
    }
    b.build(mask)
}

proptest! {
    #[test]
    fn csr_is_complete_and_head_sorted(w in world()) {
        let ckg = build(&w, SourceMask::all_with_noise());
        prop_assert_eq!(*ckg.offsets.last().unwrap(), ckg.n_edges());
        for e in 0..ckg.n_entities() {
            for k in ckg.offsets[e]..ckg.offsets[e + 1] {
                prop_assert_eq!(ckg.heads[k] as usize, e);
            }
        }
    }

    #[test]
    fn inverse_edges_always_exist(w in world()) {
        let ckg = build(&w, SourceMask::all_with_noise());
        use std::collections::HashSet;
        let set: HashSet<(Id, Id, Id)> = ckg
            .heads.iter().zip(&ckg.rels).zip(&ckg.tails)
            .map(|((&h, &r), &t)| (h, r, t))
            .collect();
        for &(h, r, t) in &set {
            prop_assert!(set.contains(&(t, ckg.inverse_relation(r), h)));
        }
    }

    #[test]
    fn masks_are_monotone_in_entities_and_triples(w in world()) {
        let uig = build(&w, SourceMask::uig_only());
        let all = build(&w, SourceMask::all());
        let noisy = build(&w, SourceMask::all_with_noise());
        prop_assert!(uig.n_entities() <= all.n_entities());
        prop_assert!(all.n_entities() <= noisy.n_entities());
        prop_assert!(uig.canonical_triples.len() <= all.canonical_triples.len());
        prop_assert!(all.canonical_triples.len() <= noisy.canonical_triples.len());
    }

    #[test]
    fn canonical_triples_are_unique(w in world()) {
        let ckg = build(&w, SourceMask::all_with_noise());
        use std::collections::HashSet;
        let set: HashSet<_> = ckg.canonical_triples.iter().collect();
        prop_assert_eq!(set.len(), ckg.canonical_triples.len());
    }

    #[test]
    fn split_partitions_each_users_items(
        w in world(),
        frac in 0.0f64..0.9,
        seed in 0u64..50,
    ) {
        let inter = Interactions::split(
            w.n_users, w.n_items, &w.interactions, frac, &mut seeded_rng(seed));
        for u in 0..w.n_users {
            // Disjoint...
            for &i in &inter.test[u] {
                prop_assert!(!inter.contains_train(u as Id, i));
            }
            // ...and jointly cover the user's unique items.
            let mut all: Vec<Id> = w.interactions.iter()
                .filter(|&&(uu, _)| uu as usize == u)
                .map(|&(_, i)| i).collect();
            all.sort_unstable();
            all.dedup();
            prop_assert_eq!(inter.train[u].len() + inter.test[u].len(), all.len());
        }
    }

    #[test]
    fn samplers_respect_invariants(w in world(), seed in 0u64..50) {
        let inter = Interactions::split(
            w.n_users, w.n_items, &w.interactions, 0.2, &mut seeded_rng(seed));
        let ckg = build(&w, SourceMask::all());
        let mut rng = seeded_rng(seed ^ 0xabc);
        for s in sample_bpr_batch(&inter, 64, &mut rng) {
            prop_assert!(inter.contains_train(s.user, s.pos));
        }
        for s in sample_kg_batch(&ckg, 64, &mut rng) {
            prop_assert!(ckg.has_triple(s.head, s.rel, s.tail));
            prop_assert!((s.neg_tail as usize) < ckg.n_entities());
        }
    }

    /// On *saturated* worlds — tiny entity sets where `(h, r, ·)` is a
    /// fact for almost every candidate tail — bounded rejection must skip
    /// the irreparable triples rather than emit an invalid corruption.
    /// Every emitted sample still satisfies the Eq. 2 invariant.
    #[test]
    fn kg_sampler_never_emits_facts_even_when_saturated(
        n_users in 1usize..3,
        n_items in 1usize..3,
        seed in 0u64..100,
    ) {
        // Fully-connected interactions + every item sharing one attribute:
        // the candidate pool for corrupted tails is nearly exhausted.
        let mut b = CkgBuilder::new(n_users, n_items);
        let pairs: Vec<(Id, Id)> = (0..n_users as Id)
            .flat_map(|u| (0..n_items as Id).map(move |i| (u, i)))
            .collect();
        b.add_interactions(&pairs);
        for i in 0..n_items as Id {
            b.add_item_attribute(KnowledgeSource::Dkg, "dataType", i, "shared");
        }
        let ckg = b.build(SourceMask::all());
        let mut rng = seeded_rng(seed);
        let batch = sample_kg_batch(&ckg, 64, &mut rng);
        prop_assert!(batch.len() <= 64);
        for s in &batch {
            prop_assert!(ckg.has_triple(s.head, s.rel, s.tail));
            prop_assert!(!ckg.has_triple(s.head, s.rel, s.neg_tail),
                "emitted a corrupted tail that is a fact: {:?}", s);
            prop_assert!(s.neg_tail != s.tail, "emitted neg_tail == tail: {:?}", s);
        }
    }
}
