//! CKG assembly by entity alignment (paper Section IV).
//!
//! The builder holds the *raw* components (interactions, user–user pairs,
//! item–attribute facts tagged with their knowledge source) and materializes
//! a [`Ckg`] for any [`SourceMask`] — the Table III ablation rebuilds the
//! graph once per knowledge combination.

use crate::Id;
use std::collections::{BTreeMap, BTreeSet};

/// The knowledge sources the paper distinguishes (Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KnowledgeSource {
    /// Instrument location knowledge (LOC).
    Loc,
    /// Data-domain knowledge (DKG).
    Dkg,
    /// Additional instrument metadata (MD) — treated as noise in the paper.
    Md,
}

/// Which subgraphs/sources to include when building a [`Ckg`].
///
/// The user–item graph (UIG) is always present — without it there is no
/// recommendation signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SourceMask {
    /// Include the user–user co-location graph (UUG).
    pub uug: bool,
    /// Include instrument-location knowledge (LOC).
    pub loc: bool,
    /// Include data-domain knowledge (DKG).
    pub dkg: bool,
    /// Include instrument metadata (MD, noise).
    pub md: bool,
}

impl SourceMask {
    /// UIG + UUG + LOC + DKG — the paper's best combination.
    pub fn all() -> Self {
        Self { uug: true, loc: true, dkg: true, md: false }
    }

    /// Everything including the MD noise source.
    pub fn all_with_noise() -> Self {
        Self { uug: true, loc: true, dkg: true, md: true }
    }

    /// UIG only.
    pub fn uig_only() -> Self {
        Self { uug: false, loc: false, dkg: false, md: false }
    }

    /// True when `source` is enabled.
    pub fn includes(&self, source: KnowledgeSource) -> bool {
        match source {
            KnowledgeSource::Loc => self.loc,
            KnowledgeSource::Dkg => self.dkg,
            KnowledgeSource::Md => self.md,
        }
    }

    /// Human-readable label matching the paper's Table III rows, e.g.
    /// `"UIG+UUG+LOC+DKG"`.
    pub fn label(&self) -> String {
        let mut s = String::from("UIG");
        if self.uug {
            s.push_str("+UUG");
        }
        if self.loc {
            s.push_str("+LOC");
        }
        if self.dkg {
            s.push_str("+DKG");
        }
        if self.md {
            s.push_str("+MD");
        }
        s
    }
}

/// One item–attribute fact before interning: `(item, relation, attribute)`.
#[derive(Debug, Clone)]
struct RawFact {
    source: KnowledgeSource,
    relation: String,
    item: Id,
    attribute: String,
}

/// One attribute–attribute fact (e.g. `Pressure → dataDiscipline →
/// Physical` in the paper's Figure 1), giving the KG its two-hop
/// structure.
#[derive(Debug, Clone)]
struct RawAttrFact {
    source: KnowledgeSource,
    relation: String,
    head: String,
    tail: String,
}

/// Incrementally assembles the raw components of a collaborative knowledge
/// graph; see the module docs.
pub struct CkgBuilder {
    n_users: usize,
    n_items: usize,
    interactions: Vec<(Id, Id)>,
    user_user: Vec<(Id, Id)>,
    facts: Vec<RawFact>,
    attr_facts: Vec<RawAttrFact>,
}

impl CkgBuilder {
    /// Start a builder for a facility with `n_users` users and `n_items`
    /// data items.
    pub fn new(n_users: usize, n_items: usize) -> Self {
        Self {
            n_users,
            n_items,
            interactions: Vec::new(),
            user_user: Vec::new(),
            facts: Vec::new(),
            attr_facts: Vec::new(),
        }
    }

    /// Add observed user–item interactions (the training portion of the
    /// query trace). Duplicates are deduplicated at build time.
    pub fn add_interactions(&mut self, pairs: &[(Id, Id)]) -> &mut Self {
        for &(u, i) in pairs {
            assert!((u as usize) < self.n_users, "interaction user {u} out of range");
            assert!((i as usize) < self.n_items, "interaction item {i} out of range");
        }
        self.interactions.extend_from_slice(pairs);
        self
    }

    /// Add undirected user–user co-location pairs (UUG).
    pub fn add_user_user(&mut self, pairs: &[(Id, Id)]) -> &mut Self {
        for &(a, b) in pairs {
            assert!((a as usize) < self.n_users && (b as usize) < self.n_users);
            assert_ne!(a, b, "user-user self loop");
        }
        self.user_user.extend_from_slice(pairs);
        self
    }

    /// Add an item–attribute fact. `attribute` names the tail entity; equal
    /// names are aligned to the same entity (this is the paper's entity
    /// alignment `A = {(v, e)}` in practice).
    pub fn add_item_attribute(
        &mut self,
        source: KnowledgeSource,
        relation: impl Into<String>,
        item: Id,
        attribute: impl Into<String>,
    ) -> &mut Self {
        assert!((item as usize) < self.n_items, "fact item {item} out of range");
        self.facts.push(RawFact {
            source,
            relation: relation.into(),
            item,
            attribute: attribute.into(),
        });
        self
    }

    /// Add an attribute–attribute fact, e.g. a data type's discipline or a
    /// site's region (paper Fig. 1 connects attributes to attributes).
    /// Both endpoints are interned as attribute entities only if some
    /// enabled fact references them.
    pub fn add_attribute_attribute(
        &mut self,
        source: KnowledgeSource,
        relation: impl Into<String>,
        head: impl Into<String>,
        tail: impl Into<String>,
    ) -> &mut Self {
        self.attr_facts.push(RawAttrFact {
            source,
            relation: relation.into(),
            head: head.into(),
            tail: tail.into(),
        });
        self
    }

    /// Materialize the CKG for the given source mask.
    pub fn build(&self, mask: SourceMask) -> Ckg {
        let n_users = self.n_users;
        let n_items = self.n_items;

        // Intern relations: Interact is always relation 0.
        let mut relation_names = vec!["Interact".to_string()];
        let mut rel_ids: BTreeMap<String, Id> = BTreeMap::new();
        // Intern attribute entities included by the mask.
        let mut attr_names: Vec<String> = Vec::new();
        let mut attr_ids: BTreeMap<String, Id> = BTreeMap::new();

        let mut triples: Vec<(Id, Id, Id)> = Vec::new();
        let mut seen: BTreeSet<(Id, Id, Id)> = BTreeSet::new();

        let push_triple = |triples: &mut Vec<(Id, Id, Id)>,
                           seen: &mut BTreeSet<(Id, Id, Id)>,
                           h: Id,
                           r: Id,
                           t: Id| {
            if seen.insert((h, r, t)) {
                triples.push((h, r, t));
            }
        };

        // UIG: (user, Interact, item-entity).
        for &(u, i) in &self.interactions {
            let item_ent = (n_users + i as usize) as Id;
            push_triple(&mut triples, &mut seen, u, 0, item_ent);
        }

        // UUG: the paper folds co-location into the same Interact relation;
        // both orientations are covered by the inverse edges added below,
        // but we canonicalize the pair order so (a,b) and (b,a) dedupe.
        if mask.uug {
            for &(a, b) in &self.user_user {
                let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                push_triple(&mut triples, &mut seen, lo, 0, hi);
            }
        }

        // IAG: masked item-attribute facts.
        for fact in &self.facts {
            if !mask.includes(fact.source) {
                continue;
            }
            let rel = *rel_ids.entry(fact.relation.clone()).or_insert_with(|| {
                let r = relation_names.len() as Id;
                relation_names.push(fact.relation.clone());
                r
            });
            let attr = *attr_ids.entry(fact.attribute.clone()).or_insert_with(|| {
                let a = attr_names.len() as Id;
                attr_names.push(fact.attribute.clone());
                a
            });
            let item_ent = (n_users + fact.item as usize) as Id;
            let attr_ent = (n_users + n_items + attr as usize) as Id;
            push_triple(&mut triples, &mut seen, item_ent, rel, attr_ent);
        }

        // Attribute–attribute facts (two-hop KG structure, Fig. 1).
        for fact in &self.attr_facts {
            if !mask.includes(fact.source) {
                continue;
            }
            let rel = *rel_ids.entry(fact.relation.clone()).or_insert_with(|| {
                let r = relation_names.len() as Id;
                relation_names.push(fact.relation.clone());
                r
            });
            let mut intern = |name: &str| -> Id {
                *attr_ids.entry(name.to_string()).or_insert_with(|| {
                    let a = attr_names.len() as Id;
                    attr_names.push(name.to_string());
                    a
                })
            };
            let h = intern(&fact.head);
            let t = intern(&fact.tail);
            let head_ent = (n_users + n_items + h as usize) as Id;
            let tail_ent = (n_users + n_items + t as usize) as Id;
            if head_ent != tail_ent {
                push_triple(&mut triples, &mut seen, head_ent, rel, tail_ent);
            }
        }

        let n_entities = n_users + n_items + attr_names.len();
        let n_canonical = relation_names.len();

        // Edge list with inverse relations: canonical r ↔ inverse r + C.
        let mut edges: Vec<(Id, Id, Id)> = Vec::with_capacity(triples.len() * 2);
        for &(h, r, t) in &triples {
            edges.push((h, r, t));
            edges.push((t, r + n_canonical as Id, h));
        }
        // CSR order: by head, then relation, then tail (deterministic).
        edges.sort_unstable();
        edges.dedup();

        let mut offsets = vec![0usize; n_entities + 1];
        for &(h, _, _) in &edges {
            offsets[h as usize + 1] += 1;
        }
        for i in 0..n_entities {
            offsets[i + 1] += offsets[i];
        }
        let heads: Vec<Id> = edges.iter().map(|e| e.0).collect();
        let rels: Vec<Id> = edges.iter().map(|e| e.1).collect();
        let tails: Vec<Id> = edges.iter().map(|e| e.2).collect();

        Ckg {
            n_users,
            n_items,
            n_attrs: attr_names.len(),
            relation_names,
            mask,
            heads,
            rels,
            tails,
            offsets,
            canonical_triples: triples,
            triple_set: seen,
            attr_names,
        }
    }
}

/// A materialized collaborative knowledge graph.
///
/// Entity index layout: `[0, n_users)` are users, `[n_users,
/// n_users + n_items)` are items, and the remainder are attribute entities.
/// Edges are stored in CSR order (sorted by head entity) with inverse
/// relations included, which is exactly the layout the segment ops in
/// `facility-autograd` consume.
pub struct Ckg {
    /// Number of user entities.
    pub n_users: usize,
    /// Number of item entities.
    pub n_items: usize,
    /// Number of attribute entities.
    pub n_attrs: usize,
    /// Canonical relation names; index = relation id. `Interact` is 0.
    pub relation_names: Vec<String>,
    /// The mask this CKG was built with.
    pub mask: SourceMask,
    /// Edge heads in CSR order (length = number of directed edges).
    pub heads: Vec<Id>,
    /// Edge relations (canonical ids `< n_canonical`, inverses `>=`).
    pub rels: Vec<Id>,
    /// Edge tails.
    pub tails: Vec<Id>,
    /// CSR offsets: edges of entity `e` span `offsets[e] .. offsets[e+1]`.
    pub offsets: Vec<usize>,
    /// Canonical (non-inverse) triples — the TransR training set `S`.
    pub canonical_triples: Vec<(Id, Id, Id)>,
    triple_set: BTreeSet<(Id, Id, Id)>,
    /// Attribute entity names (index = attribute index).
    pub attr_names: Vec<String>,
}

impl Ckg {
    /// Total entity count `|E'| = |U| + |V| + |E_attr|`.
    pub fn n_entities(&self) -> usize {
        self.n_users + self.n_items + self.n_attrs
    }

    /// Number of canonical relations (incl. `Interact`).
    pub fn n_canonical_relations(&self) -> usize {
        self.relation_names.len()
    }

    /// Number of relation ids used on edges (canonical + inverse).
    pub fn n_relations_with_inverse(&self) -> usize {
        self.relation_names.len() * 2
    }

    /// Number of directed edges (canonical triples + inverses, deduped).
    pub fn n_edges(&self) -> usize {
        self.heads.len()
    }

    /// Entity id of user `u`.
    pub fn user_entity(&self, u: Id) -> usize {
        debug_assert!((u as usize) < self.n_users);
        u as usize
    }

    /// Entity id of item `i`.
    pub fn item_entity(&self, i: Id) -> usize {
        debug_assert!((i as usize) < self.n_items);
        self.n_users + i as usize
    }

    /// Entity id of attribute index `a`.
    pub fn attr_entity(&self, a: Id) -> usize {
        self.n_users + self.n_items + a as usize
    }

    /// True if the canonical triple `(h, r, t)` exists (used to reject
    /// false-negative corruptions during TransR sampling).
    pub fn has_triple(&self, h: Id, r: Id, t: Id) -> bool {
        self.triple_set.contains(&(h, r, t))
    }

    /// The inverse relation id of `r`.
    pub fn inverse_relation(&self, r: Id) -> Id {
        let c = self.relation_names.len() as Id;
        if r < c {
            r + c
        } else {
            r - c
        }
    }

    /// Edge indices grouped by relation id (canonical and inverse), used
    /// by the per-relation TransR projections in the attention layer.
    pub fn edges_by_relation(&self) -> Vec<Vec<usize>> {
        let mut groups = vec![Vec::new(); self.n_relations_with_inverse()];
        for (e, &r) in self.rels.iter().enumerate() {
            // audit: unwrap — groups is sized to n_relations_with_inverse(), which bounds every rel id.
            groups[r as usize].push(e);
        }
        groups
    }

    /// Neighbors `(relation, tail)` of entity `e` in CSR order.
    pub fn neighbors(&self, e: usize) -> impl Iterator<Item = (Id, Id)> + '_ {
        let (lo, hi) = (self.offsets[e], self.offsets[e + 1]);
        self.rels[lo..hi].iter().copied().zip(self.tails[lo..hi].iter().copied())
    }

    /// Out-degree of entity `e` (including inverse edges).
    pub fn degree(&self, e: usize) -> usize {
        // audit: unwrap — offsets has n_entities+1 entries; callers pass e < n_entities.
        self.offsets[e + 1] - self.offsets[e]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_builder() -> CkgBuilder {
        // 2 users, 3 items.
        let mut b = CkgBuilder::new(2, 3);
        b.add_interactions(&[(0, 0), (0, 1), (1, 2), (0, 0)]); // duplicate on purpose
        b.add_user_user(&[(0, 1), (1, 0)]); // both orientations -> dedupe
        b.add_item_attribute(KnowledgeSource::Loc, "locatedAt", 0, "site:A");
        b.add_item_attribute(KnowledgeSource::Loc, "locatedAt", 1, "site:A");
        b.add_item_attribute(KnowledgeSource::Dkg, "dataType", 2, "type:pressure");
        b.add_item_attribute(KnowledgeSource::Md, "instrumentName", 2, "md:CTD-7");
        b
    }

    #[test]
    fn entity_layout_and_counts() {
        let ckg = tiny_builder().build(SourceMask::all());
        // Attributes: site:A, type:pressure (MD excluded).
        assert_eq!(ckg.n_users, 2);
        assert_eq!(ckg.n_items, 3);
        assert_eq!(ckg.n_attrs, 2);
        assert_eq!(ckg.n_entities(), 7);
        assert_eq!(ckg.user_entity(1), 1);
        assert_eq!(ckg.item_entity(0), 2);
        assert_eq!(ckg.attr_entity(0), 5);
    }

    #[test]
    fn interactions_dedupe_and_uug_canonicalizes() {
        let ckg = tiny_builder().build(SourceMask::all());
        // Canonical triples: 3 interactions + 1 UUG + 3 IAG facts.
        assert_eq!(ckg.canonical_triples.len(), 7);
        // Every canonical triple has an inverse edge; no dedupe collisions.
        assert_eq!(ckg.n_edges(), 14);
    }

    #[test]
    fn mask_excludes_sources_and_their_entities() {
        let ckg = tiny_builder().build(SourceMask::uig_only());
        assert_eq!(ckg.n_attrs, 0, "no attribute entities without IAG");
        assert_eq!(ckg.canonical_triples.len(), 3, "interactions only");
        assert_eq!(ckg.relation_names.len(), 1, "Interact only");

        let with_md = tiny_builder().build(SourceMask::all_with_noise());
        assert_eq!(with_md.n_attrs, 3, "MD adds its attribute entity");
        assert!(with_md.relation_names.iter().any(|r| r == "instrumentName"));
    }

    #[test]
    fn csr_offsets_cover_all_edges_sorted_by_head() {
        let ckg = tiny_builder().build(SourceMask::all());
        assert_eq!(ckg.offsets.len(), ckg.n_entities() + 1);
        assert_eq!(*ckg.offsets.last().unwrap(), ckg.n_edges());
        for e in 0..ckg.n_entities() {
            for k in ckg.offsets[e]..ckg.offsets[e + 1] {
                assert_eq!(ckg.heads[k] as usize, e, "edge {k} filed under wrong head");
            }
        }
    }

    #[test]
    fn inverse_relations_are_symmetric() {
        let ckg = tiny_builder().build(SourceMask::all());
        let c = ckg.n_canonical_relations() as Id;
        for r in 0..ckg.n_relations_with_inverse() as Id {
            assert_eq!(ckg.inverse_relation(ckg.inverse_relation(r)), r);
        }
        assert_eq!(ckg.inverse_relation(0), c);
    }

    #[test]
    fn every_edge_has_its_reverse() {
        let ckg = tiny_builder().build(SourceMask::all());
        use std::collections::HashSet;
        let set: HashSet<(Id, Id, Id)> = ckg
            .heads
            .iter()
            .zip(&ckg.rels)
            .zip(&ckg.tails)
            .map(|((&h, &r), &t)| (h, r, t))
            .collect();
        for &(h, r, t) in set.iter() {
            assert!(
                set.contains(&(t, ckg.inverse_relation(r), h)),
                "missing inverse of ({h},{r},{t})"
            );
        }
    }

    #[test]
    fn has_triple_membership() {
        let ckg = tiny_builder().build(SourceMask::all());
        let item0 = ckg.item_entity(0) as Id;
        assert!(ckg.has_triple(0, 0, item0));
        assert!(!ckg.has_triple(1, 0, item0));
    }

    #[test]
    fn edges_by_relation_partitions_edges() {
        let ckg = tiny_builder().build(SourceMask::all());
        let groups = ckg.edges_by_relation();
        let total: usize = groups.iter().map(Vec::len).sum();
        assert_eq!(total, ckg.n_edges());
        for (r, group) in groups.iter().enumerate() {
            for &e in group {
                assert_eq!(ckg.rels[e] as usize, r);
            }
        }
    }

    #[test]
    fn neighbors_iterates_csr_slice() {
        let ckg = tiny_builder().build(SourceMask::all());
        let u0_neighbors: Vec<_> = ckg.neighbors(0).collect();
        assert_eq!(u0_neighbors.len(), ckg.degree(0));
        // User 0 interacted with items 0 and 1 and co-locates with user 1.
        assert!(u0_neighbors.len() >= 3);
    }

    #[test]
    fn attribute_attribute_facts_create_two_hop_paths() {
        let mut b = tiny_builder();
        b.add_attribute_attribute(
            KnowledgeSource::Dkg,
            "dataDiscipline",
            "type:pressure",
            "disc:physical",
        );
        let ckg = b.build(SourceMask::all());
        // New attribute entity "disc:physical" appears.
        assert!(ckg.attr_names.iter().any(|a| a == "disc:physical"));
        // The triple connects two attribute entities.
        let type_idx = ckg.attr_names.iter().position(|a| a == "type:pressure").unwrap() as Id;
        let disc_idx = ckg.attr_names.iter().position(|a| a == "disc:physical").unwrap() as Id;
        let rel = ckg.relation_names.iter().position(|r| r == "dataDiscipline").unwrap() as Id;
        assert!(ckg.has_triple(
            ckg.attr_entity(type_idx) as Id,
            rel,
            ckg.attr_entity(disc_idx) as Id
        ));
    }

    #[test]
    fn attr_facts_respect_mask_and_skip_self_loops() {
        let mut b = CkgBuilder::new(1, 1);
        b.add_interactions(&[(0, 0)]);
        b.add_attribute_attribute(KnowledgeSource::Md, "alias", "a", "b");
        b.add_attribute_attribute(KnowledgeSource::Dkg, "alias2", "x", "x");
        let ckg = b.build(SourceMask::all());
        // MD masked out; self-loop skipped but "x" still interned.
        assert_eq!(ckg.canonical_triples.len(), 1);
        assert_eq!(ckg.attr_names, vec!["x".to_string()]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn builder_rejects_out_of_range_items() {
        let mut b = CkgBuilder::new(2, 3);
        b.add_interactions(&[(0, 99)]);
    }

    #[test]
    fn empty_graph_is_valid() {
        let ckg = CkgBuilder::new(0, 0).build(SourceMask::all());
        assert_eq!(ckg.n_entities(), 0);
        assert_eq!(ckg.n_edges(), 0);
        assert_eq!(ckg.offsets, vec![0]);
    }

    #[test]
    fn mask_labels_match_paper_rows() {
        assert_eq!(SourceMask::all().label(), "UIG+UUG+LOC+DKG");
        assert_eq!(SourceMask::all_with_noise().label(), "UIG+UUG+LOC+DKG+MD");
        assert_eq!(SourceMask::uig_only().label(), "UIG");
        assert_eq!(
            SourceMask { uug: false, loc: true, dkg: true, md: false }.label(),
            "UIG+LOC+DKG"
        );
    }
}
