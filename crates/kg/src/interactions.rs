//! User–item interaction sets with a reproducible train/test split.
//!
//! The paper "randomly selects 80% of each user's query history for the
//! training set" (Section VI-A); [`Interactions::split`] reproduces that
//! protocol per user, deterministically under a seed.

use crate::Id;
use rand::seq::SliceRandom;
use rand::Rng;

/// Per-user positive item lists, split into train and test portions.
#[derive(Debug, Clone)]
pub struct Interactions {
    /// Number of users.
    pub n_users: usize,
    /// Number of items.
    pub n_items: usize,
    /// Per-user *sorted* train item lists.
    pub train: Vec<Vec<Id>>,
    /// Per-user *sorted* test item lists (disjoint from train).
    pub test: Vec<Vec<Id>>,
    /// Flattened `(user, item)` train pairs, for uniform positive sampling.
    pub train_pairs: Vec<(Id, Id)>,
}

impl Interactions {
    /// Split deduplicated `(user, item)` events per user: `test_frac` of
    /// each user's items go to the test set (rounded down, and a user with
    /// at least one item always keeps at least one training item).
    ///
    /// # Panics
    /// Panics if `test_frac` is outside `[0, 1)` or an id is out of range.
    pub fn split(
        n_users: usize,
        n_items: usize,
        events: &[(Id, Id)],
        test_frac: f64,
        rng: &mut impl Rng,
    ) -> Self {
        assert!((0.0..1.0).contains(&test_frac), "test_frac must be in [0,1)");
        let mut per_user: Vec<Vec<Id>> = vec![Vec::new(); n_users];
        for &(u, i) in events {
            assert!((u as usize) < n_users, "user {u} out of range");
            assert!((i as usize) < n_items, "item {i} out of range");
            per_user[u as usize].push(i);
        }
        let mut train = vec![Vec::new(); n_users];
        let mut test = vec![Vec::new(); n_users];
        for (u, items) in per_user.iter_mut().enumerate() {
            items.sort_unstable();
            items.dedup();
            items.shuffle(rng);
            let n = items.len();
            // Keep at least one training item for any active user.
            let n_test = ((n as f64 * test_frac) as usize).min(n.saturating_sub(1));
            let split_at = n - n_test;
            train[u] = items[..split_at].to_vec();
            test[u] = items[split_at..].to_vec();
            train[u].sort_unstable();
            test[u].sort_unstable();
        }
        let train_pairs = train
            .iter()
            .enumerate()
            .flat_map(|(u, items)| items.iter().map(move |&i| (u as Id, i)))
            .collect();
        Self { n_users, n_items, train, test, train_pairs }
    }

    /// Build from already-split per-user lists (used in tests).
    pub fn from_lists(n_items: usize, train: Vec<Vec<Id>>, test: Vec<Vec<Id>>) -> Self {
        assert_eq!(train.len(), test.len());
        let n_users = train.len();
        let mut train = train;
        for list in &mut train {
            list.sort_unstable();
            list.dedup();
        }
        let mut test = test;
        for list in &mut test {
            list.sort_unstable();
            list.dedup();
        }
        let train_pairs = train
            .iter()
            .enumerate()
            .flat_map(|(u, items)| items.iter().map(move |&i| (u as Id, i)))
            .collect();
        Self { n_users, n_items, train, test, train_pairs }
    }

    /// True if `(u, i)` is a training positive.
    pub fn contains_train(&self, u: Id, i: Id) -> bool {
        // audit: unwrap — user ids are < n_users, validated at construction.
        self.train[u as usize].binary_search(&i).is_ok()
    }

    /// True if `(u, i)` is a held-out test positive.
    pub fn contains_test(&self, u: Id, i: Id) -> bool {
        self.test[u as usize].binary_search(&i).is_ok()
    }

    /// Number of training interactions.
    pub fn n_train(&self) -> usize {
        self.train_pairs.len()
    }

    /// Number of test interactions.
    pub fn n_test(&self) -> usize {
        self.test.iter().map(Vec::len).sum()
    }

    /// Users with at least one test interaction (the evaluation
    /// population).
    pub fn test_users(&self) -> Vec<Id> {
        // audit: unwrap — user ids are < n_users, validated at construction.
        (0..self.n_users as Id).filter(|&u| !self.test[u as usize].is_empty()).collect()
    }

    /// Density of the training matrix (interactions / (users × items)).
    pub fn density(&self) -> f64 {
        if self.n_users == 0 || self.n_items == 0 {
            return 0.0;
        }
        self.n_train() as f64 / (self.n_users as f64 * self.n_items as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use facility_linalg::seeded_rng;

    fn events() -> Vec<(Id, Id)> {
        // User 0: 10 items, user 1: 2 items, user 2: 1 item, user 3: none.
        let mut ev: Vec<(Id, Id)> = (0..10).map(|i| (0, i)).collect();
        ev.push((1, 0));
        ev.push((1, 5));
        ev.push((2, 7));
        ev.push((0, 3)); // duplicate
        ev
    }

    #[test]
    fn split_sizes_and_disjointness() {
        let mut rng = seeded_rng(1);
        let inter = Interactions::split(4, 10, &events(), 0.2, &mut rng);
        assert_eq!(inter.train[0].len(), 8);
        assert_eq!(inter.test[0].len(), 2);
        for &i in &inter.test[0] {
            assert!(!inter.contains_train(0, i), "train/test overlap at item {i}");
        }
        // 2-item user: 20% rounds to 0 test items.
        assert_eq!(inter.train[1].len(), 2);
        assert_eq!(inter.test[1].len(), 0);
        // 1-item user keeps the item in train.
        assert_eq!(inter.train[2], vec![7]);
        // Inactive user.
        assert!(inter.train[3].is_empty() && inter.test[3].is_empty());
    }

    #[test]
    fn split_is_deterministic_under_seed() {
        let a = Interactions::split(4, 10, &events(), 0.2, &mut seeded_rng(9));
        let b = Interactions::split(4, 10, &events(), 0.2, &mut seeded_rng(9));
        assert_eq!(a.train, b.train);
        assert_eq!(a.test, b.test);
    }

    #[test]
    fn train_pairs_match_lists() {
        let inter = Interactions::split(4, 10, &events(), 0.2, &mut seeded_rng(2));
        assert_eq!(inter.n_train(), inter.train_pairs.len());
        for &(u, i) in &inter.train_pairs {
            assert!(inter.contains_train(u, i));
        }
    }

    #[test]
    fn test_users_excludes_users_without_heldout() {
        let inter = Interactions::split(4, 10, &events(), 0.2, &mut seeded_rng(3));
        let tu = inter.test_users();
        assert!(tu.contains(&0));
        assert!(!tu.contains(&1));
        assert!(!tu.contains(&3));
    }

    #[test]
    fn density_and_counts() {
        let inter = Interactions::split(4, 10, &events(), 0.0, &mut seeded_rng(4));
        assert_eq!(inter.n_test(), 0);
        assert_eq!(inter.n_train(), 13);
        assert!((inter.density() - 13.0 / 40.0).abs() < 1e-12);
    }

    #[test]
    fn from_lists_sorts_and_dedupes() {
        let inter = Interactions::from_lists(5, vec![vec![3, 1, 3]], vec![vec![4]]);
        assert_eq!(inter.train[0], vec![1, 3]);
        assert!(inter.contains_test(0, 4));
    }
}
