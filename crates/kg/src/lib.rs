#![warn(missing_docs)]

//! # facility-kg
//!
//! Collaborative knowledge graph (CKG) construction for facility data
//! discovery, implementing Section IV of the paper.
//!
//! A CKG merges three subgraphs by entity alignment:
//!
//! * **UIG** — the user–item bipartite graph of data queries
//!   (`(u, Interact, v)` triples),
//! * **UUG** — the user–user graph of co-located users
//!   (`(u, Interact, u')` triples; the paper folds both into the single
//!   `Interact` relation),
//! * **IAG** — the item–attribute knowledge graph `(h, r, t)`, split into
//!   knowledge *sources*: instrument location (**LOC**), data-domain
//!   knowledge (**DKG**), and instrument metadata (**MD**, which the paper
//!   treats as noise).
//!
//! The crate provides:
//!
//! * [`builder::CkgBuilder`] / [`builder::Ckg`] — assembly with a
//!   per-source mask (for the Table III ablation), inverse relations, and
//!   a CSR edge layout ready for segment-based message passing,
//! * [`interactions::Interactions`] — per-user positive item lists with a
//!   reproducible train/test split,
//! * [`sampling`] — BPR `(u, i⁺, j⁻)` batches and TransR
//!   `(h, r, t, t⁻)` corruption batches,
//! * [`stats`] — the CKG statistics reported in Table I.

pub mod builder;
pub mod interactions;
pub mod sampling;
pub mod stats;
pub mod subgraph;

pub use builder::{Ckg, CkgBuilder, KnowledgeSource, SourceMask};
pub use interactions::Interactions;
pub use stats::CkgStats;
pub use subgraph::{BatchSubgraph, SubgraphScratch, UnionExtraction};

/// Compact index type for users, items, entities, and relations.
///
/// The CKGs in the paper have a few thousand entities (Table I), so `u32`
/// halves the memory traffic of edge arrays compared to `usize` (per the
/// perf-book guidance on smaller integers).
pub type Id = u32;
