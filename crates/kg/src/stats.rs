//! CKG statistics — the quantities reported in the paper's Table I.

use crate::builder::Ckg;
use std::fmt;

/// Summary statistics of a collaborative knowledge graph.
///
/// Matches Table I of the paper: entity count, relationship count,
/// KG-triple count, and "link-avg" — the average number of links per item.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CkgStats {
    /// Total entities `|E'|` (users + items + attributes).
    pub n_entities: usize,
    /// Number of canonical relations (incl. `Interact`).
    pub n_relationships: usize,
    /// Number of canonical KG triples.
    pub n_triples: usize,
    /// Average directed links per item entity.
    pub link_avg: f64,
    /// Users in the graph.
    pub n_users: usize,
    /// Items in the graph.
    pub n_items: usize,
    /// Attribute entities in the graph.
    pub n_attrs: usize,
}

impl CkgStats {
    /// Compute statistics for `ckg`.
    ///
    /// `link_avg` counts *canonical* triples incident to item entities
    /// (inverse edges excluded, matching the paper's "average links per
    /// item").
    pub fn of(ckg: &Ckg) -> Self {
        let item_lo = ckg.n_users as u32;
        let item_hi = (ckg.n_users + ckg.n_items) as u32;
        let is_item = |e: u32| e >= item_lo && e < item_hi;
        let item_links: usize =
            ckg.canonical_triples.iter().filter(|&&(h, _, t)| is_item(h) || is_item(t)).count();
        let link_avg = if ckg.n_items == 0 { 0.0 } else { item_links as f64 / ckg.n_items as f64 };
        Self {
            n_entities: ckg.n_entities(),
            n_relationships: ckg.n_canonical_relations(),
            n_triples: ckg.canonical_triples.len(),
            link_avg,
            n_users: ckg.n_users,
            n_items: ckg.n_items,
            n_attrs: ckg.n_attrs,
        }
    }
}

impl fmt::Display for CkgStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# entities      {}", self.n_entities)?;
        writeln!(f, "# relationships {}", self.n_relationships)?;
        writeln!(f, "# KG triplets   {}", self.n_triples)?;
        write!(f, "# link-avg      {:.0}", self.link_avg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{CkgBuilder, KnowledgeSource, SourceMask};

    #[test]
    fn stats_count_components() {
        let mut b = CkgBuilder::new(2, 2);
        b.add_interactions(&[(0, 0), (1, 1)]);
        b.add_item_attribute(KnowledgeSource::Loc, "locatedAt", 0, "site:X");
        b.add_item_attribute(KnowledgeSource::Loc, "locatedAt", 1, "site:X");
        let ckg = b.build(SourceMask::all());
        let s = CkgStats::of(&ckg);
        assert_eq!(s.n_entities, 5); // 2 users + 2 items + 1 site
        assert_eq!(s.n_relationships, 2); // Interact + locatedAt
        assert_eq!(s.n_triples, 4); // 2 interactions + 2 facts
                                    // Each item has 1 interact-inverse edge + 1 locatedAt edge = 2.
        assert!((s.link_avg - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_graph_stats() {
        let ckg = CkgBuilder::new(0, 0).build(SourceMask::all());
        let s = CkgStats::of(&ckg);
        assert_eq!(s.n_entities, 0);
        assert_eq!(s.link_avg, 0.0);
    }

    #[test]
    fn display_mentions_all_rows() {
        let ckg = CkgBuilder::new(1, 1).build(SourceMask::all());
        let text = CkgStats::of(&ckg).to_string();
        for needle in ["entities", "relationships", "KG triplets", "link-avg"] {
            assert!(text.contains(needle), "missing {needle}");
        }
    }
}
