//! Batch-local receptive fields: the L-hop in-neighborhood of a training
//! batch, extracted as a compact remapped CSR subgraph.
//! audit: module unwrap — CSR offsets are built and remapped inside this
//! module; debug-audit runtime checks assert the invariants and the subgraph
//! unit tests cover ragged shapes.
//!
//! Propagation-based models (CKAT, KGCN) only need the representations of
//! the batch's seed entities, yet the naive implementation runs every
//! layer over the *entire* CKG. The receptive field of an `L`-layer stack
//! is much smaller: layer `L` output at the seeds depends on layers
//! `L-1..0` at the seeds' `1..L`-hop neighborhoods only. [`BatchSubgraph`]
//! captures exactly that closure so the models can gather `O(subgraph)`
//! embedding rows instead of `O(graph)`.
//!
//! Terminology (`S` = seed set, `N(·)` = out-neighbors in CSR order):
//!
//! * **closure** `C = F_L` where `F_0 = S`, `F_{k+1} = F_k ∪ N(F_k)` —
//!   every entity whose layer-0 embedding participates,
//! * **interior** `I = F_{L-1}` — entities whose *full* CSR edge slice is
//!   copied into the subgraph (their aggregation is exact at every layer
//!   that reads it),
//! * **ring** `C \ I` — frontier entities that appear only as message
//!   tails; they carry no edges, so their deeper-layer values are cheap
//!   *and unused*.
//!
//! Local node ids are assigned in ascending **global** id order (interior
//! first, then ring). Because every interior entity keeps its complete
//! edge slice in global CSR order, per-segment message sums accumulate in
//! exactly the order the full-graph pass uses — batch-local propagation is
//! bitwise identical on the rows that matter, which the differential tests
//! in `facility-models` pin down.
//!
//! ## Thread safety
//!
//! Extraction reads the [`Ckg`] *only* through `&`-references — the graph
//! is immutable CSR data and `Sync` — so any number of workers may
//! extract concurrently from one shared graph, each with its **own**
//! [`SubgraphScratch`] (the scratch holds the mutable BFS state). The
//! replica training pool in `facility-models` relies on this: one scratch
//! per worker, one shared graph, and the extracted subgraph for a given
//! seed set is identical no matter which worker produced it.

use crate::builder::Ckg;

/// Reusable O(n_entities) workspace for [`SubgraphScratch::extract`].
///
/// Membership is tracked with *versioned stamps* so clearing between
/// batches is O(1): a slot belongs to the current extraction only when its
/// stamp equals the current version.
pub struct SubgraphScratch {
    /// Stamp per entity; `stamp[e] == version` ⇒ `e` is in the closure.
    stamp: Vec<u32>,
    /// Local id per entity (valid only when stamped this version).
    local: Vec<u32>,
    /// Current extraction version.
    version: u32,
    /// Discovery buffer reused across extractions (capacity persists).
    discovered: Vec<usize>,
    /// Per-entity closure membership bitmask for [`SubgraphScratch::extract_many`]
    /// (bit `b` ⇒ in seed set `b`'s closure). Allocated on first use.
    mask: Vec<u64>,
    /// Per-round pending bits during the level-synchronous multi-source BFS.
    pending: Vec<u64>,
    /// Snapshot of `mask` after `depth - 1` expansion rounds (bit `b` ⇒
    /// in seed set `b`'s interior, before the cut rule is applied).
    interior_bits: Vec<u64>,
    /// Bit `b` ⇒ the entity is one of seed set `b`'s seeds.
    seed_bits: Vec<u64>,
}

/// A compact remapped CSR subgraph: the `depth`-hop receptive field of a
/// seed set.
#[derive(Debug, Clone, Default)]
pub struct BatchSubgraph {
    /// Global entity id of each local node. Interior nodes come first;
    /// both groups are sorted by global id.
    pub nodes: Vec<usize>,
    /// Number of interior nodes (`nodes[..n_interior]` carry edges).
    pub n_interior: usize,
    /// Local id of each seed, parallel to the `seeds` slice passed to
    /// [`SubgraphScratch::extract`] (duplicates map to the same local id).
    pub seed_locals: Vec<usize>,
    /// Global CSR edge index of each subgraph edge (for attention lookup).
    pub edge_ids: Vec<usize>,
    /// Local tail id per subgraph edge.
    pub tails: Vec<usize>,
    /// Local head id per subgraph edge, grouped CSR-style (non-decreasing).
    pub heads: Vec<usize>,
}

impl BatchSubgraph {
    /// Number of nodes in the closure.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges copied into the subgraph.
    pub fn n_edges(&self) -> usize {
        self.edge_ids.len()
    }

    /// Validate the structural contract against the graph this subgraph
    /// was extracted from, panicking on violation:
    ///
    /// * node groups (interior, ring) are strictly sorted by global id,
    ///   disjoint, and within the graph's entity range;
    /// * every interior node carries its *complete* CSR slice, in global
    ///   edge order (which also proves the edge list is duplicate-free);
    /// * every edge endpoint resolves inside the node set — the closure
    ///   property CKAT's batch-local propagation relies on;
    /// * `seed_locals` are valid local ids.
    ///
    /// Called automatically at the end of
    /// [`SubgraphScratch::extract`] when the `debug-audit` feature is
    /// enabled; always available for tests.
    pub fn validate(&self, ckg: &Ckg) {
        let n = self.nodes.len();
        assert!(self.n_interior <= n, "debug-audit: n_interior {} > {n} nodes", self.n_interior);
        let interior = &self.nodes[..self.n_interior];
        let ring = &self.nodes[self.n_interior..];
        assert!(
            interior.windows(2).all(|w| w[0] < w[1]),
            "debug-audit: interior nodes not strictly sorted"
        );
        assert!(
            ring.windows(2).all(|w| w[0] < w[1]),
            "debug-audit: ring nodes not strictly sorted"
        );
        for &g in &self.nodes {
            assert!(g < ckg.n_entities(), "debug-audit: node {g} outside the entity range");
        }
        // Disjointness: both groups are strictly sorted, so a global id in
        // both would survive a sort+dedup of the union as a duplicate.
        let mut union: Vec<usize> = self.nodes.clone();
        union.sort_unstable();
        let before = union.len();
        union.dedup();
        assert_eq!(union.len(), before, "debug-audit: a node appears in both interior and ring");

        // Interior CSR slices: complete, in order, closed over the nodes.
        let mut k = 0usize;
        for (li, &g) in interior.iter().enumerate() {
            for e in ckg.offsets[g]..ckg.offsets[g + 1] {
                assert!(
                    k < self.edge_ids.len() && self.edge_ids[k] == e,
                    "debug-audit: interior node {g} is missing edge {e} — slice incomplete or \
                     out of order"
                );
                assert_eq!(self.heads[k], li, "debug-audit: edge {e} grouped under the wrong head");
                let tail_local = self.tails[k];
                assert!(tail_local < n, "debug-audit: edge {e} tail escapes the node set");
                assert_eq!(
                    self.nodes[tail_local], ckg.tails[e] as usize,
                    "debug-audit: edge {e} tail remapped to the wrong node"
                );
                k += 1;
            }
        }
        assert_eq!(
            k,
            self.edge_ids.len(),
            "debug-audit: {} edges beyond the interior nodes' CSR slices",
            self.edge_ids.len() - k
        );
        for &sl in &self.seed_locals {
            assert!(sl < n, "debug-audit: seed local id {sl} out of range");
        }
    }
}

/// The union receptive field of one macro-step's micro-batch seed sets,
/// extracted by [`SubgraphScratch::extract_many`] in a single traversal.
///
/// `subgraphs[b]` is **bitwise identical** to what an independent
/// [`SubgraphScratch::extract`] (or [`SubgraphScratch::extract_cut`] when
/// a cut was supplied) of seed set `b` produces — same node order, same
/// edge list, same `seed_locals` — because both paths sort node groups by
/// global id and copy complete CSR slices in global edge order. The union
/// exists so the traversal cost is paid once per macro-step instead of
/// once per micro-batch.
#[derive(Debug, Clone, Default)]
pub struct UnionExtraction {
    /// Sorted global ids of every node in any seed set's closure.
    pub union_nodes: Vec<usize>,
    /// One derived subgraph per seed set, in input order.
    pub subgraphs: Vec<BatchSubgraph>,
}

impl UnionExtraction {
    /// Validate the union's structural contract, panicking on violation:
    /// the union node list is strictly sorted and in range, every derived
    /// subgraph satisfies [`BatchSubgraph::validate`], and every subgraph
    /// node is a member of the union. Called automatically at the end of
    /// [`SubgraphScratch::extract_many`] under the `debug-audit` feature.
    pub fn validate(&self, ckg: &Ckg) {
        assert!(
            self.union_nodes.windows(2).all(|w| w[0] < w[1]),
            "debug-audit: union nodes not strictly sorted"
        );
        for &g in &self.union_nodes {
            assert!(g < ckg.n_entities(), "debug-audit: union node {g} outside the entity range");
        }
        for (b, sub) in self.subgraphs.iter().enumerate() {
            sub.validate(ckg);
            for &g in &sub.nodes {
                assert!(
                    self.union_nodes.binary_search(&g).is_ok(),
                    "debug-audit: subgraph {b} node {g} escapes the union"
                );
            }
        }
    }
}

impl SubgraphScratch {
    /// Workspace for a graph with `n_entities` entities.
    pub fn new(n_entities: usize) -> Self {
        Self {
            stamp: vec![0; n_entities],
            local: vec![0; n_entities],
            version: 0,
            discovered: Vec::new(),
            mask: Vec::new(),
            pending: Vec::new(),
            interior_bits: Vec::new(),
            seed_bits: Vec::new(),
        }
    }

    /// Extract the `depth`-hop in-neighborhood of `seeds` as a remapped
    /// CSR subgraph. Allocates only the output (O(subgraph)); the
    /// O(graph) bookkeeping lives in `self` and is reused across calls.
    ///
    /// # Panics
    /// Panics if a seed is out of range for the graph this scratch was
    /// sized for.
    pub fn extract(&mut self, ckg: &Ckg, seeds: &[usize], depth: usize) -> BatchSubgraph {
        assert_eq!(self.stamp.len(), ckg.n_entities(), "scratch sized for a different graph");
        self.bump_version();
        let version = self.version;
        self.discovered.clear();

        // Level-synchronous BFS over out-edges (CSR slices).
        for &s in seeds {
            if self.stamp[s] != version {
                self.stamp[s] = version;
                self.discovered.push(s);
            }
        }
        let mut frontier_start = 0;
        let mut n_interior_raw = if depth == 0 { 0 } else { self.discovered.len() };
        for hop in 0..depth {
            let frontier_end = self.discovered.len();
            for fi in frontier_start..frontier_end {
                let g = self.discovered[fi];
                for k in ckg.offsets[g]..ckg.offsets[g + 1] {
                    let t = ckg.tails[k] as usize;
                    if self.stamp[t] != version {
                        self.stamp[t] = version;
                        self.discovered.push(t);
                    }
                }
            }
            frontier_start = frontier_end;
            // Interior = closure after `depth - 1` expansions.
            if hop + 1 == depth - 1 {
                n_interior_raw = self.discovered.len();
            }
        }

        // Assign local ids: interior sorted by global id, then ring sorted
        // by global id. Sorting keeps subgraph edge order identical to the
        // full graph's CSR order (bitwise-reproducible accumulation).
        let mut nodes: Vec<usize> = Vec::with_capacity(self.discovered.len());
        nodes.extend_from_slice(&self.discovered[..n_interior_raw]);
        nodes.sort_unstable();
        let n_interior = nodes.len();
        let mut ring: Vec<usize> = self.discovered[n_interior_raw..].to_vec();
        ring.sort_unstable();
        nodes.extend_from_slice(&ring);
        for (li, &g) in nodes.iter().enumerate() {
            self.local[g] = li as u32;
        }

        // Copy each interior node's full CSR slice, remapped to local ids.
        let mut edge_ids = Vec::new();
        let mut tails = Vec::new();
        let mut heads = Vec::new();
        for (li, &g) in nodes[..n_interior].iter().enumerate() {
            for k in ckg.offsets[g]..ckg.offsets[g + 1] {
                edge_ids.push(k);
                heads.push(li);
                tails.push(self.local[ckg.tails[k] as usize] as usize);
            }
        }

        let seed_locals = seeds.iter().map(|&s| self.local[s] as usize).collect();
        let sub = BatchSubgraph { nodes, n_interior, seed_locals, edge_ids, tails, heads };
        #[cfg(feature = "debug-audit")]
        sub.validate(ckg);
        sub
    }

    /// [`SubgraphScratch::extract`] with a *hub cut*: entities flagged in
    /// `cut` do not expand during the BFS unless they are seeds of this
    /// very batch, and a cut non-seed is always classified as **ring**
    /// even when discovered within `depth - 1` hops (its edge slice would
    /// be enormous and its deep-layer values are injected from a cache
    /// instead of computed in-graph — see `facility-models`' hub cache).
    ///
    /// With an all-`false` cut this is exactly [`SubgraphScratch::extract`].
    /// This is the single-seed-set oracle that
    /// [`SubgraphScratch::extract_many`] is differentially tested against.
    ///
    /// # Panics
    /// Panics if `cut` is not sized for the graph or a seed is out of
    /// range.
    pub fn extract_cut(
        &mut self,
        ckg: &Ckg,
        seeds: &[usize],
        depth: usize,
        cut: &[bool],
    ) -> BatchSubgraph {
        assert_eq!(self.stamp.len(), ckg.n_entities(), "scratch sized for a different graph");
        assert_eq!(cut.len(), ckg.n_entities(), "cut flags sized for a different graph");
        self.bump_version();
        let version = self.version;
        self.discovered.clear();

        let mut seed_sorted: Vec<usize> = seeds.to_vec();
        seed_sorted.sort_unstable();
        seed_sorted.dedup();
        let expands = |g: usize| !cut[g] || seed_sorted.binary_search(&g).is_ok();

        for &s in seeds {
            if self.stamp[s] != version {
                self.stamp[s] = version;
                self.discovered.push(s);
            }
        }
        let mut frontier_start = 0;
        let mut n_interior_raw = if depth == 0 { 0 } else { self.discovered.len() };
        for hop in 0..depth {
            let frontier_end = self.discovered.len();
            for fi in frontier_start..frontier_end {
                let g = self.discovered[fi];
                if !expands(g) {
                    continue;
                }
                for k in ckg.offsets[g]..ckg.offsets[g + 1] {
                    let t = ckg.tails[k] as usize;
                    if self.stamp[t] != version {
                        self.stamp[t] = version;
                        self.discovered.push(t);
                    }
                }
            }
            frontier_start = frontier_end;
            if hop + 1 == depth - 1 {
                n_interior_raw = self.discovered.len();
            }
        }

        // Like `extract`, but cut non-seeds are demoted from the interior
        // prefix to the ring before local ids are assigned.
        let mut nodes: Vec<usize> = Vec::with_capacity(self.discovered.len());
        let mut ring: Vec<usize> = Vec::new();
        for &g in &self.discovered[..n_interior_raw] {
            if expands(g) {
                nodes.push(g);
            } else {
                ring.push(g);
            }
        }
        nodes.sort_unstable();
        let n_interior = nodes.len();
        ring.extend_from_slice(&self.discovered[n_interior_raw..]);
        ring.sort_unstable();
        nodes.extend_from_slice(&ring);
        for (li, &g) in nodes.iter().enumerate() {
            self.local[g] = li as u32;
        }

        let mut edge_ids = Vec::new();
        let mut tails = Vec::new();
        let mut heads = Vec::new();
        for (li, &g) in nodes[..n_interior].iter().enumerate() {
            for k in ckg.offsets[g]..ckg.offsets[g + 1] {
                edge_ids.push(k);
                heads.push(li);
                tails.push(self.local[ckg.tails[k] as usize] as usize);
            }
        }

        let seed_locals = seeds.iter().map(|&s| self.local[s] as usize).collect();
        let sub = BatchSubgraph { nodes, n_interior, seed_locals, edge_ids, tails, heads };
        #[cfg(feature = "debug-audit")]
        sub.validate(ckg);
        sub
    }

    /// Extract the union receptive field of up to 64 seed sets in **one**
    /// traversal and derive every per-set [`BatchSubgraph`] from it.
    ///
    /// A level-synchronous multi-source BFS tracks, per entity, a `u64`
    /// bitmask of which seed sets' closures contain it; bits discovered in
    /// the same round are committed together, so per-set hop distances —
    /// and therefore the interior/ring split — are exactly what `depth`
    /// independent BFS runs would compute. Each subgraph is then
    /// materialized by filtering the sorted union with its bit, which
    /// reproduces independent extraction bit for bit (proved in
    /// `facility-models/tests/batch_local_diff.rs` and the tests below).
    ///
    /// `cut` applies [`SubgraphScratch::extract_cut`]'s hub rule to every
    /// set: a cut entity only expands the bits for which it is a seed and
    /// is forced to the ring of every set it is not a seed of.
    ///
    /// # Panics
    /// Panics if more than 64 seed sets are passed, a seed is out of
    /// range, or `cut` is mis-sized.
    pub fn extract_many(
        &mut self,
        ckg: &Ckg,
        seed_sets: &[Vec<usize>],
        depth: usize,
        cut: Option<&[bool]>,
    ) -> UnionExtraction {
        assert_eq!(self.stamp.len(), ckg.n_entities(), "scratch sized for a different graph");
        assert!(seed_sets.len() <= 64, "extract_many tracks at most 64 seed sets per union");
        if let Some(c) = cut {
            assert_eq!(c.len(), ckg.n_entities(), "cut flags sized for a different graph");
        }
        let n = ckg.n_entities();
        if self.mask.len() != n {
            self.mask = vec![0; n];
            self.pending = vec![0; n];
            self.interior_bits = vec![0; n];
            self.seed_bits = vec![0; n];
        }
        self.bump_version();
        let version = self.version;
        self.discovered.clear();
        let is_cut = |g: usize| cut.is_some_and(|c| c[g]);

        // Seed round: first touch lazily clears an entity's bit state.
        for (b, seeds) in seed_sets.iter().enumerate() {
            let bit = 1u64 << b;
            for &s in seeds {
                if self.stamp[s] != version {
                    self.stamp[s] = version;
                    self.mask[s] = 0;
                    self.pending[s] = 0;
                    self.interior_bits[s] = 0;
                    self.seed_bits[s] = 0;
                    self.discovered.push(s);
                }
                self.mask[s] |= bit;
                self.seed_bits[s] |= bit;
            }
        }
        let mut frontier: Vec<(usize, u64)> =
            self.discovered.iter().map(|&s| (s, self.mask[s])).collect();
        if depth == 1 {
            // Interior = closure after depth - 1 = 0 expansions: the seeds.
            for &s in &self.discovered {
                self.interior_bits[s] = self.mask[s];
            }
        }

        let mut touched: Vec<usize> = Vec::new();
        for round in 1..=depth {
            let mut next: Vec<(usize, u64)> = Vec::new();
            touched.clear();
            for &(g, delta) in &frontier {
                // The hub cut: a cut entity expands only the bits it is a
                // seed of (those are exactly its round-0 delta bits).
                let expand = if is_cut(g) { delta & self.seed_bits[g] } else { delta };
                if expand == 0 {
                    continue;
                }
                for k in ckg.offsets[g]..ckg.offsets[g + 1] {
                    let t = ckg.tails[k] as usize;
                    if self.stamp[t] != version {
                        self.stamp[t] = version;
                        self.mask[t] = 0;
                        self.pending[t] = 0;
                        self.interior_bits[t] = 0;
                        self.seed_bits[t] = 0;
                        self.discovered.push(t);
                    }
                    if self.pending[t] == 0 {
                        touched.push(t);
                    }
                    self.pending[t] |= expand;
                }
            }
            // Commit after the whole frontier expanded — bits reaching a
            // node in this round must not re-expand within it, or per-set
            // hop distances (and the interior split) would be wrong.
            for &t in &touched {
                let delta = self.pending[t] & !self.mask[t];
                self.pending[t] = 0;
                if delta != 0 {
                    self.mask[t] |= delta;
                    if round < depth {
                        next.push((t, delta));
                    }
                }
            }
            frontier = next;
            if round == depth - 1 {
                for &g in &self.discovered {
                    self.interior_bits[g] = self.mask[g];
                }
            }
        }

        // Materialize: iterate the sorted union once per set and bucket by
        // bit, so each subgraph's node groups come out sorted by global id
        // exactly as independent extraction sorts them.
        self.discovered.sort_unstable();
        let union_nodes = self.discovered.clone();
        let mut subgraphs = Vec::with_capacity(seed_sets.len());
        for (b, seeds) in seed_sets.iter().enumerate() {
            let bit = 1u64 << b;
            let mut nodes: Vec<usize> = Vec::new();
            for &g in &union_nodes {
                if self.interior_bits[g] & bit != 0 && !(is_cut(g) && self.seed_bits[g] & bit == 0)
                {
                    nodes.push(g);
                }
            }
            let n_interior = nodes.len();
            for &g in &union_nodes {
                let in_closure = self.mask[g] & bit != 0;
                let interior = self.interior_bits[g] & bit != 0
                    && !(is_cut(g) && self.seed_bits[g] & bit == 0);
                if in_closure && !interior {
                    nodes.push(g);
                }
            }
            for (li, &g) in nodes.iter().enumerate() {
                self.local[g] = li as u32;
            }
            let mut edge_ids = Vec::new();
            let mut tails = Vec::new();
            let mut heads = Vec::new();
            for (li, &g) in nodes[..n_interior].iter().enumerate() {
                for k in ckg.offsets[g]..ckg.offsets[g + 1] {
                    edge_ids.push(k);
                    heads.push(li);
                    tails.push(self.local[ckg.tails[k] as usize] as usize);
                }
            }
            let seed_locals = seeds.iter().map(|&s| self.local[s] as usize).collect();
            subgraphs.push(BatchSubgraph {
                nodes,
                n_interior,
                seed_locals,
                edge_ids,
                tails,
                heads,
            });
        }
        let out = UnionExtraction { union_nodes, subgraphs };
        #[cfg(feature = "debug-audit")]
        out.validate(ckg);
        out
    }

    fn bump_version(&mut self) {
        if self.version == u32::MAX {
            self.stamp.fill(0);
            self.version = 1;
        } else {
            self.version += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{CkgBuilder, KnowledgeSource, SourceMask};
    use crate::Id;

    /// 3 users, 4 items, a few attributes; returns the built CKG.
    fn world() -> Ckg {
        let mut b = CkgBuilder::new(3, 4);
        b.add_interactions(&[(0, 0), (0, 1), (1, 1), (2, 2)]);
        for i in 0..4u32 {
            b.add_item_attribute(KnowledgeSource::Dkg, "dataType", i, format!("t{}", i % 2));
        }
        b.build(SourceMask::all())
    }

    #[test]
    fn closure_grows_with_depth_and_stays_sorted() {
        let ckg = world();
        let mut scratch = SubgraphScratch::new(ckg.n_entities());
        let seeds = [0usize];
        let mut prev = 0;
        for depth in 1..=3 {
            let sub = scratch.extract(&ckg, &seeds, depth);
            assert!(sub.n_nodes() >= prev, "closure must be monotone in depth");
            prev = sub.n_nodes();
            assert!(sub.nodes[..sub.n_interior].windows(2).all(|w| w[0] < w[1]));
            assert!(sub.nodes[sub.n_interior..].windows(2).all(|w| w[0] < w[1]));
            // CSR grouping: heads non-decreasing.
            assert!(sub.heads.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn interior_edges_match_full_graph_slices() {
        let ckg = world();
        let mut scratch = SubgraphScratch::new(ckg.n_entities());
        let sub = scratch.extract(&ckg, &[0, 5], 2);
        // Every interior node's local slice must be its complete global
        // CSR slice, in order.
        let mut cursor = 0;
        for (li, &g) in sub.nodes[..sub.n_interior].iter().enumerate() {
            for k in ckg.offsets[g]..ckg.offsets[g + 1] {
                assert_eq!(sub.edge_ids[cursor], k);
                assert_eq!(sub.heads[cursor], li);
                assert_eq!(sub.nodes[sub.tails[cursor]], ckg.tails[k] as usize);
                cursor += 1;
            }
        }
        assert_eq!(cursor, sub.n_edges());
    }

    #[test]
    fn seed_locals_handle_duplicates() {
        let ckg = world();
        let mut scratch = SubgraphScratch::new(ckg.n_entities());
        let sub = scratch.extract(&ckg, &[2, 0, 2], 1);
        assert_eq!(sub.seed_locals.len(), 3);
        assert_eq!(sub.seed_locals[0], sub.seed_locals[2]);
        assert_eq!(sub.nodes[sub.seed_locals[0]], 2);
        assert_eq!(sub.nodes[sub.seed_locals[1]], 0);
    }

    #[test]
    fn depth_one_interior_is_exactly_the_seeds() {
        let ckg = world();
        let mut scratch = SubgraphScratch::new(ckg.n_entities());
        let sub = scratch.extract(&ckg, &[1, 0], 1);
        assert_eq!(&sub.nodes[..sub.n_interior], &[0, 1]);
        // Ring = 1-hop neighbors not already seeds.
        for &t in &sub.tails {
            assert!(t < sub.n_nodes());
        }
    }

    #[test]
    fn scratch_is_reusable_across_disjoint_batches() {
        let ckg = world();
        let mut scratch = SubgraphScratch::new(ckg.n_entities());
        let a = scratch.extract(&ckg, &[0], 2);
        let b = scratch.extract(&ckg, &[2], 2);
        let a2 = scratch.extract(&ckg, &[0], 2);
        assert_eq!(a.nodes, a2.nodes);
        assert_eq!(a.edge_ids, a2.edge_ids);
        assert_ne!(a.nodes, b.nodes);
    }

    #[test]
    fn concurrent_extraction_matches_serial() {
        // Many workers, one shared `&Ckg`, one scratch each: every worker
        // must produce exactly the subgraph a serial extraction yields for
        // the same seed set (extraction never mutates the graph).
        let ckg = world();
        let seed_sets: Vec<Vec<usize>> =
            vec![vec![0], vec![2, 0, 2], vec![1, 5], vec![0, 1, 2], vec![6], vec![3, 4]];

        let mut serial = SubgraphScratch::new(ckg.n_entities());
        let expected: Vec<BatchSubgraph> =
            seed_sets.iter().map(|s| serial.extract(&ckg, s, 2)).collect();

        let concurrent: Vec<BatchSubgraph> = std::thread::scope(|scope| {
            let handles: Vec<_> = seed_sets
                .iter()
                .map(|seeds| {
                    let ckg = &ckg;
                    scope.spawn(move || {
                        let mut scratch = SubgraphScratch::new(ckg.n_entities());
                        scratch.extract(ckg, seeds, 2)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
        });

        for (i, (e, c)) in expected.iter().zip(&concurrent).enumerate() {
            assert_eq!(e.nodes, c.nodes, "seed set {i}: nodes");
            assert_eq!(e.n_interior, c.n_interior, "seed set {i}: interior");
            assert_eq!(e.seed_locals, c.seed_locals, "seed set {i}: seed locals");
            assert_eq!(e.edge_ids, c.edge_ids, "seed set {i}: edge ids");
            assert_eq!(e.tails, c.tails, "seed set {i}: tails");
            assert_eq!(e.heads, c.heads, "seed set {i}: heads");
        }
    }

    /// 4 users, 8 items; every item shares one "common" attribute (the
    /// hub) and has one unique attribute, so the common attribute's CSR
    /// slice dominates any closure that reaches it.
    fn hub_world() -> Ckg {
        let mut b = CkgBuilder::new(4, 8);
        let pairs: Vec<(Id, Id)> = (0..8u32).map(|i| (i % 4, i)).collect();
        b.add_interactions(&pairs);
        for i in 0..8u32 {
            b.add_item_attribute(KnowledgeSource::Dkg, "dataType", i, "common".to_string());
            b.add_item_attribute(KnowledgeSource::Dkg, "dataType", i, format!("unique{i}"));
        }
        b.build(SourceMask::all())
    }

    /// The hub entity (highest out-degree) of a graph.
    fn hub_of(ckg: &Ckg) -> usize {
        (0..ckg.n_entities())
            .max_by_key(|&g| (ckg.offsets[g + 1] - ckg.offsets[g], g))
            .expect("non-empty graph")
    }

    fn assert_subgraphs_bitwise_equal(e: &BatchSubgraph, c: &BatchSubgraph, what: &str) {
        assert_eq!(e.nodes, c.nodes, "{what}: nodes");
        assert_eq!(e.n_interior, c.n_interior, "{what}: n_interior");
        assert_eq!(e.seed_locals, c.seed_locals, "{what}: seed_locals");
        assert_eq!(e.edge_ids, c.edge_ids, "{what}: edge_ids");
        assert_eq!(e.tails, c.tails, "{what}: tails");
        assert_eq!(e.heads, c.heads, "{what}: heads");
    }

    /// One union traversal must reproduce independent extraction exactly,
    /// for every union width the replica macro-step uses and every depth
    /// the model configs use.
    #[test]
    fn union_extraction_matches_independent_extraction() {
        let ckg = world();
        let all_sets: Vec<Vec<usize>> = vec![
            vec![0, 5, 0],
            vec![2],
            vec![1, 6, 3],
            vec![0, 1, 2],
            vec![6],
            vec![3, 4, 3],
            vec![5, 2],
            vec![0, 6, 4],
        ];
        for width in [1usize, 2, 4, 8] {
            for depth in 1..=3 {
                let sets = &all_sets[..width];
                let mut u_scratch = SubgraphScratch::new(ckg.n_entities());
                let union = u_scratch.extract_many(&ckg, sets, depth, None);
                union.validate(&ckg);
                assert_eq!(union.subgraphs.len(), width);
                let mut i_scratch = SubgraphScratch::new(ckg.n_entities());
                for (b, seeds) in sets.iter().enumerate() {
                    let independent = i_scratch.extract(&ckg, seeds, depth);
                    assert_subgraphs_bitwise_equal(
                        &independent,
                        &union.subgraphs[b],
                        &format!("width {width} depth {depth} set {b}"),
                    );
                }
            }
        }
    }

    /// The same equivalence under the hub cut, against the single-set
    /// `extract_cut` oracle, on a graph with a genuine hub.
    #[test]
    fn union_extraction_matches_extract_cut_under_hub_cut() {
        let ckg = hub_world();
        let hub = hub_of(&ckg);
        let mut cut = vec![false; ckg.n_entities()];
        cut[hub] = true;
        let sets: Vec<Vec<usize>> = vec![
            vec![0, 4, 8],
            vec![1, 5],
            vec![2, 6, 10],
            vec![3, 7],
            vec![0, 9],
            vec![hub, 1], // the hub as a seed must stay interior for this set
            vec![2, 11],
            vec![3, 4, 5],
        ];
        for depth in 1..=3 {
            let mut u_scratch = SubgraphScratch::new(ckg.n_entities());
            let union = u_scratch.extract_many(&ckg, &sets, depth, Some(&cut));
            union.validate(&ckg);
            let mut i_scratch = SubgraphScratch::new(ckg.n_entities());
            for (b, seeds) in sets.iter().enumerate() {
                let independent = i_scratch.extract_cut(&ckg, seeds, depth, &cut);
                assert_subgraphs_bitwise_equal(
                    &independent,
                    &union.subgraphs[b],
                    &format!("cut depth {depth} set {b}"),
                );
            }
        }
    }

    /// A cut hub discovered well inside the receptive field is forced to
    /// the ring (no edge slice), while the same hub used as a seed keeps
    /// its full slice — the structural rule the hub cache depends on.
    #[test]
    fn cut_hub_is_ring_unless_seeded() {
        let ckg = hub_world();
        let hub = hub_of(&ckg);
        let mut cut = vec![false; ckg.n_entities()];
        cut[hub] = true;
        let mut scratch = SubgraphScratch::new(ckg.n_entities());

        // Seed a user: the hub is 2 hops away, inside a depth-3 interior.
        let plain = scratch.extract(&ckg, &[0], 3);
        let plain_local = plain.nodes.iter().position(|&g| g == hub).expect("hub reachable");
        assert!(plain_local < plain.n_interior, "without a cut the hub is interior");

        let cut_sub = scratch.extract_cut(&ckg, &[0], 3, &cut);
        let cut_local = cut_sub.nodes.iter().position(|&g| g == hub).expect("hub still reached");
        assert!(cut_local >= cut_sub.n_interior, "cut hub must be demoted to the ring");
        assert!(
            cut_sub.n_edges() < plain.n_edges(),
            "cutting the hub must shrink the copied edge slices"
        );
        assert!(
            cut_sub.n_nodes() < plain.n_nodes(),
            "nodes reachable only through the hub must disappear"
        );

        // Seeding the hub itself keeps it interior with its full slice.
        let seeded = scratch.extract_cut(&ckg, &[hub], 2, &cut);
        let li = seeded.nodes.iter().position(|&g| g == hub).expect("seed present");
        assert!(li < seeded.n_interior, "a cut entity seeded by the batch stays interior");
    }

    #[test]
    fn extract_cut_with_no_cut_flags_matches_extract() {
        let ckg = world();
        let cut = vec![false; ckg.n_entities()];
        let mut a = SubgraphScratch::new(ckg.n_entities());
        let mut b = SubgraphScratch::new(ckg.n_entities());
        for depth in 0..=3 {
            let plain = a.extract(&ckg, &[0, 5, 0], depth);
            let cutted = b.extract_cut(&ckg, &[0, 5, 0], depth, &cut);
            assert_subgraphs_bitwise_equal(&plain, &cutted, &format!("depth {depth}"));
        }
    }

    #[test]
    fn union_scratch_interleaves_with_single_extractions() {
        // The bitmask arrays are lazily cleared via the version stamps, so
        // extract / extract_many calls can alternate on one scratch.
        let ckg = world();
        let mut scratch = SubgraphScratch::new(ckg.n_entities());
        let a = scratch.extract(&ckg, &[0], 2);
        let u1 = scratch.extract_many(&ckg, &[vec![0], vec![2]], 2, None);
        let b = scratch.extract(&ckg, &[0], 2);
        let u2 = scratch.extract_many(&ckg, &[vec![0], vec![2]], 2, None);
        assert_subgraphs_bitwise_equal(&a, &b, "extract after extract_many");
        assert_subgraphs_bitwise_equal(&u1.subgraphs[0], &u2.subgraphs[0], "union set 0");
        assert_subgraphs_bitwise_equal(&u1.subgraphs[1], &u2.subgraphs[1], "union set 1");
        assert_subgraphs_bitwise_equal(&a, &u1.subgraphs[0], "union vs single");
    }

    #[test]
    #[should_panic(expected = "at most 64 seed sets")]
    fn union_extraction_rejects_too_many_sets() {
        let ckg = world();
        let mut scratch = SubgraphScratch::new(ckg.n_entities());
        let sets: Vec<Vec<usize>> = (0..65).map(|_| vec![0usize]).collect();
        let _ = scratch.extract_many(&ckg, &sets, 2, None);
    }

    #[test]
    fn receptive_field_is_smaller_than_graph_on_sparse_worlds() {
        // A chain graph: each item relates to one attribute; a single
        // user's 2-hop field must not cover everything.
        let mut b = CkgBuilder::new(10, 10);
        let pairs: Vec<(Id, Id)> = (0..10u32).map(|u| (u, u)).collect();
        b.add_interactions(&pairs);
        for i in 0..10u32 {
            b.add_item_attribute(KnowledgeSource::Dkg, "dataType", i, format!("t{i}"));
        }
        let ckg = b.build(SourceMask::all());
        let mut scratch = SubgraphScratch::new(ckg.n_entities());
        let sub = scratch.extract(&ckg, &[0], 2);
        assert!(sub.n_nodes() < ckg.n_entities());
        assert!(sub.n_edges() < ckg.heads.len());
    }
}
