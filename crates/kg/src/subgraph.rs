//! Batch-local receptive fields: the L-hop in-neighborhood of a training
//! batch, extracted as a compact remapped CSR subgraph.
//!
//! Propagation-based models (CKAT, KGCN) only need the representations of
//! the batch's seed entities, yet the naive implementation runs every
//! layer over the *entire* CKG. The receptive field of an `L`-layer stack
//! is much smaller: layer `L` output at the seeds depends on layers
//! `L-1..0` at the seeds' `1..L`-hop neighborhoods only. [`BatchSubgraph`]
//! captures exactly that closure so the models can gather `O(subgraph)`
//! embedding rows instead of `O(graph)`.
//!
//! Terminology (`S` = seed set, `N(·)` = out-neighbors in CSR order):
//!
//! * **closure** `C = F_L` where `F_0 = S`, `F_{k+1} = F_k ∪ N(F_k)` —
//!   every entity whose layer-0 embedding participates,
//! * **interior** `I = F_{L-1}` — entities whose *full* CSR edge slice is
//!   copied into the subgraph (their aggregation is exact at every layer
//!   that reads it),
//! * **ring** `C \ I` — frontier entities that appear only as message
//!   tails; they carry no edges, so their deeper-layer values are cheap
//!   *and unused*.
//!
//! Local node ids are assigned in ascending **global** id order (interior
//! first, then ring). Because every interior entity keeps its complete
//! edge slice in global CSR order, per-segment message sums accumulate in
//! exactly the order the full-graph pass uses — batch-local propagation is
//! bitwise identical on the rows that matter, which the differential tests
//! in `facility-models` pin down.
//!
//! ## Thread safety
//!
//! Extraction reads the [`Ckg`] *only* through `&`-references — the graph
//! is immutable CSR data and `Sync` — so any number of workers may
//! extract concurrently from one shared graph, each with its **own**
//! [`SubgraphScratch`] (the scratch holds the mutable BFS state). The
//! replica training pool in `facility-models` relies on this: one scratch
//! per worker, one shared graph, and the extracted subgraph for a given
//! seed set is identical no matter which worker produced it.

use crate::builder::Ckg;

/// Reusable O(n_entities) workspace for [`SubgraphScratch::extract`].
///
/// Membership is tracked with *versioned stamps* so clearing between
/// batches is O(1): a slot belongs to the current extraction only when its
/// stamp equals the current version.
pub struct SubgraphScratch {
    /// Stamp per entity; `stamp[e] == version` ⇒ `e` is in the closure.
    stamp: Vec<u32>,
    /// Local id per entity (valid only when stamped this version).
    local: Vec<u32>,
    /// Current extraction version.
    version: u32,
    /// Discovery buffer reused across extractions (capacity persists).
    discovered: Vec<usize>,
}

/// A compact remapped CSR subgraph: the `depth`-hop receptive field of a
/// seed set.
#[derive(Debug, Clone, Default)]
pub struct BatchSubgraph {
    /// Global entity id of each local node. Interior nodes come first;
    /// both groups are sorted by global id.
    pub nodes: Vec<usize>,
    /// Number of interior nodes (`nodes[..n_interior]` carry edges).
    pub n_interior: usize,
    /// Local id of each seed, parallel to the `seeds` slice passed to
    /// [`SubgraphScratch::extract`] (duplicates map to the same local id).
    pub seed_locals: Vec<usize>,
    /// Global CSR edge index of each subgraph edge (for attention lookup).
    pub edge_ids: Vec<usize>,
    /// Local tail id per subgraph edge.
    pub tails: Vec<usize>,
    /// Local head id per subgraph edge, grouped CSR-style (non-decreasing).
    pub heads: Vec<usize>,
}

impl BatchSubgraph {
    /// Number of nodes in the closure.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges copied into the subgraph.
    pub fn n_edges(&self) -> usize {
        self.edge_ids.len()
    }

    /// Validate the structural contract against the graph this subgraph
    /// was extracted from, panicking on violation:
    ///
    /// * node groups (interior, ring) are strictly sorted by global id,
    ///   disjoint, and within the graph's entity range;
    /// * every interior node carries its *complete* CSR slice, in global
    ///   edge order (which also proves the edge list is duplicate-free);
    /// * every edge endpoint resolves inside the node set — the closure
    ///   property CKAT's batch-local propagation relies on;
    /// * `seed_locals` are valid local ids.
    ///
    /// Called automatically at the end of
    /// [`SubgraphScratch::extract`] when the `debug-audit` feature is
    /// enabled; always available for tests.
    pub fn validate(&self, ckg: &Ckg) {
        let n = self.nodes.len();
        assert!(self.n_interior <= n, "debug-audit: n_interior {} > {n} nodes", self.n_interior);
        let interior = &self.nodes[..self.n_interior];
        let ring = &self.nodes[self.n_interior..];
        assert!(
            interior.windows(2).all(|w| w[0] < w[1]),
            "debug-audit: interior nodes not strictly sorted"
        );
        assert!(
            ring.windows(2).all(|w| w[0] < w[1]),
            "debug-audit: ring nodes not strictly sorted"
        );
        for &g in &self.nodes {
            assert!(g < ckg.n_entities(), "debug-audit: node {g} outside the entity range");
        }
        // Disjointness: both groups are strictly sorted, so a global id in
        // both would survive a sort+dedup of the union as a duplicate.
        let mut union: Vec<usize> = self.nodes.clone();
        union.sort_unstable();
        let before = union.len();
        union.dedup();
        assert_eq!(union.len(), before, "debug-audit: a node appears in both interior and ring");

        // Interior CSR slices: complete, in order, closed over the nodes.
        let mut k = 0usize;
        for (li, &g) in interior.iter().enumerate() {
            for e in ckg.offsets[g]..ckg.offsets[g + 1] {
                assert!(
                    k < self.edge_ids.len() && self.edge_ids[k] == e,
                    "debug-audit: interior node {g} is missing edge {e} — slice incomplete or \
                     out of order"
                );
                assert_eq!(self.heads[k], li, "debug-audit: edge {e} grouped under the wrong head");
                let tail_local = self.tails[k];
                assert!(tail_local < n, "debug-audit: edge {e} tail escapes the node set");
                assert_eq!(
                    self.nodes[tail_local], ckg.tails[e] as usize,
                    "debug-audit: edge {e} tail remapped to the wrong node"
                );
                k += 1;
            }
        }
        assert_eq!(
            k,
            self.edge_ids.len(),
            "debug-audit: {} edges beyond the interior nodes' CSR slices",
            self.edge_ids.len() - k
        );
        for &sl in &self.seed_locals {
            assert!(sl < n, "debug-audit: seed local id {sl} out of range");
        }
    }
}

impl SubgraphScratch {
    /// Workspace for a graph with `n_entities` entities.
    pub fn new(n_entities: usize) -> Self {
        Self {
            stamp: vec![0; n_entities],
            local: vec![0; n_entities],
            version: 0,
            discovered: Vec::new(),
        }
    }

    /// Extract the `depth`-hop in-neighborhood of `seeds` as a remapped
    /// CSR subgraph. Allocates only the output (O(subgraph)); the
    /// O(graph) bookkeeping lives in `self` and is reused across calls.
    ///
    /// # Panics
    /// Panics if a seed is out of range for the graph this scratch was
    /// sized for.
    pub fn extract(&mut self, ckg: &Ckg, seeds: &[usize], depth: usize) -> BatchSubgraph {
        assert_eq!(self.stamp.len(), ckg.n_entities(), "scratch sized for a different graph");
        self.bump_version();
        let version = self.version;
        self.discovered.clear();

        // Level-synchronous BFS over out-edges (CSR slices).
        for &s in seeds {
            if self.stamp[s] != version {
                self.stamp[s] = version;
                self.discovered.push(s);
            }
        }
        let mut frontier_start = 0;
        let mut n_interior_raw = if depth == 0 { 0 } else { self.discovered.len() };
        for hop in 0..depth {
            let frontier_end = self.discovered.len();
            for fi in frontier_start..frontier_end {
                let g = self.discovered[fi];
                for k in ckg.offsets[g]..ckg.offsets[g + 1] {
                    let t = ckg.tails[k] as usize;
                    if self.stamp[t] != version {
                        self.stamp[t] = version;
                        self.discovered.push(t);
                    }
                }
            }
            frontier_start = frontier_end;
            // Interior = closure after `depth - 1` expansions.
            if hop + 1 == depth - 1 {
                n_interior_raw = self.discovered.len();
            }
        }

        // Assign local ids: interior sorted by global id, then ring sorted
        // by global id. Sorting keeps subgraph edge order identical to the
        // full graph's CSR order (bitwise-reproducible accumulation).
        let mut nodes: Vec<usize> = Vec::with_capacity(self.discovered.len());
        nodes.extend_from_slice(&self.discovered[..n_interior_raw]);
        nodes.sort_unstable();
        let n_interior = nodes.len();
        let mut ring: Vec<usize> = self.discovered[n_interior_raw..].to_vec();
        ring.sort_unstable();
        nodes.extend_from_slice(&ring);
        for (li, &g) in nodes.iter().enumerate() {
            self.local[g] = li as u32;
        }

        // Copy each interior node's full CSR slice, remapped to local ids.
        let mut edge_ids = Vec::new();
        let mut tails = Vec::new();
        let mut heads = Vec::new();
        for (li, &g) in nodes[..n_interior].iter().enumerate() {
            for k in ckg.offsets[g]..ckg.offsets[g + 1] {
                edge_ids.push(k);
                heads.push(li);
                tails.push(self.local[ckg.tails[k] as usize] as usize);
            }
        }

        let seed_locals = seeds.iter().map(|&s| self.local[s] as usize).collect();
        let sub = BatchSubgraph { nodes, n_interior, seed_locals, edge_ids, tails, heads };
        #[cfg(feature = "debug-audit")]
        sub.validate(ckg);
        sub
    }

    fn bump_version(&mut self) {
        if self.version == u32::MAX {
            self.stamp.fill(0);
            self.version = 1;
        } else {
            self.version += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{CkgBuilder, KnowledgeSource, SourceMask};
    use crate::Id;

    /// 3 users, 4 items, a few attributes; returns the built CKG.
    fn world() -> Ckg {
        let mut b = CkgBuilder::new(3, 4);
        b.add_interactions(&[(0, 0), (0, 1), (1, 1), (2, 2)]);
        for i in 0..4u32 {
            b.add_item_attribute(KnowledgeSource::Dkg, "dataType", i, format!("t{}", i % 2));
        }
        b.build(SourceMask::all())
    }

    #[test]
    fn closure_grows_with_depth_and_stays_sorted() {
        let ckg = world();
        let mut scratch = SubgraphScratch::new(ckg.n_entities());
        let seeds = [0usize];
        let mut prev = 0;
        for depth in 1..=3 {
            let sub = scratch.extract(&ckg, &seeds, depth);
            assert!(sub.n_nodes() >= prev, "closure must be monotone in depth");
            prev = sub.n_nodes();
            assert!(sub.nodes[..sub.n_interior].windows(2).all(|w| w[0] < w[1]));
            assert!(sub.nodes[sub.n_interior..].windows(2).all(|w| w[0] < w[1]));
            // CSR grouping: heads non-decreasing.
            assert!(sub.heads.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn interior_edges_match_full_graph_slices() {
        let ckg = world();
        let mut scratch = SubgraphScratch::new(ckg.n_entities());
        let sub = scratch.extract(&ckg, &[0, 5], 2);
        // Every interior node's local slice must be its complete global
        // CSR slice, in order.
        let mut cursor = 0;
        for (li, &g) in sub.nodes[..sub.n_interior].iter().enumerate() {
            for k in ckg.offsets[g]..ckg.offsets[g + 1] {
                assert_eq!(sub.edge_ids[cursor], k);
                assert_eq!(sub.heads[cursor], li);
                assert_eq!(sub.nodes[sub.tails[cursor]], ckg.tails[k] as usize);
                cursor += 1;
            }
        }
        assert_eq!(cursor, sub.n_edges());
    }

    #[test]
    fn seed_locals_handle_duplicates() {
        let ckg = world();
        let mut scratch = SubgraphScratch::new(ckg.n_entities());
        let sub = scratch.extract(&ckg, &[2, 0, 2], 1);
        assert_eq!(sub.seed_locals.len(), 3);
        assert_eq!(sub.seed_locals[0], sub.seed_locals[2]);
        assert_eq!(sub.nodes[sub.seed_locals[0]], 2);
        assert_eq!(sub.nodes[sub.seed_locals[1]], 0);
    }

    #[test]
    fn depth_one_interior_is_exactly_the_seeds() {
        let ckg = world();
        let mut scratch = SubgraphScratch::new(ckg.n_entities());
        let sub = scratch.extract(&ckg, &[1, 0], 1);
        assert_eq!(&sub.nodes[..sub.n_interior], &[0, 1]);
        // Ring = 1-hop neighbors not already seeds.
        for &t in &sub.tails {
            assert!(t < sub.n_nodes());
        }
    }

    #[test]
    fn scratch_is_reusable_across_disjoint_batches() {
        let ckg = world();
        let mut scratch = SubgraphScratch::new(ckg.n_entities());
        let a = scratch.extract(&ckg, &[0], 2);
        let b = scratch.extract(&ckg, &[2], 2);
        let a2 = scratch.extract(&ckg, &[0], 2);
        assert_eq!(a.nodes, a2.nodes);
        assert_eq!(a.edge_ids, a2.edge_ids);
        assert_ne!(a.nodes, b.nodes);
    }

    #[test]
    fn concurrent_extraction_matches_serial() {
        // Many workers, one shared `&Ckg`, one scratch each: every worker
        // must produce exactly the subgraph a serial extraction yields for
        // the same seed set (extraction never mutates the graph).
        let ckg = world();
        let seed_sets: Vec<Vec<usize>> =
            vec![vec![0], vec![2, 0, 2], vec![1, 5], vec![0, 1, 2], vec![6], vec![3, 4]];

        let mut serial = SubgraphScratch::new(ckg.n_entities());
        let expected: Vec<BatchSubgraph> =
            seed_sets.iter().map(|s| serial.extract(&ckg, s, 2)).collect();

        let concurrent: Vec<BatchSubgraph> = std::thread::scope(|scope| {
            let handles: Vec<_> = seed_sets
                .iter()
                .map(|seeds| {
                    let ckg = &ckg;
                    scope.spawn(move || {
                        let mut scratch = SubgraphScratch::new(ckg.n_entities());
                        scratch.extract(ckg, seeds, 2)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
        });

        for (i, (e, c)) in expected.iter().zip(&concurrent).enumerate() {
            assert_eq!(e.nodes, c.nodes, "seed set {i}: nodes");
            assert_eq!(e.n_interior, c.n_interior, "seed set {i}: interior");
            assert_eq!(e.seed_locals, c.seed_locals, "seed set {i}: seed locals");
            assert_eq!(e.edge_ids, c.edge_ids, "seed set {i}: edge ids");
            assert_eq!(e.tails, c.tails, "seed set {i}: tails");
            assert_eq!(e.heads, c.heads, "seed set {i}: heads");
        }
    }

    #[test]
    fn receptive_field_is_smaller_than_graph_on_sparse_worlds() {
        // A chain graph: each item relates to one attribute; a single
        // user's 2-hop field must not cover everything.
        let mut b = CkgBuilder::new(10, 10);
        let pairs: Vec<(Id, Id)> = (0..10u32).map(|u| (u, u)).collect();
        b.add_interactions(&pairs);
        for i in 0..10u32 {
            b.add_item_attribute(KnowledgeSource::Dkg, "dataType", i, format!("t{i}"));
        }
        let ckg = b.build(SourceMask::all());
        let mut scratch = SubgraphScratch::new(ckg.n_entities());
        let sub = scratch.extract(&ckg, &[0], 2);
        assert!(sub.n_nodes() < ckg.n_entities());
        assert!(sub.n_edges() < ckg.heads.len());
    }
}
