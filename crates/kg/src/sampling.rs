//! Negative sampling for BPR (Eq. 12) and TransR (Eq. 2) training.
//!
//! Both samplers follow the paper's protocol: each observed positive is
//! paired with one sampled negative the user/graph has *not* seen.
//! Rejection sampling is bounded to stay robust on pathological inputs
//! (e.g. a user who has interacted with every item).

use crate::{builder::Ckg, interactions::Interactions, Id};
use rand::Rng;

/// One BPR training example `(user, positive item, negative item)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BprSample {
    /// User index.
    pub user: Id,
    /// An item the user queried.
    pub pos: Id,
    /// A sampled item the user did not query (best effort; see
    /// [`sample_bpr_batch`]).
    pub neg: Id,
}

/// Draw a batch of BPR triples from the training interactions.
///
/// Positives are drawn uniformly from the flattened `(u, i)` training
/// pairs, so active users appear proportionally to their activity — the
/// standard BPR regime. Negatives are rejection-sampled with a bounded
/// number of tries; if a user has consumed (almost) every item the last
/// candidate is returned, which keeps the sampler total.
///
/// Returns an empty batch when there are no training pairs or no items.
pub fn sample_bpr_batch(
    inter: &Interactions,
    batch_size: usize,
    rng: &mut impl Rng,
) -> Vec<BprSample> {
    if inter.train_pairs.is_empty() || inter.n_items == 0 {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(batch_size);
    for _ in 0..batch_size {
        // audit: unwrap — gen_range(0..len) is in bounds by construction.
        let &(user, pos) = &inter.train_pairs[rng.gen_range(0..inter.train_pairs.len())];
        let mut neg = rng.gen_range(0..inter.n_items) as Id;
        for _ in 0..64 {
            if !inter.contains_train(user, neg) {
                break;
            }
            neg = rng.gen_range(0..inter.n_items) as Id;
        }
        out.push(BprSample { user, pos, neg });
    }
    out
}

/// One TransR training example: a valid triple plus a corrupted tail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KgSample {
    /// Head entity id.
    pub head: Id,
    /// Relation id (canonical).
    pub rel: Id,
    /// Valid tail entity id.
    pub tail: Id,
    /// Corrupted tail entity id — `(head, rel, neg_tail)` is not a fact.
    pub neg_tail: Id,
}

/// Draw a batch of TransR corruption samples from the CKG's canonical
/// triples (`S'` in Eq. 2 is built by replacing the tail of a valid triple
/// with a random entity).
///
/// Corruption is rejection-sampled with a bounded number of tries. Unlike
/// BPR sampling (where a best-effort negative merely weakens one example),
/// an invalid corrupted tail here *breaks the margin loss invariant*
/// `(h, r, t⁻) ∉ G`, so triples whose neighborhood is saturated — every
/// candidate within the try budget is a fact or the tail itself — are
/// **skipped**, not emitted. The batch may therefore come up short on
/// near-complete graphs; it is empty for an empty graph.
pub fn sample_kg_batch(ckg: &Ckg, batch_size: usize, rng: &mut impl Rng) -> Vec<KgSample> {
    let n_ent = ckg.n_entities();
    if ckg.canonical_triples.is_empty() || n_ent == 0 {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(batch_size);
    for _ in 0..batch_size {
        let &(head, rel, tail) =
        // audit: unwrap — gen_range(0..len) is in bounds by construction.
            &ckg.canonical_triples[rng.gen_range(0..ckg.canonical_triples.len())];
        let mut candidate = rng.gen_range(0..n_ent) as Id;
        let mut neg_tail = None;
        for _ in 0..64 {
            if candidate != tail && !ckg.has_triple(head, rel, candidate) {
                neg_tail = Some(candidate);
                break;
            }
            candidate = rng.gen_range(0..n_ent) as Id;
        }
        if let Some(neg_tail) = neg_tail {
            out.push(KgSample { head, rel, tail, neg_tail });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{CkgBuilder, KnowledgeSource, SourceMask};
    use facility_linalg::seeded_rng;

    fn small_world() -> (Interactions, Ckg) {
        let events: Vec<(Id, Id)> = vec![(0, 0), (0, 1), (1, 2), (1, 3), (2, 0), (2, 4)];
        let inter = Interactions::split(3, 6, &events, 0.0, &mut seeded_rng(0));
        let mut b = CkgBuilder::new(3, 6);
        b.add_interactions(&events);
        for i in 0..6 {
            b.add_item_attribute(KnowledgeSource::Dkg, "dataType", i, format!("type:{}", i % 2));
        }
        (inter, b.build(SourceMask::all()))
    }

    #[test]
    fn bpr_negatives_are_never_train_positives() {
        let (inter, _) = small_world();
        let mut rng = seeded_rng(7);
        for s in sample_bpr_batch(&inter, 500, &mut rng) {
            assert!(inter.contains_train(s.user, s.pos), "pos must be positive");
            assert!(!inter.contains_train(s.user, s.neg), "neg must not be positive");
        }
    }

    #[test]
    fn kg_negatives_are_never_facts() {
        let (_, ckg) = small_world();
        let mut rng = seeded_rng(8);
        for s in sample_kg_batch(&ckg, 500, &mut rng) {
            assert!(ckg.has_triple(s.head, s.rel, s.tail));
            assert!(!ckg.has_triple(s.head, s.rel, s.neg_tail));
            assert_ne!(s.tail, s.neg_tail);
        }
    }

    #[test]
    fn batch_sizes_are_exact() {
        let (inter, ckg) = small_world();
        let mut rng = seeded_rng(9);
        assert_eq!(sample_bpr_batch(&inter, 17, &mut rng).len(), 17);
        assert_eq!(sample_kg_batch(&ckg, 23, &mut rng).len(), 23);
    }

    #[test]
    fn empty_inputs_yield_empty_batches() {
        let inter = Interactions::from_lists(0, vec![], vec![]);
        let ckg = CkgBuilder::new(0, 0).build(SourceMask::all());
        let mut rng = seeded_rng(1);
        assert!(sample_bpr_batch(&inter, 8, &mut rng).is_empty());
        assert!(sample_kg_batch(&ckg, 8, &mut rng).is_empty());
    }

    #[test]
    fn saturated_user_still_terminates() {
        // User 0 has consumed every item: rejection sampling must bail out.
        let inter = Interactions::from_lists(3, vec![vec![0, 1, 2]], vec![vec![]]);
        let mut rng = seeded_rng(2);
        let batch = sample_bpr_batch(&inter, 10, &mut rng);
        assert_eq!(batch.len(), 10, "sampler must stay total");
    }

    #[test]
    fn sampling_is_deterministic_under_seed() {
        let (inter, _) = small_world();
        let a = sample_bpr_batch(&inter, 50, &mut seeded_rng(3));
        let b = sample_bpr_batch(&inter, 50, &mut seeded_rng(3));
        assert_eq!(a, b);
    }
}
