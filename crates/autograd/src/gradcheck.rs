//! Numerical gradient checking.
//!
//! The only trustworthy way to validate a hand-written backward pass is to
//! compare it against central finite differences. [`check_gradient`] runs a
//! user-supplied scalar function twice per perturbed element and compares
//! against the analytic gradient with a relative-error criterion that is
//! robust to `f32` noise.

use facility_linalg::Matrix;

/// Outcome of a gradient check, carrying the worst offending element for
/// debugging.
#[derive(Debug)]
pub struct GradCheckReport {
    /// Largest relative error observed.
    pub max_rel_err: f32,
    /// Flat index of the worst element.
    pub worst_index: usize,
    /// Analytic gradient at the worst element.
    pub analytic: f32,
    /// Numerical gradient at the worst element.
    pub numeric: f32,
}

impl GradCheckReport {
    /// True when the worst relative error is below `tol`.
    pub fn passes(&self, tol: f32) -> bool {
        self.max_rel_err <= tol
    }
}

/// Central-difference numerical gradient of `f` at `at`.
///
/// `f` must be a pure function of its input.
pub fn numeric_grad(f: &mut dyn FnMut(&Matrix) -> f32, at: &Matrix, eps: f32) -> Matrix {
    let mut g = Matrix::zeros(at.rows(), at.cols());
    let mut x = at.clone();
    for i in 0..at.len() {
        let orig = x.as_slice()[i];
        x.as_mut_slice()[i] = orig + eps;
        let fp = f(&x);
        x.as_mut_slice()[i] = orig - eps;
        let fm = f(&x);
        x.as_mut_slice()[i] = orig;
        g.as_mut_slice()[i] = (fp - fm) / (2.0 * eps);
    }
    g
}

/// Compare `analytic` against the central-difference gradient of `f` at
/// `at`.
///
/// The error metric per element is `|a − n| / max(1, |a|, |n|)` — absolute
/// when gradients are small, relative when they are large.
pub fn check_gradient(
    f: &mut dyn FnMut(&Matrix) -> f32,
    at: &Matrix,
    analytic: &Matrix,
    eps: f32,
) -> GradCheckReport {
    assert_eq!(analytic.shape(), at.shape(), "check_gradient: shape mismatch");
    let numeric = numeric_grad(f, at, eps);
    let mut report =
        GradCheckReport { max_rel_err: 0.0, worst_index: 0, analytic: 0.0, numeric: 0.0 };
    for i in 0..at.len() {
        let a = analytic.as_slice()[i];
        let n = numeric.as_slice()[i];
        let denom = 1.0_f32.max(a.abs()).max(n.abs());
        let err = (a - n).abs() / denom;
        if err > report.max_rel_err {
            report.max_rel_err = err;
            report.worst_index = i;
            report.analytic = a;
            report.numeric = n;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_grad_of_quadratic() {
        let at = Matrix::from_vec(1, 3, vec![1.0, -2.0, 0.5]);
        let g = numeric_grad(&mut |m: &Matrix| m.frobenius_sq(), &at, 1e-2);
        for i in 0..3 {
            assert!((g.as_slice()[i] - 2.0 * at.as_slice()[i]).abs() < 1e-2);
        }
    }

    #[test]
    fn check_gradient_detects_wrong_gradient() {
        let at = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let wrong = Matrix::from_vec(1, 2, vec![0.0, 0.0]);
        let report = check_gradient(&mut |m: &Matrix| m.frobenius_sq(), &at, &wrong, 1e-2);
        assert!(!report.passes(1e-2), "should fail: {report:?}");
    }

    #[test]
    fn check_gradient_accepts_correct_gradient() {
        let at = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let correct = at.scale(2.0);
        let report = check_gradient(&mut |m: &Matrix| m.frobenius_sq(), &at, &correct, 1e-2);
        assert!(report.passes(1e-2), "should pass: {report:?}");
    }
}
