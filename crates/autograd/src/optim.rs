//! Parameter storage and first-order optimizers.
//!
//! [`ParamStore`] owns named parameter matrices for the lifetime of a
//! model; a fresh [`Tape`](crate::Tape) borrows *clones* of the values each
//! step and hands gradients back through [`ParamStore::apply`].
//!
//! [`Adam`] (Kingma & Ba 2014) is the paper's optimizer for every model;
//! [`Sgd`] is kept for tests and ablations.

use facility_linalg::Matrix;

/// Handle to a parameter inside a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(usize);

/// Owned collection of named model parameters.
#[derive(Default)]
pub struct ParamStore {
    names: Vec<String>,
    values: Vec<Matrix>,
}

impl ParamStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a parameter; the returned id is stable for the store's
    /// lifetime.
    pub fn add(&mut self, name: impl Into<String>, value: Matrix) -> ParamId {
        self.names.push(name.into());
        self.values.push(value);
        ParamId(self.values.len() - 1)
    }

    /// Current value of a parameter.
    pub fn value(&self, id: ParamId) -> &Matrix {
        &self.values[id.0]
    }

    /// Mutable access (used by tests and by model-specific manual updates).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.values[id.0]
    }

    /// Name given at registration.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterate over `(id, name, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &str, &Matrix)> {
        self.values.iter().enumerate().map(|(i, v)| (ParamId(i), self.names[i].as_str(), v))
    }

    /// Total number of scalar parameters (for reporting).
    pub fn num_scalars(&self) -> usize {
        self.values.iter().map(Matrix::len).sum()
    }

    /// True when every scalar in every parameter is finite. The trainer's
    /// divergence guard calls this after each epoch; a single NaN or ±∞
    /// anywhere marks the model as poisoned.
    pub fn all_finite(&self) -> bool {
        self.values.iter().all(|m| m.as_slice().iter().all(|x| x.is_finite()))
    }

    /// Apply one optimizer step for the given `(param, gradient)` pairs.
    ///
    /// # Panics
    /// Panics if a gradient's shape does not match its parameter.
    pub fn apply(&mut self, opt: &mut impl Optimizer, grads: &[(ParamId, Matrix)]) {
        for (id, g) in grads {
            assert_eq!(
                g.shape(),
                self.values[id.0].shape(),
                "apply: gradient shape mismatch for parameter `{}`",
                self.names[id.0]
            );
            opt.step(id.0, &mut self.values[id.0], g);
        }
    }
}

/// A first-order optimizer: consumes one gradient for one parameter slot.
pub trait Optimizer {
    /// Update `value` in place given gradient `grad` for parameter `slot`.
    fn step(&mut self, slot: usize, value: &mut Matrix, grad: &Matrix);
}

/// Plain stochastic gradient descent with an optional max-norm clip.
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// If set, gradients with larger max-abs are scaled down to this bound.
    pub clip: Option<f32>,
}

impl Sgd {
    /// SGD with the given learning rate and no clipping.
    pub fn new(lr: f32) -> Self {
        Self { lr, clip: None }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, _slot: usize, value: &mut Matrix, grad: &Matrix) {
        let scale = clip_scale(grad, self.clip);
        value.axpy(-self.lr * scale, grad);
    }
}

/// Adam (Kingma & Ba 2014) with bias correction.
///
/// One moment pair is kept per parameter slot; slots are lazily initialized
/// on first use so a single `Adam` serves a whole [`ParamStore`].
pub struct Adam {
    /// Learning rate (paper grid: {0.05, 0.01, 0.005, 0.001}).
    pub lr: f32,
    /// Exponential decay for the first moment.
    pub beta1: f32,
    /// Exponential decay for the second moment.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    /// Optional max-abs gradient clip applied before the moment update.
    pub clip: Option<f32>,
    m: Vec<Option<Matrix>>,
    v: Vec<Option<Matrix>>,
    t: Vec<u64>,
}

impl Adam {
    /// Adam with standard hyperparameters (β₁=0.9, β₂=0.999, ε=1e-8) sized
    /// for `store`.
    pub fn default_for(store: &ParamStore, lr: f32) -> Self {
        Self::with_slots(store.len(), lr)
    }

    /// Adam sized for `slots` parameter slots.
    pub fn with_slots(slots: usize, lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            clip: Some(5.0),
            m: (0..slots).map(|_| None).collect(),
            v: (0..slots).map(|_| None).collect(),
            t: vec![0; slots],
        }
    }

    /// Snapshot the full optimizer state (hyperparameters, moment
    /// estimates, per-slot step counts) for checkpointing.
    pub fn export_state(&self) -> AdamState {
        AdamState {
            lr: self.lr,
            beta1: self.beta1,
            beta2: self.beta2,
            eps: self.eps,
            clip: self.clip,
            m: self.m.clone(),
            v: self.v.clone(),
            t: self.t.clone(),
        }
    }

    /// Replace the optimizer state with a snapshot from [`export_state`]
    /// (used on checkpoint restore and divergence rollback).
    ///
    /// [`export_state`]: Adam::export_state
    pub fn import_state(&mut self, state: &AdamState) {
        self.lr = state.lr;
        self.beta1 = state.beta1;
        self.beta2 = state.beta2;
        self.eps = state.eps;
        self.clip = state.clip;
        self.m = state.m.clone();
        self.v = state.v.clone();
        self.t = state.t.clone();
    }

    fn ensure_slot(&mut self, slot: usize, shape: (usize, usize)) {
        while self.m.len() <= slot {
            self.m.push(None);
            self.v.push(None);
            self.t.push(0);
        }
        if self.m[slot].is_none() {
            self.m[slot] = Some(Matrix::zeros(shape.0, shape.1));
            self.v[slot] = Some(Matrix::zeros(shape.0, shape.1));
        }
    }
}

/// A plain-data snapshot of an [`Adam`] optimizer, exported for
/// checkpointing. Restoring it with [`Adam::import_state`] reproduces the
/// optimizer bitwise, moment estimates and step counts included.
#[derive(Clone, Default)]
pub struct AdamState {
    /// Learning rate at snapshot time (divergence recovery may have
    /// backed it off from the configured value).
    pub lr: f32,
    /// Exponential decay for the first moment.
    pub beta1: f32,
    /// Exponential decay for the second moment.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    /// Optional max-abs gradient clip.
    pub clip: Option<f32>,
    /// First-moment estimate per slot (`None` = slot never stepped).
    pub m: Vec<Option<Matrix>>,
    /// Second-moment estimate per slot.
    pub v: Vec<Option<Matrix>>,
    /// Step count per slot.
    pub t: Vec<u64>,
}

impl Optimizer for Adam {
    fn step(&mut self, slot: usize, value: &mut Matrix, grad: &Matrix) {
        self.ensure_slot(slot, grad.shape());
        let scale = clip_scale(grad, self.clip);
        self.t[slot] += 1;
        let t = self.t[slot] as f32;
        let (b1, b2) = (self.beta1, self.beta2);
        let m = self.m[slot].as_mut().expect("slot initialized");
        let v = self.v[slot].as_mut().expect("slot initialized");
        let bias1 = 1.0 - b1.powf(t);
        let bias2 = 1.0 - b2.powf(t);
        let lr = self.lr;
        let eps = self.eps;
        for ((val, mm), (vv, &g0)) in value
            .as_mut_slice()
            .iter_mut()
            .zip(m.as_mut_slice())
            .zip(v.as_mut_slice().iter_mut().zip(grad.as_slice()))
        {
            let g = g0 * scale;
            *mm = b1 * *mm + (1.0 - b1) * g;
            *vv = b2 * *vv + (1.0 - b2) * g * g;
            let mhat = *mm / bias1;
            let vhat = *vv / bias2;
            *val -= lr * mhat / (vhat.sqrt() + eps);
        }
    }
}

/// Scale factor that caps a gradient's max-abs at `clip` (1.0 when within
/// bounds or clipping is off).
fn clip_scale(grad: &Matrix, clip: Option<f32>) -> f32 {
    match clip {
        Some(c) => {
            let m = grad.max_abs();
            if m > c {
                c / m
            } else {
                1.0
            }
        }
        None => 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tape;
    use facility_linalg::{init, seeded_rng};

    #[test]
    fn store_roundtrip() {
        let mut s = ParamStore::new();
        let a = s.add("a", Matrix::filled(2, 3, 1.0));
        let b = s.add("b", Matrix::filled(1, 1, 2.0));
        assert_eq!(s.len(), 2);
        assert_eq!(s.name(a), "a");
        assert_eq!(s.value(b)[(0, 0)], 2.0);
        assert_eq!(s.num_scalars(), 7);
    }

    #[test]
    fn sgd_descends_quadratic() {
        let mut s = ParamStore::new();
        let w = s.add("w", Matrix::filled(1, 1, 10.0));
        let mut sgd = Sgd::new(0.1);
        for _ in 0..200 {
            // d(w²)/dw = 2w
            let g = s.value(w).scale(2.0);
            s.apply(&mut sgd, &[(w, g)]);
        }
        assert!(s.value(w)[(0, 0)].abs() < 1e-3);
    }

    #[test]
    fn adam_descends_quadratic_faster_than_tiny_sgd() {
        let mut s = ParamStore::new();
        let w = s.add("w", Matrix::filled(1, 1, 10.0));
        let mut adam = Adam::default_for(&s, 0.5);
        for _ in 0..100 {
            let g = s.value(w).scale(2.0);
            s.apply(&mut adam, &[(w, g)]);
        }
        assert!(s.value(w)[(0, 0)].abs() < 0.5, "adam failed: {}", s.value(w)[(0, 0)]);
    }

    #[test]
    fn adam_with_tape_minimizes_least_squares() {
        // Fit w in min ||X w − y||² with the full pipeline.
        let mut rng = seeded_rng(5);
        let x = init::uniform(32, 4, -1.0, 1.0, &mut rng);
        let w_true = Matrix::from_vec(4, 1, vec![1.0, -2.0, 0.5, 3.0]);
        let y = x.matmul(&w_true);

        let mut s = ParamStore::new();
        let w = s.add("w", init::xavier_uniform(4, 1, &mut rng));
        let mut adam = Adam::default_for(&s, 0.05);
        let mut last = f32::INFINITY;
        for _ in 0..500 {
            let mut t = Tape::new();
            let wv = t.leaf(s.value(w).clone());
            let xv = t.constant(x.clone());
            let yv = t.constant(y.clone());
            let pred = t.matmul(xv, wv);
            let resid = t.sub(pred, yv);
            let loss = t.frobenius_sq(resid);
            last = t.value(loss)[(0, 0)];
            t.backward(loss);
            let g = t.take_grad(wv).expect("w participates");
            s.apply(&mut adam, &[(w, g)]);
        }
        assert!(last < 1e-3, "final loss {last}");
        let fitted = s.value(w);
        for i in 0..4 {
            assert!((fitted[(i, 0)] - w_true[(i, 0)]).abs() < 0.05);
        }
    }

    #[test]
    fn clipping_caps_huge_gradients() {
        let g = Matrix::filled(1, 1, 1000.0);
        assert_eq!(clip_scale(&g, Some(5.0)), 0.005);
        assert_eq!(clip_scale(&g, None), 1.0);
        let small = Matrix::filled(1, 1, 1.0);
        assert_eq!(clip_scale(&small, Some(5.0)), 1.0);
    }

    #[test]
    #[should_panic(expected = "gradient shape mismatch")]
    fn apply_rejects_bad_shape() {
        let mut s = ParamStore::new();
        let w = s.add("w", Matrix::filled(2, 2, 0.0));
        let mut sgd = Sgd::new(0.1);
        s.apply(&mut sgd, &[(w, Matrix::filled(1, 1, 1.0))]);
    }
}
