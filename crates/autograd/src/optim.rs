//! Parameter storage and first-order optimizers.
//! audit: module unwrap — sparse-row grads are validated (`SparseRowGrad::validate`)
//! before indexed application; slot arithmetic is structural and covered by the
//! autograd differential tests.
//!
//! [`ParamStore`] owns named parameter matrices for the lifetime of a
//! model; a fresh [`Tape`](crate::Tape) borrows *clones* of the values each
//! step and hands gradients back through [`ParamStore::apply`].
//!
//! Gradients come in two kinds (see [`Grad`]): dense matrices, and
//! row-sparse [`SparseRowGrad`]s produced by
//! [`Tape::take_sparse_grad`](crate::Tape::take_sparse_grad) for
//! embedding-style parameters where a step touches only a few rows.
//!
//! [`Adam`] (Kingma & Ba 2014) is the paper's optimizer for every model;
//! [`Sgd`] is kept for tests and ablations. For sparse gradients Adam is
//! *lazy*: untouched rows defer their zero-gradient moment decay until the
//! row is next read or written, tracked by per-row step counters. The
//! catch-up replays the exact dense update with `g = 0`, so a lazily
//! synced parameter is bitwise identical to one stepped densely with
//! zero-padded gradients (see the differential tests below).

use facility_linalg::{kernels, Matrix};

/// Handle to a parameter inside a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(usize);

/// A row-sparse gradient for an `n_rows × cols` parameter: parameter row
/// `rows[k]` receives gradient row `k` of `values`; rows not listed have
/// an exactly-zero gradient.
///
/// `rows` must be unique (not necessarily sorted) —
/// [`Tape::take_sparse_grad`](crate::Tape::take_sparse_grad) folds
/// duplicate gather indices before handing one out.
#[derive(Debug, Clone)]
pub struct SparseRowGrad {
    /// Row count of the parameter this gradient belongs to.
    pub n_rows: usize,
    /// Touched parameter rows, unique.
    pub rows: Vec<usize>,
    /// `rows.len() × cols` gradient rows, parallel to `rows`.
    pub values: Matrix,
}

impl SparseRowGrad {
    /// Validate the structural contract: `values` has one row per entry
    /// of `rows`, and `rows` are unique and within the parameter's
    /// bounds. Panics with `ctx` in the message on violation.
    ///
    /// Called automatically at fold/apply sites when the `debug-audit`
    /// feature is enabled; always available for tests.
    pub fn validate(&self, ctx: &str) {
        assert_eq!(
            self.values.rows(),
            self.rows.len(),
            "{ctx}: sparse gradient has {} value rows for {} row indices",
            self.values.rows(),
            self.rows.len()
        );
        let mut sorted = self.rows.clone();
        sorted.sort_unstable();
        let n = sorted.len();
        sorted.dedup();
        assert_eq!(sorted.len(), n, "{ctx}: sparse gradient row indices are not unique");
        if let Some(&max) = sorted.last() {
            assert!(
                max < self.n_rows,
                "{ctx}: sparse gradient row {max} out of bounds ({} parameter rows)",
                self.n_rows
            );
        }
    }

    /// [`SparseRowGrad::validate`] plus the sortedness guarantee
    /// [`SparseRowGrad::fold_ordered`] outputs carry.
    pub fn validate_sorted(&self, ctx: &str) {
        self.validate(ctx);
        assert!(
            self.rows.windows(2).all(|w| w[0] < w[1]),
            "{ctx}: folded sparse gradient rows are not sorted"
        );
    }

    /// Expand to the equivalent dense gradient (zero rows for untouched
    /// rows). Test/fallback path; the point of the type is to avoid this.
    pub fn to_dense(&self) -> Matrix {
        let mut d = Matrix::zeros(self.n_rows, self.values.cols());
        kernels::scatter_add_rows(
            d.as_mut_slice(),
            self.values.cols(),
            &self.rows,
            self.values.as_slice(),
        );
        d
    }

    /// Fold several sparse gradients for the same parameter into one.
    ///
    /// The result's row index is the sorted union of the parts' rows (so it
    /// keeps feeding `apply`'s unique-rows contract), and each union row
    /// accumulates its contributions **part by part in the order given** —
    /// the scatter-order trick [`Tape::gather_leaf`](crate::Tape) already
    /// relies on. Because float addition is not associative, fixing this
    /// order is what makes a data-parallel reduction a pure function of the
    /// part *order* rather than of which thread finished first.
    ///
    /// Returns `None` for an empty part list.
    ///
    /// # Panics
    /// Panics if the parts disagree on the parameter shape.
    pub fn fold_ordered(parts: &[&SparseRowGrad]) -> Option<SparseRowGrad> {
        #[cfg(feature = "debug-audit")]
        for p in parts {
            p.validate("fold_ordered input");
        }
        let first = parts.first()?;
        let (n_rows, cols) = (first.n_rows, first.values.cols());
        let mut union: Vec<usize> = parts.iter().flat_map(|p| p.rows.iter().copied()).collect();
        union.sort_unstable();
        union.dedup();
        let mut values = Matrix::zeros(union.len(), cols);
        for p in parts {
            assert_eq!(p.n_rows, n_rows, "fold_ordered: parameter row-count mismatch");
            assert_eq!(p.values.cols(), cols, "fold_ordered: gradient width mismatch");
            let u_idx: Vec<usize> = p
                .rows
                .iter()
                .map(|r| union.binary_search(r).expect("every part row is in the union"))
                .collect();
            kernels::scatter_add_rows(values.as_mut_slice(), cols, &u_idx, p.values.as_slice());
        }
        let folded = SparseRowGrad { n_rows, rows: union, values };
        #[cfg(feature = "debug-audit")]
        folded.validate_sorted("fold_ordered output");
        Some(folded)
    }
}

/// Fold per-replica gradient lists into one list suitable for a single
/// [`ParamStore::apply`], then scale every folded gradient by `scale`
/// (e.g. `1/K` to average over a macro-step of `K` micro-batches).
///
/// Parameters appear in the output in order of first occurrence across
/// `parts`; each parameter's contributions accumulate part-by-part in the
/// order of `parts` (sparse parts through [`SparseRowGrad::fold_ordered`],
/// dense parts by in-order summation), so the result is deterministic for
/// a fixed part order regardless of how the parts were produced.
pub fn fold_grads_ordered(parts: &[Vec<(ParamId, Grad)>], scale: f32) -> Vec<(ParamId, Grad)> {
    let mut order: Vec<ParamId> = Vec::new();
    for part in parts {
        for (id, _) in part {
            if !order.contains(id) {
                order.push(*id);
            }
        }
    }
    order
        .into_iter()
        .map(|id| {
            let grads: Vec<&Grad> = parts
                .iter()
                .flat_map(|p| p.iter().filter(|(i, _)| *i == id).map(|(_, g)| g))
                .collect();
            let all_sparse = grads.iter().all(|g| matches!(g, Grad::Sparse(_)));
            let folded = if all_sparse {
                let sparse: Vec<&SparseRowGrad> = grads
                    .iter()
                    .map(|g| match g {
                        Grad::Sparse(s) => s,
                        Grad::Dense(_) => unreachable!("all_sparse checked"),
                    })
                    .collect();
                let mut f = SparseRowGrad::fold_ordered(&sparse).expect("id has at least one part");
                for x in f.values.as_mut_slice() {
                    *x *= scale;
                }
                Grad::Sparse(f)
            } else {
                // At least one dense contribution: fold densely, scattering
                // any sparse parts, still strictly in part order.
                let shape = match grads[0] {
                    Grad::Dense(d) => d.shape(),
                    Grad::Sparse(s) => (s.n_rows, s.values.cols()),
                };
                let mut acc = Matrix::zeros(shape.0, shape.1);
                for g in grads {
                    match g {
                        Grad::Dense(d) => acc.axpy(1.0, d),
                        Grad::Sparse(s) => kernels::scatter_add_rows(
                            acc.as_mut_slice(),
                            shape.1,
                            &s.rows,
                            s.values.as_slice(),
                        ),
                    }
                }
                for x in acc.as_mut_slice() {
                    *x *= scale;
                }
                Grad::Dense(acc)
            };
            (id, folded)
        })
        .collect()
}

/// A gradient handed to [`ParamStore::apply`]: dense, or row-sparse for
/// embedding matrices where the step touched only a few rows.
pub enum Grad {
    /// Full-shape gradient matrix.
    Dense(Matrix),
    /// Row-sparse gradient (see [`SparseRowGrad`]).
    Sparse(SparseRowGrad),
}

impl From<Matrix> for Grad {
    fn from(m: Matrix) -> Self {
        Grad::Dense(m)
    }
}

impl From<SparseRowGrad> for Grad {
    fn from(g: SparseRowGrad) -> Self {
        Grad::Sparse(g)
    }
}

/// Which scalars of a parameter may have changed since the divergence
/// guard last looked (see [`ParamStore::touched_finite`]).
enum Dirty {
    /// Untouched since the last check.
    Clean,
    /// Only these rows were written (sparse steps, lazy syncs).
    Rows(Vec<usize>),
    /// Anything may have changed (dense step, `value_mut`, fresh param).
    All,
}

/// Owned collection of named model parameters.
#[derive(Default)]
pub struct ParamStore {
    names: Vec<String>,
    values: Vec<Matrix>,
    dirty: Vec<Dirty>,
}

impl ParamStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a parameter; the returned id is stable for the store's
    /// lifetime.
    pub fn add(&mut self, name: impl Into<String>, value: Matrix) -> ParamId {
        self.names.push(name.into());
        self.values.push(value);
        self.dirty.push(Dirty::All);
        ParamId(self.values.len() - 1)
    }

    /// Current value of a parameter.
    pub fn value(&self, id: ParamId) -> &Matrix {
        &self.values[id.0]
    }

    /// Mutable access (used by tests and by model-specific manual updates).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Matrix {
        self.dirty[id.0] = Dirty::All;
        &mut self.values[id.0]
    }

    /// Name given at registration.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterate over `(id, name, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &str, &Matrix)> {
        self.values.iter().enumerate().map(|(i, v)| (ParamId(i), self.names[i].as_str(), v))
    }

    /// Total number of scalar parameters (for reporting).
    pub fn num_scalars(&self) -> usize {
        self.values.iter().map(Matrix::len).sum()
    }

    /// True when every scalar in every parameter is finite — the full
    /// scan. Checkpointing uses this unconditionally; the per-epoch
    /// divergence guard prefers [`ParamStore::touched_finite`].
    pub fn all_finite(&self) -> bool {
        self.values.iter().all(|m| m.as_slice().iter().all(|x| x.is_finite()))
    }

    /// Like [`ParamStore::all_finite`], but scans only the scalars
    /// written since the previous `touched_finite` call (sparse steps
    /// record the touched rows; dense steps and `value_mut` mark the whole
    /// matrix). A scalar that was finite at the last check and untouched
    /// since cannot have become non-finite, so skipping it is sound.
    /// Clears the touch log.
    pub fn touched_finite(&mut self) -> bool {
        let mut ok = true;
        for i in 0..self.values.len() {
            let m = &self.values[i];
            ok &= match &self.dirty[i] {
                Dirty::Clean => true,
                Dirty::Rows(rows) => rows.iter().all(|&r| m.row(r).iter().all(|x| x.is_finite())),
                Dirty::All => m.as_slice().iter().all(|x| x.is_finite()),
            };
            self.dirty[i] = Dirty::Clean;
        }
        ok
    }

    fn mark_rows(&mut self, idx: usize, rows: &[usize]) {
        if rows.is_empty() {
            return;
        }
        match &mut self.dirty[idx] {
            Dirty::All => {}
            Dirty::Rows(acc) => {
                acc.extend_from_slice(rows);
                if acc.len() > self.values[idx].rows() {
                    self.dirty[idx] = Dirty::All;
                }
            }
            d @ Dirty::Clean => *d = Dirty::Rows(rows.to_vec()),
        }
    }

    /// Apply one optimizer step for the given `(param, gradient)` pairs.
    ///
    /// # Panics
    /// Panics if a gradient's shape does not match its parameter.
    pub fn apply(&mut self, opt: &mut impl Optimizer, grads: &[(ParamId, Grad)]) {
        for (id, g) in grads {
            match g {
                Grad::Dense(g) => {
                    assert_eq!(
                        g.shape(),
                        self.values[id.0].shape(),
                        "apply: gradient shape mismatch for parameter `{}`",
                        self.names[id.0]
                    );
                    opt.step(id.0, &mut self.values[id.0], g);
                    self.dirty[id.0] = Dirty::All;
                }
                Grad::Sparse(sg) => {
                    let shape = self.values[id.0].shape();
                    assert!(
                        sg.n_rows == shape.0 && sg.values.cols() == shape.1,
                        "apply: gradient shape mismatch for parameter `{}`",
                        self.names[id.0]
                    );
                    assert_eq!(
                        sg.values.rows(),
                        sg.rows.len(),
                        "apply: sparse gradient for `{}` has {} rows but {} indices",
                        self.names[id.0],
                        sg.values.rows(),
                        sg.rows.len()
                    );
                    debug_assert!(
                        {
                            let mut sorted = sg.rows.clone();
                            sorted.sort_unstable();
                            sorted.windows(2).all(|w| w[0] < w[1])
                                && sorted.last().is_none_or(|&r| r < sg.n_rows)
                        },
                        "apply: sparse gradient rows must be unique and in bounds"
                    );
                    #[cfg(feature = "debug-audit")]
                    sg.validate(&format!("apply `{}`", self.names[id.0]));
                    opt.step_sparse(id.0, &mut self.values[id.0], sg);
                    self.mark_rows(id.0, &sg.rows);
                }
            }
        }
    }

    /// Catch the given rows of a lazily-optimized parameter up to the
    /// optimizer's current step count. Must be called before *reading*
    /// rows of a parameter that receives sparse updates (the deferred
    /// zero-gradient decay moves the value). No-op for optimizers (or
    /// slots) without lazy state.
    pub fn sync_rows(&mut self, opt: &mut impl Optimizer, id: ParamId, rows: &[usize]) {
        let drifted = opt.sync_rows(id.0, &mut self.values[id.0], rows);
        self.mark_rows(id.0, &drifted);
    }

    /// Catch *every* row of a lazily-optimized parameter up to the
    /// optimizer's current step count (e.g. before evaluation,
    /// checkpointing, or a cross-mode comparison). No-op for optimizers
    /// (or slots) without lazy state.
    pub fn sync_all(&mut self, opt: &mut impl Optimizer, id: ParamId) {
        let drifted = opt.sync_all(id.0, &mut self.values[id.0]);
        self.mark_rows(id.0, &drifted);
    }
}

/// A first-order optimizer: consumes one gradient for one parameter slot.
pub trait Optimizer {
    /// Update `value` in place given gradient `grad` for parameter `slot`.
    fn step(&mut self, slot: usize, value: &mut Matrix, grad: &Matrix);

    /// Update `value` given a row-sparse gradient. The default densifies
    /// and delegates to [`Optimizer::step`]; optimizers with per-row state
    /// (lazy Adam) override this to touch only `grad.rows`.
    fn step_sparse(&mut self, slot: usize, value: &mut Matrix, grad: &SparseRowGrad) {
        self.step(slot, value, &grad.to_dense());
    }

    /// Bring deferred per-row state for `rows` up to date, returning the
    /// rows whose scalars changed. Default: stateless per row, nothing to
    /// do.
    fn sync_rows(&mut self, _slot: usize, _value: &mut Matrix, _rows: &[usize]) -> Vec<usize> {
        Vec::new()
    }

    /// Bring deferred per-row state for the whole slot up to date,
    /// returning the rows whose scalars changed.
    fn sync_all(&mut self, _slot: usize, _value: &mut Matrix) -> Vec<usize> {
        Vec::new()
    }
}

/// Plain stochastic gradient descent with an optional max-norm clip.
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// If set, gradients with larger max-abs are scaled down to this bound.
    pub clip: Option<f32>,
}

impl Sgd {
    /// SGD with the given learning rate and no clipping.
    pub fn new(lr: f32) -> Self {
        Self { lr, clip: None }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, _slot: usize, value: &mut Matrix, grad: &Matrix) {
        let scale = clip_scale(grad, self.clip);
        value.axpy(-self.lr * scale, grad);
    }

    fn step_sparse(&mut self, _slot: usize, value: &mut Matrix, grad: &SparseRowGrad) {
        // SGD has no per-row state: untouched rows simply don't move.
        let scale = clip_scale(&grad.values, self.clip);
        let s = -self.lr * scale;
        for (k, &r) in grad.rows.iter().enumerate() {
            kernels::axpy(value.row_mut(r), s, grad.values.row(k));
        }
    }
}

/// The shared Adam per-scalar update. Keeping the dense path, the sparse
/// path, and the zero-gradient catch-up on this *one* expression is what
/// makes lazy Adam bitwise-equal to dense Adam.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn adam_update(
    val: &mut f32,
    m: &mut f32,
    v: &mut f32,
    g: f32,
    b1: f32,
    b2: f32,
    bias1: f32,
    bias2: f32,
    lr: f32,
    eps: f32,
) {
    *m = b1 * *m + (1.0 - b1) * g;
    *v = b2 * *v + (1.0 - b2) * g * g;
    let mhat = *m / bias1;
    let vhat = *v / bias2;
    *val -= lr * mhat / (vhat.sqrt() + eps);
}

/// Replay the zero-gradient Adam steps a row skipped, bringing it from
/// `row_t[r]` to `target`. Returns true when the row's scalars may have
/// changed. Rows whose moments are exactly (bit-pattern) `+0.0` fast
/// forward for free: with `m = v = 0` and `g = 0` every update line is a
/// bitwise no-op, so only the counter moves.
#[allow(clippy::too_many_arguments)]
fn catch_up_row(
    r: usize,
    target: u64,
    value: &mut Matrix,
    m: &mut Matrix,
    v: &mut Matrix,
    row_t: &mut [u64],
    b1: f32,
    b2: f32,
    lr: f32,
    eps: f32,
    b1_pows: &[f32],
    b2_pows: &[f32],
) -> bool {
    let start = row_t[r];
    if start >= target {
        return false;
    }
    if m.row(r).iter().all(|x| x.to_bits() == 0) && v.row(r).iter().all(|x| x.to_bits() == 0) {
        row_t[r] = target;
        return false;
    }
    for j in (start + 1)..=target {
        let bias1 = 1.0 - b1_pows[j as usize];
        let bias2 = 1.0 - b2_pows[j as usize];
        let (val, mr, vr) = (value.row_mut(r), m.row_mut(r), v.row_mut(r));
        for (x, (mm, vv)) in val.iter_mut().zip(mr.iter_mut().zip(vr.iter_mut())) {
            adam_update(x, mm, vv, 0.0, b1, b2, bias1, bias2, lr, eps);
        }
    }
    row_t[r] = target;
    true
}

/// Adam (Kingma & Ba 2014) with bias correction.
///
/// One moment pair is kept per parameter slot; slots are lazily initialized
/// on first use so a single `Adam` serves a whole [`ParamStore`].
///
/// ## Lazy sparse updates
///
/// A slot first stepped through [`Optimizer::step_sparse`] switches to
/// *lazy* mode: it grows per-row step counters, and a sparse step updates
/// only the touched rows — first replaying the zero-gradient decay the
/// row skipped (with the step-`j` bias corrections it would have seen),
/// then applying the real gradient. The arithmetic is the exact dense
/// update expression, so after a [`Optimizer::sync_all`] the parameter is
/// bitwise identical to dense Adam fed zero-padded gradients. Callers
/// must sync rows before reading them (see [`ParamStore::sync_rows`]).
pub struct Adam {
    /// Learning rate (paper grid: {0.05, 0.01, 0.005, 0.001}).
    pub lr: f32,
    /// Exponential decay for the first moment.
    pub beta1: f32,
    /// Exponential decay for the second moment.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    /// Optional max-abs gradient clip applied before the moment update.
    pub clip: Option<f32>,
    m: Vec<Option<Matrix>>,
    v: Vec<Option<Matrix>>,
    t: Vec<u64>,
    /// Per-slot per-row step counters; `None` = slot is dense-only.
    row_t: Vec<Option<Vec<u64>>>,
    /// `b1_pows[j] = beta1.powf(j)` — memoized so the catch-up's bias
    /// corrections are the *same float* the dense path computes at step
    /// `j`, not an incrementally-accumulated product.
    b1_pows: Vec<f32>,
    b2_pows: Vec<f32>,
}

impl Adam {
    /// Adam with standard hyperparameters (β₁=0.9, β₂=0.999, ε=1e-8) sized
    /// for `store`.
    pub fn default_for(store: &ParamStore, lr: f32) -> Self {
        Self::with_slots(store.len(), lr)
    }

    /// Adam sized for `slots` parameter slots.
    pub fn with_slots(slots: usize, lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            clip: Some(5.0),
            m: (0..slots).map(|_| None).collect(),
            v: (0..slots).map(|_| None).collect(),
            t: vec![0; slots],
            row_t: vec![None; slots],
            b1_pows: Vec::new(),
            b2_pows: Vec::new(),
        }
    }

    /// Snapshot the full optimizer state (hyperparameters, moment
    /// estimates, per-slot and per-row step counts) for checkpointing.
    pub fn export_state(&self) -> AdamState {
        AdamState {
            lr: self.lr,
            beta1: self.beta1,
            beta2: self.beta2,
            eps: self.eps,
            clip: self.clip,
            m: self.m.clone(),
            v: self.v.clone(),
            t: self.t.clone(),
            row_t: self.row_t.clone(),
        }
    }

    /// Replace the optimizer state with a snapshot from [`export_state`]
    /// (used on checkpoint restore and divergence rollback).
    ///
    /// [`export_state`]: Adam::export_state
    pub fn import_state(&mut self, state: &AdamState) {
        self.lr = state.lr;
        self.beta1 = state.beta1;
        self.beta2 = state.beta2;
        self.eps = state.eps;
        self.clip = state.clip;
        self.m = state.m.clone();
        self.v = state.v.clone();
        self.t = state.t.clone();
        self.row_t = state.row_t.clone();
        if self.row_t.len() < self.t.len() {
            self.row_t.resize(self.t.len(), None);
        }
        // The power tables depend on the betas; rebuild on demand.
        self.b1_pows.clear();
        self.b2_pows.clear();
    }

    fn ensure_slot(&mut self, slot: usize, shape: (usize, usize)) {
        while self.m.len() <= slot {
            self.m.push(None);
            self.v.push(None);
            self.t.push(0);
            self.row_t.push(None);
        }
        if self.m[slot].is_none() {
            self.m[slot] = Some(Matrix::zeros(shape.0, shape.1));
            self.v[slot] = Some(Matrix::zeros(shape.0, shape.1));
        }
    }

    /// Extend the bias-correction power tables to cover step `t`.
    fn ensure_pows(&mut self, t: u64) {
        while self.b1_pows.len() <= t as usize {
            let j = self.b1_pows.len() as f32;
            self.b1_pows.push(self.beta1.powf(j));
            self.b2_pows.push(self.beta2.powf(j));
        }
    }
}

/// A plain-data snapshot of an [`Adam`] optimizer, exported for
/// checkpointing. Restoring it with [`Adam::import_state`] reproduces the
/// optimizer bitwise, moment estimates and step counts included.
#[derive(Clone, Default)]
pub struct AdamState {
    /// Learning rate at snapshot time (divergence recovery may have
    /// backed it off from the configured value).
    pub lr: f32,
    /// Exponential decay for the first moment.
    pub beta1: f32,
    /// Exponential decay for the second moment.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    /// Optional max-abs gradient clip.
    pub clip: Option<f32>,
    /// First-moment estimate per slot (`None` = slot never stepped).
    pub m: Vec<Option<Matrix>>,
    /// Second-moment estimate per slot.
    pub v: Vec<Option<Matrix>>,
    /// Step count per slot.
    pub t: Vec<u64>,
    /// Per-row step counters for lazily-updated slots (`None` = the slot
    /// only ever saw dense gradients).
    pub row_t: Vec<Option<Vec<u64>>>,
}

impl Optimizer for Adam {
    fn step(&mut self, slot: usize, value: &mut Matrix, grad: &Matrix) {
        self.ensure_slot(slot, grad.shape());
        // A dense step on a lazy slot first settles every deferred row so
        // the whole matrix is at step `t` before the shared update below.
        if self.row_t[slot].is_some() {
            self.sync_all(slot, value);
        }
        let scale = clip_scale(grad, self.clip);
        self.t[slot] += 1;
        let t = self.t[slot] as f32;
        let (b1, b2) = (self.beta1, self.beta2);
        let m = self.m[slot].as_mut().expect("slot initialized");
        let v = self.v[slot].as_mut().expect("slot initialized");
        let bias1 = 1.0 - b1.powf(t);
        let bias2 = 1.0 - b2.powf(t);
        let lr = self.lr;
        let eps = self.eps;
        for ((val, mm), (vv, &g0)) in value
            .as_mut_slice()
            .iter_mut()
            .zip(m.as_mut_slice())
            .zip(v.as_mut_slice().iter_mut().zip(grad.as_slice()))
        {
            adam_update(val, mm, vv, g0 * scale, b1, b2, bias1, bias2, lr, eps);
        }
        if let Some(rt) = self.row_t[slot].as_mut() {
            rt.fill(self.t[slot]);
        }
    }

    fn step_sparse(&mut self, slot: usize, value: &mut Matrix, grad: &SparseRowGrad) {
        self.ensure_slot(slot, value.shape());
        let scale = clip_scale(&grad.values, self.clip);
        self.t[slot] += 1;
        let t = self.t[slot];
        self.ensure_pows(t);
        // First sparse step on this slot: every row is considered settled
        // at the previous step count (dense history, nothing deferred).
        if self.row_t[slot].is_none() {
            self.row_t[slot] = Some(vec![t - 1; value.rows()]);
        }
        let (b1, b2, lr, eps) = (self.beta1, self.beta2, self.lr, self.eps);
        let bias1 = 1.0 - self.b1_pows[t as usize];
        let bias2 = 1.0 - self.b2_pows[t as usize];
        let row_t = self.row_t[slot].as_mut().expect("row counters initialized");
        let m = self.m[slot].as_mut().expect("slot initialized");
        let v = self.v[slot].as_mut().expect("slot initialized");
        for (k, &r) in grad.rows.iter().enumerate() {
            catch_up_row(
                r,
                t - 1,
                value,
                m,
                v,
                row_t,
                b1,
                b2,
                lr,
                eps,
                &self.b1_pows,
                &self.b2_pows,
            );
            let (val, mr, vr) = (value.row_mut(r), m.row_mut(r), v.row_mut(r));
            for ((x, (mm, vv)), &g0) in
                val.iter_mut().zip(mr.iter_mut().zip(vr.iter_mut())).zip(grad.values.row(k))
            {
                adam_update(x, mm, vv, g0 * scale, b1, b2, bias1, bias2, lr, eps);
            }
            row_t[r] = t;
        }
    }

    fn sync_rows(&mut self, slot: usize, value: &mut Matrix, rows: &[usize]) -> Vec<usize> {
        if self.row_t.get(slot).is_none_or(|r| r.is_none()) {
            return Vec::new();
        }
        let t = self.t[slot];
        self.ensure_pows(t);
        let (b1, b2, lr, eps) = (self.beta1, self.beta2, self.lr, self.eps);
        let row_t = self.row_t[slot].as_mut().expect("lazy slot");
        let m = self.m[slot].as_mut().expect("slot initialized");
        let v = self.v[slot].as_mut().expect("slot initialized");
        let mut drifted = Vec::new();
        for &r in rows {
            if catch_up_row(r, t, value, m, v, row_t, b1, b2, lr, eps, &self.b1_pows, &self.b2_pows)
            {
                drifted.push(r);
            }
        }
        drifted
    }

    fn sync_all(&mut self, slot: usize, value: &mut Matrix) -> Vec<usize> {
        if self.row_t.get(slot).is_none_or(|r| r.is_none()) {
            return Vec::new();
        }
        let t = self.t[slot];
        self.ensure_pows(t);
        let (b1, b2, lr, eps) = (self.beta1, self.beta2, self.lr, self.eps);
        let row_t = self.row_t[slot].as_mut().expect("lazy slot");
        let m = self.m[slot].as_mut().expect("slot initialized");
        let v = self.v[slot].as_mut().expect("slot initialized");
        let mut drifted = Vec::new();
        for r in 0..value.rows() {
            if catch_up_row(r, t, value, m, v, row_t, b1, b2, lr, eps, &self.b1_pows, &self.b2_pows)
            {
                drifted.push(r);
            }
        }
        drifted
    }
}

/// Scale factor that caps a gradient's max-abs at `clip` (1.0 when within
/// bounds or clipping is off).
fn clip_scale(grad: &Matrix, clip: Option<f32>) -> f32 {
    match clip {
        Some(c) => {
            let m = grad.max_abs();
            if m > c {
                c / m
            } else {
                1.0
            }
        }
        None => 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tape;
    use facility_linalg::{init, seeded_rng};

    #[test]
    fn store_roundtrip() {
        let mut s = ParamStore::new();
        let a = s.add("a", Matrix::filled(2, 3, 1.0));
        let b = s.add("b", Matrix::filled(1, 1, 2.0));
        assert_eq!(s.len(), 2);
        assert_eq!(s.name(a), "a");
        assert_eq!(s.value(b)[(0, 0)], 2.0);
        assert_eq!(s.num_scalars(), 7);
    }

    #[test]
    fn sgd_descends_quadratic() {
        let mut s = ParamStore::new();
        let w = s.add("w", Matrix::filled(1, 1, 10.0));
        let mut sgd = Sgd::new(0.1);
        for _ in 0..200 {
            // d(w²)/dw = 2w
            let g = s.value(w).scale(2.0);
            s.apply(&mut sgd, &[(w, Grad::Dense(g))]);
        }
        assert!(s.value(w)[(0, 0)].abs() < 1e-3);
    }

    #[test]
    fn adam_descends_quadratic_faster_than_tiny_sgd() {
        let mut s = ParamStore::new();
        let w = s.add("w", Matrix::filled(1, 1, 10.0));
        let mut adam = Adam::default_for(&s, 0.5);
        for _ in 0..100 {
            let g = s.value(w).scale(2.0);
            s.apply(&mut adam, &[(w, Grad::Dense(g))]);
        }
        assert!(s.value(w)[(0, 0)].abs() < 0.5, "adam failed: {}", s.value(w)[(0, 0)]);
    }

    #[test]
    fn adam_with_tape_minimizes_least_squares() {
        // Fit w in min ||X w − y||² with the full pipeline.
        let mut rng = seeded_rng(5);
        let x = init::uniform(32, 4, -1.0, 1.0, &mut rng);
        let w_true = Matrix::from_vec(4, 1, vec![1.0, -2.0, 0.5, 3.0]);
        let y = x.matmul(&w_true);

        let mut s = ParamStore::new();
        let w = s.add("w", init::xavier_uniform(4, 1, &mut rng));
        let mut adam = Adam::default_for(&s, 0.05);
        let mut last = f32::INFINITY;
        for _ in 0..500 {
            let mut t = Tape::new();
            let wv = t.leaf(s.value(w).clone());
            let xv = t.constant(x.clone());
            let yv = t.constant(y.clone());
            let pred = t.matmul(xv, wv);
            let resid = t.sub(pred, yv);
            let loss = t.frobenius_sq(resid);
            last = t.value(loss)[(0, 0)];
            t.backward(loss);
            let g = t.take_grad(wv).expect("w participates");
            s.apply(&mut adam, &[(w, Grad::Dense(g))]);
        }
        assert!(last < 1e-3, "final loss {last}");
        let fitted = s.value(w);
        for i in 0..4 {
            assert!((fitted[(i, 0)] - w_true[(i, 0)]).abs() < 0.05);
        }
    }

    #[test]
    fn clipping_caps_huge_gradients() {
        let g = Matrix::filled(1, 1, 1000.0);
        assert_eq!(clip_scale(&g, Some(5.0)), 0.005);
        assert_eq!(clip_scale(&g, None), 1.0);
        let small = Matrix::filled(1, 1, 1.0);
        assert_eq!(clip_scale(&small, Some(5.0)), 1.0);
    }

    #[test]
    #[should_panic(expected = "gradient shape mismatch")]
    fn apply_rejects_bad_shape() {
        let mut s = ParamStore::new();
        let w = s.add("w", Matrix::filled(2, 2, 0.0));
        let mut sgd = Sgd::new(0.1);
        s.apply(&mut sgd, &[(w, Grad::Dense(Matrix::filled(1, 1, 1.0)))]);
    }

    #[test]
    #[should_panic(expected = "gradient shape mismatch")]
    fn apply_rejects_bad_sparse_shape() {
        let mut s = ParamStore::new();
        let w = s.add("w", Matrix::filled(4, 2, 0.0));
        let mut adam = Adam::default_for(&s, 0.1);
        let sg = SparseRowGrad { n_rows: 4, rows: vec![0], values: Matrix::filled(1, 3, 1.0) };
        s.apply(&mut adam, &[(w, Grad::Sparse(sg))]);
    }

    /// A deterministic pseudo-gradient for differential tests.
    fn fake_grad(rows: usize, cols: usize, salt: u64) -> Matrix {
        let mut rng = seeded_rng(salt);
        init::uniform(rows, cols, -1.0, 1.0, &mut rng)
    }

    fn assert_bitwise_eq(a: &Matrix, b: &Matrix, what: &str) {
        assert_eq!(a.shape(), b.shape(), "{what}: shape");
        for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: scalar {i} differs: {x} vs {y}");
        }
    }

    /// Tentpole differential test (a): sparse steps that touch every row
    /// each step are *bitwise* identical to dense Adam.
    #[test]
    fn sparse_all_rows_touched_is_bitwise_equal_to_dense_adam() {
        let (n, d) = (7, 5);
        let w0 = fake_grad(n, d, 99);
        let mut dense = ParamStore::new();
        let wd = dense.add("w", w0.clone());
        let mut sparse = ParamStore::new();
        let ws = sparse.add("w", w0);
        let mut ad = Adam::default_for(&dense, 0.05);
        let mut as_ = Adam::default_for(&sparse, 0.05);
        for step in 0..25u64 {
            let g = fake_grad(n, d, 1000 + step);
            sparse.apply(
                &mut as_,
                &[(
                    ws,
                    Grad::Sparse(SparseRowGrad {
                        n_rows: n,
                        rows: (0..n).collect(),
                        values: g.clone(),
                    }),
                )],
            );
            dense.apply(&mut ad, &[(wd, Grad::Dense(g))]);
            assert_bitwise_eq(dense.value(wd), sparse.value(ws), "after step");
        }
    }

    /// Tentpole differential test (b): a row skipped for `k` steps and
    /// then synced matches a dense-Adam oracle that stepped it with
    /// explicit zero gradients — bias-correction catch-up included.
    #[test]
    fn lazy_catch_up_matches_zero_grad_dense_oracle() {
        let (n, d) = (6, 4);
        let w0 = fake_grad(n, d, 7);
        let mut dense = ParamStore::new();
        let wd = dense.add("w", w0.clone());
        let mut sparse = ParamStore::new();
        let ws = sparse.add("w", w0);
        let mut ad = Adam::default_for(&dense, 0.05);
        let mut as_ = Adam::default_for(&sparse, 0.05);
        for step in 0..30u64 {
            // A rotating subset of rows; some rows go untouched for many
            // consecutive steps.
            let rows: Vec<usize> =
                (0..n).filter(|&r| !(step as usize + r).is_multiple_of(3) || r == 0).collect();
            let gv = fake_grad(rows.len(), d, 2000 + step);
            // Oracle: the same gradient zero-padded to dense.
            let sg = SparseRowGrad { n_rows: n, rows, values: gv };
            dense.apply(&mut ad, &[(wd, Grad::Dense(sg.to_dense()))]);
            sparse.apply(&mut as_, &[(ws, Grad::Sparse(sg))]);
        }
        // Before the sync, deferred rows lag; after it, bitwise equality.
        sparse.sync_all(&mut as_, ws);
        assert_bitwise_eq(dense.value(wd), sparse.value(ws), "after sync_all");

        // Keep going after the sync: the state (moments + counters) must
        // have converged too, not just the values.
        for step in 100..110u64 {
            let g = fake_grad(n, d, step);
            let sg = SparseRowGrad { n_rows: n, rows: (0..n).collect(), values: g.clone() };
            dense.apply(&mut ad, &[(wd, Grad::Dense(g))]);
            sparse.apply(&mut as_, &[(ws, Grad::Sparse(sg))]);
        }
        assert_bitwise_eq(dense.value(wd), sparse.value(ws), "after resumed steps");
    }

    /// A dense step landing on a lazy slot settles the deferred rows
    /// first, so mixing sparse and dense gradients on one parameter stays
    /// equivalent to the all-dense schedule.
    #[test]
    fn dense_step_on_lazy_slot_syncs_first() {
        let (n, d) = (5, 3);
        let w0 = fake_grad(n, d, 3);
        let mut dense = ParamStore::new();
        let wd = dense.add("w", w0.clone());
        let mut mixed = ParamStore::new();
        let wm = mixed.add("w", w0);
        let mut ad = Adam::default_for(&dense, 0.05);
        let mut am = Adam::default_for(&mixed, 0.05);
        // Sparse step touching only row 1.
        let sg = SparseRowGrad { n_rows: n, rows: vec![1], values: fake_grad(1, d, 11) };
        dense.apply(&mut ad, &[(wd, Grad::Dense(sg.to_dense()))]);
        mixed.apply(&mut am, &[(wm, Grad::Sparse(sg))]);
        // Then a dense step on both.
        let g = fake_grad(n, d, 12);
        dense.apply(&mut ad, &[(wd, Grad::Dense(g.clone()))]);
        mixed.apply(&mut am, &[(wm, Grad::Dense(g))]);
        assert_bitwise_eq(dense.value(wd), mixed.value(wm), "after mixed schedule");
    }

    /// Satellite fix (d): the divergence guard's incremental scan sees
    /// damage in touched rows and skips clean ones without false alarms.
    #[test]
    fn touched_finite_tracks_dirty_rows() {
        let mut s = ParamStore::new();
        let w = s.add("w", Matrix::filled(4, 2, 1.0));
        // Fresh params are fully scanned once.
        assert!(s.touched_finite());
        // Nothing touched since: trivially clean.
        assert!(s.touched_finite());
        // A sparse step marks only its rows; poisoning one of them trips
        // the incremental scan.
        let mut adam = Adam::default_for(&s, 0.1);
        let sg =
            SparseRowGrad { n_rows: 4, rows: vec![2], values: Matrix::filled(1, 2, f32::INFINITY) };
        // Bypass the tape's debug assert by writing the poison directly.
        s.apply(&mut adam, &[(w, Grad::Sparse(sg))]);
        assert!(!s.touched_finite(), "poisoned touched row must be seen");
        // The log was cleared, but the poison persists — the *full* scan
        // (checkpoint fallback) still reports it.
        assert!(s.touched_finite(), "cleared log no longer scans the row");
        assert!(!s.all_finite(), "full scan remains the ground truth");
        // value_mut marks everything.
        s.value_mut(w)[(2, 0)] = 0.0;
        s.value_mut(w)[(2, 1)] = 0.0;
        assert!(s.touched_finite());
    }

    /// The default `step_sparse` (densify + delegate) keeps plain SGD
    /// — and any future optimizer without an override — correct.
    #[test]
    fn sgd_sparse_matches_dense() {
        let (n, d) = (4, 3);
        let w0 = fake_grad(n, d, 21);
        let mut a = ParamStore::new();
        let wa = a.add("w", w0.clone());
        let mut b = ParamStore::new();
        let wb = b.add("w", w0);
        let mut sa = Sgd::new(0.1);
        let mut sb = Sgd::new(0.1);
        let sg = SparseRowGrad { n_rows: n, rows: vec![0, 2], values: fake_grad(2, d, 22) };
        a.apply(&mut sa, &[(wa, Grad::Dense(sg.to_dense()))]);
        b.apply(&mut sb, &[(wb, Grad::Sparse(sg))]);
        assert_bitwise_eq(a.value(wa), b.value(wb), "sgd sparse");
    }

    /// `fold_ordered` matches a dense oracle that sums the parts'
    /// densified gradients in the same part order — bitwise, because both
    /// walk the parts in the identical sequence.
    #[test]
    fn fold_ordered_matches_in_order_dense_sum() {
        let (n, d) = (9, 4);
        let parts = [
            SparseRowGrad { n_rows: n, rows: vec![3, 1, 7], values: fake_grad(3, d, 1) },
            SparseRowGrad { n_rows: n, rows: vec![1, 4], values: fake_grad(2, d, 2) },
            SparseRowGrad { n_rows: n, rows: vec![7, 3, 0], values: fake_grad(3, d, 3) },
        ];
        let refs: Vec<&SparseRowGrad> = parts.iter().collect();
        let folded = SparseRowGrad::fold_ordered(&refs).expect("non-empty");
        assert_eq!(folded.rows, vec![0, 1, 3, 4, 7], "union rows sorted unique");
        let mut oracle = Matrix::zeros(n, d);
        for p in &parts {
            for (k, &r) in p.rows.iter().enumerate() {
                for (o, &x) in oracle.row_mut(r).iter_mut().zip(p.values.row(k)) {
                    *o += x;
                }
            }
        }
        assert_bitwise_eq(&folded.to_dense(), &oracle, "fold vs in-order dense sum");
        assert!(SparseRowGrad::fold_ordered(&[]).is_none());
    }

    /// `fold_grads_ordered` groups by parameter (first-occurrence order),
    /// folds sparse and dense contributions in part order, and scales once
    /// at the end.
    #[test]
    fn fold_grads_ordered_groups_scales_and_keeps_order() {
        let (n, d) = (6, 3);
        let mut s = ParamStore::new();
        let we = s.add("ent", Matrix::zeros(n, d));
        let wr = s.add("rel", Matrix::zeros(2, d));
        let sg = |rows: Vec<usize>, salt| {
            let v = fake_grad(rows.len(), d, salt);
            Grad::Sparse(SparseRowGrad { n_rows: n, rows, values: v })
        };
        let parts = vec![
            vec![(we, sg(vec![0, 2], 10)), (wr, Grad::Dense(fake_grad(2, d, 11)))],
            vec![(we, sg(vec![2, 5], 12)), (wr, Grad::Dense(fake_grad(2, d, 13)))],
        ];
        let folded = fold_grads_ordered(&parts, 0.5);
        assert_eq!(folded.len(), 2);
        assert_eq!(folded[0].0, we, "first-occurrence order");
        assert_eq!(folded[1].0, wr);
        match &folded[0].1 {
            Grad::Sparse(f) => {
                assert_eq!(f.rows, vec![0, 2, 5]);
                // Row 0 appears only in part 0: folded value is exactly
                // 0.5 * that part's row.
                let p0 = match &parts[0][0].1 {
                    Grad::Sparse(s0) => s0,
                    Grad::Dense(_) => unreachable!(),
                };
                for (o, &x) in f.values.row(0).iter().zip(p0.values.row(0)) {
                    assert_eq!(o.to_bits(), (x * 0.5).to_bits());
                }
            }
            Grad::Dense(_) => panic!("ent gradient must stay sparse"),
        }
        match &folded[1].1 {
            Grad::Dense(f) => {
                let (a, b) = match (&parts[0][1].1, &parts[1][1].1) {
                    (Grad::Dense(a), Grad::Dense(b)) => (a, b),
                    _ => unreachable!(),
                };
                let mut oracle = Matrix::zeros(2, d);
                oracle.axpy(1.0, a);
                oracle.axpy(1.0, b);
                for x in oracle.as_mut_slice() {
                    *x *= 0.5;
                }
                assert_bitwise_eq(f, &oracle, "dense fold");
            }
            Grad::Sparse(_) => panic!("rel gradient must stay dense"),
        }
    }

    /// Folding K micro-gradients and applying once is the contract the
    /// replica trainer relies on; the folded gradient must be accepted by
    /// the normal `apply` path (unique sorted rows, in-bounds).
    #[test]
    fn folded_gradient_passes_apply_invariants() {
        let (n, d) = (8, 2);
        let mut s = ParamStore::new();
        let w = s.add("w", fake_grad(n, d, 40));
        let mut adam = Adam::default_for(&s, 0.05);
        let parts: Vec<Vec<(ParamId, Grad)>> = (0..4u64)
            .map(|i| {
                let rows: Vec<usize> =
                    (0..n).filter(|&r| !(r as u64 + i).is_multiple_of(3)).collect();
                let v = fake_grad(rows.len(), d, 50 + i);
                vec![(w, Grad::Sparse(SparseRowGrad { n_rows: n, rows, values: v }))]
            })
            .collect();
        let folded = fold_grads_ordered(&parts, 0.25);
        s.apply(&mut adam, &folded);
        s.sync_all(&mut adam, w);
        assert!(s.all_finite());
    }

    /// Exported Adam state carries the per-row counters; importing it
    /// resumes the lazy schedule bitwise.
    #[test]
    fn adam_state_roundtrip_preserves_row_counters() {
        let (n, d) = (5, 3);
        let w0 = fake_grad(n, d, 31);
        let mut s = ParamStore::new();
        let w = s.add("w", w0.clone());
        let mut adam = Adam::default_for(&s, 0.05);
        for step in 0..8u64 {
            let rows: Vec<usize> =
                (0..n).filter(|&r| (r + step as usize).is_multiple_of(2)).collect();
            let sg = SparseRowGrad {
                n_rows: n,
                rows: rows.clone(),
                values: fake_grad(rows.len(), d, step),
            };
            s.apply(&mut adam, &[(w, Grad::Sparse(sg))]);
        }
        let snap = adam.export_state();
        let value_snap = s.value(w).clone();

        // Continue the original for a few steps.
        let continue_run = |s: &mut ParamStore, adam: &mut Adam, w: ParamId| {
            for step in 50..55u64 {
                let rows: Vec<usize> = (0..n).filter(|&r| (r + step as usize) % 2 == 1).collect();
                let sg = SparseRowGrad {
                    n_rows: n,
                    rows: rows.clone(),
                    values: fake_grad(rows.len(), d, step),
                };
                s.apply(adam, &[(w, Grad::Sparse(sg))]);
            }
            s.sync_all(adam, w);
        };
        continue_run(&mut s, &mut adam, w);

        // Restore the snapshot into a fresh optimizer and replay.
        let mut s2 = ParamStore::new();
        let w2 = s2.add("w", value_snap);
        let mut adam2 = Adam::with_slots(1, 0.05);
        adam2.import_state(&snap);
        continue_run(&mut s2, &mut adam2, w2);

        assert_bitwise_eq(s.value(w), s2.value(w2), "resumed run");
    }
}
