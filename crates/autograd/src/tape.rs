//! The tape: a dynamically-built computation graph with reverse-mode
//! differentiation.
//! audit: module unwrap — tape node/slot indices are created by this module and
//! never cross an API boundary unchecked; the debug-audit runtime checkers and
//! gradient-check tests cover them.
//!
//! Every op records (a) its output value, computed eagerly, and (b) enough
//! metadata to push gradients back to its inputs. Node handles ([`Var`])
//! are plain indices; because ops can only reference already-created
//! nodes, reverse creation order *is* a valid topological order for the
//! backward sweep.

use crate::optim::SparseRowGrad;
use facility_linalg::{kernels, ops, Matrix};
use rand::Rng;
use std::sync::Arc;

/// Norm floor for [`Tape::normalize_rows`]; rows below it are treated as
/// having this norm, keeping the op (and its gradient) finite.
const NORM_EPS: f32 = 1e-12;

/// `MatMul` backward computes `dA = g·Bᵀ`; when `B` has at most this many
/// elements (32 KiB — every layer/projection weight here qualifies) it is
/// transposed once so `dA` rides the register-blocked row-major matmul,
/// which is ~3x faster on tall `g` than the dot-per-element `A·Bᵀ` kernel.
const SMALL_WEIGHT_TRANSPOSE_LIMIT: usize = 1 << 13;

/// Handle to a node on a [`Tape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(usize);

impl Var {
    /// The raw node index (mostly useful for debugging).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Backward-pass metadata for one node.
enum Op {
    /// Input leaf; gradient accumulates here and is read by the caller.
    Leaf,
    /// Row gather: `out[i] = src[indices[i]]`.
    Gather {
        src: Var,
        indices: Arc<Vec<usize>>,
    },
    /// Gathering leaf over an *off-tape* parameter matrix:
    /// `out[i] = src[indices[i]]` where `src` never becomes a node. The
    /// gradient accumulates here (it is a leaf) and is read back
    /// row-sparse with [`Tape::take_sparse_grad`] — the dense
    /// `rows(src) × cols` scatter buffer of [`Op::Gather`] is never
    /// materialized.
    ParamGather {
        indices: Arc<Vec<usize>>,
        src_rows: usize,
    },
    /// `a · b`.
    MatMul {
        a: Var,
        b: Var,
    },
    /// `a · bᵀ`.
    MatMulTransB {
        a: Var,
        b: Var,
    },
    /// Elementwise `a + b`.
    Add {
        a: Var,
        b: Var,
    },
    /// Elementwise `a - b`.
    Sub {
        a: Var,
        b: Var,
    },
    /// Elementwise `a ∘ b`.
    Mul {
        a: Var,
        b: Var,
    },
    /// Add a `1 × cols` bias row to every row of `a`.
    AddBroadcastRow {
        a: Var,
        bias: Var,
    },
    /// Scale row `i` of `a` by scalar `w[i, 0]`.
    MulBroadcastCol {
        a: Var,
        w: Var,
    },
    /// `s * a`.
    Scale {
        a: Var,
        s: f32,
    },
    /// `a + s` elementwise.
    AddScalar {
        a: Var,
    },
    /// Horizontal concatenation `[a | b]`.
    ConcatCols {
        a: Var,
        b: Var,
    },
    /// Vertical stack of `a` over `b`.
    ConcatRows {
        a: Var,
        b: Var,
    },
    LeakyRelu {
        a: Var,
    },
    Relu {
        a: Var,
    },
    Tanh {
        a: Var,
    },
    Sigmoid {
        a: Var,
    },
    /// `ln(sigmoid(a))`, numerically stable.
    LogSigmoid {
        a: Var,
    },
    /// Per-row dot product → `N × 1`.
    RowwiseDot {
        a: Var,
        b: Var,
    },
    /// Per-row squared L2 norm → `N × 1`.
    RowwiseNormSq {
        a: Var,
    },
    /// Per-row L2 normalization `y_i = x_i / max(‖x_i‖, ε)`.
    NormalizeRows {
        a: Var,
    },
    /// Softmax over contiguous row segments of an `N × 1` score column.
    /// Segment `s` spans rows `offsets[s] .. offsets[s + 1]`.
    SegmentSoftmax {
        a: Var,
        offsets: Arc<Vec<usize>>,
    },
    /// Scatter-sum rows of `a` into `num_segments` output rows:
    /// `out[seg_of_row[i]] += a[i]`.
    SegmentSum {
        a: Var,
        seg_of_row: Arc<Vec<usize>>,
    },
    /// Fused attention aggregation
    /// `out[heads[e]] += h[tails[e]] · att[e]` over an edge list, in
    /// edge order (see [`Tape::gather_scale_segment_sum`]).
    GatherScaleSegmentSum {
        h: Var,
        att: Var,
        tails: Arc<Vec<usize>>,
        heads: Arc<Vec<usize>>,
    },
    /// Inverted dropout with a fixed 0/scale mask.
    Dropout {
        a: Var,
        mask: Arc<Vec<f32>>,
    },
    /// Replace the listed rows of `a` with externally computed constants
    /// (the hub-representation cache); gradients through those rows are
    /// stopped.
    OverrideRows {
        a: Var,
        rows: Arc<Vec<usize>>,
    },
    /// Sum of all elements → `1 × 1`.
    SumAll {
        a: Var,
    },
    /// Mean of all elements → `1 × 1`.
    MeanAll {
        a: Var,
    },
    /// Squared Frobenius norm → `1 × 1`.
    FrobeniusSq {
        a: Var,
    },
}

struct Node {
    value: Matrix,
    op: Op,
}

/// A reverse-mode differentiation tape.
///
/// Build one per training step; see the crate-level docs for the
/// programming model.
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
    grads: Vec<Option<Matrix>>,
}

impl Tape {
    /// An empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no nodes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The forward value of `v`.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].value
    }

    /// The gradient of the last [`Tape::backward`] root w.r.t. `v`, if `v`
    /// participated in that computation.
    pub fn grad(&self, v: Var) -> Option<&Matrix> {
        self.grads.get(v.0).and_then(|g| g.as_ref())
    }

    /// Take ownership of the gradient for `v`, leaving `None` behind.
    pub fn take_grad(&mut self, v: Var) -> Option<Matrix> {
        self.grads.get_mut(v.0).and_then(|g| g.take())
    }

    fn push(&mut self, value: Matrix, op: Op) -> Var {
        debug_assert!(value.all_finite(), "op produced non-finite values");
        self.nodes.push(Node { value, op });
        Var(self.nodes.len() - 1)
    }

    // ------------------------------------------------------------------
    // Leaves
    // ------------------------------------------------------------------

    /// Record an input leaf (parameter or data). Gradients accumulate on
    /// leaves and are retrieved with [`Tape::grad`].
    pub fn leaf(&mut self, value: Matrix) -> Var {
        self.push(value, Op::Leaf)
    }

    /// Constant leaf — identical to [`Tape::leaf`]; the distinction is
    /// documentation only (callers simply never read its gradient).
    pub fn constant(&mut self, value: Matrix) -> Var {
        self.push(value, Op::Leaf)
    }

    // ------------------------------------------------------------------
    // Structural ops
    // ------------------------------------------------------------------

    /// Row gather `out[i] = src[indices[i]]` — differentiable embedding
    /// lookup. Backward scatter-adds into `src`.
    pub fn gather_rows(&mut self, src: Var, indices: &[usize]) -> Var {
        self.gather_rows_arc(src, Arc::new(indices.to_vec()))
    }

    /// [`Tape::gather_rows`] taking a shared index list. Batch-local
    /// propagation gathers with the same remapped index vectors on every
    /// layer; sharing the `Arc` avoids one O(edges) copy per gather.
    pub fn gather_rows_arc(&mut self, src: Var, indices: Arc<Vec<usize>>) -> Var {
        let src_rows = self.value(src).rows();
        for &i in indices.iter() {
            assert!(i < src_rows, "gather_rows: index {i} out of bounds ({src_rows} rows)");
        }
        let value = self.value(src).gather_rows(&indices);
        self.push(value, Op::Gather { src, indices })
    }

    /// Gathering *leaf*: `out[i] = src[indices[i]]` where `src` is a
    /// parameter matrix that never joins the tape. The node behaves like
    /// [`Tape::leaf`] in the backward sweep; read the accumulated gradient
    /// back as a row-sparse [`SparseRowGrad`] with
    /// [`Tape::take_sparse_grad`]. This is the embedding-lookup fast path:
    /// neither the `src` clone of a dense leaf nor the dense scatter
    /// buffer of [`Tape::gather_rows`]' backward is ever allocated.
    pub fn gather_leaf(&mut self, src: &Matrix, indices: Arc<Vec<usize>>) -> Var {
        let src_rows = src.rows();
        for &i in indices.iter() {
            assert!(i < src_rows, "gather_leaf: index {i} out of bounds ({src_rows} rows)");
        }
        let value = src.gather_rows(&indices);
        self.push(value, Op::ParamGather { indices, src_rows })
    }

    /// Take the gradient of a [`Tape::gather_leaf`] node as a row-sparse
    /// gradient over the source parameter, folding duplicate gather
    /// indices in the same accumulation order as the dense scatter-add —
    /// the result densifies bitwise-equal to what
    /// [`Tape::gather_rows`] + [`Tape::take_grad`] would have produced.
    ///
    /// Returns `None` when the node did not participate in the last
    /// [`Tape::backward`].
    ///
    /// # Panics
    /// Panics if `v` was not created by [`Tape::gather_leaf`].
    pub fn take_sparse_grad(&mut self, v: Var) -> Option<SparseRowGrad> {
        let Op::ParamGather { indices, src_rows } = &self.nodes[v.0].op else {
            panic!("take_sparse_grad: node {} was not created by gather_leaf", v.0);
        };
        let (indices, src_rows) = (Arc::clone(indices), *src_rows);
        let mut g = self.grads.get_mut(v.0).and_then(|g| g.take())?;
        if indices.windows(2).all(|w| w[0] < w[1]) {
            // Already unique: one gradient row per parameter row. Mirror
            // the dense path's `0.0 + x` (it normalizes -0.0 to +0.0) so
            // downstream comparisons stay bitwise.
            for x in g.as_mut_slice() {
                *x += 0.0;
            }
            let sg = SparseRowGrad { n_rows: src_rows, rows: indices.to_vec(), values: g };
            #[cfg(feature = "debug-audit")]
            sg.validate("take_sparse_grad (unique fast path)");
            return Some(sg);
        }
        // Duplicates (or unsorted indices): group gather positions by
        // parameter row. Sorting by `(row, position)` keeps each row's
        // adds in gather order — the same order the dense scatter-add
        // visits them.
        let mut order: Vec<usize> = (0..indices.len()).collect();
        order.sort_unstable_by_key(|&k| (indices[k], k));
        let mut rows: Vec<usize> = Vec::new();
        for &k in &order {
            if rows.last() != Some(&indices[k]) {
                rows.push(indices[k]);
            }
        }
        let mut values = Matrix::zeros(rows.len(), g.cols());
        let mut out = 0;
        for &k in &order {
            if rows[out] != indices[k] {
                out += 1;
            }
            kernels::add_assign(values.row_mut(out), g.row(k));
        }
        let sg = SparseRowGrad { n_rows: src_rows, rows, values };
        #[cfg(feature = "debug-audit")]
        sg.validate_sorted("take_sparse_grad (fold path)");
        Some(sg)
    }

    /// Horizontal concatenation `[a | b]`.
    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).concat_cols(self.value(b));
        self.push(value, Op::ConcatCols { a, b })
    }

    /// Vertical stack of `a` over `b`.
    pub fn concat_rows(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).concat_rows(self.value(b));
        self.push(value, Op::ConcatRows { a, b })
    }

    // ------------------------------------------------------------------
    // Arithmetic
    // ------------------------------------------------------------------

    /// Matrix product `a · b`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).matmul(self.value(b));
        self.push(value, Op::MatMul { a, b })
    }

    /// Matrix product `a · bᵀ`.
    pub fn matmul_transpose_b(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).matmul_transpose_b(self.value(b));
        self.push(value, Op::MatMulTransB { a, b })
    }

    /// Elementwise sum.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).add(self.value(b));
        self.push(value, Op::Add { a, b })
    }

    /// Elementwise difference.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).sub(self.value(b));
        self.push(value, Op::Sub { a, b })
    }

    /// Elementwise product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).hadamard(self.value(b));
        self.push(value, Op::Mul { a, b })
    }

    /// Add a `1 × cols` bias row to every row of `a`.
    pub fn add_broadcast_row(&mut self, a: Var, bias: Var) -> Var {
        let value = self.value(a).add_row_broadcast(self.value(bias));
        self.push(value, Op::AddBroadcastRow { a, bias })
    }

    /// Scale row `i` of `a` by the scalar `w[i, 0]` (`w` is `N × 1`).
    pub fn mul_broadcast_col(&mut self, a: Var, w: Var) -> Var {
        let (av, wv) = (self.value(a), self.value(w));
        assert_eq!(wv.cols(), 1, "mul_broadcast_col: w must be a column");
        assert_eq!(av.rows(), wv.rows(), "mul_broadcast_col: row mismatch");
        let (rows, cols) = (av.rows(), av.cols());
        // Build the scaled matrix in one pass instead of clone +
        // in-place `scale_rows`: the products are identical, so the bits
        // are too, and `a` streams through once instead of twice.
        let mut data = Vec::with_capacity(av.len());
        for (row, &s) in av.as_slice().chunks_exact(cols.max(1)).zip(wv.as_slice()) {
            data.extend(row.iter().map(move |&x| x * s));
        }
        let value = Matrix::from_vec(rows, cols, data);
        self.push(value, Op::MulBroadcastCol { a, w })
    }

    /// Scalar multiple `s * a`.
    pub fn scale(&mut self, a: Var, s: f32) -> Var {
        let value = self.value(a).scale(s);
        self.push(value, Op::Scale { a, s })
    }

    /// Elementwise `a + s`.
    pub fn add_scalar(&mut self, a: Var, s: f32) -> Var {
        let value = self.value(a).map(|x| x + s);
        self.push(value, Op::AddScalar { a })
    }

    // ------------------------------------------------------------------
    // Activations
    // ------------------------------------------------------------------

    /// LeakyReLU with the workspace-standard slope.
    pub fn leaky_relu(&mut self, a: Var) -> Var {
        let value = self.value(a).map(ops::leaky_relu);
        self.push(value, Op::LeakyRelu { a })
    }

    /// ReLU.
    pub fn relu(&mut self, a: Var) -> Var {
        let value = self.value(a).map(ops::relu);
        self.push(value, Op::Relu { a })
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let value = self.value(a).map(ops::tanh);
        self.push(value, Op::Tanh { a })
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let value = self.value(a).map(ops::sigmoid);
        self.push(value, Op::Sigmoid { a })
    }

    /// Numerically stable `ln(sigmoid(a))` — the BPR loss kernel.
    pub fn log_sigmoid(&mut self, a: Var) -> Var {
        let value = self.value(a).map(ops::log_sigmoid);
        self.push(value, Op::LogSigmoid { a })
    }

    // ------------------------------------------------------------------
    // Row-wise reductions
    // ------------------------------------------------------------------

    /// Per-row dot product `out[i] = a[i] · b[i]` → `N × 1`.
    pub fn rowwise_dot(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).rowwise_dot(self.value(b));
        self.push(value, Op::RowwiseDot { a, b })
    }

    /// Per-row squared L2 norm → `N × 1` (the TransR plausibility score,
    /// paper Eq. 1, once applied to `W_r e_h + e_r − W_r e_t`).
    pub fn rowwise_norm_sq(&mut self, a: Var) -> Var {
        let value = self.value(a).rowwise_norm_sq();
        self.push(value, Op::RowwiseNormSq { a })
    }

    /// Per-row L2 normalization `y_i = x_i / max(‖x_i‖, ε)` with
    /// `ε = 1e-12` (rows with tiny norms pass through scaled by `1/ε`-free
    /// clamping, i.e. they stay near zero). Used by KGAT-style models to
    /// keep layer outputs on a comparable scale before concatenation.
    pub fn normalize_rows(&mut self, a: Var) -> Var {
        let av = self.value(a);
        let mut value = av.clone();
        for r in 0..value.rows() {
            let row = value.row_mut(r);
            let norm = kernels::dot(row, row).sqrt().max(NORM_EPS);
            for x in row {
                *x /= norm;
            }
        }
        self.push(value, Op::NormalizeRows { a })
    }

    // ------------------------------------------------------------------
    // Segment ops (graph message passing)
    // ------------------------------------------------------------------

    /// Softmax over contiguous row segments of an `N × 1` score column
    /// (paper Eq. 5: attention normalized over each head's neighborhood).
    ///
    /// `offsets` has one more entry than there are segments; segment `s`
    /// spans rows `offsets[s] .. offsets[s+1]`. Empty segments are fine.
    ///
    /// # Panics
    /// Panics if `a` is not a column or `offsets` does not cover all rows.
    pub fn segment_softmax(&mut self, a: Var, offsets: Arc<Vec<usize>>) -> Var {
        let av = self.value(a);
        assert_eq!(av.cols(), 1, "segment_softmax: input must be a column");
        assert!(!offsets.is_empty(), "segment_softmax: offsets must be non-empty");
        assert_eq!(
            *offsets.last().unwrap(),
            av.rows(),
            "segment_softmax: offsets must end at the row count"
        );
        let mut value = av.clone();
        kernels::segment_softmax_in_place(value.as_mut_slice(), &offsets);
        self.push(value, Op::SegmentSoftmax { a, offsets })
    }

    /// Scatter-sum rows of `a` into `num_segments` output rows:
    /// `out[seg_of_row[i]] += a[i]` (paper Eq. 3: messages from a head's
    /// neighborhood are summed into its aggregate `e_{N_h}`).
    ///
    /// # Panics
    /// Panics if `seg_of_row.len() != a.rows()` or a segment id is out of
    /// range.
    pub fn segment_sum(&mut self, a: Var, seg_of_row: Arc<Vec<usize>>, num_segments: usize) -> Var {
        let av = self.value(a);
        assert_eq!(seg_of_row.len(), av.rows(), "segment_sum: length mismatch");
        let mut value = Matrix::zeros(num_segments, av.cols());
        for &s in seg_of_row.iter() {
            assert!(s < num_segments, "segment_sum: segment {s} out of range");
        }
        kernels::segment_sum_into(av.as_slice(), av.cols(), &seg_of_row, value.as_mut_slice());
        self.push(value, Op::SegmentSum { a, seg_of_row })
    }

    /// Fused `gather_rows → mul_broadcast_col → segment_sum` over an
    /// edge list: `out[heads[e]] += h[tails[e]] · att[e]` for every edge
    /// `e`, in edge order. One pass over the edges replaces the two
    /// `E × cols` intermediates (the gathered tails and the scaled
    /// messages) the unfused chain materializes — and every product and
    /// every add happens with the same operands in the same order, so
    /// both the value and the backward are bit-for-bit the unfused
    /// chain's.
    pub fn gather_scale_segment_sum(
        &mut self,
        h: Var,
        att: Var,
        tails: Arc<Vec<usize>>,
        heads: Arc<Vec<usize>>,
        num_segments: usize,
    ) -> Var {
        let (hv, wv) = (self.value(h), self.value(att));
        assert_eq!(wv.cols(), 1, "gather_scale_segment_sum: att must be a column");
        assert_eq!(wv.rows(), tails.len(), "gather_scale_segment_sum: att rows != edges");
        assert_eq!(tails.len(), heads.len(), "gather_scale_segment_sum: edge lists disagree");
        let hr = hv.rows();
        assert!(tails.iter().all(|&t| t < hr), "gather_scale_segment_sum: tail out of range");
        assert!(
            heads.iter().all(|&s| s < num_segments),
            "gather_scale_segment_sum: head out of range"
        );
        let mut value = Matrix::zeros(num_segments, hv.cols());
        kernels::gather_scale_segment_sum_into(
            hv.as_slice(),
            hv.cols(),
            &tails,
            wv.as_slice(),
            &heads,
            value.as_mut_slice(),
        );
        self.push(value, Op::GatherScaleSegmentSum { h, att, tails, heads })
    }

    // ------------------------------------------------------------------
    // Regularization / loss heads
    // ------------------------------------------------------------------

    /// Inverted dropout: elements are zeroed with probability
    /// `1 − keep_prob` and survivors are scaled by `1 / keep_prob`, so the
    /// expectation is unchanged. `keep_prob == 1.0` is the identity.
    pub fn dropout(&mut self, a: Var, keep_prob: f32, rng: &mut impl Rng) -> Var {
        assert!(
            (0.0..=1.0).contains(&keep_prob) && keep_prob > 0.0,
            "dropout: keep_prob must be in (0, 1]"
        );
        if keep_prob >= 1.0 {
            return a;
        }
        let n = self.value(a).len();
        let scale = 1.0 / keep_prob;
        let mask: Vec<f32> =
            (0..n).map(|_| if rng.gen::<f32>() < keep_prob { scale } else { 0.0 }).collect();
        self.dropout_with_mask(a, Arc::new(mask))
    }

    /// Dropout with an explicit mask (exposed for deterministic tests).
    pub fn dropout_with_mask(&mut self, a: Var, mask: Arc<Vec<f32>>) -> Var {
        let av = self.value(a);
        assert_eq!(mask.len(), av.len(), "dropout: mask length mismatch");
        let mut value = av.clone();
        for (x, &m) in value.as_mut_slice().iter_mut().zip(mask.iter()) {
            *x *= m;
        }
        self.push(value, Op::Dropout { a, mask })
    }

    /// Replace rows `rows[i]` of `a` with row `i` of `values`, treating
    /// the injected rows as *constants*: the backward pass propagates a
    /// zero gradient through every overridden row (stop-gradient) and the
    /// untouched rows pass their gradient through unchanged.
    ///
    /// This is the injection point for per-macro-step caches (e.g. CKAT's
    /// hub-representation cache): values computed once outside the tape
    /// against a frozen snapshot replace recomputation inside it.
    /// `rows` must be strictly increasing; an empty `rows` is the
    /// identity and records no node.
    ///
    /// # Panics
    /// Panics if `rows` is not strictly increasing, a row index is out of
    /// bounds, or `values` is not `rows.len() × a.cols()`.
    pub fn override_rows(&mut self, a: Var, rows: Arc<Vec<usize>>, values: &Matrix) -> Var {
        if rows.is_empty() {
            return a;
        }
        let av = self.value(a);
        assert!(
            rows.windows(2).all(|w| w[0] < w[1]),
            "override_rows: rows must be strictly increasing"
        );
        assert!(*rows.last().unwrap() < av.rows(), "override_rows: row index out of bounds");
        assert_eq!(values.shape(), (rows.len(), av.cols()), "override_rows: values shape mismatch");
        let mut value = av.clone();
        for (i, &r) in rows.iter().enumerate() {
            value.row_mut(r).copy_from_slice(values.row(i));
        }
        self.push(value, Op::OverrideRows { a, rows })
    }

    /// Sum of every element → `1 × 1`.
    pub fn sum_all(&mut self, a: Var) -> Var {
        let value = Matrix::from_vec(1, 1, vec![self.value(a).sum()]);
        self.push(value, Op::SumAll { a })
    }

    /// Mean of every element → `1 × 1`.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let value = Matrix::from_vec(1, 1, vec![self.value(a).mean()]);
        self.push(value, Op::MeanAll { a })
    }

    /// Squared Frobenius norm → `1 × 1` (the `λ‖Θ‖²` term of Eq. 13).
    pub fn frobenius_sq(&mut self, a: Var) -> Var {
        let value = Matrix::from_vec(1, 1, vec![self.value(a).frobenius_sq()]);
        self.push(value, Op::FrobeniusSq { a })
    }

    // ------------------------------------------------------------------
    // Backward
    // ------------------------------------------------------------------

    /// Run the reverse sweep from `root`, which must be a `1 × 1` scalar.
    ///
    /// After this call, [`Tape::grad`] returns `∂root/∂v` for every node
    /// `v` that (transitively) feeds `root`.
    ///
    /// # Panics
    /// Panics if `root` is not `1 × 1`.
    pub fn backward(&mut self, root: Var) {
        assert_eq!(self.value(root).shape(), (1, 1), "backward: root must be a 1x1 scalar");
        #[cfg(feature = "debug-audit")]
        self.audit_invariants();
        self.grads = (0..self.nodes.len()).map(|_| None).collect();
        self.grads[root.0] = Some(Matrix::from_vec(1, 1, vec![1.0]));

        for id in (0..=root.0).rev() {
            let Some(g) = self.grads[id].take() else { continue };
            // Non-finite gradients propagate silently and poison training;
            // fail fast instead (debug builds only — hot path).
            debug_assert!(g.all_finite(), "non-finite gradient at node {id}");
            self.apply_backward(id, &g);
            self.grads[id] = Some(g);
        }
    }

    fn acc(&mut self, v: Var, delta: Matrix) {
        match &mut self.grads[v.0] {
            Some(g) => g.add_assign(&delta),
            slot @ None => *slot = Some(delta),
        }
    }

    /// Row-sparse gradient accumulation: `grad[v][indices[i]] += src[i]`.
    ///
    /// When `v` already has a gradient the rows scatter straight into it,
    /// touching only `indices.len()` rows — the dense
    /// `zeros + scatter + full-matrix add` detour would stream the whole
    /// `rows(v) × cols` buffer three times per gather, which dominated the
    /// backward pass on batch-local subgraphs (~75k-row unions, ~1k-row
    /// scatters).
    fn acc_scatter(&mut self, v: Var, cols: usize, indices: &[usize], src: &[f32]) {
        let rows = self.nodes[v.0].value.rows();
        match &mut self.grads[v.0] {
            Some(g) => kernels::scatter_add_rows(g.as_mut_slice(), cols, indices, src),
            slot @ None => {
                let mut d = Matrix::zeros(rows, cols);
                kernels::scatter_add_rows(d.as_mut_slice(), cols, indices, src);
                *slot = Some(d);
            }
        }
    }

    /// Like [`Tape::acc`] for a borrowed delta: adds in place when the
    /// slot already exists and clones only on first touch. Same bits as
    /// `acc(v, delta.clone())`, minus the unconditional clone.
    fn acc_ref(&mut self, v: Var, delta: &Matrix) {
        match &mut self.grads[v.0] {
            Some(g) => g.add_assign(delta),
            slot @ None => *slot = Some(delta.clone()),
        }
    }

    fn apply_backward(&mut self, id: usize, g: &Matrix) {
        // `Op` only stores Vars and shared metadata, so we can copy what we
        // need out of the node before mutating the grad slots.
        match &self.nodes[id].op {
            Op::Leaf => {}
            // A leaf w.r.t. the tape: the gradient stays here for
            // `take_sparse_grad`; the off-tape source is not a node.
            Op::ParamGather { .. } => {}
            Op::Gather { src, indices } => {
                let (src, indices) = (*src, Arc::clone(indices));
                self.acc_scatter(src, g.cols(), &indices, g.as_slice());
            }
            Op::MatMul { a, b } => {
                let (a, b) = (*a, *b);
                let bv = self.value(b);
                // `dA = g·Bᵀ`. When `B` is a small weight matrix (every
                // layer/projection weight in this workspace), transposing
                // it once and riding the register-blocked row-major matmul
                // is ~3x faster on tall gradients than the dot-per-element
                // `A·Bᵀ` kernel; the transposed copy is a few KiB.
                let da = if bv.len() <= SMALL_WEIGHT_TRANSPOSE_LIMIT {
                    g.matmul(&bv.transpose())
                } else {
                    g.matmul_transpose_b(bv)
                };
                self.acc(a, da);
                // `dB = Aᵀ·g` rides the accumulating transpose-matmul
                // kernel straight into the grad slot: on first touch the
                // slot starts from zeros exactly like the former
                // temporary, and on later touches the rank-1 updates land
                // on the running total — a pure reassociation that is
                // deterministic and identical across extraction modes
                // (the op stream, and hence the visit order, is).
                let (brows, bcols) = {
                    let bm = &self.nodes[b.0].value;
                    (bm.rows(), bm.cols())
                };
                let db = self.grads[b.0].get_or_insert_with(|| Matrix::zeros(brows, bcols));
                let av = &self.nodes[a.0].value;
                kernels::transpose_matmul_into(
                    av.as_slice(),
                    av.cols(),
                    g.as_slice(),
                    g.cols(),
                    db.as_mut_slice(),
                );
            }
            Op::MatMulTransB { a, b } => {
                let (a, b) = (*a, *b);
                let da = g.matmul(self.value(b));
                let db = g.transpose_matmul(self.value(a));
                self.acc(a, da);
                self.acc(b, db);
            }
            Op::Add { a, b } => {
                let (a, b) = (*a, *b);
                self.acc_ref(a, g);
                self.acc_ref(b, g);
            }
            Op::Sub { a, b } => {
                let (a, b) = (*a, *b);
                self.acc_ref(a, g);
                self.acc(b, g.scale(-1.0));
            }
            Op::Mul { a, b } => {
                let (a, b) = (*a, *b);
                let da = g.hadamard(self.value(b));
                let db = g.hadamard(self.value(a));
                self.acc(a, da);
                self.acc(b, db);
            }
            Op::AddBroadcastRow { a, bias } => {
                let (a, bias) = (*a, *bias);
                self.acc_ref(a, g);
                self.acc(bias, g.col_sums());
            }
            Op::MulBroadcastCol { a, w } => {
                let (a, w) = (*a, *w);
                // Take both grad slots (zeroed on first touch) and fold
                // the fused kernel's `+=` halves straight into them — the
                // exact element adds the former temporary-then-
                // `add_assign` detour performed, with two fewer
                // full-matrix passes.
                let wv_rows = self.nodes[w.0].value.rows();
                let mut da =
                    self.grads[a.0].take().unwrap_or_else(|| Matrix::zeros(g.rows(), g.cols()));
                let mut dw = self.grads[w.0].take().unwrap_or_else(|| Matrix::zeros(wv_rows, 1));
                kernels::mul_broadcast_col_grad_acc(
                    g.as_slice(),
                    self.nodes[a.0].value.as_slice(),
                    self.nodes[w.0].value.as_slice(),
                    g.cols(),
                    da.as_mut_slice(),
                    dw.as_mut_slice(),
                );
                self.grads[a.0] = Some(da);
                self.grads[w.0] = Some(dw);
            }
            Op::Scale { a, s } => {
                let (a, s) = (*a, *s);
                self.acc(a, g.scale(s));
            }
            Op::AddScalar { a } => {
                let a = *a;
                self.acc_ref(a, g);
            }
            Op::ConcatCols { a, b } => {
                let (a, b) = (*a, *b);
                let ac = self.nodes[a.0].value.cols();
                let (rows, n) = (g.rows(), g.cols());
                // When a half already has a gradient, add its column
                // block straight in, row by row — the same per-element
                // adds that splitting into a temporary and `add_assign`ing
                // would perform, minus the temporary and its extra pass.
                // On first touch, build the half by extension (skips the
                // `zeros` memset) and install it.
                match &mut self.grads[a.0] {
                    Some(da) => {
                        let rows_a = da.as_mut_slice().chunks_exact_mut(ac.max(1));
                        for (drow, grow) in rows_a.zip(g.as_slice().chunks_exact(n.max(1))) {
                            kernels::add_assign(drow, &grow[..ac]);
                        }
                    }
                    slot @ None => {
                        let mut va = Vec::with_capacity(rows * ac);
                        for grow in g.as_slice().chunks_exact(n.max(1)) {
                            va.extend_from_slice(&grow[..ac]);
                        }
                        *slot = Some(Matrix::from_vec(rows, ac, va));
                    }
                }
                match &mut self.grads[b.0] {
                    Some(db) => {
                        let bc = (n - ac).max(1);
                        let rows_b = db.as_mut_slice().chunks_exact_mut(bc);
                        for (drow, grow) in rows_b.zip(g.as_slice().chunks_exact(n.max(1))) {
                            kernels::add_assign(drow, &grow[ac..]);
                        }
                    }
                    slot @ None => {
                        let mut vb = Vec::with_capacity(rows * (n - ac));
                        for grow in g.as_slice().chunks_exact(n.max(1)) {
                            vb.extend_from_slice(&grow[ac..]);
                        }
                        *slot = Some(Matrix::from_vec(rows, n - ac, vb));
                    }
                }
            }
            Op::ConcatRows { a, b } => {
                let (a, b) = (*a, *b);
                let ar = self.value(a).rows();
                let da = g.gather_rows(&(0..ar).collect::<Vec<_>>());
                let db = g.gather_rows(&(ar..g.rows()).collect::<Vec<_>>());
                self.acc(a, da);
                self.acc(b, db);
            }
            Op::LeakyRelu { a } => {
                let a = *a;
                let x = self.value(a);
                let mut d = Matrix::zeros(x.rows(), x.cols());
                kernels::leaky_relu_grad_mul(x.as_slice(), g.as_slice(), d.as_mut_slice());
                self.acc(a, d);
            }
            Op::Relu { a } => {
                let a = *a;
                let x = self.value(a);
                let mut d = Matrix::zeros(x.rows(), x.cols());
                kernels::relu_grad_mul(x.as_slice(), g.as_slice(), d.as_mut_slice());
                self.acc(a, d);
            }
            Op::Tanh { a } => {
                let a = *a;
                let y = &self.nodes[id].value;
                let mut d = Matrix::zeros(y.rows(), y.cols());
                kernels::tanh_grad_mul(y.as_slice(), g.as_slice(), d.as_mut_slice());
                self.acc(a, d);
            }
            Op::Sigmoid { a } => {
                let a = *a;
                let y = &self.nodes[id].value;
                let mut d = Matrix::zeros(y.rows(), y.cols());
                kernels::sigmoid_grad_mul(y.as_slice(), g.as_slice(), d.as_mut_slice());
                self.acc(a, d);
            }
            Op::LogSigmoid { a } => {
                let a = *a;
                // d/dx ln σ(x) = σ(−x)
                let x = self.value(a);
                let mut d = Matrix::zeros(x.rows(), x.cols());
                kernels::log_sigmoid_grad_mul(x.as_slice(), g.as_slice(), d.as_mut_slice());
                self.acc(a, d);
            }
            Op::RowwiseDot { a, b } => {
                let (a, b) = (*a, *b);
                let mut da = self.value(b).clone();
                let mut db = self.value(a).clone();
                let (ca, cb) = (da.cols(), db.cols());
                kernels::scale_rows(da.as_mut_slice(), ca, g.as_slice());
                kernels::scale_rows(db.as_mut_slice(), cb, g.as_slice());
                self.acc(a, da);
                self.acc(b, db);
            }
            Op::RowwiseNormSq { a } => {
                let a = *a;
                let mut da = self.value(a).clone();
                let g2 = g.scale(2.0);
                let cols = da.cols();
                kernels::scale_rows(da.as_mut_slice(), cols, g2.as_slice());
                self.acc(a, da);
            }
            Op::NormalizeRows { a } => {
                let a = *a;
                let x = self.value(a);
                let mut da = Matrix::zeros(x.rows(), x.cols());
                // With y = x/‖x‖:  dL/dx = (g − y (y · g)) / ‖x‖.
                for r in 0..x.rows() {
                    let xr = x.row(r);
                    let gr = g.row(r);
                    let norm = kernels::dot(xr, xr).sqrt().max(NORM_EPS);
                    let dot_yg: f32 = kernels::dot(xr, gr) / norm;
                    let out = da.row_mut(r);
                    for ((o, &xv), &gv) in out.iter_mut().zip(xr).zip(gr) {
                        let y = xv / norm;
                        *o = (gv - y * dot_yg) / norm;
                    }
                }
                self.acc(a, da);
            }
            Op::SegmentSoftmax { a, offsets } => {
                let (a, offsets) = (*a, Arc::clone(offsets));
                let y = &self.nodes[id].value;
                let mut da = Matrix::zeros(g.rows(), 1);
                kernels::segment_softmax_grad_into(
                    y.as_slice(),
                    g.as_slice(),
                    &offsets,
                    da.as_mut_slice(),
                );
                self.acc(a, da);
            }
            Op::GatherScaleSegmentSum { h, att, tails, heads } => {
                let (h, att) = (*h, *att);
                let (tails, heads) = (Arc::clone(tails), Arc::clone(heads));
                // Mirror image of the forward fusion: one pass over the
                // edges folds `dh[tails[e]] += g[heads[e]] · att[e]` and
                // `datt[e] += g[heads[e]] ⋅ h[tails[e]]` straight into
                // the grad slots (zeroed on first touch). Values, dots
                // and scatter order all match the unfused
                // segment-sum / mul-broadcast / gather backward chain,
                // so the bits do too.
                let (hrows, hcols) = {
                    let hm = &self.nodes[h.0].value;
                    (hm.rows(), hm.cols())
                };
                let mut dh = self.grads[h.0].take().unwrap_or_else(|| Matrix::zeros(hrows, hcols));
                let mut datt =
                    self.grads[att.0].take().unwrap_or_else(|| Matrix::zeros(tails.len(), 1));
                kernels::gather_scale_segment_sum_grad(
                    g.as_slice(),
                    self.nodes[h.0].value.as_slice(),
                    hcols,
                    &tails,
                    self.nodes[att.0].value.as_slice(),
                    &heads,
                    dh.as_mut_slice(),
                    datt.as_mut_slice(),
                );
                self.grads[h.0] = Some(dh);
                self.grads[att.0] = Some(datt);
            }
            Op::SegmentSum { a, seg_of_row } => {
                let (a, seg_of_row) = (*a, Arc::clone(seg_of_row));
                let cols = g.cols();
                if let Some(da) = &mut self.grads[a.0] {
                    // Gather-add each gradient row straight into the
                    // existing slot — the same element adds the
                    // temporary-then-`add_assign` detour performed.
                    let drows = da.as_mut_slice().chunks_exact_mut(cols.max(1));
                    for (drow, &seg) in drows.zip(seg_of_row.iter()) {
                        kernels::add_assign(drow, g.row(seg));
                    }
                    return;
                }
                let mut da = Matrix::zeros(seg_of_row.len(), cols);
                // Each output row reads exactly one gradient row, so the
                // backward is embarrassingly parallel; fall back to the
                // serial kernel when the matrix is too small to amortize
                // the fork/join overhead.
                if seg_of_row.len() * cols >= 1 << 14 && cols > 0 {
                    use rayon::prelude::*;
                    da.as_mut_slice().par_chunks_mut(cols).enumerate().for_each(|(row, out)| {
                        out.copy_from_slice(g.row(seg_of_row[row]));
                    });
                } else {
                    kernels::gather_rows_into(g.as_slice(), cols, &seg_of_row, da.as_mut_slice());
                }
                self.acc(a, da);
            }
            Op::Dropout { a, mask } => {
                let (a, mask) = (*a, Arc::clone(mask));
                let mut da = g.clone();
                for (x, &m) in da.as_mut_slice().iter_mut().zip(mask.iter()) {
                    *x *= m;
                }
                self.acc(a, da);
            }
            Op::OverrideRows { a, rows } => {
                let (a, rows) = (*a, Arc::clone(rows));
                // Overridden rows are constants: their gradient stops
                // here; all other rows pass through.
                let mut da = g.clone();
                for &r in rows.iter() {
                    da.row_mut(r).fill(0.0);
                }
                self.acc(a, da);
            }
            Op::SumAll { a } => {
                let a = *a;
                let s = g[(0, 0)];
                let shape = self.value(a).shape();
                self.acc(a, Matrix::filled(shape.0, shape.1, s));
            }
            Op::MeanAll { a } => {
                let a = *a;
                let shape = self.value(a).shape();
                let n = (shape.0 * shape.1).max(1) as f32;
                self.acc(a, Matrix::filled(shape.0, shape.1, g[(0, 0)] / n));
            }
            Op::FrobeniusSq { a } => {
                let a = *a;
                let d = self.value(a).scale(2.0 * g[(0, 0)]);
                self.acc(a, d);
            }
        }
    }
}

// ----------------------------------------------------------------------
// Debug audit (feature = "debug-audit")
// ----------------------------------------------------------------------

#[cfg(feature = "debug-audit")]
impl Tape {
    /// Validate the structural invariants every [`Tape::backward`] sweep
    /// relies on, panicking with the offending node id on violation:
    ///
    /// * **topological order** — every op input was created before the op
    ///   itself (creation order is the backward sweep's topo order);
    /// * **per-op shape agreement** — each node's stored value has the
    ///   shape its op implies from its inputs' shapes;
    /// * **index bounds** — gather indices, segment offsets, scatter
    ///   targets, and dropout masks are in range for their operands;
    /// * **leaf non-aliasing** — no two non-empty leaf values share a
    ///   buffer, so gradient accumulation on one leaf can never observe
    ///   another leaf's updates.
    ///
    /// Runs automatically at the start of `backward()` when the
    /// `debug-audit` feature is enabled.
    pub fn audit_invariants(&self) {
        let mut leaf_bufs: Vec<*const f32> = Vec::new();
        for (id, node) in self.nodes.iter().enumerate() {
            self.audit_node(id, node);
            if matches!(node.op, Op::Leaf) && !node.value.as_slice().is_empty() {
                leaf_bufs.push(node.value.as_slice().as_ptr());
            }
        }
        leaf_bufs.sort_unstable();
        let n = leaf_bufs.len();
        leaf_bufs.dedup();
        assert_eq!(leaf_bufs.len(), n, "debug-audit: two leaf nodes alias the same value buffer");
    }

    fn audit_node(&self, id: usize, node: &Node) {
        let shape = node.value.shape();
        let input = |v: Var| -> (usize, usize) {
            assert!(
                v.0 < id,
                "debug-audit: node {id} reads node {} created after it — not topologically ordered",
                v.0
            );
            self.nodes[v.0].value.shape()
        };
        let expect = |cond: bool, what: &str| {
            assert!(cond, "debug-audit: node {id}: {what} (value shape {shape:?})");
        };
        match &node.op {
            Op::Leaf => {}
            Op::ParamGather { indices, src_rows } => {
                expect(shape.0 == indices.len(), "ParamGather row count != index count");
                expect(
                    indices.iter().all(|&i| i < *src_rows),
                    "ParamGather index out of parameter bounds",
                );
            }
            Op::Gather { src, indices } => {
                let s = input(*src);
                expect(shape == (indices.len(), s.1), "Gather shape mismatch");
                expect(indices.iter().all(|&i| i < s.0), "Gather index out of bounds");
            }
            Op::MatMul { a, b } => {
                let (a, b) = (input(*a), input(*b));
                expect(a.1 == b.0, "MatMul inner dimensions disagree");
                expect(shape == (a.0, b.1), "MatMul output shape mismatch");
            }
            Op::MatMulTransB { a, b } => {
                let (a, b) = (input(*a), input(*b));
                expect(a.1 == b.1, "MatMulTransB inner dimensions disagree");
                expect(shape == (a.0, b.0), "MatMulTransB output shape mismatch");
            }
            Op::Add { a, b } | Op::Sub { a, b } | Op::Mul { a, b } => {
                let (a, b) = (input(*a), input(*b));
                expect(a == b, "elementwise op operand shapes disagree");
                expect(shape == a, "elementwise op output shape mismatch");
            }
            Op::AddBroadcastRow { a, bias } => {
                let (a, bias) = (input(*a), input(*bias));
                expect(bias == (1, a.1), "AddBroadcastRow bias is not 1 x cols");
                expect(shape == a, "AddBroadcastRow output shape mismatch");
            }
            Op::MulBroadcastCol { a, w } => {
                let (a, w) = (input(*a), input(*w));
                expect(w == (a.0, 1), "MulBroadcastCol weight is not rows x 1");
                expect(shape == a, "MulBroadcastCol output shape mismatch");
            }
            Op::Scale { a, .. }
            | Op::AddScalar { a }
            | Op::LeakyRelu { a }
            | Op::Relu { a }
            | Op::Tanh { a }
            | Op::Sigmoid { a }
            | Op::LogSigmoid { a }
            | Op::NormalizeRows { a } => {
                expect(shape == input(*a), "unary op output shape mismatch");
            }
            Op::Dropout { a, mask } => {
                let a = input(*a);
                expect(shape == a, "Dropout output shape mismatch");
                expect(mask.len() == a.0 * a.1, "Dropout mask length != element count");
            }
            Op::OverrideRows { a, rows } => {
                let a = input(*a);
                expect(shape == a, "OverrideRows output shape mismatch");
                expect(
                    rows.windows(2).all(|w| w[0] < w[1]),
                    "OverrideRows rows not strictly increasing",
                );
                expect(
                    rows.last().is_none_or(|&r| r < a.0),
                    "OverrideRows row index out of bounds",
                );
            }
            Op::ConcatCols { a, b } => {
                let (a, b) = (input(*a), input(*b));
                expect(a.0 == b.0, "ConcatCols row counts disagree");
                expect(shape == (a.0, a.1 + b.1), "ConcatCols output shape mismatch");
            }
            Op::ConcatRows { a, b } => {
                let (a, b) = (input(*a), input(*b));
                expect(a.1 == b.1, "ConcatRows column counts disagree");
                expect(shape == (a.0 + b.0, a.1), "ConcatRows output shape mismatch");
            }
            Op::RowwiseDot { a, b } => {
                let (a, b) = (input(*a), input(*b));
                expect(a == b, "RowwiseDot operand shapes disagree");
                expect(shape == (a.0, 1), "RowwiseDot output is not rows x 1");
            }
            Op::RowwiseNormSq { a } => {
                expect(shape == (input(*a).0, 1), "RowwiseNormSq output is not rows x 1");
            }
            Op::SegmentSoftmax { a, offsets } => {
                let a = input(*a);
                expect(a.1 == 1, "SegmentSoftmax input is not a score column");
                expect(shape == a, "SegmentSoftmax output shape mismatch");
                expect(
                    offsets.first() == Some(&0) && offsets.last() == Some(&a.0),
                    "SegmentSoftmax offsets must span 0..rows",
                );
                expect(
                    offsets.windows(2).all(|w| w[0] <= w[1]),
                    "SegmentSoftmax offsets must be non-decreasing",
                );
            }
            Op::GatherScaleSegmentSum { h, att, tails, heads } => {
                let (h, att) = (input(*h), input(*att));
                expect(att == (tails.len(), 1), "GatherScaleSegmentSum att is not edges x 1");
                expect(tails.len() == heads.len(), "GatherScaleSegmentSum edge lists disagree");
                expect(shape.1 == h.1, "GatherScaleSegmentSum output width mismatch");
                expect(
                    tails.iter().all(|&t| t < h.0),
                    "GatherScaleSegmentSum tail index out of bounds",
                );
                expect(
                    heads.iter().all(|&s| s < shape.0),
                    "GatherScaleSegmentSum head index out of bounds",
                );
            }
            Op::SegmentSum { a, seg_of_row } => {
                let a = input(*a);
                expect(seg_of_row.len() == a.0, "SegmentSum map length != input rows");
                expect(shape.1 == a.1, "SegmentSum output width mismatch");
                expect(
                    seg_of_row.iter().all(|&s| s < shape.0),
                    "SegmentSum segment id out of output bounds",
                );
            }
            Op::SumAll { .. } | Op::MeanAll { .. } | Op::FrobeniusSq { .. } => {
                expect(shape == (1, 1), "reduction output is not 1 x 1");
            }
        }
    }

    /// Test hook: overwrite the stored value of `v` so corruption tests
    /// can violate shape invariants without going through the public op
    /// constructors (which check shapes eagerly).
    pub fn debug_replace_value_for_test(&mut self, v: Var, value: Matrix) {
        self.nodes[v.0].value = value;
    }
}
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_chain_gradient() {
        // loss = sum((2x)²) = 4 Σ x² → d/dx = 8x
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]));
        let y = t.scale(x, 2.0);
        let y2 = t.mul(y, y);
        let loss = t.sum_all(y2);
        t.backward(loss);
        let g = t.grad(x).unwrap();
        assert_eq!(g.as_slice(), &[8., 16., 24., 32.]);
    }

    #[test]
    fn gather_scatter_accumulates_duplicates() {
        let mut t = Tape::new();
        let e = t.leaf(Matrix::from_vec(3, 2, vec![1., 1., 2., 2., 3., 3.]));
        let g = t.gather_rows(e, &[0, 2, 0]);
        let loss = t.sum_all(g);
        t.backward(loss);
        let grad = t.grad(e).unwrap();
        // Row 0 gathered twice → gradient 2; row 1 never → 0; row 2 once.
        assert_eq!(grad.as_slice(), &[2., 2., 0., 0., 1., 1.]);
    }

    #[test]
    fn override_rows_forward_replaces_and_backward_stops_gradient() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_vec(3, 2, vec![1., 1., 2., 2., 3., 3.]));
        let y = t.scale(x, 2.0);
        let cached = Matrix::from_vec(2, 2, vec![10., 20., 30., 40.]);
        let z = t.override_rows(y, Arc::new(vec![0, 2]), &cached);
        assert_eq!(t.value(z).as_slice(), &[10., 20., 4., 4., 30., 40.]);
        let loss = t.sum_all(z);
        t.backward(loss);
        // Rows 0 and 2 are constants → no gradient flows back through
        // them; row 1 passes through the ×2.
        assert_eq!(t.grad(x).unwrap().as_slice(), &[0., 0., 2., 2., 0., 0.]);
    }

    #[test]
    fn override_rows_with_empty_rows_is_identity() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]));
        let empty = Matrix::zeros(0, 2);
        let y = t.override_rows(x, Arc::new(Vec::new()), &empty);
        assert_eq!(y, x, "no node recorded for an empty override");
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn override_rows_rejects_unsorted_rows() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::zeros(3, 2));
        let vals = Matrix::zeros(2, 2);
        t.override_rows(x, Arc::new(vec![2, 0]), &vals);
    }

    #[test]
    #[should_panic(expected = "values shape mismatch")]
    fn override_rows_rejects_wrong_value_shape() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::zeros(3, 2));
        let vals = Matrix::zeros(1, 2);
        t.override_rows(x, Arc::new(vec![0, 2]), &vals);
    }

    #[test]
    fn matmul_gradients_known_values() {
        // loss = sum(A·B); dA = 1·Bᵀ, dB = Aᵀ·1.
        let mut t = Tape::new();
        let a = t.leaf(Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]));
        let b = t.leaf(Matrix::from_vec(2, 2, vec![5., 6., 7., 8.]));
        let c = t.matmul(a, b);
        let loss = t.sum_all(c);
        t.backward(loss);
        assert_eq!(t.grad(a).unwrap().as_slice(), &[11., 15., 11., 15.]);
        assert_eq!(t.grad(b).unwrap().as_slice(), &[4., 4., 6., 6.]);
    }

    #[test]
    fn segment_softmax_forward_uniform_and_grad_sums_to_zero() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_vec(4, 1, vec![1., 1., 5., 2.]));
        let offsets = Arc::new(vec![0usize, 2, 4]);
        let y = t.segment_softmax(x, offsets);
        let yv = t.value(y).clone();
        assert!((yv[(0, 0)] - 0.5).abs() < 1e-6);
        assert!((yv[(1, 0)] - 0.5).abs() < 1e-6);
        assert!((yv[(2, 0)] + yv[(3, 0)] - 1.0).abs() < 1e-6);
        assert!(yv[(2, 0)] > yv[(3, 0)]);

        // Weight the softmax output and reduce; the gradient within each
        // segment must sum to ~0 (softmax is shift-invariant).
        let w = t.constant(Matrix::from_vec(4, 1, vec![1., -1., 2., 0.]));
        let yw = t.mul(y, w);
        let loss = t.sum_all(yw);
        t.backward(loss);
        let g = t.grad(x).unwrap();
        assert!((g[(0, 0)] + g[(1, 0)]).abs() < 1e-6);
        assert!((g[(2, 0)] + g[(3, 0)]).abs() < 1e-6);
    }

    #[test]
    fn segment_sum_forward_and_backward() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]));
        let y = t.segment_sum(x, Arc::new(vec![1, 0, 1]), 2);
        assert_eq!(t.value(y).as_slice(), &[3., 4., 6., 8.]);
        // Weighted reduction: rows of segment 1 receive that segment's grad.
        let w = t.constant(Matrix::from_vec(2, 2, vec![10., 10., 1., 1.]));
        let yw = t.mul(y, w);
        let loss = t.sum_all(yw);
        t.backward(loss);
        assert_eq!(t.grad(x).unwrap().as_slice(), &[1., 1., 10., 10., 1., 1.]);
    }

    #[test]
    fn gather_scale_segment_sum_is_bitwise_the_unfused_chain() {
        // The fused attention aggregation must match
        // gather → mul_broadcast_col → segment_sum bit for bit, in both
        // the forward value and every gradient — the property that lets
        // `propagate_over` swap chains without moving any training gate.
        let rows = 23;
        let cols = 5;
        let n_seg = 6;
        let tails: Vec<usize> = (0..40).map(|e| (e * 7 + 3) % rows).collect();
        let heads: Vec<usize> = (0..40).map(|e| (e * 5) % n_seg).collect();
        let h_data: Vec<f32> =
            (0..rows * cols).map(|i| ((i * 37 + 11) % 19) as f32 * 0.173 - 1.5).collect();
        let att_data: Vec<f32> =
            (0..40).map(|e| ((e * 13 + 5) % 23) as f32 * 0.071 - 0.6).collect();

        let run = |fused: bool| {
            let mut t = Tape::new();
            let h = t.leaf(Matrix::from_vec(rows, cols, h_data.clone()));
            let att = t.leaf(Matrix::from_vec(40, 1, att_data.clone()));
            let e_n = if fused {
                t.gather_scale_segment_sum(
                    h,
                    att,
                    Arc::new(tails.clone()),
                    Arc::new(heads.clone()),
                    n_seg,
                )
            } else {
                let et = t.gather_rows(h, &tails);
                let msg = t.mul_broadcast_col(et, att);
                t.segment_sum(msg, Arc::new(heads.clone()), n_seg)
            };
            let loss = t.frobenius_sq(e_n);
            t.backward(loss);
            (
                t.value(e_n).as_slice().to_vec(),
                t.grad(h).unwrap().as_slice().to_vec(),
                t.grad(att).unwrap().as_slice().to_vec(),
            )
        };
        let (v_f, dh_f, datt_f) = run(true);
        let (v_u, dh_u, datt_u) = run(false);
        for (a, b) in v_f.iter().zip(&v_u) {
            assert_eq!(a.to_bits(), b.to_bits(), "forward value diverged");
        }
        for (a, b) in dh_f.iter().zip(&dh_u) {
            assert_eq!(a.to_bits(), b.to_bits(), "dh diverged");
        }
        for (a, b) in datt_f.iter().zip(&datt_u) {
            assert_eq!(a.to_bits(), b.to_bits(), "datt diverged");
        }
    }

    #[test]
    fn segment_sum_backward_large_matches_serial_path() {
        // Cross the parallel-backward threshold and check against the
        // analytically known gradient (each input row gets its segment's
        // gradient row — all ones under sum_all).
        let rows = 6000;
        let cols = 4;
        let mut t = Tape::new();
        let x = t.leaf(Matrix::filled(rows, cols, 0.5));
        let seg: Vec<usize> = (0..rows).map(|r| r % 7).collect();
        let y = t.segment_sum(x, Arc::new(seg), 7);
        let loss = t.sum_all(y);
        t.backward(loss);
        let g = t.grad(x).unwrap();
        assert_eq!(g.shape(), (rows, cols));
        assert!(g.as_slice().iter().all(|&v| v == 1.0));
    }

    #[test]
    fn gather_rows_arc_shares_indices_and_matches_slice_gather() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]));
        let idx = Arc::new(vec![2usize, 0, 2]);
        let a = t.gather_rows_arc(x, Arc::clone(&idx));
        let b = t.gather_rows(x, &idx);
        assert_eq!(t.value(a).as_slice(), t.value(b).as_slice());
        let loss = t.sum_all(a);
        t.backward(loss);
        // Row 2 gathered twice, row 0 once, row 1 never.
        assert_eq!(t.grad(x).unwrap().as_slice(), &[1., 1., 0., 0., 2., 2.]);
    }

    #[test]
    fn dropout_identity_at_keep_one() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::filled(2, 2, 3.0));
        let mut rng = facility_linalg::seeded_rng(0);
        let y = t.dropout(x, 1.0, &mut rng);
        assert_eq!(y, x, "keep_prob=1 must be the identity (no node added)");
    }

    #[test]
    fn dropout_mask_zeroes_and_scales() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_vec(1, 4, vec![1., 2., 3., 4.]));
        let mask = Arc::new(vec![2.0, 0.0, 2.0, 0.0]);
        let y = t.dropout_with_mask(x, Arc::clone(&mask));
        assert_eq!(t.value(y).as_slice(), &[2., 0., 6., 0.]);
        let loss = t.sum_all(y);
        t.backward(loss);
        assert_eq!(t.grad(x).unwrap().as_slice(), &[2., 0., 2., 0.]);
    }

    #[test]
    fn concat_cols_splits_gradient() {
        let mut t = Tape::new();
        let a = t.leaf(Matrix::filled(2, 2, 1.0));
        let b = t.leaf(Matrix::filled(2, 3, 1.0));
        let c = t.concat_cols(a, b);
        assert_eq!(t.value(c).shape(), (2, 5));
        let s = t.sum_all(c);
        t.backward(s);
        assert_eq!(t.grad(a).unwrap().shape(), (2, 2));
        assert_eq!(t.grad(b).unwrap().shape(), (2, 3));
        assert!(t.grad(a).unwrap().as_slice().iter().all(|&x| x == 1.0));
    }

    #[test]
    fn diamond_reuse_accumulates() {
        // y = x + x → dy/dx = 2
        let mut t = Tape::new();
        let x = t.leaf(Matrix::filled(1, 1, 3.0));
        let y = t.add(x, x);
        t.backward(y);
        assert_eq!(t.grad(x).unwrap()[(0, 0)], 2.0);
    }

    #[test]
    fn unused_leaf_has_no_grad() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::filled(1, 1, 3.0));
        let y = t.leaf(Matrix::filled(1, 1, 4.0));
        let loss = t.frobenius_sq(x);
        t.backward(loss);
        assert!(t.grad(x).is_some());
        assert!(t.grad(y).is_none());
    }

    #[test]
    #[should_panic(expected = "root must be a 1x1 scalar")]
    fn backward_rejects_non_scalar_root() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::filled(2, 2, 1.0));
        t.backward(x);
    }

    #[test]
    fn gather_leaf_forward_matches_gather_rows() {
        let src = Matrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        let mut t = Tape::new();
        let on_tape = t.leaf(src.clone());
        let dense = t.gather_rows(on_tape, &[2, 0, 2]);
        let sparse = t.gather_leaf(&src, Arc::new(vec![2, 0, 2]));
        assert_eq!(t.value(dense).as_slice(), t.value(sparse).as_slice());
    }

    #[test]
    fn take_sparse_grad_folds_duplicates_bitwise_like_dense_scatter() {
        let src = Matrix::from_vec(4, 2, vec![1., 2., 3., 4., 5., 6., 7., 8.]);
        let idx = vec![3usize, 1, 3, 3, 0];
        // Dense reference: leaf + gather_rows.
        let mut td = Tape::new();
        let leaf = td.leaf(src.clone());
        let gd = td.gather_rows(leaf, &idx);
        let wd =
            td.constant(Matrix::from_vec(5, 2, vec![1., -1., 2., 0.5, 3., 3., -4., 0.25, 7., 9.]));
        let pd = td.mul(gd, wd);
        let ld = td.sum_all(pd);
        td.backward(ld);
        let dense = td.take_grad(leaf).expect("dense grad");
        // Sparse path: gather_leaf + take_sparse_grad.
        let mut ts = Tape::new();
        let gs = ts.gather_leaf(&src, Arc::new(idx));
        let ws =
            ts.constant(Matrix::from_vec(5, 2, vec![1., -1., 2., 0.5, 3., 3., -4., 0.25, 7., 9.]));
        let ps = ts.mul(gs, ws);
        let ls = ts.sum_all(ps);
        ts.backward(ls);
        let sparse = ts.take_sparse_grad(gs).expect("sparse grad");
        assert_eq!(sparse.n_rows, 4);
        assert_eq!(sparse.rows, vec![0, 1, 3], "unique touched rows, sorted by fold");
        let densified = sparse.to_dense();
        for (a, b) in dense.as_slice().iter().zip(densified.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits(), "fold must match dense scatter bitwise");
        }
    }

    #[test]
    fn take_sparse_grad_unique_indices_skips_the_fold() {
        let src = Matrix::from_vec(5, 2, vec![0.; 10]);
        let mut t = Tape::new();
        let g = t.gather_leaf(&src, Arc::new(vec![1, 3, 4]));
        let s = t.sum_all(g);
        t.backward(s);
        let sg = t.take_sparse_grad(g).expect("participated");
        assert_eq!(sg.rows, vec![1, 3, 4]);
        assert_eq!(sg.values.shape(), (3, 2));
        assert!(sg.values.as_slice().iter().all(|&x| x == 1.0));
    }

    #[test]
    fn take_sparse_grad_is_none_for_unreached_node() {
        let src = Matrix::from_vec(2, 2, vec![0.; 4]);
        let mut t = Tape::new();
        let unused = t.gather_leaf(&src, Arc::new(vec![0]));
        let x = t.leaf(Matrix::filled(1, 1, 2.0));
        let loss = t.frobenius_sq(x);
        t.backward(loss);
        assert!(t.take_sparse_grad(unused).is_none());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn gather_leaf_rejects_out_of_bounds() {
        let src = Matrix::from_vec(2, 2, vec![0.; 4]);
        let mut t = Tape::new();
        t.gather_leaf(&src, Arc::new(vec![2]));
    }

    #[test]
    fn log_sigmoid_grad_is_sigmoid_of_neg() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_vec(1, 3, vec![-2.0, 0.0, 2.0]));
        let y = t.log_sigmoid(x);
        let loss = t.sum_all(y);
        t.backward(loss);
        let g = t.grad(x).unwrap();
        for (i, &xv) in [-2.0f32, 0.0, 2.0].iter().enumerate() {
            assert!((g[(0, i)] - ops::sigmoid(-xv)).abs() < 1e-6);
        }
    }
}
