#![warn(missing_docs)]

//! # facility-autograd
//!
//! A tape-based reverse-mode automatic differentiation engine over
//! [`facility_linalg::Matrix`], purpose-built for the graph neural network
//! recommenders in this workspace.
//!
//! ## Why a from-scratch engine?
//!
//! The paper implements CKAT in TensorFlow. The Rust GNN ecosystem is thin,
//! so this crate provides the minimal differentiable-op set the paper's
//! models need — and nothing else:
//!
//! * dense products ([`Tape::matmul`], [`Tape::matmul_transpose_b`]),
//! * embedding lookup with scatter-add backward ([`Tape::gather_rows`]),
//!   and its row-sparse sibling [`Tape::gather_leaf`] /
//!   [`Tape::take_sparse_grad`], which backpropagates into only the
//!   touched rows of a [`ParamStore`] matrix (see [`optim::SparseRowGrad`]
//!   and lazy [`Adam`]),
//! * **segment ops** for message passing over a CSR graph
//!   ([`Tape::segment_softmax`], [`Tape::segment_sum`]) — these implement
//!   the knowledge-aware attention normalization (paper Eq. 5) and the
//!   neighborhood aggregation (Eq. 3),
//! * activations, broadcasting, concatenation, dropout, and the loss
//!   heads used by BPR (Eq. 12) and TransR (Eq. 2).
//!
//! ## Programming model
//!
//! A [`Tape`] is built fresh for every training step. Leaves are cloned in
//! from a [`ParamStore`]; ops record themselves on the tape; calling
//! [`Tape::backward`] on a scalar (`1×1`) output fills per-node gradients,
//! which the caller feeds to an [`optim`] optimizer.
//!
//! ```
//! use facility_autograd::{Tape, optim::{ParamStore, Adam}};
//! use facility_linalg::{Matrix, seeded_rng, init};
//!
//! let mut rng = seeded_rng(0);
//! let mut store = ParamStore::new();
//! let w = store.add("w", init::xavier_uniform(4, 1, &mut rng));
//!
//! let mut adam = Adam::default_for(&store, 0.1);
//! for _ in 0..100 {
//!     let mut tape = Tape::new();
//!     let wv = tape.leaf(store.value(w).clone());
//!     // Minimize ||w||² — drives w to zero.
//!     let loss = tape.frobenius_sq(wv);
//!     tape.backward(loss);
//!     store.apply(&mut adam, &[(w, tape.grad(wv).unwrap().clone().into())]);
//! }
//! assert!(store.value(w).max_abs() < 1e-2);
//! ```
//!
//! Correctness is enforced by numerical gradient checking (see
//! [`gradcheck`]) in the unit and property test suites.

pub mod gradcheck;
pub mod optim;
pub mod tape;

pub use optim::{
    fold_grads_ordered, Adam, AdamState, Grad, Optimizer, ParamId, ParamStore, Sgd, SparseRowGrad,
};
pub use tape::{Tape, Var};
