//! Corruption tests for the `debug-audit` runtime checkers: break a tape
//! or sparse gradient on purpose and assert the checker panics with a
//! message that names the problem.
//!
//! Run with `cargo test -p facility-autograd --features debug-audit`.

#![cfg(feature = "debug-audit")]

use facility_autograd::{SparseRowGrad, Tape};
use facility_linalg::Matrix;
use std::sync::Arc;

fn catch(f: impl FnOnce() + std::panic::UnwindSafe) -> String {
    let err = std::panic::catch_unwind(f).expect_err("checker must panic");
    err.downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default()
}

#[test]
fn clean_tape_passes_and_backward_runs_the_audit() {
    let mut t = Tape::new();
    let x = t.leaf(Matrix::from_vec(2, 3, vec![1.0; 6]));
    let y = t.leaf(Matrix::from_vec(3, 2, vec![0.5; 6]));
    let z = t.matmul(x, y);
    let loss = t.sum_all(z);
    t.audit_invariants();
    t.backward(loss); // runs the audit internally under debug-audit
    assert!(t.grad(x).is_some());
}

#[test]
fn corrupted_shape_is_caught_with_node_id() {
    let mut t = Tape::new();
    let x = t.leaf(Matrix::from_vec(2, 3, vec![1.0; 6]));
    let y = t.leaf(Matrix::from_vec(3, 2, vec![0.5; 6]));
    let z = t.matmul(x, y);
    let _loss = t.sum_all(z);
    // Shrink the matmul output behind the tape's back.
    t.debug_replace_value_for_test(z, Matrix::from_vec(1, 1, vec![0.0]));
    let msg = catch(move || t.audit_invariants());
    assert!(msg.contains("MatMul output shape mismatch"), "unhelpful panic: {msg}");
    assert!(msg.contains(&format!("node {}", z.index())), "panic must name the node: {msg}");
}

#[test]
fn gather_index_out_of_bounds_is_caught() {
    let mut t = Tape::new();
    let src = Matrix::from_vec(4, 2, vec![1.0; 8]);
    let g = t.gather_leaf(&src, Arc::new(vec![0, 3, 1]));
    // Swap the gathered value for one whose row count disagrees with the
    // recorded indices.
    t.debug_replace_value_for_test(g, Matrix::from_vec(2, 2, vec![0.0; 4]));
    let msg = catch(move || t.audit_invariants());
    assert!(msg.contains("ParamGather row count != index count"), "unhelpful panic: {msg}");
}

#[test]
fn duplicate_sparse_rows_are_caught() {
    let sg = SparseRowGrad {
        n_rows: 10,
        rows: vec![2, 5, 2],
        values: Matrix::from_vec(3, 4, vec![1.0; 12]),
    };
    let msg = catch(move || sg.validate("test"));
    assert!(msg.contains("not unique"), "unhelpful panic: {msg}");
}

#[test]
fn out_of_bounds_sparse_row_is_caught() {
    let sg =
        SparseRowGrad { n_rows: 4, rows: vec![1, 7], values: Matrix::from_vec(2, 3, vec![1.0; 6]) };
    let msg = catch(move || sg.validate("test"));
    assert!(msg.contains("out of bounds"), "unhelpful panic: {msg}");
}

#[test]
fn row_value_count_mismatch_is_caught() {
    let sg = SparseRowGrad {
        n_rows: 8,
        rows: vec![0, 1, 2],
        values: Matrix::from_vec(2, 3, vec![1.0; 6]),
    };
    let msg = catch(move || sg.validate("test"));
    assert!(msg.contains("value rows"), "unhelpful panic: {msg}");
}

#[test]
fn unsorted_fold_output_contract_is_checked() {
    let sg =
        SparseRowGrad { n_rows: 8, rows: vec![3, 1], values: Matrix::from_vec(2, 2, vec![1.0; 4]) };
    let msg = catch(move || sg.validate_sorted("test"));
    assert!(msg.contains("not sorted"), "unhelpful panic: {msg}");
}

#[test]
fn fold_ordered_validates_inputs_under_debug_audit() {
    let bad =
        SparseRowGrad { n_rows: 6, rows: vec![0, 0], values: Matrix::from_vec(2, 2, vec![1.0; 4]) };
    let msg = catch(move || {
        let _ = SparseRowGrad::fold_ordered(&[&bad]);
    });
    assert!(msg.contains("fold_ordered input"), "unhelpful panic: {msg}");
}
