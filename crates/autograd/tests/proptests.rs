//! Property-based tests: the custom graph ops must satisfy their gradient
//! definitions for *arbitrary* segment structures and index patterns, not
//! just the hand-picked ones in `gradcheck_ops`.

use facility_autograd::gradcheck::check_gradient;
use facility_autograd::Tape;
use facility_linalg::Matrix;
use proptest::prelude::*;
use std::sync::Arc;

const EPS: f32 = 5e-3;
const TOL: f32 = 3e-2;

/// Random gather indices into an `n`-row source.
fn indices_strategy(n: usize, len: usize) -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(0..n, len)
}

/// Random CSR-style offsets covering exactly `n` rows (allows empty
/// segments at any position).
fn offsets_strategy(n: usize) -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(0..=n, 0..6).prop_map(move |mut cuts| {
        cuts.push(0);
        cuts.push(n);
        cuts.sort_unstable();
        cuts
    })
}

fn values(n: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-1.0f32..1.0, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn gather_gradient_matches_numeric(
        data in values(5 * 3),
        idx in indices_strategy(5, 7),
    ) {
        let at = Matrix::from_vec(5, 3, data);
        let build = move |t: &mut Tape, x| {
            let g = t.gather_rows(x, &idx);
            t.frobenius_sq(g)
        };
        run_check("gather", at, build)?;
    }

    #[test]
    fn segment_softmax_gradient_matches_numeric(
        data in values(8),
        weights in values(8),
        offsets in offsets_strategy(8),
    ) {
        let at = Matrix::from_vec(8, 1, data);
        let offsets = Arc::new(offsets);
        let w = Matrix::from_vec(8, 1, weights);
        let build = move |t: &mut Tape, x| {
            let y = t.segment_softmax(x, Arc::clone(&offsets));
            let wv = t.constant(w.clone());
            let yw = t.mul(y, wv);
            let s = t.sum_all(yw);
            t.mul(s, s)
        };
        run_check("segment_softmax", at, build)?;
    }

    #[test]
    fn segment_sum_gradient_matches_numeric(
        data in values(6 * 2),
        segs in prop::collection::vec(0usize..4, 6),
    ) {
        let at = Matrix::from_vec(6, 2, data);
        let segs = Arc::new(segs);
        let build = move |t: &mut Tape, x| {
            let y = t.segment_sum(x, Arc::clone(&segs), 4);
            t.frobenius_sq(y)
        };
        run_check("segment_sum", at, build)?;
    }

    #[test]
    fn segment_sum_preserves_total_mass(
        data in values(10 * 3),
        segs in prop::collection::vec(0usize..5, 10),
    ) {
        let at = Matrix::from_vec(10, 3, data);
        let mut t = Tape::new();
        let x = t.leaf(at.clone());
        let y = t.segment_sum(x, Arc::new(segs), 5);
        // Scatter-sum never creates or destroys mass.
        prop_assert!((t.value(y).sum() - at.sum()).abs() < 1e-3);
    }

    #[test]
    fn segment_softmax_rows_form_distributions(
        data in values(9),
        offsets in offsets_strategy(9),
    ) {
        let at = Matrix::from_vec(9, 1, data);
        let mut t = Tape::new();
        let x = t.leaf(at);
        let offsets = Arc::new(offsets);
        let y = t.segment_softmax(x, Arc::clone(&offsets));
        let yv = t.value(y);
        for w in offsets.windows(2) {
            if w[1] > w[0] {
                let sum: f32 = (w[0]..w[1]).map(|r| yv[(r, 0)]).sum();
                prop_assert!((sum - 1.0).abs() < 1e-4);
            }
        }
    }
}

fn run_check(
    name: &str,
    at: Matrix,
    build: impl Fn(&mut Tape, facility_autograd::Var) -> facility_autograd::Var,
) -> Result<(), TestCaseError> {
    let mut t = Tape::new();
    let x = t.leaf(at.clone());
    let loss = build(&mut t, x);
    t.backward(loss);
    let analytic = t.grad(x).expect("participates").clone();
    let mut f = |m: &Matrix| {
        let mut t = Tape::new();
        let x = t.leaf(m.clone());
        let loss = build(&mut t, x);
        t.value(loss)[(0, 0)]
    };
    let report = check_gradient(&mut f, &at, &analytic, EPS);
    prop_assert!(report.passes(TOL), "{name}: {report:?}");
    Ok(())
}
