//! Numerical gradient checks for every differentiable op on the tape.
//!
//! Each case builds the same scalar computation twice: once on a tape (for
//! the analytic gradient) and once as a plain closure (for central
//! differences). `f32` arithmetic limits precision, so inputs are kept in a
//! moderate range and the tolerance is 2e-2 on a scale-aware error metric.

use facility_autograd::gradcheck::check_gradient;
use facility_autograd::Tape;
use facility_linalg::{init, seeded_rng, Matrix};
use std::sync::Arc;

const EPS: f32 = 5e-3;
const TOL: f32 = 2e-2;

/// Run a gradient check for a scalar function expressed as a tape program
/// with a single differentiable leaf.
fn check(
    name: &str,
    at: Matrix,
    build: impl Fn(&mut Tape, facility_autograd::Var) -> facility_autograd::Var,
) {
    // Analytic gradient.
    let mut t = Tape::new();
    let x = t.leaf(at.clone());
    let loss = build(&mut t, x);
    assert_eq!(t.value(loss).shape(), (1, 1), "{name}: loss must be scalar");
    t.backward(loss);
    let analytic = t.grad(x).expect("leaf participates").clone();

    // Numerical gradient.
    let mut f = |m: &Matrix| {
        let mut t = Tape::new();
        let x = t.leaf(m.clone());
        let loss = build(&mut t, x);
        t.value(loss)[(0, 0)]
    };
    let report = check_gradient(&mut f, &at, &analytic, EPS);
    assert!(
        report.passes(TOL),
        "{name}: gradcheck failed: {report:?} (analytic {} vs numeric {})",
        report.analytic,
        report.numeric
    );
}

fn sample(rows: usize, cols: usize, seed: u64) -> Matrix {
    init::uniform(rows, cols, -1.0, 1.0, &mut seeded_rng(seed))
}

#[test]
fn grad_scale_add_scalar() {
    check("scale+add_scalar", sample(3, 4, 1), |t, x| {
        let y = t.scale(x, 1.7);
        let z = t.add_scalar(y, 0.3);
        t.frobenius_sq(z)
    });
}

#[test]
fn grad_add_sub_mul() {
    let c = sample(3, 4, 2);
    check("add/sub/mul", sample(3, 4, 3), move |t, x| {
        let cv = t.constant(c.clone());
        let a = t.add(x, cv);
        let b = t.sub(a, x);
        let m = t.mul(a, b);
        t.sum_all(m)
    });
}

#[test]
fn grad_matmul_left_and_right() {
    let c = sample(4, 3, 4);
    check("matmul left", sample(2, 4, 5), {
        let c = c.clone();
        move |t, x| {
            let cv = t.constant(c.clone());
            let y = t.matmul(x, cv);
            t.frobenius_sq(y)
        }
    });
    check("matmul right", sample(3, 2, 6), move |t, x| {
        let cv = t.constant(c.clone());
        let y = t.matmul(cv, x);
        t.frobenius_sq(y)
    });
}

#[test]
fn grad_matmul_transpose_b() {
    let c = sample(5, 4, 7);
    check("matmul_transpose_b left", sample(3, 4, 8), {
        let c = c.clone();
        move |t, x| {
            let cv = t.constant(c.clone());
            let y = t.matmul_transpose_b(x, cv);
            t.frobenius_sq(y)
        }
    });
    check("matmul_transpose_b right", sample(5, 4, 9), move |t, x| {
        let a = sample(3, 4, 10);
        let av = t.constant(a);
        let y = t.matmul_transpose_b(av, x);
        t.frobenius_sq(y)
    });
}

#[test]
fn grad_gather_rows() {
    check("gather", sample(5, 3, 11), |t, x| {
        let g = t.gather_rows(x, &[0, 4, 2, 0, 0]);
        let sq = t.mul(g, g);
        t.sum_all(sq)
    });
}

#[test]
fn grad_broadcasts() {
    let bias = sample(1, 4, 12);
    check("add_broadcast_row input", sample(3, 4, 13), {
        let bias = bias.clone();
        move |t, x| {
            let bv = t.constant(bias.clone());
            let y = t.add_broadcast_row(x, bv);
            let sq = t.mul(y, y);
            t.sum_all(sq)
        }
    });
    check("add_broadcast_row bias", bias, move |t, x| {
        let a = sample(3, 4, 14);
        let av = t.constant(a);
        let y = t.add_broadcast_row(av, x);
        let sq = t.mul(y, y);
        t.sum_all(sq)
    });
}

#[test]
fn grad_mul_broadcast_col() {
    let w = sample(3, 1, 15);
    check("mul_broadcast_col input", sample(3, 4, 16), {
        let w = w.clone();
        move |t, x| {
            let wv = t.constant(w.clone());
            let y = t.mul_broadcast_col(x, wv);
            t.frobenius_sq(y)
        }
    });
    check("mul_broadcast_col weights", w, move |t, x| {
        let a = sample(3, 4, 17);
        let av = t.constant(a);
        let y = t.mul_broadcast_col(av, x);
        t.frobenius_sq(y)
    });
}

#[test]
fn grad_concats() {
    let c = sample(3, 2, 18);
    check("concat_cols", sample(3, 4, 19), {
        let c = c.clone();
        move |t, x| {
            let cv = t.constant(c.clone());
            let y = t.concat_cols(x, cv);
            t.frobenius_sq(y)
        }
    });
    check("concat_rows", sample(2, 2, 20), move |t, x| {
        let cv = t.constant(c.clone());
        let y = t.concat_rows(cv, x);
        t.frobenius_sq(y)
    });
}

#[test]
fn grad_activations() {
    // Keep inputs away from the ReLU kinks where finite differences lie.
    let mut at = sample(3, 4, 21);
    at.map_assign(|x| if x.abs() < 0.15 { x + 0.3 } else { x });
    check("leaky_relu", at.clone(), |t, x| {
        let y = t.leaky_relu(x);
        t.frobenius_sq(y)
    });
    check("relu", at.clone(), |t, x| {
        let y = t.relu(x);
        t.frobenius_sq(y)
    });
    check("tanh", sample(3, 4, 22), |t, x| {
        let y = t.tanh(x);
        t.frobenius_sq(y)
    });
    check("sigmoid", sample(3, 4, 23), |t, x| {
        let y = t.sigmoid(x);
        t.frobenius_sq(y)
    });
    check("log_sigmoid", sample(3, 4, 24), |t, x| {
        let y = t.log_sigmoid(x);
        let s = t.sum_all(y);
        // Square to exercise a chain above the loss head.
        t.mul(s, s)
    });
}

#[test]
fn grad_rowwise_ops() {
    let c = sample(4, 3, 25);
    check("rowwise_dot left", sample(4, 3, 26), {
        let c = c.clone();
        move |t, x| {
            let cv = t.constant(c.clone());
            let y = t.rowwise_dot(x, cv);
            t.frobenius_sq(y)
        }
    });
    check("rowwise_dot right", sample(4, 3, 27), move |t, x| {
        let cv = t.constant(c.clone());
        let y = t.rowwise_dot(cv, x);
        t.frobenius_sq(y)
    });
    check("rowwise_norm_sq", sample(4, 3, 28), |t, x| {
        let y = t.rowwise_norm_sq(x);
        t.sum_all(y)
    });
}

#[test]
fn grad_segment_softmax() {
    let offsets = Arc::new(vec![0usize, 3, 3, 7]); // includes an empty segment
    let weights = sample(7, 1, 29);
    check("segment_softmax", sample(7, 1, 30), move |t, x| {
        let y = t.segment_softmax(x, Arc::clone(&offsets));
        let wv = t.constant(weights.clone());
        let yw = t.mul(y, wv);
        let s = t.sum_all(yw);
        t.mul(s, s)
    });
}

#[test]
fn grad_segment_sum() {
    let seg = Arc::new(vec![2usize, 0, 2, 1, 0]);
    check("segment_sum", sample(5, 3, 31), move |t, x| {
        let y = t.segment_sum(x, Arc::clone(&seg), 3);
        t.frobenius_sq(y)
    });
}

#[test]
fn grad_dropout_fixed_mask() {
    let mask = Arc::new(vec![2.0f32, 0.0, 2.0, 0.0, 2.0, 2.0, 0.0, 2.0, 0.0, 2.0, 2.0, 0.0]);
    check("dropout", sample(3, 4, 32), move |t, x| {
        let y = t.dropout_with_mask(x, Arc::clone(&mask));
        t.frobenius_sq(y)
    });
}

#[test]
fn grad_normalize_rows() {
    // Keep rows away from zero so the ε-clamp (non-differentiable point)
    // is not exercised by finite differences.
    let mut at = sample(4, 3, 40);
    at.map_assign(|x| x + if x >= 0.0 { 0.5 } else { -0.5 });
    let w = sample(4, 3, 41);
    check("normalize_rows", at, move |t, x| {
        let y = t.normalize_rows(x);
        let wv = t.constant(w.clone());
        let yw = t.mul(y, wv);
        let s = t.sum_all(yw);
        t.mul(s, s)
    });
}

#[test]
fn normalize_rows_output_has_unit_norm() {
    let mut t = Tape::new();
    let x = t.leaf(sample(5, 4, 42));
    let y = t.normalize_rows(x);
    for r in 0..5 {
        let n: f32 = t.value(y).row(r).iter().map(|v| v * v).sum();
        assert!((n - 1.0).abs() < 1e-5, "row {r} norm² {n}");
    }
}

#[test]
fn grad_mean_all() {
    check("mean_all", sample(3, 4, 33), |t, x| {
        let m = t.mean_all(x);
        t.mul(m, m)
    });
}

/// End-to-end composite: a miniature one-layer attentive propagation +
/// BPR-style loss, exactly the computation pattern CKAT uses.
#[test]
fn grad_mini_gnn_composite() {
    // 4 entities, 6 edges sorted by head, embedding dim 3.
    let heads = vec![0usize, 0, 1, 2, 2, 3];
    let tails = vec![1usize, 2, 3, 0, 3, 1];
    let offsets = Arc::new(vec![0usize, 2, 3, 5, 6]);
    let seg_of_edge = Arc::new(heads.clone());
    let w = sample(6, 3, 34); // aggregation weight (2d -> d), d=3

    check("mini-gnn", sample(4, 3, 36), move |t, x| {
        // Attention: score(e) = (e_t · e_h) per edge, softmax per head.
        let eh = t.gather_rows(x, &heads);
        let et = t.gather_rows(x, &tails);
        let th = t.tanh(eh);
        let score = t.rowwise_dot(et, th);
        let att = t.segment_softmax(score, Arc::clone(&offsets));
        // Message: attention-weighted tails, summed per head.
        let msg = t.mul_broadcast_col(et, att);
        let agg = t.segment_sum(msg, Arc::clone(&seg_of_edge), 4);
        // Concat aggregate with self, linear transform, LeakyReLU.
        let cat = t.concat_cols(x, agg);
        let wv = t.constant(w.clone());
        let hidden = t.matmul(cat, wv);
        let h = t.leaky_relu(hidden);
        // BPR-ish pairwise loss between entity 0 (pos) and entity 1 (neg)
        // against user entity 2.
        let u = t.gather_rows(h, &[2]);
        let pos = t.gather_rows(h, &[0]);
        let neg = t.gather_rows(h, &[1]);
        let spos = t.rowwise_dot(u, pos);
        let sneg = t.rowwise_dot(u, neg);
        let diff = t.sub(spos, sneg);
        let ls = t.log_sigmoid(diff);
        let nls = t.scale(ls, -1.0);
        t.sum_all(nls)
    });
}
