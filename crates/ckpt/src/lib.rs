#![warn(missing_docs)]

//! # facility-ckpt
//!
//! Versioned, CRC-checked binary snapshots for fault-tolerant training.
//!
//! A checkpoint file is a small envelope around an opaque payload:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"FKCK"
//! 4       1     format version (current: 4)
//! 5       4     CRC-32 (IEEE) of the payload, little-endian
//! 9       8     payload length in bytes, little-endian
//! 17      n     payload
//! ```
//!
//! [`save_bytes`] writes the envelope *atomically*: the file is first
//! written to `<path>.tmp` in the same directory and then renamed over
//! `<path>`, so a crash mid-write can never leave a torn checkpoint under
//! the final name. [`load_bytes`] rejects bad magic, unknown versions,
//! truncation, and checksum mismatches with a typed [`CkptError`] —
//! corruption is always a clean error, never UB or silently wrong
//! parameters.
//!
//! Payloads are built with the little-endian [`Writer`]/[`Reader`] pair.
//! `f32`/`f64` values round-trip through their IEEE bit patterns, so a
//! restore is bitwise exact. [`ModelState`] captures everything a model
//! needs to resume training mid-run: every named parameter matrix of its
//! [`ParamStore`] plus the full Adam state (learning rate, moment
//! estimates, per-slot step counts, and — since format v2 — the per-row
//! step counters of lazily-updated embedding slots).

use facility_autograd::{Adam, AdamState, ParamStore};
use facility_linalg::Matrix;
use std::fs;
use std::io;
use std::path::Path;

/// Magic bytes at the start of every checkpoint file.
pub const MAGIC: [u8; 4] = *b"FKCK";

/// Current checkpoint format version. Readers reject anything else.
/// Version history: 1 — initial; 2 — per-row lazy-Adam step counters
/// appended to each optimizer slot; 3 — replica count stamped into the
/// trainer checkpoint and pool accounting fields (`reduce_ns`,
/// `wall_ns`, `replicas`) appended to each epoch profile; 4 — split
/// extraction attribution (`extract_wall_ns`) and the hub-cache refresh
/// time (`hub_cache_ns`) appended to each epoch profile.
pub const FORMAT_VERSION: u8 = 4;

const HEADER_LEN: usize = 4 + 1 + 4 + 8;

/// Errors raised while writing, reading, or applying checkpoints.
#[derive(Debug)]
pub enum CkptError {
    /// Filesystem failure.
    Io(io::Error),
    /// Structurally invalid file: bad magic, truncation, garbage lengths.
    Format(String),
    /// The file declares a format version this build does not understand.
    Version(u8),
    /// Payload bytes do not match the stored CRC-32.
    Checksum {
        /// CRC recorded in the header.
        expected: u32,
        /// CRC of the payload actually read.
        actual: u32,
    },
    /// The checkpoint is well-formed but does not fit the target
    /// (wrong model, parameter name/shape mismatch, wrong seed, …).
    Mismatch(String),
}

impl std::fmt::Display for CkptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CkptError::Io(e) => write!(f, "checkpoint io error: {e}"),
            CkptError::Format(msg) => write!(f, "corrupt checkpoint: {msg}"),
            CkptError::Version(v) => {
                write!(f, "unsupported checkpoint version {v} (this build reads {FORMAT_VERSION})")
            }
            CkptError::Checksum { expected, actual } => write!(
                f,
                "checkpoint checksum mismatch: header says {expected:#010x}, payload is {actual:#010x}"
            ),
            CkptError::Mismatch(msg) => write!(f, "checkpoint does not fit: {msg}"),
        }
    }
}

impl std::error::Error for CkptError {}

impl From<io::Error> for CkptError {
    fn from(e: io::Error) -> Self {
        CkptError::Io(e)
    }
}

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
                k += 1;
            }
            // audit: unwrap — const-eval loop bounded to the 256-entry table.
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        // audit: unwrap — index masked with & 0xFF into the 256-entry table.
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Write `payload` to `path` inside the versioned, CRC-checked envelope,
/// atomically (tmp file + rename — a torn file can never appear under
/// `path`).
pub fn save_bytes(path: &Path, payload: &[u8]) -> Result<(), CkptError> {
    let mut file = Vec::with_capacity(HEADER_LEN + payload.len());
    file.extend_from_slice(&MAGIC);
    file.push(FORMAT_VERSION);
    file.extend_from_slice(&crc32(payload).to_le_bytes());
    file.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    file.extend_from_slice(payload);
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, &file)?;
    fs::rename(&tmp, path)?;
    Ok(())
}

/// Read and validate an envelope written by [`save_bytes`], returning the
/// payload.
pub fn load_bytes(path: &Path) -> Result<Vec<u8>, CkptError> {
    let file = fs::read(path)?;
    if file.len() < HEADER_LEN {
        return Err(CkptError::Format(format!(
            "file is {} bytes, shorter than the {HEADER_LEN}-byte header",
            file.len()
        )));
    }
    // Parse the header through the length-checked Reader so a malformed
    // file is always a typed error, never a slicing panic.
    let mut hdr = Reader::new(&file);
    let magic: [u8; 4] = hdr.take_array()?;
    if magic != MAGIC {
        return Err(CkptError::Format("bad magic (not a facility checkpoint)".into()));
    }
    let version = hdr.get_u8()?;
    if version != FORMAT_VERSION {
        return Err(CkptError::Version(version));
    }
    let expected = hdr.get_u32()?;
    let len = hdr.get_u64()? as usize;
    let payload = &file[HEADER_LEN..];
    if payload.len() != len {
        return Err(CkptError::Format(format!(
            "payload is {} bytes but header declares {len} (truncated?)",
            payload.len()
        )));
    }
    let actual = crc32(payload);
    if actual != expected {
        return Err(CkptError::Checksum { expected, actual });
    }
    Ok(payload.to_vec())
}

/// Little-endian payload builder. Floats are stored via their IEEE bit
/// patterns so round-trips are bitwise exact.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finish and take the payload bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f32` as its bit pattern.
    pub fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    /// Append an `f64` as its bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Append a matrix: rows, cols, then row-major `f32` data.
    pub fn put_matrix(&mut self, m: &Matrix) {
        self.put_u64(m.rows() as u64);
        self.put_u64(m.cols() as u64);
        for &x in m.as_slice() {
            self.put_f32(x);
        }
    }
}

/// Checked little-endian payload reader; every read fails cleanly on
/// truncation instead of panicking.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// True when every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// True when at least `n` more bytes remain (pre-validate a length
    /// field before allocating for it).
    pub fn fits(&self, n: usize) -> bool {
        self.pos.saturating_add(n) <= self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CkptError> {
        if self.pos + n > self.buf.len() {
            return Err(CkptError::Format(format!(
                "payload truncated: wanted {n} bytes at offset {}, only {} remain",
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        // audit: unwrap — range bounds checked by the guard just above.
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// [`Reader::take`] into a fixed-size array, with the length proven by
    /// construction — truncation is a typed error, never a panic.
    fn take_array<const N: usize>(&mut self) -> Result<[u8; N], CkptError> {
        let s = self.take(N)?;
        let mut out = [0u8; N];
        out.copy_from_slice(s);
        Ok(out)
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8, CkptError> {
        Ok(self.take_array::<1>()?[0])
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CkptError> {
        Ok(u32::from_le_bytes(self.take_array()?))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CkptError> {
        Ok(u64::from_le_bytes(self.take_array()?))
    }

    /// Read an `f32` bit pattern.
    pub fn get_f32(&mut self) -> Result<f32, CkptError> {
        Ok(f32::from_bits(self.get_u32()?))
    }

    /// Read an `f64` bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, CkptError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, CkptError> {
        let len = self.get_u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| CkptError::Format("string field is not UTF-8".into()))
    }

    /// Read a matrix written by [`Writer::put_matrix`].
    pub fn get_matrix(&mut self) -> Result<Matrix, CkptError> {
        let rows = self.get_u64()? as usize;
        let cols = self.get_u64()? as usize;
        let n = rows
            .checked_mul(cols)
            .ok_or_else(|| CkptError::Format(format!("matrix dims {rows}x{cols} overflow")))?;
        if self.pos + n * 4 > self.buf.len() {
            return Err(CkptError::Format(format!(
                "matrix {rows}x{cols} does not fit the remaining payload"
            )));
        }
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            data.push(self.get_f32()?);
        }
        Ok(Matrix::from_vec(rows, cols, data))
    }
}

/// A complete trainable-state snapshot of one model: every named parameter
/// matrix plus the optimizer's Adam state (learning rate, first/second
/// moments, per-slot step counts).
///
/// Restoring a `ModelState` into a freshly constructed model (same config,
/// same world) reproduces the source model bitwise, which is what makes
/// interrupted-then-resumed training identical to an uninterrupted run.
#[derive(Clone, Default)]
pub struct ModelState {
    /// `(name, value)` per parameter, in [`ParamStore`] registration order.
    pub params: Vec<(String, Matrix)>,
    /// Full Adam optimizer state.
    pub adam: AdamState,
}

impl ModelState {
    /// Snapshot `store` and `adam`.
    pub fn capture(store: &ParamStore, adam: &Adam) -> Self {
        Self {
            params: store
                .iter()
                .map(|(_, name, value)| (name.to_string(), value.clone()))
                .collect(),
            adam: adam.export_state(),
        }
    }

    /// Restore this snapshot into `store` and `adam`.
    ///
    /// Fails with [`CkptError::Mismatch`] if the parameter names, count, or
    /// shapes differ from the snapshot — a checkpoint from a different
    /// model or configuration is rejected rather than half-applied (the
    /// target is only written once every check has passed).
    pub fn restore(&self, store: &mut ParamStore, adam: &mut Adam) -> Result<(), CkptError> {
        if self.params.len() != store.len() {
            return Err(CkptError::Mismatch(format!(
                "snapshot has {} parameters, model has {}",
                self.params.len(),
                store.len()
            )));
        }
        for ((name, value), (id, have_name, have_value)) in self.params.iter().zip(store.iter()) {
            let _ = id;
            if name != have_name {
                return Err(CkptError::Mismatch(format!(
                    "parameter name mismatch: snapshot `{name}`, model `{have_name}`"
                )));
            }
            if value.shape() != have_value.shape() {
                return Err(CkptError::Mismatch(format!(
                    "parameter `{name}` shape mismatch: snapshot {:?}, model {:?}",
                    value.shape(),
                    have_value.shape()
                )));
            }
        }
        let ids: Vec<_> = store.iter().map(|(id, _, _)| id).collect();
        for ((_, value), id) in self.params.iter().zip(ids) {
            *store.value_mut(id) = value.clone();
        }
        adam.import_state(&self.adam);
        Ok(())
    }

    /// True when every parameter scalar is finite (the divergence guard's
    /// health check).
    pub fn all_finite(&self) -> bool {
        self.params.iter().all(|(_, m)| m.as_slice().iter().all(|x| x.is_finite()))
    }

    /// Serialize into `w`.
    pub fn encode(&self, w: &mut Writer) {
        w.put_u32(self.params.len() as u32);
        for (name, value) in &self.params {
            w.put_str(name);
            w.put_matrix(value);
        }
        let a = &self.adam;
        w.put_f32(a.lr);
        w.put_f32(a.beta1);
        w.put_f32(a.beta2);
        w.put_f32(a.eps);
        match a.clip {
            Some(c) => {
                w.put_u8(1);
                w.put_f32(c);
            }
            None => w.put_u8(0),
        }
        w.put_u32(a.m.len() as u32);
        for i in 0..a.m.len() {
            // audit: unwrap — m/v/t are parallel arrays of equal length by construction.
            match (&a.m[i], &a.v[i]) {
                (Some(m), Some(v)) => {
                    w.put_u8(1);
                    w.put_matrix(m);
                    w.put_matrix(v);
                }
                _ => w.put_u8(0),
            }
            // audit: unwrap — m/v/t are parallel arrays of equal length by construction.
            w.put_u64(a.t[i]);
            // Format v2: per-row step counters for lazily-updated slots.
            match a.row_t.get(i).and_then(|r| r.as_ref()) {
                Some(rows) => {
                    w.put_u8(1);
                    w.put_u64(rows.len() as u64);
                    for &rt in rows {
                        w.put_u64(rt);
                    }
                }
                None => w.put_u8(0),
            }
        }
    }

    /// Deserialize a snapshot written by [`ModelState::encode`].
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        let n_params = r.get_u32()? as usize;
        let mut params = Vec::with_capacity(n_params);
        for _ in 0..n_params {
            let name = r.get_str()?;
            let value = r.get_matrix()?;
            params.push((name, value));
        }
        let lr = r.get_f32()?;
        let beta1 = r.get_f32()?;
        let beta2 = r.get_f32()?;
        let eps = r.get_f32()?;
        let clip = if r.get_u8()? == 1 { Some(r.get_f32()?) } else { None };
        let n_slots = r.get_u32()? as usize;
        let mut m = Vec::with_capacity(n_slots);
        let mut v = Vec::with_capacity(n_slots);
        let mut t = Vec::with_capacity(n_slots);
        let mut row_t = Vec::with_capacity(n_slots);
        for _ in 0..n_slots {
            if r.get_u8()? == 1 {
                m.push(Some(r.get_matrix()?));
                v.push(Some(r.get_matrix()?));
            } else {
                m.push(None);
                v.push(None);
            }
            t.push(r.get_u64()?);
            if r.get_u8()? == 1 {
                let n_rows = r.get_u64()? as usize;
                if !r.fits(n_rows.saturating_mul(8)) {
                    return Err(CkptError::Format(format!(
                        "row-counter list of {n_rows} entries does not fit the remaining payload"
                    )));
                }
                let mut rows = Vec::with_capacity(n_rows);
                for _ in 0..n_rows {
                    rows.push(r.get_u64()?);
                }
                row_t.push(Some(rows));
            } else {
                row_t.push(None);
            }
        }
        Ok(Self { params, adam: AdamState { lr, beta1, beta2, eps, clip, m, v, t, row_t } })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use facility_autograd::{Adam, Optimizer, ParamStore};

    fn tmpfile(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("facility-ckpt-{tag}-{}.fkc", std::process::id()))
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn envelope_roundtrip() {
        let path = tmpfile("roundtrip");
        save_bytes(&path, b"hello checkpoint").unwrap();
        assert_eq!(load_bytes(&path).unwrap(), b"hello checkpoint");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn flipped_payload_byte_is_a_checksum_error() {
        let path = tmpfile("flip");
        save_bytes(&path, b"parameters").unwrap();
        let mut raw = std::fs::read(&path).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0x40;
        std::fs::write(&path, &raw).unwrap();
        assert!(matches!(load_bytes(&path), Err(CkptError::Checksum { .. })));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncated_file_is_a_format_error() {
        let path = tmpfile("trunc");
        save_bytes(&path, &[7u8; 64]).unwrap();
        let raw = std::fs::read(&path).unwrap();
        std::fs::write(&path, &raw[..raw.len() - 10]).unwrap();
        assert!(matches!(load_bytes(&path), Err(CkptError::Format(_))));
        // Shorter than the header too.
        std::fs::write(&path, &raw[..8]).unwrap();
        assert!(matches!(load_bytes(&path), Err(CkptError::Format(_))));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn flipped_crc_header_byte_is_a_checksum_error() {
        // Corrupt the *stored* CRC (header bytes 5..9) rather than the
        // payload: the recomputed payload CRC no longer matches it.
        let path = tmpfile("crcflip");
        save_bytes(&path, b"well-formed payload").unwrap();
        let mut raw = std::fs::read(&path).unwrap();
        raw[6] ^= 0x01;
        std::fs::write(&path, &raw).unwrap();
        assert!(matches!(load_bytes(&path), Err(CkptError::Checksum { .. })));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn garbage_length_field_is_a_format_error() {
        let path = tmpfile("badlen");
        save_bytes(&path, b"sized payload").unwrap();
        let mut raw = std::fs::read(&path).unwrap();
        raw[9..17].copy_from_slice(&u64::MAX.to_le_bytes());
        std::fs::write(&path, &raw).unwrap();
        assert!(matches!(load_bytes(&path), Err(CkptError::Format(_))));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn next_format_version_is_rejected_not_panicked() {
        // A file from a hypothetical future build must fail cleanly so an
        // old server rejects (and keeps serving its current snapshot)
        // instead of crashing.
        let path = tmpfile("futurever");
        save_bytes(&path, b"from the future").unwrap();
        let mut raw = std::fs::read(&path).unwrap();
        raw[4] = FORMAT_VERSION + 1;
        std::fs::write(&path, &raw).unwrap();
        match load_bytes(&path) {
            Err(CkptError::Version(v)) => assert_eq!(v, FORMAT_VERSION + 1),
            other => panic!("expected a version error, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn reader_scalar_reads_fail_cleanly_on_truncation() {
        let mut r = Reader::new(&[1, 2, 3]); // too short for u32 or u64
        assert!(matches!(r.get_u32(), Err(CkptError::Format(_))));
        assert!(matches!(r.get_u64(), Err(CkptError::Format(_))));
        assert_eq!(r.get_u8().unwrap(), 1, "failed reads consume nothing");
    }

    #[test]
    fn unknown_version_byte_is_rejected_with_a_clear_error() {
        let path = tmpfile("version");
        save_bytes(&path, b"future payload").unwrap();
        let mut raw = std::fs::read(&path).unwrap();
        raw[4] = 99; // pretend a future format wrote this
        std::fs::write(&path, &raw).unwrap();
        match load_bytes(&path) {
            Err(CkptError::Version(v)) => assert_eq!(v, 99),
            other => panic!("expected a version error, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let path = tmpfile("magic");
        std::fs::write(&path, b"not a checkpoint at all........").unwrap();
        assert!(matches!(load_bytes(&path), Err(CkptError::Format(_))));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn writer_reader_roundtrip_is_bitwise() {
        let mut w = Writer::new();
        w.put_u8(3);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_f32(-0.0);
        w.put_f32(f32::NAN);
        w.put_f64(std::f64::consts::PI);
        w.put_str("ent_emb");
        w.put_matrix(&Matrix::from_vec(2, 3, vec![1.0, -2.5, 3.0, 0.0, 5.5, -6.25]));
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 3);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_f32().unwrap().to_bits(), (-0.0f32).to_bits());
        assert!(r.get_f32().unwrap().is_nan());
        assert_eq!(r.get_f64().unwrap(), std::f64::consts::PI);
        assert_eq!(r.get_str().unwrap(), "ent_emb");
        let m = r.get_matrix().unwrap();
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m[(1, 2)], -6.25);
        assert!(r.is_exhausted());
    }

    #[test]
    fn model_state_roundtrips_through_bytes_and_restores() {
        let mut store = ParamStore::new();
        let a = store.add("a", Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let _b = store.add("b", Matrix::filled(1, 3, -0.5));
        let mut adam = Adam::default_for(&store, 0.05);
        // Take a step so the moments are non-trivial.
        let g = Matrix::filled(2, 2, 0.1);
        let mut value = store.value(a).clone();
        adam.step(0, &mut value, &g);
        *store.value_mut(a) = value;

        let state = ModelState::capture(&store, &adam);
        let mut w = Writer::new();
        state.encode(&mut w);
        let bytes = w.into_bytes();
        let back = ModelState::decode(&mut Reader::new(&bytes)).unwrap();

        let mut store2 = ParamStore::new();
        store2.add("a", Matrix::zeros(2, 2));
        store2.add("b", Matrix::zeros(1, 3));
        let mut adam2 = Adam::default_for(&store2, 0.001);
        back.restore(&mut store2, &mut adam2).unwrap();
        assert_eq!(store2.value(a).as_slice(), store.value(a).as_slice());
        assert_eq!(adam2.lr, 0.05);
        let s2 = adam2.export_state();
        assert_eq!(s2.t[0], 1);
        assert_eq!(
            s2.m[0].as_ref().unwrap().as_slice(),
            adam.export_state().m[0].as_ref().unwrap().as_slice()
        );
    }

    #[test]
    fn lazy_adam_row_counters_roundtrip_and_resume_bitwise() {
        use facility_autograd::{Grad, SparseRowGrad};
        // Drive a parameter with sparse gradients so row counters diverge.
        let mut store = ParamStore::new();
        let w = store.add("emb", Matrix::from_vec(4, 2, vec![1., 2., 3., 4., 5., 6., 7., 8.]));
        let mut adam = Adam::default_for(&store, 0.05);
        for step in 0..6usize {
            let rows = vec![step % 4, (step + 1) % 4];
            let sg = SparseRowGrad {
                n_rows: 4,
                rows,
                values: Matrix::from_vec(2, 2, vec![0.1, -0.2, 0.3, 0.05]),
            };
            store.apply(&mut adam, &[(w, Grad::Sparse(sg))]);
        }
        let state = ModelState::capture(&store, &adam);
        assert!(
            state.adam.row_t.iter().any(|r| r.is_some()),
            "sparse steps must produce per-row counters"
        );
        let mut wtr = Writer::new();
        state.encode(&mut wtr);
        let bytes = wtr.into_bytes();
        let back = ModelState::decode(&mut Reader::new(&bytes)).unwrap();
        for (a, b) in state.adam.row_t.iter().zip(&back.adam.row_t) {
            assert_eq!(a, b, "row counters round-trip exactly");
        }

        // Resume both the original and the restored copy with the same
        // sparse step; the values must stay bitwise identical.
        let mut store2 = ParamStore::new();
        let w2 = store2.add("emb", Matrix::zeros(4, 2));
        let mut adam2 = Adam::default_for(&store2, 0.001);
        back.restore(&mut store2, &mut adam2).unwrap();
        let resume = SparseRowGrad {
            n_rows: 4,
            rows: vec![0, 3],
            values: Matrix::from_vec(2, 2, vec![-0.4, 0.4, 0.2, -0.2]),
        };
        store.apply(&mut adam, &[(w, Grad::Sparse(resume.clone()))]);
        store2.apply(&mut adam2, &[(w2, Grad::Sparse(resume))]);
        store.sync_all(&mut adam, w);
        store2.sync_all(&mut adam2, w2);
        for (a, b) in store.value(w).as_slice().iter().zip(store2.value(w2).as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits(), "resumed run must be bitwise identical");
        }
    }

    #[test]
    fn restore_rejects_shape_and_name_mismatches() {
        let mut store = ParamStore::new();
        store.add("a", Matrix::zeros(2, 2));
        let adam = Adam::default_for(&store, 0.01);
        let state = ModelState::capture(&store, &adam);

        let mut wrong_shape = ParamStore::new();
        wrong_shape.add("a", Matrix::zeros(3, 2));
        let mut adam2 = Adam::default_for(&wrong_shape, 0.01);
        assert!(matches!(state.restore(&mut wrong_shape, &mut adam2), Err(CkptError::Mismatch(_))));

        let mut wrong_name = ParamStore::new();
        wrong_name.add("z", Matrix::zeros(2, 2));
        let mut adam3 = Adam::default_for(&wrong_name, 0.01);
        assert!(matches!(state.restore(&mut wrong_name, &mut adam3), Err(CkptError::Mismatch(_))));
    }

    #[test]
    fn all_finite_detects_poison() {
        let mut store = ParamStore::new();
        store.add("a", Matrix::zeros(2, 2));
        let adam = Adam::default_for(&store, 0.01);
        let mut state = ModelState::capture(&store, &adam);
        assert!(state.all_finite());
        state.params[0].1[(0, 1)] = f32::NAN;
        assert!(!state.all_finite());
    }
}
