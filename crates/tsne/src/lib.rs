#![warn(missing_docs)]

//! # facility-tsne
//!
//! Exact t-SNE (van der Maaten & Hinton, 2008) for visualizing user
//! query embeddings — the tool behind the paper's Figure 4, which plots
//! the data objects queried by the eight most active users of one
//! organization and observes that their clusters overlap.
//!
//! Exact (non-Barnes-Hut) t-SNE is `O(n²)` per iteration; the point sets
//! here are hundreds to a few thousand, so the quadratic kernels are
//! simply parallelized with rayon:
//!
//! * pairwise squared distances,
//! * per-point perplexity calibration (binary search over σ),
//! * the Q-distribution and gradient.

use facility_linalg::{init, seeded_rng, Matrix};
use rayon::prelude::*;

/// t-SNE hyperparameters.
#[derive(Debug, Clone)]
pub struct TsneConfig {
    /// Target perplexity (effective neighbor count); clamped to
    /// `(n − 1) / 3` internally as usual.
    pub perplexity: f64,
    /// Gradient-descent iterations.
    pub n_iter: usize,
    /// Learning rate (η).
    pub learning_rate: f64,
    /// Early-exaggeration factor applied for the first quarter of the run.
    pub exaggeration: f64,
    /// Seed for the initial layout.
    pub seed: u64,
}

impl Default for TsneConfig {
    fn default() -> Self {
        Self { perplexity: 30.0, n_iter: 500, learning_rate: 200.0, exaggeration: 12.0, seed: 0 }
    }
}

/// Run exact t-SNE on the rows of `x`, embedding into 2-D.
///
/// Returns an `n × 2` matrix. For `n ≤ 2` the (degenerate) input layout is
/// a small seeded Gaussian.
pub fn run(x: &Matrix, config: &TsneConfig) -> Matrix {
    let n = x.rows();
    let mut rng = seeded_rng(config.seed);
    let mut y = init::normal(n, 2, 0.0, 1e-2, &mut rng);
    if n <= 2 {
        return y;
    }

    let p = joint_probabilities(x, config.perplexity);
    let mut dy = Matrix::zeros(n, 2);
    let mut gains = Matrix::filled(n, 2, 1.0);
    let exaggeration_until = config.n_iter / 4;

    for iter in 0..config.n_iter {
        let momentum = if iter < config.n_iter / 4 { 0.5 } else { 0.8 };
        let ex = if iter < exaggeration_until { config.exaggeration } else { 1.0 };
        let grad = gradient(&p, &y, ex as f32);

        // Delta-bar-delta gains as in the reference implementation.
        for i in 0..n * 2 {
            let g = grad.as_slice()[i];
            let d = dy.as_slice()[i];
            let gain = &mut gains.as_mut_slice()[i];
            if (g > 0.0) != (d > 0.0) {
                *gain += 0.2;
            } else {
                *gain = (*gain * 0.8).max(0.01);
            }
        }
        for i in 0..n * 2 {
            let step = momentum as f32 * dy.as_slice()[i]
                - config.learning_rate as f32 * gains.as_slice()[i] * grad.as_slice()[i];
            dy.as_mut_slice()[i] = step;
            y.as_mut_slice()[i] += step;
        }
        // Re-center to remove drift.
        let mean = y.col_sums().scale(1.0 / n as f32);
        for r in 0..n {
            for c in 0..2 {
                y[(r, c)] -= mean[(0, c)];
            }
        }
    }
    y
}

/// Symmetrized joint probabilities `P` with per-point perplexity
/// calibration.
fn joint_probabilities(x: &Matrix, perplexity: f64) -> Matrix {
    let n = x.rows();
    let d2 = pairwise_sq_dists(x);
    let target = perplexity.min(((n - 1) as f64 / 3.0).max(1.0));
    let log_target = target.ln();

    // Conditional distributions, one row per point (parallel).
    let rows: Vec<Vec<f32>> = (0..n)
        .into_par_iter()
        .map(|i| {
            let mut beta = 1.0f64; // 1 / (2σ²)
            let (mut beta_lo, mut beta_hi) = (0.0f64, f64::INFINITY);
            let mut row = vec![0.0f32; n];
            for _ in 0..64 {
                let mut sum = 0.0f64;
                let mut sum_d = 0.0f64;
                for j in 0..n {
                    if j == i {
                        row[j] = 0.0;
                        continue;
                    }
                    let pij = (-(d2[(i, j)] as f64) * beta).exp();
                    row[j] = pij as f32;
                    sum += pij;
                    sum_d += pij * d2[(i, j)] as f64;
                }
                if sum <= 0.0 {
                    // All neighbors infinitely far at this beta: relax.
                    beta_hi = beta;
                    beta = (beta_lo + beta_hi) / 2.0;
                    continue;
                }
                // Shannon entropy H = ln(sum) + beta * E[d].
                let h = sum.ln() + beta * sum_d / sum;
                let diff = h - log_target;
                if diff.abs() < 1e-5 {
                    break;
                }
                if diff > 0.0 {
                    beta_lo = beta;
                    beta = if beta_hi.is_finite() { (beta_lo + beta_hi) / 2.0 } else { beta * 2.0 };
                } else {
                    beta_hi = beta;
                    beta = (beta_lo + beta_hi) / 2.0;
                }
            }
            let sum: f32 = row.iter().sum();
            if sum > 0.0 {
                for v in &mut row {
                    *v /= sum;
                }
            }
            row
        })
        .collect();

    // Symmetrize: p_ij = (p_{j|i} + p_{i|j}) / 2n, floored for stability.
    let mut p = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            let v = (rows[i][j] + rows[j][i]) / (2.0 * n as f32);
            p[(i, j)] = v.max(1e-12);
        }
    }
    for i in 0..n {
        p[(i, i)] = 0.0;
    }
    p
}

/// Squared Euclidean distances between all row pairs (parallel).
fn pairwise_sq_dists(x: &Matrix) -> Matrix {
    let n = x.rows();
    let mut out = Matrix::zeros(n, n);
    out.as_mut_slice().par_chunks_exact_mut(n).enumerate().for_each(|(i, row)| {
        let xi = x.row(i);
        for (j, o) in row.iter_mut().enumerate() {
            let mut acc = 0.0f32;
            for (a, b) in xi.iter().zip(x.row(j)) {
                let d = a - b;
                acc += d * d;
            }
            *o = acc;
        }
    });
    out
}

/// KL gradient `4 Σ_j (ex·p_ij − q_ij) q_num_ij (y_i − y_j)`.
fn gradient(p: &Matrix, y: &Matrix, exaggeration: f32) -> Matrix {
    let n = y.rows();
    // Student-t numerators and normalizer.
    let mut num = Matrix::zeros(n, n);
    let mut z = 0.0f64;
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let dx = y[(i, 0)] - y[(j, 0)];
            let dyv = y[(i, 1)] - y[(j, 1)];
            let v = 1.0 / (1.0 + dx * dx + dyv * dyv);
            num[(i, j)] = v;
            z += v as f64;
        }
    }
    let z = (z as f32).max(1e-12);

    let mut grad = Matrix::zeros(n, 2);
    grad.as_mut_slice().par_chunks_exact_mut(2).enumerate().for_each(|(i, g)| {
        let mut gx = 0.0f32;
        let mut gy = 0.0f32;
        for j in 0..n {
            if i == j {
                continue;
            }
            let q = num[(i, j)] / z;
            let mult = (exaggeration * p[(i, j)] - q) * num[(i, j)];
            gx += mult * (y[(i, 0)] - y[(j, 0)]);
            gy += mult * (y[(i, 1)] - y[(j, 1)]);
        }
        g[0] = 4.0 * gx;
        g[1] = 4.0 * gy;
    });
    grad
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated Gaussian blobs in 8-D.
    fn blobs(n_per: usize, seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = seeded_rng(seed);
        let a = init::normal(n_per, 8, 0.0, 0.3, &mut rng);
        let mut b = init::normal(n_per, 8, 0.0, 0.3, &mut rng);
        b.map_assign(|v| v + 5.0);
        let x = a.concat_rows(&b);
        let labels = (0..2 * n_per).map(|i| i / n_per).collect();
        (x, labels)
    }

    fn small_config() -> TsneConfig {
        TsneConfig { n_iter: 250, perplexity: 10.0, ..TsneConfig::default() }
    }

    #[test]
    fn output_shape_and_finiteness() {
        let (x, _) = blobs(20, 1);
        let y = run(&x, &small_config());
        assert_eq!(y.shape(), (40, 2));
        assert!(y.all_finite());
    }

    #[test]
    fn separated_blobs_stay_separated() {
        let (x, labels) = blobs(25, 2);
        let y = run(&x, &small_config());
        // 1-NN label agreement should be near-perfect for blobs 16σ apart.
        let n = y.rows();
        let mut correct = 0;
        for i in 0..n {
            let mut best = usize::MAX;
            let mut best_d = f32::INFINITY;
            for j in 0..n {
                if i == j {
                    continue;
                }
                let dx = y[(i, 0)] - y[(j, 0)];
                let dy = y[(i, 1)] - y[(j, 1)];
                let d = dx * dx + dy * dy;
                if d < best_d {
                    best_d = d;
                    best = j;
                }
            }
            if labels[best] == labels[i] {
                correct += 1;
            }
        }
        let acc = correct as f64 / n as f64;
        assert!(acc > 0.9, "1-NN accuracy {acc} too low — clusters collapsed");
    }

    #[test]
    fn deterministic_under_seed() {
        let (x, _) = blobs(10, 3);
        let a = run(&x, &small_config());
        let b = run(&x, &small_config());
        assert_eq!(a, b);
    }

    #[test]
    fn degenerate_inputs_are_safe() {
        let cfg = small_config();
        assert_eq!(run(&Matrix::zeros(0, 4), &cfg).rows(), 0);
        assert_eq!(run(&Matrix::zeros(1, 4), &cfg).rows(), 1);
        assert_eq!(run(&Matrix::zeros(2, 4), &cfg).rows(), 2);
        // Identical points: probabilities must stay finite.
        let y = run(&Matrix::filled(8, 4, 1.0), &cfg);
        assert!(y.all_finite());
    }

    #[test]
    fn joint_probabilities_are_a_distribution() {
        let (x, _) = blobs(10, 4);
        let p = joint_probabilities(&x, 5.0);
        let total: f32 = p.as_slice().iter().sum();
        assert!((total - 1.0).abs() < 1e-3, "P sums to {total}");
        assert!(p.as_slice().iter().all(|&v| v >= 0.0));
        for i in 0..p.rows() {
            assert_eq!(p[(i, i)], 0.0);
        }
    }
}
