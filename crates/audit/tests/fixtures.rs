//! Run the rule engine over the fixture tree (`fixtures/crates/...`) and
//! assert each rule produces exactly its marked positives — and that the
//! CLI exits nonzero on that tree, per the acceptance criteria.

use std::path::PathBuf;
use std::process::Command;

use facility_audit::{audit_tree, Finding, Rule};

fn fixture_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

fn findings() -> Vec<Finding> {
    audit_tree(&fixture_root()).expect("fixture tree must be readable")
}

fn of(findings: &[Finding], rule: Rule, file: &str) -> Vec<usize> {
    findings.iter().filter(|f| f.rule == rule && f.file == file).map(|f| f.line).collect()
}

#[test]
fn hash_order_fixture_positives() {
    let f = findings();
    let lines = of(&f, Rule::HashOrder, "crates/models/src/hash_order.rs");
    // `use` line + fn signature mentioning HashMap; waived + test uses silent.
    assert_eq!(lines.len(), 2, "{lines:?}");
}

#[test]
fn wallclock_fixture_positives() {
    let f = findings();
    let lines = of(&f, Rule::Wallclock, "crates/models/src/wallclock.rs");
    assert_eq!(lines.len(), 3, "{lines:?}");
}

#[test]
fn unsafe_fixture_positives() {
    let f = findings();
    let lines = of(&f, Rule::UnsafeComment, "crates/kg/src/unsafe_block.rs");
    assert_eq!(lines.len(), 1, "{lines:?}");
}

#[test]
fn hot_panic_fixture_positives() {
    let f = findings();
    let lines = of(&f, Rule::HotPanic, "crates/eval/src/trainer.rs");
    assert_eq!(lines.len(), 3, "{lines:?}");
}

#[test]
fn float_fold_fixture_positives() {
    let f = findings();
    let lines = of(&f, Rule::FloatFold, "crates/models/src/float_fold.rs");
    assert_eq!(lines.len(), 2, "{lines:?}");
}

#[test]
fn unbounded_queue_fixture_positives() {
    let f = findings();
    let lines = of(&f, Rule::UnboundedQueue, "crates/serve/src/server.rs");
    // VecDeque::new + mpsc::channel + crossbeam-style unbounded; the
    // waived with_capacity, the sync_channel, and test code stay silent.
    assert_eq!(lines.len(), 3, "{lines:?}");
}

#[test]
fn serve_hot_panic_fixture_positives() {
    let f = findings();
    let lines = of(&f, Rule::HotPanic, "crates/serve/src/server.rs");
    assert_eq!(lines.len(), 1, "{lines:?}");
}

#[test]
fn lane_fold_fixture_positives() {
    let f = findings();
    let lines = of(&f, Rule::LaneFold, "crates/linalg/src/kernels.rs");
    // Bare accumulator + `.sum()` + `.fold(`; per-lane / per-element /
    // integer / waived / test accumulation all stay silent.
    assert_eq!(lines.len(), 3, "{lines:?}");
}

#[test]
fn bench_fixture_is_clean() {
    let f = findings();
    assert!(
        f.iter().all(|x| x.file != "crates/bench/src/clean.rs"),
        "bench crate must be exempt from wallclock/hash-order: {f:?}"
    );
}

#[test]
fn cli_exits_nonzero_on_fixtures_and_zero_on_workspace() {
    let bin = env!("CARGO_BIN_EXE_facility-audit");
    let on_fixtures = Command::new(bin)
        .args(["--root", fixture_root().to_str().expect("utf-8 path")])
        .output()
        .expect("run auditor on fixtures");
    assert_eq!(on_fixtures.status.code(), Some(1), "fixtures must fail the audit");

    let workspace = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .expect("workspace root");
    let on_workspace = Command::new(bin)
        .args(["--root", workspace.to_str().expect("utf-8 path")])
        .output()
        .expect("run auditor on workspace");
    assert_eq!(
        on_workspace.status.code(),
        Some(0),
        "workspace must be audit-clean:\n{}",
        String::from_utf8_lossy(&on_workspace.stdout)
    );
}
