//! Known-answer tests for the analyzer over the fixture tree
//! (`fixtures/crates/...`), exit-code contracts for the CLI, the
//! stale-config hard error, and the retired-deny-list coverage proof
//! (stripping any workspace waiver must restore a finding).

use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::Instant;

use facility_audit::{audit_fixtures, audit_sources, AuditConfig, Report, Rule};

fn fixture_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .expect("workspace root")
}

fn report() -> Report {
    audit_fixtures(&fixture_root()).expect("fixture tree must audit")
}

fn of(r: &Report, rule: Rule, file: &str) -> Vec<usize> {
    r.findings.iter().filter(|f| f.rule == rule && f.file == file).map(|f| f.line).collect()
}

fn none_in(r: &Report, file: &str) {
    let hits: Vec<_> = r.findings.iter().filter(|f| f.file == file).collect();
    assert!(hits.is_empty(), "{file} must be clean: {hits:?}");
}

// ---------------------------------------------------------------- line rules

#[test]
fn wallclock_fixture_positives() {
    let r = report();
    assert_eq!(of(&r, Rule::Wallclock, "crates/models/src/wallclock.rs"), vec![3, 6, 7]);
}

#[test]
fn unsafe_fixture_positives() {
    let r = report();
    assert_eq!(of(&r, Rule::UnsafeComment, "crates/kg/src/unsafe_block.rs"), vec![4]);
}

#[test]
fn unbounded_queue_fixture_positives() {
    let r = report();
    // VecDeque::new + mpsc::channel + crossbeam-style unbounded; the waived
    // with_capacity, the sync_channel, and test code stay silent.
    assert_eq!(of(&r, Rule::UnboundedQueue, "crates/serve/src/server.rs"), vec![9, 10, 11]);
}

#[test]
fn lane_fold_fixture_positives() {
    let r = report();
    // Bare accumulator + `.sum()` + `.fold(`; per-lane / per-element /
    // integer / waived / test accumulation all stay silent.
    assert_eq!(of(&r, Rule::LaneFold, "crates/linalg/src/kernels.rs"), vec![6, 12, 13]);
}

#[test]
fn bench_fixture_is_clean() {
    none_in(&report(), "crates/bench/src/clean.rs");
}

// ------------------------------------------------- panic-reach known answers

#[test]
fn panic_reach_caught_through_root_call() {
    let r = report();
    // The sites live in `hot`; only the run_loop → hot edge roots them.
    assert_eq!(of(&r, Rule::PanicReach, "crates/eval/src/trainer.rs"), vec![10, 11, 12]);
    let f = &r.findings.iter().find(|f| f.file.ends_with("trainer.rs")).unwrap();
    assert_eq!(f.chain.as_deref(), Some("run_loop → hot"));
}

#[test]
fn panic_reach_caught_two_hops_down() {
    let r = report();
    // The cross-function case a line scanner with path deny-lists misses:
    // neither helper is a root, and the unrooted twin stays silent.
    assert_eq!(of(&r, Rule::PanicReach, "crates/models/src/panic_deep.rs"), vec![14]);
    let f = r.findings.iter().find(|f| f.file.ends_with("panic_deep.rs")).unwrap();
    assert_eq!(f.chain.as_deref(), Some("deep_root → deep_helper_a → deep_helper_b"));
}

#[test]
fn panic_reach_waived_at_site_and_fn() {
    none_in(&report(), "crates/models/src/panic_waived.rs");
}

#[test]
fn panic_reach_clean_root_is_silent() {
    none_in(&report(), "crates/models/src/panic_clean.rs");
}

#[test]
fn panic_reach_on_serving_worker() {
    let r = report();
    assert_eq!(of(&r, Rule::PanicReach, "crates/serve/src/server.rs"), vec![19]);
}

// ------------------------------------------------------ taint known answers

#[test]
fn taint_caught_in_rooted_file() {
    let r = report();
    // `use` line (module-level) + HashMap construction inside `iterate`.
    assert_eq!(of(&r, Rule::HashOrder, "crates/models/src/hash_order.rs"), vec![4, 6]);
    assert_eq!(of(&r, Rule::FloatFold, "crates/models/src/float_fold.rs"), vec![6, 7]);
}

#[test]
fn taint_caught_laundered_through_helper_crate() {
    let r = report();
    // crates/util sits outside every path a scope list would name; the
    // taint_entry → bucket_stats / pooled_sum edges are the only link.
    assert_eq!(of(&r, Rule::HashOrder, "crates/util/src/launder.rs"), vec![5, 8]);
    assert_eq!(of(&r, Rule::FloatFold, "crates/util/src/launder.rs"), vec![18]);
    let f = r
        .findings
        .iter()
        .find(|f| f.file.ends_with("launder.rs") && f.rule == Rule::HashOrder && f.line == 8)
        .unwrap();
    assert_eq!(f.chain.as_deref(), Some("taint_entry → bucket_stats"));
}

#[test]
fn taint_waived_at_module_level() {
    none_in(&report(), "crates/models/src/taint_waived.rs");
}

#[test]
fn taint_clean_root_and_unrooted_hash_are_silent() {
    // BTreeMap is never a source; the HashSet twin is unreachable from
    // every root — proving the analysis is reachability-gated.
    none_in(&report(), "crates/models/src/taint_clean.rs");
}

// ----------------------------------------------------------- report contract

#[test]
fn fixture_report_totals_and_json() {
    let r = report();
    assert_eq!(r.findings.len(), 22, "{:#?}", r.findings);
    assert_eq!(r.exit_code(), 1);
    assert!(r.n_fns >= 40 && r.n_edges >= 10, "{} fns / {} edges", r.n_fns, r.n_edges);
    let json = r.to_json();
    for key in ["\"findings\"", "\"panic-reach\"", "\"timing_ms\"", "\"unsafe\"", "\"chain\""] {
        assert!(json.contains(key), "report JSON must contain {key}: {json}");
    }
}

// ---------------------------------------------------------------- CLI

#[test]
fn cli_exit_codes_and_report_flag() {
    let bin = env!("CARGO_BIN_EXE_facility-audit");
    let report_path =
        std::env::temp_dir().join(format!("audit-report-{}.json", std::process::id()));
    let on_fixtures = Command::new(bin)
        .args(["--fixtures", "--root", fixture_root().to_str().unwrap()])
        .args(["--report", report_path.to_str().unwrap()])
        .output()
        .expect("run auditor on fixtures");
    assert_eq!(on_fixtures.status.code(), Some(1), "fixtures must fail the audit");
    let json = std::fs::read_to_string(&report_path).expect("report written");
    let _ = std::fs::remove_file(&report_path);
    assert!(json.contains("panic-reach") && json.contains("\"root_kind\": \"fixtures\""));

    let on_workspace = Command::new(bin)
        .args(["--root", workspace_root().to_str().unwrap()])
        .output()
        .expect("run auditor on workspace");
    assert_eq!(
        on_workspace.status.code(),
        Some(0),
        "workspace must be audit-clean:\n{}",
        String::from_utf8_lossy(&on_workspace.stdout)
    );

    let bad_flag = Command::new(bin).arg("--bogus").output().expect("run with bad flag");
    assert_eq!(bad_flag.status.code(), Some(2), "usage errors exit 2");
}

// ------------------------------------------- stale configuration hard error

fn copy_tree(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).expect("mkdir");
    for entry in std::fs::read_dir(src).expect("read_dir") {
        let entry = entry.expect("entry");
        let to = dst.join(entry.file_name());
        if entry.path().is_dir() {
            copy_tree(&entry.path(), &to);
        } else {
            std::fs::copy(entry.path(), &to).expect("copy");
        }
    }
}

/// Renaming a fixture file out from under a configured scope or root must
/// hard-error with exit 2 — the analyzer refuses to silently audit less.
#[test]
fn renamed_fixture_file_fails_with_config_error() {
    let bin = env!("CARGO_BIN_EXE_facility-audit");
    let tmp = std::env::temp_dir().join(format!("audit-rename-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    copy_tree(&fixture_root(), &tmp);

    // Rename the lane-kernel file: the `crates/linalg/src/kernels.rs`
    // scope entry now matches nothing.
    let kernels = tmp.join("crates/linalg/src/kernels.rs");
    std::fs::rename(&kernels, tmp.join("crates/linalg/src/kernels_v2.rs")).expect("rename");
    let out = Command::new(bin)
        .args(["--fixtures", "--root", tmp.to_str().unwrap()])
        .output()
        .expect("run auditor");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2), "stale scope must exit 2: {stderr}");
    assert!(stderr.contains("kernels.rs"), "error must name the stale entry: {stderr}");

    // Restore the scope but rename the file declaring the `run_loop` and
    // `hot_path`-adjacent roots: root resolution now fails.
    std::fs::rename(tmp.join("crates/linalg/src/kernels_v2.rs"), &kernels).expect("rename back");
    std::fs::rename(
        tmp.join("crates/eval/src/trainer.rs"),
        tmp.join("crates/eval/src/trainer_v2.rs.bak"),
    )
    .expect("rename trainer");
    std::fs::write(tmp.join("crates/eval/src/trainer.rs"), "pub fn other() {}\n").expect("stub");
    let out = Command::new(bin)
        .args(["--fixtures", "--root", tmp.to_str().unwrap()])
        .output()
        .expect("run auditor");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2), "unresolvable root must exit 2: {stderr}");
    assert!(stderr.contains("run_loop"), "error must name the missing root: {stderr}");

    let _ = std::fs::remove_dir_all(&tmp);
}

// ----------------------------------- retired deny-list coverage proof

const WAIVER_TAGS: [&str; 7] =
    ["ordered", "wallclock", "SAFETY", "unwrap", "fold", "bounded", "lanes"];

/// Classify a source line: `Some(true)` = module-level waiver,
/// `Some(false)` = site/fn waiver, `None` = not a waiver.
fn waiver_kind(line: &str) -> Option<bool> {
    let comment_at = line.find("//")?;
    let at = line[comment_at..].find("audit: ").map(|i| comment_at + i + "audit: ".len())?;
    let rest = &line[at..];
    if let Some(r) = rest.strip_prefix("module ") {
        WAIVER_TAGS.iter().any(|t| r.starts_with(t)).then_some(true)
    } else {
        let r = rest.strip_prefix("fn ").unwrap_or(rest);
        WAIVER_TAGS.iter().any(|t| r.starts_with(t)).then_some(false)
    }
}

/// Every waiver in the real workspace must be load-bearing: stripping it
/// restores a finding at (or just below) the waiver line. This proves the
/// call-graph analyses cover at least every site the retired
/// `HOT_PATH_FILES` / `DETERMINISTIC_SCOPES` lists covered — those sites
/// are exactly the ones that carry waivers today.
#[test]
fn stripping_any_workspace_waiver_restores_a_finding() {
    let ws = workspace_root();
    let mut sources: Vec<(String, String)> = Vec::new();
    // (file, waiver line, is_module_level)
    let mut waivers: Vec<(String, usize, bool)> = Vec::new();

    let crates_dir = ws.join("crates");
    let mut krates: Vec<_> =
        std::fs::read_dir(&crates_dir).expect("crates/").map(|e| e.unwrap().path()).collect();
    krates.sort();
    for krate in krates {
        for sub in ["src", "tests"] {
            let dir = krate.join(sub);
            if !dir.is_dir() {
                continue;
            }
            let mut files = Vec::new();
            collect_rs(&dir, &mut files);
            for file in files {
                let rel = file.strip_prefix(&ws).unwrap().to_string_lossy().replace('\\', "/");
                if rel.starts_with("crates/audit/fixtures/") {
                    continue;
                }
                let src = std::fs::read_to_string(&file).expect("read source");
                // The analyzer's own sources discuss waiver syntax in docs
                // and tests; scan them unmodified to keep scopes valid, but
                // only assert coverage outside crates/audit.
                if rel.starts_with("crates/audit/") {
                    sources.push((rel, src));
                    continue;
                }
                let mut stripped = String::with_capacity(src.len());
                for (i, line) in src.lines().enumerate() {
                    match waiver_kind(line) {
                        Some(module) => {
                            waivers.push((rel.clone(), i + 1, module));
                            stripped.push_str(&line.replace("audit:", "inert:"));
                        }
                        None => stripped.push_str(line),
                    }
                    stripped.push('\n');
                }
                sources.push((rel, stripped));
            }
        }
    }
    assert!(waivers.len() >= 20, "expected a real waiver inventory, got {}", waivers.len());

    let report = audit_sources(&sources, &AuditConfig::workspace(), "workspace", Instant::now())
        .expect("stripped workspace must still satisfy the config");
    assert!(!report.findings.is_empty(), "stripping every waiver must restore findings");

    let mut dead: Vec<String> = Vec::new();
    for (file, line, module) in &waivers {
        let hit = report.findings.iter().any(|f| {
            f.file == *file && if *module { true } else { f.line >= *line && f.line <= line + 3 }
        });
        if !hit {
            dead.push(format!("{file}:{line} (module={module})"));
        }
    }
    assert!(dead.is_empty(), "waivers that silence nothing (coverage gaps): {dead:#?}");
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let mut entries: Vec<_> =
        std::fs::read_dir(dir).expect("read_dir").map(|e| e.unwrap().path()).collect();
    entries.sort();
    for entry in entries {
        if entry.is_dir() {
            collect_rs(&entry, out);
        } else if entry.extension().is_some_and(|e| e == "rs") {
            out.push(entry);
        }
    }
}
