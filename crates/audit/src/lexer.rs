//! A spanned Rust lexer and the [`SourceFile`] view the rules and
//! analyses consume.
//!
//! The auditor builds offline with no dependencies (`syn` is not
//! available), so this is a hand-rolled lexer that understands exactly
//! as much Rust as the analyses need, but understands it *properly*:
//!
//! * line comments and **nested** block comments;
//! * string literals with escapes, byte strings, and raw strings at any
//!   hash depth (`r"…"`, `r#"…"#`, `br##"…"##`);
//! * char literals vs. lifetimes (`'x'` / `'\n'` vs. `'a`);
//! * identifiers (including raw `r#ident`), numbers (hex/binary/octal,
//!   floats, exponents, suffixes), and single-char punctuation.
//!
//! Every token carries its byte span in the original source, so a match
//! maps straight back to a line and the two derived channels
//! ([`SourceFile::code`] / [`SourceFile::comments`]) are byte-aligned
//! with the input — the invariant every rule relies on.

/// What a token is. Keywords are `Ident`s; the parser decides.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (raw `r#ident` included, span covers `r#`).
    Ident,
    /// A lifetime such as `'a` (span includes the quote).
    Lifetime,
    /// Any numeric literal, int or float, with suffix.
    Num,
    /// Any string-ish literal: `"…"`, `b"…"`, `r#"…"#`, `br"…"`.
    Str,
    /// A char or byte-char literal: `'x'`, `b'\n'`.
    Char,
    /// `// …` (doc comments included).
    LineComment,
    /// `/* … */`, nesting honoured (doc comments included).
    BlockComment,
    /// One punctuation byte (`::` is two `:` tokens, adjacency-checked).
    Punct,
}

/// One lexed token: kind plus byte span `lo..hi` into the source.
#[derive(Debug, Clone, Copy)]
pub struct Token {
    pub kind: TokenKind,
    pub lo: usize,
    pub hi: usize,
}

/// Lex `src` into a flat token stream. Whitespace is dropped; everything
/// else — comments included — becomes a token, and the concatenation of
/// all token spans plus whitespace reproduces the input (round-trip
/// property, tested below).
pub fn lex(src: &str) -> Vec<Token> {
    let b = src.as_bytes();
    let n = b.len();
    let mut out = Vec::new();
    let mut i = 0;
    while i < n {
        let c = b[i];
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        let lo = i;
        // Comments.
        if c == b'/' && i + 1 < n && b[i + 1] == b'/' {
            while i < n && b[i] != b'\n' {
                i += 1;
            }
            out.push(Token { kind: TokenKind::LineComment, lo, hi: i });
            continue;
        }
        if c == b'/' && i + 1 < n && b[i + 1] == b'*' {
            let mut depth = 1u32;
            i += 2;
            while i < n && depth > 0 {
                if b[i] == b'/' && i + 1 < n && b[i + 1] == b'*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == b'*' && i + 1 < n && b[i + 1] == b'/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            out.push(Token { kind: TokenKind::BlockComment, lo, hi: i });
            continue;
        }
        // Raw strings and raw identifiers: r"…", r#"…"#, r#ident.
        if c == b'r' || c == b'b' {
            if let Some(tok) = lex_raw_or_byte(b, i) {
                i = tok.hi;
                out.push(tok);
                continue;
            }
        }
        // Plain strings.
        if c == b'"' {
            i = skip_string(b, i + 1);
            out.push(Token { kind: TokenKind::Str, lo, hi: i });
            continue;
        }
        // Char literal vs lifetime.
        if c == b'\'' {
            if is_char_literal(b, i) {
                i = skip_char(b, i + 1);
                out.push(Token { kind: TokenKind::Char, lo, hi: i });
            } else {
                i += 1;
                while i < n && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                out.push(Token { kind: TokenKind::Lifetime, lo, hi: i });
            }
            continue;
        }
        // Identifiers and keywords.
        if c == b'_' || c.is_ascii_alphabetic() {
            i += 1;
            while i < n && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                i += 1;
            }
            out.push(Token { kind: TokenKind::Ident, lo, hi: i });
            continue;
        }
        // Numbers (floats, exponents, radix prefixes, suffixes).
        if c.is_ascii_digit() {
            i = skip_number(b, i);
            out.push(Token { kind: TokenKind::Num, lo, hi: i });
            continue;
        }
        // Everything else: one punctuation byte (multi-byte UTF-8 chars
        // in code positions are illegal Rust; emit byte-wise and move on).
        i += 1;
        while i < n && b[i - 1] >= 0x80 && b[i] & 0xC0 == 0x80 {
            i += 1; // keep a multi-byte char as one token so spans stay on char boundaries
        }
        out.push(Token { kind: TokenKind::Punct, lo, hi: i });
    }
    out
}

/// Lex `r…`/`b…` forms that are literals (raw string, byte string, raw
/// ident, byte char); `None` means "just an identifier starting with
/// r/b" and the caller lexes it as an ident.
fn lex_raw_or_byte(b: &[u8], i: usize) -> Option<Token> {
    let n = b.len();
    let c = b[i];
    // b'x' byte char.
    if c == b'b' && i + 1 < n && b[i + 1] == b'\'' {
        let hi = skip_char(b, i + 2);
        return Some(Token { kind: TokenKind::Char, lo: i, hi });
    }
    // b"…" byte string.
    if c == b'b' && i + 1 < n && b[i + 1] == b'"' {
        let hi = skip_string(b, i + 2);
        return Some(Token { kind: TokenKind::Str, lo: i, hi });
    }
    // br#"…"# raw byte string.
    let raw_at = if c == b'b' && i + 1 < n && b[i + 1] == b'r' { i + 1 } else { i };
    if b[raw_at] == b'r' {
        let mut j = raw_at + 1;
        let mut hashes = 0usize;
        while j < n && b[j] == b'#' {
            hashes += 1;
            j += 1;
        }
        if j < n && b[j] == b'"' {
            // Raw string: scan for `"` followed by `hashes` hashes.
            j += 1;
            while j < n {
                if b[j] == b'"' && (1..=hashes).all(|k| b.get(j + k) == Some(&b'#')) {
                    return Some(Token { kind: TokenKind::Str, lo: i, hi: j + 1 + hashes });
                }
                j += 1;
            }
            return Some(Token { kind: TokenKind::Str, lo: i, hi: n });
        }
        if hashes == 1 && raw_at == i && j < n && (b[j] == b'_' || b[j].is_ascii_alphabetic()) {
            // Raw identifier r#ident.
            let mut k = j;
            while k < n && (b[k] == b'_' || b[k].is_ascii_alphanumeric()) {
                k += 1;
            }
            return Some(Token { kind: TokenKind::Ident, lo: i, hi: k });
        }
    }
    None
}

fn skip_string(b: &[u8], mut i: usize) -> usize {
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    b.len()
}

fn skip_char(b: &[u8], mut i: usize) -> usize {
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'\'' => return i + 1,
            _ => i += 1,
        }
    }
    b.len()
}

fn skip_number(b: &[u8], mut i: usize) -> usize {
    let n = b.len();
    if b[i] == b'0' && i + 1 < n && matches!(b[i + 1], b'x' | b'b' | b'o') {
        i += 2;
        while i < n && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
            i += 1;
        }
        return i;
    }
    while i < n && (b[i].is_ascii_digit() || b[i] == b'_') {
        i += 1;
    }
    // Fractional part: only when followed by a digit (so `0..n` ranges
    // and `1.max(2)` method calls stay out of the literal).
    if i + 1 < n && b[i] == b'.' && b[i + 1].is_ascii_digit() {
        i += 1;
        while i < n && (b[i].is_ascii_digit() || b[i] == b'_') {
            i += 1;
        }
    }
    // Exponent.
    if i < n && (b[i] == b'e' || b[i] == b'E') {
        let mut j = i + 1;
        if j < n && (b[j] == b'+' || b[j] == b'-') {
            j += 1;
        }
        if j < n && b[j].is_ascii_digit() {
            i = j;
            while i < n && (b[i].is_ascii_digit() || b[i] == b'_') {
                i += 1;
            }
        }
    }
    // Type suffix (f32, u64, usize, …).
    while i < n && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
        i += 1;
    }
    i
}

/// Distinguish a char literal (`'x'`, `'\n'`) from a lifetime (`'a`).
fn is_char_literal(bytes: &[u8], i: usize) -> bool {
    match bytes.get(i + 1) {
        Some(b'\\') => true,
        Some(_) => bytes.get(i + 2) == Some(&b'\''),
        None => false,
    }
}

// ----------------------------------------------------------------------
// SourceFile: the lexed view of one file
// ----------------------------------------------------------------------

/// One lexed source file: the token stream plus the two byte-aligned
/// channels every line rule matches against, the line table, and the
/// `#[cfg(test)]` ranges.
pub struct SourceFile {
    /// The lexed tokens, in source order, comments included.
    pub tokens: Vec<Token>,
    /// Code channel: the source with comment bodies and literal bodies
    /// blanked to spaces (delimiters kept); newlines preserved.
    pub code: String,
    /// Comment channel: only comment text survives; newlines preserved.
    pub comments: String,
    test_ranges: Vec<(usize, usize)>,
    line_starts: Vec<usize>,
}

impl SourceFile {
    /// Lex `source` and derive the channel views and test ranges.
    pub fn new(source: &str) -> Self {
        let tokens = lex(source);
        let (code, comments) = channels(source, &tokens);
        let test_ranges = find_test_ranges(&code);
        let mut line_starts = vec![0usize];
        for (i, b) in source.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        Self { tokens, code, comments, test_ranges, line_starts }
    }

    /// 1-based line number of byte `offset`.
    pub fn line_of(&self, offset: usize) -> usize {
        match self.line_starts.binary_search(&offset) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }

    /// True when byte `offset` falls inside a `#[cfg(test)]` item.
    pub fn in_test(&self, offset: usize) -> bool {
        self.test_ranges.iter().any(|&(lo, hi)| (lo..hi).contains(&offset))
    }

    /// True when 1-based `line` starts inside a `#[cfg(test)]` item.
    pub fn in_test_line(&self, line: usize) -> bool {
        self.in_test(self.line_offset(line))
    }

    /// The comment text of 1-based `line` (blanks where code was).
    pub fn comment_line(&self, line: usize) -> &str {
        self.channel_line(&self.comments, line)
    }

    /// The code text of 1-based `line` (blanks where comments were).
    pub fn code_line(&self, line: usize) -> &str {
        self.channel_line(&self.code, line)
    }

    /// Byte offset of the start of 1-based `line`.
    pub fn line_offset(&self, line: usize) -> usize {
        self.line_starts.get(line.saturating_sub(1)).copied().unwrap_or(self.code.len())
    }

    /// Number of lines in the file.
    pub fn n_lines(&self) -> usize {
        self.line_starts.len()
    }

    /// The source text of `tok` (read from the code channel, so literal
    /// bodies are blanked — fine for idents/puncts, which are verbatim).
    pub fn text(&self, tok: &Token) -> &str {
        &self.code[tok.lo..tok.hi]
    }

    fn channel_line<'a>(&self, channel: &'a str, line: usize) -> &'a str {
        if line == 0 || line > self.line_starts.len() {
            return "";
        }
        let lo = self.line_starts[line - 1];
        let hi = self.line_starts.get(line).copied().unwrap_or(channel.len());
        channel[lo..hi].trim_end_matches('\n')
    }
}

/// Rebuild the code/comment channels from the token stream: both are the
/// input length, space-filled, newlines kept in both so line numbers
/// survive; each token writes itself into its channel (string/char
/// literals keep only their delimiters in the code channel so patterns
/// never match literal *contents*).
fn channels(source: &str, tokens: &[Token]) -> (String, String) {
    let b = source.as_bytes();
    let n = b.len();
    let mut code = vec![b' '; n];
    let mut comments = vec![b' '; n];
    for (i, &c) in b.iter().enumerate() {
        if c == b'\n' {
            code[i] = b'\n';
            comments[i] = b'\n';
        }
    }
    for t in tokens {
        match t.kind {
            TokenKind::LineComment | TokenKind::BlockComment => {
                for i in t.lo..t.hi {
                    if b[i] != b'\n' {
                        comments[i] = b[i];
                    }
                }
            }
            TokenKind::Str | TokenKind::Char => {
                // Keep prefix letters and the delimiters; blank the body.
                let mut i = t.lo;
                while i < t.hi && (b[i] == b'r' || b[i] == b'b') {
                    code[i] = b[i];
                    i += 1;
                }
                if i < t.hi {
                    code[i] = b[i]; // opening quote (or `#` run start)
                }
                if t.hi > t.lo {
                    code[t.hi - 1] = b[t.hi - 1]; // closing delimiter
                }
            }
            _ => {
                for i in t.lo..t.hi {
                    if b[i] != b'\n' {
                        code[i] = b[i];
                    }
                }
            }
        }
    }
    // Both channels are ASCII-or-copied-whole-chars over a space-filled
    // buffer: multi-byte chars are either copied intact (comments,
    // idents) or fully blanked (literal bodies), so UTF-8 stays valid.
    (String::from_utf8(code).unwrap_or_default(), String::from_utf8(comments).unwrap_or_default())
}

/// Byte ranges of items annotated `#[cfg(test)]` (attribute through the
/// item's closing brace or terminating semicolon), found on the code
/// channel so commented-out attributes don't count.
fn find_test_ranges(code: &str) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut from = 0;
    while let Some(pos) = find_cfg_test(code, from) {
        let end = item_end(code.as_bytes(), pos);
        ranges.push((pos, end));
        from = end.max(pos + 1);
    }
    ranges
}

/// Next `#[cfg(test)]`-style attribute at or after `from` (tolerates
/// whitespace and `cfg(all(test, …))`).
fn find_cfg_test(code: &str, from: usize) -> Option<usize> {
    let mut at = from;
    while let Some(rel) = code[at..].find("cfg") {
        let pos = at + rel;
        let tail = &code[pos..code.len().min(pos + 64)];
        if let Some(open) = tail.find('(') {
            if tail[..open].trim() == "cfg" {
                if let Some(close) = tail[open..].find(')').map(|c| open + c) {
                    if tail[open..close].contains("test") {
                        let head = code[..pos].rfind('#').unwrap_or(pos);
                        if code[head..pos]
                            .chars()
                            .all(|c| c == '#' || c == '[' || c.is_whitespace())
                        {
                            return Some(head);
                        }
                    }
                }
            }
        }
        at = pos + 3;
    }
    None
}

/// End offset of the item starting at (or after) attribute offset `pos`:
/// the matching `}` of its first brace block, or the first top-level `;`.
fn item_end(bytes: &[u8], pos: usize) -> usize {
    let mut i = pos;
    let mut depth = 0usize;
    let mut seen_brace = false;
    while i < bytes.len() {
        match bytes[i] {
            b'{' => {
                depth += 1;
                seen_brace = true;
            }
            b'}' => {
                depth = depth.saturating_sub(1);
                if seen_brace && depth == 0 {
                    return i + 1;
                }
            }
            b';' if !seen_brace
                && (!bytes[pos..i].contains(&b'[') || bytes[pos..i].contains(&b']')) =>
            {
                return i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    bytes.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).iter().map(|t| (t.kind, src[t.lo..t.hi].to_string())).collect()
    }

    #[test]
    fn round_trip_spans_cover_all_non_whitespace() {
        let src = "fn f<'a>(x: &'a str) -> f32 { let y = 1.5e-3f32; y + x.len() as f32 }\n";
        let toks = lex(src);
        let mut covered = vec![false; src.len()];
        for t in &toks {
            assert!(t.lo < t.hi, "empty span {t:?}");
            for c in covered.iter_mut().take(t.hi).skip(t.lo) {
                assert!(!*c, "overlapping token {t:?}");
                *c = true;
            }
        }
        for (i, b) in src.bytes().enumerate() {
            assert_eq!(covered[i], !b.is_ascii_whitespace(), "byte {i} ({:?})", b as char);
        }
    }

    #[test]
    fn raw_strings_at_every_hash_depth() {
        for src in [r###"let s = r"un"; x"###, r###"let s = r#"un"safe"#; x"###] {
            let toks = kinds(src);
            let strs: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::Str).collect();
            assert_eq!(strs.len(), 1, "{src}: {toks:?}");
            let last = toks.last().expect("tokens");
            assert_eq!(last.1, "x", "lexer must resync after the raw string: {toks:?}");
        }
        let deep = "r##\"contains \"# inner\"## + tail";
        let toks = kinds(deep);
        assert_eq!(toks[0].0, TokenKind::Str);
        assert_eq!(toks[0].1, "r##\"contains \"# inner\"##");
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let toks = kinds(r##"b"bytes" br#"raw"# b'x' banana"##);
        assert_eq!(toks[0], (TokenKind::Str, "b\"bytes\"".into()));
        assert_eq!(toks[1], (TokenKind::Str, "br#\"raw\"#".into()));
        assert_eq!(toks[2], (TokenKind::Char, "b'x'".into()));
        assert_eq!(toks[3], (TokenKind::Ident, "banana".into()));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'y'; let e = '\\n'; }");
        let lifetimes: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokenKind::Lifetime).cloned().collect();
        let chars: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::Char).cloned().collect();
        assert_eq!(lifetimes, vec![(TokenKind::Lifetime, "'a".into()); 2]);
        assert_eq!(chars, vec![(TokenKind::Char, "'y'".into()), (TokenKind::Char, "'\\n'".into())]);
    }

    #[test]
    fn nested_block_comments_lex_as_one_token() {
        let src = "/* outer /* inner */ still */ let z = 1;";
        let toks = kinds(src);
        assert_eq!(toks[0].0, TokenKind::BlockComment);
        assert_eq!(toks[0].1, "/* outer /* inner */ still */");
        assert_eq!(toks[1], (TokenKind::Ident, "let".into()));
    }

    #[test]
    fn numbers_with_radix_float_exponent_and_suffix() {
        let toks = kinds("0xFF_u8 0b1010 1_000 1.5 2e10 1.5e-3f32 0..n 1.max(2)");
        let nums: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokenKind::Num).map(|(_, s)| s.clone()).collect();
        assert_eq!(
            nums,
            vec!["0xFF_u8", "0b1010", "1_000", "1.5", "2e10", "1.5e-3f32", "0", "1", "2"]
        );
        assert!(toks.iter().any(|(k, s)| *k == TokenKind::Ident && s == "max"));
    }

    #[test]
    fn raw_identifiers() {
        let toks = kinds("let r#type = 1;");
        assert!(toks.iter().any(|(k, s)| *k == TokenKind::Ident && s == "r#type"));
    }

    // ---- channel views (ported from the retired scrub module) ---------

    #[test]
    fn comments_and_strings_leave_the_code_channel() {
        let src = "let x = \"HashMap\"; // HashMap here\nlet y = HashMap::new();\n";
        let s = SourceFile::new(src);
        assert!(!s.code_line(1).contains("HashMap"), "literal body must be blanked");
        assert!(s.comment_line(1).contains("HashMap"));
        assert!(s.code_line(2).contains("HashMap"));
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let src = "/* outer /* inner */ still comment */ let z = 1;\n";
        let s = SourceFile::new(src);
        assert!(s.code_line(1).contains("let z = 1;"));
        assert!(!s.code_line(1).contains("inner"));
    }

    #[test]
    fn raw_strings_and_lifetimes_are_handled() {
        let src = "fn f<'a>(x: &'a str) { let r = r#\"un\"safe\"#; let c = '\"'; let d = 'x'; }\n";
        let s = SourceFile::new(src);
        assert!(s.code_line(1).contains("fn f<'a>"));
        assert!(!s.code_line(1).contains("un\"safe"));
        assert!(s.code_line(1).contains("let d ="));
    }

    #[test]
    fn multiline_string_preserves_line_structure() {
        let src = "let s = \"line one\nline two\";\nlet after = 1;\n";
        let s = SourceFile::new(src);
        assert_eq!(s.n_lines(), 4);
        assert!(!s.code_line(1).contains("line one"));
        assert!(!s.code_line(2).contains("line two"));
        assert!(s.code_line(3).contains("let after"));
    }

    #[test]
    fn unicode_in_comments_survives_in_comment_channel() {
        let src = "// audit: ordered — membership only\nlet x = 1;\n";
        let s = SourceFile::new(src);
        assert!(s.comment_line(1).contains("audit: ordered"));
        assert!(s.comment_line(1).contains("—"));
        assert!(s.code_line(2).contains("let x"));
    }

    #[test]
    fn cfg_test_ranges_cover_the_test_module() {
        let src =
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { bad(); }\n}\nfn after() {}\n";
        let s = SourceFile::new(src);
        let bad_at = src.find("bad").expect("fixture");
        let after_at = src.find("after").expect("fixture");
        assert!(s.in_test(bad_at));
        assert!(!s.in_test(after_at));
        assert!(!s.in_test(0));
    }

    #[test]
    fn line_numbers_map_back() {
        let src = "a\nb\nc\n";
        let s = SourceFile::new(src);
        assert_eq!(s.line_of(0), 1);
        assert_eq!(s.line_of(2), 2);
        assert_eq!(s.line_of(4), 3);
        assert_eq!(s.n_lines(), 4); // trailing newline opens a last, empty line
    }
}
