//! A lightweight item parser over the token stream: module / impl / fn
//! boundaries, call and method-call expressions, and `unsafe` sites.
//!
//! This is deliberately *approximate* — it has no name resolution and no
//! type information. It recovers exactly the structure the call-graph
//! analyses need:
//!
//! * every `fn` item, with its name, the impl type it belongs to (when
//!   inside an `impl` block), its body's token and byte range, and
//!   whether it sits inside a `#[cfg(test)]` item;
//! * every call site inside a fn body — free calls `f(…)`, path calls
//!   `m::f(…)` / `Type::f(…)`, method calls `x.f(…)`, plus identifiers
//!   passed *into* macro invocations (which is how `dispatch!`-style
//!   routing macros forward to their renderings);
//! * every `unsafe` keyword, for the SAFETY inventory.
//!
//! Braces are matched exactly (the lexer already removed comments,
//! strings, and char literals, so `{` counting is sound).

use crate::lexer::{SourceFile, Token, TokenKind};

/// One function item (free fn, method, trait default method, or nested
/// fn). Bodiless declarations (trait method signatures) get an empty
/// body range and no calls.
#[derive(Debug)]
pub struct FnItem {
    /// The fn's bare name.
    pub name: String,
    /// The enclosing impl's self type (`impl Server { fn start … }` →
    /// `Some("Server")`), or the trait name for trait default methods.
    pub qual: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Byte offset of the `fn` keyword (signature start).
    pub item_lo: usize,
    /// Byte span of the body including its braces (`(0, 0)` when
    /// bodiless, e.g. a trait method signature).
    pub body_span: (usize, usize),
    /// True when the fn sits inside a `#[cfg(test)]` item.
    pub is_test: bool,
    /// True when the fn takes a `self` receiver (it is a *method*):
    /// `.name(…)` call sites resolve only to these.
    pub has_self: bool,
    /// Call sites found in the body, in source order.
    pub calls: Vec<Call>,
}

/// One (approximate) call site.
#[derive(Debug)]
pub struct Call {
    /// Callee name (last path segment / method name / macro-forwarded
    /// identifier).
    pub name: String,
    /// Path qualifier directly before `::` (`Type::new(…)` → `Type`),
    /// with `Self` already resolved to the enclosing impl type.
    pub qual: Option<String>,
    /// True for `.name(…)` method-call syntax: resolution restricts the
    /// candidates to fns with a `self` receiver.
    pub is_method: bool,
    /// 1-based source line.
    pub line: usize,
}

/// An `unsafe` keyword occurrence (block or fn).
#[derive(Debug)]
pub struct UnsafeSite {
    /// 1-based source line.
    pub line: usize,
    /// Index into [`FileSyntax::fns`] of the innermost enclosing fn.
    pub fn_idx: Option<usize>,
    /// True inside `#[cfg(test)]` code.
    pub is_test: bool,
}

/// Parsed structure of one file.
#[derive(Debug, Default)]
pub struct FileSyntax {
    pub fns: Vec<FnItem>,
    pub unsafes: Vec<UnsafeSite>,
}

/// Keywords that can directly precede `(` without being calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "match", "return", "for", "loop", "unsafe", "move", "else", "let", "in", "as",
    "where", "break", "continue", "fn", "impl", "pub", "use", "mod", "dyn", "ref", "mut", "box",
    "await", "yield",
];

/// What a pending `{` will open, decided by the keyword that announced it.
#[derive(Clone)]
enum Pending {
    Fn { fn_idx: usize },
    Impl { ty: Option<String> },
}

#[derive(Clone)]
enum Ctx {
    Fn { fn_idx: usize },
    Impl { ty: Option<String> },
    Other,
}

/// Parse `sf` into items. Single pass over the code tokens with an
/// explicit brace-context stack.
pub fn parse_file(sf: &SourceFile) -> FileSyntax {
    let toks: Vec<&Token> = sf
        .tokens
        .iter()
        .filter(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
        .collect();
    let mut out = FileSyntax::default();
    let mut stack: Vec<Ctx> = Vec::new();
    let mut pending: Option<Pending> = None;
    // Open fns by stack depth, innermost last: (fn_idx, body start token).
    let mut fn_stack: Vec<usize> = Vec::new();

    let text = |i: usize| sf.text(toks[i]);

    let mut i = 0;
    while i < toks.len() {
        let t = toks[i];
        match t.kind {
            TokenKind::Ident => {
                let w = text(i);
                match w {
                    "fn" => {
                        // `fn name` — the name is the next ident.
                        if i + 1 < toks.len() && toks[i + 1].kind == TokenKind::Ident {
                            let qual = stack.iter().rev().find_map(|c| match c {
                                Ctx::Impl { ty } => Some(ty.clone()),
                                _ => None,
                            });
                            out.fns.push(FnItem {
                                name: text(i + 1).to_string(),
                                qual: qual.flatten(),
                                line: sf.line_of(t.lo),
                                item_lo: t.lo,
                                body_span: (0, 0),
                                is_test: sf.in_test(t.lo),
                                has_self: fn_has_self_receiver(sf, &toks, i + 2),
                                calls: Vec::new(),
                            });
                            pending = Some(Pending::Fn { fn_idx: out.fns.len() - 1 });
                            i += 2;
                            continue;
                        }
                    }
                    "impl" => {
                        // `-> impl Iterator<…>` in a return position must
                        // not clobber the pending fn whose body follows.
                        if !matches!(pending, Some(Pending::Fn { .. })) {
                            pending = Some(Pending::Impl { ty: impl_self_type(sf, &toks, i) });
                        }
                    }
                    "unsafe" => {
                        out.unsafes.push(UnsafeSite {
                            line: sf.line_of(t.lo),
                            fn_idx: fn_stack.last().copied(),
                            is_test: sf.in_test(t.lo),
                        });
                    }
                    _ => {
                        // Call-site detection, only inside a fn body.
                        if let Some(&fn_idx) = fn_stack.last() {
                            if !NON_CALL_KEYWORDS.contains(&w) {
                                scan_call(sf, &toks, i, &stack, &mut out.fns[fn_idx].calls);
                            }
                        }
                    }
                }
                // A `;` before any `{` cancels a pending item (trait
                // method declarations, `impl Trait for T;` never occurs).
                i += 1;
                continue;
            }
            TokenKind::Punct => match sf.code.as_bytes()[t.lo] {
                b'{' => {
                    let ctx = match pending.take() {
                        Some(Pending::Fn { fn_idx }) => {
                            out.fns[fn_idx].body_span = (t.lo, t.lo); // end patched on close
                            fn_stack.push(fn_idx);
                            Ctx::Fn { fn_idx }
                        }
                        Some(Pending::Impl { ty }) => Ctx::Impl { ty },
                        _ => Ctx::Other,
                    };
                    stack.push(ctx);
                }
                b'}' => {
                    if let Some(Ctx::Fn { fn_idx }) = stack.pop() {
                        out.fns[fn_idx].body_span.1 = t.hi;
                        fn_stack.pop();
                    }
                }
                b';' => {
                    // Bodiless fn decl (trait signature) or `use`/`static`.
                    pending = None;
                }
                _ => {}
            },
            _ => {}
        }
        i += 1;
    }
    out
}

/// True when the fn whose token after the name is at index `j` declares
/// a `self` receiver. Skips the generic parameter list, then looks at
/// the start of the argument list: any `self` ident before the first
/// `:` or `,` (i.e. `self`, `&self`, `&'a mut self`, `self: Pin<…>`)
/// makes it a method.
fn fn_has_self_receiver(sf: &SourceFile, toks: &[&Token], mut j: usize) -> bool {
    // Skip `<…>` generics (balanced angles; lifetimes are one token).
    if j < toks.len() && sf.text(toks[j]) == "<" {
        let mut depth = 0i32;
        while j < toks.len() {
            match sf.text(toks[j]) {
                "<" => depth += 1,
                ">" => {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
    }
    if j >= toks.len() || sf.text(toks[j]) != "(" {
        return false;
    }
    for t in toks.iter().skip(j + 1).take(5) {
        match sf.text(t) {
            "self" => return true,
            ":" | "," | ")" => return false,
            _ => {}
        }
    }
    false
}

/// The self type of an `impl` header starting at token `i` (`impl`):
/// skip generics, and for `impl Trait for Type` take the type after
/// `for`. Returns the base identifier (`NeighborIter<'a>` → `NeighborIter`,
/// `crate::report::RunSummary` → `RunSummary`).
fn impl_self_type(sf: &SourceFile, toks: &[&Token], i: usize) -> Option<String> {
    let mut j = i + 1;
    // Skip `<generics>` (balanced; lifetimes are single tokens so `<'a>`
    // is `<`, `'a`, `>`).
    if j < toks.len() && sf.text(toks[j]) == "<" {
        let mut depth = 0i32;
        while j < toks.len() {
            match sf.text(toks[j]) {
                "<" => depth += 1,
                ">" => {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
    }
    // Collect until `{` (or `where`), noting a `for` split.
    let mut segment: Vec<(usize, String)> = Vec::new(); // idents seen, with index
    let mut after_for: Option<usize> = None;
    let mut angle = 0i32;
    while j < toks.len() {
        let w = sf.text(toks[j]);
        match w {
            "{" if angle <= 0 => break,
            "where" if angle <= 0 => break,
            "<" => angle += 1,
            ">" => angle -= 1,
            "for" if angle <= 0 => after_for = Some(segment.len()),
            _ => {
                if toks[j].kind == TokenKind::Ident && !matches!(w, "dyn" | "mut" | "const") {
                    segment.push((j, w.to_string()));
                }
            }
        }
        j += 1;
    }
    let slice: Vec<String> = match after_for {
        Some(split) => segment[split..].iter().map(|(_, s)| s.clone()).collect(),
        None => segment.iter().map(|(_, s)| s.clone()).collect(),
    };
    // Base = the ident right before the first `<` in source order; since
    // we dropped `<` while collecting, approximate with: the first ident
    // of the path's last `::`-free run — in practice the LAST ident
    // before any generic args. Path segments like `crate::x::Foo<T>`
    // collect as [crate, x, Foo, T]; the base is the segment whose next
    // token in source was `<` or `{`. Recompute precisely:
    let mut base: Option<String> = None;
    let start = after_for
        .map(|split| segment.get(split).map(|(j, _)| *j).unwrap_or(usize::MAX))
        .unwrap_or(0);
    for (j, name) in &segment {
        if *j < start {
            continue;
        }
        let next = toks.get(j + 1).map(|t| sf.text(t)).unwrap_or("");
        if next == "<" || next == "{" || next == "where" {
            base = Some(name.clone());
            break;
        }
        if base.is_none() {
            base = Some(name.clone());
        }
    }
    base.or_else(|| slice.first().cloned())
}

/// If token `i` (an ident, not a keyword) starts a call or feeds a macro,
/// record it. Grammar handled:
///
/// * `name(` — free call;
/// * `qual::name(` — path call (qualifier captured, `Self` resolved);
/// * `.name(` — method call;
/// * `name!(a, helper, b)` — macro invocation: every bare identifier in
///   the argument list that *could* be a function reference is recorded
///   as a call, so routing macros (`dispatch!`) and fn-pointer arguments
///   keep the graph connected. Resolution later drops names that match
///   no workspace fn.
fn scan_call(sf: &SourceFile, toks: &[&Token], i: usize, stack: &[Ctx], calls: &mut Vec<Call>) {
    let name = sf.text(toks[i]).to_string();
    let line = sf.line_of(toks[i].lo);
    let next = toks.get(i + 1);
    let next_txt = next.map(|t| sf.text(t)).unwrap_or("");
    let prev_txt = if i > 0 { sf.text(toks[i - 1]) } else { "" };

    if next_txt == "(" {
        // Qualifier: `A::name(` → A; `.name(` → method (no qualifier).
        let mut qual = None;
        if prev_txt == ":"
            && i >= 3
            && sf.text(toks[i - 2]) == ":"
            && toks[i - 3].kind == TokenKind::Ident
        {
            let q = sf.text(toks[i - 3]);
            qual = if q == "Self" {
                stack.iter().rev().find_map(|c| match c {
                    Ctx::Impl { ty } => ty.clone(),
                    _ => None,
                })
            } else {
                Some(q.to_string())
            };
        }
        calls.push(Call { name, qual, is_method: prev_txt == ".", line });
    } else if next_txt == "!" {
        // Macro invocation: scan the delimited argument list for bare
        // identifiers (not followed by `(`/`!` — those recurse through
        // this scanner anyway; not preceded by `.`/`:` — field/path
        // tails resolve on their own line).
        let Some(open) = toks.get(i + 2) else { return };
        let (open_b, close_b) = match sf.code.as_bytes()[open.lo] {
            b'(' => (b'(', b')'),
            b'[' => (b'[', b']'),
            b'{' => (b'{', b'}'),
            _ => return,
        };
        let mut depth = 0i32;
        let mut j = i + 2;
        while j < toks.len() {
            let b = sf.code.as_bytes()[toks[j].lo];
            if toks[j].kind == TokenKind::Punct {
                if b == open_b {
                    depth += 1;
                } else if b == close_b {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
            } else if toks[j].kind == TokenKind::Ident {
                let w = sf.text(toks[j]);
                let nx = toks.get(j + 1).map(|t| sf.text(t)).unwrap_or("");
                let pv = sf.text(toks[j - 1]);
                if !NON_CALL_KEYWORDS.contains(&w)
                    && nx != "("
                    && nx != "!"
                    && pv != "."
                    && pv != ":"
                {
                    calls.push(Call {
                        name: w.to_string(),
                        qual: None,
                        is_method: false,
                        line: sf.line_of(toks[j].lo),
                    });
                }
            }
            j += 1;
        }
    }
    // `.name(` method calls arrive here too (prev == "."), captured by
    // the `next == "("` branch above with qual None.
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::SourceFile;

    fn parse(src: &str) -> FileSyntax {
        parse_file(&SourceFile::new(src))
    }

    fn fn_names(fs: &FileSyntax) -> Vec<(Option<String>, String)> {
        fs.fns.iter().map(|f| (f.qual.clone(), f.name.clone())).collect()
    }

    #[test]
    fn free_fns_methods_and_trait_impls_get_quals() {
        let src = "fn free() {}\nimpl Server { pub fn start(&self) {} }\nimpl Model for Ckat { fn train_epoch(&mut self) {} }\nimpl<'a> Iterator for NeighborIter<'a> { fn next(&mut self) {} }\n";
        let fs = parse(src);
        assert_eq!(
            fn_names(&fs),
            vec![
                (None, "free".into()),
                (Some("Server".into()), "start".into()),
                (Some("Ckat".into()), "train_epoch".into()),
                (Some("NeighborIter".into()), "next".into()),
            ]
        );
    }

    #[test]
    fn generic_and_path_impl_types_resolve_to_base_ident() {
        let src = "impl From<CkptError> for TrainError { fn from(e: CkptError) -> Self { x() } }\nimpl crate::report::RunSummary { fn row(&self) {} }\n";
        let fs = parse(src);
        assert_eq!(fs.fns[0].qual.as_deref(), Some("TrainError"));
        assert_eq!(fs.fns[1].qual.as_deref(), Some("RunSummary"));
    }

    #[test]
    fn calls_free_path_method_and_self() {
        let src = "impl Engine { fn handle(&self) { helper(); kernels::gather(1); self.plan(); Self::score(); } }\n";
        let fs = parse(src);
        let calls: Vec<_> =
            fs.fns[0].calls.iter().map(|c| (c.qual.clone(), c.name.clone())).collect();
        assert_eq!(
            calls,
            vec![
                (None, "helper".into()),
                (Some("kernels".into()), "gather".into()),
                (None, "plan".into()),
                (Some("Engine".into()), "score".into()),
            ]
        );
    }

    #[test]
    fn macro_arguments_forward_identifiers() {
        let src = "fn wrap(a: &[f32]) { dispatch!(score_block, a, n); }\n";
        let fs = parse(src);
        let names: Vec<_> = fs.fns[0].calls.iter().map(|c| c.name.as_str()).collect();
        assert!(names.contains(&"score_block"), "{names:?}");
        assert!(names.contains(&"a"), "macro args over-approximate: {names:?}");
    }

    #[test]
    fn nested_fns_and_closures_attribute_calls_to_the_innermost_fn() {
        let src =
            "fn outer() { fn inner() { deep(); } let c = |x: u32| shallow(x); c(1); inner(); }\n";
        let fs = parse(src);
        assert_eq!(fn_names(&fs), vec![(None, "outer".into()), (None, "inner".into())]);
        let outer_calls: Vec<_> = fs.fns[0].calls.iter().map(|c| c.name.as_str()).collect();
        let inner_calls: Vec<_> = fs.fns[1].calls.iter().map(|c| c.name.as_str()).collect();
        assert!(inner_calls.contains(&"deep"));
        assert!(outer_calls.contains(&"shallow"), "{outer_calls:?}");
        assert!(outer_calls.contains(&"inner"));
        assert!(!outer_calls.contains(&"deep"));
    }

    #[test]
    fn trait_declarations_without_bodies_parse_and_skip() {
        let src = "trait Model { fn train_epoch(&mut self); fn score(&self) -> f32 { base() } }\nfn after() { after_call(); }\n";
        let fs = parse(src);
        assert_eq!(fs.fns.len(), 3);
        assert_eq!(fs.fns[0].body_span, (0, 0), "bodiless decl");
        assert!(fs.fns[1].calls.iter().any(|c| c.name == "base"));
        assert!(fs.fns[2].calls.iter().any(|c| c.name == "after_call"));
    }

    #[test]
    fn cfg_test_fns_are_marked() {
        let src =
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { live(); }\n}\n";
        let fs = parse(src);
        assert!(!fs.fns[0].is_test);
        assert!(fs.fns[1].is_test);
    }

    #[test]
    fn unsafe_sites_record_enclosing_fn() {
        let src = "fn a() { unsafe { x() } }\nunsafe fn b() {}\n";
        let fs = parse(src);
        assert_eq!(fs.unsafes.len(), 2);
        assert_eq!(fs.unsafes[0].fn_idx, Some(0));
        assert_eq!(fs.unsafes[1].fn_idx, None, "unsafe fn keyword precedes the body");
    }

    #[test]
    fn control_keywords_before_parens_are_not_calls() {
        let src = "fn f(x: u32) { if (x > 0) { g(); } while (x < 9) { break; } match (x) { _ => h(), } }\n";
        let fs = parse(src);
        let names: Vec<_> = fs.fns[0].calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["g", "h"]);
    }
}
