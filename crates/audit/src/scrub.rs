//! Lossless source scrubbing: separate a Rust file into its *code* text
//! and its *comment* text, and mark `#[cfg(test)]` regions.
//!
//! The auditor has no `syn` (the workspace builds offline with stub
//! dependencies only), so rules match token patterns against a scrubbed
//! view of the source instead of an AST:
//!
//! * [`Scrubbed::code`] — the original text with every comment body and
//!   every string/char literal body replaced by spaces. Byte offsets and
//!   line structure are preserved exactly, so a match position maps
//!   straight back to a source line.
//! * [`Scrubbed::comments`] — the complement: only comment text survives
//!   (used to find `// audit:` waivers and `// SAFETY:` justifications).
//!
//! The scanner understands line comments, *nested* block comments, string
//! literals with escapes, raw strings (`r"…"`, `r#"…"#`, any hash depth,
//! plus byte variants), char/byte literals, and distinguishes lifetimes
//! (`'a`) from char literals.

/// A source file split into code and comment channels.
pub struct Scrubbed {
    /// Code with comments and literal bodies blanked; same length and
    /// line structure as the input.
    pub code: String,
    /// Comment text only (everything else blanked); same length as input.
    pub comments: String,
    /// Byte ranges covered by `#[cfg(test)]` items (test modules/fns).
    test_ranges: Vec<(usize, usize)>,
    /// Byte offset of the start of each line.
    line_starts: Vec<usize>,
}

impl Scrubbed {
    /// Scrub `source` and locate its test regions.
    pub fn new(source: &str) -> Self {
        let (code, comments) = split_channels(source);
        let test_ranges = find_test_ranges(&code);
        let mut line_starts = vec![0usize];
        for (i, b) in source.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        Self { code, comments, test_ranges, line_starts }
    }

    /// 1-based line number of byte `offset`.
    pub fn line_of(&self, offset: usize) -> usize {
        match self.line_starts.binary_search(&offset) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }

    /// True when byte `offset` falls inside a `#[cfg(test)]` item.
    pub fn in_test(&self, offset: usize) -> bool {
        self.test_ranges.iter().any(|&(lo, hi)| (lo..hi).contains(&offset))
    }

    /// The comment text of 1-based `line` (blanks where code was).
    pub fn comment_line(&self, line: usize) -> &str {
        self.channel_line(&self.comments, line)
    }

    /// The code text of 1-based `line` (blanks where comments were).
    pub fn code_line(&self, line: usize) -> &str {
        self.channel_line(&self.code, line)
    }

    /// True when 1-based `line` starts inside a `#[cfg(test)]` item.
    pub fn in_test_line(&self, line: usize) -> bool {
        self.in_test(self.line_offset(line))
    }

    /// Byte offset of the start of 1-based `line`.
    pub fn line_offset(&self, line: usize) -> usize {
        self.line_starts.get(line.saturating_sub(1)).copied().unwrap_or(self.code.len())
    }

    /// Number of lines in the file.
    pub fn n_lines(&self) -> usize {
        self.line_starts.len()
    }

    fn channel_line<'a>(&self, channel: &'a str, line: usize) -> &'a str {
        if line == 0 || line > self.line_starts.len() {
            return "";
        }
        let lo = self.line_starts[line - 1];
        let hi = self.line_starts.get(line).copied().unwrap_or(channel.len());
        channel[lo..hi].trim_end_matches('\n')
    }
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

/// Split `source` into (code, comments), both the same length as the
/// input with the other channel's bytes replaced by spaces (newlines are
/// kept in both so line numbers survive).
fn split_channels(source: &str) -> (String, String) {
    let bytes = source.as_bytes();
    let n = bytes.len();
    let mut code = vec![b' '; n];
    let mut comments = vec![b' '; n];
    let mut state = State::Code;
    let mut i = 0;
    while i < n {
        let b = bytes[i];
        if b == b'\n' {
            code[i] = b'\n';
            comments[i] = b'\n';
            if state == State::LineComment {
                state = State::Code;
            }
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                if b == b'/' && i + 1 < n && bytes[i + 1] == b'/' {
                    state = State::LineComment;
                    comments[i] = b'/';
                    comments[i + 1] = b'/';
                    i += 2;
                } else if b == b'/' && i + 1 < n && bytes[i + 1] == b'*' {
                    state = State::BlockComment(1);
                    comments[i] = b'/';
                    comments[i + 1] = b'*';
                    i += 2;
                } else if b == b'"' {
                    // Keep the delimiter in the code channel so patterns
                    // like `"` never match literal *contents*.
                    code[i] = b'"';
                    state = State::Str;
                    i += 1;
                } else if b == b'r' && raw_str_hashes(bytes, i).is_some() {
                    let hashes = raw_str_hashes(bytes, i).unwrap_or(0);
                    code[i] = b'r';
                    // Blank the `#…"` opener too (already spaces).
                    state = State::RawStr(hashes);
                    i += 1 + hashes as usize + 1;
                } else if b == b'b' && i + 1 < n && bytes[i + 1] == b'"' {
                    code[i] = b'b';
                    code[i + 1] = b'"';
                    state = State::Str;
                    i += 2;
                } else if b == b'b' && i + 2 < n && bytes[i + 1] == b'r' {
                    if let Some(hashes) = raw_str_hashes(bytes, i + 1) {
                        code[i] = b'b';
                        code[i + 1] = b'r';
                        state = State::RawStr(hashes);
                        i += 2 + hashes as usize + 1;
                    } else {
                        code[i] = b;
                        i += 1;
                    }
                } else if b == b'\'' && is_char_literal(bytes, i) {
                    code[i] = b'\'';
                    state = State::Char;
                    i += 1;
                } else {
                    code[i] = b;
                    i += 1;
                }
            }
            State::LineComment => {
                comments[i] = b;
                i += 1;
            }
            State::BlockComment(depth) => {
                if b == b'*' && i + 1 < n && bytes[i + 1] == b'/' {
                    comments[i] = b'*';
                    comments[i + 1] = b'/';
                    state = if depth == 1 { State::Code } else { State::BlockComment(depth - 1) };
                    i += 2;
                } else if b == b'/' && i + 1 < n && bytes[i + 1] == b'*' {
                    comments[i] = b'/';
                    comments[i + 1] = b'*';
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else {
                    comments[i] = b;
                    i += 1;
                }
            }
            State::Str => {
                if b == b'\\' && i + 1 < n {
                    i += 2;
                } else if b == b'"' {
                    code[i] = b'"';
                    state = State::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if b == b'"' && closes_raw(bytes, i, hashes) {
                    code[i] = b'"';
                    state = State::Code;
                    i += 1 + hashes as usize;
                } else {
                    i += 1;
                }
            }
            State::Char => {
                if b == b'\\' && i + 1 < n {
                    i += 2;
                } else if b == b'\'' {
                    code[i] = b'\'';
                    state = State::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
        }
    }
    // Both channels were built byte-for-byte from ASCII writes over a
    // space-filled buffer, so they are valid UTF-8 (multi-byte chars in
    // literals/comments become runs of spaces — fine for matching).
    (String::from_utf8(code).unwrap_or_default(), String::from_utf8(comments).unwrap_or_default())
}

/// If `bytes[i..]` opens a raw string (`r"`, `r#"`, `r##"`, …), return the
/// hash count.
fn raw_str_hashes(bytes: &[u8], i: usize) -> Option<u32> {
    if bytes.get(i) != Some(&b'r') {
        return None;
    }
    let mut j = i + 1;
    let mut hashes = 0u32;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    (bytes.get(j) == Some(&b'"')).then_some(hashes)
}

/// True when the `"` at `i` is followed by `hashes` `#` bytes.
fn closes_raw(bytes: &[u8], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| bytes.get(i + k) == Some(&b'#'))
}

/// Distinguish a char literal (`'x'`, `'\n'`) from a lifetime (`'a`).
fn is_char_literal(bytes: &[u8], i: usize) -> bool {
    match bytes.get(i + 1) {
        Some(b'\\') => true,
        Some(_) => bytes.get(i + 2) == Some(&b'\''),
        None => false,
    }
}

/// Byte ranges of items annotated `#[cfg(test)]` (attribute through the
/// item's closing brace or terminating semicolon), found on the code
/// channel so commented-out attributes don't count.
fn find_test_ranges(code: &str) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut from = 0;
    while let Some(pos) = find_cfg_test(code, from) {
        let end = item_end(code.as_bytes(), pos);
        ranges.push((pos, end));
        from = end.max(pos + 1);
    }
    ranges
}

/// Next `#[cfg(test)]`-style attribute at or after `from` (tolerates
/// whitespace and `cfg(all(test, …))`).
fn find_cfg_test(code: &str, from: usize) -> Option<usize> {
    let mut at = from;
    while let Some(rel) = code[at..].find("cfg") {
        let pos = at + rel;
        // Must look like an attribute containing `test` before the `)`.
        let tail = &code[pos..code.len().min(pos + 64)];
        let open = tail.find('(');
        if let Some(open) = open {
            if tail[..open].trim() == "cfg" {
                if let Some(close) = tail[open..].find(')').map(|c| open + c) {
                    if tail[open..close].contains("test") {
                        // Walk back to the `#` of the attribute.
                        let head = code[..pos].rfind('#').unwrap_or(pos);
                        if code[head..pos]
                            .chars()
                            .all(|c| c == '#' || c == '[' || c.is_whitespace())
                        {
                            return Some(head);
                        }
                    }
                }
            }
        }
        at = pos + 3;
    }
    None
}

/// End offset of the item starting at (or after) attribute offset `pos`:
/// the matching `}` of its first brace block, or the first top-level `;`.
fn item_end(bytes: &[u8], pos: usize) -> usize {
    let mut i = pos;
    let mut depth = 0usize;
    let mut seen_brace = false;
    while i < bytes.len() {
        match bytes[i] {
            b'{' => {
                depth += 1;
                seen_brace = true;
            }
            b'}' => {
                depth = depth.saturating_sub(1);
                if seen_brace && depth == 0 {
                    return i + 1;
                }
            }
            // `#[cfg(test)] mod tests;` or a cfg'd use/static. Skip
            // semicolons inside the attribute's own brackets.
            b';' if !seen_brace
                && (!bytes[pos..i].contains(&b'[') || bytes[pos..i].contains(&b']')) =>
            {
                return i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    bytes.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_leave_the_code_channel() {
        let src = "let x = \"HashMap\"; // HashMap here\nlet y = HashMap::new();\n";
        let s = Scrubbed::new(src);
        assert!(!s.code_line(1).contains("HashMap"), "literal body must be blanked");
        assert!(s.comment_line(1).contains("HashMap"));
        assert!(s.code_line(2).contains("HashMap"));
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let src = "/* outer /* inner */ still comment */ let z = 1;\n";
        let s = Scrubbed::new(src);
        assert!(s.code_line(1).contains("let z = 1;"));
        assert!(!s.code_line(1).contains("inner"));
    }

    #[test]
    fn raw_strings_and_lifetimes_are_handled() {
        let src = "fn f<'a>(x: &'a str) { let r = r#\"un\"safe\"#; let c = '\"'; let d = 'x'; }\n";
        let s = Scrubbed::new(src);
        assert!(s.code_line(1).contains("fn f<'a>"));
        assert!(!s.code_line(1).contains("un\"safe"));
        assert!(s.code_line(1).contains("let d ="));
    }

    #[test]
    fn cfg_test_ranges_cover_the_test_module() {
        let src =
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { bad(); }\n}\nfn after() {}\n";
        let s = Scrubbed::new(src);
        let bad_at = src.find("bad").expect("fixture");
        let after_at = src.find("after").expect("fixture");
        assert!(s.in_test(bad_at));
        assert!(!s.in_test(after_at));
        assert!(!s.in_test(0));
    }

    #[test]
    fn line_numbers_map_back() {
        let src = "a\nb\nc\n";
        let s = Scrubbed::new(src);
        assert_eq!(s.line_of(0), 1);
        assert_eq!(s.line_of(2), 2);
        assert_eq!(s.line_of(4), 3);
        assert_eq!(s.n_lines(), 4); // trailing newline opens a last, empty line
    }
}
