//! The audit rules: what counts as a finding, where each rule applies,
//! and how findings are waived.
//!
//! Two kinds of rule live here and in [`crate::analysis`]:
//!
//! * **line rules** (this module) fire on a single line of the code
//!   channel — `unsafe` without `// SAFETY:`, wall-clock tokens outside
//!   exempt crates, unbounded queues in serving code, undocumented
//!   reduction order in the lane-kernel module;
//! * **call-graph analyses** (`analysis::panic_reach`,
//!   `analysis::taint`) fire on a *path through the call graph* — an
//!   implicit panic transitively reachable from a hot-path root, or a
//!   nondeterminism source reachable from a deterministic root. These
//!   replaced the old per-file `HOT_PATH_FILES` / `DETERMINISTIC_SCOPES`
//!   deny-lists.
//!
//! Every rule is a *deliberate over-approximation* — the auditor has no
//! type information, so it bans the pattern outright and lets genuinely
//! order-insensitive / structurally-safe uses carry an inline waiver:
//!
//! ```text
//! // audit: <tag> — <why this use is safe>            (one site)
//! // audit: fn <tag> — <why every site in this fn>    (above a fn)
//! // audit: module <tag> — <why the whole file>       (anywhere)
//! ```
//!
//! The site form goes on the finding's line or within three lines above
//! it; the fn form within three lines above the `fn` keyword; the module
//! form anywhere in the file's comments. DESIGN.md §7b documents each
//! rule's rationale.

use crate::lexer::SourceFile;

/// Identifier of one audit rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// Hash-ordered collections reachable from a deterministic root
    /// (taint analysis).
    HashOrder,
    /// Wall-clock / entropy sources feeding values or seeds.
    Wallclock,
    /// `unsafe` without a `// SAFETY:` justification.
    UnsafeComment,
    /// Implicit panics (`unwrap`/`expect`/indexing/`panic!`) reachable
    /// from a hot-path root (panic-reachability analysis).
    PanicReach,
    /// Unordered float accumulation reachable from a deterministic root
    /// (taint analysis).
    FloatFold,
    /// Unbounded channel/queue construction in serving code.
    UnboundedQueue,
    /// Undocumented float reduction order in the lane-kernel module.
    LaneFold,
}

impl Rule {
    /// Short machine-readable rule id, as printed in reports.
    pub fn id(self) -> &'static str {
        match self {
            Rule::HashOrder => "hash-order",
            Rule::Wallclock => "wallclock",
            Rule::UnsafeComment => "unsafe-comment",
            Rule::PanicReach => "panic-reach",
            Rule::FloatFold => "float-fold",
            Rule::UnboundedQueue => "unbounded-queue",
            Rule::LaneFold => "lane-fold",
        }
    }

    /// The waiver tag accepted in `// audit: <tag>` comments (the
    /// `unsafe-comment` rule is waived by a `// SAFETY:` comment instead).
    pub fn waiver_tag(self) -> &'static str {
        match self {
            Rule::HashOrder => "ordered",
            Rule::Wallclock => "wallclock",
            Rule::UnsafeComment => "SAFETY",
            Rule::PanicReach => "unwrap",
            Rule::FloatFold => "fold",
            Rule::UnboundedQueue => "bounded",
            Rule::LaneFold => "lanes",
        }
    }
}

/// One audit finding: a rule violation at a source line.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The violated rule.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
    /// For call-graph findings: the root → … → fn chain that makes the
    /// site reachable. `None` for line rules.
    pub chain: Option<String>,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule.id(), self.message)?;
        if let Some(chain) = &self.chain {
            write!(f, " [via {chain}]")?;
        }
        Ok(())
    }
}

/// Where each rule applies and which symbols root the call-graph
/// analyses. Every entry is validated against the scanned tree — a path
/// prefix that matches no file or a root spec that resolves to no fn is
/// a hard config error (exit 2), so renames can't silently disable a
/// rule the way the old deny-lists could.
pub struct AuditConfig {
    /// Online-serving code: the unbounded-queue rule applies here.
    pub serving_scopes: Vec<&'static str>,
    /// Crates exempt from the wall-clock line rule: benchmarks measure
    /// wall time by design, and the auditor itself names the banned
    /// tokens.
    pub wallclock_exempt: Vec<&'static str>,
    /// Hand-unrolled SIMD kernel modules: the lane-fold rule applies
    /// here — every reduction must follow the `[f32; LANES]`
    /// accumulate-then-`fold_lanes` contract.
    pub lane_scopes: Vec<&'static str>,
    /// Hot-path roots for panic-reachability: `"name"` or
    /// `"Type::name"` specs. Anything transitively callable from these
    /// must not panic implicitly.
    pub panic_roots: Vec<&'static str>,
    /// Deterministic roots for nondeterminism taint: anything
    /// transitively callable from these must not read hash order, wall
    /// clocks, entropy, or fold floats in unordered ways.
    pub taint_roots: Vec<&'static str>,
}

impl AuditConfig {
    /// The real workspace configuration.
    pub fn workspace() -> Self {
        AuditConfig {
            serving_scopes: vec!["crates/serve/src"],
            wallclock_exempt: vec!["crates/bench", "crates/audit", "crates/tsne"],
            lane_scopes: vec!["crates/linalg/src/kernels.rs", "crates/linalg/src/retrieval.rs"],
            // The serving request path (a panic burns a worker thread and
            // drops an admitted request), snapshot scoring/ranking, the
            // trainer's epoch machinery, the replica pool, the batched
            // retrieval engine, and the eval chunk workers.
            panic_roots: vec![
                "Engine::handle",
                "Engine::handle_batch",
                "Server::start",
                "Server::submit",
                "worker_loop",
                "ModelSnapshot::score_user",
                "ModelSnapshot::rank_top_k",
                "ModelSnapshot::rank_top_k_batch",
                "BatchTopK::rank_block",
                "rank_top_k",
                "evaluate_chunked",
                "score_chunk_blocked",
                "run_loop",
                "train_epoch",
                "train_epoch_replicated",
                "pooled_map",
            ],
            // Everything whose output must be bitwise-reproducible:
            // training loops, the replica fold, eval, snapshot scoring,
            // batched retrieval, the KG builder, and the datagen
            // pipeline (fixed seeds end-to-end).
            taint_roots: vec![
                "train_epoch",
                "train_epoch_replicated",
                "run_loop",
                "pooled_map",
                "fold_ordered",
                "fold_grads_ordered",
                "evaluate_chunked",
                "ModelSnapshot::score_user",
                "BatchTopK::rank_block",
                "rank_top_k",
                "CkgBuilder::build",
                "generate",
                "fig3_series",
                "read_trace_with",
                "from_parts",
                "from_users",
                "write_trace",
            ],
        }
    }

    /// Configuration for the auditor's own fixture tree (`--fixtures`):
    /// same rules, roots resolving to the fixture programs' entry fns.
    pub fn fixtures() -> Self {
        AuditConfig {
            serving_scopes: vec!["crates/serve/src"],
            wallclock_exempt: vec!["crates/bench"],
            lane_scopes: vec!["crates/linalg/src/kernels.rs"],
            panic_roots: vec!["run_loop", "hot_path", "deep_root", "waived_root", "clean_root"],
            taint_roots: vec![
                "iterate",
                "waived",
                "unordered",
                "exempt",
                "routed",
                "outside",
                "taint_entry",
                "taint_waived_root",
                "taint_clean_root",
            ],
        }
    }
}

// ----------------------------------------------------------------------
// Waivers
// ----------------------------------------------------------------------

/// True when `line` carries `// audit: <tag>`, or one of the three lines
/// above does (waiver comments may wrap under rustfmt).
pub(crate) fn waived(s: &SourceFile, line: usize, tag: &str) -> bool {
    let pat = format!("audit: {tag}");
    (line.saturating_sub(3)..=line).filter(|&l| l >= 1).any(|l| s.comment_line(l).contains(&pat))
}

/// True when the fn declared at `fn_line` carries a fn-level waiver
/// (`// audit: fn <tag> — <reason>` within three lines above the `fn`).
pub(crate) fn waived_fn(s: &SourceFile, fn_line: usize, tag: &str) -> bool {
    let pat = format!("audit: fn {tag}");
    (fn_line.saturating_sub(3)..=fn_line)
        .filter(|&l| l >= 1)
        .any(|l| s.comment_line(l).contains(&pat))
}

/// True when the file carries a module-level waiver
/// (`audit: module <tag> — <reason>` anywhere in its comments).
pub(crate) fn waived_module(s: &SourceFile, tag: &str) -> bool {
    let pat = format!("audit: module {tag}");
    s.comments.contains(&pat)
}

/// Site, fn, or module waiver for `rule` at (`line`, fn declared at
/// `fn_line`).
pub(crate) fn waived_any(s: &SourceFile, line: usize, fn_line: Option<usize>, rule: Rule) -> bool {
    let tag = rule.waiver_tag();
    waived(s, line, tag) || fn_line.is_some_and(|fl| waived_fn(s, fl, tag)) || waived_module(s, tag)
}

// ----------------------------------------------------------------------
// Line rules
// ----------------------------------------------------------------------

/// Run every line rule that applies to `rel_path` under `cfg`.
pub fn line_rules(rel_path: &str, s: &SourceFile, cfg: &AuditConfig) -> Vec<Finding> {
    let mut out = Vec::new();
    let in_scope = |scopes: &[&str]| scopes.iter().any(|p| rel_path.starts_with(p));
    if !in_scope(&cfg.wallclock_exempt) {
        wallclock(rel_path, s, &mut out);
    }
    if in_scope(&cfg.serving_scopes) {
        unbounded_queue(rel_path, s, &mut out);
    }
    if in_scope(&cfg.lane_scopes) {
        lane_fold(rel_path, s, &mut out);
    }
    unsafe_comment(rel_path, s, &mut out);
    out.sort_by_key(|f| f.line);
    // Repeated identical tokens on a line add noise, not information —
    // keep one finding per (line, rule, message).
    out.dedup_by(|a, b| a.line == b.line && a.rule == b.rule && a.message == b.message);
    out
}

/// Whole-word occurrences of `word` in `hay` (identifier boundaries).
pub(crate) fn word_positions(hay: &str, word: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    let ident = |c: u8| c == b'_' || c.is_ascii_alphanumeric();
    while let Some(rel) = hay[from..].find(word) {
        let pos = from + rel;
        let before_ok = pos == 0 || !ident(hay.as_bytes()[pos - 1]);
        let after = pos + word.len();
        let after_ok = after >= hay.len() || !ident(hay.as_bytes()[after]);
        if before_ok && after_ok {
            out.push(pos);
        }
        from = pos + word.len();
    }
    out
}

pub(crate) fn snippet(code: &str, open_bracket: usize) -> String {
    let b = code.as_bytes();
    let mut lo = open_bracket;
    while lo > 0 && (b[lo - 1] == b'_' || b[lo - 1].is_ascii_alphanumeric()) {
        lo -= 1;
    }
    let hi = (open_bracket + 12).min(code.len());
    format!("{}…", &code[lo..hi])
}

/// Offset of the `)` matching the `(` at `open` (or end of input).
pub(crate) fn match_paren(b: &[u8], open: usize) -> usize {
    let mut depth = 0usize;
    for (i, &c) in b.iter().enumerate().skip(open) {
        match c {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
    }
    b.len()
}

/// True when the line accumulates into a *bare identifier* (`total += x`).
/// Indexed (`acc[j] +=`) and deref (`*o +=`) targets are per-lane /
/// per-element accumulation and pass.
pub(crate) fn bare_float_accumulation(code: &str) -> bool {
    let b = code.as_bytes();
    let Some(pos) = code.find("+=") else { return false };
    let mut i = pos;
    while i > 0 && b[i - 1] == b' ' {
        i -= 1;
    }
    let end = i;
    while i > 0 && (b[i - 1] == b'_' || b[i - 1].is_ascii_alphanumeric()) {
        i -= 1;
    }
    // Non-empty identifier, preceded by nothing but whitespace — `]`,
    // `*`, or `.` before it means an indexed / deref / field target.
    i < end && (i == 0 || b[i - 1] == b' ' || b[i - 1] == b'\t')
}

/// Lines on which code (not tests/comments/strings) mentions `word` as a
/// whole word — pattern shared by the token-list rules.
fn for_each_code_match(s: &SourceFile, word: &str, mut f: impl FnMut(usize)) {
    for pos in word_positions(&s.code, word) {
        if !s.in_test(pos) {
            f(s.line_of(pos));
        }
    }
}

/// Wall-clock and ambient-entropy sources outside the exempt crates.
/// `Instant` is fine for *profiling*; it becomes a finding only when the
/// same statement mentions seeding.
fn wallclock(path: &str, s: &SourceFile, out: &mut Vec<Finding>) {
    for word in ["SystemTime", "thread_rng", "from_entropy"] {
        for_each_code_match(s, word, |line| {
            if !waived(s, line, Rule::Wallclock.waiver_tag()) {
                out.push(Finding {
                    file: path.to_string(),
                    line,
                    rule: Rule::Wallclock,
                    message: format!(
                        "{word} is an ambient nondeterminism source — derive values from the \
                         run seed instead, or waive with `// audit: wallclock — <reason>`"
                    ),
                    chain: None,
                });
            }
        });
    }
    for word in ["Instant", "elapsed"] {
        for_each_code_match(s, word, |line| {
            let code = s.code_line(line);
            if code.contains("seed") && !waived(s, line, Rule::Wallclock.waiver_tag()) {
                out.push(Finding {
                    file: path.to_string(),
                    line,
                    rule: Rule::Wallclock,
                    message: "clock value on a line that mentions seeding — wall time must \
                              never reach RNG seeds or model state"
                        .to_string(),
                    chain: None,
                });
            }
        });
    }
}

/// Every `unsafe` keyword needs a `// SAFETY:` comment on the same line
/// or within the three lines above it. Applies to test code too — TSan
/// and ASan run the tests, and an unsound test block poisons their
/// verdicts.
fn unsafe_comment(path: &str, s: &SourceFile, out: &mut Vec<Finding>) {
    for line in 1..=s.n_lines() {
        for _pos in word_positions(s.code_line(line), "unsafe") {
            let justified = (line.saturating_sub(3)..=line)
                .filter(|&l| l >= 1)
                .any(|l| s.comment_line(l).contains("SAFETY:"));
            if !justified {
                out.push(Finding {
                    file: path.to_string(),
                    line,
                    rule: Rule::UnsafeComment,
                    message: "`unsafe` without a `// SAFETY:` comment on or above the line"
                        .to_string(),
                    chain: None,
                });
            }
        }
    }
}

/// Unbounded queue/channel construction in serving code. An online
/// server sheds overload at admission or not at all: `mpsc::channel` and
/// crossbeam-style `unbounded` senders grow without limit under load and
/// turn a deadline miss into an OOM, and a `VecDeque` work queue grows
/// past any preallocated capacity unless an admission check caps it —
/// the waiver must point at that check. Bounded `sync_channel` passes
/// the whole-word filter by construction.
fn unbounded_queue(path: &str, s: &SourceFile, out: &mut Vec<Finding>) {
    for word in ["channel", "unbounded"] {
        for_each_code_match(s, word, |line| {
            if !waived(s, line, Rule::UnboundedQueue.waiver_tag()) {
                out.push(Finding {
                    file: path.to_string(),
                    line,
                    rule: Rule::UnboundedQueue,
                    message: format!(
                        "`{word}` construction in serving code grows without bound under \
                         overload — use a bounded `sync_channel` / admission-capped queue, or \
                         waive with `// audit: bounded — <where the cap is enforced>`"
                    ),
                    chain: None,
                });
            }
        });
    }
    for line in 1..=s.n_lines() {
        if s.in_test_line(line) {
            continue;
        }
        let code = s.code_line(line);
        let waived_here = waived(s, line, Rule::UnboundedQueue.waiver_tag());
        for pat in ["VecDeque::new(", "VecDeque::with_capacity("] {
            if code.contains(pat) && !waived_here {
                out.push(Finding {
                    file: path.to_string(),
                    line,
                    rule: Rule::UnboundedQueue,
                    message: format!(
                        "`{pat}…)` in serving code — a VecDeque grows past any preallocated \
                         capacity; cap it at admission and waive with \
                         `// audit: bounded — <where the cap is enforced>`"
                    ),
                    chain: None,
                });
            }
        }
    }
}

/// Undocumented float reduction order inside the hand-unrolled kernel
/// module. Both renderings of every kernel promise the identical
/// association order — `[f32; LANES]` partial sums folded by
/// `fold_lanes` — so two accumulation shapes are banned there:
///
/// * a **single-f32 accumulator** (`total += …` on a bare identifier):
///   the lanes of an unrolled loop would collapse into it in whatever
///   order the author happened to interleave, which the scalar oracle
///   cannot reproduce bit-for-bit;
/// * **iterator-order reductions** (`.sum()` / `.fold()` /
///   `.product()`): the order comes from the iterator, not the
///   documented lane tree.
///
/// Per-lane (`acc[j] += …`) and per-element (`*o += …`, `dst[i] += …`)
/// accumulation never re-associates and stays silent. Genuinely
/// order-insensitive scans (e.g. a running `max`) carry
/// `// audit: lanes — <why the order cannot change the bits>`.
fn lane_fold(path: &str, s: &SourceFile, out: &mut Vec<Finding>) {
    for line in 1..=s.n_lines() {
        if s.in_test_line(line) {
            continue;
        }
        let code = s.code_line(line);
        let waived_here = waived(s, line, Rule::LaneFold.waiver_tag());
        let integerish = code.contains("as u64")
            || code.contains("as u32")
            || code.contains("as usize")
            || code.contains("+= 1");
        if bare_float_accumulation(code) && !integerish && !waived_here {
            out.push(Finding {
                file: path.to_string(),
                line,
                rule: Rule::LaneFold,
                message: "single-f32 accumulation in the lane-kernel module — reductions must \
                          use a `[f32; LANES]` accumulator folded by `fold_lanes`, or waive \
                          with `// audit: lanes — <why the order is fixed>`"
                    .to_string(),
                chain: None,
            });
        }
        for pat in [".sum(", ".sum::", ".fold(", ".product("] {
            if code.contains(pat) && !waived_here {
                out.push(Finding {
                    file: path.to_string(),
                    line,
                    rule: Rule::LaneFold,
                    message: format!(
                        "iterator-order reduction `{pat}…)` in the lane-kernel module — the \
                         fold order must be the documented lane tree (`fold_lanes`), or waive \
                         with `// audit: lanes — <reason>`"
                    ),
                    chain: None,
                });
            }
        }
    }
}
