//! The audit rules: what counts as a finding, where each rule applies,
//! and how findings are waived.
//!
//! Every rule is a *deliberate over-approximation* — the auditor has no
//! type information, so it bans the pattern outright and lets genuinely
//! order-insensitive / structurally-safe uses carry an inline waiver:
//!
//! ```text
//! // audit: <tag> — <why this use is safe>
//! ```
//!
//! on the finding's line or the line directly above it. DESIGN.md
//! ("Determinism invariants") documents each rule's rationale.

use crate::scrub::Scrubbed;

/// Crates whose non-test code sits on a deterministic training/eval/data
/// path: hash-order and float-fold rules apply here.
const DETERMINISTIC_SCOPES: &[&str] = &[
    "crates/models/src",
    "crates/eval/src",
    "crates/kg/src",
    "crates/autograd/src",
    "crates/datagen/src",
];

/// Files whose hot loops may not panic implicitly: bare `.unwrap()`,
/// `.expect(…)`, and `xs[i]` indexing all require a waiver here. The
/// serving request path is included: a panic there burns a worker thread
/// and (without the catch-unwind net) silently drops an admitted request.
const HOT_PATH_FILES: &[&str] = &[
    "crates/eval/src/trainer.rs",
    "crates/eval/src/lib.rs",
    "crates/linalg/src/retrieval.rs",
    "crates/models/src/replica.rs",
    "crates/serve/src/server.rs",
    "crates/serve/src/engine.rs",
    "crates/serve/src/snapshot.rs",
];

/// Online-serving code: the unbounded-queue rule applies here. Overload
/// must be shed at admission, never absorbed into a growing buffer.
const SERVING_SCOPES: &[&str] = &["crates/serve/src"];

/// Crates exempt from the wall-clock rule: benchmarks measure wall time
/// by design, and the auditor itself names the banned tokens.
const WALLCLOCK_EXEMPT: &[&str] = &["crates/bench", "crates/audit", "crates/tsne"];

/// The hand-unrolled SIMD kernel module: the lane-fold rule applies
/// here. Every reduction in this file must follow the documented
/// 8-lane accumulate-then-`fold_lanes` contract — a stray sequential
/// accumulator silently changes the float association order and breaks
/// the SIMD ≡ scalar bitwise guarantee. The batched retrieval engine is
/// held to the same rule: any score it accumulates must come from the
/// lane-folded kernels, never a local floating-point loop, or batched
/// rankings drift off the per-query reference bits.
const LANE_KERNEL_SCOPES: &[&str] =
    &["crates/linalg/src/kernels.rs", "crates/linalg/src/retrieval.rs"];

/// Identifier of one audit rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// Hash-ordered collections in deterministic crates.
    HashOrder,
    /// Wall-clock / entropy sources feeding values or seeds.
    Wallclock,
    /// `unsafe` without a `// SAFETY:` justification.
    UnsafeComment,
    /// Implicit panics (`unwrap`/`expect`/indexing) in hot-path files.
    HotPanic,
    /// Unordered float accumulation inside worker-pool closures.
    FloatFold,
    /// Unbounded channel/queue construction in serving code.
    UnboundedQueue,
    /// Undocumented float reduction order in the lane-kernel module.
    LaneFold,
}

impl Rule {
    /// Short machine-readable rule id, as printed in reports.
    pub fn id(self) -> &'static str {
        match self {
            Rule::HashOrder => "hash-order",
            Rule::Wallclock => "wallclock",
            Rule::UnsafeComment => "unsafe-comment",
            Rule::HotPanic => "hot-panic",
            Rule::FloatFold => "float-fold",
            Rule::UnboundedQueue => "unbounded-queue",
            Rule::LaneFold => "lane-fold",
        }
    }

    /// The waiver tag accepted in `// audit: <tag>` comments (the
    /// `unsafe-comment` rule is waived by a `// SAFETY:` comment instead).
    pub fn waiver_tag(self) -> &'static str {
        match self {
            Rule::HashOrder => "ordered",
            Rule::Wallclock => "wallclock",
            Rule::UnsafeComment => "SAFETY",
            Rule::HotPanic => "unwrap",
            Rule::FloatFold => "fold",
            Rule::UnboundedQueue => "bounded",
            Rule::LaneFold => "lanes",
        }
    }
}

/// One audit finding: a rule violation at a source line.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The violated rule.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule.id(), self.message)
    }
}

/// Audit one file's source. `rel_path` must be the workspace-relative
/// path with `/` separators — rule scoping is path-based.
pub fn audit_source(rel_path: &str, source: &str) -> Vec<Finding> {
    let s = Scrubbed::new(source);
    let mut out = Vec::new();
    let in_scope = |scopes: &[&str]| scopes.iter().any(|p| rel_path.starts_with(p));

    if in_scope(DETERMINISTIC_SCOPES) {
        hash_order(rel_path, &s, &mut out);
        float_fold(rel_path, &s, &mut out);
    }
    if !in_scope(WALLCLOCK_EXEMPT) {
        wallclock(rel_path, &s, &mut out);
    }
    if in_scope(SERVING_SCOPES) {
        unbounded_queue(rel_path, &s, &mut out);
    }
    if in_scope(LANE_KERNEL_SCOPES) {
        lane_fold(rel_path, &s, &mut out);
    }
    unsafe_comment(rel_path, &s, &mut out);
    if HOT_PATH_FILES.contains(&rel_path) {
        hot_panic(rel_path, &s, &mut out);
    }
    out.sort_by_key(|f| f.line);
    // Repeated identical tokens on a line add noise, not information —
    // keep one finding per (line, rule, message).
    out.dedup_by(|a, b| a.line == b.line && a.rule == b.rule && a.message == b.message);
    out
}

/// True when `line` carries `// audit: <tag>`, or one of the three lines
/// above does (waiver comments may wrap under rustfmt).
fn waived(s: &Scrubbed, line: usize, tag: &str) -> bool {
    let pat = format!("audit: {tag}");
    (line.saturating_sub(3)..=line).filter(|&l| l >= 1).any(|l| s.comment_line(l).contains(&pat))
}

/// Whole-word occurrences of `word` in `hay` (identifier boundaries).
fn word_positions(hay: &str, word: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    let ident = |c: u8| c == b'_' || c.is_ascii_alphanumeric();
    while let Some(rel) = hay[from..].find(word) {
        let pos = from + rel;
        let before_ok = pos == 0 || !ident(hay.as_bytes()[pos - 1]);
        let after = pos + word.len();
        let after_ok = after >= hay.len() || !ident(hay.as_bytes()[after]);
        if before_ok && after_ok {
            out.push(pos);
        }
        from = pos + word.len();
    }
    out
}

// ----------------------------------------------------------------------
// Rule: hash-order
// ----------------------------------------------------------------------

/// `HashMap`/`HashSet` anywhere in non-test code of a deterministic
/// crate. Iteration order over hash collections depends on the hasher's
/// per-process random state, so one stray `for (k, v) in map` silently
/// breaks bitwise determinism; membership-only uses carry a waiver.
fn hash_order(path: &str, s: &Scrubbed, out: &mut Vec<Finding>) {
    for word in ["HashMap", "HashSet"] {
        for_each_code_match(s, word, |line| {
            if !waived(s, line, Rule::HashOrder.waiver_tag()) {
                out.push(Finding {
                    file: path.to_string(),
                    line,
                    rule: Rule::HashOrder,
                    message: format!(
                        "{word} in a deterministic crate: iteration order is nondeterministic — \
                         use BTreeMap/BTreeSet or a sorted collect, or waive membership-only use \
                         with `// audit: ordered — <reason>`"
                    ),
                });
            }
        });
    }
}

// ----------------------------------------------------------------------
// Rule: wallclock
// ----------------------------------------------------------------------

/// Wall-clock and ambient-entropy sources outside the bench crate.
/// `Instant` is fine for *profiling*; it becomes a finding only when the
/// same statement mentions seeding.
fn wallclock(path: &str, s: &Scrubbed, out: &mut Vec<Finding>) {
    for word in ["SystemTime", "thread_rng", "from_entropy"] {
        for_each_code_match(s, word, |line| {
            if !waived(s, line, Rule::Wallclock.waiver_tag()) {
                out.push(Finding {
                    file: path.to_string(),
                    line,
                    rule: Rule::Wallclock,
                    message: format!(
                        "{word} is an ambient nondeterminism source — derive values from the \
                         run seed instead, or waive with `// audit: wallclock — <reason>`"
                    ),
                });
            }
        });
    }
    for word in ["Instant", "elapsed"] {
        for_each_code_match(s, word, |line| {
            let code = s.code_line(line);
            if code.contains("seed") && !waived(s, line, Rule::Wallclock.waiver_tag()) {
                out.push(Finding {
                    file: path.to_string(),
                    line,
                    rule: Rule::Wallclock,
                    message: "clock value on a line that mentions seeding — wall time must \
                              never reach RNG seeds or model state"
                        .to_string(),
                });
            }
        });
    }
}

// ----------------------------------------------------------------------
// Rule: unsafe-comment
// ----------------------------------------------------------------------

/// Every `unsafe` keyword needs a `// SAFETY:` comment on the same line
/// or within the three lines above it. Applies to test code too — TSan
/// runs the tests, and an unsound test block poisons its verdicts.
fn unsafe_comment(path: &str, s: &Scrubbed, out: &mut Vec<Finding>) {
    for line in 1..=s.n_lines() {
        for _pos in word_positions(s.code_line(line), "unsafe") {
            let justified = (line.saturating_sub(3)..=line)
                .filter(|&l| l >= 1)
                .any(|l| s.comment_line(l).contains("SAFETY:"));
            if !justified {
                out.push(Finding {
                    file: path.to_string(),
                    line,
                    rule: Rule::UnsafeComment,
                    message: "`unsafe` without a `// SAFETY:` comment on or above the line"
                        .to_string(),
                });
            }
        }
    }
}

// ----------------------------------------------------------------------
// Rule: hot-panic
// ----------------------------------------------------------------------

/// Implicit panics inside the trainer / replica-pool hot loops: a panic
/// on a worker thread tears down the whole scope and loses the epoch, so
/// each such site must be structurally infallible and say why.
fn hot_panic(path: &str, s: &Scrubbed, out: &mut Vec<Finding>) {
    for line in 1..=s.n_lines() {
        if s.in_test_line(line) {
            continue;
        }
        let code = s.code_line(line);
        let waived_here = waived(s, line, Rule::HotPanic.waiver_tag());
        for pat in [".unwrap()", ".expect("] {
            if code.contains(pat) && !waived_here {
                out.push(Finding {
                    file: path.to_string(),
                    line,
                    rule: Rule::HotPanic,
                    message: format!(
                        "`{pat}…` in a hot-path module — propagate a typed error or waive with \
                         `// audit: unwrap — <why this cannot fail>`"
                    ),
                });
            }
        }
        for pos in index_positions(code) {
            if !waived_here {
                out.push(Finding {
                    file: path.to_string(),
                    line,
                    rule: Rule::HotPanic,
                    message: format!(
                        "panicking index `{}` in a hot-path module — use `get`/iterators or \
                         waive with `// audit: unwrap — <why in bounds>`",
                        snippet(code, pos)
                    ),
                });
                break; // one indexing finding per line is enough
            }
        }
    }
}

/// Positions where an identifier is immediately followed by `[` — the
/// panicking-index pattern. Attribute (`#[…]`), macro (`vec![…]`), slice
/// type (`&[T]`), and array literal (`= [`) contexts all fail the
/// "identifier char right before `[`" test.
fn index_positions(code: &str) -> Vec<usize> {
    let b = code.as_bytes();
    (1..b.len())
        .filter(|&i| b[i] == b'[' && (b[i - 1] == b'_' || b[i - 1].is_ascii_alphanumeric()))
        .collect()
}

fn snippet(code: &str, open_bracket: usize) -> String {
    let b = code.as_bytes();
    let mut lo = open_bracket;
    while lo > 0 && (b[lo - 1] == b'_' || b[lo - 1].is_ascii_alphanumeric()) {
        lo -= 1;
    }
    let hi = (open_bracket + 12).min(code.len());
    format!("{}…", &code[lo..hi])
}

// ----------------------------------------------------------------------
// Rule: float-fold
// ----------------------------------------------------------------------

/// Float accumulation inside closures handed to `pooled_map` or scoped
/// `spawn`, and parallel-iterator reductions anywhere in a deterministic
/// crate. Float addition is not associative: any cross-thread fold must
/// run through `fold_ordered`/`fold_grads_ordered` (fixed part order) or
/// carry a waiver explaining why the accumulation is thread-local.
fn float_fold(path: &str, s: &Scrubbed, out: &mut Vec<Finding>) {
    // Spans of worker closures: from each `pooled_map(`/`.spawn(` to the
    // call's matching close paren.
    let mut spans: Vec<(usize, usize)> = Vec::new();
    for word in ["pooled_map", "spawn"] {
        for pos in word_positions(&s.code, word) {
            if let Some(open) = s.code[pos..].find('(').map(|r| pos + r) {
                spans.push((open, match_paren(s.code.as_bytes(), open)));
            }
        }
    }
    for line in 1..=s.n_lines() {
        if s.in_test_line(line) {
            continue;
        }
        let code = s.code_line(line);
        let offset = s.line_offset(line);
        let in_span = spans.iter().any(|&(lo, hi)| offset > lo && offset < hi);
        let integerish = code.contains("as u64")
            || code.contains("as u32")
            || code.contains("as usize")
            || code.contains("+= 1");
        let accumulates = code.contains("+=") || code.contains(".sum(") || code.contains(".sum::");
        let par_reduce = code.contains("par_")
            && (code.contains(".sum(") || code.contains(".reduce(") || code.contains(".fold("));
        let routed = code.contains("fold_ordered");
        let hit = par_reduce || (in_span && accumulates && !integerish);
        if hit && !routed && !waived(s, line, Rule::FloatFold.waiver_tag()) {
            out.push(Finding {
                file: path.to_string(),
                line,
                rule: Rule::FloatFold,
                message: "float accumulation in a worker closure / parallel reduction — route \
                          cross-thread folds through fold_ordered, or waive thread-local \
                          accumulation with `// audit: fold — <reason>`"
                    .to_string(),
            });
        }
    }
}

// ----------------------------------------------------------------------
// Rule: unbounded-queue
// ----------------------------------------------------------------------

/// Unbounded queue/channel construction in serving code. An online
/// server sheds overload at admission or not at all: `mpsc::channel` and
/// crossbeam-style `unbounded` senders grow without limit under load and
/// turn a deadline miss into an OOM, and a `VecDeque` work queue grows
/// past any preallocated capacity unless an admission check caps it —
/// the waiver must point at that check. Bounded `sync_channel` passes
/// the whole-word filter by construction.
fn unbounded_queue(path: &str, s: &Scrubbed, out: &mut Vec<Finding>) {
    for word in ["channel", "unbounded"] {
        for_each_code_match(s, word, |line| {
            if !waived(s, line, Rule::UnboundedQueue.waiver_tag()) {
                out.push(Finding {
                    file: path.to_string(),
                    line,
                    rule: Rule::UnboundedQueue,
                    message: format!(
                        "`{word}` construction in serving code grows without bound under \
                         overload — use a bounded `sync_channel` / admission-capped queue, or \
                         waive with `// audit: bounded — <where the cap is enforced>`"
                    ),
                });
            }
        });
    }
    for line in 1..=s.n_lines() {
        if s.in_test_line(line) {
            continue;
        }
        let code = s.code_line(line);
        let waived_here = waived(s, line, Rule::UnboundedQueue.waiver_tag());
        for pat in ["VecDeque::new(", "VecDeque::with_capacity("] {
            if code.contains(pat) && !waived_here {
                out.push(Finding {
                    file: path.to_string(),
                    line,
                    rule: Rule::UnboundedQueue,
                    message: format!(
                        "`{pat}…)` in serving code — a VecDeque grows past any preallocated \
                         capacity; cap it at admission and waive with \
                         `// audit: bounded — <where the cap is enforced>`"
                    ),
                });
            }
        }
    }
}

// ----------------------------------------------------------------------
// Rule: lane-fold
// ----------------------------------------------------------------------

/// Undocumented float reduction order inside the hand-unrolled kernel
/// module. Both renderings of every kernel promise the identical
/// association order — `[f32; LANES]` partial sums folded by
/// `fold_lanes` — so two accumulation shapes are banned there:
///
/// * a **single-f32 accumulator** (`total += …` on a bare identifier):
///   the lanes of an unrolled loop would collapse into it in whatever
///   order the author happened to interleave, which the scalar oracle
///   cannot reproduce bit-for-bit;
/// * **iterator-order reductions** (`.sum()` / `.fold()` /
///   `.product()`): the order comes from the iterator, not the
///   documented lane tree.
///
/// Per-lane (`acc[j] += …`) and per-element (`*o += …`, `dst[i] += …`)
/// accumulation never re-associates and stays silent. Genuinely
/// order-insensitive scans (e.g. a running `max`) carry
/// `// audit: lanes — <why the order cannot change the bits>`.
fn lane_fold(path: &str, s: &Scrubbed, out: &mut Vec<Finding>) {
    for line in 1..=s.n_lines() {
        if s.in_test_line(line) {
            continue;
        }
        let code = s.code_line(line);
        let waived_here = waived(s, line, Rule::LaneFold.waiver_tag());
        let integerish = code.contains("as u64")
            || code.contains("as u32")
            || code.contains("as usize")
            || code.contains("+= 1");
        if bare_float_accumulation(code) && !integerish && !waived_here {
            out.push(Finding {
                file: path.to_string(),
                line,
                rule: Rule::LaneFold,
                message: "single-f32 accumulation in the lane-kernel module — reductions must \
                          use a `[f32; LANES]` accumulator folded by `fold_lanes`, or waive \
                          with `// audit: lanes — <why the order is fixed>`"
                    .to_string(),
            });
        }
        for pat in [".sum(", ".sum::", ".fold(", ".product("] {
            if code.contains(pat) && !waived_here {
                out.push(Finding {
                    file: path.to_string(),
                    line,
                    rule: Rule::LaneFold,
                    message: format!(
                        "iterator-order reduction `{pat}…)` in the lane-kernel module — the \
                         fold order must be the documented lane tree (`fold_lanes`), or waive \
                         with `// audit: lanes — <reason>`"
                    ),
                });
            }
        }
    }
}

/// True when the line accumulates into a *bare identifier* (`total += x`).
/// Indexed (`acc[j] +=`) and deref (`*o +=`) targets are per-lane /
/// per-element accumulation and pass.
fn bare_float_accumulation(code: &str) -> bool {
    let b = code.as_bytes();
    let Some(pos) = code.find("+=") else { return false };
    let mut i = pos;
    while i > 0 && b[i - 1] == b' ' {
        i -= 1;
    }
    let end = i;
    while i > 0 && (b[i - 1] == b'_' || b[i - 1].is_ascii_alphanumeric()) {
        i -= 1;
    }
    // Non-empty identifier, preceded by nothing but whitespace — `]`,
    // `*`, or `.` before it means an indexed / deref / field target.
    i < end && (i == 0 || b[i - 1] == b' ' || b[i - 1] == b'\t')
}

/// Offset of the `)` matching the `(` at `open` (or end of input).
fn match_paren(b: &[u8], open: usize) -> usize {
    let mut depth = 0usize;
    for (i, &c) in b.iter().enumerate().skip(open) {
        match c {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
    }
    b.len()
}

/// Run `f` on the line of every whole-word, non-test occurrence of
/// `word` in the code channel.
fn for_each_code_match(s: &Scrubbed, word: &str, mut f: impl FnMut(usize)) {
    for pos in word_positions(&s.code, word) {
        if !s.in_test(pos) {
            f(s.line_of(pos));
        }
    }
}
