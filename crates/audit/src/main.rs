//! `cargo run -p facility-audit` — audit the workspace sources and exit
//! nonzero if any rule fires without a waiver.
//!
//! Usage: `facility-audit [--root <workspace-dir>]`. The root defaults
//! to the workspace this binary was built from, so running it via cargo
//! from any subdirectory audits the right tree.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("error: --root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("facility-audit [--root <workspace-dir>]");
                println!("Lints workspace sources for determinism/safety violations.");
                println!("Exit 0: clean (all findings fixed or waived). Exit 1: findings.");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    // CARGO_MANIFEST_DIR = crates/audit → workspace root is two levels up.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(|p| p.parent())
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("."))
    });

    let findings = match facility_audit::audit_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: failed to audit {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    for f in &findings {
        println!("{f}");
    }
    if findings.is_empty() {
        println!("audit clean: 0 findings in {}", root.display());
        ExitCode::SUCCESS
    } else {
        println!("audit: {} finding(s) — fix or add `// audit: <tag>` waivers", findings.len());
        ExitCode::FAILURE
    }
}
