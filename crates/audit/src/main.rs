//! `cargo run -p facility-audit` — run the static analyzer over the
//! workspace and exit nonzero if any rule fires without a waiver.
//!
//! Usage: `facility-audit [--root <dir>] [--fixtures] [--report <path>]`.
//! The root defaults to the workspace this binary was built from, so
//! running it via cargo from any subdirectory audits the right tree.
//! `--fixtures` audits a fixture tree with the fixture configuration
//! (the self-test); `--report` writes `AUDIT_REPORT.json` there.
//!
//! Exit codes: 0 clean (all findings fixed or waived), 1 unwaived
//! findings, 2 configuration/IO/usage error — including the hard error
//! for a configured scope or root symbol that no longer matches
//! anything in the tree.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut fixtures = false;
    let mut report_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("error: --root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--fixtures" => fixtures = true,
            "--report" => match args.next() {
                Some(p) => report_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("error: --report requires a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("facility-audit [--root <dir>] [--fixtures] [--report <path>]");
                println!("Statically audits workspace sources for determinism/safety violations:");
                println!("line rules plus call-graph panic-reachability and nondeterminism taint.");
                println!("  --fixtures      audit a fixture tree with the fixture root config");
                println!("  --report PATH   write the machine-readable AUDIT_REPORT.json");
                println!("Exit 0: clean. Exit 1: findings. Exit 2: stale config / IO / usage.");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    // CARGO_MANIFEST_DIR = crates/audit → workspace root is two levels up.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(|p| p.parent())
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("."))
    });

    let result = if fixtures {
        facility_audit::audit_fixtures(&root)
    } else {
        facility_audit::audit_workspace(&root)
    };
    let report = match result {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: failed to audit {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    for f in &report.findings {
        println!("{f}");
    }
    if let Some(path) = &report_path {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("error: failed to write report {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    println!(
        "audit: {} finding(s) · {} files / {} fns / {} edges · {} panic-reachable, \
         {} taint-reachable · {:.0}ms",
        report.findings.len(),
        report.n_files,
        report.n_fns,
        report.n_edges,
        report.n_panic_reachable,
        report.n_taint_reachable,
        report.timing.total_ms,
    );
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        println!("fix the findings or add `// audit: <tag> — <reason>` waivers");
        ExitCode::FAILURE
    }
}
