//! `facility-audit`: a dependency-free static analyzer enforcing the
//! workspace's determinism/safety invariants, plus the library API
//! behind the `cargo run -p facility-audit` binary.
//!
//! The repo's core contract (PRs 2–4) is bitwise determinism: resume
//! from a checkpoint is bit-identical, and replica training produces the
//! same folded gradients for any thread count; the serving path (PR 6)
//! additionally promises that no admitted request panics a worker. This
//! crate checks the source-level half of those contracts (the
//! `debug-audit` cargo feature in `facility-autograd` / `facility-kg`
//! checks the runtime half) with a four-layer pipeline:
//!
//! ```text
//! lexer (spanned tokens, code/comment channels)
//!   → syntax (fn/impl items, call sites, unsafe sites)
//!     → callgraph (name-resolved workspace call graph + root BFS)
//!       → analyses (panic-reachability, nondeterminism taint)
//!         + line rules (wallclock, unsafe-comment, queues, lane folds)
//!           → findings + AUDIT_REPORT.json
//! ```
//!
//! Where the old linter deny-listed files by path (`HOT_PATH_FILES`,
//! `DETERMINISTIC_SCOPES`), the analyses walk the call graph from
//! configured *root symbols* — and every configured path or symbol is
//! validated against the scanned tree, so a rename breaks the audit
//! loudly (exit 2) instead of silently disabling a rule.
//!
//! See DESIGN.md §7b for the architecture and the rule/waiver catalogue.

pub mod analysis;
pub mod callgraph;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod syntax;

pub use report::{Report, Timing, UnsafeSite};
pub use rules::{AuditConfig, Finding, Rule};

use callgraph::{CallGraph, ParsedFile};
use lexer::SourceFile;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Why an audit run could not produce a verdict.
#[derive(Debug)]
pub enum AuditError {
    Io(io::Error),
    /// Configured scopes/roots that match nothing in the scanned tree —
    /// the rename-protection hard error (exit 2).
    Config(Vec<String>),
}

impl std::fmt::Display for AuditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuditError::Io(e) => write!(f, "io error: {e}"),
            AuditError::Config(errs) => {
                writeln!(f, "stale audit configuration ({} entr{}):", errs.len(), {
                    if errs.len() == 1 {
                        "y"
                    } else {
                        "ies"
                    }
                })?;
                for e in errs {
                    writeln!(f, "  - {e}")?;
                }
                write!(
                    f,
                    "a configured path or root symbol no longer exists — update AuditConfig \
                     (crates/audit/src/rules.rs) or restore the file/fn; refusing to run with \
                     rules silently disabled"
                )
            }
        }
    }
}

impl From<io::Error> for AuditError {
    fn from(e: io::Error) -> Self {
        AuditError::Io(e)
    }
}

/// Audit the real workspace at `root` (scans `crates/*/src/**/*.rs` and
/// `crates/*/tests/**/*.rs`; the auditor's own fixture tree is excluded
/// — it exists to be *non*-clean).
pub fn audit_workspace(root: &Path) -> Result<Report, AuditError> {
    let t0 = Instant::now();
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    for krate in sorted_dir(&crates_dir)? {
        if !krate.is_dir() {
            continue;
        }
        for sub in ["src", "tests"] {
            let dir = krate.join(sub);
            if dir.is_dir() {
                collect_rs(&dir, &mut files)?;
            }
        }
    }
    let sources = read_sources(root, &files)?;
    audit_sources(&sources, &AuditConfig::workspace(), "workspace", t0)
}

/// Audit the fixture tree at `root` with the fixture configuration (the
/// fixtures mirror workspace-relative paths so path-scoped rules apply,
/// and define their own root fns for the call-graph analyses).
pub fn audit_fixtures(root: &Path) -> Result<Report, AuditError> {
    let t0 = Instant::now();
    let mut files = Vec::new();
    collect_rs(root, &mut files)?;
    let sources = read_sources(root, &files)?;
    audit_sources(&sources, &AuditConfig::fixtures(), "fixtures", t0)
}

fn read_sources(root: &Path, files: &[PathBuf]) -> io::Result<Vec<(String, String)>> {
    let mut out = Vec::with_capacity(files.len());
    for file in files {
        let rel = rel_path(root, file);
        if rel.starts_with("crates/audit/fixtures/") {
            continue;
        }
        out.push((rel, std::fs::read_to_string(file)?));
    }
    Ok(out)
}

/// The full analysis pipeline over in-memory sources: parse → call
/// graph → config validation → line rules + analyses → report.
/// `(rel, source)` paths must be workspace-relative with `/` separators.
pub fn audit_sources(
    sources: &[(String, String)],
    cfg: &AuditConfig,
    root_kind: &'static str,
    t_start: Instant,
) -> Result<Report, AuditError> {
    let t0 = Instant::now();
    let mut parsed = Vec::with_capacity(sources.len());
    let mut n_lines = 0usize;
    for (rel, src) in sources {
        let sf = SourceFile::new(src);
        n_lines += sf.n_lines();
        let syn = syntax::parse_file(&sf);
        parsed.push(ParsedFile { rel: rel.clone(), sf, syn });
    }
    let parse_ms = ms(t0);

    let t0 = Instant::now();
    let graph = CallGraph::build(&parsed);

    // Config validation: every scope prefix must match a scanned file,
    // every root spec must resolve to at least one non-test fn. A stale
    // entry is a hard error — this is what makes renames loud.
    let mut errors = Vec::new();
    for (what, scopes) in [
        ("serving scope", &cfg.serving_scopes),
        ("wallclock-exempt scope", &cfg.wallclock_exempt),
        ("lane-kernel scope", &cfg.lane_scopes),
    ] {
        for entry in scopes {
            if !parsed.iter().any(|p| p.rel.starts_with(entry)) {
                errors.push(format!("{what} `{entry}` matches no scanned file"));
            }
        }
    }
    let mut resolve_roots = |what: &str, specs: &[&'static str]| -> Vec<usize> {
        let mut ids = Vec::new();
        for spec in specs {
            let r = graph.resolve_root(&parsed, spec);
            if r.is_empty() {
                errors.push(format!("{what} root `{spec}` resolves to no non-test fn"));
            }
            ids.extend(r);
        }
        ids
    };
    let panic_roots = resolve_roots("panic-reachability", &cfg.panic_roots);
    let taint_roots = resolve_roots("taint", &cfg.taint_roots);
    if !errors.is_empty() {
        return Err(AuditError::Config(errors));
    }
    let panic_parent = graph.reach(&panic_roots);
    let taint_parent = graph.reach(&taint_roots);
    let callgraph_ms = ms(t0);

    let t0 = Instant::now();
    let mut findings = Vec::new();
    for pf in &parsed {
        findings.extend(rules::line_rules(&pf.rel, &pf.sf, cfg));
    }
    findings.extend(analysis::panic_reach::run(&parsed, &graph, &panic_parent));
    findings.extend(analysis::taint::run(&parsed, &graph, &taint_parent, cfg));
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule.id()).cmp(&(b.file.as_str(), b.line, b.rule.id()))
    });
    findings.dedup_by(|a, b| {
        a.file == b.file && a.line == b.line && a.rule == b.rule && a.message == b.message
    });
    let analysis_ms = ms(t0);

    let mut unsafe_sites = Vec::new();
    for pf in &parsed {
        for u in &pf.syn.unsafes {
            let has_safety = (u.line.saturating_sub(3)..=u.line)
                .filter(|&l| l >= 1)
                .any(|l| pf.sf.comment_line(l).contains("SAFETY:"));
            unsafe_sites.push(UnsafeSite {
                file: pf.rel.clone(),
                line: u.line,
                in_test: u.is_test,
                has_safety,
            });
        }
    }

    Ok(Report {
        root_kind,
        n_files: parsed.len(),
        n_lines,
        n_fns: graph.n_fns(),
        n_edges: graph.n_edges,
        n_unresolved_calls: graph.n_unresolved_calls,
        n_panic_roots: panic_roots.len(),
        n_taint_roots: taint_roots.len(),
        n_panic_reachable: panic_parent.iter().flatten().count(),
        n_taint_reachable: taint_parent.iter().flatten().count(),
        unsafe_sites,
        timing: Timing { parse_ms, callgraph_ms, analysis_ms, total_ms: ms(t_start) },
        findings,
    })
}

fn ms(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e3
}

fn rel_path(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Recursively collect `.rs` files under `dir`, sorted for determinism.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in sorted_dir(dir)? {
        if entry.is_dir() {
            collect_rs(&entry, out)?;
        } else if entry.extension().is_some_and(|e| e == "rs") {
            out.push(entry);
        }
    }
    Ok(())
}

fn sorted_dir(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut entries: Vec<PathBuf> =
        std::fs::read_dir(dir)?.map(|e| e.map(|e| e.path())).collect::<io::Result<_>>()?;
    entries.sort();
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal config whose every entry matches the test's snippet set:
    /// scope lists are filtered to prefixes that match, root lists are
    /// taken as given (tests pass roots that exist).
    fn cfg_for(
        files: &[(&str, &str)],
        panic_roots: &[&'static str],
        taint_roots: &[&'static str],
    ) -> AuditConfig {
        let keep = |scopes: Vec<&'static str>| -> Vec<&'static str> {
            scopes.into_iter().filter(|s| files.iter().any(|(rel, _)| rel.starts_with(s))).collect()
        };
        AuditConfig {
            serving_scopes: keep(vec!["crates/serve/src"]),
            wallclock_exempt: keep(vec!["crates/bench", "crates/audit", "crates/tsne"]),
            lane_scopes: keep(vec![
                "crates/linalg/src/kernels.rs",
                "crates/linalg/src/retrieval.rs",
            ]),
            panic_roots: panic_roots.to_vec(),
            taint_roots: taint_roots.to_vec(),
        }
    }

    fn lint_with(
        files: &[(&str, &str)],
        panic_roots: &[&'static str],
        taint_roots: &[&'static str],
    ) -> Vec<Finding> {
        let sources: Vec<(String, String)> =
            files.iter().map(|(r, s)| (r.to_string(), s.to_string())).collect();
        audit_sources(
            &sources,
            &cfg_for(files, panic_roots, taint_roots),
            "workspace",
            Instant::now(),
        )
        .expect("audit_sources")
        .findings
    }

    fn lint(path: &str, src: &str) -> Vec<Finding> {
        lint_with(&[(path, src)], &[], &[])
    }

    fn rule_lines(findings: &[Finding], rule: Rule) -> Vec<usize> {
        findings.iter().filter(|f| f.rule == rule).map(|f| f.line).collect()
    }

    // ---- wallclock -----------------------------------------------------

    #[test]
    fn wallclock_flags_entropy_sources() {
        let src = "fn f() { let t = SystemTime::now(); let r = rand::thread_rng(); }\n";
        let f = lint("crates/models/src/x.rs", src);
        assert_eq!(rule_lines(&f, Rule::Wallclock).len(), 2);
        let waived =
            "// audit: wallclock — log timestamp only, never a seed\nlet t = SystemTime::now();\n";
        assert!(lint("crates/models/src/x.rs", waived).is_empty());
    }

    #[test]
    fn wallclock_allows_instant_profiling_but_not_seeding() {
        let profiling = "fn f() { let t0 = Instant::now();\nlet dt = t0.elapsed(); }\n";
        assert!(lint("crates/models/src/x.rs", profiling).is_empty());
        let seeding = "fn f() { let seed = Instant::now().elapsed().as_nanos() as u64; }\n";
        assert!(!rule_lines(&lint("crates/models/src/x.rs", seeding), Rule::Wallclock).is_empty());
        // Bench crate measures wall time by design.
        assert!(lint("crates/bench/src/x.rs", "fn f() { let t = SystemTime::now(); }\n").is_empty());
    }

    // ---- unsafe-comment ------------------------------------------------

    #[test]
    fn unsafe_requires_safety_comment() {
        let bare = "fn f() { unsafe { do_it() } }\n";
        assert_eq!(rule_lines(&lint("crates/kg/src/x.rs", bare), Rule::UnsafeComment), vec![1]);
        let justified = "// SAFETY: indices were bounds-checked above\nunsafe { do_it() }\n";
        assert!(lint("crates/kg/src/x.rs", justified).is_empty());
        // Comment up to three lines above still counts (rustfmt may wrap).
        let wrapped = "// SAFETY: the slice lives as long as\n// the borrow, checked above\n\nunsafe { do_it() }\n";
        assert!(lint("crates/kg/src/x.rs", wrapped).is_empty());
    }

    #[test]
    fn unsafe_in_word_position_only() {
        let src = "fn f() { let not_unsafe_name = 1; }\n";
        assert!(lint("crates/kg/src/x.rs", src).is_empty());
    }

    // ---- unbounded-queue -----------------------------------------------

    #[test]
    fn unbounded_queue_flags_channels_and_growable_queues_in_serving_code() {
        let src = "fn f() { let (tx, rx) = mpsc::channel();\nlet q: VecDeque<u32> = VecDeque::new();\nlet c = unbounded(); }\n";
        let f = lint("crates/serve/src/queue.rs", src);
        assert_eq!(rule_lines(&f, Rule::UnboundedQueue), vec![1, 2, 3]);
        // Same source outside the serving scope: no finding.
        assert!(lint("crates/models/src/queue.rs", src).is_empty());
    }

    #[test]
    fn unbounded_queue_spares_bounded_constructions_and_waivers() {
        // `sync_channel` fails the whole-word `channel` match by design.
        let bounded = "fn f() { let (tx, rx) = mpsc::sync_channel(cap); }\n";
        assert!(lint("crates/serve/src/queue.rs", bounded).is_empty());
        // with_capacity still needs a waiver (pushes past capacity grow)…
        let unwaived = "fn f() { let q: VecDeque<u32> = VecDeque::with_capacity(cap); }\n";
        let f = lint("crates/serve/src/queue.rs", unwaived);
        assert_eq!(rule_lines(&f, Rule::UnboundedQueue), vec![1]);
        // …and the waiver names the admission check that caps it.
        let waived = "// audit: bounded — capacity enforced by submit()\nfn f() { let q = VecDeque::with_capacity(cap); }\n";
        assert!(lint("crates/serve/src/queue.rs", waived).is_empty());
    }

    // ---- lane-fold -----------------------------------------------------

    #[test]
    fn lane_fold_flags_bare_accumulators_and_iterator_reductions() {
        let src = "fn f(a: &[f32]) -> f32 {\n    let mut total = 0.0f32;\n    total += a.len() as f32 * 0.5;\n    let s: f32 = a.iter().sum();\n    total + s\n}\n";
        let f = lint("crates/linalg/src/kernels.rs", src);
        assert_eq!(rule_lines(&f, Rule::LaneFold), vec![3, 4]);
        // Same source anywhere else: out of scope.
        assert!(lint("crates/linalg/src/matrix.rs", src).is_empty());
    }

    #[test]
    fn lane_fold_spares_per_lane_and_per_element_accumulation() {
        let src = "fn f() {\n    acc[j] += ca[j] * cb[j];\n    *o += a * bv;\n    self.n += x;\n    count += 1;\n    ns += t as u64;\n}\n";
        assert!(lint("crates/linalg/src/kernels.rs", src).is_empty());
    }

    #[test]
    fn lane_fold_waiver() {
        let src = "fn f() {\n    // audit: lanes — max is order-insensitive for non-NaN inputs\n    hi += step;\n    let s: f32 = xs.iter().sum(); // audit: lanes — test-only shim\n}\n";
        assert!(lint("crates/linalg/src/kernels.rs", src).is_empty());
    }

    // ---- call-graph analyses end-to-end --------------------------------

    #[test]
    fn panic_reach_crosses_files_where_the_old_denylist_could_not() {
        let files = [
            ("crates/serve/src/engine.rs", "pub fn handle(xs: &[u32]) -> u32 { helper(xs) }\n"),
            // models/ was never in HOT_PATH_FILES — the old rule missed this.
            ("crates/models/src/util.rs", "pub fn helper(xs: &[u32]) -> u32 { xs[0] }\n"),
        ];
        let f = lint_with(&files, &["handle"], &[]);
        let hits = rule_lines(&f, Rule::PanicReach);
        assert_eq!(hits, vec![1]);
        let hit = f.iter().find(|f| f.rule == Rule::PanicReach).unwrap();
        assert_eq!(hit.file, "crates/models/src/util.rs");
        assert!(hit.chain.as_deref().unwrap().contains("handle → helper"));
    }

    #[test]
    fn taint_reaches_outside_the_old_scope_directories() {
        let files = [
            ("crates/eval/src/trainer.rs", "pub fn run_loop(n: usize) -> f32 { stats(n) }\n"),
            (
                "crates/core/src/helper.rs",
                "pub fn stats(n: usize) -> f32 {\n    let m: std::collections::HashMap<usize, f32> = std::collections::HashMap::new();\n    m.len() as f32\n}\n",
            ),
        ];
        let f = lint_with(&files, &[], &["run_loop"]);
        let hit = f.iter().find(|f| f.rule == Rule::HashOrder).expect("hash-order finding");
        assert_eq!((hit.file.as_str(), hit.line), ("crates/core/src/helper.rs", 2));
    }

    // ---- config validation (rename protection) -------------------------

    #[test]
    fn stale_scope_entry_is_a_hard_error() {
        let files = [("crates/models/src/x.rs", "fn f() {}\n")];
        let sources: Vec<(String, String)> =
            files.iter().map(|(r, s)| (r.to_string(), s.to_string())).collect();
        let mut cfg = cfg_for(&files, &[], &[]);
        cfg.lane_scopes = vec!["crates/linalg/src/kernels.rs"]; // no such file scanned
        let err = audit_sources(&sources, &cfg, "workspace", Instant::now()).unwrap_err();
        match err {
            AuditError::Config(errs) => {
                assert_eq!(errs.len(), 1);
                assert!(errs[0].contains("lane-kernel scope"), "{errs:?}");
            }
            other => panic!("expected Config error, got {other:?}"),
        }
    }

    #[test]
    fn unresolvable_root_symbol_is_a_hard_error() {
        let files = [("crates/models/src/x.rs", "pub fn live() {}\n")];
        let sources: Vec<(String, String)> =
            files.iter().map(|(r, s)| (r.to_string(), s.to_string())).collect();
        let cfg = cfg_for(&files, &["renamed_away"], &[]);
        let err = audit_sources(&sources, &cfg, "workspace", Instant::now()).unwrap_err();
        match err {
            AuditError::Config(errs) => {
                assert!(errs[0].contains("panic-reachability root `renamed_away`"), "{errs:?}");
            }
            other => panic!("expected Config error, got {other:?}"),
        }
    }

    // ---- display -------------------------------------------------------

    #[test]
    fn finding_display_is_path_line_rule() {
        let f = lint("crates/models/src/x.rs", "fn f() { let t = SystemTime::now(); }\n");
        let line = f[0].to_string();
        assert!(line.starts_with("crates/models/src/x.rs:1: [wallclock]"), "{line}");
    }
}
