//! `facility-audit`: a source-level determinism/safety linter for this
//! workspace, plus the library API behind the `cargo run -p
//! facility-audit` binary.
//!
//! The repo's core contract (PRs 2–4) is bitwise determinism: resume
//! from a checkpoint is bit-identical, and replica training produces the
//! same folded gradients for any thread count. That contract rests on
//! source-level invariants nothing enforced until now — no hash-order
//! iteration in training paths, no wall-clock values feeding seeds, all
//! cross-thread float folds routed through `fold_ordered`. This crate
//! audits those invariants statically; the `debug-audit` cargo feature
//! in `facility-autograd` / `facility-kg` checks the runtime half.
//!
//! See DESIGN.md § "Determinism invariants" for the rule catalogue and
//! waiver syntax.

pub mod rules;
pub mod scrub;

pub use rules::{audit_source, Finding, Rule};
pub use scrub::Scrubbed;

use std::io;
use std::path::{Path, PathBuf};

/// Audit every workspace source file under `root` and return all
/// findings in deterministic (path, line) order.
///
/// Scanned: `crates/*/src/**/*.rs` and `crates/*/tests/**/*.rs`. The
/// auditor's own fixture tree (`crates/audit/fixtures`) is excluded —
/// it exists to be *non*-clean.
pub fn audit_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    for krate in sorted_dir(&crates_dir)? {
        if !krate.is_dir() {
            continue;
        }
        for sub in ["src", "tests"] {
            let dir = krate.join(sub);
            if dir.is_dir() {
                collect_rs(&dir, &mut files)?;
            }
        }
    }
    let mut findings = Vec::new();
    for file in files {
        let rel = rel_path(root, &file);
        if rel.starts_with("crates/audit/fixtures/") {
            continue;
        }
        let source = std::fs::read_to_string(&file)?;
        findings.extend(audit_source(&rel, &source));
    }
    findings.sort_by(|a, b| (a.file.as_str(), a.line).cmp(&(b.file.as_str(), b.line)));
    Ok(findings)
}

/// Audit a directory tree rooted at `root` (used for the fixture tests:
/// the fixtures mirror workspace-relative paths so path-scoped rules
/// apply to them).
pub fn audit_tree(root: &Path) -> io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    collect_rs(root, &mut files)?;
    let mut findings = Vec::new();
    for file in files {
        let rel = rel_path(root, &file);
        let source = std::fs::read_to_string(&file)?;
        findings.extend(audit_source(&rel, &source));
    }
    findings.sort_by(|a, b| (a.file.as_str(), a.line).cmp(&(b.file.as_str(), b.line)));
    Ok(findings)
}

fn rel_path(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Recursively collect `.rs` files under `dir`, sorted for determinism.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in sorted_dir(dir)? {
        if entry.is_dir() {
            collect_rs(&entry, out)?;
        } else if entry.extension().is_some_and(|e| e == "rs") {
            out.push(entry);
        }
    }
    Ok(())
}

fn sorted_dir(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut entries: Vec<PathBuf> =
        std::fs::read_dir(dir)?.map(|e| e.map(|e| e.path())).collect::<io::Result<_>>()?;
    entries.sort();
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(path: &str, src: &str) -> Vec<Finding> {
        audit_source(path, src)
    }

    fn rule_lines(findings: &[Finding], rule: Rule) -> Vec<usize> {
        findings.iter().filter(|f| f.rule == rule).map(|f| f.line).collect()
    }

    // ---- hash-order ----------------------------------------------------

    #[test]
    fn hash_order_flags_hashmap_in_deterministic_crate() {
        let src = "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); }\n";
        let f = lint("crates/models/src/x.rs", src);
        assert_eq!(rule_lines(&f, Rule::HashOrder), vec![1, 2]);
    }

    #[test]
    fn hash_order_respects_waiver_and_scope() {
        let waived =
            "// audit: ordered — membership only, never iterated\nuse std::collections::HashSet;\n";
        assert!(lint("crates/kg/src/x.rs", waived).is_empty());
        // Same-line waiver form.
        let same = "let s = HashSet::new(); // audit: ordered — membership only\n";
        assert!(lint("crates/kg/src/x.rs", same).is_empty());
        // Out-of-scope crate: no finding.
        let src = "use std::collections::HashMap;\n";
        assert!(lint("crates/bench/src/x.rs", src).is_empty());
    }

    #[test]
    fn hash_order_ignores_tests_comments_and_strings() {
        let src = "// HashMap in a comment\nlet s = \"HashMap\";\n#[cfg(test)]\nmod tests { use std::collections::HashMap; }\n";
        assert!(lint("crates/eval/src/x.rs", src).is_empty());
    }

    // ---- wallclock -----------------------------------------------------

    #[test]
    fn wallclock_flags_entropy_sources() {
        let src = "fn f() { let t = SystemTime::now(); let r = rand::thread_rng(); }\n";
        let f = lint("crates/models/src/x.rs", src);
        assert_eq!(rule_lines(&f, Rule::Wallclock).len(), 2);
        let waived =
            "// audit: wallclock — log timestamp only, never a seed\nlet t = SystemTime::now();\n";
        assert!(lint("crates/models/src/x.rs", waived).is_empty());
    }

    #[test]
    fn wallclock_allows_instant_profiling_but_not_seeding() {
        let profiling = "let t0 = Instant::now();\nlet dt = t0.elapsed();\n";
        assert!(lint("crates/models/src/x.rs", profiling).is_empty());
        let seeding = "let seed = Instant::now().elapsed().as_nanos() as u64;\n";
        assert!(!rule_lines(&lint("crates/models/src/x.rs", seeding), Rule::Wallclock).is_empty());
        // Bench crate measures wall time by design.
        assert!(lint("crates/bench/src/x.rs", "let t = SystemTime::now();\n").is_empty());
    }

    // ---- unsafe-comment ------------------------------------------------

    #[test]
    fn unsafe_requires_safety_comment() {
        let bare = "fn f() { unsafe { do_it() } }\n";
        assert_eq!(rule_lines(&lint("crates/kg/src/x.rs", bare), Rule::UnsafeComment), vec![1]);
        let justified = "// SAFETY: indices were bounds-checked above\nunsafe { do_it() }\n";
        assert!(lint("crates/kg/src/x.rs", justified).is_empty());
        // Comment up to three lines above still counts (rustfmt may wrap).
        let wrapped = "// SAFETY: the slice lives as long as\n// the borrow, checked above\n\nunsafe { do_it() }\n";
        assert!(lint("crates/kg/src/x.rs", wrapped).is_empty());
    }

    #[test]
    fn unsafe_in_word_position_only() {
        let src = "fn f() { let not_unsafe_name = 1; }\n";
        assert!(lint("crates/kg/src/x.rs", src).is_empty());
    }

    // ---- hot-panic -----------------------------------------------------

    #[test]
    fn hot_panic_flags_unwrap_expect_and_indexing_in_denylisted_files() {
        let src = "fn f(xs: &[u32]) { let a = g().unwrap(); let b = h().expect(\"x\"); let c = xs[0]; }\n";
        let f = lint("crates/models/src/replica.rs", src);
        assert_eq!(rule_lines(&f, Rule::HotPanic).len(), 3);
        // Same source in a non-denylisted file: clean.
        assert!(lint("crates/models/src/ckat.rs", src).is_empty());
    }

    #[test]
    fn hot_panic_waiver_and_non_index_brackets() {
        let waived = "// audit: unwrap — slot j exists for every job by construction\nlet r = slots[j].take().expect(\"slot filled\");\n";
        assert!(lint("crates/eval/src/trainer.rs", waived).is_empty());
        // Attributes, macros, slice types, array literals are not indexing.
        let src =
            "#[derive(Debug)]\nfn f(xs: &[u32]) -> Vec<u32> { vec![1, 2] }\nlet a = [0u32; 4];\n";
        assert!(lint("crates/eval/src/trainer.rs", src).is_empty());
    }

    // ---- float-fold ----------------------------------------------------

    #[test]
    fn float_fold_flags_accumulation_in_pooled_closures() {
        let src = "fn f() {\n    pooled_map(n, |j| {\n        total += part;\n        let s: f32 = xs.iter().sum();\n    });\n}\n";
        let f = lint("crates/models/src/x.rs", src);
        assert_eq!(rule_lines(&f, Rule::FloatFold), vec![3, 4]);
    }

    #[test]
    fn float_fold_exemptions() {
        // Integer counters and fold_ordered routing are fine; so is
        // accumulation outside any worker closure.
        let src = "fn f() {\n    pooled_map(n, |j| {\n        count += 1;\n        ns += t.as_nanos() as u64;\n        let g = fold_ordered(parts, 1.0);\n    });\n    total += part;\n}\n";
        assert!(lint("crates/models/src/x.rs", src).is_empty());
        let waived = "fn f() {\n    pooled_map(n, |j| {\n        // audit: fold — per-job local, folded on the main thread in job order\n        local += part;\n    });\n}\n";
        assert!(lint("crates/models/src/x.rs", waived).is_empty());
    }

    #[test]
    fn float_fold_flags_parallel_reductions_anywhere() {
        let src = "let s: f32 = xs.par_iter().sum();\n";
        assert_eq!(rule_lines(&lint("crates/eval/src/x.rs", src), Rule::FloatFold), vec![1]);
    }

    // ---- unbounded-queue -----------------------------------------------

    #[test]
    fn unbounded_queue_flags_channels_and_growable_queues_in_serving_code() {
        let src = "let (tx, rx) = mpsc::channel();\nlet q: VecDeque<u32> = VecDeque::new();\nlet c = unbounded();\n";
        let f = lint("crates/serve/src/queue.rs", src);
        assert_eq!(rule_lines(&f, Rule::UnboundedQueue), vec![1, 2, 3]);
        // Same source outside the serving scope: no finding.
        assert!(lint("crates/models/src/queue.rs", src).is_empty());
    }

    #[test]
    fn unbounded_queue_spares_bounded_constructions_and_waivers() {
        // `sync_channel` fails the whole-word `channel` match by design.
        let bounded = "let (tx, rx) = mpsc::sync_channel(cap);\n";
        assert!(lint("crates/serve/src/queue.rs", bounded).is_empty());
        // with_capacity still needs a waiver (pushes past capacity grow)…
        let unwaived = "let q: VecDeque<u32> = VecDeque::with_capacity(cap);\n";
        let f = lint("crates/serve/src/queue.rs", unwaived);
        assert_eq!(rule_lines(&f, Rule::UnboundedQueue), vec![1]);
        // …and the waiver names the admission check that caps it.
        let waived = "// audit: bounded — capacity enforced by submit()\nlet q = VecDeque::with_capacity(cap);\n";
        assert!(lint("crates/serve/src/queue.rs", waived).is_empty());
    }

    #[test]
    fn serve_hot_paths_are_panic_denylisted() {
        let src = "fn f() { let a = g().unwrap(); }\n";
        for file in [
            "crates/serve/src/server.rs",
            "crates/serve/src/engine.rs",
            "crates/serve/src/snapshot.rs",
        ] {
            assert_eq!(rule_lines(&lint(file, src), Rule::HotPanic), vec![1], "{file}");
        }
        // Not every serve module is denylisted — only the request path.
        assert!(rule_lines(&lint("crates/serve/src/load.rs", src), Rule::HotPanic).is_empty());
    }

    // ---- lane-fold -----------------------------------------------------

    #[test]
    fn lane_fold_flags_bare_accumulators_and_iterator_reductions() {
        let src = "fn f(a: &[f32]) -> f32 {\n    let mut total = 0.0f32;\n    total += a[0];\n    let s: f32 = a.iter().sum();\n    total + s\n}\n";
        let f = lint("crates/linalg/src/kernels.rs", src);
        assert_eq!(rule_lines(&f, Rule::LaneFold), vec![3, 4]);
        // Same source anywhere else: out of scope.
        assert!(lint("crates/linalg/src/matrix.rs", src).is_empty());
    }

    #[test]
    fn lane_fold_spares_per_lane_and_per_element_accumulation() {
        let src = "fn f() {\n    acc[j] += ca[j] * cb[j];\n    *o += a * bv;\n    self.n += x;\n    count += 1;\n    ns += t as u64;\n}\n";
        assert!(lint("crates/linalg/src/kernels.rs", src).is_empty());
    }

    #[test]
    fn lane_fold_waiver() {
        let src = "fn f() {\n    // audit: lanes — max is order-insensitive for non-NaN inputs\n    hi += step;\n    let s: f32 = xs.iter().sum(); // audit: lanes — test-only shim\n}\n";
        assert!(lint("crates/linalg/src/kernels.rs", src).is_empty());
    }

    // ---- display -------------------------------------------------------

    #[test]
    fn finding_display_is_path_line_rule() {
        let f = lint("crates/models/src/x.rs", "use std::collections::HashMap;\n");
        let line = f[0].to_string();
        assert!(line.starts_with("crates/models/src/x.rs:1: [hash-order]"), "{line}");
    }
}
