//! The workspace-wide approximate call graph, and reachability over it.
//!
//! Nodes are every `fn` item the parser found; edges resolve call sites
//! **by name** (with a path-qualifier refinement), the standard
//! over-approximation for a dependency-free analyzer:
//!
//! * `helper(…)` → free workspace fns named `helper` (every fn of that
//!   name if no free one exists);
//! * `Type::new(…)` → fns named `new` under `impl Type` when any exist,
//!   else *free* fns named `new` (module-path qualifiers like
//!   `kernels::gather(…)` fall back this way) — never methods of
//!   unrelated types;
//! * `.rank(…)` → every fn named `rank` that takes a `self` receiver
//!   (dynamic dispatch and generics resolve to all impls, which is
//!   exactly the sound choice; free fns are not method-callable);
//! * identifiers forwarded through macro arguments (`dispatch!(f, …)`)
//!   edge to fns of that name, keeping routing macros connected.
//!
//! Calls whose name matches no workspace fn (std/stub-crate calls)
//! produce no edge. Non-test callers never edge into `#[cfg(test)]`
//! fns. The graph is deterministic: nodes are ordered (file, index) and
//! neighbor lists are sorted and deduped.

use std::collections::BTreeMap;

use crate::lexer::SourceFile;
use crate::syntax::FileSyntax;

/// One parsed workspace file.
pub struct ParsedFile {
    /// Workspace-relative path, `/`-separated.
    pub rel: String,
    pub sf: SourceFile,
    pub syn: FileSyntax,
}

/// A function node: `(file index, fn index within that file)` flattened
/// into one global id by [`CallGraph::build`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FnKey {
    pub file: usize,
    pub idx: usize,
}

pub struct CallGraph {
    /// Global fn id → (file, fn) key, in deterministic order.
    pub nodes: Vec<FnKey>,
    /// Adjacency: global id → sorted, deduped callee ids.
    pub edges: Vec<Vec<usize>>,
    /// Total resolved call edges (sum of adjacency lengths).
    pub n_edges: usize,
    /// Call sites that matched no workspace fn (std/stub calls).
    pub n_unresolved_calls: usize,
    by_name: BTreeMap<String, Vec<usize>>,
}

impl CallGraph {
    /// Build the graph over `files`.
    pub fn build(files: &[ParsedFile]) -> CallGraph {
        let mut nodes = Vec::new();
        for (fi, pf) in files.iter().enumerate() {
            for idx in 0..pf.syn.fns.len() {
                nodes.push(FnKey { file: fi, idx });
            }
        }
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (gid, key) in nodes.iter().enumerate() {
            let f = &files[key.file].syn.fns[key.idx];
            by_name.entry(f.name.clone()).or_default().push(gid);
        }
        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
        let mut n_unresolved = 0usize;
        for (gid, key) in nodes.iter().enumerate() {
            let caller = &files[key.file].syn.fns[key.idx];
            for call in &caller.calls {
                let Some(cands) = by_name.get(&call.name) else {
                    n_unresolved += 1;
                    continue;
                };
                let fn_of = |t: usize| {
                    let tk = nodes[t];
                    &files[tk.file].syn.fns[tk.idx]
                };
                let keep = |pred: &dyn Fn(usize) -> bool| -> Vec<usize> {
                    cands.iter().copied().filter(|&t| pred(t)).collect()
                };
                // Qualifier refinement: `Type::f(…)` keeps impl-matching
                // candidates when any exist; a qualifier with no impl
                // match is a module path (`kernels::f`) and falls back to
                // *free* fns — never to methods of unrelated types.
                // `.f(…)` method syntax only dispatches to fns with a
                // `self` receiver. Bare `f(…)` prefers free fns and
                // falls back to everything (UFCS imports are rare).
                let targets: Vec<usize> = if let Some(q) = &call.qual {
                    let impls = keep(&|t| fn_of(t).qual.as_deref() == Some(q.as_str()));
                    if impls.is_empty() {
                        keep(&|t| fn_of(t).qual.is_none())
                    } else {
                        impls
                    }
                } else if call.is_method {
                    keep(&|t| fn_of(t).has_self)
                } else {
                    let free = keep(&|t| fn_of(t).qual.is_none());
                    if free.is_empty() {
                        cands.clone()
                    } else {
                        free
                    }
                };
                if targets.is_empty() {
                    n_unresolved += 1;
                    continue;
                }
                for t in targets {
                    let tk = nodes[t];
                    let target = &files[tk.file].syn.fns[tk.idx];
                    if target.is_test && !caller.is_test {
                        continue; // non-test code cannot call cfg(test) items
                    }
                    edges[gid].push(t);
                }
            }
        }
        for adj in &mut edges {
            adj.sort_unstable();
            adj.dedup();
        }
        let n_edges = edges.iter().map(|a| a.len()).sum();
        CallGraph { nodes, edges, n_edges, n_unresolved_calls: n_unresolved, by_name }
    }

    /// Number of fn nodes.
    pub fn n_fns(&self) -> usize {
        self.nodes.len()
    }

    /// Resolve one root spec — `"name"` or `"Type::name"` — to the
    /// non-test fns it names. Empty when nothing matches (the caller
    /// turns that into a hard config error).
    pub fn resolve_root(&self, files: &[ParsedFile], spec: &str) -> Vec<usize> {
        let (qual, name) = match spec.split_once("::") {
            Some((q, n)) => (Some(q), n),
            None => (None, spec),
        };
        let Some(cands) = self.by_name.get(name) else { return Vec::new() };
        cands
            .iter()
            .copied()
            .filter(|&gid| {
                let k = self.nodes[gid];
                let f = &files[k.file].syn.fns[k.idx];
                !f.is_test && (qual.is_none() || f.qual.as_deref() == qual)
            })
            .collect()
    }

    /// BFS from `roots`; returns `parent[gid] = Some(pred)` for every
    /// reachable fn (roots are their own parents). Deterministic: roots
    /// in given order, neighbors in sorted order.
    pub fn reach(&self, roots: &[usize]) -> Vec<Option<usize>> {
        let mut parent: Vec<Option<usize>> = vec![None; self.nodes.len()];
        let mut queue = std::collections::VecDeque::new();
        for &r in roots {
            if parent[r].is_none() {
                parent[r] = Some(r);
                queue.push_back(r);
            }
        }
        while let Some(u) = queue.pop_front() {
            for &v in &self.edges[u] {
                if parent[v].is_none() {
                    parent[v] = Some(u);
                    queue.push_back(v);
                }
            }
        }
        parent
    }

    /// Render the call chain from a root down to `gid` (using the BFS
    /// parent map), e.g. `train_epoch → step → helper`. Long chains are
    /// elided in the middle.
    pub fn chain(&self, files: &[ParsedFile], parent: &[Option<usize>], gid: usize) -> String {
        let mut path = vec![gid];
        let mut cur = gid;
        while let Some(p) = parent[cur] {
            if p == cur {
                break;
            }
            path.push(p);
            cur = p;
        }
        path.reverse();
        let label = |g: usize| {
            let k = self.nodes[g];
            let f = &files[k.file].syn.fns[k.idx];
            match &f.qual {
                Some(q) => format!("{q}::{}", f.name),
                None => f.name.clone(),
            }
        };
        if path.len() > 6 {
            let head: Vec<String> = path[..3].iter().map(|&g| label(g)).collect();
            let tail: Vec<String> = path[path.len() - 2..].iter().map(|&g| label(g)).collect();
            format!("{} → … → {}", head.join(" → "), tail.join(" → "))
        } else {
            path.iter().map(|&g| label(g)).collect::<Vec<_>>().join(" → ")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::SourceFile;
    use crate::syntax::parse_file;

    fn workspace(files: &[(&str, &str)]) -> (Vec<ParsedFile>, CallGraph) {
        let parsed: Vec<ParsedFile> = files
            .iter()
            .map(|(rel, src)| {
                let sf = SourceFile::new(src);
                let syn = parse_file(&sf);
                ParsedFile { rel: rel.to_string(), sf, syn }
            })
            .collect();
        let graph = CallGraph::build(&parsed);
        (parsed, graph)
    }

    fn gid_of(files: &[ParsedFile], graph: &CallGraph, name: &str) -> usize {
        graph
            .nodes
            .iter()
            .position(|k| files[k.file].syn.fns[k.idx].name == name)
            .unwrap_or_else(|| panic!("no fn named {name}"))
    }

    #[test]
    fn cross_file_edges_resolve_by_name() {
        let (files, g) = workspace(&[
            ("a.rs", "pub fn root() { helper(); }\n"),
            ("b.rs", "pub fn helper() { leaf(); }\npub fn leaf() {}\n"),
        ]);
        let root = gid_of(&files, &g, "root");
        let leaf = gid_of(&files, &g, "leaf");
        let parent = g.reach(&[root]);
        assert!(parent[leaf].is_some(), "leaf reachable two hops down");
        assert_eq!(g.chain(&files, &parent, leaf), "root → helper → leaf");
    }

    #[test]
    fn qualifier_prefers_matching_impl_and_falls_back() {
        let (files, g) = workspace(&[
            (
                "a.rs",
                "impl Server { pub fn new() { a(); } }\nimpl Client { pub fn new() { b(); } }\nfn a() {}\nfn b() {}\n",
            ),
            ("c.rs", "fn root() { Server::new(); }\nfn modpath() { util::shared(); }\nfn shared() {}\n"),
        ]);
        let root = gid_of(&files, &g, "root");
        let a = gid_of(&files, &g, "a");
        let b = gid_of(&files, &g, "b");
        let parent = g.reach(&[root]);
        assert!(parent[a].is_some(), "Server::new resolves to the Server impl");
        assert!(parent[b].is_none(), "Client::new must not be reached");
        // Module-path qualifier (`util::shared`) has no impl match → name fallback.
        let modpath = gid_of(&files, &g, "modpath");
        let shared = gid_of(&files, &g, "shared");
        let parent = g.reach(&[modpath]);
        assert!(parent[shared].is_some());
    }

    #[test]
    fn method_calls_edge_to_every_impl() {
        let (files, g) = workspace(&[(
            "a.rs",
            "impl Ckat { fn train_epoch(&self) { x(); } }\nimpl Kgcn { fn train_epoch(&self) { y(); } }\nfn run(m: &dyn Model) { m.train_epoch(); }\nfn x() {}\nfn y() {}\n",
        )]);
        let run = gid_of(&files, &g, "run");
        let parent = g.reach(&[run]);
        assert!(parent[gid_of(&files, &g, "x")].is_some());
        assert!(parent[gid_of(&files, &g, "y")].is_some());
    }

    #[test]
    fn test_fns_are_not_targets_of_live_code_and_cycles_terminate() {
        let (files, g) = workspace(&[(
            "a.rs",
            "fn root() { ping(); helper(); }\nfn ping() { pong(); }\nfn pong() { ping(); }\n#[cfg(test)]\nmod tests {\n    fn helper() { secret(); }\n    fn secret() {}\n}\n",
        )]);
        let root = gid_of(&files, &g, "root");
        let parent = g.reach(&[root]);
        assert!(parent[gid_of(&files, &g, "pong")].is_some(), "cycle traversed once");
        assert!(
            parent[gid_of(&files, &g, "secret")].is_none(),
            "test fns unreachable from live code"
        );
    }

    #[test]
    fn root_resolution_by_name_and_qualified() {
        let (files, g) = workspace(&[(
            "a.rs",
            "impl Server { fn handle(&self) {} }\nimpl Proxy { fn handle(&self) {} }\nfn lone() {}\n#[cfg(test)]\nfn t_only() {}\n",
        )]);
        assert_eq!(g.resolve_root(&files, "handle").len(), 2);
        assert_eq!(g.resolve_root(&files, "Server::handle").len(), 1);
        assert_eq!(g.resolve_root(&files, "lone").len(), 1);
        assert!(g.resolve_root(&files, "t_only").is_empty(), "test fns cannot be roots");
        assert!(g.resolve_root(&files, "absent").is_empty());
    }

    #[test]
    fn macro_forwarded_names_keep_dispatch_connected() {
        let (files, g) = workspace(&[(
            "k.rs",
            "pub fn gather(a: &[f32]) { dispatch!(gather_avx2, a); }\nfn gather_avx2(a: &[f32]) { leafk(); }\nfn leafk() {}\n",
        )]);
        let root = gid_of(&files, &g, "gather");
        let parent = g.reach(&[root]);
        assert!(parent[gid_of(&files, &g, "leafk")].is_some());
    }
}
