//! Nondeterminism taint: flag sources of nondeterminism inside any fn
//! *transitively reachable* from a deterministic root.
//!
//! The repo's core contract is bitwise determinism — resume from a
//! checkpoint is bit-identical, replica training folds to the same bits
//! for any thread count. The old rules enforced that per-directory
//! (`DETERMINISTIC_SCOPES`): a helper crate outside the five listed
//! directories could iterate a `HashMap` on behalf of the trainer and
//! nothing fired. This analysis follows the call graph from the
//! deterministic roots instead, so laundering a source through any
//! helper — in any crate — still reaches a finding.
//!
//! Sources, and the rules/waiver tags they report under:
//!
//! * **hash-order** (`ordered`) — `HashMap`/`HashSet` mentions. A token
//!   outside any fn (a `use`, a struct field) is a *module-level*
//!   source: it fires when any of the file's fns is reachable, because
//!   the type is then available to all of them.
//! * **float-fold** (`fold`) — float accumulation inside closures handed
//!   to `pooled_map`/scoped `spawn`, and parallel-iterator reductions,
//!   unless routed through `fold_ordered`.
//! * **wallclock** (`wallclock`) — `SystemTime`/`thread_rng`/
//!   `from_entropy` inside crates the *line* rule exempts (bench, the
//!   auditor): exemption covers measuring wall time locally, not
//!   handing clock-derived values to a deterministic caller.

use crate::analysis::enclosing_fn;
use crate::callgraph::{CallGraph, ParsedFile};
use crate::lexer::TokenKind;
use crate::rules::{self, AuditConfig, Finding, Rule};

/// Run the analysis. `parent` is the BFS parent map over the
/// deterministic roots.
pub fn run(
    files: &[ParsedFile],
    g: &CallGraph,
    parent: &[Option<usize>],
    cfg: &AuditConfig,
) -> Vec<Finding> {
    // gid lookup: (file, fn idx) → global id.
    let mut gid_of = vec![Vec::new(); files.len()];
    for (gid, key) in g.nodes.iter().enumerate() {
        gid_of[key.file].push(gid);
        debug_assert_eq!(gid_of[key.file].len() - 1, key.idx);
    }
    let mut out = Vec::new();
    for (fi, pf) in files.iter().enumerate() {
        // The chain to show for module-level sources: the first
        // reachable non-test fn in the file.
        let first_reachable = pf
            .syn
            .fns
            .iter()
            .enumerate()
            .find(|(idx, f)| !f.is_test && f.body_span.1 > 0 && parent[gid_of[fi][*idx]].is_some())
            .map(|(idx, _)| gid_of[fi][idx]);
        let reach_at = |offset: usize| -> Option<(Option<usize>, usize)> {
            // → (fn line for fn-level waivers, gid whose chain to print)
            match enclosing_fn(pf, offset) {
                Some(idx) => {
                    let gid = gid_of[fi][idx];
                    parent[gid].map(|_| (Some(pf.syn.fns[idx].line), gid))
                }
                None => first_reachable.map(|gid| (None, gid)),
            }
        };
        hash_order(pf, g, files, parent, &reach_at, &mut out);
        float_fold(pf, g, files, parent, &reach_at, &mut out);
        if cfg.wallclock_exempt.iter().any(|p| pf.rel.starts_with(p)) {
            wallclock(pf, g, files, parent, &reach_at, &mut out);
        }
    }
    out
}

type ReachAt<'a> = dyn Fn(usize) -> Option<(Option<usize>, usize)> + 'a;

fn hash_order(
    pf: &ParsedFile,
    g: &CallGraph,
    files: &[ParsedFile],
    parent: &[Option<usize>],
    reach_at: &ReachAt,
    out: &mut Vec<Finding>,
) {
    for t in &pf.sf.tokens {
        if t.kind != TokenKind::Ident || pf.sf.in_test(t.lo) {
            continue;
        }
        let word = pf.sf.text(t);
        if word != "HashMap" && word != "HashSet" {
            continue;
        }
        let Some((fn_line, gid)) = reach_at(t.lo) else { continue };
        let line = pf.sf.line_of(t.lo);
        if rules::waived_any(&pf.sf, line, fn_line, Rule::HashOrder) {
            continue;
        }
        let site = if fn_line.is_some() { "" } else { " (module-level: every fn sees it)" };
        out.push(Finding {
            file: pf.rel.clone(),
            line,
            rule: Rule::HashOrder,
            message: format!(
                "{word} reachable from a deterministic root{site}: iteration order is \
                 nondeterministic — use BTreeMap/BTreeSet or a sorted collect, or waive \
                 membership-only use with `// audit: ordered — <reason>`"
            ),
            chain: Some(g.chain(files, parent, gid)),
        });
    }
}

/// Float accumulation inside closures handed to `pooled_map` or scoped
/// `spawn`, and parallel-iterator reductions, in any reachable fn. Float
/// addition is not associative: any cross-thread fold must run through
/// `fold_ordered`/`fold_grads_ordered` (fixed part order) or carry a
/// waiver explaining why the accumulation is thread-local.
fn float_fold(
    pf: &ParsedFile,
    g: &CallGraph,
    files: &[ParsedFile],
    parent: &[Option<usize>],
    reach_at: &ReachAt,
    out: &mut Vec<Finding>,
) {
    let s = &pf.sf;
    // Spans of worker closures: from each `pooled_map(`/`.spawn(` to the
    // call's matching close paren.
    let mut spans: Vec<(usize, usize)> = Vec::new();
    for word in ["pooled_map", "spawn"] {
        for pos in rules::word_positions(&s.code, word) {
            if let Some(open) = s.code[pos..].find('(').map(|r| pos + r) {
                spans.push((open, rules::match_paren(s.code.as_bytes(), open)));
            }
        }
    }
    for line in 1..=s.n_lines() {
        if s.in_test_line(line) {
            continue;
        }
        let code = s.code_line(line);
        let offset = s.line_offset(line);
        let in_span = spans.iter().any(|&(lo, hi)| offset > lo && offset < hi);
        let integerish = code.contains("as u64")
            || code.contains("as u32")
            || code.contains("as usize")
            || code.contains("+= 1");
        let accumulates = code.contains("+=") || code.contains(".sum(") || code.contains(".sum::");
        let par_reduce = code.contains("par_")
            && (code.contains(".sum(") || code.contains(".reduce(") || code.contains(".fold("));
        let routed = code.contains("fold_ordered");
        let hit = par_reduce || (in_span && accumulates && !integerish);
        if !hit || routed {
            continue;
        }
        let Some((fn_line, gid)) = reach_at(offset) else { continue };
        if rules::waived_any(s, line, fn_line, Rule::FloatFold) {
            continue;
        }
        out.push(Finding {
            file: pf.rel.clone(),
            line,
            rule: Rule::FloatFold,
            message: "float accumulation in a worker closure / parallel reduction on a \
                      deterministic path — route cross-thread folds through fold_ordered, or \
                      waive thread-local accumulation with `// audit: fold — <reason>`"
                .to_string(),
            chain: Some(g.chain(files, parent, gid)),
        });
    }
}

/// Entropy/clock sources inside wallclock-*exempt* crates that are
/// nevertheless reachable from a deterministic root: the exemption
/// covers local measurement, not exporting clock-derived values into
/// deterministic callers. (Non-exempt crates are covered by the
/// unconditional wallclock line rule.)
fn wallclock(
    pf: &ParsedFile,
    g: &CallGraph,
    files: &[ParsedFile],
    parent: &[Option<usize>],
    reach_at: &ReachAt,
    out: &mut Vec<Finding>,
) {
    for t in &pf.sf.tokens {
        if t.kind != TokenKind::Ident || pf.sf.in_test(t.lo) {
            continue;
        }
        let word = pf.sf.text(t);
        if !["SystemTime", "thread_rng", "from_entropy"].contains(&word) {
            continue;
        }
        // Only fn-level sources: a `use std::time::SystemTime` at module
        // scope in a bench crate is measurement plumbing, not a leak.
        let Some((fn_line @ Some(_), gid)) = reach_at(t.lo) else { continue };
        let line = pf.sf.line_of(t.lo);
        if rules::waived_any(&pf.sf, line, fn_line, Rule::Wallclock) {
            continue;
        }
        out.push(Finding {
            file: pf.rel.clone(),
            line,
            rule: Rule::Wallclock,
            message: format!(
                "{word} in a wallclock-exempt crate but reachable from a deterministic root — \
                 the exemption covers local measurement, not feeding clock/entropy values to \
                 deterministic callers; waive with `// audit: wallclock — <reason>`"
            ),
            chain: Some(g.chain(files, parent, gid)),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::testutil::{parents, workspace};

    fn cfg() -> AuditConfig {
        AuditConfig::workspace()
    }

    fn lines(f: &[Finding], file: &str, rule: Rule) -> Vec<usize> {
        f.iter().filter(|f| f.file == file && f.rule == rule).map(|f| f.line).collect()
    }

    #[test]
    fn hash_order_laundered_through_helper_crate_is_caught() {
        // The helper lives outside the old DETERMINISTIC_SCOPES — the old
        // per-directory rule provably missed this.
        let (files, g) = workspace(&[
            ("crates/models/src/a.rs", "pub fn taint_entry(n: usize) -> f32 { bucket_stats(n) }\n"),
            (
                "crates/util/src/launder.rs",
                "pub fn bucket_stats(n: usize) -> f32 {\n    let m: std::collections::HashMap<usize, f32> = std::collections::HashMap::new();\n    m.values().copied().next().unwrap_or(n as f32)\n}\n",
            ),
        ]);
        let p = parents(&files, &g, &["taint_entry"]);
        let f = run(&files, &g, &p, &cfg());
        assert_eq!(lines(&f, "crates/util/src/launder.rs", Rule::HashOrder), vec![2, 2]);
        assert!(f[0].chain.as_deref().unwrap().contains("taint_entry → bucket_stats"));
    }

    #[test]
    fn module_level_hash_fires_only_when_a_fn_is_reachable() {
        let src = "use std::collections::HashMap;\npub fn live() -> usize { 0 }\n";
        let (files, g) = workspace(&[("crates/x/src/a.rs", src)]);
        let p = parents(&files, &g, &["live"]);
        let f = run(&files, &g, &p, &cfg());
        assert_eq!(lines(&f, "crates/x/src/a.rs", Rule::HashOrder), vec![1]);
        // No roots → the same file is silent.
        let p = g.reach(&[]);
        assert!(run(&files, &g, &p, &cfg()).is_empty());
    }

    #[test]
    fn unreachable_sources_and_waivers_stay_silent() {
        let (files, g) = workspace(&[(
            "crates/x/src/a.rs",
            "pub fn root(keys: &[u32]) -> bool { member(keys) }\nfn member(keys: &[u32]) -> bool {\n    // audit: ordered — membership probe only, never iterated\n    let s: std::collections::HashSet<u32> = keys.iter().copied().collect();\n    s.contains(&0)\n}\npub fn dead() { let _ = std::collections::HashMap::<u32, u32>::new(); }\n",
        )]);
        let p = parents(&files, &g, &["root"]);
        assert!(run(&files, &g, &p, &cfg()).is_empty());
    }

    #[test]
    fn float_fold_in_reachable_worker_closure() {
        let src = "pub fn root(parts: &[f32]) -> f32 { helper(parts) }\nfn helper(parts: &[f32]) -> f32 {\n    let mut total = 0.0f32;\n    pooled_map(parts.len(), |j| {\n        total += parts.len() as f32;\n    });\n    total\n}\n";
        let (files, g) = workspace(&[("crates/x/src/a.rs", src)]);
        let p = parents(&files, &g, &["root"]);
        let f = run(&files, &g, &p, &cfg());
        assert_eq!(lines(&f, "crates/x/src/a.rs", Rule::FloatFold), vec![5]);
        // Unreachable: same file, no roots.
        assert!(run(&files, &g, &g.reach(&[]), &cfg()).is_empty());
    }

    #[test]
    fn wallclock_taint_applies_only_inside_exempt_crates() {
        let src = "pub fn stamp() -> u64 { clock_ns() }\nfn clock_ns() -> u64 { let t = SystemTime::now(); 0 }\n";
        let (files, g) = workspace(&[("crates/bench/src/a.rs", src)]);
        let p = parents(&files, &g, &["stamp"]);
        let f = run(&files, &g, &p, &cfg());
        assert_eq!(lines(&f, "crates/bench/src/a.rs", Rule::Wallclock), vec![2]);
        // Outside an exempt crate the line rule owns the token — taint is
        // silent to avoid double-reporting.
        let (files, g) = workspace(&[("crates/models/src/a.rs", src)]);
        let p = parents(&files, &g, &["stamp"]);
        assert!(run(&files, &g, &p, &cfg()).is_empty());
    }
}
