//! Call-graph analyses: rules whose subject is a *path through the call
//! graph*, not a single line.
//!
//! * [`panic_reach`] — implicit panics transitively reachable from a
//!   hot-path root (superseded the old `HOT_PATH_FILES` deny-list);
//! * [`taint`] — nondeterminism sources transitively reachable from a
//!   deterministic root (superseded the old `DETERMINISTIC_SCOPES`
//!   directory list).
//!
//! Both consume the same inputs: the parsed files, the workspace call
//! graph, and a BFS parent map from [`crate::callgraph::CallGraph::reach`]
//! over the respective root set. Findings carry the root → … → fn chain
//! that makes the site reachable, so a reviewer can see *why* a line
//! deep in a helper crate is on the hot path.

pub mod panic_reach;
pub mod taint;

use crate::callgraph::ParsedFile;

/// Index of the innermost fn in `pf` whose item span (signature start
/// through closing brace) contains `offset`. Bodiless declarations never
/// match. Innermost wins for nested fns because its `fn` keyword starts
/// later.
pub(crate) fn enclosing_fn(pf: &ParsedFile, offset: usize) -> Option<usize> {
    let mut best: Option<usize> = None;
    for (idx, f) in pf.syn.fns.iter().enumerate() {
        if f.body_span.1 > 0 && offset >= f.item_lo && offset < f.body_span.1 {
            match best {
                Some(b) if pf.syn.fns[b].item_lo >= f.item_lo => {}
                _ => best = Some(idx),
            }
        }
    }
    best
}

#[cfg(test)]
pub(crate) mod testutil {
    use crate::callgraph::{CallGraph, ParsedFile};
    use crate::lexer::SourceFile;
    use crate::syntax::parse_file;

    /// Build a tiny in-memory workspace for analysis tests.
    pub fn workspace(files: &[(&str, &str)]) -> (Vec<ParsedFile>, CallGraph) {
        let parsed: Vec<ParsedFile> = files
            .iter()
            .map(|(rel, src)| {
                let sf = SourceFile::new(src);
                let syn = parse_file(&sf);
                ParsedFile { rel: rel.to_string(), sf, syn }
            })
            .collect();
        let graph = CallGraph::build(&parsed);
        (parsed, graph)
    }

    /// Resolve root specs and return the BFS parent map.
    pub fn parents(files: &[ParsedFile], g: &CallGraph, roots: &[&str]) -> Vec<Option<usize>> {
        let mut ids = Vec::new();
        for spec in roots {
            ids.extend(g.resolve_root(files, spec));
        }
        g.reach(&ids)
    }
}
