//! Panic-reachability: flag every implicit-panic site — `.unwrap()`,
//! `.expect(…)`, panicking indexing `xs[i]`, and the `panic!` macro
//! family — inside any fn *transitively reachable* from a hot-path root.
//!
//! A panic on a serving worker burns the thread and drops an admitted
//! request; a panic inside the trainer's scoped pool tears down the
//! whole epoch. The old rule deny-listed seven files by path; this
//! analysis follows the call graph instead, so a helper two crates away
//! is held to the same standard as the root — and a renamed file cannot
//! silently fall out of coverage.
//!
//! Waivers use the existing `unwrap` tag at any granularity:
//! site (`// audit: unwrap — <why this cannot fail>`), fn
//! (`// audit: fn unwrap — …` above the fn), or module
//! (`audit: module unwrap — …` anywhere in the file).

use crate::callgraph::{CallGraph, ParsedFile};
use crate::lexer::{Token, TokenKind};
use crate::rules::{self, Finding, Rule};

/// Macro names whose invocation is an unconditional panic.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Run the analysis. `parent` is the BFS parent map over the hot-path
/// roots; only fns with `parent[gid].is_some()` are scanned.
pub fn run(files: &[ParsedFile], g: &CallGraph, parent: &[Option<usize>]) -> Vec<Finding> {
    let mut out = Vec::new();
    for (gid, key) in g.nodes.iter().enumerate() {
        if parent[gid].is_none() {
            continue;
        }
        let pf = &files[key.file];
        let f = &pf.syn.fns[key.idx];
        if f.is_test || f.body_span.1 == 0 {
            continue;
        }
        let chain = g.chain(files, parent, gid);
        scan_fn(pf, f.line, f.body_span, &chain, &mut out);
    }
    out
}

fn scan_fn(
    pf: &ParsedFile,
    fn_line: usize,
    span: (usize, usize),
    chain: &str,
    out: &mut Vec<Finding>,
) {
    let sf = &pf.sf;
    let toks: Vec<&Token> = sf
        .tokens
        .iter()
        .filter(|t| {
            t.lo >= span.0
                && t.hi <= span.1
                && !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment)
        })
        .collect();
    let bytes = sf.code.as_bytes();
    let mut push = |line: usize, message: String| {
        if !rules::waived_any(sf, line, Some(fn_line), Rule::PanicReach) {
            out.push(Finding {
                file: pf.rel.clone(),
                line,
                rule: Rule::PanicReach,
                message,
                chain: Some(chain.to_string()),
            });
        }
    };
    let mut last_index_line = 0usize;
    for (i, t) in toks.iter().enumerate() {
        match t.kind {
            TokenKind::Ident => {
                let name = sf.text(t);
                let prev_dot =
                    i > 0 && toks[i - 1].kind == TokenKind::Punct && bytes[toks[i - 1].lo] == b'.';
                let next_is = |ch: u8| {
                    i + 1 < toks.len()
                        && toks[i + 1].kind == TokenKind::Punct
                        && bytes[toks[i + 1].lo] == ch
                };
                if (name == "unwrap" || name == "expect") && prev_dot && next_is(b'(') {
                    push(
                        sf.line_of(t.lo),
                        format!(
                            "`.{name}(…)` reachable from a hot-path root — propagate a typed \
                             error or waive with `// audit: unwrap — <why this cannot fail>`"
                        ),
                    );
                } else if PANIC_MACROS.contains(&name) && !prev_dot && next_is(b'!') {
                    push(
                        sf.line_of(t.lo),
                        format!(
                            "`{name}!` reachable from a hot-path root — hot paths must degrade, \
                             not panic; waive with `// audit: unwrap — <reason>`"
                        ),
                    );
                }
            }
            TokenKind::Punct
                // Panicking index: `[` byte-adjacent to an identifier char
                // (`#[…]`, `vec![…]`, `&[T]`, `= [` all have a non-ident
                // byte before the bracket). One finding per line.
                if bytes[t.lo] == b'['
                    && t.lo > 0
                    && (bytes[t.lo - 1] == b'_' || bytes[t.lo - 1].is_ascii_alphanumeric())
                => {
                    let line = sf.line_of(t.lo);
                    if line != last_index_line {
                        last_index_line = line;
                        let col = t.lo - sf.line_offset(line);
                        push(
                            line,
                            format!(
                                "panicking index `{}` reachable from a hot-path root — use \
                                 `get`/iterators or waive with `// audit: unwrap — <why in \
                                 bounds>`",
                                rules::snippet(sf.code_line(line), col)
                            ),
                        );
                    }
                }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::testutil::{parents, workspace};

    fn lines(f: &[Finding], file: &str) -> Vec<usize> {
        f.iter().filter(|f| f.file == file).map(|f| f.line).collect()
    }

    #[test]
    fn flags_panics_two_calls_below_the_root() {
        let (files, g) = workspace(&[
            ("a.rs", "pub fn root(xs: &[u32]) -> u32 { mid(xs) }\nfn mid(xs: &[u32]) -> u32 { leaf(xs) }\n"),
            ("b.rs", "pub fn leaf(xs: &[u32]) -> u32 { xs.first().unwrap() + xs[0] }\n"),
        ]);
        let p = parents(&files, &g, &["root"]);
        let f = run(&files, &g, &p);
        assert_eq!(lines(&f, "b.rs"), vec![1, 1], "unwrap + indexing, cross-file");
        assert!(f[0].chain.as_deref().unwrap().contains("root → mid → leaf"));
    }

    #[test]
    fn unreachable_fns_are_not_scanned() {
        let (files, g) = workspace(&[(
            "a.rs",
            "pub fn root() { safe(); }\nfn safe() {}\npub fn dead(xs: &[u32]) -> u32 { xs[0] }\n",
        )]);
        let p = parents(&files, &g, &["root"]);
        assert!(run(&files, &g, &p).is_empty());
    }

    #[test]
    fn panic_macros_and_expect_are_flagged() {
        let (files, g) = workspace(&[(
            "a.rs",
            "pub fn root(x: Option<u32>) -> u32 {\n    match x {\n        Some(v) => v,\n        None => unreachable!(),\n    }\n}\npub fn root2(x: Option<u32>) -> u32 { x.expect(\"set\") }\n",
        )]);
        let p = parents(&files, &g, &["root", "root2"]);
        let f = run(&files, &g, &p);
        assert_eq!(lines(&f, "a.rs"), vec![4, 7]);
    }

    #[test]
    fn waivers_at_site_fn_and_module_granularity() {
        let site = "pub fn root(xs: &[u32]) -> u32 {\n    // audit: unwrap — non-empty by admission check\n    xs[0]\n}\n";
        let fnlvl = "// audit: fn unwrap — all indices bounds-masked below\npub fn root(xs: &[u32]) -> u32 { xs[0] + xs.first().unwrap() }\n";
        let modlvl = "//! audit: module unwrap — panics validated by the runtime checker\npub fn root(xs: &[u32]) -> u32 { xs[0] }\n";
        for src in [site, fnlvl, modlvl] {
            let (files, g) = workspace(&[("a.rs", src)]);
            let p = parents(&files, &g, &["root"]);
            assert!(run(&files, &g, &p).is_empty(), "{src}");
        }
    }

    #[test]
    fn non_panicking_lookalikes_stay_silent() {
        let (files, g) = workspace(&[(
            "a.rs",
            "pub fn root(xs: &[u32]) -> u32 {\n    let a = xs.first().copied().unwrap_or(0);\n    let v = vec![1, 2];\n    let t: &[u32] = &xs[..0.min(xs.len())];\n    a + v.len() as u32 + t.len() as u32\n}\n",
        )]);
        let p = parents(&files, &g, &["root"]);
        let f = run(&files, &g, &p);
        // `xs[..]` *is* ident-adjacent `[` — range slicing can panic too,
        // so it is flagged; unwrap_or and vec! are not.
        assert_eq!(lines(&f, "a.rs"), vec![4]);
    }
}
