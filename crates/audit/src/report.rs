//! The machine-readable audit report (`AUDIT_REPORT.json`): findings,
//! call-graph statistics, the unsafe-block/SAFETY inventory, and
//! parse/analysis timing — everything CI needs to archive one audit run
//! as an artifact.
//!
//! The writer is hand-rolled (the auditor is dependency-free by
//! design): a small escaper plus struct-shaped emitters. Output is
//! deterministic given the same tree — findings and unsafe sites are
//! sorted, and timing fields are the only values that vary run-to-run.

use crate::rules::Finding;

/// Wall-time breakdown of one audit run, in milliseconds.
#[derive(Debug, Default, Clone, Copy)]
pub struct Timing {
    /// Reading + lexing + item-parsing every file.
    pub parse_ms: f64,
    /// Call-graph construction and root BFS.
    pub callgraph_ms: f64,
    /// Line rules + both call-graph analyses.
    pub analysis_ms: f64,
    /// End-to-end, including file discovery.
    pub total_ms: f64,
}

/// One `unsafe` occurrence, for the SAFETY inventory.
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    pub file: String,
    pub line: usize,
    /// Inside `#[cfg(test)]` code.
    pub in_test: bool,
    /// Has a `// SAFETY:` comment on or within three lines above.
    pub has_safety: bool,
}

/// Everything one audit run learned about the tree.
#[derive(Debug)]
pub struct Report {
    /// `"workspace"` or `"fixtures"`.
    pub root_kind: &'static str,
    pub n_files: usize,
    pub n_lines: usize,
    /// Call-graph shape.
    pub n_fns: usize,
    pub n_edges: usize,
    /// Call sites that matched no workspace fn (std/stub calls).
    pub n_unresolved_calls: usize,
    /// Root-set sizes (resolved fns, not spec strings).
    pub n_panic_roots: usize,
    pub n_taint_roots: usize,
    /// Fns reachable from each root set.
    pub n_panic_reachable: usize,
    pub n_taint_reachable: usize,
    pub unsafe_sites: Vec<UnsafeSite>,
    pub timing: Timing,
    /// Unwaived findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
}

impl Report {
    /// The process exit code this report implies: 0 clean, 1 findings.
    /// (Config/IO errors exit 2 before a report exists.)
    pub fn exit_code(&self) -> u8 {
        u8::from(!self.findings.is_empty())
    }

    /// Serialize as a JSON document (stable field order).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str("{\n");
        s.push_str(&format!("  \"root_kind\": {},\n", json_str(self.root_kind)));
        s.push_str(&format!("  \"files\": {},\n", self.n_files));
        s.push_str(&format!("  \"lines\": {},\n", self.n_lines));
        s.push_str("  \"call_graph\": {");
        s.push_str(&format!("\"fns\": {}, ", self.n_fns));
        s.push_str(&format!("\"edges\": {}, ", self.n_edges));
        s.push_str(&format!("\"unresolved_calls\": {}, ", self.n_unresolved_calls));
        s.push_str(&format!("\"panic_roots\": {}, ", self.n_panic_roots));
        s.push_str(&format!("\"taint_roots\": {}, ", self.n_taint_roots));
        s.push_str(&format!("\"panic_reachable_fns\": {}, ", self.n_panic_reachable));
        s.push_str(&format!("\"taint_reachable_fns\": {}", self.n_taint_reachable));
        s.push_str("},\n");
        let n_safety = self.unsafe_sites.iter().filter(|u| u.has_safety).count();
        s.push_str("  \"unsafe\": {\n");
        s.push_str(&format!("    \"total\": {},\n", self.unsafe_sites.len()));
        s.push_str(&format!("    \"with_safety_comment\": {n_safety},\n"));
        s.push_str(&format!(
            "    \"in_tests\": {},\n",
            self.unsafe_sites.iter().filter(|u| u.in_test).count()
        ));
        s.push_str("    \"sites\": [\n");
        for (i, u) in self.unsafe_sites.iter().enumerate() {
            s.push_str(&format!(
                "      {{\"file\": {}, \"line\": {}, \"in_test\": {}, \"has_safety\": {}}}{}\n",
                json_str(&u.file),
                u.line,
                u.in_test,
                u.has_safety,
                comma(i, self.unsafe_sites.len()),
            ));
        }
        s.push_str("    ]\n  },\n");
        s.push_str("  \"timing_ms\": {");
        s.push_str(&format!("\"parse\": {:.2}, ", self.timing.parse_ms));
        s.push_str(&format!("\"callgraph\": {:.2}, ", self.timing.callgraph_ms));
        s.push_str(&format!("\"analysis\": {:.2}, ", self.timing.analysis_ms));
        s.push_str(&format!("\"total\": {:.2}", self.timing.total_ms));
        s.push_str("},\n");
        s.push_str("  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}",
                json_str(&f.file),
                f.line,
                json_str(f.rule.id()),
                json_str(&f.message),
            ));
            if let Some(chain) = &f.chain {
                s.push_str(&format!(", \"chain\": {}", json_str(chain)));
            }
            s.push_str(&format!("}}{}\n", comma(i, self.findings.len())));
        }
        s.push_str("  ],\n");
        s.push_str(&format!("  \"exit_code\": {}\n", self.exit_code()));
        s.push_str("}\n");
        s
    }
}

fn comma(i: usize, len: usize) -> &'static str {
    if i + 1 < len {
        ","
    } else {
        ""
    }
}

/// Escape a string as a JSON value (with quotes).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{Finding, Rule};

    #[test]
    fn json_escapes_and_shape() {
        let rep = Report {
            root_kind: "workspace",
            n_files: 2,
            n_lines: 100,
            n_fns: 5,
            n_edges: 4,
            n_unresolved_calls: 3,
            n_panic_roots: 1,
            n_taint_roots: 2,
            n_panic_reachable: 3,
            n_taint_reachable: 4,
            unsafe_sites: vec![UnsafeSite {
                file: "crates/linalg/src/kernels.rs".into(),
                line: 7,
                in_test: false,
                has_safety: true,
            }],
            timing: Timing::default(),
            findings: vec![Finding {
                file: "a.rs".into(),
                line: 3,
                rule: Rule::PanicReach,
                message: "say \"no\" to panics\u{1}".into(),
                chain: Some("root → leaf".into()),
            }],
        };
        let j = rep.to_json();
        assert!(j.contains("\"exit_code\": 1"));
        assert!(j.contains("\\\"no\\\""), "{j}");
        assert!(j.contains("\\u0001"));
        assert!(j.contains("\"chain\": \"root → leaf\""));
        assert!(j.contains("\"panic_reachable_fns\": 3"));
        // Balanced braces — cheap structural sanity check.
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn empty_findings_exit_zero() {
        let rep = Report {
            root_kind: "fixtures",
            n_files: 0,
            n_lines: 0,
            n_fns: 0,
            n_edges: 0,
            n_unresolved_calls: 0,
            n_panic_roots: 0,
            n_taint_roots: 0,
            n_panic_reachable: 0,
            n_taint_reachable: 0,
            unsafe_sites: Vec::new(),
            timing: Timing::default(),
            findings: Vec::new(),
        };
        assert_eq!(rep.exit_code(), 0);
        assert!(rep.to_json().contains("\"exit_code\": 0"));
    }
}
