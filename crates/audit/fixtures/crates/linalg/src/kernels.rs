//! Fixture: lane-fold positives, per-lane negatives, and waivers.

pub fn unordered_reduction(a: &[f32], b: &[f32]) -> f32 {
    let mut total = 0.0f32;
    for (&x, &y) in a.iter().zip(b) {
        total += x * y; // POSITIVE: single-f32 accumulator in the kernel module
    }
    total
}

pub fn iterator_order(a: &[f32]) -> f32 {
    let s: f32 = a.iter().sum(); // POSITIVE: iterator-order reduction
    let p = a.iter().fold(0.0f32, |acc, x| acc + x); // POSITIVE: iterator fold
    s + p
}

pub fn per_lane(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = [0.0f32; 8];
    for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
        acc[i % 8] += x * y; // NEGATIVE: per-lane accumulation
    }
    fold_lanes(acc)
}

pub fn per_element(out: &mut [f32], src: &[f32]) {
    for (o, &x) in out.iter_mut().zip(src) {
        *o += x; // NEGATIVE: deref target, independent per element
    }
}

pub fn counters(a: &[f32]) -> usize {
    let mut n = 0usize;
    for _ in a {
        n += 1; // NEGATIVE: integer counter
    }
    n
}

pub fn waived_scan(a: &[f32]) -> f32 {
    let mut hi = f32::NEG_INFINITY;
    for &x in a {
        // audit: lanes — max is order-insensitive for non-NaN inputs
        hi += x.max(hi) - hi;
    }
    hi
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_silent() {
        let mut total = 0.0f32; // NEGATIVE: test code
        total += 1.5;
        let _ = total;
        let _: f32 = [1.0f32].iter().sum();
    }
}
