//! Fixture: unsafe-comment positives and justified blocks.

pub fn bare(ptr: *const u32) -> u32 {
    unsafe { *ptr } // POSITIVE: unsafe-comment
}

pub fn justified(xs: &[u32], i: usize) -> u32 {
    assert!(i < xs.len());
    // SAFETY: i was bounds-checked by the assert above.
    unsafe { *xs.get_unchecked(i) }
}
