//! Fixture: a bench-crate file that must produce ZERO findings — wall
//! clocks and hash maps are in-policy for benchmarks.

use std::collections::HashMap;
use std::time::{Instant, SystemTime};

pub fn profile() -> HashMap<String, u128> {
    let t0 = Instant::now();
    let mut out = HashMap::new();
    out.insert("wall".to_string(), t0.elapsed().as_nanos());
    let _stamp = SystemTime::now();
    out
}
