//! Fixture: the helper crate that launders nondeterminism. Sits outside
//! every path a scope list would name; only reachability from a
//! deterministic root can flag it.

use std::collections::HashMap; // POSITIVE: hash-order (module-level, root reaches this file)

pub fn bucket_stats(keys: &[u32]) -> f32 {
    let mut m: HashMap<u32, u32> = HashMap::new(); // POSITIVE: hash-order via taint_entry
    for &k in keys {
        *m.entry(k).or_default() += 1;
    }
    m.values().map(|&c| c as f32).sum()
}

pub fn pooled_sum(parts: &[f32]) -> f32 {
    let mut total = 0.0f32;
    pooled_map(parts, |_, _, p| {
        total += p; // POSITIVE: float-fold via taint_entry
        p
    });
    total
}
