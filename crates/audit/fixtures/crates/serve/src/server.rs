//! Fixture: serving hot path. Positives for the `unbounded-queue` rule
//! (three unbounded constructions) and the `panic-reach` analysis (one bare
//! unwrap); one waived bounded queue and one `sync_channel` negative.

use std::collections::VecDeque;
use std::sync::mpsc;

fn build_queues(cap: usize) {
    let backlog: VecDeque<u32> = VecDeque::new(); // finding: grows without bound
    let (tx, _rx) = mpsc::channel::<u32>(); // finding: unbounded channel
    let (ftx, _frx) = unbounded::<u32>(); // finding: crossbeam-style unbounded
    // audit: bounded — admission-capped by the submit() length check
    let waived: VecDeque<u32> = VecDeque::with_capacity(cap);
    let (btx, _brx) = mpsc::sync_channel::<u32>(cap); // bounded: clean
    drop((backlog, tx, ftx, waived, btx));
}

fn hot_path(jobs: &[u32]) -> u32 {
    jobs.iter().copied().max().unwrap() // finding: implicit panic on a worker
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let q: std::collections::VecDeque<u32> = std::collections::VecDeque::new();
        let (tx, _rx) = std::sync::mpsc::channel::<u32>();
        assert!(q.is_empty());
        drop(tx);
    }
}
