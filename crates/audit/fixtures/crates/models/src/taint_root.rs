//! Fixture: a deterministic root whose taint arrives through a helper
//! crate (`crates/util`) that no scope deny-list ever covered — the
//! laundering case that motivated the call-graph analysis.

pub fn taint_entry(keys: &[u32], parts: &[f32]) -> f32 {
    let stats = bucket_stats(keys); // tainted: hash-order iteration in crates/util
    stats + pooled_sum(parts) // tainted: unordered float fold in crates/util
}
