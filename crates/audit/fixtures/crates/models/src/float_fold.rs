//! Fixture: float-fold positives, exemptions, and routed folds.

pub fn unordered(parts: &[f32]) -> f32 {
    let mut total = 0.0f32;
    pooled_map(parts, |_, _, p| {
        total += p; // POSITIVE: float-fold (cross-thread +=)
        let s: f32 = parts.iter().sum(); // POSITIVE: float-fold (.sum in closure)
        s
    });
    total
}

pub fn exempt(parts: &[f32]) -> u64 {
    let mut ns = 0u64;
    let mut count = 0usize;
    pooled_map(parts, |_, _, _| {
        count += 1; // NEGATIVE: integer counter
        ns += elapsed().as_nanos() as u64; // NEGATIVE: integer cast
    });
    ns
}

pub fn routed(parts: Vec<Grad>) -> Grad {
    pooled_map(&parts, |_, _, p| {
        // NEGATIVE: routed through the ordered fold.
        fold_ordered(p, 1.0)
    })
}

pub fn waived(parts: &[f32]) -> f32 {
    pooled_map(parts, |_, _, p| {
        let mut local = 0.0f32;
        // audit: fold — accumulator is job-local; folded in job order later
        local += p;
        local
    })
}

pub fn outside(parts: &[f32]) -> f32 {
    // NEGATIVE: sequential main-thread accumulation.
    let mut total = 0.0f32;
    for p in parts {
        total += p;
    }
    total
}
