//! Fixture: wallclock positives and waived uses.

use std::time::SystemTime; // POSITIVE: wallclock

pub fn seeded_by_clock() -> u64 {
    let rng = rand::thread_rng(); // POSITIVE: wallclock
    let seed = Instant::now().elapsed().as_nanos() as u64; // POSITIVE: Instant + seed
    seed ^ rng.next_u64()
}

pub fn profiling_only() -> u128 {
    // NEGATIVE: Instant for timing, no seeding on the line.
    let t0 = std::time::Instant::now();
    t0.elapsed().as_nanos()
}

// audit: wallclock — wall time goes to the report header, never a seed
pub fn waived_timestamp() -> SystemTime {
    SystemTime::now()
}
