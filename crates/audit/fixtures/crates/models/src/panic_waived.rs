//! Fixture: panic-reachable sites silenced at the site and fn waiver
//! granularities — must produce ZERO findings.

pub fn waived_root(xs: &[u32]) -> u32 {
    site_waived(xs) + fn_waived(xs)
}

fn site_waived(xs: &[u32]) -> u32 {
    // audit: unwrap — caller checks non-empty before dispatch
    xs[0]
}

// audit: fn unwrap — every index below is modulo-reduced into bounds
fn fn_waived(xs: &[u32]) -> u32 {
    let i = 3 % xs.len().max(1);
    xs[i] + xs.last().copied().unwrap_or(0)
}
