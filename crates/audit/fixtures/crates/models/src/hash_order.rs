//! Fixture: hash-order positives and waived uses. Never compiled —
//! scanned by `tests/fixtures.rs` through the real rule engine.

use std::collections::HashMap; // POSITIVE: hash-order

pub fn iterate(map: &HashMap<u32, f32>) -> f32 {
    // POSITIVE: hash-order (type mention on the fn line above)
    map.values().sum()
}

// audit: ordered — membership checks only, never iterated
pub fn waived(set: &std::collections::HashSet<u32>, x: u32) -> bool {
    set.contains(&x)
}

#[cfg(test)]
mod tests {
    // NEGATIVE: test code is out of scope.
    use std::collections::HashMap;

    #[test]
    fn t() {
        let _ = HashMap::<u32, u32>::new();
    }
}
