//! Fixture: a rooted call chain that stays panic-free — must produce
//! ZERO findings without any waivers.

pub fn clean_root(xs: &[u32], i: usize) -> u32 {
    clean_helper(xs, i).unwrap_or_default()
}

fn clean_helper(xs: &[u32], i: usize) -> Option<u32> {
    // NEGATIVE: get-based access and saturating arithmetic never panic.
    xs.get(i).copied().map(|v| v.saturating_add(1))
}
