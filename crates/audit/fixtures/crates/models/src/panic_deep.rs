//! Fixture: panic-reachability through two helper hops — the
//! cross-function case a line scanner with file deny-lists provably
//! misses, because neither helper lives on any deny-listed path.

pub fn deep_root(xs: &[u32]) -> u32 {
    deep_helper_a(xs)
}

fn deep_helper_a(xs: &[u32]) -> u32 {
    deep_helper_b(xs) + 1
}

fn deep_helper_b(xs: &[u32]) -> u32 {
    xs.first().unwrap() + 1 // POSITIVE: panic-reach, two hops below deep_root
}

pub fn unrooted_unwrap(xs: &[u32]) -> u32 {
    // NEGATIVE: no configured root reaches this fn.
    xs.first().unwrap() + 2
}
