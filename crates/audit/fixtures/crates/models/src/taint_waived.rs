//! Fixture: hash-order taint silenced by a module-level waiver — must
//! produce ZERO findings.
//!
//! audit: module ordered — buckets are drained through a sorted key pass
//! before anything order-sensitive consumes them.

use std::collections::HashMap;

pub fn taint_waived_root(keys: &[u32]) -> f32 {
    let mut m: HashMap<u32, u32> = HashMap::new();
    for &k in keys {
        *m.entry(k).or_default() += 1;
    }
    let mut sorted: Vec<(u32, u32)> = m.into_iter().collect();
    sorted.sort_unstable();
    let mut total = 0.0f32;
    for &(_, c) in &sorted {
        total += c as f32;
    }
    total
}
