//! Fixture: a deterministic root on ordered containers — must produce
//! ZERO findings without any waivers — plus an unreachable hash use
//! proving the analysis is reachability-gated, not a text match.

use std::collections::BTreeMap;

pub fn taint_clean_root(keys: &[u32]) -> f32 {
    let mut m: BTreeMap<u32, u32> = BTreeMap::new();
    for &k in keys {
        *m.entry(k).or_default() += 1;
    }
    let mut total = 0.0f32;
    for (_, &c) in &m {
        total += c as f32;
    }
    total
}

pub fn unrooted_hash(keys: &[u32]) -> usize {
    // NEGATIVE: HashSet inside a fn no taint root reaches.
    let mut s = std::collections::HashSet::new();
    for &k in keys {
        s.insert(k);
    }
    s.len()
}
