//! Fixture: hot-panic positives and waived sites. The path mirrors the
//! real deny-listed trainer module so the rule applies.

pub fn hot(xs: &[u32], i: usize) -> u32 {
    let a = xs.first().unwrap(); // POSITIVE: hot-panic (.unwrap)
    let b = xs.get(1).expect("second element"); // POSITIVE: hot-panic (.expect)
    let c = xs[i]; // POSITIVE: hot-panic (indexing)
    a + b + c
}

pub fn waived(xs: &[u32]) -> u32 {
    // audit: unwrap — caller guarantees xs is non-empty
    xs[0]
}

pub fn fallible(xs: &[u32], i: usize) -> Option<u32> {
    // NEGATIVE: get-based access never panics.
    xs.get(i).copied()
}
