//! Fixture: panic-reachability from the `run_loop` root. The panic sites
//! live in helpers — only the call graph connects them to the root.

pub fn run_loop(xs: &[u32]) -> u32 {
    // The rooted entry point: everything it calls is on the audited path.
    hot(xs, 0) + waived(xs) + fallible(xs, 1).unwrap_or(0)
}

pub fn hot(xs: &[u32], i: usize) -> u32 {
    let a = xs.first().unwrap(); // POSITIVE: panic-reach (.unwrap)
    let b = xs.get(1).expect("second element"); // POSITIVE: panic-reach (.expect)
    let c = xs[i]; // POSITIVE: panic-reach (indexing)
    a + b + c
}

pub fn waived(xs: &[u32]) -> u32 {
    // audit: unwrap — caller guarantees xs is non-empty
    xs[0]
}

pub fn fallible(xs: &[u32], i: usize) -> Option<u32> {
    // NEGATIVE: get-based access never panics.
    xs.get(i).copied()
}
