//! The deadline-aware degradation ladder.
//!
//! Each request gets a fixed latency budget from its *arrival* (not
//! dequeue) time. The engine picks the best rung the remaining budget
//! affords:
//!
//! 1. **Exact** — full dot-product scoring + partial-sort top-K, the same
//!    kernel offline evaluation uses ([`facility_eval::rank_top_k`]).
//!    Attempted when the running cost estimate fits the remaining budget.
//! 2. **Cached** — the user's last exact top-K, tagged with the snapshot
//!    version that produced it. A swap invalidates every entry for free:
//!    a version-mismatched entry is discarded on sight, the same
//!    discipline the offline eval caches use when parameters change.
//! 3. **Popularity** — the snapshot's train-popularity prior with the
//!    user's own train items masked; model-free, never fails, and cheap
//!    enough for a request whose budget is already gone.
//!
//! Injected scoring panics are caught here and converted to a degraded
//! (rung 2/3) response — a worker thread never dies, a request is never
//! lost. Every response carries the rung that produced it and the
//! snapshot version it was served from.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use facility_kg::Id;

use crate::clock::Clock;
use crate::fault::FaultPlan;
use crate::snapshot::{SnapshotStore, VersionedSnapshot};
use crate::sync;

/// Which ladder rung produced a response.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rung {
    /// Full scoring + partial-sort top-K on the current snapshot.
    Exact,
    /// Reused per-user score cache entry from the same snapshot version.
    Cached,
    /// Train-popularity prior (model-free last resort).
    Popularity,
}

impl Rung {
    /// Stable lowercase label for reports and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            Rung::Exact => "exact",
            Rung::Cached => "cached",
            Rung::Popularity => "popularity",
        }
    }
}

/// Per-request latency budget and result size.
#[derive(Debug, Clone, Copy)]
pub struct DeadlinePolicy {
    /// Budget from request arrival to response, in nanoseconds.
    pub deadline_ns: u64,
    /// Items per response.
    pub k: usize,
}

impl Default for DeadlinePolicy {
    fn default() -> Self {
        Self { deadline_ns: 500_000, k: 20 }
    }
}

/// An admitted request.
#[derive(Debug, Clone, Copy)]
pub struct Request {
    /// Server-assigned id (admission order).
    pub id: u64,
    /// The user asking for recommendations.
    pub user: Id,
    /// Clock time at admission; the deadline counts from here, so queue
    /// wait eats budget.
    pub arrival_ns: u64,
}

/// A completed response — every admitted request produces exactly one.
#[derive(Debug, Clone)]
pub struct Served {
    /// Request id this answers.
    pub id: u64,
    /// The requesting user.
    pub user: Id,
    /// The ladder rung that produced the items.
    pub rung: Rung,
    /// Snapshot version the response was served from (a single version
    /// end-to-end, even across concurrent swaps).
    pub snapshot_version: u64,
    /// Recommended `(item, score)` pairs, best first.
    pub items: Vec<(Id, f32)>,
    /// Admission time.
    pub arrival_ns: u64,
    /// Scoring start time (arrival + queue wait).
    pub started_ns: u64,
    /// Completion time.
    pub finished_ns: u64,
    /// True when the response finished past its deadline (served anyway,
    /// on the cheapest available rung).
    pub deadline_missed: bool,
    /// True when an injected/unexpected scoring panic was absorbed and
    /// this response came from a fallback rung.
    pub recovered_panic: bool,
}

struct CacheEntry {
    version: u64,
    items: Vec<(Id, f32)>,
}

/// Per-user top-K cache keyed by snapshot version.
///
/// Entries are only ever trusted when their version matches the current
/// snapshot — a hot swap therefore invalidates the whole cache without
/// touching it (stale entries are dropped lazily on next access), the
/// same invalidation discipline the models use for their eval caches.
pub struct ScoreCache {
    slots: Vec<Mutex<Option<CacheEntry>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    stale: AtomicU64,
}

impl ScoreCache {
    /// An empty cache with one slot per user.
    pub fn new(n_users: usize) -> Self {
        Self {
            slots: (0..n_users).map(|_| Mutex::new(None)).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stale: AtomicU64::new(0),
        }
    }

    /// The user's cached top-K *if* it was produced by snapshot
    /// `version`; a version mismatch evicts the entry and misses.
    pub fn get(&self, user: Id, version: u64) -> Option<Vec<(Id, f32)>> {
        let slot = self.slots.get(user as usize)?;
        let mut guard = sync::lock(slot);
        match guard.as_ref() {
            Some(entry) if entry.version == version => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.items.clone())
            }
            Some(_) => {
                *guard = None;
                self.stale.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Store the user's exact top-K under the producing version.
    pub fn insert(&self, user: Id, version: u64, items: &[(Id, f32)]) {
        if let Some(slot) = self.slots.get(user as usize) {
            *sync::lock(slot) = Some(CacheEntry { version, items: items.to_vec() });
        }
    }
}

/// Counter snapshot for reporting.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineCounters {
    /// Responses served by the exact rung.
    pub exact: u64,
    /// Responses served from the score cache.
    pub cached: u64,
    /// Responses served from the popularity prior.
    pub popularity: u64,
    /// Responses that finished past their deadline.
    pub deadline_misses: u64,
    /// Scoring panics absorbed into degraded responses.
    pub panics_recovered: u64,
    /// Score-cache hits.
    pub cache_hits: u64,
    /// Score-cache misses.
    pub cache_misses: u64,
    /// Cache entries evicted because a swap outdated their version.
    pub cache_stale: u64,
    /// Micro-batches answered with one blocked scan (batches of ≥ 2).
    pub micro_batches: u64,
    /// Requests served through those micro-batches.
    pub batched_requests: u64,
}

/// The scoring engine: one per server, shared by all workers.
pub struct Engine {
    store: Arc<SnapshotStore>,
    train: Arc<Vec<Vec<Id>>>,
    cache: ScoreCache,
    policy: DeadlinePolicy,
    faults: FaultPlan,
    clock: Arc<dyn Clock>,
    /// EWMA of observed exact-scoring cost; 0 = no observation yet (try
    /// exact). Degraded requests decay it so the exact rung is re-probed
    /// once a latency burst passes.
    cost_est_ns: AtomicU64,
    exact: AtomicU64,
    cached: AtomicU64,
    popularity: AtomicU64,
    deadline_misses: AtomicU64,
    panics_recovered: AtomicU64,
    micro_batches: AtomicU64,
    batched_requests: AtomicU64,
}

impl Engine {
    /// Build an engine serving from `store`.
    ///
    /// `train` holds each user's *sorted* train items (masked out of
    /// every rung, exactly like offline evaluation).
    pub fn new(
        store: Arc<SnapshotStore>,
        train: Arc<Vec<Vec<Id>>>,
        policy: DeadlinePolicy,
        faults: FaultPlan,
        clock: Arc<dyn Clock>,
    ) -> Self {
        let n_users = store.current().snap.n_users();
        Self {
            store,
            train,
            cache: ScoreCache::new(n_users),
            policy,
            faults,
            clock,
            cost_est_ns: AtomicU64::new(0),
            exact: AtomicU64::new(0),
            cached: AtomicU64::new(0),
            popularity: AtomicU64::new(0),
            deadline_misses: AtomicU64::new(0),
            panics_recovered: AtomicU64::new(0),
            micro_batches: AtomicU64::new(0),
            batched_requests: AtomicU64::new(0),
        }
    }

    /// The snapshot store this engine serves from.
    pub fn store(&self) -> &Arc<SnapshotStore> {
        &self.store
    }

    /// The engine's deadline/K policy.
    pub fn policy(&self) -> DeadlinePolicy {
        self.policy
    }

    /// Current clock reading (the server stamps arrivals with this).
    pub fn now_ns(&self) -> u64 {
        self.clock.now_ns()
    }

    /// Let time pass on the engine clock (open-loop pacing shares the
    /// engine's time source so virtual-clock runs stay deterministic).
    pub fn wait_ns(&self, ns: u64) {
        self.clock.wait_ns(ns);
    }

    /// Users the current snapshot can score.
    pub fn n_users(&self) -> usize {
        self.store.current().snap.n_users()
    }

    /// Seed the cost estimate (tests use this to force degradation
    /// deterministically; a server could prewarm from a prior run).
    pub fn prime_cost_estimate(&self, ns: u64) {
        self.cost_est_ns.store(ns, Ordering::Relaxed);
    }

    /// Current exact-cost estimate in nanoseconds.
    pub fn cost_estimate_ns(&self) -> u64 {
        self.cost_est_ns.load(Ordering::Relaxed)
    }

    /// Serve one admitted request; infallible by construction — scoring
    /// panics degrade, they never escape.
    pub fn handle(&self, req: &Request) -> Served {
        let snap = self.store.current();
        let started = self.clock.now_ns();
        let deadline = req.arrival_ns.saturating_add(self.policy.deadline_ns);
        let remaining = deadline.saturating_sub(started);
        let est = self.cost_est_ns.load(Ordering::Relaxed);
        let mut recovered_panic = false;
        let (rung, items) = if remaining > 0 && est <= remaining {
            match catch_unwind(AssertUnwindSafe(|| self.exact_top_k(&snap, req))) {
                Ok(items) => {
                    let cost = self.clock.now_ns().saturating_sub(started);
                    self.update_cost(est, cost);
                    self.cache.insert(req.user, snap.version, &items);
                    self.exact.fetch_add(1, Ordering::Relaxed);
                    (Rung::Exact, items)
                }
                Err(_) => {
                    recovered_panic = true;
                    self.panics_recovered.fetch_add(1, Ordering::Relaxed);
                    self.fallback(&snap, req.user)
                }
            }
        } else {
            // Budget already blown (or exact predicted too slow): degrade,
            // and decay the estimate so exact is re-probed after a burst.
            self.cost_est_ns.store(est.saturating_sub(est / 4), Ordering::Relaxed);
            self.fallback(&snap, req.user)
        };
        let finished = self.clock.now_ns();
        let deadline_missed = finished > deadline;
        if deadline_missed {
            self.deadline_misses.fetch_add(1, Ordering::Relaxed);
        }
        Served {
            id: req.id,
            user: req.user,
            rung,
            snapshot_version: snap.version,
            items,
            arrival_ns: req.arrival_ns,
            started_ns: started,
            finished_ns: finished,
            deadline_missed,
            recovered_panic,
        }
    }

    /// Serve a micro-batch of admitted requests with one blocked scan.
    ///
    /// Semantics match per-request [`Engine::handle`] exactly where it
    /// matters:
    ///
    /// * **Rung decisions** run per request, in admission order, against
    ///   the same remaining-budget / cost-estimate test; a request whose
    ///   budget is gone degrades and decays the estimate just like the
    ///   sequential path.
    /// * **Fault injection** stays per request: latency spikes wait on
    ///   the shared clock and injected panics degrade exactly the
    ///   requests `FaultPlan` picks — the plan is a pure function of
    ///   `(seed, request_id)`, so batching cannot change who faults.
    /// * **Items are bitwise identical** to the sequential path: the
    ///   blocked scan scores every query with the same lane-folded dot
    ///   and the selector's order matches `rank_top_k` (see
    ///   [`crate::snapshot::ModelSnapshot::rank_top_k_batch`]). Cache
    ///   inserts and fallbacks are applied in request order after the
    ///   scan, so intra-batch cache interactions replay the sequential
    ///   ones. Under a virtual clock with no latency spikes the entire
    ///   `Served` value — timings included — is bitwise equal.
    /// * **Cost accounting** feeds the EWMA the *amortized* per-request
    ///   cost (batch wall time / exact requests), once per exact request
    ///   — batching lowering the estimate is precisely what readmits the
    ///   exact rung under load.
    ///
    /// The whole batch is served from one snapshot version. A real panic
    /// inside the blocked scan degrades every exact-plan request, never
    /// the worker. Batches of ≤ 1 route through [`Engine::handle`]
    /// unchanged.
    pub fn handle_batch(&self, reqs: &[Request]) -> Vec<Served> {
        if reqs.len() <= 1 {
            return reqs.iter().map(|r| self.handle(r)).collect();
        }
        self.micro_batches.fetch_add(1, Ordering::Relaxed);
        self.batched_requests.fetch_add(reqs.len() as u64, Ordering::Relaxed);
        let snap = self.store.current();

        enum Plan {
            Exact,
            Panicked,
            Degrade,
        }

        let batch_started = self.clock.now_ns();
        let mut plans = Vec::with_capacity(reqs.len());
        let mut exact_users: Vec<Id> = Vec::with_capacity(reqs.len());
        for req in reqs {
            let started = self.clock.now_ns();
            let deadline = req.arrival_ns.saturating_add(self.policy.deadline_ns);
            let remaining = deadline.saturating_sub(started);
            let est = self.cost_est_ns.load(Ordering::Relaxed);
            let plan = if remaining > 0 && est <= remaining {
                let spike = self.faults.latency_spike_ns(req.id);
                if spike > 0 {
                    self.clock.wait_ns(spike);
                }
                if self.faults.should_panic(req.id) {
                    Plan::Panicked
                } else {
                    exact_users.push(req.user);
                    Plan::Exact
                }
            } else {
                self.cost_est_ns.store(est.saturating_sub(est / 4), Ordering::Relaxed);
                Plan::Degrade
            };
            plans.push((plan, started));
        }

        let ranked: Option<Vec<Vec<(Id, f32)>>> = if exact_users.is_empty() {
            Some(Vec::new())
        } else {
            let excludes: Vec<&[Id]> = exact_users.iter().map(|&u| self.train_items(u)).collect();
            catch_unwind(AssertUnwindSafe(|| {
                snap.snap.rank_top_k_batch(&exact_users, &excludes, self.policy.k)
            }))
            .ok()
        };
        let scan_cost = self.clock.now_ns().saturating_sub(batch_started);
        let cost_share = scan_cost / exact_users.len().max(1) as u64;

        let mut out = Vec::with_capacity(reqs.len());
        let mut next_exact = 0usize;
        for (req, (plan, started)) in reqs.iter().zip(&plans) {
            let mut recovered_panic = false;
            let (rung, items) = match plan {
                Plan::Exact => {
                    let row = ranked.as_ref().and_then(|r| r.get(next_exact));
                    next_exact += 1;
                    match row {
                        Some(items) => {
                            let cur = self.cost_est_ns.load(Ordering::Relaxed);
                            self.update_cost(cur, cost_share);
                            self.cache.insert(req.user, snap.version, items);
                            self.exact.fetch_add(1, Ordering::Relaxed);
                            (Rung::Exact, items.clone())
                        }
                        // The blocked scan itself panicked: every
                        // exact-plan request degrades, like `handle`'s
                        // Err arm.
                        None => {
                            recovered_panic = true;
                            self.panics_recovered.fetch_add(1, Ordering::Relaxed);
                            self.fallback(&snap, req.user)
                        }
                    }
                }
                Plan::Panicked => {
                    recovered_panic = true;
                    self.panics_recovered.fetch_add(1, Ordering::Relaxed);
                    self.fallback(&snap, req.user)
                }
                Plan::Degrade => self.fallback(&snap, req.user),
            };
            let finished = self.clock.now_ns();
            let deadline = req.arrival_ns.saturating_add(self.policy.deadline_ns);
            let deadline_missed = finished > deadline;
            if deadline_missed {
                self.deadline_misses.fetch_add(1, Ordering::Relaxed);
            }
            out.push(Served {
                id: req.id,
                user: req.user,
                rung,
                snapshot_version: snap.version,
                items,
                arrival_ns: req.arrival_ns,
                started_ns: *started,
                finished_ns: finished,
                deadline_missed,
                recovered_panic,
            });
        }
        out
    }

    /// Last-ditch response builder for a worker whose `handle` call
    /// somehow panicked outside the guarded scoring path: serve the
    /// cheapest rung, flag the recovery. Never panics itself (the
    /// fallback path is lock-poisoning-free and bounds-checked).
    pub fn degraded_response(&self, req: &Request) -> Served {
        let snap = self.store.current();
        let started = self.clock.now_ns();
        self.panics_recovered.fetch_add(1, Ordering::Relaxed);
        let (rung, items) = self.fallback(&snap, req.user);
        let finished = self.clock.now_ns();
        let deadline = req.arrival_ns.saturating_add(self.policy.deadline_ns);
        Served {
            id: req.id,
            user: req.user,
            rung,
            snapshot_version: snap.version,
            items,
            arrival_ns: req.arrival_ns,
            started_ns: started,
            finished_ns: finished,
            deadline_missed: finished > deadline,
            recovered_panic: true,
        }
    }

    /// Counter snapshot.
    pub fn counters(&self) -> EngineCounters {
        EngineCounters {
            exact: self.exact.load(Ordering::Relaxed),
            cached: self.cached.load(Ordering::Relaxed),
            popularity: self.popularity.load(Ordering::Relaxed),
            deadline_misses: self.deadline_misses.load(Ordering::Relaxed),
            panics_recovered: self.panics_recovered.load(Ordering::Relaxed),
            cache_hits: self.cache.hits.load(Ordering::Relaxed),
            cache_misses: self.cache.misses.load(Ordering::Relaxed),
            cache_stale: self.cache.stale.load(Ordering::Relaxed),
            micro_batches: self.micro_batches.load(Ordering::Relaxed),
            batched_requests: self.batched_requests.load(Ordering::Relaxed),
        }
    }

    fn train_items(&self, user: Id) -> &[Id] {
        self.train.get(user as usize).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The exact rung, with fault injection on the scoring path. Runs
    /// under `catch_unwind` in [`Engine::handle`].
    fn exact_top_k(&self, snap: &VersionedSnapshot, req: &Request) -> Vec<(Id, f32)> {
        let spike = self.faults.latency_spike_ns(req.id);
        if spike > 0 {
            self.clock.wait_ns(spike);
        }
        if self.faults.should_panic(req.id) {
            // Deliberate: the injected worker fault the ladder must absorb.
            // audit: unwrap — injected fault; absorbed by catch_unwind in Engine::handle.
            panic!("injected scoring fault on request {}", req.id);
        }
        snap.snap.rank_top_k(req.user, self.train_items(req.user), self.policy.k)
    }

    fn fallback(&self, snap: &Arc<VersionedSnapshot>, user: Id) -> (Rung, Vec<(Id, f32)>) {
        if let Some(items) = self.cache.get(user, snap.version) {
            self.cached.fetch_add(1, Ordering::Relaxed);
            (Rung::Cached, items)
        } else {
            self.popularity.fetch_add(1, Ordering::Relaxed);
            (Rung::Popularity, snap.snap.popularity_top_k(self.train_items(user), self.policy.k))
        }
    }

    fn update_cost(&self, old: u64, cost: u64) {
        let new = if old == 0 { cost } else { (old.saturating_mul(3).saturating_add(cost)) / 4 };
        self.cost_est_ns.store(new, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;
    use crate::fault::FaultConfig;
    use crate::snapshot::ModelSnapshot;
    use facility_linalg::Matrix;

    fn toy_store() -> Arc<SnapshotStore> {
        let users = Matrix::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        let items = Matrix::from_vec(4, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0, 0.5, 0.5]);
        let popularity = vec![(2u32, 5.0), (0, 3.0), (1, 1.0), (3, 0.0)];
        Arc::new(SnapshotStore::new(ModelSnapshot {
            model_name: "toy".into(),
            epoch: 1,
            users,
            items,
            popularity,
        }))
    }

    fn toy_engine(faults: FaultPlan) -> Engine {
        let train: Arc<Vec<Vec<u32>>> = Arc::new(vec![vec![0], vec![], vec![1, 3]]);
        Engine::new(
            toy_store(),
            train,
            DeadlinePolicy { deadline_ns: 1_000, k: 2 },
            faults,
            Arc::new(VirtualClock::new()),
        )
    }

    fn req(id: u64, user: u32, arrival_ns: u64) -> Request {
        Request { id, user, arrival_ns }
    }

    #[test]
    fn healthy_request_serves_exact_and_masks_train_items() {
        let eng = toy_engine(FaultPlan::healthy());
        let r = eng.handle(&req(0, 2, 0));
        assert_eq!(r.rung, Rung::Exact);
        assert_eq!(r.snapshot_version, 1);
        // User 2 scores [1,1,2,1]; items 1 and 3 are train-masked.
        assert_eq!(r.items, vec![(2, 2.0), (0, 1.0)]);
        assert!(!r.deadline_missed && !r.recovered_panic);
    }

    #[test]
    fn blown_budget_degrades_to_popularity_then_cache() {
        let eng = toy_engine(FaultPlan::healthy());
        // No cache yet and the estimate exceeds the whole budget.
        eng.prime_cost_estimate(10_000);
        let r = eng.handle(&req(0, 2, 0));
        assert_eq!(r.rung, Rung::Popularity);
        assert_eq!(r.items, vec![(2, 5.0), (0, 3.0)], "train items 1,3 masked from prior");

        // Decay eventually readmits exact (10000 * 0.75^n < 1000 budget),
        // which primes the cache…
        let mut rungs = Vec::new();
        for i in 1..20 {
            rungs.push(eng.handle(&req(i, 2, 0)).rung);
        }
        assert!(rungs.contains(&Rung::Exact), "estimate decay must re-probe exact: {rungs:?}");

        // …so the next degraded request hits the cache instead.
        eng.prime_cost_estimate(10_000);
        let r = eng.handle(&req(99, 2, 0));
        assert_eq!(r.rung, Rung::Cached);
        assert_eq!(r.items, vec![(2, 2.0), (0, 1.0)], "cache replays the exact result");
    }

    #[test]
    fn swap_invalidates_cache_by_version() {
        let eng = toy_engine(FaultPlan::healthy());
        assert_eq!(eng.handle(&req(0, 1, 0)).rung, Rung::Exact); // primes cache v1
        eng.prime_cost_estimate(u64::MAX);
        assert_eq!(eng.handle(&req(1, 1, 0)).rung, Rung::Cached);

        // Install v2: the v1 entry must not serve.
        let next = eng.store().current().snap.clone();
        eng.store().swap(next);
        eng.prime_cost_estimate(u64::MAX);
        let r = eng.handle(&req(2, 1, 0));
        assert_eq!(r.rung, Rung::Popularity, "stale cache entry must be evicted");
        assert_eq!(r.snapshot_version, 2);
        assert_eq!(eng.counters().cache_stale, 1);
    }

    #[test]
    fn injected_panic_is_absorbed_into_degraded_response() {
        let eng = toy_engine(FaultPlan::new(FaultConfig {
            seed: 1,
            latency_spike_prob: 0.0,
            latency_spike_ns: 0,
            panic_prob: 1.0,
        }));
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // keep test output clean
        let r = eng.handle(&req(0, 0, 0));
        std::panic::set_hook(prev_hook);
        assert!(r.recovered_panic);
        assert_eq!(r.rung, Rung::Popularity);
        assert_eq!(eng.counters().panics_recovered, 1);
        assert_eq!(eng.counters().exact, 0);
    }

    #[test]
    fn latency_spike_advances_clock_and_marks_deadline_miss() {
        let eng = toy_engine(FaultPlan::new(FaultConfig {
            seed: 2,
            latency_spike_prob: 1.0,
            latency_spike_ns: 5_000, // 5× the 1µs budget
            panic_prob: 0.0,
        }));
        let r = eng.handle(&req(0, 0, 0));
        assert_eq!(r.rung, Rung::Exact, "first request has no cost estimate yet");
        assert!(r.deadline_missed, "spike blows the budget");
        assert!(eng.cost_estimate_ns() >= 5_000, "spike feeds the estimate");
        // A fresh arrival now predicts exact won't fit and degrades
        // *within* budget.
        let r2 = eng.handle(&req(1, 0, eng.now_ns()));
        assert_eq!(r2.rung, Rung::Cached, "request 0's exact result was cached");
        assert!(!r2.deadline_missed);
    }

    #[test]
    fn degraded_response_never_panics_and_flags_recovery() {
        let eng = toy_engine(FaultPlan::healthy());
        let r = eng.degraded_response(&req(7, 1, 0));
        assert!(r.recovered_panic);
        assert_eq!(r.id, 7);
        assert_eq!(r.rung, Rung::Popularity);
    }
}
