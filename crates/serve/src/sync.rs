//! Poison-recovering wrappers over `std::sync` locks.
//!
//! Scoring panics are caught before any serve lock is reacquired, but the
//! serving path must be structurally panic-free anyway: if a lock ever
//! *is* poisoned by a stray panic, these helpers recover the inner data
//! instead of propagating the poison — a poisoned mutex must degrade a
//! response, never kill a worker.

use std::sync::{
    Condvar, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard,
};
use std::time::Duration;

/// Lock `m`, recovering the data if a previous holder panicked.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Read-lock `l`, recovering from poison.
pub(crate) fn read<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(PoisonError::into_inner)
}

/// Write-lock `l`, recovering from poison.
pub(crate) fn write<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(PoisonError::into_inner)
}

/// Block on `cv` until notified, recovering the guard from poison.
pub(crate) fn wait<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

/// Block on `cv` for at most `dur` (wall time), recovering the guard
/// from poison. Returns the guard and whether the wait timed out — the
/// micro-batching slack window uses this to top up a short batch without
/// ever stalling past its budget.
pub(crate) fn wait_timeout<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    dur: Duration,
) -> (MutexGuard<'a, T>, bool) {
    match cv.wait_timeout(guard, dur) {
        Ok((g, t)) => (g, t.timed_out()),
        Err(e) => {
            let (g, t) = e.into_inner();
            (g, t.timed_out())
        }
    }
}
