//! Trace-replay load drivers and scenario statistics.
//!
//! The request stream is the heavy-tailed `facility-datagen` trace: the
//! same log-normal user activity and Zipf item popularity the models
//! train on also drives serving load, so hot users hammer the score
//! cache exactly as they would in production. Two drive modes:
//!
//! * **closed loop** — at most `concurrency` requests in flight; each
//!   response immediately funds the next submission (throughput-bound).
//! * **open loop** — submissions arrive on a fixed interarrival schedule
//!   regardless of completions (latency-bound; overload sheds).
//!
//! [`ScenarioStats`] folds a drive's responses into the numbers
//! `BENCH_serve.json` reports: latency percentiles, QPS, shed fraction,
//! and per-rung fractions.

use std::time::{Duration, Instant};

use facility_datagen::Trace;
use facility_kg::Id;

use crate::server::{Response, Server, ServerStats};

/// How long a driver waits for *any* progress before declaring the run
/// wedged and bailing out (so a lost response can never hang CI — it
/// surfaces as a silent drop in the stats instead).
const STALL_LIMIT: Duration = Duration::from_secs(30);

/// The first `n` users of the trace's event stream (cycling if the trace
/// is shorter), preserving its heavy-tailed arrival pattern.
pub fn replay_users(trace: &Trace, n: usize) -> Vec<Id> {
    if trace.events.is_empty() {
        return Vec::new();
    }
    (0..n).map(|i| trace.events[i % trace.events.len()].user).collect()
}

/// Everything a drive produced: one [`Response`] per submission (served
/// or rejected) and the wall time the drive took.
#[derive(Debug)]
pub struct DriveReport {
    /// One entry per submission, in completion/rejection order.
    pub responses: Vec<Response>,
    /// Wall-clock duration of the whole drive.
    pub wall_ns: u64,
}

/// Closed-loop drive: keep up to `concurrency` requests in flight until
/// every user in `users` has been submitted and accounted for.
pub fn drive_closed_loop(server: &Server, users: &[Id], concurrency: usize) -> DriveReport {
    drive_closed_loop_with(server, users, concurrency, |_| {})
}

/// [`drive_closed_loop`] with a hook called before each submission index —
/// scenarios use it to trigger mid-load snapshot swaps or corruptions at a
/// deterministic point in the stream.
pub fn drive_closed_loop_with(
    server: &Server,
    users: &[Id],
    concurrency: usize,
    mut before_submit: impl FnMut(usize),
) -> DriveReport {
    let started = Instant::now();
    let window = concurrency.max(1);
    let mut responses = Vec::with_capacity(users.len());
    let mut in_flight = 0usize;
    let mut next = 0usize;
    let mut last_progress = Instant::now();
    while next < users.len() || in_flight > 0 {
        while in_flight < window && next < users.len() {
            before_submit(next);
            match server.submit(users[next]) {
                Ok(_) => in_flight += 1,
                Err(rej) => responses.push(Response::Rejected(rej)),
            }
            next += 1;
            last_progress = Instant::now();
        }
        if in_flight > 0 {
            match server.recv_timeout(Duration::from_millis(20)) {
                Some(resp) => {
                    in_flight -= 1;
                    responses.push(resp);
                    last_progress = Instant::now();
                }
                None if last_progress.elapsed() > STALL_LIMIT => break,
                None => {}
            }
        }
    }
    DriveReport { responses, wall_ns: started.elapsed().as_nanos() as u64 }
}

/// Open-loop drive: submit on a fixed `interarrival_ns` schedule (paced
/// on the *engine* clock), draining responses opportunistically, then
/// collect the stragglers.
pub fn drive_open_loop(server: &Server, users: &[Id], interarrival_ns: u64) -> DriveReport {
    let started = Instant::now();
    let mut responses = Vec::with_capacity(users.len());
    let mut in_flight = 0usize;
    for (i, &user) in users.iter().enumerate() {
        if i > 0 {
            server.engine().wait_ns(interarrival_ns);
        }
        match server.submit(user) {
            Ok(_) => in_flight += 1,
            Err(rej) => responses.push(Response::Rejected(rej)),
        }
        while let Some(resp) = server.try_recv() {
            in_flight -= 1;
            responses.push(resp);
        }
    }
    let mut last_progress = Instant::now();
    while in_flight > 0 {
        match server.recv_timeout(Duration::from_millis(20)) {
            Some(resp) => {
                in_flight -= 1;
                responses.push(resp);
                last_progress = Instant::now();
            }
            None if last_progress.elapsed() > STALL_LIMIT => break,
            None => {}
        }
    }
    DriveReport { responses, wall_ns: started.elapsed().as_nanos() as u64 }
}

/// One scenario's aggregate numbers for `BENCH_serve.json`.
#[derive(Debug, Clone)]
pub struct ScenarioStats {
    /// Scenario name (`healthy`, `latency`, …).
    pub name: String,
    /// Total submissions.
    pub submitted: u64,
    /// Submissions admitted.
    pub admitted: u64,
    /// Responses served (any rung).
    pub served: u64,
    /// Submissions shed with structured rejections.
    pub rejected: u64,
    /// Admitted requests that never got a response (must be 0).
    pub silent_drops: i64,
    /// Served-response counts per rung: (exact, cached, popularity).
    pub rung_counts: (u64, u64, u64),
    /// Fraction of submissions shed.
    pub shed_frac: f64,
    /// Fraction of served responses past their deadline.
    pub deadline_miss_frac: f64,
    /// Median served latency (arrival → finish), nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile served latency, nanoseconds.
    pub p99_ns: u64,
    /// Served responses per wall-clock second.
    pub qps: f64,
    /// QPS divided by worker threads.
    pub qps_per_core: f64,
    /// Scoring panics absorbed into degraded responses.
    pub panics_recovered: u64,
    /// Micro-batches answered with one blocked scan (batches of ≥ 2).
    pub micro_batches: u64,
    /// Requests served through those micro-batches.
    pub batched_requests: u64,
    /// Successful snapshot swaps during the scenario.
    pub swaps: u64,
    /// Snapshot swaps rejected by verification.
    pub rejected_swaps: u64,
    /// Distinct snapshot versions that served responses, ascending.
    pub versions_served: Vec<u64>,
}

impl ScenarioStats {
    /// Fold a drive plus the server's final stats into scenario numbers.
    pub fn collect(name: &str, report: &DriveReport, stats: &ServerStats) -> Self {
        let served: Vec<_> = report.responses.iter().filter_map(|r| r.served()).collect();
        let mut latencies: Vec<u64> =
            served.iter().map(|s| s.finished_ns.saturating_sub(s.arrival_ns)).collect();
        latencies.sort_unstable();
        let exact = served.iter().filter(|s| s.rung == crate::engine::Rung::Exact).count() as u64;
        let cached = served.iter().filter(|s| s.rung == crate::engine::Rung::Cached).count() as u64;
        let pop =
            served.iter().filter(|s| s.rung == crate::engine::Rung::Popularity).count() as u64;
        let misses = served.iter().filter(|s| s.deadline_missed).count() as u64;
        let mut versions: Vec<u64> = served.iter().map(|s| s.snapshot_version).collect();
        versions.sort_unstable();
        versions.dedup();
        let n_served = served.len() as u64;
        let wall_s = (report.wall_ns as f64 / 1e9).max(1e-9);
        let qps = n_served as f64 / wall_s;
        Self {
            name: name.to_string(),
            submitted: stats.submitted,
            admitted: stats.admitted,
            served: n_served,
            rejected: stats.rejected,
            silent_drops: stats.admitted as i64 - n_served as i64,
            rung_counts: (exact, cached, pop),
            shed_frac: if stats.submitted > 0 {
                stats.rejected as f64 / stats.submitted as f64
            } else {
                0.0
            },
            deadline_miss_frac: if n_served > 0 { misses as f64 / n_served as f64 } else { 0.0 },
            p50_ns: percentile(&latencies, 50),
            p99_ns: percentile(&latencies, 99),
            qps,
            qps_per_core: qps / stats.workers.max(1) as f64,
            panics_recovered: stats.engine.panics_recovered,
            micro_batches: stats.engine.micro_batches,
            batched_requests: stats.engine.batched_requests,
            swaps: stats.swaps,
            rejected_swaps: stats.rejected_swaps,
            versions_served: versions,
        }
    }

    /// Fraction of served responses per rung: (exact, cached, popularity).
    pub fn rung_fractions(&self) -> (f64, f64, f64) {
        let n = self.served.max(1) as f64;
        (
            self.rung_counts.0 as f64 / n,
            self.rung_counts.1 as f64 / n,
            self.rung_counts.2 as f64 / n,
        )
    }

    /// Render as a JSON object (hand-formatted, like the other BENCH
    /// writers in this workspace).
    pub fn to_json(&self) -> String {
        let (fe, fc, fp) = self.rung_fractions();
        format!(
            concat!(
                "    {{\n",
                "      \"scenario\": \"{}\",\n",
                "      \"submitted\": {},\n",
                "      \"admitted\": {},\n",
                "      \"served\": {},\n",
                "      \"rejected\": {},\n",
                "      \"silent_drops\": {},\n",
                "      \"rung_counts\": {{ \"exact\": {}, \"cached\": {}, \"popularity\": {} }},\n",
                "      \"rung_fractions\": {{ \"exact\": {:.4}, \"cached\": {:.4}, \"popularity\": {:.4} }},\n",
                "      \"shed_frac\": {:.4},\n",
                "      \"deadline_miss_frac\": {:.4},\n",
                "      \"p50_us\": {:.1},\n",
                "      \"p99_us\": {:.1},\n",
                "      \"qps\": {:.1},\n",
                "      \"qps_per_core\": {:.1},\n",
                "      \"panics_recovered\": {},\n",
                "      \"micro_batches\": {},\n",
                "      \"batched_requests\": {},\n",
                "      \"snapshot_swaps\": {},\n",
                "      \"rejected_swaps\": {},\n",
                "      \"versions_served\": [{}]\n",
                "    }}"
            ),
            self.name,
            self.submitted,
            self.admitted,
            self.served,
            self.rejected,
            self.silent_drops,
            self.rung_counts.0,
            self.rung_counts.1,
            self.rung_counts.2,
            fe,
            fc,
            fp,
            self.shed_frac,
            self.deadline_miss_frac,
            self.p50_ns as f64 / 1e3,
            self.p99_ns as f64 / 1e3,
            self.qps,
            self.qps_per_core,
            self.panics_recovered,
            self.micro_batches,
            self.batched_requests,
            self.swaps,
            self.rejected_swaps,
            self.versions_served
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(", "),
        )
    }
}

/// Nearest-rank percentile of an ascending-sorted slice (0 when empty).
pub fn percentile(sorted: &[u64], pct: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as u64 * pct).div_euclid(100) as usize;
    sorted.get(idx).copied().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use facility_datagen::FacilityConfig;

    #[test]
    fn percentile_nearest_rank() {
        let xs: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&xs, 50), 50);
        assert_eq!(percentile(&xs, 99), 99);
        assert_eq!(percentile(&xs, 0), 1);
        assert_eq!(percentile(&[], 50), 0);
        assert_eq!(percentile(&[7], 99), 7);
    }

    #[test]
    fn replay_preserves_trace_users_and_cycles() {
        let trace = Trace::generate(&FacilityConfig::tiny(), 3);
        let n = trace.events.len();
        let users = replay_users(&trace, n + 5);
        assert_eq!(users.len(), n + 5);
        for (i, &u) in users.iter().enumerate() {
            assert_eq!(u, trace.events[i % n].user, "position {i} replays the trace");
        }
    }
}
