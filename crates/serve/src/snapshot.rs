//! Immutable, atomically hot-swappable model snapshots.
//!
//! A [`ModelSnapshot`] freezes everything scoring needs — the cached
//! user/item representation matrices a model builds in `prepare_eval`
//! (for CKAT these are the layer-concat representations) plus a
//! popularity prior — into one immutable value. Snapshots persist through
//! the `facility-ckpt` envelope, so every load re-verifies magic, format
//! version, and CRC-32; a snapshot that fails verification (or carries
//! non-finite values) is *rejected* and the previously installed one
//! keeps serving. Transient I/O failures retry with seeded, jittered
//! exponential backoff; corruption never retries.
//!
//! [`SnapshotStore`] holds the currently-serving snapshot behind an
//! `RwLock<Arc<…>>`: readers clone the `Arc` (wait-free after the brief
//! read lock) and keep scoring the snapshot they grabbed even while a
//! swap installs a successor — a request is always served end-to-end by
//! exactly one snapshot version.

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use facility_ckpt::{self as ckpt, CkptError, Reader, Writer};
use facility_kg::{Id, Interactions};
use facility_linalg::Matrix;
use facility_models::Recommender;

use crate::clock::Clock;
use crate::fault::splitmix64;
use crate::sync;
use crate::ServeError;

/// Payload tag distinguishing serve snapshots from trainer checkpoints
/// sharing the same envelope.
const SNAPSHOT_TAG: &str = "serve-snapshot";

/// Snapshot payload layout version.
const SNAPSHOT_VERSION: u8 = 1;

/// Everything the scoring path needs, frozen at one training point.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSnapshot {
    /// Name of the model that produced the representations.
    pub model_name: String,
    /// Training epoch the representations were captured at.
    pub epoch: u64,
    /// Per-user representation rows (`n_users × d`).
    pub users: Matrix,
    /// Per-item representation rows (`n_items × d`).
    pub items: Matrix,
    /// Items ranked by training popularity (count desc, id asc), with the
    /// raw train count as weight — the ladder's last-resort prior.
    pub popularity: Vec<(Id, f32)>,
}

impl ModelSnapshot {
    /// Freeze a trained model's eval caches into a snapshot.
    ///
    /// The model must have run `prepare_eval`; models whose scoring is not
    /// a cached user·item dot product are rejected as `Unsupported`.
    pub fn from_model(
        model: &dyn Recommender,
        inter: &Interactions,
        epoch: u64,
    ) -> Result<Self, ServeError> {
        let (users, items) = model.eval_matrices().ok_or_else(|| {
            ServeError::Unsupported(format!(
                "{} has no cached dot-product representations (missing prepare_eval, or the \
                 model does not expose eval matrices)",
                model.name()
            ))
        })?;
        let snap = Self {
            model_name: model.name(),
            epoch,
            users: users.clone(),
            items: items.clone(),
            popularity: popularity_rank(inter),
        };
        snap.validate()?;
        Ok(snap)
    }

    /// Number of users scorable by this snapshot.
    pub fn n_users(&self) -> usize {
        self.users.rows()
    }

    /// Number of items in the catalog.
    pub fn n_items(&self) -> usize {
        self.items.rows()
    }

    /// Scores of all items for `user` by inner product (the exact rung),
    /// on the shared lane-vectorized dot kernel. `user` must be
    /// `< n_users()`; admission control enforces this.
    pub fn score_user(&self, user: Id) -> Vec<f32> {
        let u = self.users.row(user as usize);
        self.items.iter_rows().map(|v| facility_linalg::matrix::dot(u, v)).collect()
    }

    /// [`ModelSnapshot::score_user`] through the scalar differential
    /// oracle (`kernels::scalar::dot`). The lane-fold contract makes this
    /// bitwise-equal to the vectorized path; `fkgserve bench` asserts it
    /// on every healthy run.
    pub fn score_user_scalar_oracle(&self, user: Id) -> Vec<f32> {
        let u = self.users.row(user as usize);
        self.items.iter_rows().map(|v| facility_linalg::kernels::scalar::dot(u, v)).collect()
    }

    /// Exact top-`k` for `user`: kernel-scored, then the same partial
    /// selection offline evaluation uses ([`facility_eval::rank_top_k`])
    /// — one ranking implementation serves training eval and the online
    /// exact rung.
    pub fn rank_top_k(&self, user: Id, exclude: &[Id], k: usize) -> Vec<(Id, f32)> {
        facility_eval::rank_top_k(&self.score_user(user), exclude, k)
    }

    /// Batched exact top-`k`: one blocked multi-query scan over the item
    /// matrix for `users` (with one sorted exclude list per user).
    ///
    /// Item-and-bit identical to calling [`ModelSnapshot::rank_top_k`]
    /// once per user: the blocked kernel computes every score with the
    /// same lane-folded dot as [`ModelSnapshot::score_user`], and the
    /// streaming selector's `(score desc, id asc)` order exactly matches
    /// [`facility_eval::rank_top_k`]. Batching is therefore a pure
    /// throughput decision — the engine's micro-batch path relies on it.
    pub fn rank_top_k_batch(
        &self,
        users: &[Id],
        excludes: &[&[Id]],
        k: usize,
    ) -> Vec<Vec<(Id, f32)>> {
        let d = self.users.cols();
        let mut queries = Vec::with_capacity(users.len() * d);
        for &u in users {
            queries.extend_from_slice(self.users.row(u as usize));
        }
        let mut engine = facility_linalg::retrieval::BatchTopK::new();
        engine.rank_block(&queries, d, self.items.as_slice(), self.items.rows(), excludes, k)
    }

    /// Top-`k` most popular items not in `exclude` (sorted ascending) —
    /// the model-free fallback rung.
    pub fn popularity_top_k(&self, exclude: &[Id], k: usize) -> Vec<(Id, f32)> {
        self.popularity
            .iter()
            .filter(|(id, _)| exclude.binary_search(id).is_err())
            .take(k)
            .copied()
            .collect()
    }

    /// Structural soundness: finite values, matching shapes, a complete
    /// popularity ranking. A snapshot failing this is *poisoned* and must
    /// never be installed.
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.users.cols() != self.items.cols() {
            return Err(ServeError::Poisoned(format!(
                "user dim {} != item dim {}",
                self.users.cols(),
                self.items.cols()
            )));
        }
        for (name, m) in [("users", &self.users), ("items", &self.items)] {
            if !m.as_slice().iter().all(|v| v.is_finite()) {
                return Err(ServeError::Poisoned(format!("non-finite value in {name} matrix")));
            }
        }
        if self.popularity.len() != self.items.rows() {
            return Err(ServeError::Poisoned(format!(
                "popularity ranks {} items, catalog has {}",
                self.popularity.len(),
                self.items.rows()
            )));
        }
        let n = self.items.rows();
        let mut seen = vec![false; n];
        for &(id, w) in &self.popularity {
            let slot = seen.get_mut(id as usize);
            match slot {
                Some(s) if !*s && w.is_finite() => *s = true,
                _ => {
                    return Err(ServeError::Poisoned(format!(
                        "popularity entry ({id}, {w}) is out of range, duplicated, or non-finite"
                    )))
                }
            }
        }
        Ok(())
    }

    /// Serialize to envelope payload bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_str(SNAPSHOT_TAG);
        w.put_u8(SNAPSHOT_VERSION);
        w.put_str(&self.model_name);
        w.put_u64(self.epoch);
        w.put_matrix(&self.users);
        w.put_matrix(&self.items);
        w.put_u64(self.popularity.len() as u64);
        for &(id, weight) in &self.popularity {
            w.put_u32(id);
            w.put_f32(weight);
        }
        w.into_bytes()
    }

    /// Parse payload bytes written by [`ModelSnapshot::encode`].
    pub fn decode(payload: &[u8]) -> Result<Self, ServeError> {
        let mut r = Reader::new(payload);
        let tag = r.get_str()?;
        if tag != SNAPSHOT_TAG {
            return Err(CkptError::Mismatch(format!(
                "payload tag {tag:?} is not a serve snapshot"
            ))
            .into());
        }
        let version = r.get_u8()?;
        if version != SNAPSHOT_VERSION {
            return Err(CkptError::Version(version).into());
        }
        let model_name = r.get_str()?;
        let epoch = r.get_u64()?;
        let users = r.get_matrix()?;
        let items = r.get_matrix()?;
        let n_pop = r.get_u64()? as usize;
        if !r.fits(n_pop.saturating_mul(8)) {
            return Err(CkptError::Format(format!(
                "popularity list of {n_pop} entries does not fit the remaining payload"
            ))
            .into());
        }
        let mut popularity = Vec::with_capacity(n_pop);
        for _ in 0..n_pop {
            let id = r.get_u32()?;
            let weight = r.get_f32()?;
            popularity.push((id, weight));
        }
        if !r.is_exhausted() {
            return Err(CkptError::Format("trailing bytes after snapshot payload".into()).into());
        }
        Ok(Self { model_name, epoch, users, items, popularity })
    }

    /// Persist atomically (tmp + rename) inside the CRC'd envelope.
    pub fn save(&self, path: &Path) -> Result<(), CkptError> {
        ckpt::save_bytes(path, &self.encode())
    }
}

/// Items ranked by train-interaction count (desc), ties by id (asc).
/// Every catalog item appears, so the prior can always fill `k` slots.
pub fn popularity_rank(inter: &Interactions) -> Vec<(Id, f32)> {
    let mut counts = vec![0u32; inter.n_items];
    for &(_, item) in &inter.train_pairs {
        if let Some(c) = counts.get_mut(item as usize) {
            *c += 1;
        }
    }
    let mut ranked: Vec<(Id, f32)> =
        counts.iter().enumerate().map(|(i, &c)| (i as Id, c as f32)).collect();
    ranked.sort_unstable_by(|a, b| {
        b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
    });
    ranked
}

/// How loads retry on *transient* (I/O) failure. Corruption — bad magic,
/// version skew, CRC mismatch, truncation, non-finite values — never
/// retries: re-reading a corrupt file cannot fix it.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts (≥ 1).
    pub attempts: usize,
    /// First backoff; doubles each retry.
    pub base_ns: u64,
    /// Backoff ceiling.
    pub max_ns: u64,
    /// Seed for the deterministic jitter.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self { attempts: 4, base_ns: 2_000_000, max_ns: 50_000_000, seed: 0 }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `attempt` (0-based): exponential with
    /// seeded jitter in `[0, base/2)`, capped at `max_ns`.
    pub fn backoff_ns(&self, attempt: usize) -> u64 {
        let exp =
            self.base_ns.checked_shl(attempt.min(32) as u32).unwrap_or(u64::MAX).min(self.max_ns);
        let jitter_span = (self.base_ns / 2).max(1);
        let jitter = splitmix64(self.seed ^ (attempt as u64).wrapping_add(0xA5A5)) % jitter_span;
        exp.saturating_add(jitter)
    }
}

/// Load a snapshot from `path`, verifying envelope CRC/version and
/// snapshot soundness. No retry — see [`load_snapshot_with_retry`].
pub fn load_snapshot(path: &Path) -> Result<ModelSnapshot, ServeError> {
    let payload = ckpt::load_bytes(path)?;
    let snap = ModelSnapshot::decode(&payload)?;
    snap.validate()?;
    Ok(snap)
}

/// [`load_snapshot`] with jittered-backoff retry on transient I/O
/// failure. Backoff waits go through `clock`, so tests retry instantly.
pub fn load_snapshot_with_retry(
    path: &Path,
    policy: &RetryPolicy,
    clock: &dyn Clock,
) -> Result<ModelSnapshot, ServeError> {
    load_snapshot_with_retry_from(&mut ckpt::load_bytes, path, policy, clock)
}

/// Retry-loading core with an injectable reader, the hook the fault suite
/// uses to simulate transient I/O failure without touching a filesystem.
pub fn load_snapshot_with_retry_from(
    read: &mut dyn FnMut(&Path) -> Result<Vec<u8>, CkptError>,
    path: &Path,
    policy: &RetryPolicy,
    clock: &dyn Clock,
) -> Result<ModelSnapshot, ServeError> {
    let attempts = policy.attempts.max(1);
    let mut attempt = 0usize;
    loop {
        let result = read(path).map_err(ServeError::from).and_then(|payload| {
            let snap = ModelSnapshot::decode(&payload)?;
            snap.validate()?;
            Ok(snap)
        });
        match result {
            Ok(snap) => return Ok(snap),
            Err(e) if e.is_transient() && attempt + 1 < attempts => {
                clock.wait_ns(policy.backoff_ns(attempt));
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

/// A snapshot plus the monotonically increasing store version that
/// installed it — the tag every response carries and the score cache
/// keys invalidation on.
#[derive(Debug)]
pub struct VersionedSnapshot {
    /// Store-assigned install version (1 for the initial snapshot).
    pub version: u64,
    /// The immutable snapshot itself.
    pub snap: ModelSnapshot,
}

/// The currently-serving snapshot, hot-swappable without pausing workers.
#[derive(Debug)]
pub struct SnapshotStore {
    current: RwLock<Arc<VersionedSnapshot>>,
    next_version: AtomicU64,
    swaps: AtomicU64,
    rejected_swaps: AtomicU64,
}

impl SnapshotStore {
    /// A store serving `snap` as version 1.
    pub fn new(snap: ModelSnapshot) -> Self {
        Self {
            current: RwLock::new(Arc::new(VersionedSnapshot { version: 1, snap })),
            next_version: AtomicU64::new(2),
            swaps: AtomicU64::new(0),
            rejected_swaps: AtomicU64::new(0),
        }
    }

    /// The snapshot serving right now. The `Arc` stays valid (and
    /// immutable) for as long as the caller holds it, across any swaps.
    pub fn current(&self) -> Arc<VersionedSnapshot> {
        Arc::clone(&sync::read(&self.current))
    }

    /// Version of the currently-installed snapshot.
    pub fn version(&self) -> u64 {
        sync::read(&self.current).version
    }

    /// Atomically install an already-validated snapshot; returns its new
    /// version. In-flight requests keep the version they grabbed.
    pub fn swap(&self, snap: ModelSnapshot) -> u64 {
        let version = self.next_version.fetch_add(1, Ordering::Relaxed);
        *sync::write(&self.current) = Arc::new(VersionedSnapshot { version, snap });
        self.swaps.fetch_add(1, Ordering::Relaxed);
        version
    }

    /// Load `path` with full verification (+ retry on transient I/O) and
    /// install it. On *any* failure the currently-installed snapshot
    /// keeps serving untouched and the rejection is counted — a corrupt
    /// file can never reach the scoring path.
    pub fn swap_verified_from(
        &self,
        path: &Path,
        policy: &RetryPolicy,
        clock: &dyn Clock,
    ) -> Result<u64, ServeError> {
        match load_snapshot_with_retry(path, policy, clock) {
            Ok(snap) => Ok(self.swap(snap)),
            Err(e) => {
                self.rejected_swaps.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    /// Successful swaps since construction (initial install not counted).
    pub fn swaps(&self) -> u64 {
        self.swaps.load(Ordering::Relaxed)
    }

    /// Swap attempts rejected by verification.
    pub fn rejected_swaps(&self) -> u64 {
        self.rejected_swaps.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;

    fn toy_snapshot() -> ModelSnapshot {
        let users = Matrix::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        let items = Matrix::from_vec(4, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0, 0.5, 0.5]);
        let popularity = vec![(2u32, 5.0), (0, 3.0), (1, 1.0), (3, 0.0)];
        ModelSnapshot { model_name: "toy".into(), epoch: 7, users, items, popularity }
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("facility_serve_snapshot_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn roundtrip_is_bitwise() {
        let snap = toy_snapshot();
        let decoded = ModelSnapshot::decode(&snap.encode()).unwrap();
        assert_eq!(snap, decoded);
    }

    #[test]
    fn save_load_verifies_and_roundtrips() {
        let snap = toy_snapshot();
        let path = tmp("roundtrip.fks");
        snap.save(&path).unwrap();
        let loaded = load_snapshot(&path).unwrap();
        assert_eq!(snap, loaded);
    }

    #[test]
    fn score_user_is_dot_product() {
        let snap = toy_snapshot();
        assert_eq!(snap.score_user(2), vec![1.0, 1.0, 2.0, 1.0]);
    }

    #[test]
    fn popularity_prior_masks_excluded_items() {
        let snap = toy_snapshot();
        let top = snap.popularity_top_k(&[0, 2], 2);
        assert_eq!(top, vec![(1, 1.0), (3, 0.0)]);
    }

    #[test]
    fn poisoned_values_are_rejected() {
        let mut snap = toy_snapshot();
        snap.users = Matrix::from_vec(3, 2, vec![1.0, f32::NAN, 0.0, 1.0, 1.0, 1.0]);
        assert!(matches!(snap.validate(), Err(ServeError::Poisoned(_))));
        // …and a poisoned snapshot saved to disk still fails on load,
        // even though its CRC is intact.
        let path = tmp("poisoned.fks");
        snap.save(&path).unwrap();
        assert!(matches!(load_snapshot(&path), Err(ServeError::Poisoned(_))));
    }

    #[test]
    fn incomplete_popularity_is_rejected() {
        let mut snap = toy_snapshot();
        snap.popularity.pop();
        assert!(matches!(snap.validate(), Err(ServeError::Poisoned(_))));
        snap.popularity = vec![(0, 1.0), (0, 1.0), (1, 0.0), (2, 0.0)];
        assert!(matches!(snap.validate(), Err(ServeError::Poisoned(_))));
    }

    #[test]
    fn wrong_payload_kind_is_a_mismatch() {
        let mut w = Writer::new();
        w.put_str("trainer-checkpoint");
        let err = ModelSnapshot::decode(&w.into_bytes()).unwrap_err();
        assert!(matches!(err, ServeError::Ckpt(CkptError::Mismatch(_))), "{err}");
    }

    #[test]
    fn retry_recovers_from_transient_io_and_backs_off_deterministically() {
        let snap = toy_snapshot();
        let payload = snap.encode();
        let clock = VirtualClock::new();
        let policy = RetryPolicy { attempts: 5, base_ns: 1_000, max_ns: 10_000, seed: 9 };
        let mut calls = 0usize;
        let mut read = |_: &Path| {
            calls += 1;
            if calls <= 2 {
                Err(CkptError::Io(std::io::Error::other("flaky mount")))
            } else {
                Ok(payload.clone())
            }
        };
        let got =
            load_snapshot_with_retry_from(&mut read, Path::new("virtual.fks"), &policy, &clock)
                .unwrap();
        assert_eq!(got, snap);
        assert_eq!(calls, 3, "two failures then success");
        let expected_wait = policy.backoff_ns(0) + policy.backoff_ns(1);
        assert_eq!(clock.now_ns(), expected_wait, "backoff schedule is deterministic");
    }

    #[test]
    fn corruption_never_retries() {
        let clock = VirtualClock::new();
        let policy = RetryPolicy { attempts: 10, ..RetryPolicy::default() };
        let mut calls = 0usize;
        let mut read = |_: &Path| {
            calls += 1;
            Err(CkptError::Checksum { expected: 1, actual: 2 })
        };
        let err = load_snapshot_with_retry_from(&mut read, Path::new("x.fks"), &policy, &clock)
            .unwrap_err();
        assert!(matches!(err, ServeError::Ckpt(CkptError::Checksum { .. })));
        assert_eq!(calls, 1, "corruption must fail fast");
        assert_eq!(clock.now_ns(), 0, "no backoff for permanent errors");
    }

    #[test]
    fn store_swaps_bump_versions_and_keep_old_arcs_alive() {
        let store = SnapshotStore::new(toy_snapshot());
        let v1 = store.current();
        assert_eq!(v1.version, 1);
        let mut next = toy_snapshot();
        next.epoch = 8;
        assert_eq!(store.swap(next), 2);
        assert_eq!(store.version(), 2);
        assert_eq!(store.swaps(), 1);
        // The pre-swap handle still scores the old snapshot.
        assert_eq!(v1.snap.epoch, 7);
        assert_eq!(store.current().snap.epoch, 8);
    }

    #[test]
    fn corrupt_file_swap_is_rejected_and_old_snapshot_survives() {
        let snap = toy_snapshot();
        let path = tmp("swap_corrupt.fks");
        snap.save(&path).unwrap();
        let bad = tmp("swap_corrupt_bad.fks");
        crate::fault::corrupt_flip_byte(&path, &bad, 40).unwrap();

        let store = SnapshotStore::new(snap);
        let clock = VirtualClock::new();
        let err = store.swap_verified_from(&bad, &RetryPolicy::default(), &clock).unwrap_err();
        assert!(matches!(err, ServeError::Ckpt(CkptError::Checksum { .. })), "{err}");
        assert_eq!(store.version(), 1, "old snapshot keeps serving");
        assert_eq!(store.rejected_swaps(), 1);
        assert_eq!(store.swaps(), 0);
    }

    #[test]
    fn backoff_grows_and_caps() {
        let p = RetryPolicy { attempts: 8, base_ns: 1_000, max_ns: 4_000, seed: 3 };
        assert!(p.backoff_ns(1) >= 2_000);
        assert!(p.backoff_ns(6) <= 4_000 + 500, "capped at max + jitter");
        // Deterministic across calls.
        assert_eq!(p.backoff_ns(2), p.backoff_ns(2));
    }
}
