//! Seeded, deterministic fault injection.
//!
//! Every fault decision is a pure function of `(seed, request id)` via a
//! splitmix64 hash, so a scenario replays identically across runs and
//! worker counts: the *set* of faulted requests never changes, only which
//! worker happens to hit each one. File-corruption helpers cover the
//! snapshot-load faults (truncation, bit flips, version skew) that the
//! envelope verification must catch.

use std::fs;
use std::io;
use std::path::Path;

/// The splitmix64 mixer — the same finalizer the trainer uses to derive
/// per-epoch RNG streams, reused here so fault schedules are stable,
/// well-distributed functions of the scenario seed.
pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform-ish value in `[0, 1)` from a hash.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// What to inject on the scoring path, with what probability.
#[derive(Debug, Clone, Copy)]
pub struct FaultConfig {
    /// Scenario seed; all per-request decisions derive from it.
    pub seed: u64,
    /// Probability that a request's exact-scoring path stalls.
    pub latency_spike_prob: f64,
    /// Stall duration when a latency spike fires.
    pub latency_spike_ns: u64,
    /// Probability that the exact-scoring path panics (the worker must
    /// catch it and degrade, never die).
    pub panic_prob: f64,
}

impl FaultConfig {
    /// No faults at all.
    pub fn healthy() -> Self {
        Self { seed: 0, latency_spike_prob: 0.0, latency_spike_ns: 0, panic_prob: 0.0 }
    }
}

/// A scenario's deterministic fault schedule.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    cfg: FaultConfig,
}

impl FaultPlan {
    /// Plan for one scenario.
    pub fn new(cfg: FaultConfig) -> Self {
        Self { cfg }
    }

    /// A plan that injects nothing.
    pub fn healthy() -> Self {
        Self::new(FaultConfig::healthy())
    }

    fn roll(&self, request_id: u64, salt: u64) -> f64 {
        unit(splitmix64(self.cfg.seed ^ salt.wrapping_mul(0x9E37_79B9).wrapping_add(request_id)))
    }

    /// Injected stall (ns) on this request's scoring path; 0 = none.
    pub fn latency_spike_ns(&self, request_id: u64) -> u64 {
        if self.cfg.latency_spike_prob > 0.0
            && self.roll(request_id, 1) < self.cfg.latency_spike_prob
        {
            self.cfg.latency_spike_ns
        } else {
            0
        }
    }

    /// True when this request's exact-scoring path must panic.
    pub fn should_panic(&self, request_id: u64) -> bool {
        self.cfg.panic_prob > 0.0 && self.roll(request_id, 2) < self.cfg.panic_prob
    }
}

/// Truncate a copy of `src` to `keep` bytes at `dst` (a torn write).
pub fn corrupt_truncate(src: &Path, dst: &Path, keep: usize) -> io::Result<()> {
    let mut bytes = fs::read(src)?;
    bytes.truncate(keep);
    fs::write(dst, bytes)
}

/// Copy `src` to `dst` with the byte at `offset` bit-flipped. Offsets past
/// the end wrap, so any offset corrupts *something*.
pub fn corrupt_flip_byte(src: &Path, dst: &Path, offset: usize) -> io::Result<()> {
    let mut bytes = fs::read(src)?;
    if bytes.is_empty() {
        return fs::write(dst, bytes);
    }
    let at = offset % bytes.len();
    bytes[at] ^= 0x40;
    fs::write(dst, bytes)
}

/// Copy `src` to `dst` with the envelope's format-version byte bumped to a
/// future version this build does not understand.
pub fn corrupt_version(src: &Path, dst: &Path) -> io::Result<()> {
    let mut bytes = fs::read(src)?;
    if bytes.len() > 4 {
        bytes[4] = bytes[4].wrapping_add(40);
    }
    fs::write(dst, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_deterministic() {
        let cfg = FaultConfig {
            seed: 42,
            latency_spike_prob: 0.3,
            latency_spike_ns: 1_000,
            panic_prob: 0.1,
        };
        let a = FaultPlan::new(cfg);
        let b = FaultPlan::new(cfg);
        for id in 0..500 {
            assert_eq!(a.latency_spike_ns(id), b.latency_spike_ns(id));
            assert_eq!(a.should_panic(id), b.should_panic(id));
        }
    }

    #[test]
    fn probabilities_roughly_hold() {
        let plan = FaultPlan::new(FaultConfig {
            seed: 7,
            latency_spike_prob: 0.25,
            latency_spike_ns: 10,
            panic_prob: 0.25,
        });
        let n = 4000u64;
        let spikes = (0..n).filter(|&id| plan.latency_spike_ns(id) > 0).count();
        let panics = (0..n).filter(|&id| plan.should_panic(id)).count();
        for hits in [spikes, panics] {
            let frac = hits as f64 / n as f64;
            assert!((0.18..0.32).contains(&frac), "fault rate {frac} far from 0.25");
        }
        // The two fault streams must be independent (different salts).
        let both =
            (0..n).filter(|&id| plan.latency_spike_ns(id) > 0 && plan.should_panic(id)).count();
        assert!(both < spikes, "streams must not be perfectly correlated");
    }

    #[test]
    fn healthy_plan_injects_nothing() {
        let plan = FaultPlan::healthy();
        for id in 0..200 {
            assert_eq!(plan.latency_spike_ns(id), 0);
            assert!(!plan.should_panic(id));
        }
    }

    #[test]
    fn corruption_helpers_modify_files() {
        let dir = std::env::temp_dir().join("facility_serve_fault_helpers");
        std::fs::create_dir_all(&dir).unwrap();
        let src = dir.join("src.bin");
        fs::write(&src, [1u8, 2, 3, 4, 5, 6, 7, 8]).unwrap();

        let t = dir.join("trunc.bin");
        corrupt_truncate(&src, &t, 3).unwrap();
        assert_eq!(fs::read(&t).unwrap(), vec![1, 2, 3]);

        let f = dir.join("flip.bin");
        corrupt_flip_byte(&src, &f, 1).unwrap();
        assert_eq!(fs::read(&f).unwrap()[1], 2 ^ 0x40);

        let v = dir.join("ver.bin");
        corrupt_version(&src, &v).unwrap();
        assert_eq!(fs::read(&v).unwrap()[4], 5u8.wrapping_add(40));
    }
}
