//! Admission control and the worker pool.
//!
//! The request loop is a *bounded* queue in front of N workers. A full
//! queue sheds load at the door with a structured [`Rejection`] — the
//! caller always learns the fate of every submission, nothing is ever
//! silently dropped. Workers pull from the queue, run the engine's
//! degradation ladder, and push every completed response into a bounded
//! channel; an unexpected worker panic is absorbed into a degraded
//! response rather than killing the thread. Shutdown stops admissions
//! (further submissions shed as `ShuttingDown`) but drains everything
//! already admitted, preserving the exactly-one-response-per-admission
//! invariant end-to-end.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use facility_kg::Id;

use crate::engine::{Engine, EngineCounters, Request, Served};
use crate::sync;

/// Why a submission was shed instead of admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The bounded queue was full (overload).
    QueueFull,
    /// The server is shutting down and admits nothing new.
    ShuttingDown,
    /// The user id is outside the snapshot's user range.
    UnknownUser,
}

impl ShedReason {
    /// Stable lowercase label for reports and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            ShedReason::QueueFull => "queue_full",
            ShedReason::ShuttingDown => "shutting_down",
            ShedReason::UnknownUser => "unknown_user",
        }
    }
}

/// Structured load-shed notice: the submission was *not* admitted, and
/// this is the caller's receipt.
#[derive(Debug, Clone, Copy)]
pub struct Rejection {
    /// The id the submission would have had.
    pub id: u64,
    /// The user that was asking.
    pub user: Id,
    /// Why admission was refused.
    pub reason: ShedReason,
    /// Clock time of the refusal.
    pub at_ns: u64,
}

/// The fate of one submission: served (with rung tag) or shed (with
/// reason) — there is no third outcome.
#[derive(Debug, Clone)]
pub enum Response {
    /// Admitted and answered by some ladder rung.
    Served(Served),
    /// Shed at admission with a structured reason.
    Rejected(Rejection),
}

impl Response {
    /// The submission id this response accounts for.
    pub fn id(&self) -> u64 {
        match self {
            Response::Served(s) => s.id,
            Response::Rejected(r) => r.id,
        }
    }

    /// The served payload, if admitted.
    pub fn served(&self) -> Option<&Served> {
        match self {
            Response::Served(s) => Some(s),
            Response::Rejected(_) => None,
        }
    }

    /// True when this submission was shed.
    pub fn is_rejected(&self) -> bool {
        matches!(self, Response::Rejected(_))
    }
}

/// Worker-pool and queue sizing.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Worker threads pulling from the queue (≥ 1).
    pub workers: usize,
    /// Bounded queue capacity; submissions beyond it shed (≥ 1).
    pub queue_capacity: usize,
    /// Most requests a worker drains into one micro-batched blocked scan
    /// (≥ 1; 1 disables batching entirely).
    pub max_batch: usize,
    /// Wall-clock slack a worker with a short batch waits for more
    /// arrivals before scanning, in microseconds (0 = never wait — batch
    /// only what is already queued). Bounded: a worker never stalls a
    /// drained request longer than this.
    pub batch_slack_us: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self { workers: 2, queue_capacity: 64, max_batch: 8, batch_slack_us: 0 }
    }
}

/// Accounting snapshot; `submitted == admitted + rejected` always, and
/// after shutdown `completed == admitted` (zero silent drops).
#[derive(Debug, Clone, Copy)]
pub struct ServerStats {
    /// Total submissions seen.
    pub submitted: u64,
    /// Submissions admitted to the queue.
    pub admitted: u64,
    /// Submissions shed with a structured rejection.
    pub rejected: u64,
    /// Admitted requests answered.
    pub completed: u64,
    /// Engine-side rung/cache/fault counters.
    pub engine: EngineCounters,
    /// Successful snapshot hot-swaps.
    pub swaps: u64,
    /// Snapshot swaps rejected by verification.
    pub rejected_swaps: u64,
    /// Worker thread count (for QPS/core).
    pub workers: usize,
}

impl ServerStats {
    /// Admitted requests that never produced a response. Must be 0 after
    /// shutdown; positive values mean the no-silent-drop invariant broke.
    pub fn silent_drops(&self) -> i64 {
        self.admitted as i64 - self.completed as i64
    }
}

struct Shared {
    engine: Engine,
    queue: Mutex<VecDeque<Request>>,
    not_empty: Condvar,
    capacity: usize,
    max_batch: usize,
    batch_slack: Duration,
    closing: AtomicBool,
    next_id: AtomicU64,
    submitted: AtomicU64,
    admitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    live_workers: AtomicUsize,
}

/// A running serving instance: bounded queue, worker pool, response
/// channel.
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    rx: mpsc::Receiver<Response>,
    n_workers: usize,
}

impl Server {
    /// Spawn the worker pool and start serving.
    pub fn start(engine: Engine, cfg: &ServerConfig) -> Server {
        let n_workers = cfg.workers.max(1);
        let capacity = cfg.queue_capacity.max(1);
        let max_batch = cfg.max_batch.max(1);
        let shared = Arc::new(Shared {
            engine,
            // audit: bounded — capacity is enforced by the explicit
            // `q.len() >= capacity` check in submit().
            queue: Mutex::new(VecDeque::with_capacity(capacity)),
            not_empty: Condvar::new(),
            capacity,
            max_batch,
            batch_slack: Duration::from_micros(cfg.batch_slack_us),
            closing: AtomicBool::new(false),
            next_id: AtomicU64::new(0),
            submitted: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            live_workers: AtomicUsize::new(n_workers),
        });
        // Bounded response channel: room for every queueable request plus
        // one in-flight micro-batch per worker. A slow consumer therefore
        // backpressures workers, fills the queue, and sheds at the door —
        // load has nowhere to pile up unboundedly.
        let (tx, rx) = mpsc::sync_channel(capacity + n_workers * max_batch);
        let workers = (0..n_workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let tx = tx.clone();
                std::thread::Builder::new()
                    .name(format!("fkgserve-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &tx))
                    // audit: unwrap — OS refusing a thread at startup is
                    // unrecoverable; nothing is serving yet.
                    .expect("spawn serve worker")
            })
            .collect();
        Server { shared, workers, rx, n_workers }
    }

    /// Submit a request for `user`. `Ok(id)` means admitted — exactly one
    /// [`Response::Served`] with that id will eventually arrive. `Err`
    /// is the structured shed path; nothing was enqueued.
    pub fn submit(&self, user: Id) -> Result<u64, Rejection> {
        let s = &*self.shared;
        let now = s.engine.now_ns();
        let id = s.next_id.fetch_add(1, Ordering::Relaxed);
        s.submitted.fetch_add(1, Ordering::Relaxed);
        let reject = |reason: ShedReason| {
            s.rejected.fetch_add(1, Ordering::Relaxed);
            Err(Rejection { id, user, reason, at_ns: now })
        };
        if s.closing.load(Ordering::Acquire) {
            return reject(ShedReason::ShuttingDown);
        }
        if (user as usize) >= s.engine.n_users() {
            return reject(ShedReason::UnknownUser);
        }
        let mut q = sync::lock(&s.queue);
        if q.len() >= s.capacity {
            drop(q);
            return reject(ShedReason::QueueFull);
        }
        q.push_back(Request { id, user, arrival_ns: now });
        drop(q);
        s.admitted.fetch_add(1, Ordering::Relaxed);
        s.not_empty.notify_one();
        Ok(id)
    }

    /// Next completed response, if one is ready.
    pub fn try_recv(&self) -> Option<Response> {
        self.rx.try_recv().ok()
    }

    /// Next completed response, waiting up to `timeout` (wall time).
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Response> {
        self.rx.recv_timeout(timeout).ok()
    }

    /// The shared scoring engine (for counters, clock, and store access).
    pub fn engine(&self) -> &Engine {
        &self.shared.engine
    }

    /// Current accounting snapshot.
    pub fn stats(&self) -> ServerStats {
        let s = &*self.shared;
        ServerStats {
            submitted: s.submitted.load(Ordering::Relaxed),
            admitted: s.admitted.load(Ordering::Relaxed),
            rejected: s.rejected.load(Ordering::Relaxed),
            completed: s.completed.load(Ordering::Relaxed),
            engine: s.engine.counters(),
            swaps: s.engine.store().swaps(),
            rejected_swaps: s.engine.store().rejected_swaps(),
            workers: self.n_workers,
        }
    }

    /// Stop admitting new requests (they shed as `ShuttingDown`) without
    /// stopping the workers; already-admitted requests keep draining.
    pub fn close(&self) {
        self.shared.closing.store(true, Ordering::Release);
        self.shared.not_empty.notify_all();
    }

    /// Stop admissions, drain every admitted request, join the workers,
    /// and return all not-yet-received responses plus final stats.
    pub fn shutdown(mut self) -> (Vec<Response>, ServerStats) {
        self.shared.closing.store(true, Ordering::Release);
        self.shared.not_empty.notify_all();
        let mut responses = Vec::new();
        while self.shared.live_workers.load(Ordering::Acquire) > 0 {
            if let Ok(r) = self.rx.recv_timeout(Duration::from_millis(5)) {
                responses.push(r);
            }
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        while let Ok(r) = self.rx.try_recv() {
            responses.push(r);
        }
        let stats = self.stats();
        (responses, stats)
    }
}

fn worker_loop(shared: &Shared, tx: &mpsc::SyncSender<Response>) {
    /// Decrements the live-worker count however the loop exits.
    struct Live<'a>(&'a AtomicUsize);
    impl Drop for Live<'_> {
        fn drop(&mut self) {
            self.0.fetch_sub(1, Ordering::Release);
        }
    }
    let _live = Live(&shared.live_workers);
    loop {
        let next = {
            let mut q = sync::lock(&shared.queue);
            loop {
                if !q.is_empty() {
                    // Drain up to a micro-batch of already-queued
                    // requests; under light load this is a batch of 1 and
                    // behaves exactly like the unbatched worker.
                    let take = q.len().min(shared.max_batch);
                    let mut batch: Vec<Request> = q.drain(..take).collect();
                    // Deadline-aware slack window: a short batch may wait
                    // (bounded, wall time) for more arrivals — the wait
                    // eats into every drained request's own budget, so
                    // the engine's deadline accounting keeps it honest.
                    if batch.len() < shared.max_batch
                        && shared.batch_slack > Duration::ZERO
                        && !shared.closing.load(Ordering::Acquire)
                    {
                        let slack_deadline = std::time::Instant::now() + shared.batch_slack;
                        while batch.len() < shared.max_batch {
                            let now = std::time::Instant::now();
                            if now >= slack_deadline || shared.closing.load(Ordering::Acquire) {
                                break;
                            }
                            let (guard, timed_out) =
                                sync::wait_timeout(&shared.not_empty, q, slack_deadline - now);
                            q = guard;
                            let top_up = q.len().min(shared.max_batch - batch.len());
                            batch.extend(q.drain(..top_up));
                            if timed_out {
                                break;
                            }
                        }
                    }
                    break Some(batch);
                }
                if shared.closing.load(Ordering::Acquire) {
                    break None;
                }
                q = sync::wait(&shared.not_empty, q);
            }
        };
        let Some(batch) = next else { return };
        // handle_batch() already absorbs scoring panics; this outer guard
        // makes the exactly-one-response invariant structural even
        // against a panic outside the scoring path.
        let mut served = catch_unwind(AssertUnwindSafe(|| shared.engine.handle_batch(&batch)))
            .unwrap_or_else(|_| Vec::new());
        if served.len() != batch.len() {
            // Engine contract violated (or the outer guard fired):
            // rebuild degraded responses so every admitted request still
            // gets exactly one answer.
            served = batch.iter().map(|r| shared.engine.degraded_response(r)).collect();
        }
        for s in served {
            shared.completed.fetch_add(1, Ordering::Relaxed);
            if tx.send(Response::Served(s)).is_err() {
                // Receiver gone: the Server value itself was dropped.
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{RealClock, VirtualClock};
    use crate::engine::DeadlinePolicy;
    use crate::fault::{FaultConfig, FaultPlan};
    use crate::snapshot::{ModelSnapshot, SnapshotStore};
    use facility_linalg::Matrix;

    fn toy_engine(faults: FaultPlan, clock: Arc<dyn crate::clock::Clock>) -> Engine {
        let users = Matrix::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        let items = Matrix::from_vec(4, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0, 0.5, 0.5]);
        let popularity = vec![(2u32, 5.0), (0, 3.0), (1, 1.0), (3, 0.0)];
        let store = Arc::new(SnapshotStore::new(ModelSnapshot {
            model_name: "toy".into(),
            epoch: 1,
            users,
            items,
            popularity,
        }));
        let train: Arc<Vec<Vec<u32>>> = Arc::new(vec![vec![0], vec![], vec![1, 3]]);
        Engine::new(store, train, DeadlinePolicy { deadline_ns: 1_000_000, k: 2 }, faults, clock)
    }

    #[test]
    fn every_admitted_request_is_answered_exactly_once() {
        let eng = toy_engine(FaultPlan::healthy(), Arc::new(VirtualClock::new()));
        let server = Server::start(
            eng,
            &ServerConfig { workers: 2, queue_capacity: 128, ..ServerConfig::default() },
        );
        let mut admitted = Vec::new();
        for i in 0..60u32 {
            match server.submit(i % 3) {
                Ok(id) => admitted.push(id),
                Err(r) => panic!("unexpected rejection: {r:?}"),
            }
        }
        let (responses, stats) = server.shutdown();
        assert_eq!(stats.submitted, 60);
        assert_eq!(stats.admitted, 60);
        assert_eq!(stats.completed, 60);
        assert_eq!(stats.silent_drops(), 0);
        let mut ids: Vec<u64> = responses.iter().map(|r| r.id()).collect();
        ids.sort_unstable();
        admitted.sort_unstable();
        assert_eq!(ids, admitted, "one response per admission, no dupes, no losses");
    }

    #[test]
    fn unknown_users_shed_with_structured_reason() {
        let eng = toy_engine(FaultPlan::healthy(), Arc::new(VirtualClock::new()));
        let server = Server::start(eng, &ServerConfig::default());
        let err = server.submit(99).unwrap_err();
        assert_eq!(err.reason, ShedReason::UnknownUser);
        let (_, stats) = server.shutdown();
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.admitted, 0);
    }

    #[test]
    fn overload_sheds_at_the_door_never_silently() {
        // Real clock + forced 3ms stalls: one worker drains slowly while a
        // burst of 40 submissions hits a 2-deep queue.
        let eng = toy_engine(
            FaultPlan::new(FaultConfig {
                seed: 5,
                latency_spike_prob: 1.0,
                latency_spike_ns: 3_000_000,
                panic_prob: 0.0,
            }),
            Arc::new(RealClock::new()),
        );
        let server = Server::start(
            eng,
            &ServerConfig { workers: 1, queue_capacity: 2, ..ServerConfig::default() },
        );
        let mut rejections = 0u64;
        for i in 0..40u32 {
            if let Err(r) = server.submit(i % 3) {
                assert_eq!(r.reason, ShedReason::QueueFull);
                rejections += 1;
            }
        }
        let (responses, stats) = server.shutdown();
        assert!(rejections > 0, "a 2-deep queue must shed under a 40-burst");
        assert_eq!(stats.rejected, rejections);
        assert_eq!(stats.admitted + stats.rejected, stats.submitted);
        assert_eq!(stats.silent_drops(), 0, "every admitted request still answered");
        assert_eq!(responses.len() as u64, stats.admitted);
    }

    #[test]
    fn shutdown_refuses_new_but_drains_admitted() {
        let eng = toy_engine(FaultPlan::healthy(), Arc::new(VirtualClock::new()));
        let server = Server::start(
            eng,
            &ServerConfig { workers: 1, queue_capacity: 32, ..ServerConfig::default() },
        );
        for i in 0..10u32 {
            server.submit(i % 3).unwrap();
        }
        server.close();
        let late = server.submit(0).unwrap_err();
        assert_eq!(late.reason, ShedReason::ShuttingDown);
        let (responses, stats) = server.shutdown();
        assert_eq!(stats.completed, 10, "queued work drains through shutdown");
        assert_eq!(responses.len(), 10);
        assert_eq!(stats.rejected, 1);
    }
}
