#![warn(missing_docs)]

//! # facility-serve
//!
//! Fault-tolerant online serving for the discovery recommender — the
//! interactive half of the paper's pipeline, built robust from day one:
//!
//! * **Snapshots** ([`snapshot`]) — an immutable [`ModelSnapshot`]
//!   (trained user/item representations + popularity prior) behind an
//!   atomically hot-swappable [`SnapshotStore`]. Loads go through the
//!   `facility-ckpt` envelope with CRC/version verification and
//!   jittered-backoff retry on transient I/O; corrupt or poisoned
//!   snapshots are rejected and the previous one keeps serving.
//! * **Degradation ladder** ([`engine`]) — per-request deadline budget
//!   with three rungs: exact dot-product + partial-sort top-K → per-user
//!   score-cache hit (invalidated on snapshot swap) → popularity prior.
//!   Every response is tagged with its rung and snapshot version.
//! * **Admission control** ([`server`]) — a bounded queue with load
//!   shedding; shed requests get structured [`Rejection`]s, admitted
//!   requests get exactly one response, nothing is silently dropped.
//! * **Fault injection** ([`fault`]) — seeded, deterministic latency
//!   spikes, scoring panics, and snapshot-file corruption, so the
//!   robustness guarantees are *testable* and replayable.
//! * **Load** ([`load`]) — open/closed-loop replay of the heavy-tailed
//!   `facility-datagen` trace, with per-scenario stats for
//!   `BENCH_serve.json`.

pub mod clock;
pub mod engine;
pub mod fault;
pub mod load;
pub mod server;
pub mod snapshot;
pub(crate) mod sync;

pub use clock::{Clock, RealClock, VirtualClock};
pub use engine::{DeadlinePolicy, Engine, EngineCounters, Request, Rung, ScoreCache, Served};
pub use fault::{corrupt_flip_byte, corrupt_truncate, corrupt_version, FaultConfig, FaultPlan};
pub use load::{
    drive_closed_loop, drive_closed_loop_with, drive_open_loop, percentile, replay_users,
    DriveReport, ScenarioStats,
};
pub use server::{Rejection, Response, Server, ServerConfig, ServerStats, ShedReason};
pub use snapshot::{
    load_snapshot, load_snapshot_with_retry, load_snapshot_with_retry_from, popularity_rank,
    ModelSnapshot, RetryPolicy, SnapshotStore, VersionedSnapshot,
};

use facility_ckpt::CkptError;

/// Why a snapshot could not be loaded or installed.
#[derive(Debug)]
pub enum ServeError {
    /// Envelope or payload failure from the checkpoint layer (I/O,
    /// corruption, version skew, wrong payload kind).
    Ckpt(CkptError),
    /// The snapshot decoded cleanly but its contents are unservable
    /// (non-finite values, inconsistent shapes, broken popularity rank).
    Poisoned(String),
    /// The model cannot produce a snapshot (no cached dot-product
    /// representations).
    Unsupported(String),
}

impl ServeError {
    /// True for failures worth retrying (transient I/O); corruption and
    /// poisoning are permanent for a given file.
    pub fn is_transient(&self) -> bool {
        matches!(self, ServeError::Ckpt(CkptError::Io(_)))
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Ckpt(e) => write!(f, "snapshot envelope error: {e}"),
            ServeError::Poisoned(msg) => write!(f, "poisoned snapshot rejected: {msg}"),
            ServeError::Unsupported(msg) => write!(f, "cannot snapshot model: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Ckpt(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CkptError> for ServeError {
    fn from(e: CkptError) -> Self {
        ServeError::Ckpt(e)
    }
}
