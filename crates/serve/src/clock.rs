//! Time sources for the serving layer.
//!
//! Production serving measures real wall-clock latency, but the
//! fault-injection suite needs *deterministic* time so rung decisions
//! reproduce bit-for-bit. Both sit behind the [`Clock`] trait:
//! [`RealClock`] reads a monotonic [`std::time::Instant`], while
//! [`VirtualClock`] is an atomic counter advanced only by explicit waits
//! (i.e. injected latency), so a single-worker test run is a pure
//! function of the request schedule and the fault seed.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Monotonic nanosecond time source used for deadlines and latency
/// accounting.
pub trait Clock: Send + Sync {
    /// Nanoseconds since an arbitrary fixed origin.
    fn now_ns(&self) -> u64;

    /// Let `ns` nanoseconds pass: sleeps on the real clock, advances the
    /// counter instantly on the virtual one. Injected latency spikes and
    /// retry backoff both route through this, so tests never sleep.
    fn wait_ns(&self, ns: u64);
}

/// Wall-clock time relative to construction.
#[derive(Debug)]
pub struct RealClock {
    start: Instant,
}

impl RealClock {
    /// A clock whose origin is "now".
    pub fn new() -> Self {
        Self { start: Instant::now() }
    }
}

impl Default for RealClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for RealClock {
    fn now_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    fn wait_ns(&self, ns: u64) {
        if ns > 0 {
            std::thread::sleep(Duration::from_nanos(ns));
        }
    }
}

/// Deterministic clock: time moves only when someone waits on it.
#[derive(Debug, Default)]
pub struct VirtualClock {
    now: AtomicU64,
}

impl VirtualClock {
    /// A virtual clock at t = 0.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Clock for VirtualClock {
    fn now_ns(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }

    fn wait_ns(&self, ns: u64) {
        self.now.fetch_add(ns, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_advances_only_on_wait() {
        let c = VirtualClock::new();
        assert_eq!(c.now_ns(), 0);
        c.wait_ns(0);
        assert_eq!(c.now_ns(), 0);
        c.wait_ns(250);
        c.wait_ns(50);
        assert_eq!(c.now_ns(), 300);
    }

    #[test]
    fn real_clock_is_monotonic() {
        let c = RealClock::new();
        let a = c.now_ns();
        c.wait_ns(1_000_000);
        let b = c.now_ns();
        assert!(b >= a + 1_000_000, "sleep must advance the clock: {a} → {b}");
    }
}
