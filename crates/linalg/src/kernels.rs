//! Explicit 8-lane f32 kernels for the training hot path.
//! audit: module unwrap — lane/block index arithmetic is bounded by
//! caller-checked dims and verified lane-for-lane against the scalar oracles in
//! the kernel_diff differential suite.
//!
//! Every inner loop that bounds CKAT epoch time — gather/scatter-add,
//! (transposed) matmul, row-wise dot/axpy, fused activation gradients,
//! segment-softmax/segment-sum — lives here in two renderings:
//!
//! * [`lanes`] — manually unrolled over [`LANES`] independent f32
//!   accumulator lanes, written so LLVM turns each lane loop into packed
//!   vector arithmetic (no external SIMD crate, no intrinsics);
//! * [`scalar`] — the naive one-element-at-a-time differential oracle.
//!
//! On x86-64 the dispatcher additionally recompiles the *identical*
//! [`lanes`] bodies under `#[target_feature(enable = "avx2,fma")]` and
//! picks that rendering when the CPU supports both (the default Rust
//! x86-64 baseline is SSE2, which halves the vector width the lane loops
//! can use). Every multiply-accumulate in the reducing/matmul kernels is
//! an *explicit* [`f32::mul_add`] — a single-rounding IEEE fused
//! multiply-add that produces the same bits in every rendering (`vfmadd`
//! under the feature gate, libm `fmaf` on the baseline and in the
//! oracle). What the contract bans is the *compiler* choosing to
//! contract (Rust never does); an explicit fma is just another pinned
//! operation, so all three renderings stay bitwise-identical —
//! `kernel_diff.rs` and `kernel_bench` verify that on whatever path the
//! host actually takes.
//!
//! # The lane-fold determinism contract
//!
//! Float addition is not associative, so a vectorized reduction is only
//! deterministic if its association order is pinned. Every reducing
//! kernel in this module follows one contract, the lane-level
//! generalization of the workspace's `fold_ordered` pattern:
//!
//! 1. element `i` of the reduction belongs to lane `i % LANES`;
//! 2. each lane accumulates its elements in increasing `i`;
//! 3. the [`LANES`] partial sums fold in the fixed tree order of
//!    [`fold_lanes`]: `((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))`.
//!
//! The [`scalar`] oracle implements the *same* contract with plain
//! indexed loops, which is what makes "vectorized ≡ scalar" a **bitwise**
//! statement rather than a tolerance (`crates/linalg/tests/kernel_diff.rs`
//! proves it for every kernel, including ragged tails and empty inputs).
//! Kernels that only stream independent lanes (scatter-add, axpy,
//! hadamard, fused activation gradients) never re-associate anything and
//! are bitwise-stable by construction; they still ship both renderings so
//! the oracle stays total.
//!
//! # Tiling parameters
//!
//! [`matmul_rows_into`] register-blocks each output row: a 16-column
//! stack tile (`lanes::RB`) accumulates across the whole `k` walk, so
//! `out` traffic drops to one load + one store per block while `b` is
//! read in column strips ([`TILE_K`] documents the `k`-panel bound that
//! keeps a `b` strip L1-resident for the widths this workspace uses).
//! [`matmul_transpose_b_rows_into`] processes [`TILE_J`]-row blocks of
//! `b` so each block is reused across all rows of `a` from L1 instead of
//! re-streaming from L2/DRAM. Neither blocking scheme changes the
//! per-element accumulation order (each output element still sees plain
//! increasing `k`/`j`), so tiling is invisible to the determinism
//! contract.
//!
//! # Adding a kernel
//!
//! 1. Write the [`scalar`] rendering first; if it reduces floats, express
//!    it through lane accumulators + [`fold_lanes`] (the `lane-fold`
//!    audit rule flags single-accumulator reductions in this file).
//! 2. Mirror it in [`lanes`] with `chunks_exact(LANES)` bodies; the tail
//!    must feed remainder element `j` into lane `j`, exactly like the
//!    oracle's `i % LANES` assignment.
//! 3. Add a dispatching wrapper, a case to `kernel_diff.rs` (odd sizes,
//!    empty inputs), and a row to `kernel_bench`.

use crate::ops;
use std::sync::atomic::{AtomicBool, Ordering};

/// Accumulator lanes per reducing kernel — matches one AVX2 register of
/// f32 and is enough independent add chains to hide FP add latency on
/// anything newer.
pub const LANES: usize = 8;

/// When set, every dispatching kernel routes to the [`scalar`] oracle
/// instead of the [`lanes`] rendering. The two are bitwise-identical (see
/// the module docs), so this is a debugging/verification switch, not a
/// numerics switch.
static FORCE_SCALAR: AtomicBool = AtomicBool::new(false);

/// Route all dispatching kernels to the [`scalar`] oracle (`true`) or
/// back to the [`lanes`] rendering (`false`). Used by differential tests
/// and `fkgserve bench`'s exactness gate; training never calls this.
pub fn set_scalar_kernels(on: bool) {
    FORCE_SCALAR.store(on, Ordering::Relaxed);
}

/// True when [`set_scalar_kernels`] has routed kernels to the oracle.
pub fn scalar_kernels() -> bool {
    FORCE_SCALAR.load(Ordering::Relaxed)
}

/// Fold [`LANES`] partial sums in the contract's fixed tree order:
/// `((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))`.
#[inline(always)]
pub fn fold_lanes(acc: [f32; LANES]) -> f32 {
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]))
}

/// `k`-panel height of [`matmul_rows_into`]: 64 rows of a ≤256-wide `b`
/// panel occupy ≤64 KiB, within reach of L1/L2 while one output row
/// accumulates.
pub const TILE_K: usize = 64;

/// `b`-row block of [`matmul_transpose_b_rows_into`]: 32 rows × ≤256
/// columns ≤ 32 KiB, so a block stays L1-resident while every row of `a`
/// dots against it.
pub const TILE_J: usize = 32;

/// True once the host is known to support AVX2 *and* FMA (x86-64
/// only; cached
/// after the first query). Determinism is unaffected either way — the
/// AVX2 rendering is the same source compiled wider — so this only
/// selects codegen, never numerics.
#[cfg(target_arch = "x86_64")]
#[inline(always)]
fn avx2_enabled() -> bool {
    use std::sync::atomic::AtomicU8;
    // 0 = unknown, 1 = absent, 2 = present.
    static STATE: AtomicU8 = AtomicU8::new(0);
    match STATE.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => {
            let on = std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma");
            STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
            on
        }
    }
}

macro_rules! dispatch {
    ($name:ident($($arg:expr),*)) => {{
        #[cfg(target_arch = "x86_64")]
        {
            if scalar_kernels() {
                scalar::$name($($arg),*)
            } else if avx2_enabled() {
                // SAFETY: `avx2_enabled()` just verified AVX2 + FMA support.
                unsafe { avx2::$name($($arg),*) }
            } else {
                lanes::$name($($arg),*)
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            if scalar_kernels() {
                scalar::$name($($arg),*)
            } else {
                lanes::$name($($arg),*)
            }
        }
    }};
}

/// Dispatch for memory-bound kernels (elementwise maps, gathers): the
/// wider AVX2 rendering buys nothing once DRAM bandwidth is the limit —
/// measured on `kernel_bench` it *loses* to the baseline codegen — so
/// these skip the `avx2` tier and go straight to [`lanes`].
macro_rules! dispatch_membound {
    ($name:ident($($arg:expr),*)) => {{
        if scalar_kernels() {
            scalar::$name($($arg),*)
        } else {
            lanes::$name($($arg),*)
        }
    }};
}

/// Dispatch for pure independent-lane streams (fused activation
/// backwards, the gather-scale-segment-sum forward): `kernel_bench`
/// measured the `chunks_exact(LANES)` bookkeeping of the unrolled
/// rendering 8–27% *slower* than the flat zip loop, which LLVM already
/// auto-vectorizes — there is no reduction to pin, so the flat [`scalar`]
/// rendering *is* the vector rendering and both are bitwise-identical by
/// construction. These kernels therefore route to [`scalar`]
/// unconditionally; the [`lanes`] twins remain as differential-test
/// fodder so the oracle surface stays total.
macro_rules! dispatch_flat {
    ($name:ident($($arg:expr),*)) => {{
        scalar::$name($($arg),*)
    }};
}

// ----------------------------------------------------------------------
// Dispatching wrappers (the public kernel surface)
// ----------------------------------------------------------------------

/// Lane-folded dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    dispatch!(dot(a, b))
}

/// Lane-folded sum of a slice.
#[inline]
pub fn sum(a: &[f32]) -> f32 {
    dispatch!(sum(a))
}

/// Fused CKAT attention reduction `Σᵢ t[i] · tanh(h[i] + r[i])`
/// (the `W_r e_h + e_r → tanh → dot` chain collapsed to one pass).
#[inline]
pub fn fused_tanh_dot(t: &[f32], h: &[f32], r: &[f32]) -> f32 {
    debug_assert_eq!(t.len(), h.len());
    debug_assert_eq!(t.len(), r.len());
    dispatch!(fused_tanh_dot(t, h, r))
}

/// `out += a_rows · b` for row-major `a_rows` (`?×k`), `b` (`k×n`),
/// `out` (same row count as `a_rows`, width `n`). Each output element
/// accumulates over `k` in increasing order; rows with `a == 0.0` are
/// skipped in both renderings (identical bits — the skipped term is an
/// exact `±0.0` contribution to a non-negative-zero accumulator).
#[inline]
pub fn matmul_rows_into(a_rows: &[f32], k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(a_rows.len() / k.max(1) * n, out.len());
    dispatch!(matmul_rows_into(a_rows, k, b, n, out))
}

/// `out[i·n + j] += a_rows[i] · b[j]` — the `a · bᵀ` kernel over
/// row-major `a_rows` (`?×k`) and `b` (`n×k`); every output element is a
/// lane-folded length-`k` dot product.
#[inline]
pub fn matmul_transpose_b_rows_into(
    a_rows: &[f32],
    k: usize,
    b: &[f32],
    n: usize,
    out: &mut [f32],
) {
    debug_assert_eq!(b.len(), n * k);
    dispatch!(matmul_transpose_b_rows_into(a_rows, k, b, n, out))
}

/// Multi-query scoring block: `out[q·n_items + j] = query_q ⋅ item_j`
/// for row-major `queries` (`B×d`) and `items` (`n_items×d`) —
/// *assignment* semantics over a reusable buffer, so retrieval callers
/// never pay a zeroing pass plus an accumulate. Every output element is
/// the same lane-folded length-`d` dot as [`dot`] /
/// [`matmul_transpose_b_rows_into`], so a score computed through a block
/// of any batch size `B` is bitwise-identical to the per-query
/// `dot(query, item)` the unbatched paths compute.
#[inline]
pub fn score_block_into(queries: &[f32], d: usize, items: &[f32], n_items: usize, out: &mut [f32]) {
    debug_assert_eq!(items.len(), n_items * d);
    debug_assert_eq!(queries.len() / d.max(1) * n_items, out.len());
    dispatch!(score_block_into(queries, d, items, n_items, out))
}

/// `out (m×n) += aᵀ · b` for row-major `a` (`r×m`) and `b` (`r×n`),
/// accumulated as a sequence of rank-1 outer products in increasing row
/// order (zero `a` entries skipped, as in [`matmul_rows_into`]).
#[inline]
pub fn transpose_matmul_into(a: &[f32], m: usize, b: &[f32], n: usize, out: &mut [f32]) {
    debug_assert_eq!(out.len(), m * n);
    dispatch!(transpose_matmul_into(a, m, b, n, out))
}

/// Gather rows: `out[i] = src[indices[i]]` over row-major storage with
/// `cols` columns.
#[inline]
pub fn gather_rows_into(src: &[f32], cols: usize, indices: &[usize], out: &mut [f32]) {
    debug_assert_eq!(out.len(), indices.len() * cols);
    dispatch_membound!(gather_rows_into(src, cols, indices, out))
}

/// Scatter-add rows: `dst[indices[i]] += src[i]`, visiting `i` in
/// increasing order (the scatter-order contract `SparseRowGrad` and the
/// dense gather backward both rely on). Lanes are independent columns,
/// so no re-association happens.
#[inline]
pub fn scatter_add_rows(dst: &mut [f32], cols: usize, indices: &[usize], src: &[f32]) {
    debug_assert_eq!(src.len(), indices.len() * cols);
    dispatch_membound!(scatter_add_rows(dst, cols, indices, src))
}

/// Segment-sum over CSR-style segment ids: `out[seg_of_row[i]] += src[i]`
/// — [`scatter_add_rows`] under its message-passing name (paper Eq. 3).
#[inline]
pub fn segment_sum_into(src: &[f32], cols: usize, seg_of_row: &[usize], out: &mut [f32]) {
    scatter_add_rows(out, cols, seg_of_row, src);
}

/// Fused attention aggregation `out[heads[e]] += h[tails[e]] · att[e]`,
/// in edge order — the `gather_rows → scale_rows → segment_sum` chain in
/// one pass, with no `E × cols` intermediates. Each product is rounded
/// once and then added, exactly as the unfused chain rounds the scaled
/// message before segment-summing it, so the output bits match the
/// chain's.
#[inline]
pub fn gather_scale_segment_sum_into(
    h: &[f32],
    cols: usize,
    tails: &[usize],
    att: &[f32],
    heads: &[usize],
    out: &mut [f32],
) {
    debug_assert_eq!(tails.len(), heads.len());
    debug_assert_eq!(tails.len(), att.len());
    dispatch_flat!(gather_scale_segment_sum_into(h, cols, tails, att, heads, out))
}

/// Backward of [`gather_scale_segment_sum_into`], folded straight into
/// live gradient buffers: for every edge `e`, in edge order,
/// `datt[e] += g[heads[e]] ⋅ h[tails[e]]` (lane-folded, the
/// [`rowwise_dot_into`] contract) and `dh[tails[e]] += g[heads[e]] · att[e]`
/// (plain product-then-add, the [`scatter_add_rows`] rounding). These are
/// the exact values and the exact accumulation order of the unfused
/// segment-sum/mul-broadcast/gather backward chain.
#[allow(clippy::too_many_arguments)]
#[inline]
pub fn gather_scale_segment_sum_grad(
    g: &[f32],
    h: &[f32],
    cols: usize,
    tails: &[usize],
    att: &[f32],
    heads: &[usize],
    dh: &mut [f32],
    datt: &mut [f32],
) {
    debug_assert_eq!(tails.len(), heads.len());
    debug_assert_eq!(tails.len(), att.len());
    debug_assert_eq!(tails.len(), datt.len());
    debug_assert_eq!(h.len(), dh.len());
    dispatch!(gather_scale_segment_sum_grad(g, h, cols, tails, att, heads, dh, datt))
}

/// `dst += alpha · src`, elementwise.
#[inline]
pub fn axpy(dst: &mut [f32], alpha: f32, src: &[f32]) {
    debug_assert_eq!(dst.len(), src.len());
    dispatch_membound!(axpy(dst, alpha, src))
}

/// `dst += src`, elementwise.
#[inline]
pub fn add_assign(dst: &mut [f32], src: &[f32]) {
    debug_assert_eq!(dst.len(), src.len());
    dispatch_membound!(add_assign(dst, src))
}

/// Hadamard-accumulate `dst += a ∘ b`, elementwise.
#[inline]
pub fn hadamard_acc(dst: &mut [f32], a: &[f32], b: &[f32]) {
    debug_assert_eq!(dst.len(), a.len());
    debug_assert_eq!(dst.len(), b.len());
    dispatch_membound!(hadamard_acc(dst, a, b))
}

/// Scale row `r` of a row-major buffer by `w[r]`.
#[inline]
pub fn scale_rows(data: &mut [f32], cols: usize, w: &[f32]) {
    debug_assert_eq!(data.len(), w.len() * cols);
    dispatch_membound!(scale_rows(data, cols, w))
}

/// Per-row lane-folded dot products: `out[i] = a_row_i · b_row_i`.
#[inline]
pub fn rowwise_dot_into(a: &[f32], b: &[f32], cols: usize, out: &mut [f32]) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), out.len() * cols);
    dispatch!(rowwise_dot_into(a, b, cols, out))
}

/// Fused backward of the attention row-scale (`MulBroadcastCol`): one
/// pass computes `da[r][c] = g[r][c] · w[r]` (elementwise, the same
/// product order as [`scale_rows`]) and `dw[r] = g_row_r ⋅ a_row_r`
/// (lane-folded, the same contract as [`rowwise_dot_into`]), reading `g`
/// once instead of streaming it through the clone + scale + rowwise-dot
/// trio.
#[inline]
pub fn mul_broadcast_col_grad(
    g: &[f32],
    a: &[f32],
    w: &[f32],
    cols: usize,
    da: &mut [f32],
    dw: &mut [f32],
) {
    debug_assert_eq!(g.len(), a.len());
    debug_assert_eq!(g.len(), da.len());
    debug_assert_eq!(dw.len(), w.len());
    dispatch!(mul_broadcast_col_grad(g, a, w, cols, da, dw))
}

/// Accumulating twin of [`mul_broadcast_col_grad`]: folds both halves
/// straight into live gradient buffers (`dw[r] += g_row ⋅ a_row`,
/// `da[r][c] += g[r][c] · w[r]`). Each element performs
/// `existing + computed` — exactly the adds a `Matrix::add_assign` of a
/// separate temporary would have done — so routing a backward arm
/// through this kernel leaves every bit unchanged while skipping the
/// temporary allocation and its extra full-matrix pass.
#[inline]
pub fn mul_broadcast_col_grad_acc(
    g: &[f32],
    a: &[f32],
    w: &[f32],
    cols: usize,
    da: &mut [f32],
    dw: &mut [f32],
) {
    debug_assert_eq!(g.len(), a.len());
    debug_assert_eq!(g.len(), da.len());
    debug_assert_eq!(dw.len(), w.len());
    dispatch!(mul_broadcast_col_grad_acc(g, a, w, cols, da, dw))
}

/// Fused LeakyReLU backward: `out[i] = leaky_relu'(x[i]) · g[i]` in one
/// pass (same product, same bits as the former map-then-hadamard pair).
#[inline]
pub fn leaky_relu_grad_mul(x: &[f32], g: &[f32], out: &mut [f32]) {
    dispatch_flat!(leaky_relu_grad_mul(x, g, out))
}

/// Fused ReLU backward: `out[i] = relu'(x[i]) · g[i]`.
#[inline]
pub fn relu_grad_mul(x: &[f32], g: &[f32], out: &mut [f32]) {
    dispatch_flat!(relu_grad_mul(x, g, out))
}

/// Fused tanh backward from the forward *output*:
/// `out[i] = (1 − y[i]²) · g[i]`.
#[inline]
pub fn tanh_grad_mul(y: &[f32], g: &[f32], out: &mut [f32]) {
    dispatch_flat!(tanh_grad_mul(y, g, out))
}

/// Fused sigmoid backward from the forward *output*:
/// `out[i] = y[i] · (1 − y[i]) · g[i]`.
#[inline]
pub fn sigmoid_grad_mul(y: &[f32], g: &[f32], out: &mut [f32]) {
    dispatch_flat!(sigmoid_grad_mul(y, g, out))
}

/// Fused log-sigmoid backward: `out[i] = σ(−x[i]) · g[i]`.
#[inline]
pub fn log_sigmoid_grad_mul(x: &[f32], g: &[f32], out: &mut [f32]) {
    dispatch_flat!(log_sigmoid_grad_mul(x, g, out))
}

/// Numerically stable softmax over one span, with the span's exp-sum
/// reduced under the lane-fold contract. Empty spans are a no-op.
#[inline]
pub fn softmax_in_place(xs: &mut [f32]) {
    dispatch_membound!(softmax_in_place(xs))
}

/// Softmax over contiguous CSR segments of a score column: segment `s`
/// spans `offsets[s] .. offsets[s+1]` (paper Eq. 5).
#[inline]
pub fn segment_softmax_in_place(data: &mut [f32], offsets: &[usize]) {
    for w in offsets.windows(2) {
        softmax_in_place(&mut data[w[0]..w[1]]);
    }
}

/// Segment-softmax backward: per segment,
/// `da[i] = y[i] · (g[i] − Σⱼ g[j]·y[j])` with the inner sum lane-folded.
#[inline]
pub fn segment_softmax_grad_into(y: &[f32], g: &[f32], offsets: &[usize], out: &mut [f32]) {
    debug_assert_eq!(y.len(), g.len());
    debug_assert_eq!(y.len(), out.len());
    dispatch!(segment_softmax_grad_into(y, g, offsets, out))
}

// ----------------------------------------------------------------------
// Scalar oracle
// ----------------------------------------------------------------------

/// Naive one-element-at-a-time renderings of every kernel, implementing
/// the identical lane-fold contract (module docs) — the differential
/// oracle the vectorized path is proven bitwise-equal against.
pub mod scalar {
    use super::{fold_lanes, ops, LANES};

    /// Oracle for [`super::dot`].
    pub fn dot(a: &[f32], b: &[f32]) -> f32 {
        let mut acc = [0.0f32; LANES];
        for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
            acc[i % LANES] = x.mul_add(y, acc[i % LANES]);
        }
        fold_lanes(acc)
    }

    /// Oracle for [`super::sum`].
    pub fn sum(a: &[f32]) -> f32 {
        let mut acc = [0.0f32; LANES];
        for (i, &x) in a.iter().enumerate() {
            acc[i % LANES] += x;
        }
        fold_lanes(acc)
    }

    /// Oracle for [`super::fused_tanh_dot`].
    pub fn fused_tanh_dot(t: &[f32], h: &[f32], r: &[f32]) -> f32 {
        let mut acc = [0.0f32; LANES];
        for (i, ((&tv, &hv), &rv)) in t.iter().zip(h).zip(r).enumerate() {
            acc[i % LANES] = tv.mul_add(ops::tanh(hv + rv), acc[i % LANES]);
        }
        fold_lanes(acc)
    }

    /// Oracle for [`super::matmul_rows_into`].
    pub fn matmul_rows_into(a_rows: &[f32], k: usize, b: &[f32], n: usize, out: &mut [f32]) {
        if k == 0 || n == 0 {
            return;
        }
        for (a_row, out_row) in a_rows.chunks_exact(k).zip(out.chunks_exact_mut(n)) {
            for (kk, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &b[kk * n..(kk + 1) * n];
                for j in 0..n {
                    out_row[j] = a.mul_add(b_row[j], out_row[j]);
                }
            }
        }
    }

    /// Oracle for [`super::matmul_transpose_b_rows_into`].
    pub fn matmul_transpose_b_rows_into(
        a_rows: &[f32],
        k: usize,
        b: &[f32],
        n: usize,
        out: &mut [f32],
    ) {
        if n == 0 {
            return;
        }
        let m = a_rows.len().checked_div(k).unwrap_or(out.len() / n);
        for i in 0..m {
            let a_row = &a_rows[i * k..(i + 1) * k];
            for j in 0..n {
                out[i * n + j] += dot(a_row, &b[j * k..(j + 1) * k]);
            }
        }
    }

    /// Oracle for [`super::score_block_into`]: one plain [`dot`] per
    /// (query, item) pair, written — not accumulated — into `out`.
    pub fn score_block_into(
        queries: &[f32],
        d: usize,
        items: &[f32],
        n_items: usize,
        out: &mut [f32],
    ) {
        if n_items == 0 {
            return;
        }
        if d == 0 {
            // Every score is the empty dot: assignment semantics still
            // overwrite the whole block.
            for o in out.iter_mut() {
                *o = 0.0;
            }
            return;
        }
        for (q_row, out_row) in queries.chunks_exact(d).zip(out.chunks_exact_mut(n_items)) {
            for (j, o) in out_row.iter_mut().enumerate() {
                *o = dot(q_row, &items[j * d..(j + 1) * d]);
            }
        }
    }

    /// Oracle for [`super::transpose_matmul_into`].
    pub fn transpose_matmul_into(a: &[f32], m: usize, b: &[f32], n: usize, out: &mut [f32]) {
        if m == 0 || n == 0 {
            return;
        }
        for (a_row, b_row) in a.chunks_exact(m).zip(b.chunks_exact(n)) {
            for (i, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let out_row = &mut out[i * n..(i + 1) * n];
                for j in 0..n {
                    out_row[j] = av.mul_add(b_row[j], out_row[j]);
                }
            }
        }
    }

    /// Oracle for [`super::gather_rows_into`].
    pub fn gather_rows_into(src: &[f32], cols: usize, indices: &[usize], out: &mut [f32]) {
        for (dst_row, &i) in out.chunks_exact_mut(cols.max(1)).zip(indices) {
            for (c, o) in dst_row.iter_mut().enumerate() {
                *o = src[i * cols + c];
            }
        }
    }

    /// Oracle for [`super::scatter_add_rows`].
    pub fn scatter_add_rows(dst: &mut [f32], cols: usize, indices: &[usize], src: &[f32]) {
        for (src_row, &i) in src.chunks_exact(cols.max(1)).zip(indices) {
            for (c, &x) in src_row.iter().enumerate() {
                dst[i * cols + c] += x;
            }
        }
    }

    /// Oracle for [`super::axpy`].
    pub fn axpy(dst: &mut [f32], alpha: f32, src: &[f32]) {
        for (d, &s) in dst.iter_mut().zip(src) {
            *d += alpha * s;
        }
    }

    /// Oracle for [`super::add_assign`].
    pub fn add_assign(dst: &mut [f32], src: &[f32]) {
        for (d, &s) in dst.iter_mut().zip(src) {
            *d += s;
        }
    }

    /// Oracle for [`super::hadamard_acc`].
    pub fn hadamard_acc(dst: &mut [f32], a: &[f32], b: &[f32]) {
        for ((d, &x), &y) in dst.iter_mut().zip(a).zip(b) {
            *d += x * y;
        }
    }

    /// Oracle for [`super::scale_rows`].
    pub fn scale_rows(data: &mut [f32], cols: usize, w: &[f32]) {
        for (row, &s) in data.chunks_exact_mut(cols.max(1)).zip(w) {
            for x in row {
                *x *= s;
            }
        }
    }

    /// Oracle for [`super::rowwise_dot_into`].
    pub fn rowwise_dot_into(a: &[f32], b: &[f32], cols: usize, out: &mut [f32]) {
        for ((a_row, b_row), o) in
            a.chunks_exact(cols.max(1)).zip(b.chunks_exact(cols.max(1))).zip(out)
        {
            *o = dot(a_row, b_row);
        }
    }

    /// Oracle for [`super::mul_broadcast_col_grad`].
    pub fn mul_broadcast_col_grad(
        g: &[f32],
        a: &[f32],
        w: &[f32],
        cols: usize,
        da: &mut [f32],
        dw: &mut [f32],
    ) {
        let c = cols.max(1);
        for (((g_row, a_row), da_row), (o, &wr)) in g
            .chunks_exact(c)
            .zip(a.chunks_exact(c))
            .zip(da.chunks_exact_mut(c))
            .zip(dw.iter_mut().zip(w))
        {
            *o = dot(g_row, a_row);
            for (d, &gv) in da_row.iter_mut().zip(g_row) {
                *d = gv * wr;
            }
        }
    }

    /// Oracle for [`super::gather_scale_segment_sum_into`].
    pub fn gather_scale_segment_sum_into(
        h: &[f32],
        cols: usize,
        tails: &[usize],
        att: &[f32],
        heads: &[usize],
        out: &mut [f32],
    ) {
        let c = cols.max(1);
        for ((&t, &seg), &a) in tails.iter().zip(heads).zip(att) {
            let h_row = &h[t * c..t * c + cols];
            let out_row = &mut out[seg * c..seg * c + cols];
            for (o, &x) in out_row.iter_mut().zip(h_row) {
                *o += x * a;
            }
        }
    }

    /// Oracle for [`super::gather_scale_segment_sum_grad`].
    #[allow(clippy::too_many_arguments)]
    pub fn gather_scale_segment_sum_grad(
        g: &[f32],
        h: &[f32],
        cols: usize,
        tails: &[usize],
        att: &[f32],
        heads: &[usize],
        dh: &mut [f32],
        datt: &mut [f32],
    ) {
        let c = cols.max(1);
        for (((&t, &seg), &a), d) in tails.iter().zip(heads).zip(att).zip(datt.iter_mut()) {
            let g_row = &g[seg * c..seg * c + cols];
            let h_row = &h[t * c..t * c + cols];
            *d += dot(g_row, h_row);
            let dh_row = &mut dh[t * c..t * c + cols];
            for (o, &gv) in dh_row.iter_mut().zip(g_row) {
                *o += gv * a;
            }
        }
    }

    /// Oracle for [`super::mul_broadcast_col_grad_acc`].
    pub fn mul_broadcast_col_grad_acc(
        g: &[f32],
        a: &[f32],
        w: &[f32],
        cols: usize,
        da: &mut [f32],
        dw: &mut [f32],
    ) {
        let c = cols.max(1);
        for (((g_row, a_row), da_row), (o, &wr)) in g
            .chunks_exact(c)
            .zip(a.chunks_exact(c))
            .zip(da.chunks_exact_mut(c))
            .zip(dw.iter_mut().zip(w))
        {
            *o += dot(g_row, a_row);
            for (d, &gv) in da_row.iter_mut().zip(g_row) {
                *d += gv * wr;
            }
        }
    }

    /// Oracle for [`super::leaky_relu_grad_mul`].
    pub fn leaky_relu_grad_mul(x: &[f32], g: &[f32], out: &mut [f32]) {
        for ((o, &xv), &gv) in out.iter_mut().zip(x).zip(g) {
            *o = ops::leaky_relu_grad(xv) * gv;
        }
    }

    /// Oracle for [`super::relu_grad_mul`].
    pub fn relu_grad_mul(x: &[f32], g: &[f32], out: &mut [f32]) {
        for ((o, &xv), &gv) in out.iter_mut().zip(x).zip(g) {
            *o = ops::relu_grad(xv) * gv;
        }
    }

    /// Oracle for [`super::tanh_grad_mul`].
    pub fn tanh_grad_mul(y: &[f32], g: &[f32], out: &mut [f32]) {
        for ((o, &yv), &gv) in out.iter_mut().zip(y).zip(g) {
            *o = ops::tanh_grad_from_output(yv) * gv;
        }
    }

    /// Oracle for [`super::sigmoid_grad_mul`].
    pub fn sigmoid_grad_mul(y: &[f32], g: &[f32], out: &mut [f32]) {
        for ((o, &yv), &gv) in out.iter_mut().zip(y).zip(g) {
            *o = ops::sigmoid_grad_from_output(yv) * gv;
        }
    }

    /// Oracle for [`super::log_sigmoid_grad_mul`].
    pub fn log_sigmoid_grad_mul(x: &[f32], g: &[f32], out: &mut [f32]) {
        for ((o, &xv), &gv) in out.iter_mut().zip(x).zip(g) {
            *o = ops::sigmoid(-xv) * gv;
        }
    }

    /// Oracle for [`super::softmax_in_place`].
    pub fn softmax_in_place(xs: &mut [f32]) {
        if xs.is_empty() {
            return;
        }
        let mut max = f32::NEG_INFINITY;
        for &x in xs.iter() {
            max = max.max(x);
        }
        for x in xs.iter_mut() {
            *x = (*x - max).exp();
        }
        // The max element maps to exp(0) = 1, so sum >= 1 and the divide
        // is safe.
        let s = sum(xs);
        for x in xs.iter_mut() {
            *x /= s;
        }
    }

    /// Oracle for [`super::segment_softmax_grad_into`].
    pub fn segment_softmax_grad_into(y: &[f32], g: &[f32], offsets: &[usize], out: &mut [f32]) {
        for w in offsets.windows(2) {
            let (lo, hi) = (w[0], w[1]);
            let mut acc = [0.0f32; LANES];
            for i in lo..hi {
                acc[(i - lo) % LANES] = g[i].mul_add(y[i], acc[(i - lo) % LANES]);
            }
            let sum_gy = fold_lanes(acc);
            for i in lo..hi {
                out[i] = y[i] * (g[i] - sum_gy);
            }
        }
    }
}

// ----------------------------------------------------------------------
// Vectorized (manually unrolled) renderings
// ----------------------------------------------------------------------

/// Manually unrolled 8-lane renderings. Bitwise-identical to [`scalar`]
/// under the module's lane-fold contract; the unrolled accumulator arrays
/// and `chunks_exact` bodies are what lets LLVM emit packed vector code.
pub mod lanes {
    use super::{fold_lanes, ops, LANES, TILE_J};

    /// 8-lane dot product (see the module's determinism contract).
    #[inline(always)]
    pub fn dot(a: &[f32], b: &[f32]) -> f32 {
        let mut acc = [0.0f32; LANES];
        let mut ac = a.chunks_exact(LANES);
        let mut bc = b.chunks_exact(LANES);
        for (ca, cb) in (&mut ac).zip(&mut bc) {
            for j in 0..LANES {
                acc[j] = ca[j].mul_add(cb[j], acc[j]);
            }
        }
        for (j, (&x, &y)) in ac.remainder().iter().zip(bc.remainder()).enumerate() {
            acc[j] = x.mul_add(y, acc[j]);
        }
        fold_lanes(acc)
    }

    /// 8-lane sum.
    #[inline(always)]
    pub fn sum(a: &[f32]) -> f32 {
        let mut acc = [0.0f32; LANES];
        let mut chunks = a.chunks_exact(LANES);
        for c in &mut chunks {
            for j in 0..LANES {
                acc[j] += c[j];
            }
        }
        for (j, &x) in chunks.remainder().iter().enumerate() {
            acc[j] += x;
        }
        fold_lanes(acc)
    }

    /// Fused `Σ t·tanh(h+r)` with 8 accumulator lanes. `tanh` itself is
    /// evaluated per element (libm has no packed tanh); the win is one
    /// pass over the operands and no temporaries.
    #[inline(always)]
    pub fn fused_tanh_dot(t: &[f32], h: &[f32], r: &[f32]) -> f32 {
        let mut acc = [0.0f32; LANES];
        let mut tc = t.chunks_exact(LANES);
        let mut hc = h.chunks_exact(LANES);
        let mut rc = r.chunks_exact(LANES);
        for ((ct, ch), cr) in (&mut tc).zip(&mut hc).zip(&mut rc) {
            for j in 0..LANES {
                acc[j] = ct[j].mul_add(ops::tanh(ch[j] + cr[j]), acc[j]);
            }
        }
        for (j, ((&tv, &hv), &rv)) in
            tc.remainder().iter().zip(hc.remainder()).zip(rc.remainder()).enumerate()
        {
            acc[j] = tv.mul_add(ops::tanh(hv + rv), acc[j]);
        }
        fold_lanes(acc)
    }

    /// Unrolled saxpy body shared by the matmul kernels: `out += a · b`.
    #[inline(always)]
    fn saxpy(a: f32, b: &[f32], out: &mut [f32]) {
        let mut bc = b.chunks_exact(LANES);
        let mut oc = out.chunks_exact_mut(LANES);
        for (cb, co) in (&mut bc).zip(&mut oc) {
            for j in 0..LANES {
                co[j] = a.mul_add(cb[j], co[j]);
            }
        }
        for (o, &bv) in oc.into_remainder().iter_mut().zip(bc.remainder()) {
            *o = a.mul_add(bv, *o);
        }
    }

    /// Register width of [`matmul_rows_into`]'s output block: 16 f32 =
    /// two vector registers' worth of accumulators held across the whole
    /// `k` walk, so `out` is loaded and stored once per block instead of
    /// once per `k` step.
    const RB: usize = 16;

    /// Register-blocked `out += a_rows · b`: each 16-column block of an
    /// output row accumulates in a stack tile across the full `k` walk
    /// (one load + one store of `out` per block), with `b` read in
    /// column-block strips. Per output element the accumulation order is
    /// plain increasing `k` — exactly the scalar oracle's — so blocking
    /// changes memory traffic, not bits.
    #[inline(always)]
    pub fn matmul_rows_into(a_rows: &[f32], k: usize, b: &[f32], n: usize, out: &mut [f32]) {
        if k == 0 || n == 0 {
            return;
        }
        for (a_row, out_row) in a_rows.chunks_exact(k).zip(out.chunks_exact_mut(n)) {
            let mut j0 = 0;
            while j0 + RB <= n {
                let mut acc = [0.0f32; RB];
                acc.copy_from_slice(&out_row[j0..j0 + RB]);
                for (kk, &a) in a_row.iter().enumerate() {
                    if a == 0.0 {
                        continue;
                    }
                    let brow = &b[kk * n + j0..kk * n + j0 + RB];
                    for j in 0..RB {
                        acc[j] = a.mul_add(brow[j], acc[j]);
                    }
                }
                out_row[j0..j0 + RB].copy_from_slice(&acc);
                j0 += RB; // audit: lanes — integer column stride, not a float reduction
            }
            if j0 < n {
                // Ragged column tail: per-`k` saxpy over the remainder.
                for (kk, &a) in a_row.iter().enumerate() {
                    if a == 0.0 {
                        continue;
                    }
                    saxpy(a, &b[kk * n + j0..(kk + 1) * n], &mut out_row[j0..]);
                }
            }
        }
    }

    /// Blocked-transposed `out += a_rows · bᵀ`: `b` rows are processed in
    /// [`TILE_J`] blocks reused across all `a` rows; each output element
    /// is one 8-lane [`dot`]. Within a block, `b`-row *pairs* share each
    /// `a_row` load — the two dots keep their own lane accumulators, so
    /// pairing changes load traffic, not any accumulation order.
    #[inline(always)]
    pub fn matmul_transpose_b_rows_into(
        a_rows: &[f32],
        k: usize,
        b: &[f32],
        n: usize,
        out: &mut [f32],
    ) {
        if n == 0 {
            return;
        }
        let m = a_rows.len().checked_div(k).unwrap_or(out.len() / n);
        for j0 in (0..n).step_by(TILE_J) {
            let j1 = (j0 + TILE_J).min(n);
            for i in 0..m {
                let a_row = &a_rows[i * k..(i + 1) * k];
                let out_row = &mut out[i * n..(i + 1) * n];
                let mut j = j0;
                while j + 2 <= j1 {
                    let (d0, d1) =
                        dot_pair(a_row, &b[j * k..(j + 1) * k], &b[(j + 1) * k..(j + 2) * k]);
                    out_row[j] += d0;
                    out_row[j + 1] += d1;
                    j += 2; // audit: lanes — integer stride bookkeeping, not a float reduction
                }
                if j < j1 {
                    out_row[j] += dot(a_row, &b[j * k..(j + 1) * k]);
                }
            }
        }
    }

    /// Multi-query scoring block with the same [`TILE_J`] item blocking
    /// as [`matmul_transpose_b_rows_into`] — an item block stays
    /// L1-resident while every query row dots against it, and item-row
    /// *pairs* share each query load via [`dot_pair`]. Assignment
    /// semantics: each output element is written exactly once (the item
    /// tiles partition `0..n_items`), as one lane-folded [`dot`].
    #[inline(always)]
    pub fn score_block_into(
        queries: &[f32],
        d: usize,
        items: &[f32],
        n_items: usize,
        out: &mut [f32],
    ) {
        if n_items == 0 {
            return;
        }
        if d == 0 {
            for o in out.iter_mut() {
                *o = 0.0;
            }
            return;
        }
        let b = queries.len() / d;
        for j0 in (0..n_items).step_by(TILE_J) {
            let j1 = (j0 + TILE_J).min(n_items);
            for i in 0..b {
                let q_row = &queries[i * d..(i + 1) * d];
                let out_row = &mut out[i * n_items..(i + 1) * n_items];
                let mut j = j0;
                while j + 2 <= j1 {
                    let (s0, s1) = dot_pair(
                        q_row,
                        &items[j * d..(j + 1) * d],
                        &items[(j + 1) * d..(j + 2) * d],
                    );
                    out_row[j] = s0;
                    out_row[j + 1] = s1;
                    j += 2; // audit: lanes — integer stride bookkeeping, not a float reduction
                }
                if j < j1 {
                    out_row[j] = dot(q_row, &items[j * d..(j + 1) * d]);
                }
            }
        }
    }

    /// Two independent 8-lane dots of `a` against `b0` and `b1`, sharing
    /// the `a` loads. Each dot follows the lane-fold contract on its own
    /// accumulator array — bitwise-identical to two [`dot`] calls.
    #[inline(always)]
    fn dot_pair(a: &[f32], b0: &[f32], b1: &[f32]) -> (f32, f32) {
        let mut acc0 = [0.0f32; LANES];
        let mut acc1 = [0.0f32; LANES];
        let mut ac = a.chunks_exact(LANES);
        let mut b0c = b0.chunks_exact(LANES);
        let mut b1c = b1.chunks_exact(LANES);
        for ((ca, cb0), cb1) in (&mut ac).zip(&mut b0c).zip(&mut b1c) {
            for j in 0..LANES {
                acc0[j] = ca[j].mul_add(cb0[j], acc0[j]);
                acc1[j] = ca[j].mul_add(cb1[j], acc1[j]);
            }
        }
        for (j, ((&x, &y0), &y1)) in
            ac.remainder().iter().zip(b0c.remainder()).zip(b1c.remainder()).enumerate()
        {
            acc0[j] = x.mul_add(y0, acc0[j]);
            acc1[j] = x.mul_add(y1, acc1[j]);
        }
        (fold_lanes(acc0), fold_lanes(acc1))
    }

    /// `out (m×n) += aᵀ · b` as unrolled rank-1 updates in row order.
    /// Data rows are walked in *pairs* so each `out` row is loaded and
    /// stored once per two updates; within the fused pass the two terms
    /// are still added sequentially (`o += a₀·b₀[j]` then `o += a₁·b₁[j]`),
    /// so the accumulation order — and the zero-skip — match the scalar
    /// oracle exactly.
    #[inline(always)]
    pub fn transpose_matmul_into(a: &[f32], m: usize, b: &[f32], n: usize, out: &mut [f32]) {
        if m == 0 || n == 0 {
            return;
        }
        let r = a.len() / m;
        let mut r0 = 0;
        while r0 + 2 <= r {
            let a0 = &a[r0 * m..(r0 + 1) * m];
            let a1 = &a[(r0 + 1) * m..(r0 + 2) * m];
            let b0 = &b[r0 * n..(r0 + 1) * n];
            let b1 = &b[(r0 + 1) * n..(r0 + 2) * n];
            for i in 0..m {
                let (av0, av1) = (a0[i], a1[i]);
                let out_row = &mut out[i * n..(i + 1) * n];
                if av0 != 0.0 && av1 != 0.0 {
                    for ((o, &x0), &x1) in out_row.iter_mut().zip(b0).zip(b1) {
                        *o = av0.mul_add(x0, *o);
                        *o = av1.mul_add(x1, *o);
                    }
                } else if av0 != 0.0 {
                    saxpy(av0, b0, out_row);
                } else if av1 != 0.0 {
                    saxpy(av1, b1, out_row);
                }
            }
            r0 += 2; // audit: lanes — integer stride bookkeeping, not a float reduction
        }
        if r0 < r {
            let a_row = &a[r0 * m..(r0 + 1) * m];
            let b_row = &b[r0 * n..(r0 + 1) * n];
            for (i, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                saxpy(av, b_row, &mut out[i * n..(i + 1) * n]);
            }
        }
    }

    /// Row gather — `copy_from_slice` per row (memcpy is already the
    /// vector rendering).
    #[inline(always)]
    pub fn gather_rows_into(src: &[f32], cols: usize, indices: &[usize], out: &mut [f32]) {
        for (dst_row, &i) in out.chunks_exact_mut(cols.max(1)).zip(indices) {
            dst_row.copy_from_slice(&src[i * cols..(i + 1) * cols]);
        }
    }

    /// Row scatter-add; rows visit in increasing `i` (the scatter-order
    /// contract). Columns are independent lanes, so the flat zip loop —
    /// which LLVM vectorizes without the `chunks_exact` bookkeeping that
    /// dominates at typical embedding widths — is bitwise-identical to
    /// any unrolling.
    #[inline(always)]
    pub fn scatter_add_rows(dst: &mut [f32], cols: usize, indices: &[usize], src: &[f32]) {
        for (src_row, &i) in src.chunks_exact(cols.max(1)).zip(indices) {
            let base = i * cols;
            for (c, &x) in src_row.iter().enumerate() {
                dst[base + c] += x;
            }
        }
    }

    /// Unrolled `dst += alpha · src`.
    #[inline(always)]
    pub fn axpy(dst: &mut [f32], alpha: f32, src: &[f32]) {
        let mut dc = dst.chunks_exact_mut(LANES);
        let mut sc = src.chunks_exact(LANES);
        for (cd, cs) in (&mut dc).zip(&mut sc) {
            for j in 0..LANES {
                cd[j] += alpha * cs[j];
            }
        }
        for (d, &s) in dc.into_remainder().iter_mut().zip(sc.remainder()) {
            *d += alpha * s;
        }
    }

    /// Unrolled `dst += src`.
    #[inline(always)]
    pub fn add_assign(dst: &mut [f32], src: &[f32]) {
        let mut dc = dst.chunks_exact_mut(LANES);
        let mut sc = src.chunks_exact(LANES);
        for (cd, cs) in (&mut dc).zip(&mut sc) {
            for j in 0..LANES {
                cd[j] += cs[j];
            }
        }
        for (d, &s) in dc.into_remainder().iter_mut().zip(sc.remainder()) {
            *d += s;
        }
    }

    /// Unrolled `dst += a ∘ b`.
    #[inline(always)]
    pub fn hadamard_acc(dst: &mut [f32], a: &[f32], b: &[f32]) {
        let mut dc = dst.chunks_exact_mut(LANES);
        let mut ac = a.chunks_exact(LANES);
        let mut bc = b.chunks_exact(LANES);
        for ((cd, ca), cb) in (&mut dc).zip(&mut ac).zip(&mut bc) {
            for j in 0..LANES {
                cd[j] += ca[j] * cb[j];
            }
        }
        for ((d, &x), &y) in dc.into_remainder().iter_mut().zip(ac.remainder()).zip(bc.remainder())
        {
            *d += x * y;
        }
    }

    /// Row scaling with unrolled column lanes.
    #[inline(always)]
    pub fn scale_rows(data: &mut [f32], cols: usize, w: &[f32]) {
        for (row, &s) in data.chunks_exact_mut(cols.max(1)).zip(w) {
            let mut rc = row.chunks_exact_mut(LANES);
            for cr in &mut rc {
                for x in cr {
                    *x *= s;
                }
            }
            for x in rc.into_remainder() {
                *x *= s;
            }
        }
    }

    /// Per-row 8-lane dots.
    #[inline(always)]
    pub fn rowwise_dot_into(a: &[f32], b: &[f32], cols: usize, out: &mut [f32]) {
        for ((a_row, b_row), o) in
            a.chunks_exact(cols.max(1)).zip(b.chunks_exact(cols.max(1))).zip(out)
        {
            *o = dot(a_row, b_row);
        }
    }

    /// One-pass [`super::mul_broadcast_col_grad`]: the dot reuses this
    /// module's lane-folded [`dot`]; the row scale is an independent-lane
    /// map, so the flat loop is bitwise-identical to any unrolling.
    #[inline(always)]
    pub fn mul_broadcast_col_grad(
        g: &[f32],
        a: &[f32],
        w: &[f32],
        cols: usize,
        da: &mut [f32],
        dw: &mut [f32],
    ) {
        let c = cols.max(1);
        for (((g_row, a_row), da_row), (o, &wr)) in g
            .chunks_exact(c)
            .zip(a.chunks_exact(c))
            .zip(da.chunks_exact_mut(c))
            .zip(dw.iter_mut().zip(w))
        {
            *o = dot(g_row, a_row);
            for (d, &gv) in da_row.iter_mut().zip(g_row) {
                *d = gv * wr;
            }
        }
    }

    /// Fused attention aggregation; a per-edge scatter walk whose inner
    /// loop is an independent-lane map, so the flat rendering is
    /// bitwise-identical to any unrolling.
    #[inline(always)]
    pub fn gather_scale_segment_sum_into(
        h: &[f32],
        cols: usize,
        tails: &[usize],
        att: &[f32],
        heads: &[usize],
        out: &mut [f32],
    ) {
        let c = cols.max(1);
        for ((&t, &seg), &a) in tails.iter().zip(heads).zip(att) {
            let h_row = &h[t * c..t * c + cols];
            let out_row = &mut out[seg * c..seg * c + cols];
            for (o, &x) in out_row.iter_mut().zip(h_row) {
                *o += x * a;
            }
        }
    }

    /// Backward of the fused attention aggregation: the dot reuses this
    /// module's lane-folded [`dot`]; the scatter half is an
    /// independent-lane map.
    #[allow(clippy::too_many_arguments)]
    #[inline(always)]
    pub fn gather_scale_segment_sum_grad(
        g: &[f32],
        h: &[f32],
        cols: usize,
        tails: &[usize],
        att: &[f32],
        heads: &[usize],
        dh: &mut [f32],
        datt: &mut [f32],
    ) {
        let c = cols.max(1);
        for (((&t, &seg), &a), d) in tails.iter().zip(heads).zip(att).zip(datt.iter_mut()) {
            let g_row = &g[seg * c..seg * c + cols];
            let h_row = &h[t * c..t * c + cols];
            *d += dot(g_row, h_row);
            let dh_row = &mut dh[t * c..t * c + cols];
            for (o, &gv) in dh_row.iter_mut().zip(g_row) {
                *o += gv * a;
            }
        }
    }

    /// Accumulating twin of [`mul_broadcast_col_grad`]; see the
    /// dispatcher-level docs for the bitwise argument.
    #[inline(always)]
    pub fn mul_broadcast_col_grad_acc(
        g: &[f32],
        a: &[f32],
        w: &[f32],
        cols: usize,
        da: &mut [f32],
        dw: &mut [f32],
    ) {
        let c = cols.max(1);
        for (((g_row, a_row), da_row), (o, &wr)) in g
            .chunks_exact(c)
            .zip(a.chunks_exact(c))
            .zip(da.chunks_exact_mut(c))
            .zip(dw.iter_mut().zip(w))
        {
            *o += dot(g_row, a_row);
            for (d, &gv) in da_row.iter_mut().zip(g_row) {
                *d += gv * wr;
            }
        }
    }

    macro_rules! fused_grad_mul {
        ($($(#[$doc:meta])* $name:ident via $gradf:expr;)*) => {$(
            $(#[$doc])*
            #[inline(always)]
            pub fn $name(x: &[f32], g: &[f32], out: &mut [f32]) {
                let mut oc = out.chunks_exact_mut(LANES);
                let mut xc = x.chunks_exact(LANES);
                let mut gc = g.chunks_exact(LANES);
                for ((co, cx), cg) in (&mut oc).zip(&mut xc).zip(&mut gc) {
                    for j in 0..LANES {
                        co[j] = $gradf(cx[j]) * cg[j];
                    }
                }
                for ((o, &xv), &gv) in
                    oc.into_remainder().iter_mut().zip(xc.remainder()).zip(gc.remainder())
                {
                    *o = $gradf(xv) * gv;
                }
            }
        )*};
    }

    fused_grad_mul! {
        /// Fused LeakyReLU backward (`grad(x) · g` in one unrolled pass).
        leaky_relu_grad_mul via ops::leaky_relu_grad;
        /// Fused ReLU backward.
        relu_grad_mul via ops::relu_grad;
        /// Fused tanh backward from the output.
        tanh_grad_mul via ops::tanh_grad_from_output;
        /// Fused sigmoid backward from the output.
        sigmoid_grad_mul via ops::sigmoid_grad_from_output;
        /// Fused log-sigmoid backward.
        log_sigmoid_grad_mul via |xv: f32| ops::sigmoid(-xv);
    }

    /// Softmax with an 8-lane exp-sum. The max scan stays a sequential
    /// fold in both renderings (`max` needs no lane fold to be
    /// deterministic here — both paths scan in the same order).
    #[inline(always)]
    pub fn softmax_in_place(xs: &mut [f32]) {
        if xs.is_empty() {
            return;
        }
        let mut max = f32::NEG_INFINITY;
        for &x in xs.iter() {
            max = max.max(x);
        }
        for x in xs.iter_mut() {
            *x = (*x - max).exp();
        }
        let s = sum(xs);
        for x in xs.iter_mut() {
            *x /= s;
        }
    }

    /// Segment-softmax backward with 8-lane per-segment `Σ g·y`.
    #[inline(always)]
    pub fn segment_softmax_grad_into(y: &[f32], g: &[f32], offsets: &[usize], out: &mut [f32]) {
        for w in offsets.windows(2) {
            let (lo, hi) = (w[0], w[1]);
            let sum_gy = dot(&g[lo..hi], &y[lo..hi]);
            for i in lo..hi {
                out[i] = y[i] * (g[i] - sum_gy);
            }
        }
    }
}

// ----------------------------------------------------------------------
// AVX2 rendering (x86-64)
// ----------------------------------------------------------------------

/// The [`lanes`] bodies recompiled under `#[target_feature(enable =
/// "avx2,fma")]`. Every function here is a one-line forward to its
/// `lanes` twin — the `#[inline(always)]` bodies inline into these
/// wrappers and LLVM regenerates them with 256-bit vectors and `vfmadd`
/// for the explicit [`f32::mul_add`] calls (the crate's baseline is
/// SSE2, where the same `mul_add` lowers to libm's exact `fmaf`). No
/// intrinsics, no new code paths: identical Rust source means identical
/// operations — fma is single-rounding IEEE in both lowerings — so this
/// rendering is bitwise-equal to [`lanes`] and [`scalar`] by
/// construction (and re-verified at runtime by `kernel_diff.rs` and
/// `kernel_bench` on AVX2+FMA hosts).
#[cfg(target_arch = "x86_64")]
pub mod avx2 {
    use super::lanes;

    macro_rules! avx2_wrap {
        ($( fn $name:ident($($arg:ident: $ty:ty),*) $(-> $ret:ty)?; )*) => {$(
            /// AVX2-codegen rendering of the same-named [`lanes`] kernel.
            ///
            /// # Safety
            /// The CPU must support AVX2 and FMA; the `dispatch!` macro
            /// checks both with `is_x86_feature_detected!` first.
            #[target_feature(enable = "avx2,fma")]
            #[allow(clippy::too_many_arguments)]
            // SAFETY: callers reach this only through `dispatch!`, which
            // verifies avx2+fma with `is_x86_feature_detected!`.
            pub unsafe fn $name($($arg: $ty),*) $(-> $ret)? {
                lanes::$name($($arg),*)
            }
        )*};
    }

    avx2_wrap! {
        fn dot(a: &[f32], b: &[f32]) -> f32;
        fn sum(a: &[f32]) -> f32;
        fn fused_tanh_dot(t: &[f32], h: &[f32], r: &[f32]) -> f32;
        fn matmul_rows_into(a_rows: &[f32], k: usize, b: &[f32], n: usize, out: &mut [f32]);
        fn matmul_transpose_b_rows_into(a_rows: &[f32], k: usize, b: &[f32], n: usize, out: &mut [f32]);
        fn score_block_into(queries: &[f32], d: usize, items: &[f32], n_items: usize, out: &mut [f32]);
        fn transpose_matmul_into(a: &[f32], m: usize, b: &[f32], n: usize, out: &mut [f32]);
        fn rowwise_dot_into(a: &[f32], b: &[f32], cols: usize, out: &mut [f32]);
        fn mul_broadcast_col_grad(g: &[f32], a: &[f32], w: &[f32], cols: usize, da: &mut [f32], dw: &mut [f32]);
        fn mul_broadcast_col_grad_acc(g: &[f32], a: &[f32], w: &[f32], cols: usize, da: &mut [f32], dw: &mut [f32]);
        fn gather_scale_segment_sum_grad(g: &[f32], h: &[f32], cols: usize, tails: &[usize], att: &[f32], heads: &[usize], dh: &mut [f32], datt: &mut [f32]);
        fn segment_softmax_grad_into(y: &[f32], g: &[f32], offsets: &[usize], out: &mut [f32]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_lanes_is_the_documented_tree() {
        let acc = [1e8f32, 1.0, -1e8, 1.0, 3.0, 4.0, 5.0, 6.0];
        let expect =
            ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]));
        assert_eq!(fold_lanes(acc).to_bits(), expect.to_bits());
    }

    #[test]
    fn dot_differs_from_sequential_sum_but_matches_oracle() {
        // A vector engineered so association order matters.
        let a: Vec<f32> = (0..37).map(|i| if i % 2 == 0 { 1e7 } else { -1e7 + 0.5 }).collect();
        let b = vec![1.0f32; 37];
        assert_eq!(dot(&a, &b).to_bits(), scalar::dot(&a, &b).to_bits());
    }

    #[test]
    fn scalar_mode_routes_to_oracle() {
        let a: Vec<f32> = (0..19).map(|i| i as f32 * 0.37 - 2.0).collect();
        let b: Vec<f32> = (0..19).map(|i| 1.5 - i as f32 * 0.11).collect();
        set_scalar_kernels(true);
        let s = dot(&a, &b);
        set_scalar_kernels(false);
        let v = dot(&a, &b);
        assert_eq!(s.to_bits(), v.to_bits());
        assert_eq!(s.to_bits(), scalar::dot(&a, &b).to_bits());
    }

    #[test]
    fn empty_inputs_are_safe() {
        assert_eq!(dot(&[], &[]), 0.0);
        assert_eq!(sum(&[]), 0.0);
        assert_eq!(fused_tanh_dot(&[], &[], &[]), 0.0);
        let mut out: Vec<f32> = vec![];
        matmul_rows_into(&[], 0, &[], 0, &mut out);
        softmax_in_place(&mut out);
        assert!(out.is_empty());
    }
}
