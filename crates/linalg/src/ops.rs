//! Scalar activation functions, their derivatives, and numerically stable
//! softmax helpers.
//!
//! These free functions are shared by the autograd engine (which wraps them
//! in differentiable ops) and by model code that evaluates forward-only
//! (e.g. ranking at test time).

/// Slope used on the negative side of LeakyReLU throughout the workspace
/// (matches the TensorFlow default the paper's implementation relies on).
pub const LEAKY_RELU_SLOPE: f32 = 0.2;

/// LeakyReLU activation.
#[inline(always)]
pub fn leaky_relu(x: f32) -> f32 {
    if x >= 0.0 {
        x
    } else {
        LEAKY_RELU_SLOPE * x
    }
}

/// Derivative of [`leaky_relu`] w.r.t. its input.
#[inline(always)]
pub fn leaky_relu_grad(x: f32) -> f32 {
    if x >= 0.0 {
        1.0
    } else {
        LEAKY_RELU_SLOPE
    }
}

/// ReLU activation.
#[inline(always)]
pub fn relu(x: f32) -> f32 {
    x.max(0.0)
}

/// Derivative of [`relu`] w.r.t. its input.
#[inline(always)]
pub fn relu_grad(x: f32) -> f32 {
    if x > 0.0 {
        1.0
    } else {
        0.0
    }
}

/// Hyperbolic tangent.
#[inline(always)]
pub fn tanh(x: f32) -> f32 {
    x.tanh()
}

/// Derivative of tanh expressed in terms of the *output* `y = tanh(x)`.
#[inline(always)]
pub fn tanh_grad_from_output(y: f32) -> f32 {
    1.0 - y * y
}

/// Logistic sigmoid, computed in a way that never overflows.
#[inline(always)]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Derivative of sigmoid expressed in terms of the *output*
/// `y = sigmoid(x)`.
#[inline(always)]
pub fn sigmoid_grad_from_output(y: f32) -> f32 {
    y * (1.0 - y)
}

/// `ln(sigmoid(x))` computed without intermediate overflow/underflow.
///
/// This is the per-sample BPR loss term; the naive form loses all precision
/// for large negative `x`.
#[inline(always)]
pub fn log_sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        -(-x).exp().ln_1p()
    } else {
        x - x.exp().ln_1p()
    }
}

/// In-place numerically stable softmax over a slice.
///
/// An empty slice is a no-op. A slice of identical values becomes uniform.
/// Routed through [`crate::kernels::softmax_in_place`], whose exp-sum
/// reduces under the kernel module's lane-fold contract.
pub fn softmax_in_place(xs: &mut [f32]) {
    crate::kernels::softmax_in_place(xs);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f32, b: f32) -> bool {
        (a - b).abs() < 1e-6
    }

    #[test]
    fn leaky_relu_behaviour() {
        assert_eq!(leaky_relu(2.0), 2.0);
        assert!(close(leaky_relu(-1.0), -LEAKY_RELU_SLOPE));
        assert_eq!(leaky_relu_grad(3.0), 1.0);
        assert_eq!(leaky_relu_grad(-3.0), LEAKY_RELU_SLOPE);
    }

    #[test]
    fn sigmoid_extremes_are_finite_and_saturating() {
        assert!(close(sigmoid(0.0), 0.5));
        assert!(sigmoid(100.0) <= 1.0 && sigmoid(100.0) > 0.999);
        assert!(sigmoid(-100.0) >= 0.0 && sigmoid(-100.0) < 1e-3);
        assert!(sigmoid(1e30).is_finite());
        assert!(sigmoid(-1e30).is_finite());
    }

    #[test]
    fn log_sigmoid_matches_naive_in_safe_range() {
        for &x in &[-5.0_f32, -1.0, 0.0, 0.5, 4.0] {
            assert!(close(log_sigmoid(x), sigmoid(x).ln()), "x={x}");
        }
        // And stays finite where the naive form underflows.
        assert!(log_sigmoid(-200.0).is_finite());
        assert!(close(log_sigmoid(-200.0), -200.0));
    }

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let mut xs = vec![1000.0, 1001.0, 1002.0];
        softmax_in_place(&mut xs);
        let sum: f32 = xs.iter().sum();
        assert!(close(sum, 1.0));
        assert!(xs.iter().all(|x| x.is_finite()));
        assert!(xs[2] > xs[1] && xs[1] > xs[0]);
    }

    #[test]
    fn softmax_uniform_for_equal_inputs() {
        let mut xs = vec![3.0; 4];
        softmax_in_place(&mut xs);
        for &x in &xs {
            assert!(close(x, 0.25));
        }
    }

    #[test]
    fn softmax_empty_and_singleton() {
        let mut xs: Vec<f32> = vec![];
        softmax_in_place(&mut xs);
        let mut one = vec![42.0];
        softmax_in_place(&mut one);
        assert!(close(one[0], 1.0));
    }

    #[test]
    fn grad_helpers_match_central_differences() {
        let eps = 1e-3_f32;
        for &x in &[-2.0_f32, -0.5, 0.3, 1.7] {
            let num = (sigmoid(x + eps) - sigmoid(x - eps)) / (2.0 * eps);
            assert!((num - sigmoid_grad_from_output(sigmoid(x))).abs() < 1e-3);
            let num = (tanh(x + eps) - tanh(x - eps)) / (2.0 * eps);
            assert!((num - tanh_grad_from_output(tanh(x))).abs() < 1e-3);
        }
    }
}
