//! Row-major dense `f32` matrix.
//! audit: module unwrap — row/col offsets derive from dims asserted at
//! construction (`Matrix::new` and friends).
//!
//! [`Matrix`] is the single storage type shared by the autograd engine and
//! the models. It deliberately has *value semantics*: operations either
//! return a fresh matrix or mutate `self` in place (`*_assign` variants),
//! which keeps ownership simple in the tape-based autograd.

use crate::kernels;
use rayon::prelude::*;
use std::fmt;
use std::ops::{Index, IndexMut};

/// Number of `f32` multiply-adds below which matmul stays serial.
///
/// Splitting tiny products across threads costs more than it saves; this
/// threshold was picked so per-batch GNN projections (512×64 · 64×64) go
/// parallel while per-sample scores stay serial.
const PAR_FLOPS_THRESHOLD: usize = 1 << 17;

/// An owned, row-major, dense `f32` matrix.
///
/// Row vectors are stored contiguously, which matches the access pattern of
/// every kernel in this workspace (embedding rows, per-entity hidden
/// states).
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// A `rows × cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Build from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "from_vec: data length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Build from row slices.
    ///
    /// # Panics
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        if rows.is_empty() {
            return Self::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), cols, "from_rows: row {i} has length {} expected {cols}", r.len());
            data.extend_from_slice(r);
        }
        Self { rows: rows.len(), cols, data }
    }

    /// The `n × n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// A `1 × cols` row matrix from a slice.
    pub fn row_vector(v: &[f32]) -> Self {
        Self::from_vec(1, v.len(), v.to_vec())
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Underlying row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable row-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume into the row-major storage vector.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterate over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Copy `src` into row `r`.
    pub fn set_row(&mut self, r: usize, src: &[f32]) {
        assert_eq!(src.len(), self.cols, "set_row: length mismatch");
        self.row_mut(r).copy_from_slice(src);
    }

    // ------------------------------------------------------------------
    // Elementwise operations
    // ------------------------------------------------------------------

    fn assert_same_shape(&self, other: &Self, op: &str) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "{op}: shape mismatch {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
    }

    /// Elementwise sum `self + other`.
    pub fn add(&self, other: &Self) -> Self {
        self.assert_same_shape(other, "add");
        self.zip_map(other, |a, b| a + b)
    }

    /// In-place elementwise `self += other`.
    pub fn add_assign(&mut self, other: &Self) {
        self.assert_same_shape(other, "add_assign");
        kernels::add_assign(&mut self.data, &other.data);
    }

    /// Elementwise difference `self - other`.
    pub fn sub(&self, other: &Self) -> Self {
        self.assert_same_shape(other, "sub");
        self.zip_map(other, |a, b| a - b)
    }

    /// In-place elementwise `self -= other`.
    pub fn sub_assign(&mut self, other: &Self) {
        self.assert_same_shape(other, "sub_assign");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a -= b;
        }
    }

    /// Elementwise (Hadamard) product.
    pub fn hadamard(&self, other: &Self) -> Self {
        self.assert_same_shape(other, "hadamard");
        self.zip_map(other, |a, b| a * b)
    }

    /// Scale every element by `s`.
    pub fn scale(&self, s: f32) -> Self {
        self.map(|x| x * s)
    }

    /// In-place scale by `s`.
    pub fn scale_assign(&mut self, s: f32) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// `self += alpha * other` (the BLAS `axpy` idiom).
    pub fn axpy(&mut self, alpha: f32, other: &Self) {
        self.assert_same_shape(other, "axpy");
        kernels::axpy(&mut self.data, alpha, &other.data);
    }

    /// Apply `f` to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Self { rows: self.rows, cols: self.cols, data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Apply `f` to every element in place.
    pub fn map_assign(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    fn zip_map(&self, other: &Self, f: impl Fn(f32, f32) -> f32) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)).collect(),
        }
    }

    /// Add a `1 × cols` bias row to every row of `self`.
    pub fn add_row_broadcast(&self, bias: &Self) -> Self {
        assert_eq!(bias.rows, 1, "add_row_broadcast: bias must have one row");
        assert_eq!(bias.cols, self.cols, "add_row_broadcast: column mismatch");
        // One pass: building by extension streams `self` once instead of
        // clone-then-add twice; the per-element sums (and bits) match.
        let mut data = Vec::with_capacity(self.data.len());
        for row in self.data.chunks_exact(self.cols.max(1)) {
            data.extend(row.iter().zip(&bias.data).map(|(&x, &b)| x + b));
        }
        Self { rows: self.rows, cols: self.cols, data }
    }

    // ------------------------------------------------------------------
    // Products
    // ------------------------------------------------------------------

    /// Matrix product `self · other`.
    ///
    /// Routed through the blocked [`kernels::matmul_rows_into`] kernel;
    /// parallel over output rows via rayon above `PAR_FLOPS_THRESHOLD`.
    /// The parallel split is by independent output rows, so results match
    /// the serial path exactly.
    ///
    /// # Panics
    /// Panics on an inner-dimension mismatch.
    pub fn matmul(&self, other: &Self) -> Self {
        assert_eq!(
            self.cols,
            other.rows,
            "matmul: inner dimension mismatch {:?} · {:?}",
            self.shape(),
            other.shape()
        );
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(m, n);
        let flops = m * k * n;
        if flops >= PAR_FLOPS_THRESHOLD && m > 1 {
            out.data.par_chunks_exact_mut(n).enumerate().for_each(|(i, out_row)| {
                kernels::matmul_rows_into(self.row(i), k, &other.data, n, out_row)
            });
        } else {
            kernels::matmul_rows_into(&self.data, k, &other.data, n, &mut out.data);
        }
        out
    }

    /// Matrix product `self · otherᵀ`.
    ///
    /// Faster than `self.matmul(&other.transpose())` for row-major data
    /// because both operands are read along rows; each output element is
    /// a lane-folded [`kernels::dot`].
    pub fn matmul_transpose_b(&self, other: &Self) -> Self {
        assert_eq!(
            self.cols,
            other.cols,
            "matmul_transpose_b: column mismatch {:?} · {:?}ᵀ",
            self.shape(),
            other.shape()
        );
        let (m, k, n) = (self.rows, self.cols, other.rows);
        let mut out = Matrix::zeros(m, n);
        let flops = m * k * n;
        if flops >= PAR_FLOPS_THRESHOLD && m > 1 {
            out.data.par_chunks_exact_mut(n).enumerate().for_each(|(i, out_row)| {
                kernels::matmul_transpose_b_rows_into(self.row(i), k, &other.data, n, out_row)
            });
        } else {
            kernels::matmul_transpose_b_rows_into(&self.data, k, &other.data, n, &mut out.data);
        }
        out
    }

    /// Matrix product `selfᵀ · other` without materializing the transpose
    /// (a sequence of rank-1 updates in increasing row order).
    pub fn transpose_matmul(&self, other: &Self) -> Self {
        assert_eq!(
            self.rows,
            other.rows,
            "transpose_matmul: row mismatch {:?}ᵀ · {:?}",
            self.shape(),
            other.shape()
        );
        let (m, n) = (self.cols, other.cols);
        let mut out = Matrix::zeros(m, n);
        kernels::transpose_matmul_into(&self.data, m, &other.data, n, &mut out.data);
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Self {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Per-row dot product of two equally-shaped matrices: returns an
    /// `rows × 1` column of `self[i] · other[i]`.
    pub fn rowwise_dot(&self, other: &Self) -> Self {
        self.assert_same_shape(other, "rowwise_dot");
        let mut out = Matrix::zeros(self.rows, 1);
        kernels::rowwise_dot_into(&self.data, &other.data, self.cols, &mut out.data);
        out
    }

    // ------------------------------------------------------------------
    // Gather / concatenate
    // ------------------------------------------------------------------

    /// Gather the given rows into a new `indices.len() × cols` matrix.
    ///
    /// # Panics
    /// Panics (in debug) if an index is out of bounds.
    pub fn gather_rows(&self, indices: &[usize]) -> Self {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        kernels::gather_rows_into(&self.data, self.cols, indices, &mut out.data);
        out
    }

    /// Horizontally concatenate `self` and `other` (same row count).
    pub fn concat_cols(&self, other: &Self) -> Self {
        assert_eq!(self.rows, other.rows, "concat_cols: row mismatch");
        let cols = self.cols + other.cols;
        let mut out = Matrix::zeros(self.rows, cols);
        for r in 0..self.rows {
            out.data[r * cols..r * cols + self.cols].copy_from_slice(self.row(r));
            out.data[r * cols + self.cols..(r + 1) * cols].copy_from_slice(other.row(r));
        }
        out
    }

    /// Vertically stack `self` on top of `other` (same column count).
    pub fn concat_rows(&self, other: &Self) -> Self {
        assert_eq!(self.cols, other.cols, "concat_rows: column mismatch");
        let mut data = Vec::with_capacity(self.data.len() + other.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Matrix::from_vec(self.rows + other.rows, self.cols, data)
    }

    // ------------------------------------------------------------------
    // Reductions
    // ------------------------------------------------------------------

    /// Sum of all elements (lane-folded; see [`kernels`]).
    pub fn sum(&self) -> f32 {
        kernels::sum(&self.data)
    }

    /// Mean of all elements (0 for an empty matrix).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Squared Frobenius norm `Σ x²` (lane-folded).
    pub fn frobenius_sq(&self) -> f32 {
        kernels::dot(&self.data, &self.data)
    }

    /// Per-row squared L2 norm as an `rows × 1` column.
    pub fn rowwise_norm_sq(&self) -> Self {
        let mut out = Matrix::zeros(self.rows, 1);
        kernels::rowwise_dot_into(&self.data, &self.data, self.cols, &mut out.data);
        out
    }

    /// Column sums as a `1 × cols` row (independent column lanes, rows
    /// accumulated in increasing order).
    pub fn col_sums(&self) -> Self {
        let mut out = Matrix::zeros(1, self.cols);
        for row in self.iter_rows() {
            kernels::add_assign(&mut out.data, row);
        }
        out
    }

    /// Maximum absolute element (0 for an empty matrix).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0_f32, |m, &x| m.max(x.abs()))
    }

    /// True if every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Normalize each row to unit L2 norm (rows with tiny norm are left
    /// unchanged to avoid amplifying noise).
    pub fn normalize_rows(&mut self) {
        for r in 0..self.rows {
            let row = self.row_mut(r);
            let norm = dot(row, row).sqrt();
            if norm > 1e-12 {
                for x in row {
                    *x /= norm;
                }
            }
        }
    }
}

/// Dot product of two equal-length slices, lane-folded per the
/// [`kernels`] determinism contract.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    kernels::dot(a, b)
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 8;
        for (i, row) in self.iter_rows().take(max_rows).enumerate() {
            writeln!(f, "  row {i}: {row:?}")?;
        }
        if self.rows > max_rows {
            writeln!(f, "  ... ({} more rows)", self.rows - max_rows)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m22(a: f32, b: f32, c: f32, d: f32) -> Matrix {
        Matrix::from_vec(2, 2, vec![a, b, c, d])
    }

    #[test]
    fn construction_and_access() {
        let m = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m[(0, 0)], 1.);
        assert_eq!(m[(1, 2)], 6.);
        assert_eq!(m.row(1), &[4., 5., 6.]);
    }

    #[test]
    #[should_panic(expected = "from_vec")]
    fn from_vec_length_mismatch_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1.0; 3]);
    }

    #[test]
    fn eye_is_identity_for_matmul() {
        let m = m22(1., 2., 3., 4.);
        let i = Matrix::eye(2);
        assert_eq!(m.matmul(&i), m);
        assert_eq!(i.matmul(&m), m);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c, m22(58., 64., 139., 154.));
    }

    #[test]
    fn matmul_transpose_b_matches_explicit_transpose() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(4, 3, (0..12).map(|x| x as f32).collect());
        assert_eq!(a.matmul_transpose_b(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn transpose_matmul_matches_explicit_transpose() {
        let a = Matrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 4, (0..12).map(|x| x as f32).collect());
        assert_eq!(a.transpose_matmul(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn parallel_matmul_matches_serial() {
        // Big enough to cross the parallel threshold.
        let n = 96;
        let a = Matrix::from_vec(n, n, (0..n * n).map(|x| (x % 13) as f32 - 6.0).collect());
        let b = Matrix::from_vec(n, n, (0..n * n).map(|x| (x % 7) as f32 - 3.0).collect());
        let big = a.matmul(&b);
        // Serial reference via per-element dot products.
        let bt = b.transpose();
        for i in 0..n {
            for j in 0..n {
                assert_eq!(big[(i, j)], dot(a.row(i), bt.row(j)), "mismatch at ({i},{j})");
            }
        }
    }

    #[test]
    fn elementwise_ops() {
        let a = m22(1., 2., 3., 4.);
        let b = m22(5., 6., 7., 8.);
        assert_eq!(a.add(&b), m22(6., 8., 10., 12.));
        assert_eq!(b.sub(&a), m22(4., 4., 4., 4.));
        assert_eq!(a.hadamard(&b), m22(5., 12., 21., 32.));
        assert_eq!(a.scale(2.0), m22(2., 4., 6., 8.));
        let mut c = a.clone();
        c.axpy(0.5, &b);
        assert_eq!(c, m22(3.5, 5., 6.5, 8.));
    }

    #[test]
    fn broadcast_add() {
        let a = m22(1., 2., 3., 4.);
        let bias = Matrix::row_vector(&[10., 20.]);
        assert_eq!(a.add_row_broadcast(&bias), m22(11., 22., 13., 24.));
    }

    #[test]
    fn gather_and_concat() {
        let m = Matrix::from_vec(3, 2, vec![0., 1., 10., 11., 20., 21.]);
        let g = m.gather_rows(&[2, 0, 2]);
        assert_eq!(g, Matrix::from_vec(3, 2, vec![20., 21., 0., 1., 20., 21.]));
        let cc = m.concat_cols(&m);
        assert_eq!(cc.shape(), (3, 4));
        assert_eq!(cc.row(1), &[10., 11., 10., 11.]);
        let cr = m.concat_rows(&m);
        assert_eq!(cr.shape(), (6, 2));
        assert_eq!(cr.row(4), &[10., 11.]);
    }

    #[test]
    fn reductions() {
        let m = m22(1., -2., 3., -4.);
        assert_eq!(m.sum(), -2.0);
        assert_eq!(m.mean(), -0.5);
        assert_eq!(m.frobenius_sq(), 30.0);
        assert_eq!(m.max_abs(), 4.0);
        assert!(m.all_finite());
        assert_eq!(m.col_sums(), Matrix::row_vector(&[4.0, -6.0]));
        assert_eq!(m.rowwise_norm_sq(), Matrix::from_vec(2, 1, vec![5.0, 25.0]));
    }

    #[test]
    fn rowwise_dot() {
        let a = m22(1., 2., 3., 4.);
        let b = m22(5., 6., 7., 8.);
        assert_eq!(a.rowwise_dot(&b), Matrix::from_vec(2, 1, vec![17.0, 53.0]));
    }

    #[test]
    fn normalize_rows_gives_unit_norm() {
        let mut m = m22(3., 4., 0., 0.);
        m.normalize_rows();
        assert!((dot(m.row(0), m.row(0)) - 1.0).abs() < 1e-6);
        // Zero row untouched.
        assert_eq!(m.row(1), &[0., 0.]);
    }

    #[test]
    fn empty_matrix_is_safe() {
        let m = Matrix::zeros(0, 0);
        assert!(m.is_empty());
        assert_eq!(m.sum(), 0.0);
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.max_abs(), 0.0);
    }
}
