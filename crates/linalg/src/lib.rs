#![warn(missing_docs)]

//! # facility-linalg
//!
//! Dense, row-major `f32` linear algebra substrate for the
//! `facility-kgrec` workspace.
//!
//! The recommendation models in this workspace (TransR embeddings, GNN
//! propagation layers, factorization machines) only need a small, fast set
//! of dense kernels over tall-skinny matrices (thousands of rows, 16–64
//! columns). This crate provides exactly that set, with no `unsafe` and no
//! external BLAS:
//!
//! * [`Matrix`] — an owned row-major `f32` matrix with elementwise,
//!   broadcast, and reduction operations.
//! * [`Matrix::matmul`] and friends — cache-friendly `ikj` matrix products
//!   that switch to [rayon] data parallelism above a size threshold.
//! * [`kernels`] — explicit 8-lane vectorized inner loops (and their
//!   scalar differential oracles) that every hot matrix op routes
//!   through; see that module's lane-fold determinism contract.
//! * [`retrieval`] — batched deterministic top-K retrieval: blocked
//!   multi-query scoring plus a streaming bounded selector whose order
//!   exactly matches the per-query ranking contract.
//! * [`init`] — seeded Xavier/normal/uniform initializers.
//! * [`ops`] — scalar activation functions and stable softmax used by both
//!   the autograd engine and hand-rolled model code.
//!
//! Everything is deterministic given a seed: parallel kernels only split
//! *independent output rows* across threads, so results are bitwise
//! identical to the serial path, and every lane-level float reduction
//! folds in the fixed order documented in [`kernels`].

pub mod init;
pub mod kernels;
pub mod matrix;
pub mod ops;
pub mod retrieval;

pub use matrix::Matrix;

/// Create a seeded RNG used across the workspace.
///
/// A thin wrapper so every crate derives randomness the same way and tests
/// can reproduce any run from a single `u64`.
pub fn seeded_rng(seed: u64) -> rand::rngs::StdRng {
    use rand::SeedableRng;
    rand::rngs::StdRng::seed_from_u64(seed)
}
