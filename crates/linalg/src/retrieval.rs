//! Batched deterministic top-K retrieval: blocked multi-query scoring
//! plus a streaming bounded selector, shared by offline evaluation and
//! the online serving layer's exact rung.
//!
//! # Why batching preserves bits
//!
//! Both consumers score a query against an item row with the lane-folded
//! [`kernels::dot`]. The blocked kernel
//! ([`kernels::score_block_into`]) computes each output element with the
//! *same* lane-folded dot — tiling only changes which cache lines are hot,
//! never any per-element accumulation order — so the score matrix of a
//! `B×d` query block is bitwise-identical to `B` independent per-query
//! scans, for every batch size `B`.
//!
//! # Why the selector matches `rank_top_k`
//!
//! The per-query reference (`facility-eval`'s `rank_top_k`) orders
//! candidates by `partial_cmp` score descending, then item id ascending.
//! Over finite, non-NaN scores that comparator is a *total* order, and
//! [`entry_key`] embeds it into `u64`: the IEEE-754 sign-flip trick maps
//! float order to unsigned order monotonically, `-0.0` is canonicalized
//! to `+0.0` first (the two compare `Equal` under `partial_cmp`, so the
//! reference breaks that tie by id — the key must too), and the inverted
//! id occupies the low bits so a larger key always means "earlier in the
//! reference ranking". A bounded min-heap on that key therefore keeps
//! exactly the reference's top-k, and the raw `f32` score travels next to
//! the key so output *bits* are the scan's, untouched by the encoding.
//! NaN scores are outside the contract (both consumers score with finite
//! snapshots/caches; the serve layer validates finiteness on load).
//!
//! # Streaming and threshold pruning
//!
//! [`BatchTopK`] walks the catalog in item tiles ([`DEFAULT_TILE`] rows)
//! so a tile's rows stay cache-resident while every query of the block
//! dots against them, then offers each tile's scores to per-query
//! selectors. Once a selector holds `k` entries, its running k-th key is
//! a threshold: a candidate whose key does not beat it is rejected with
//! one integer compare, no heap surgery — across tiles this prunes the
//! overwhelming majority of offers on real score distributions (the
//! [`RetrievalStats`] counters record the ratio). Pruning only skips heap
//! *updates* that could not change the result, so it is invisible to the
//! output.

use crate::kernels;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Item rows per scoring tile: at the workspace's typical `d ≤ 256`, one
/// tile of scores (`B × DEFAULT_TILE` f32) and the tile's item rows both
/// stay within L2 while the block walks the catalog.
pub const DEFAULT_TILE: usize = 1024;

/// Monotone `u32` key of a finite score: bigger key ⇔ bigger score, with
/// `-0.0` canonicalized to `+0.0` so the two are one key (they compare
/// `Equal` in the reference comparator, which then falls through to the
/// id tie-break).
#[inline]
pub fn score_key(s: f32) -> u32 {
    let s = if s == 0.0 { 0.0f32 } else { s };
    let b = s.to_bits();
    if b & 0x8000_0000 != 0 {
        !b
    } else {
        b | 0x8000_0000
    }
}

/// Combined selection key: score (monotone bits) in the high half, the
/// *inverted* item id in the low half. Comparing keys descending is
/// exactly the reference order `(score desc, id asc)`, in one `u64`
/// compare.
#[inline]
pub fn entry_key(score: f32, id: u32) -> u64 {
    (u64::from(score_key(score)) << 32) | u64::from(!id)
}

/// One retained candidate: the selection key plus the raw `(id, score)`
/// so output bits are the scan's, not a decoded key.
#[derive(Clone, Copy, Debug)]
struct Entry {
    key: u64,
    id: u32,
    score: f32,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

/// Streaming bounded top-K selector over `(id, score)` candidates.
///
/// Keeps at most `k` entries in a min-heap on [`entry_key`]; offering a
/// candidate that cannot enter the current top-k is a single compare
/// against the heap root (the running k-th best). Offer order does not
/// affect the result — the key order is total — so tiled, streamed, and
/// one-shot feeding all select the identical list.
pub struct TopKSelector {
    k: usize,
    heap: BinaryHeap<Reverse<Entry>>,
}

impl TopKSelector {
    /// An empty selector retaining at most `k` candidates.
    pub fn new(k: usize) -> Self {
        Self { k, heap: BinaryHeap::with_capacity(k.min(1 << 16)) }
    }

    /// Offer one candidate. Returns `true` when it entered the current
    /// top-k (possibly evicting the running k-th), `false` when the
    /// threshold pruned it.
    #[inline]
    pub fn offer(&mut self, id: u32, score: f32) -> bool {
        if self.k == 0 {
            return false;
        }
        let key = entry_key(score, id);
        if self.heap.len() < self.k {
            self.heap.push(Reverse(Entry { key, id, score }));
            return true;
        }
        match self.heap.peek() {
            Some(&Reverse(root)) if key > root.key => {
                self.heap.pop();
                self.heap.push(Reverse(Entry { key, id, score }));
                true
            }
            _ => false,
        }
    }

    /// Number of candidates currently retained.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The running k-th-best score once the selector is full — the
    /// pruning threshold a new candidate must beat. `None` while fewer
    /// than `k` candidates have been retained.
    pub fn threshold_score(&self) -> Option<f32> {
        if self.heap.len() < self.k {
            return None;
        }
        self.heap.peek().map(|&Reverse(e)| e.score)
    }

    /// Drain into the final ranking: `(id, score)` pairs, best first,
    /// ordered by `(score desc, id asc)` — the `rank_top_k` contract.
    pub fn into_sorted(self) -> Vec<(u32, f32)> {
        let mut entries: Vec<Entry> = self.heap.into_iter().map(|Reverse(e)| e).collect();
        entries.sort_unstable_by_key(|e| Reverse(e.key));
        entries.into_iter().map(|e| (e.id, e.score)).collect()
    }
}

/// Work counters of a [`BatchTopK`] engine, for `BENCH_topk.json`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetrievalStats {
    /// Queries ranked.
    pub queries: u64,
    /// Scoring tiles processed (per query block).
    pub tiles: u64,
    /// `(query, item)` scores computed.
    pub items_scored: u64,
    /// Candidates that entered a selector (heap push or replace).
    pub offers_admitted: u64,
    /// Candidates rejected by the running k-th-score threshold with a
    /// single compare.
    pub offers_pruned: u64,
}

impl RetrievalStats {
    /// Fold another counter snapshot into this one (chunked eval merges
    /// per-worker engines).
    pub fn merge(&mut self, other: &RetrievalStats) {
        self.queries += other.queries;
        self.tiles += other.tiles;
        self.items_scored += other.items_scored;
        self.offers_admitted += other.offers_admitted;
        self.offers_pruned += other.offers_pruned;
    }
}

/// Batched top-K retrieval engine: blocked multi-query scoring over a
/// reused tile buffer, feeding per-query streaming selectors.
///
/// One engine value is meant to live across many [`BatchTopK::rank_block`]
/// calls so the score buffer is reused, not reallocated; it is cheap to
/// construct and intentionally `!Sync`-free (each worker owns one).
pub struct BatchTopK {
    tile: usize,
    scores: Vec<f32>,
    stats: RetrievalStats,
}

impl Default for BatchTopK {
    fn default() -> Self {
        Self::new()
    }
}

impl BatchTopK {
    /// An engine with the default item tile.
    pub fn new() -> Self {
        Self::with_tile(DEFAULT_TILE)
    }

    /// An engine with an explicit item tile (tests shrink it to force
    /// tile-boundary cases; clamped to ≥ 1).
    pub fn with_tile(tile: usize) -> Self {
        Self { tile: tile.max(1), scores: Vec::new(), stats: RetrievalStats::default() }
    }

    /// Counters accumulated since construction (or the last take).
    pub fn stats(&self) -> RetrievalStats {
        self.stats
    }

    /// Return and reset the accumulated counters.
    pub fn take_stats(&mut self) -> RetrievalStats {
        std::mem::take(&mut self.stats)
    }

    /// Rank the top-`k` items for a block of queries in one tiled scan.
    ///
    /// * `queries` — row-major `B×d` query block;
    /// * `items` — row-major `n_items×d` catalog;
    /// * `excludes` — one *sorted ascending* id list per query, masked
    ///   out of that query's ranking (`excludes.len()` must be `B`);
    /// * `k` — result size per query.
    ///
    /// Returns one `(id, score)` list per query, best first, item-and-bit
    /// identical to scoring that query alone and ranking with the
    /// per-query reference (`rank_top_k`): same ids, same order, same
    /// score bits. `k = 0`, a fully-masked query, and `k ≥` the candidate
    /// count all degrade exactly as the reference does (empty / clamped).
    pub fn rank_block(
        &mut self,
        queries: &[f32],
        d: usize,
        items: &[f32],
        n_items: usize,
        excludes: &[&[u32]],
        k: usize,
    ) -> Vec<Vec<(u32, f32)>> {
        let b = excludes.len();
        debug_assert_eq!(queries.len(), b * d);
        debug_assert_eq!(items.len(), n_items * d);
        let mut selectors: Vec<TopKSelector> = (0..b).map(|_| TopKSelector::new(k)).collect();
        // One cursor per query into its sorted exclude list; item ids are
        // visited in increasing order across tiles, so each cursor only
        // ever advances.
        let mut cursors = vec![0usize; b];
        self.stats.queries += b as u64;
        let mut j0 = 0usize;
        while j0 < n_items {
            let j1 = (j0 + self.tile).min(n_items);
            let nt = j1 - j0;
            let tile_items = items.get(j0 * d..j1 * d).unwrap_or(&[]);
            self.scores.resize(b * nt, 0.0);
            kernels::score_block_into(queries, d, tile_items, nt, &mut self.scores);
            self.stats.tiles += 1;
            self.stats.items_scored += (b * nt) as u64;
            for ((row, sel), (cur, ex)) in self
                .scores
                .chunks_exact(nt)
                .zip(selectors.iter_mut())
                .zip(cursors.iter_mut().zip(excludes))
            {
                for (off, &s) in row.iter().enumerate() {
                    let id = (j0 + off) as u32;
                    while matches!(ex.get(*cur), Some(&e) if e < id) {
                        *cur += 1;
                    }
                    if ex.get(*cur) == Some(&id) {
                        *cur += 1;
                        continue;
                    }
                    if sel.offer(id, s) {
                        self.stats.offers_admitted += 1;
                    } else {
                        self.stats.offers_pruned += 1;
                    }
                }
            }
            j0 = j1;
        }
        selectors.into_iter().map(TopKSelector::into_sorted).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference ranking with the `rank_top_k` comparator, written out
    /// longhand (facility-eval depends on this crate, so the true
    /// cross-crate differential lives in facility-eval's test suite).
    fn reference(scores: &[f32], exclude: &[u32], k: usize) -> Vec<(u32, f32)> {
        let mut ids: Vec<u32> =
            (0..scores.len() as u32).filter(|i| exclude.binary_search(i).is_err()).collect();
        ids.sort_by(|a, b| {
            scores[*b as usize]
                .partial_cmp(&scores[*a as usize])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(b))
        });
        ids.truncate(k);
        ids.into_iter().map(|i| (i, scores[i as usize])).collect()
    }

    fn offer_all(scores: &[f32], k: usize) -> Vec<(u32, f32)> {
        let mut sel = TopKSelector::new(k);
        for (i, &s) in scores.iter().enumerate() {
            sel.offer(i as u32, s);
        }
        sel.into_sorted()
    }

    #[test]
    fn key_is_monotone_in_score_and_breaks_ties_by_lower_id() {
        for (lo, hi) in [(-1.5f32, -0.25), (-0.25, 0.0), (0.0, 0.5), (0.5, 2.0)] {
            assert!(score_key(lo) < score_key(hi), "{lo} vs {hi}");
        }
        assert_eq!(score_key(-0.0), score_key(0.0), "signed zeros are one key");
        assert!(entry_key(1.0, 3) > entry_key(1.0, 4), "equal score: lower id wins");
    }

    #[test]
    fn selector_matches_reference_on_duplicates_and_zeros() {
        let scores = vec![1.0f32, -0.0, 0.0, 1.0, -2.5, 1.0, 0.0, -0.0, 3.5];
        for k in [0usize, 1, 3, 8, 9, 20] {
            let got = offer_all(&scores, k);
            let want = reference(&scores, &[], k);
            assert_eq!(got.len(), want.len(), "k={k}");
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.0, w.0, "k={k}");
                assert_eq!(g.1.to_bits(), w.1.to_bits(), "k={k}: score bits preserved");
            }
        }
    }

    #[test]
    fn threshold_appears_exactly_at_k() {
        let mut sel = TopKSelector::new(2);
        assert_eq!(sel.threshold_score(), None);
        sel.offer(0, 5.0);
        assert_eq!(sel.threshold_score(), None);
        sel.offer(1, 3.0);
        assert_eq!(sel.threshold_score(), Some(3.0));
        assert!(!sel.offer(2, 1.0), "below threshold: pruned");
        assert!(sel.offer(3, 4.0), "beats threshold: admitted");
        assert_eq!(sel.threshold_score(), Some(4.0));
        assert_eq!(sel.into_sorted(), vec![(0, 5.0), (3, 4.0)]);
    }

    #[test]
    fn rank_block_matches_reference_across_tile_sizes_and_masks() {
        // 3 queries × 7 dims against 53 items, scores engineered to
        // collide across tile boundaries.
        let d = 7usize;
        let n_items = 53usize;
        let queries: Vec<f32> =
            (0..3 * d).map(|i| ((i * 37 + 11) % 17) as f32 * 0.25 - 2.0).collect();
        let items: Vec<f32> =
            (0..n_items * d).map(|i| ((i * 13 + 5) % 23) as f32 * 0.125 - 1.0).collect();
        let excludes: Vec<Vec<u32>> = vec![
            vec![],
            vec![0, 1, 2, 3, 4, 50, 51, 52],
            (0..n_items as u32).collect(), // fully masked
        ];
        let ex_refs: Vec<&[u32]> = excludes.iter().map(Vec::as_slice).collect();
        // Per-query reference scores via the same kernel dot.
        let ref_scores: Vec<Vec<f32>> = (0..3)
            .map(|q| {
                (0..n_items)
                    .map(|j| kernels::dot(&queries[q * d..(q + 1) * d], &items[j * d..(j + 1) * d]))
                    .collect()
            })
            .collect();
        for tile in [1usize, 4, 8, 53, 1024] {
            for k in [1usize, 5, 53, 100] {
                let mut eng = BatchTopK::with_tile(tile);
                let got = eng.rank_block(&queries, d, &items, n_items, &ex_refs, k);
                for (q, (g, ex)) in got.iter().zip(&excludes).enumerate() {
                    let want = reference(&ref_scores[q], ex, k);
                    assert_eq!(g.len(), want.len(), "tile={tile} k={k} q={q}");
                    for (a, b) in g.iter().zip(&want) {
                        assert_eq!(a.0, b.0, "tile={tile} k={k} q={q}");
                        assert_eq!(a.1.to_bits(), b.1.to_bits(), "tile={tile} k={k} q={q}");
                    }
                }
            }
        }
    }

    #[test]
    fn stats_account_for_every_offer() {
        let d = 4usize;
        let n_items = 40usize;
        let queries: Vec<f32> = (0..2 * d).map(|i| i as f32 * 0.5).collect();
        let items: Vec<f32> = (0..n_items * d).map(|i| ((i % 9) as f32) - 4.0).collect();
        let mask: Vec<u32> = vec![3, 17];
        let ex: Vec<&[u32]> = vec![&mask, &[]];
        let mut eng = BatchTopK::with_tile(16);
        eng.rank_block(&queries, d, &items, n_items, &ex, 5);
        let s = eng.stats();
        assert_eq!(s.queries, 2);
        assert_eq!(s.items_scored, 2 * 40);
        assert_eq!(s.tiles, 3, "40 items / 16-tile = 3 tiles");
        // Every unmasked candidate was either admitted or pruned.
        assert_eq!(s.offers_admitted + s.offers_pruned, 2 * 40 - 2);
        assert!(s.offers_pruned > 0, "a 5-deep selector over 40 items must prune");
    }

    #[test]
    fn empty_catalog_and_k_zero_are_empty() {
        let mut eng = BatchTopK::new();
        let ex: Vec<&[u32]> = vec![&[]];
        assert_eq!(eng.rank_block(&[1.0, 2.0], 2, &[], 0, &ex, 5), vec![Vec::new()]);
        let items = vec![1.0f32, 0.0, 0.0, 1.0];
        assert_eq!(eng.rank_block(&[1.0, 2.0], 2, &items, 2, &ex, 0), vec![Vec::new()]);
    }
}
