//! Seeded parameter initializers.
//!
//! The paper initializes all model parameters with the Xavier scheme
//! (Glorot & Bengio 2010); the simulator and tests also need plain uniform
//! and normal draws. All initializers take an explicit RNG so a single seed
//! reproduces an entire experiment.

use crate::Matrix;
use rand::Rng;
use rand_distr::{Distribution, Normal, Uniform};

/// Xavier/Glorot *uniform* initialization: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`.
///
/// For an embedding table, `fan_in` is the vocabulary axis and `fan_out`
/// the embedding dimension — the convention used by TensorFlow's
/// `glorot_uniform`, which the paper relies on.
pub fn xavier_uniform(rows: usize, cols: usize, rng: &mut impl Rng) -> Matrix {
    let a = (6.0 / (rows + cols) as f32).sqrt();
    uniform(rows, cols, -a, a, rng)
}

/// Xavier/Glorot *normal* initialization: `N(0, 2 / (fan_in + fan_out))`.
pub fn xavier_normal(rows: usize, cols: usize, rng: &mut impl Rng) -> Matrix {
    let std = (2.0 / (rows + cols) as f32).sqrt();
    normal(rows, cols, 0.0, std, rng)
}

/// `U(lo, hi)` elementwise.
pub fn uniform(rows: usize, cols: usize, lo: f32, hi: f32, rng: &mut impl Rng) -> Matrix {
    assert!(lo <= hi, "uniform: lo must be <= hi");
    let dist = Uniform::new_inclusive(lo, hi);
    Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| dist.sample(rng)).collect())
}

/// `N(mean, std²)` elementwise.
///
/// # Panics
/// Panics if `std` is negative or non-finite.
pub fn normal(rows: usize, cols: usize, mean: f32, std: f32, rng: &mut impl Rng) -> Matrix {
    let dist = Normal::new(mean, std).expect("normal: invalid std");
    Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| dist.sample(rng)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded_rng;

    #[test]
    fn xavier_uniform_respects_bound() {
        let mut rng = seeded_rng(7);
        let m = xavier_uniform(100, 50, &mut rng);
        let a = (6.0 / 150.0_f32).sqrt();
        assert!(m.max_abs() <= a + 1e-6);
        // Not degenerate: mean close to zero, spread non-trivial.
        assert!(m.mean().abs() < 0.02);
        assert!(m.frobenius_sq() > 0.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = xavier_uniform(10, 10, &mut seeded_rng(42));
        let b = xavier_uniform(10, 10, &mut seeded_rng(42));
        assert_eq!(a, b);
        let c = xavier_uniform(10, 10, &mut seeded_rng(43));
        assert_ne!(a, c);
    }

    #[test]
    fn normal_moments_roughly_match() {
        let mut rng = seeded_rng(1);
        let m = normal(200, 50, 1.0, 0.5, &mut rng);
        let mean = m.mean();
        let var = m.map(|x| (x - mean) * (x - mean)).mean();
        assert!((mean - 1.0).abs() < 0.02, "mean {mean}");
        assert!((var - 0.25).abs() < 0.02, "var {var}");
    }

    #[test]
    fn uniform_range() {
        let mut rng = seeded_rng(3);
        let m = uniform(50, 50, -2.0, 3.0, &mut rng);
        assert!(m.as_slice().iter().all(|&x| (-2.0..=3.0).contains(&x)));
    }
}
