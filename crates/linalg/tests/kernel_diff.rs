//! Differential suite: the vectorized (`kernels::lanes`) rendering of
//! every kernel must be **bitwise** identical to its scalar oracle
//! (`kernels::scalar`) — the two implement the same lane-fold contract,
//! so any diverging bit is a bug, not float noise.
//!
//! Sizes sweep the unroll boundaries ({1, 7, 8, 9, 63, 64, 65}: below,
//! at, and above one lane block and one tile), plus empty segments and
//! duplicate scatter indices. The last test flips the global
//! `set_scalar_kernels` switch around a full CKAT-shaped attention
//! backward and asserts every gradient is bitwise unchanged — the
//! property the cross-mode training gates stand on.
//!
//! Per-kernel tests call the `scalar::`/`lanes::` modules directly (no
//! global state); only the tape-level test touches the dispatch flag.

use facility_linalg::kernels::{self, lanes, scalar};

/// Sizes below/at/above one 8-lane block and one 64-wide tile.
const SIZES: &[usize] = &[1, 7, 8, 9, 63, 64, 65];

/// Deterministic, sign-mixed, non-round values: splitmix-style hash to a
/// float in roughly [-2, 2] with plenty of mantissa bits set.
fn val(i: u64, salt: u64) -> f32 {
    let mut z = i.wrapping_add(salt).wrapping_mul(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    let u = ((z >> 40) as f32) / (1u64 << 23) as f32; // [0, 2)
    u - 1.0 + (i as f32) * 1e-3
}

fn vec_of(n: usize, salt: u64) -> Vec<f32> {
    (0..n as u64).map(|i| val(i, salt)).collect()
}

fn assert_bits_eq(a: &[f32], b: &[f32], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: element {i}: {x} vs {y}");
    }
}

#[test]
fn dot_and_sum_match_across_lane_boundaries() {
    for &n in SIZES {
        let a = vec_of(n, 1);
        let b = vec_of(n, 2);
        assert_eq!(scalar::dot(&a, &b).to_bits(), lanes::dot(&a, &b).to_bits(), "dot n={n}");
        assert_eq!(scalar::sum(&a).to_bits(), lanes::sum(&a).to_bits(), "sum n={n}");
    }
    // Empty inputs.
    assert_eq!(scalar::dot(&[], &[]).to_bits(), lanes::dot(&[], &[]).to_bits());
    assert_eq!(scalar::sum(&[]).to_bits(), lanes::sum(&[]).to_bits());
}

#[test]
fn fused_tanh_dot_matches() {
    for &n in SIZES {
        let t = vec_of(n, 3);
        let h = vec_of(n, 4);
        let r = vec_of(n, 5);
        assert_eq!(
            scalar::fused_tanh_dot(&t, &h, &r).to_bits(),
            lanes::fused_tanh_dot(&t, &h, &r).to_bits(),
            "fused_tanh_dot n={n}"
        );
    }
}

#[test]
fn matmul_rows_matches_including_zero_skip() {
    for &m in &[1usize, 7, 9] {
        for &k in SIZES {
            for &n in SIZES {
                let mut a = vec_of(m * k, 6);
                // Exercise the `a == 0.0` skip branch in both renderings.
                for (i, x) in a.iter_mut().enumerate() {
                    if i % 5 == 0 {
                        *x = 0.0;
                    }
                }
                let b = vec_of(k * n, 7);
                let mut out_s = vec_of(m * n, 8); // accumulate onto junk
                let mut out_l = out_s.clone();
                scalar::matmul_rows_into(&a, k, &b, n, &mut out_s);
                lanes::matmul_rows_into(&a, k, &b, n, &mut out_l);
                assert_bits_eq(&out_s, &out_l, &format!("matmul {m}x{k}x{n}"));
            }
        }
    }
}

#[test]
fn matmul_transpose_b_matches() {
    for &m in &[1usize, 8, 9] {
        for &k in SIZES {
            for &n in SIZES {
                let a = vec_of(m * k, 9);
                let b = vec_of(n * k, 10); // n rows of length k
                let mut out_s = vec![0.0; m * n];
                let mut out_l = vec![0.0; m * n];
                scalar::matmul_transpose_b_rows_into(&a, k, &b, n, &mut out_s);
                lanes::matmul_transpose_b_rows_into(&a, k, &b, n, &mut out_l);
                assert_bits_eq(&out_s, &out_l, &format!("matmul_tb {m}x{k}x{n}"));
            }
        }
    }
}

#[test]
fn score_block_into_matches() {
    for &b in &[1usize, 7, 8, 9] {
        for &d in SIZES {
            for &n in SIZES {
                let queries = vec_of(b * d, 11);
                let items = vec_of(n * d, 12);
                // Pre-fill with garbage to prove assignment (not accumulate)
                // semantics: both renderings must overwrite every element.
                let mut out_s = vec![f32::NAN; b * n];
                let mut out_l = vec![7.5e11; b * n];
                scalar::score_block_into(&queries, d, &items, n, &mut out_s);
                lanes::score_block_into(&queries, d, &items, n, &mut out_l);
                assert_bits_eq(&out_s, &out_l, &format!("score_block {b}x{d}x{n}"));
                // Each element must equal the single-query dot bit-for-bit —
                // the contract the batched retrieval engine stands on.
                for qi in 0..b {
                    for j in 0..n {
                        let single =
                            scalar::dot(&queries[qi * d..(qi + 1) * d], &items[j * d..(j + 1) * d]);
                        assert_eq!(
                            out_s[qi * n + j].to_bits(),
                            single.to_bits(),
                            "score_block vs dot b={b} d={d} n={n} q={qi} j={j}"
                        );
                    }
                }
            }
        }
    }
    // Degenerate shapes: empty catalog and zero-width features.
    let mut out = vec![1.0f32; 0];
    scalar::score_block_into(&[], 4, &[], 0, &mut out);
    lanes::score_block_into(&[], 4, &[], 0, &mut out);
    let mut out_s = vec![9.0f32; 6];
    let mut out_l = vec![-9.0f32; 6];
    scalar::score_block_into(&[], 0, &[], 3, &mut out_s);
    lanes::score_block_into(&[], 0, &[], 3, &mut out_l);
    assert_bits_eq(&out_s, &out_l, "score_block d=0");
}

#[test]
fn transpose_matmul_matches() {
    for &k in &[1usize, 7, 9, 64] {
        for &m in SIZES {
            for &n in SIZES {
                let a = vec_of(k * m, 11); // k rows of length m (aᵀ result is m×n)
                let b = vec_of(k * n, 12);
                let mut out_s = vec![0.0; m * n];
                let mut out_l = vec![0.0; m * n];
                scalar::transpose_matmul_into(&a, m, &b, n, &mut out_s);
                lanes::transpose_matmul_into(&a, m, &b, n, &mut out_l);
                assert_bits_eq(&out_s, &out_l, &format!("transpose_matmul {k}x{m}x{n}"));
            }
        }
    }
}

#[test]
fn gather_and_scatter_match_with_duplicates() {
    for &cols in SIZES {
        let src_rows = 9;
        let src = vec_of(src_rows * cols, 13);
        // Duplicates, out of order, repeats of the same row.
        let indices = [3usize, 0, 8, 3, 3, 1, 0];
        let mut out_s = vec![0.0; indices.len() * cols];
        let mut out_l = vec![0.0; indices.len() * cols];
        scalar::gather_rows_into(&src, cols, &indices, &mut out_s);
        lanes::gather_rows_into(&src, cols, &indices, &mut out_l);
        assert_bits_eq(&out_s, &out_l, &format!("gather cols={cols}"));

        // Scatter-add the gathered rows back: duplicate targets must fold
        // in identical (increasing-i) order.
        let add = vec_of(indices.len() * cols, 14);
        let mut dst_s = vec_of(src_rows * cols, 15);
        let mut dst_l = dst_s.clone();
        scalar::scatter_add_rows(&mut dst_s, cols, &indices, &add);
        lanes::scatter_add_rows(&mut dst_l, cols, &indices, &add);
        assert_bits_eq(&dst_s, &dst_l, &format!("scatter cols={cols}"));
    }
}

#[test]
fn elementwise_kernels_match() {
    for &n in SIZES {
        let a = vec_of(n, 16);
        let b = vec_of(n, 17);

        let mut d_s = vec_of(n, 18);
        let mut d_l = d_s.clone();
        scalar::axpy(&mut d_s, -0.37, &a);
        lanes::axpy(&mut d_l, -0.37, &a);
        assert_bits_eq(&d_s, &d_l, &format!("axpy n={n}"));

        scalar::add_assign(&mut d_s, &b);
        lanes::add_assign(&mut d_l, &b);
        assert_bits_eq(&d_s, &d_l, &format!("add_assign n={n}"));

        scalar::hadamard_acc(&mut d_s, &a, &b);
        lanes::hadamard_acc(&mut d_l, &a, &b);
        assert_bits_eq(&d_s, &d_l, &format!("hadamard_acc n={n}"));
    }
}

#[test]
fn scale_rows_and_rowwise_dot_match() {
    for &cols in SIZES {
        let rows = 7;
        let w = vec_of(rows, 19);
        let mut d_s = vec_of(rows * cols, 20);
        let mut d_l = d_s.clone();
        scalar::scale_rows(&mut d_s, cols, &w);
        lanes::scale_rows(&mut d_l, cols, &w);
        assert_bits_eq(&d_s, &d_l, &format!("scale_rows cols={cols}"));

        let a = vec_of(rows * cols, 21);
        let b = vec_of(rows * cols, 22);
        let mut o_s = vec![0.0; rows];
        let mut o_l = vec![0.0; rows];
        scalar::rowwise_dot_into(&a, &b, cols, &mut o_s);
        lanes::rowwise_dot_into(&a, &b, cols, &mut o_l);
        assert_bits_eq(&o_s, &o_l, &format!("rowwise_dot cols={cols}"));
    }
}

#[test]
fn mul_broadcast_col_grad_matches() {
    for &cols in SIZES {
        let rows = 9;
        let g = vec_of(rows * cols, 23);
        let a = vec_of(rows * cols, 24);
        let w = vec_of(rows, 25);
        let mut da_s = vec![0.0; rows * cols];
        let mut dw_s = vec![0.0; rows];
        let mut da_l = vec![0.0; rows * cols];
        let mut dw_l = vec![0.0; rows];
        scalar::mul_broadcast_col_grad(&g, &a, &w, cols, &mut da_s, &mut dw_s);
        lanes::mul_broadcast_col_grad(&g, &a, &w, cols, &mut da_l, &mut dw_l);
        assert_bits_eq(&da_s, &da_l, &format!("mul_broadcast_col_grad da cols={cols}"));
        assert_bits_eq(&dw_s, &dw_l, &format!("mul_broadcast_col_grad dw cols={cols}"));
        // The fused pass must equal the scale + rowwise-dot pair it replaced.
        let mut da_ref = g.clone();
        let mut dw_ref = vec![0.0; rows];
        scalar::scale_rows(&mut da_ref, cols, &w);
        scalar::rowwise_dot_into(&g, &a, cols, &mut dw_ref);
        assert_bits_eq(&da_s, &da_ref, &format!("fused da vs pair cols={cols}"));
        assert_bits_eq(&dw_s, &dw_ref, &format!("fused dw vs pair cols={cols}"));
    }
}

#[test]
fn mul_broadcast_col_grad_acc_matches() {
    for &cols in SIZES {
        let rows = 9;
        let g = vec_of(rows * cols, 29);
        let a = vec_of(rows * cols, 30);
        let w = vec_of(rows, 31);
        // Accumulate on top of a non-trivial running total.
        let da0 = vec_of(rows * cols, 32);
        let dw0 = vec_of(rows, 33);
        let mut da_s = da0.clone();
        let mut dw_s = dw0.clone();
        let mut da_l = da0.clone();
        let mut dw_l = dw0.clone();
        scalar::mul_broadcast_col_grad_acc(&g, &a, &w, cols, &mut da_s, &mut dw_s);
        lanes::mul_broadcast_col_grad_acc(&g, &a, &w, cols, &mut da_l, &mut dw_l);
        assert_bits_eq(&da_s, &da_l, &format!("mul_broadcast_col_grad_acc da cols={cols}"));
        assert_bits_eq(&dw_s, &dw_l, &format!("mul_broadcast_col_grad_acc dw cols={cols}"));
        // `+=` into a live total must equal overwrite-then-add — the
        // bits the tape's former temporary-and-`add_assign` detour made.
        let mut da_tmp = vec![0.0; rows * cols];
        let mut dw_tmp = vec![0.0; rows];
        scalar::mul_broadcast_col_grad(&g, &a, &w, cols, &mut da_tmp, &mut dw_tmp);
        let da_ref: Vec<f32> = da0.iter().zip(&da_tmp).map(|(&x, &d)| x + d).collect();
        let dw_ref: Vec<f32> = dw0.iter().zip(&dw_tmp).map(|(&x, &d)| x + d).collect();
        assert_bits_eq(&da_s, &da_ref, &format!("acc vs overwrite+add da cols={cols}"));
        assert_bits_eq(&dw_s, &dw_ref, &format!("acc vs overwrite+add dw cols={cols}"));
    }
}

#[test]
fn gather_scale_segment_sum_matches() {
    for &cols in SIZES {
        let n_rows = 11;
        let n_seg = 5;
        // Edge list with repeats, an unused source row, and an empty
        // segment (segment 3 never appears as a head).
        let tails: Vec<usize> = vec![0, 3, 3, 7, 10, 1, 0, 9];
        let heads: Vec<usize> = vec![0, 0, 1, 2, 4, 4, 4, 1];
        let h = vec_of(n_rows * cols, 41);
        let att = vec_of(tails.len(), 42);
        let mut out_s = vec![0.0; n_seg * cols];
        let mut out_l = vec![0.0; n_seg * cols];
        scalar::gather_scale_segment_sum_into(&h, cols, &tails, &att, &heads, &mut out_s);
        lanes::gather_scale_segment_sum_into(&h, cols, &tails, &att, &heads, &mut out_l);
        assert_bits_eq(&out_s, &out_l, &format!("gather_scale_segment_sum cols={cols}"));
        // The fusion must be bit-transparent: gather → scale → segment-sum
        // through the unfused kernels lands on the same output.
        let mut et = vec![0.0; tails.len() * cols];
        scalar::gather_rows_into(&h, cols, &tails, &mut et);
        scalar::scale_rows(&mut et, cols, &att);
        let mut out_ref = vec![0.0; n_seg * cols];
        scalar::scatter_add_rows(&mut out_ref, cols, &heads, &et);
        assert_bits_eq(&out_s, &out_ref, &format!("fused vs unfused chain cols={cols}"));

        // Backward: fused grad vs the unfused gather/dot/scatter chain,
        // accumulating into live buffers.
        let g = vec_of(n_seg * cols, 43);
        let dh0 = vec_of(n_rows * cols, 44);
        let datt0 = vec_of(tails.len(), 45);
        let mut dh_s = dh0.clone();
        let mut datt_s = datt0.clone();
        let mut dh_l = dh0.clone();
        let mut datt_l = datt0.clone();
        scalar::gather_scale_segment_sum_grad(
            &g,
            &h,
            cols,
            &tails,
            &att,
            &heads,
            &mut dh_s,
            &mut datt_s,
        );
        lanes::gather_scale_segment_sum_grad(
            &g,
            &h,
            cols,
            &tails,
            &att,
            &heads,
            &mut dh_l,
            &mut datt_l,
        );
        assert_bits_eq(&dh_s, &dh_l, &format!("fused grad dh cols={cols}"));
        assert_bits_eq(&datt_s, &datt_l, &format!("fused grad datt cols={cols}"));
        // Reference: dmsg = g gathered by head; datt += rowwise dots
        // against the gathered tails; dh scattered by tail.
        let mut dmsg = vec![0.0; tails.len() * cols];
        scalar::gather_rows_into(&g, cols, &heads, &mut dmsg);
        let mut et_raw = vec![0.0; tails.len() * cols];
        scalar::gather_rows_into(&h, cols, &tails, &mut et_raw);
        let mut dots = vec![0.0; tails.len()];
        scalar::rowwise_dot_into(&dmsg, &et_raw, cols, &mut dots);
        let datt_ref: Vec<f32> = datt0.iter().zip(&dots).map(|(&x, &d)| x + d).collect();
        scalar::scale_rows(&mut dmsg, cols, &att);
        let mut dh_ref = dh0.clone();
        scalar::scatter_add_rows(&mut dh_ref, cols, &tails, &dmsg);
        assert_bits_eq(&datt_s, &datt_ref, &format!("fused grad datt vs chain cols={cols}"));
        assert_bits_eq(&dh_s, &dh_ref, &format!("fused grad dh vs chain cols={cols}"));
    }
}

#[test]
fn fused_activation_grads_match() {
    type Fused = (fn(&[f32], &[f32], &mut [f32]), fn(&[f32], &[f32], &mut [f32]), &'static str);
    let cases: Vec<Fused> = vec![
        (scalar::leaky_relu_grad_mul, lanes::leaky_relu_grad_mul, "leaky_relu"),
        (scalar::relu_grad_mul, lanes::relu_grad_mul, "relu"),
        (scalar::tanh_grad_mul, lanes::tanh_grad_mul, "tanh"),
        (scalar::sigmoid_grad_mul, lanes::sigmoid_grad_mul, "sigmoid"),
        (scalar::log_sigmoid_grad_mul, lanes::log_sigmoid_grad_mul, "log_sigmoid"),
    ];
    for &n in SIZES {
        let x = vec_of(n, 23);
        let g = vec_of(n, 24);
        for (s, l, name) in &cases {
            let mut o_s = vec![0.0; n];
            let mut o_l = vec![0.0; n];
            s(&x, &g, &mut o_s);
            l(&x, &g, &mut o_l);
            assert_bits_eq(&o_s, &o_l, &format!("{name}_grad_mul n={n}"));
        }
    }
}

#[test]
fn softmax_and_segment_kernels_match_with_empty_segments() {
    for &n in SIZES {
        let mut s = vec_of(n, 25);
        let mut l = s.clone();
        scalar::softmax_in_place(&mut s);
        lanes::softmax_in_place(&mut l);
        assert_bits_eq(&s, &l, &format!("softmax n={n}"));
    }

    // CSR offsets with empty segments at the front, middle, and end.
    let offsets = [0usize, 0, 3, 3, 10, 17, 17];
    let n = *offsets.last().unwrap();
    let y0 = vec_of(n, 26);
    // Softmax each segment with both renderings.
    let mut y_s = y0.clone();
    let mut y_l = y0;
    for w in offsets.windows(2) {
        scalar::softmax_in_place(&mut y_s[w[0]..w[1]]);
        lanes::softmax_in_place(&mut y_l[w[0]..w[1]]);
    }
    assert_bits_eq(&y_s, &y_l, "segment softmax with empty segments");

    // Backward over the same segments.
    let g = vec_of(n, 27);
    let mut o_s = vec![0.0; n];
    let mut o_l = vec![0.0; n];
    scalar::segment_softmax_grad_into(&y_s, &g, &offsets, &mut o_s);
    lanes::segment_softmax_grad_into(&y_l, &g, &offsets, &mut o_l);
    assert_bits_eq(&o_s, &o_l, "segment softmax grad");
}

/// Tape-level: a full CKAT-shaped attention + propagation + BPR backward
/// is bitwise identical with the vectorized kernels on vs forced off.
/// This is the property the trainer's cross-mode loss gates stand on.
#[test]
fn ckat_shaped_backward_is_bitwise_identical_kernels_on_vs_off() {
    use facility_autograd::Tape;
    use facility_linalg::Matrix;
    use std::sync::Arc;

    // One run of the whole chain; returns (loss_bits, grads_bits).
    fn run() -> (u32, Vec<Vec<u32>>) {
        let (n, d, k) = (9, 5, 4);
        let ent = Matrix::from_vec(n, d, vec_of(n * d, 30));
        let w = Matrix::from_vec(2 * d, k, vec_of(2 * d * k, 31));
        let bias = Matrix::from_vec(1, k, vec_of(k, 32));
        // CSR-ish neighborhood: heads with 0–4 edges each.
        let tails: Arc<Vec<usize>> = Arc::new(vec![1, 2, 3, 0, 2, 4, 5, 8, 7]);
        let heads: Arc<Vec<usize>> = Arc::new(vec![0, 0, 0, 1, 1, 2, 3, 3, 6]);
        let offsets: Arc<Vec<usize>> = Arc::new(vec![0, 3, 5, 6, 8, 8, 8, 9, 9, 9]);

        let mut t = Tape::new();
        let e = t.leaf(ent);
        let wv = t.leaf(w);
        let bv = t.leaf(bias);
        // Attention scores over edges → segment softmax per head.
        let et = t.gather_rows(e, &tails);
        let eh = t.gather_rows(e, &heads);
        let raw = t.rowwise_dot(et, eh);
        let att = t.segment_softmax(raw, Arc::clone(&offsets));
        // Message passing: att-weighted tail rows summed into heads.
        let weighted = t.mul_broadcast_col(et, att);
        let agg = t.segment_sum(weighted, Arc::clone(&heads), 9);
        // Propagation layer: concat, project, bias, activations.
        let cat = t.concat_cols(e, agg);
        let proj = t.matmul(cat, wv);
        let proj = t.add_broadcast_row(proj, bv);
        let act = t.leaky_relu(proj);
        let act = t.tanh(act);
        let normed = t.normalize_rows(act);
        // BPR-ish head: rowwise dots → log-sigmoid → mean.
        let pos = t.gather_rows(normed, &[0, 1, 2]);
        let neg = t.gather_rows(normed, &[3, 4, 5]);
        let gap = t.rowwise_dot(pos, neg);
        let ls = t.log_sigmoid(gap);
        let loss = t.mean_all(ls);
        t.backward(loss);

        let loss_bits = t.value(loss)[(0, 0)].to_bits();
        let grads = [e, wv, bv]
            .iter()
            .map(|&v| t.grad(v).unwrap().as_slice().iter().map(|x| x.to_bits()).collect())
            .collect();
        (loss_bits, grads)
    }

    assert!(!kernels::scalar_kernels(), "default is vectorized");
    let fast = run();
    kernels::set_scalar_kernels(true);
    let slow = run();
    kernels::set_scalar_kernels(false);

    assert_eq!(fast.0, slow.0, "loss must be bitwise identical");
    for (i, (a, b)) in fast.1.iter().zip(&slow.1).enumerate() {
        assert_eq!(a, b, "gradient {i} must be bitwise identical");
    }
}
