//! Property-based tests for the linalg substrate.

use facility_linalg::{matrix::dot, ops, Matrix};
use proptest::prelude::*;

/// Strategy: a matrix with bounded dimensions and bounded finite values.
fn matrix_strategy(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        prop::collection::vec(-10.0f32..10.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

/// Two matrices with identical shapes.
fn same_shape_pair(max_dim: usize) -> impl Strategy<Value = (Matrix, Matrix)> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        let v = prop::collection::vec(-10.0f32..10.0, r * c);
        (v.clone(), v)
            .prop_map(move |(a, b)| (Matrix::from_vec(r, c, a), Matrix::from_vec(r, c, b)))
    })
}

proptest! {
    #[test]
    fn add_commutes((a, b) in same_shape_pair(12)) {
        prop_assert_eq!(a.add(&b), b.add(&a));
    }

    #[test]
    fn sub_then_add_roundtrips((a, b) in same_shape_pair(12)) {
        let c = a.sub(&b).add(&b);
        for (x, y) in c.as_slice().iter().zip(a.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn transpose_is_involutive(a in matrix_strategy(12)) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matmul_identity_right(a in matrix_strategy(12)) {
        let i = Matrix::eye(a.cols());
        prop_assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn matmul_transpose_variants_agree(a in matrix_strategy(10), b in matrix_strategy(10)) {
        // Reshape b so inner dims agree: use bᵀ·? forms via fresh matrices.
        let b2 = Matrix::from_vec(a.cols(), b.rows().min(8),
            (0..a.cols() * b.rows().min(8)).map(|x| (x % 5) as f32 - 2.0).collect());
        let expected = a.matmul(&b2);
        let via_tb = a.matmul_transpose_b(&b2.transpose());
        for (x, y) in expected.as_slice().iter().zip(via_tb.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn gather_rows_copies_exact(a in matrix_strategy(12), seed in 0usize..100) {
        let idx: Vec<usize> = (0..a.rows()).map(|i| (i * 7 + seed) % a.rows()).collect();
        let g = a.gather_rows(&idx);
        for (dst, &src) in idx.iter().enumerate() {
            prop_assert_eq!(g.row(dst), a.row(src));
        }
    }

    #[test]
    fn concat_cols_preserves_halves(a in matrix_strategy(10)) {
        let c = a.concat_cols(&a);
        prop_assert_eq!(c.cols(), 2 * a.cols());
        for r in 0..a.rows() {
            prop_assert_eq!(&c.row(r)[..a.cols()], a.row(r));
            prop_assert_eq!(&c.row(r)[a.cols()..], a.row(r));
        }
    }

    #[test]
    fn rowwise_dot_matches_scalar_dot((a, b) in same_shape_pair(12)) {
        let d = a.rowwise_dot(&b);
        for r in 0..a.rows() {
            prop_assert!((d[(r, 0)] - dot(a.row(r), b.row(r))).abs() < 1e-3);
        }
    }

    #[test]
    fn softmax_is_distribution(mut xs in prop::collection::vec(-50.0f32..50.0, 1..64)) {
        ops::softmax_in_place(&mut xs);
        let sum: f32 = xs.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(xs.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn frobenius_is_nonneg_and_zero_iff_zero(a in matrix_strategy(12)) {
        prop_assert!(a.frobenius_sq() >= 0.0);
        let z = Matrix::zeros(a.rows(), a.cols());
        prop_assert_eq!(z.frobenius_sq(), 0.0);
    }

    #[test]
    fn scale_distributes_over_add((a, b) in same_shape_pair(10), s in -3.0f32..3.0) {
        let lhs = a.add(&b).scale(s);
        let rhs = a.scale(s).add(&b.scale(s));
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }
}
