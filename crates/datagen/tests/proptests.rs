//! Property-based tests for the facility simulator: any valid
//! configuration must yield a structurally sound world.

use facility_datagen::{stats, FacilityConfig, Trace};
use facility_kg::SourceMask;
use facility_linalg::seeded_rng;
use proptest::prelude::*;

fn config_strategy() -> impl Strategy<Value = FacilityConfig> {
    (
        2usize..6,   // regions
        0usize..10,  // extra sites beyond regions
        1usize..6,   // instrument classes
        2usize..8,   // data types
        1usize..3,   // disciplines
        5usize..60,  // items
        5usize..40,  // users
        2usize..8,   // cities
        1usize..6,   // organizations
        0.0f64..1.0, // locality affinity
        0.0f64..1.0, // datatype affinity
        0.0f64..0.6, // metadata noise
    )
        .prop_map(
            |(
                regions,
                extra_sites,
                classes,
                types,
                discs,
                items,
                users,
                cities,
                orgs,
                loc,
                ty,
                noise,
            )| {
                let mut c = FacilityConfig::tiny();
                c.n_regions = regions;
                c.n_sites = regions + extra_sites;
                c.n_instrument_classes = classes;
                c.n_data_types = types.max(discs);
                c.n_disciplines = discs;
                c.n_items = items;
                c.n_users = users;
                c.n_cities = cities;
                c.n_organizations = orgs;
                c.locality_affinity = loc;
                c.datatype_affinity = ty;
                c.metadata_noise = noise;
                c.pref_types_per_org = c.pref_types_per_org.min(c.n_data_types);
                c
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_valid_config_generates_a_sound_world(cfg in config_strategy(), seed in 0u64..100) {
        cfg.validate();
        let trace = Trace::generate(&cfg, seed);
        // Every event references valid ids; every user is active.
        let mut active = vec![false; cfg.n_users];
        for e in &trace.events {
            prop_assert!((e.item as usize) < cfg.n_items);
            prop_assert!((e.user as usize) < cfg.n_users);
            active[e.user as usize] = true;
        }
        prop_assert!(active.iter().all(|&a| a));
        // Item metadata is internally consistent.
        for item in &trace.catalog.items {
            prop_assert!(item.site < cfg.n_sites);
            prop_assert!(item.recorded_site < cfg.n_sites);
            prop_assert!(item.recorded_type < cfg.n_data_types);
            prop_assert_eq!(item.region, trace.catalog.site_region[item.site]);
        }
        // Users reference valid profile components.
        for u in &trace.population.users {
            prop_assert!(u.city < cfg.n_cities);
            prop_assert!(u.home_site < cfg.n_sites);
            prop_assert_eq!(u.home_site % cfg.n_regions, u.home_region);
            prop_assert!(!u.pref_types.is_empty());
        }
    }

    #[test]
    fn trace_to_ckg_roundtrip_is_consistent(cfg in config_strategy(), seed in 0u64..100) {
        let trace = Trace::generate(&cfg, seed);
        let inter = trace.split_interactions(0.2, &mut seeded_rng(seed));
        let mut b = trace.ckg_builder(3);
        b.add_interactions(&inter.train_pairs);
        let ckg = b.build(SourceMask::all_with_noise());
        prop_assert_eq!(ckg.n_users, cfg.n_users);
        prop_assert_eq!(ckg.n_items, cfg.n_items);
        // Every training pair appears as an Interact triple.
        for &(u, i) in inter.train_pairs.iter().take(50) {
            prop_assert!(ckg.has_triple(u, 0, ckg.item_entity(i) as u32));
        }
    }

    #[test]
    fn fig3_series_lengths_and_order(cfg in config_strategy(), seed in 0u64..100) {
        let trace = Trace::generate(&cfg, seed);
        let s = stats::fig3_series(&trace);
        prop_assert_eq!(s.data_objects.len(), cfg.n_users);
        prop_assert!(s.data_objects.windows(2).all(|w| w[0] >= w[1]));
        // Distinct locations can never exceed distinct objects per rank-sum.
        let total_obj: usize = s.data_objects.iter().sum();
        let total_loc: usize = s.locations.iter().sum();
        prop_assert!(total_loc <= total_obj);
    }

    #[test]
    fn affinity_shares_are_probabilities(cfg in config_strategy(), seed in 0u64..100) {
        let trace = Trace::generate(&cfg, seed);
        let (r, t) = stats::affinity_shares(&trace);
        prop_assert!((0.0..=1.0).contains(&r));
        prop_assert!((0.0..=1.0).contains(&t));
    }
}
