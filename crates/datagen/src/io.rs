//! Plain-text (CSV) serialization of simulated traces.
//!
//! A trace is written as a directory of three files so datasets can be
//! shared, versioned, and — importantly — *replaced by real facility
//! exports* with the same schema:
//!
//! * `events.csv` — `user,item` per query record,
//! * `items.csv` — the catalog (`item,site,region,class,data_type,
//!   discipline,recorded_site,recorded_type`),
//! * `users.csv` — the population (`user,org,city,home_region,home_site,
//!   conformist,pref_types`; preferred types are `;`-separated),
//! * `meta.csv` — the generating configuration as `key,value` rows.
//!
//! [`write_trace`] / [`read_trace`] round-trip losslessly (verified by
//! tests).

use crate::catalog::{Catalog, ItemMeta};
use crate::config::FacilityConfig;
use crate::population::{Organization, Population, UserMeta};
use crate::trace::{QueryEvent, Trace};
use std::fmt::Write as _;
use std::fs;
use std::io::{self, Write as _};
use std::path::Path;

/// Write `trace` into directory `dir` (created if missing).
pub fn write_trace(trace: &Trace, dir: &Path) -> io::Result<()> {
    fs::create_dir_all(dir)?;

    let mut events = String::from("user,item\n");
    for e in &trace.events {
        let _ = writeln!(events, "{},{}", e.user, e.item);
    }
    write_file(&dir.join("events.csv"), &events)?;

    let mut items =
        String::from("item,site,region,class,data_type,discipline,recorded_site,recorded_type\n");
    for (i, m) in trace.catalog.items.iter().enumerate() {
        let _ = writeln!(
            items,
            "{i},{},{},{},{},{},{},{}",
            m.site,
            m.region,
            m.instrument_class,
            m.data_type,
            m.discipline,
            m.recorded_site,
            m.recorded_type
        );
    }
    write_file(&dir.join("items.csv"), &items)?;

    let mut users = String::from("user,org,city,home_region,home_site,conformist,pref_types\n");
    for (u, m) in trace.population.users.iter().enumerate() {
        let prefs: Vec<String> = m.pref_types.iter().map(|t| t.to_string()).collect();
        let _ = writeln!(
            users,
            "{u},{},{},{},{},{},{}",
            m.org,
            m.city,
            m.home_region,
            m.home_site,
            m.conformist as u8,
            prefs.join(";")
        );
    }
    write_file(&dir.join("users.csv"), &users)?;

    let c = &trace.config;
    let meta = format!(
        "key,value\nname,{}\nn_regions,{}\nn_sites,{}\nn_instrument_classes,{}\n\
         n_data_types,{}\nn_disciplines,{}\nn_items,{}\nn_users,{}\nn_cities,{}\n\
         n_organizations,{}\norg_conformity,{}\nactivity_log_mean,{}\n\
         activity_log_std,{}\nlocality_affinity,{}\ndatatype_affinity,{}\n\
         pref_types_per_org,{}\nmetadata_noise,{}\n",
        c.name,
        c.n_regions,
        c.n_sites,
        c.n_instrument_classes,
        c.n_data_types,
        c.n_disciplines,
        c.n_items,
        c.n_users,
        c.n_cities,
        c.n_organizations,
        c.org_conformity,
        c.activity_log_mean,
        c.activity_log_std,
        c.locality_affinity,
        c.datatype_affinity,
        c.pref_types_per_org,
        c.metadata_noise,
    );
    write_file(&dir.join("meta.csv"), &meta)
}

fn write_file(path: &Path, contents: &str) -> io::Result<()> {
    // Buffered single write keeps this I/O-bound path to one syscall.
    let mut f = io::BufWriter::new(fs::File::create(path)?);
    f.write_all(contents.as_bytes())?;
    f.flush()
}

/// Error type for trace loading.
#[derive(Debug)]
pub enum ReadError {
    /// I/O failure.
    Io(io::Error),
    /// A malformed line: `(file, line number, message)`.
    Parse(String, usize, String),
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "io error: {e}"),
            ReadError::Parse(file, line, msg) => {
                write!(f, "{file}:{line}: {msg}")
            }
        }
    }
}

impl std::error::Error for ReadError {}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> Self {
        ReadError::Io(e)
    }
}

fn parse<T: std::str::FromStr>(file: &str, line_no: usize, field: &str) -> Result<T, ReadError> {
    field
        .trim()
        .parse()
        .map_err(|_| ReadError::Parse(file.to_string(), line_no, format!("bad field `{field}`")))
}

/// Read a trace directory written by [`write_trace`].
pub fn read_trace(dir: &Path) -> Result<Trace, ReadError> {
    // meta.csv → FacilityConfig.
    let meta_text = fs::read_to_string(dir.join("meta.csv"))?;
    let mut kv = std::collections::HashMap::new();
    for (i, line) in meta_text.lines().enumerate().skip(1) {
        let (k, v) = line.split_once(',').ok_or_else(|| {
            ReadError::Parse("meta.csv".into(), i + 1, "expected key,value".into())
        })?;
        kv.insert(k.to_string(), v.to_string());
    }
    let get = |k: &str| -> Result<String, ReadError> {
        kv.get(k)
            .cloned()
            .ok_or_else(|| ReadError::Parse("meta.csv".into(), 0, format!("missing key {k}")))
    };
    let config = FacilityConfig {
        name: get("name")?,
        n_regions: parse("meta.csv", 0, &get("n_regions")?)?,
        n_sites: parse("meta.csv", 0, &get("n_sites")?)?,
        n_instrument_classes: parse("meta.csv", 0, &get("n_instrument_classes")?)?,
        n_data_types: parse("meta.csv", 0, &get("n_data_types")?)?,
        n_disciplines: parse("meta.csv", 0, &get("n_disciplines")?)?,
        n_items: parse("meta.csv", 0, &get("n_items")?)?,
        n_users: parse("meta.csv", 0, &get("n_users")?)?,
        n_cities: parse("meta.csv", 0, &get("n_cities")?)?,
        n_organizations: parse("meta.csv", 0, &get("n_organizations")?)?,
        org_conformity: parse("meta.csv", 0, &get("org_conformity")?)?,
        activity_log_mean: parse("meta.csv", 0, &get("activity_log_mean")?)?,
        activity_log_std: parse("meta.csv", 0, &get("activity_log_std")?)?,
        locality_affinity: parse("meta.csv", 0, &get("locality_affinity")?)?,
        datatype_affinity: parse("meta.csv", 0, &get("datatype_affinity")?)?,
        pref_types_per_org: parse("meta.csv", 0, &get("pref_types_per_org")?)?,
        metadata_noise: parse("meta.csv", 0, &get("metadata_noise")?)?,
    };
    config.validate();

    // items.csv → Catalog (derived indexes rebuilt).
    let items_text = fs::read_to_string(dir.join("items.csv"))?;
    let mut items: Vec<ItemMeta> = Vec::new();
    for (i, line) in items_text.lines().enumerate().skip(1) {
        let f: Vec<&str> = line.split(',').collect();
        if f.len() != 8 {
            return Err(ReadError::Parse("items.csv".into(), i + 1, "expected 8 fields".into()));
        }
        items.push(ItemMeta {
            site: parse("items.csv", i + 1, f[1])?,
            region: parse("items.csv", i + 1, f[2])?,
            instrument_class: parse("items.csv", i + 1, f[3])?,
            data_type: parse("items.csv", i + 1, f[4])?,
            discipline: parse("items.csv", i + 1, f[5])?,
            recorded_site: parse("items.csv", i + 1, f[6])?,
            recorded_type: parse("items.csv", i + 1, f[7])?,
        });
    }
    let catalog = Catalog::from_parts(&config, items);

    // users.csv → Population.
    let users_text = fs::read_to_string(dir.join("users.csv"))?;
    let mut users: Vec<UserMeta> = Vec::new();
    for (i, line) in users_text.lines().enumerate().skip(1) {
        let f: Vec<&str> = line.split(',').collect();
        if f.len() != 7 {
            return Err(ReadError::Parse("users.csv".into(), i + 1, "expected 7 fields".into()));
        }
        let pref_types: Result<Vec<usize>, _> =
            f[6].split(';').map(|t| parse("users.csv", i + 1, t)).collect();
        users.push(UserMeta {
            org: parse("users.csv", i + 1, f[1])?,
            city: parse("users.csv", i + 1, f[2])?,
            home_region: parse("users.csv", i + 1, f[3])?,
            home_site: parse("users.csv", i + 1, f[4])?,
            conformist: f[5].trim() == "1",
            pref_types: pref_types?,
        });
    }
    let population = Population::from_users(&config, users);

    // events.csv.
    let events_text = fs::read_to_string(dir.join("events.csv"))?;
    let mut events = Vec::new();
    for (i, line) in events_text.lines().enumerate().skip(1) {
        let (u, it) = line.split_once(',').ok_or_else(|| {
            ReadError::Parse("events.csv".into(), i + 1, "expected user,item".into())
        })?;
        let user: u32 = parse("events.csv", i + 1, u)?;
        let item: u32 = parse("events.csv", i + 1, it)?;
        if user as usize >= config.n_users || item as usize >= config.n_items {
            return Err(ReadError::Parse(
                "events.csv".into(),
                i + 1,
                format!("event ({user},{item}) out of range"),
            ));
        }
        events.push(QueryEvent { user, item });
    }

    Ok(Trace { config, catalog, population, events })
}

/// Extension hooks for reconstructing derived structures after I/O.
impl Catalog {
    /// Rebuild a catalog from explicit items (indexes derived).
    ///
    /// # Panics
    /// Panics if an item references an out-of-range site or data type.
    pub fn from_parts(config: &FacilityConfig, items: Vec<ItemMeta>) -> Self {
        let site_region: Vec<usize> = (0..config.n_sites).map(|s| s % config.n_regions).collect();
        let type_discipline: Vec<usize> =
            (0..config.n_data_types).map(|t| t % config.n_disciplines).collect();
        let mut items_by_region = vec![Vec::new(); config.n_regions];
        let mut items_by_site = vec![Vec::new(); config.n_sites];
        let mut items_by_type = vec![Vec::new(); config.n_data_types];
        for (i, item) in items.iter().enumerate() {
            assert!(item.site < config.n_sites, "item {i}: site out of range");
            assert!(item.data_type < config.n_data_types, "item {i}: type out of range");
            items_by_region[item.region].push(i as u32);
            items_by_site[item.site].push(i as u32);
            items_by_type[item.data_type].push(i as u32);
        }
        Self {
            site_region,
            // Class menus are generator-only state; reconstruct minimally.
            class_data_types: vec![(0..config.n_data_types).collect(); config.n_instrument_classes],
            type_discipline,
            items,
            items_by_region,
            items_by_site,
            items_by_type,
        }
    }
}

impl Population {
    /// Rebuild a population from explicit users (org profiles are
    /// reconstructed from their members' majority profile).
    pub fn from_users(config: &FacilityConfig, users: Vec<UserMeta>) -> Self {
        let mut users_by_city = vec![Vec::new(); config.n_cities];
        for (u, user) in users.iter().enumerate() {
            users_by_city[user.city].push(u as u32);
        }
        // Org profile := first conformist member's profile (or defaults).
        let mut orgs: Vec<Organization> = (0..config.n_organizations)
            .map(|_| Organization { city: 0, home_region: 0, home_site: 0, pref_types: vec![0] })
            .collect();
        for user in &users {
            if user.conformist && orgs[user.org].pref_types == vec![0] {
                orgs[user.org] = Organization {
                    city: user.city,
                    home_region: user.home_region,
                    home_site: user.home_site,
                    pref_types: user.pref_types.clone(),
                };
            }
        }
        Self { orgs, users, users_by_city }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FacilityConfig;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("facility-io-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn write_read_roundtrip_preserves_everything_needed() {
        let trace = Trace::generate(&FacilityConfig::tiny(), 11);
        let dir = tmpdir("roundtrip");
        write_trace(&trace, &dir).expect("write");
        let back = read_trace(&dir).expect("read");

        assert_eq!(back.events, trace.events);
        assert_eq!(back.catalog.items, trace.catalog.items);
        assert_eq!(back.population.users, trace.population.users);
        assert_eq!(back.config.n_items, trace.config.n_items);
        assert!((back.config.locality_affinity - trace.config.locality_affinity).abs() < 1e-12);

        // The derived CKG is identical too.
        let a = {
            let mut b = trace.ckg_builder(3);
            b.add_interactions(&trace.event_pairs());
            b.build(facility_kg::SourceMask::all())
        };
        let b_ = {
            let mut b = back.ckg_builder(3);
            b.add_interactions(&back.event_pairs());
            b.build(facility_kg::SourceMask::all())
        };
        assert_eq!(a.canonical_triples, b_.canonical_triples);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_rejects_out_of_range_events() {
        let trace = Trace::generate(&FacilityConfig::tiny(), 12);
        let dir = tmpdir("bad-events");
        write_trace(&trace, &dir).expect("write");
        fs::write(dir.join("events.csv"), "user,item\n99999,0\n").unwrap();
        let err = read_trace(&dir).expect_err("must reject");
        assert!(err.to_string().contains("out of range"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_rejects_malformed_rows() {
        let trace = Trace::generate(&FacilityConfig::tiny(), 13);
        let dir = tmpdir("bad-rows");
        write_trace(&trace, &dir).expect("write");
        fs::write(dir.join("items.csv"), "header\nnot-enough-fields\n").unwrap();
        assert!(read_trace(&dir).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_missing_dir_is_io_error() {
        let err =
            read_trace(Path::new("/nonexistent/definitely-missing")).expect_err("missing dir");
        assert!(matches!(err, ReadError::Io(_)));
    }
}
