//! Plain-text (CSV) serialization of simulated traces.
//!
//! A trace is written as a directory of three files so datasets can be
//! shared, versioned, and — importantly — *replaced by real facility
//! exports* with the same schema:
//!
//! * `events.csv` — `user,item` per query record,
//! * `items.csv` — the catalog (`item,site,region,class,data_type,
//!   discipline,recorded_site,recorded_type`),
//! * `users.csv` — the population (`user,org,city,home_region,home_site,
//!   conformist,pref_types`; preferred types are `;`-separated),
//! * `meta.csv` — the generating configuration as `key,value` rows.
//!
//! [`write_trace`] / [`read_trace`] round-trip losslessly (verified by
//! tests).

use crate::catalog::{Catalog, ItemMeta};
use crate::config::FacilityConfig;
use crate::population::{Organization, Population, UserMeta};
use crate::trace::{QueryEvent, Trace};
use std::fmt::Write as _;
use std::fs;
use std::io::{self, Write as _};
use std::path::Path;

/// Marker written in the `pref_types` column for a user with no
/// preferred types; an empty string would not survive `split(';')`.
pub const EMPTY_PREFS_MARKER: &str = "-";

/// Write `trace` into directory `dir` (created if missing).
pub fn write_trace(trace: &Trace, dir: &Path) -> io::Result<()> {
    fs::create_dir_all(dir)?;

    let mut events = String::from("user,item\n");
    for e in &trace.events {
        let _ = writeln!(events, "{},{}", e.user, e.item);
    }
    write_file(&dir.join("events.csv"), &events)?;

    let mut items =
        String::from("item,site,region,class,data_type,discipline,recorded_site,recorded_type\n");
    for (i, m) in trace.catalog.items.iter().enumerate() {
        let _ = writeln!(
            items,
            "{i},{},{},{},{},{},{},{}",
            m.site,
            m.region,
            m.instrument_class,
            m.data_type,
            m.discipline,
            m.recorded_site,
            m.recorded_type
        );
    }
    write_file(&dir.join("items.csv"), &items)?;

    let mut users = String::from("user,org,city,home_region,home_site,conformist,pref_types\n");
    for (u, m) in trace.population.users.iter().enumerate() {
        let prefs: Vec<String> = m.pref_types.iter().map(|t| t.to_string()).collect();
        let prefs = if prefs.is_empty() { EMPTY_PREFS_MARKER.to_string() } else { prefs.join(";") };
        let _ = writeln!(
            users,
            "{u},{},{},{},{},{},{prefs}",
            m.org, m.city, m.home_region, m.home_site, m.conformist as u8,
        );
    }
    write_file(&dir.join("users.csv"), &users)?;

    let c = &trace.config;
    let meta = format!(
        "key,value\nname,{}\nn_regions,{}\nn_sites,{}\nn_instrument_classes,{}\n\
         n_data_types,{}\nn_disciplines,{}\nn_items,{}\nn_users,{}\nn_cities,{}\n\
         n_organizations,{}\norg_conformity,{}\nactivity_log_mean,{}\n\
         activity_log_std,{}\nlocality_affinity,{}\ndatatype_affinity,{}\n\
         pref_types_per_org,{}\nmetadata_noise,{}\n",
        c.name,
        c.n_regions,
        c.n_sites,
        c.n_instrument_classes,
        c.n_data_types,
        c.n_disciplines,
        c.n_items,
        c.n_users,
        c.n_cities,
        c.n_organizations,
        c.org_conformity,
        c.activity_log_mean,
        c.activity_log_std,
        c.locality_affinity,
        c.datatype_affinity,
        c.pref_types_per_org,
        c.metadata_noise,
    );
    write_file(&dir.join("meta.csv"), &meta)
}

fn write_file(path: &Path, contents: &str) -> io::Result<()> {
    // Buffered single write keeps this I/O-bound path to one syscall.
    let mut f = io::BufWriter::new(fs::File::create(path)?);
    f.write_all(contents.as_bytes())?;
    f.flush()
}

/// How [`read_trace_with`] treats malformed or out-of-range rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadMode {
    /// Fail on the first bad row (the historical behavior).
    Strict,
    /// Skip bad rows, counting them into an error budget. Loading fails
    /// with [`ReadError::BudgetExceeded`] once more than `max_bad_rows`
    /// rows have been skipped across the directory. `meta.csv` is always
    /// read strictly — without a sane configuration nothing else can be
    /// interpreted.
    Lenient {
        /// Total bad rows tolerated across `items.csv`, `users.csv`, and
        /// `events.csv`.
        max_bad_rows: usize,
    },
}

/// One row that lenient mode skipped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SkippedRow {
    /// File the row came from (`items.csv`, `users.csv`, `events.csv`).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Why the row was rejected.
    pub reason: String,
}

impl std::fmt::Display for SkippedRow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {}", self.file, self.line, self.reason)
    }
}

/// Per-file account of what lenient loading skipped.
#[derive(Debug, Clone, Default)]
pub struct SkipSummary {
    /// Every skipped row, in read order.
    pub skipped: Vec<SkippedRow>,
}

impl SkipSummary {
    /// Total rows skipped across all files.
    pub fn total(&self) -> usize {
        self.skipped.len()
    }

    /// True when nothing was skipped.
    pub fn is_clean(&self) -> bool {
        self.skipped.is_empty()
    }

    /// `(file, skipped-row count)` pairs, in first-seen order.
    pub fn per_file(&self) -> Vec<(String, usize)> {
        let mut out: Vec<(String, usize)> = Vec::new();
        for row in &self.skipped {
            match out.iter_mut().find(|(f, _)| *f == row.file) {
                Some((_, n)) => *n += 1,
                None => out.push((row.file.clone(), 1)),
            }
        }
        out
    }
}

impl std::fmt::Display for SkipSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_clean() {
            return write!(f, "no rows skipped");
        }
        writeln!(f, "skipped {} bad row(s):", self.total())?;
        for (file, n) in self.per_file() {
            writeln!(f, "  {file}: {n}")?;
        }
        write!(f, "first offenders:")?;
        for row in self.skipped.iter().take(MAX_REPORTED_OFFENDERS) {
            write!(f, "\n  {row}")?;
        }
        Ok(())
    }
}

/// How many offending lines error messages and summaries spell out.
const MAX_REPORTED_OFFENDERS: usize = 8;

/// Error type for trace loading.
#[derive(Debug)]
pub enum ReadError {
    /// I/O failure.
    Io(io::Error),
    /// A malformed line: `(file, line number, message)`.
    Parse(String, usize, String),
    /// Structurally inconsistent data that is not tied to a single line
    /// (bad configuration, wrong row count, out-of-range reference).
    Data(String),
    /// Lenient loading skipped more rows than the budget allows.
    BudgetExceeded {
        /// The configured `max_bad_rows`.
        max_bad_rows: usize,
        /// The first offending rows (capped at a handful for display).
        first: Vec<SkippedRow>,
    },
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "io error: {e}"),
            ReadError::Parse(file, line, msg) => {
                write!(f, "{file}:{line}: {msg}")
            }
            ReadError::Data(msg) => write!(f, "inconsistent trace: {msg}"),
            ReadError::BudgetExceeded { max_bad_rows, first } => {
                write!(
                    f,
                    "more than {max_bad_rows} bad row(s) — lenient budget exhausted; \
                     first offending lines:"
                )?;
                for row in first {
                    write!(f, "\n  {row}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for ReadError {}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> Self {
        ReadError::Io(e)
    }
}

/// Routes bad rows according to the [`ReadMode`]: strict mode turns the
/// first one into an error, lenient mode records it and enforces the
/// budget.
struct RowSink {
    mode: ReadMode,
    summary: SkipSummary,
}

impl RowSink {
    fn new(mode: ReadMode) -> Self {
        Self { mode, summary: SkipSummary::default() }
    }

    /// Report one bad row. `Ok(())` means "skipped, keep going".
    fn bad_row(&mut self, file: &str, line: usize, reason: String) -> Result<(), ReadError> {
        match self.mode {
            ReadMode::Strict => Err(ReadError::Parse(file.to_string(), line, reason)),
            ReadMode::Lenient { max_bad_rows } => {
                self.summary.skipped.push(SkippedRow { file: file.to_string(), line, reason });
                if self.summary.total() > max_bad_rows {
                    let first = self
                        .summary
                        .skipped
                        .iter()
                        .take(MAX_REPORTED_OFFENDERS + 1)
                        .cloned()
                        .collect();
                    return Err(ReadError::BudgetExceeded { max_bad_rows, first });
                }
                Ok(())
            }
        }
    }
}

fn parse<T: std::str::FromStr>(file: &str, line_no: usize, field: &str) -> Result<T, ReadError> {
    field
        .trim()
        .parse()
        .map_err(|_| ReadError::Parse(file.to_string(), line_no, format!("bad field `{field}`")))
}

/// Read a trace directory written by [`write_trace`], failing on the
/// first malformed row (strict mode).
pub fn read_trace(dir: &Path) -> Result<Trace, ReadError> {
    read_trace_with(dir, ReadMode::Strict).map(|(trace, _)| trace)
}

/// Read a trace directory under the given [`ReadMode`].
///
/// In [`ReadMode::Lenient`] malformed or out-of-range rows are skipped
/// (events are dropped; item/user rows keep their positional id but fall
/// back to neutral all-zero metadata so later ids stay aligned) and the
/// returned [`SkipSummary`] accounts for every skip per file. Exceeding
/// `max_bad_rows` aborts with [`ReadError::BudgetExceeded`] listing the
/// first offending lines. Strict mode always returns a clean summary.
pub fn read_trace_with(dir: &Path, mode: ReadMode) -> Result<(Trace, SkipSummary), ReadError> {
    let mut sink = RowSink::new(mode);

    // meta.csv → FacilityConfig. Always strict: without a sane
    // configuration no other file can be interpreted.
    let meta_text = fs::read_to_string(dir.join("meta.csv"))?;
    // audit: ordered — key lookup only (`kv.get`), never iterated
    let mut kv = std::collections::HashMap::new();
    for (i, line) in meta_text.lines().enumerate().skip(1) {
        let (k, v) = line.split_once(',').ok_or_else(|| {
            ReadError::Parse("meta.csv".into(), i + 1, "expected key,value".into())
        })?;
        kv.insert(k.to_string(), v.to_string());
    }
    let get = |k: &str| -> Result<String, ReadError> {
        kv.get(k)
            .cloned()
            .ok_or_else(|| ReadError::Parse("meta.csv".into(), 0, format!("missing key {k}")))
    };
    let config = FacilityConfig {
        name: get("name")?,
        n_regions: parse("meta.csv", 0, &get("n_regions")?)?,
        n_sites: parse("meta.csv", 0, &get("n_sites")?)?,
        n_instrument_classes: parse("meta.csv", 0, &get("n_instrument_classes")?)?,
        n_data_types: parse("meta.csv", 0, &get("n_data_types")?)?,
        n_disciplines: parse("meta.csv", 0, &get("n_disciplines")?)?,
        n_items: parse("meta.csv", 0, &get("n_items")?)?,
        n_users: parse("meta.csv", 0, &get("n_users")?)?,
        n_cities: parse("meta.csv", 0, &get("n_cities")?)?,
        n_organizations: parse("meta.csv", 0, &get("n_organizations")?)?,
        org_conformity: parse("meta.csv", 0, &get("org_conformity")?)?,
        activity_log_mean: parse("meta.csv", 0, &get("activity_log_mean")?)?,
        activity_log_std: parse("meta.csv", 0, &get("activity_log_std")?)?,
        locality_affinity: parse("meta.csv", 0, &get("locality_affinity")?)?,
        datatype_affinity: parse("meta.csv", 0, &get("datatype_affinity")?)?,
        pref_types_per_org: parse("meta.csv", 0, &get("pref_types_per_org")?)?,
        metadata_noise: parse("meta.csv", 0, &get("metadata_noise")?)?,
    };
    config.try_validate().map_err(ReadError::Data)?;

    // items.csv → Catalog (derived indexes rebuilt).
    let items_text = fs::read_to_string(dir.join("items.csv"))?;
    let mut items: Vec<ItemMeta> = Vec::new();
    for (i, line) in items_text.lines().enumerate().skip(1) {
        match parse_item_row(&config, line) {
            Ok(item) => items.push(item),
            Err(reason) => {
                sink.bad_row("items.csv", i + 1, reason)?;
                // Keep positional ids aligned: the skipped row's item
                // still exists, with neutral metadata.
                items.push(ItemMeta::default());
            }
        }
    }
    if items.len() != config.n_items {
        return Err(ReadError::Data(format!(
            "items.csv has {} rows, meta.csv declares n_items {}",
            items.len(),
            config.n_items
        )));
    }
    let catalog = Catalog::from_parts(&config, items)?;

    // users.csv → Population.
    let users_text = fs::read_to_string(dir.join("users.csv"))?;
    let mut users: Vec<UserMeta> = Vec::new();
    for (i, line) in users_text.lines().enumerate().skip(1) {
        match parse_user_row(&config, line) {
            Ok(user) => users.push(user),
            Err(reason) => {
                sink.bad_row("users.csv", i + 1, reason)?;
                users.push(UserMeta {
                    org: 0,
                    city: 0,
                    home_region: 0,
                    home_site: 0,
                    pref_types: Vec::new(),
                    conformist: false,
                });
            }
        }
    }
    if users.len() != config.n_users {
        return Err(ReadError::Data(format!(
            "users.csv has {} rows, meta.csv declares n_users {}",
            users.len(),
            config.n_users
        )));
    }
    let population = Population::from_users(&config, users)?;

    // events.csv — a plain list, so bad rows are dropped outright.
    let events_text = fs::read_to_string(dir.join("events.csv"))?;
    let mut events = Vec::new();
    for (i, line) in events_text.lines().enumerate().skip(1) {
        match parse_event_row(&config, line) {
            Ok(event) => events.push(event),
            Err(reason) => sink.bad_row("events.csv", i + 1, reason)?,
        }
    }

    Ok((Trace { config, catalog, population, events }, sink.summary))
}

fn parse_field<T: std::str::FromStr>(field: &str) -> Result<T, String> {
    field.trim().parse().map_err(|_| format!("bad field `{field}`"))
}

fn check_range(what: &str, value: usize, bound: usize) -> Result<usize, String> {
    if value >= bound {
        return Err(format!("{what} {value} out of range (< {bound})"));
    }
    Ok(value)
}

fn parse_item_row(config: &FacilityConfig, line: &str) -> Result<ItemMeta, String> {
    let f: Vec<&str> = line.split(',').collect();
    if f.len() != 8 {
        return Err(format!("expected 8 fields, got {}", f.len()));
    }
    Ok(ItemMeta {
        site: check_range("site", parse_field(f[1])?, config.n_sites)?,
        region: check_range("region", parse_field(f[2])?, config.n_regions)?,
        instrument_class: check_range(
            "instrument class",
            parse_field(f[3])?,
            config.n_instrument_classes,
        )?,
        data_type: check_range("data type", parse_field(f[4])?, config.n_data_types)?,
        discipline: check_range("discipline", parse_field(f[5])?, config.n_disciplines)?,
        recorded_site: check_range("recorded site", parse_field(f[6])?, config.n_sites)?,
        recorded_type: check_range("recorded type", parse_field(f[7])?, config.n_data_types)?,
    })
}

fn parse_user_row(config: &FacilityConfig, line: &str) -> Result<UserMeta, String> {
    let f: Vec<&str> = line.split(',').collect();
    if f.len() != 7 {
        return Err(format!("expected 7 fields, got {}", f.len()));
    }
    // `-` (and, leniently, the empty string) marks an empty preference
    // list; `"".split(';')` would otherwise yield one empty field and
    // fail the round-trip.
    let prefs_field = f[6].trim();
    let pref_types: Vec<usize> = if prefs_field == EMPTY_PREFS_MARKER || prefs_field.is_empty() {
        Vec::new()
    } else {
        prefs_field
            .split(';')
            .map(|t| check_range("preferred type", parse_field(t)?, config.n_data_types))
            .collect::<Result<_, _>>()?
    };
    Ok(UserMeta {
        org: check_range("org", parse_field(f[1])?, config.n_organizations)?,
        city: check_range("city", parse_field(f[2])?, config.n_cities)?,
        home_region: check_range("home region", parse_field(f[3])?, config.n_regions)?,
        home_site: check_range("home site", parse_field(f[4])?, config.n_sites)?,
        conformist: f[5].trim() == "1",
        pref_types,
    })
}

fn parse_event_row(config: &FacilityConfig, line: &str) -> Result<QueryEvent, String> {
    let (u, it) = line.split_once(',').ok_or("expected user,item")?;
    let user: u32 = parse_field(u)?;
    let item: u32 = parse_field(it)?;
    if user as usize >= config.n_users || item as usize >= config.n_items {
        return Err(format!("event ({user},{item}) out of range"));
    }
    Ok(QueryEvent { user, item })
}

/// Extension hooks for reconstructing derived structures after I/O.
impl Catalog {
    /// Rebuild a catalog from explicit items (indexes derived).
    ///
    /// Fails with [`ReadError::Data`] if an item references an
    /// out-of-range site, region, or data type — a corrupt `items.csv`
    /// surfaces as a clean error, never a panic.
    pub fn from_parts(config: &FacilityConfig, items: Vec<ItemMeta>) -> Result<Self, ReadError> {
        let site_region: Vec<usize> = (0..config.n_sites).map(|s| s % config.n_regions).collect();
        let type_discipline: Vec<usize> =
            (0..config.n_data_types).map(|t| t % config.n_disciplines).collect();
        let mut items_by_region = vec![Vec::new(); config.n_regions];
        let mut items_by_site = vec![Vec::new(); config.n_sites];
        let mut items_by_type = vec![Vec::new(); config.n_data_types];
        for (i, item) in items.iter().enumerate() {
            for (what, value, bound) in [
                ("site", item.site, config.n_sites),
                ("region", item.region, config.n_regions),
                ("data type", item.data_type, config.n_data_types),
            ] {
                if value >= bound {
                    return Err(ReadError::Data(format!(
                        "item {i}: {what} {value} out of range (< {bound})"
                    )));
                }
            }
            items_by_region[item.region].push(i as u32);
            items_by_site[item.site].push(i as u32);
            items_by_type[item.data_type].push(i as u32);
        }
        Ok(Self {
            site_region,
            // Class menus are generator-only state; reconstruct minimally.
            class_data_types: vec![(0..config.n_data_types).collect(); config.n_instrument_classes],
            type_discipline,
            items,
            items_by_region,
            items_by_site,
            items_by_type,
        })
    }
}

impl Population {
    /// Rebuild a population from explicit users (org profiles are
    /// reconstructed from their members' majority profile).
    ///
    /// Fails with [`ReadError::Data`] on an out-of-range city or org
    /// index instead of panicking while building the `users_by_city`
    /// index.
    pub fn from_users(config: &FacilityConfig, users: Vec<UserMeta>) -> Result<Self, ReadError> {
        let mut users_by_city = vec![Vec::new(); config.n_cities];
        for (u, user) in users.iter().enumerate() {
            if user.city >= config.n_cities {
                return Err(ReadError::Data(format!(
                    "user {u}: city {} out of range (< {})",
                    user.city, config.n_cities
                )));
            }
            if user.org >= config.n_organizations {
                return Err(ReadError::Data(format!(
                    "user {u}: org {} out of range (< {})",
                    user.org, config.n_organizations
                )));
            }
            users_by_city[user.city].push(u as u32);
        }
        // Org profile := first conformist member's profile (or defaults).
        let mut orgs: Vec<Organization> = (0..config.n_organizations)
            .map(|_| Organization { city: 0, home_region: 0, home_site: 0, pref_types: vec![0] })
            .collect();
        for user in &users {
            if user.conformist && orgs[user.org].pref_types == vec![0] {
                orgs[user.org] = Organization {
                    city: user.city,
                    home_region: user.home_region,
                    home_site: user.home_site,
                    pref_types: user.pref_types.clone(),
                };
            }
        }
        Ok(Self { orgs, users, users_by_city })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FacilityConfig;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("facility-io-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn write_read_roundtrip_preserves_everything_needed() {
        let trace = Trace::generate(&FacilityConfig::tiny(), 11);
        let dir = tmpdir("roundtrip");
        write_trace(&trace, &dir).expect("write");
        let back = read_trace(&dir).expect("read");

        assert_eq!(back.events, trace.events);
        assert_eq!(back.catalog.items, trace.catalog.items);
        assert_eq!(back.population.users, trace.population.users);
        assert_eq!(back.config.n_items, trace.config.n_items);
        assert!((back.config.locality_affinity - trace.config.locality_affinity).abs() < 1e-12);

        // The derived CKG is identical too.
        let a = {
            let mut b = trace.ckg_builder(3);
            b.add_interactions(&trace.event_pairs());
            b.build(facility_kg::SourceMask::all())
        };
        let b_ = {
            let mut b = back.ckg_builder(3);
            b.add_interactions(&back.event_pairs());
            b.build(facility_kg::SourceMask::all())
        };
        assert_eq!(a.canonical_triples, b_.canonical_triples);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_rejects_out_of_range_events() {
        let trace = Trace::generate(&FacilityConfig::tiny(), 12);
        let dir = tmpdir("bad-events");
        write_trace(&trace, &dir).expect("write");
        fs::write(dir.join("events.csv"), "user,item\n99999,0\n").unwrap();
        let err = read_trace(&dir).expect_err("must reject");
        assert!(err.to_string().contains("out of range"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_rejects_malformed_rows() {
        let trace = Trace::generate(&FacilityConfig::tiny(), 13);
        let dir = tmpdir("bad-rows");
        write_trace(&trace, &dir).expect("write");
        fs::write(dir.join("items.csv"), "header\nnot-enough-fields\n").unwrap();
        assert!(read_trace(&dir).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_missing_dir_is_io_error() {
        let err =
            read_trace(Path::new("/nonexistent/definitely-missing")).expect_err("missing dir");
        assert!(matches!(err, ReadError::Io(_)));
    }

    #[test]
    fn empty_pref_types_roundtrip() {
        let mut trace = Trace::generate(&FacilityConfig::tiny(), 21);
        trace.population.users[0].pref_types = Vec::new();
        trace.population.users[0].conformist = false;
        let dir = tmpdir("empty-prefs");
        write_trace(&trace, &dir).expect("write");
        let users_text = fs::read_to_string(dir.join("users.csv")).unwrap();
        assert!(
            users_text.lines().nth(1).unwrap().ends_with(&format!(",{EMPTY_PREFS_MARKER}")),
            "empty prefs must be written as the explicit marker"
        );
        let back = read_trace(&dir).expect("read");
        assert_eq!(back.population.users[0].pref_types, Vec::<usize>::new());
        assert_eq!(back.population.users, trace.population.users);
        let _ = fs::remove_dir_all(&dir);
    }

    /// Replace `events.csv` with the original plus `extra` appended rows.
    fn poison_events(dir: &Path, extra: &[&str]) {
        let mut text = fs::read_to_string(dir.join("events.csv")).unwrap();
        for row in extra {
            text.push_str(row);
            text.push('\n');
        }
        fs::write(dir.join("events.csv"), text).unwrap();
    }

    #[test]
    fn lenient_mode_skips_within_budget_with_accurate_summary() {
        let trace = Trace::generate(&FacilityConfig::tiny(), 14);
        let dir = tmpdir("lenient-ok");
        write_trace(&trace, &dir).expect("write");
        poison_events(&dir, &["99999,0", "not-a-row", "0,99999"]);

        // Strict mode still fails outright.
        assert!(read_trace(&dir).is_err());

        let (back, summary) =
            read_trace_with(&dir, ReadMode::Lenient { max_bad_rows: 3 }).expect("lenient load");
        assert_eq!(back.events.len(), trace.events.len(), "good rows all kept");
        assert_eq!(summary.total(), 3);
        assert_eq!(summary.per_file(), vec![("events.csv".to_string(), 3)]);
        assert!(summary.to_string().contains("events.csv: 3"), "{summary}");
        let n = trace.events.len() + 1;
        assert_eq!(summary.skipped[0].line, n + 1, "line numbers count the header");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn lenient_mode_over_budget_reports_first_offenders() {
        let trace = Trace::generate(&FacilityConfig::tiny(), 15);
        let dir = tmpdir("lenient-over");
        write_trace(&trace, &dir).expect("write");
        poison_events(&dir, &["a,b", "c,d", "e,f"]);
        let err = read_trace_with(&dir, ReadMode::Lenient { max_bad_rows: 2 })
            .expect_err("budget of 2 must not absorb 3 bad rows");
        match err {
            ReadError::BudgetExceeded { max_bad_rows, first } => {
                assert_eq!(max_bad_rows, 2);
                assert_eq!(first.len(), 3);
                assert!(first[0].reason.contains("bad field"), "{:?}", first[0]);
            }
            other => panic!("expected BudgetExceeded, got {other}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn lenient_mode_keeps_item_and_user_ids_aligned() {
        let trace = Trace::generate(&FacilityConfig::tiny(), 16);
        let dir = tmpdir("lenient-align");
        write_trace(&trace, &dir).expect("write");
        // Corrupt item row 1 (line 3: header + item 0) and user row 0.
        let items_text = fs::read_to_string(dir.join("items.csv")).unwrap();
        let mut lines: Vec<String> = items_text.lines().map(String::from).collect();
        lines[2] = "1,99999,0,0,0,0,0,0".into(); // site out of range
        fs::write(dir.join("items.csv"), lines.join("\n") + "\n").unwrap();
        let users_text = fs::read_to_string(dir.join("users.csv")).unwrap();
        let mut lines: Vec<String> = users_text.lines().map(String::from).collect();
        lines[1] = "0,garbage".into();
        fs::write(dir.join("users.csv"), lines.join("\n") + "\n").unwrap();

        let (back, summary) =
            read_trace_with(&dir, ReadMode::Lenient { max_bad_rows: 4 }).expect("lenient load");
        assert_eq!(summary.total(), 2);
        assert_eq!(back.catalog.items.len(), trace.catalog.items.len());
        assert_eq!(back.catalog.items[1], ItemMeta::default(), "skipped item is neutral");
        assert_eq!(back.catalog.items[2], trace.catalog.items[2], "later ids unshifted");
        assert_eq!(back.population.users[1], trace.population.users[1]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_items_row_is_an_error_not_a_panic() {
        let config = FacilityConfig::tiny();
        let bad = vec![ItemMeta { site: 99_999, ..ItemMeta::default() }];
        let err = Catalog::from_parts(&config, bad).expect_err("out-of-range site");
        assert!(err.to_string().contains("site 99999 out of range"), "{err}");
    }

    #[test]
    fn out_of_range_city_is_an_error_not_a_panic() {
        let config = FacilityConfig::tiny();
        let bad = vec![UserMeta {
            org: 0,
            city: 99_999,
            home_region: 0,
            home_site: 0,
            pref_types: Vec::new(),
            conformist: false,
        }];
        let err = Population::from_users(&config, bad).expect_err("out-of-range city");
        assert!(err.to_string().contains("city 99999 out of range"), "{err}");
    }

    #[test]
    fn truncated_items_file_is_a_data_error() {
        let trace = Trace::generate(&FacilityConfig::tiny(), 17);
        let dir = tmpdir("trunc-items");
        write_trace(&trace, &dir).expect("write");
        let items_text = fs::read_to_string(dir.join("items.csv")).unwrap();
        let keep: Vec<&str> = items_text.lines().take(3).collect();
        fs::write(dir.join("items.csv"), keep.join("\n") + "\n").unwrap();
        let err = read_trace(&dir).expect_err("row count mismatch");
        assert!(matches!(err, ReadError::Data(_)), "{err}");
        assert!(err.to_string().contains("declares n_items"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_meta_is_a_data_error_not_a_panic() {
        let trace = Trace::generate(&FacilityConfig::tiny(), 18);
        let dir = tmpdir("bad-meta");
        write_trace(&trace, &dir).expect("write");
        let meta = fs::read_to_string(dir.join("meta.csv")).unwrap();
        fs::write(dir.join("meta.csv"), meta.replace("locality_affinity,", "locality_affinity,9"))
            .unwrap();
        let err = read_trace(&dir).expect_err("bad probability");
        assert!(matches!(err, ReadError::Data(_)), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }
}
