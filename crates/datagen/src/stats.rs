//! Trace statistics matching the paper's analysis figures.
//!
//! * [`fig3_series`] — per-user distinct data objects / instrument
//!   locations / data types, sorted descending (the distribution curves of
//!   Figure 3).
//! * [`affinity_shares`] — the average share of a user's queries that hit
//!   their modal region and modal data type (the 43.1% / 51.6% numbers of
//!   Section III-B2).
//! * [`pair_affinity`] — the same-city vs random user-pair likelihood
//!   ratios of Figure 5.
//! * [`item_feature_matrix`] / [`top_users_by_activity`] — inputs for the
//!   t-SNE visualization of Figure 4.

use crate::trace::Trace;
use facility_linalg::Matrix;
use rand::Rng;
use rayon::prelude::*;
use std::collections::BTreeMap;

/// Per-user distinct-count series for Figure 3, each sorted descending.
#[derive(Debug, Clone)]
pub struct Fig3Series {
    /// Distinct data objects queried per user.
    pub data_objects: Vec<usize>,
    /// Distinct instrument locations (sites) queried per user.
    pub locations: Vec<usize>,
    /// Distinct data types queried per user.
    pub data_types: Vec<usize>,
}

/// Compute the Figure 3 distribution curves.
pub fn fig3_series(trace: &Trace) -> Fig3Series {
    let n_users = trace.population.n_users();
    // audit: ordered — only `len()` is read from these sets, never iterated
    let mut items: Vec<std::collections::HashSet<u32>> = vec![Default::default(); n_users];
    // audit: ordered — len-only, as above
    let mut sites: Vec<std::collections::HashSet<u32>> = vec![Default::default(); n_users];
    // audit: ordered — len-only, as above
    let mut types: Vec<std::collections::HashSet<u32>> = vec![Default::default(); n_users];
    for e in &trace.events {
        let meta = &trace.catalog.items[e.item as usize];
        items[e.user as usize].insert(e.item);
        sites[e.user as usize].insert(meta.site as u32);
        types[e.user as usize].insert(meta.data_type as u32);
    }
    // audit: ordered — len-only
    let collect = |sets: Vec<std::collections::HashSet<u32>>| {
        let mut v: Vec<usize> = sets.iter().map(|s| s.len()).collect();
        v.sort_unstable_by(|a, b| b.cmp(a));
        v
    };
    Fig3Series {
        data_objects: collect(items),
        locations: collect(sites),
        data_types: collect(types),
    }
}

/// Average share of a user's queries landing in their modal region and on
/// their modal data type (users with no queries are skipped).
pub fn affinity_shares(trace: &Trace) -> (f64, f64) {
    let n_users = trace.population.n_users();
    let mut region_counts: Vec<BTreeMap<usize, usize>> = vec![BTreeMap::new(); n_users];
    let mut type_counts: Vec<BTreeMap<usize, usize>> = vec![BTreeMap::new(); n_users];
    let mut totals = vec![0usize; n_users];
    for e in &trace.events {
        let meta = &trace.catalog.items[e.item as usize];
        *region_counts[e.user as usize].entry(meta.region).or_insert(0) += 1;
        *type_counts[e.user as usize].entry(meta.data_type).or_insert(0) += 1;
        totals[e.user as usize] += 1;
    }
    let mut region_share = 0.0;
    let mut type_share = 0.0;
    let mut active = 0usize;
    for u in 0..n_users {
        if totals[u] == 0 {
            continue;
        }
        active += 1;
        let max_r = region_counts[u].values().copied().max().unwrap_or(0);
        let max_t = type_counts[u].values().copied().max().unwrap_or(0);
        region_share += max_r as f64 / totals[u] as f64;
        type_share += max_t as f64 / totals[u] as f64;
    }
    if active == 0 {
        return (0.0, 0.0);
    }
    (region_share / active as f64, type_share / active as f64)
}

/// Result of the Figure 5 pair experiment.
#[derive(Debug, Clone, Copy)]
pub struct PairAffinity {
    /// P(same modal region) for same-city pairs.
    pub same_city_region: f64,
    /// P(same modal region) for random pairs.
    pub random_region: f64,
    /// P(same modal data type) for same-city pairs.
    pub same_city_type: f64,
    /// P(same modal data type) for random pairs.
    pub random_type: f64,
}

impl PairAffinity {
    /// Likelihood ratio for shared-region patterns (paper: 79.8× OOI,
    /// 22.87× GAGE).
    pub fn region_ratio(&self) -> f64 {
        safe_ratio(self.same_city_region, self.random_region)
    }

    /// Likelihood ratio for shared-data-domain patterns (paper: 29.8× OOI,
    /// 2.21× GAGE).
    pub fn type_ratio(&self) -> f64 {
        safe_ratio(self.same_city_type, self.random_type)
    }
}

fn safe_ratio(num: f64, den: f64) -> f64 {
    if den <= 0.0 {
        if num > 0.0 {
            f64::INFINITY
        } else {
            1.0
        }
    } else {
        num / den
    }
}

/// Run the paper's Figure 5 experiment: draw `n_pairs` same-city user
/// pairs and `n_pairs` random pairs, and measure the probability that the
/// two users share a query pattern — the same modal *instrument location*
/// (site granularity; the paper's 79.8× OOI ratio implies finer-than-array
/// locality) and the same modal data type. Users without queries are
/// excluded.
pub fn pair_affinity(trace: &Trace, n_pairs: usize, rng: &mut impl Rng) -> PairAffinity {
    let n_users = trace.population.n_users();
    // Modal site/type per user.
    let mut region_counts: Vec<BTreeMap<usize, usize>> = vec![BTreeMap::new(); n_users];
    let mut type_counts: Vec<BTreeMap<usize, usize>> = vec![BTreeMap::new(); n_users];
    for e in &trace.events {
        let meta = &trace.catalog.items[e.item as usize];
        *region_counts[e.user as usize].entry(meta.site).or_insert(0) += 1;
        *type_counts[e.user as usize].entry(meta.data_type).or_insert(0) += 1;
    }
    // BTreeMap iteration is key-ascending, so a count tie resolves to the
    // *largest* tied key on every run — the old HashMap version broke ties
    // by hasher state and made pair_affinity nondeterministic.
    let modal = |counts: &BTreeMap<usize, usize>| -> Option<usize> {
        counts.iter().max_by_key(|&(_, c)| c).map(|(&k, _)| k)
    };
    let modal_region: Vec<Option<usize>> = region_counts.iter().map(modal).collect();
    let modal_type: Vec<Option<usize>> = type_counts.iter().map(modal).collect();
    let active: Vec<u32> =
        (0..n_users as u32).filter(|&u| modal_region[u as usize].is_some()).collect();

    // Cities with at least two active users. Pairs are drawn uniformly
    // over *users* in such cities (not uniformly over cities), matching
    // sampling 10,000 user pairs from the trace.
    let mut city_active: Vec<Vec<u32>> = vec![Vec::new(); trace.population.users_by_city.len()];
    for &u in &active {
        city_active[trace.population.users[u as usize].city].push(u);
    }
    let pairable: Vec<u32> = active
        .iter()
        .copied()
        .filter(|&u| city_active[trace.population.users[u as usize].city].len() >= 2)
        .collect();

    let mut same_region = [0usize; 2]; // [same-city group, random group]
    let mut same_type = [0usize; 2];
    let mut counted = [0usize; 2];

    for _ in 0..n_pairs {
        // Same-city pair.
        if !pairable.is_empty() {
            let a_user = pairable[rng.gen_range(0..pairable.len())];
            let users = &city_active[trace.population.users[a_user as usize].city];
            let a = a_user as usize;
            let mut b = users[rng.gen_range(0..users.len())] as usize;
            for _ in 0..8 {
                if b != a {
                    break;
                }
                b = users[rng.gen_range(0..users.len())] as usize;
            }
            if a != b {
                counted[0] += 1;
                if modal_region[a] == modal_region[b] {
                    same_region[0] += 1;
                }
                if modal_type[a] == modal_type[b] {
                    same_type[0] += 1;
                }
            }
        }
        // Random pair.
        if active.len() >= 2 {
            let a = active[rng.gen_range(0..active.len())] as usize;
            let mut b = active[rng.gen_range(0..active.len())] as usize;
            for _ in 0..8 {
                if b != a {
                    break;
                }
                b = active[rng.gen_range(0..active.len())] as usize;
            }
            if a != b {
                counted[1] += 1;
                if modal_region[a] == modal_region[b] {
                    same_region[1] += 1;
                }
                if modal_type[a] == modal_type[b] {
                    same_type[1] += 1;
                }
            }
        }
    }

    let frac = |n: usize, d: usize| if d == 0 { 0.0 } else { n as f64 / d as f64 };
    PairAffinity {
        same_city_region: frac(same_region[0], counted[0]),
        random_region: frac(same_region[1], counted[1]),
        same_city_type: frac(same_type[0], counted[0]),
        random_type: frac(same_type[1], counted[1]),
    }
}

/// One-hot feature matrix of the catalog items (region ⊕ data type ⊕
/// discipline), the representation t-SNE'd in Figure 4.
pub fn item_feature_matrix(trace: &Trace) -> Matrix {
    let cfg = &trace.config;
    let dim = cfg.n_regions + cfg.n_data_types + cfg.n_disciplines;
    let mut m = Matrix::zeros(trace.catalog.n_items(), dim);
    for (i, item) in trace.catalog.items.iter().enumerate() {
        m[(i, item.region)] = 1.0;
        m[(i, cfg.n_regions + item.data_type)] = 1.0;
        m[(i, cfg.n_regions + cfg.n_data_types + item.discipline)] = 1.0;
    }
    m
}

/// The `n` most active users (by raw query count), descending — the paper
/// picks "the eight users who have the most frequent data queries" of one
/// organization for Figure 4.
pub fn top_users_by_activity(trace: &Trace, n: usize) -> Vec<u32> {
    let mut counts = vec![0usize; trace.population.n_users()];
    for e in &trace.events {
        counts[e.user as usize] += 1;
    }
    let mut users: Vec<u32> = (0..counts.len() as u32).collect();
    users.par_sort_unstable_by(|&a, &b| counts[b as usize].cmp(&counts[a as usize]));
    users.truncate(n);
    users
}

/// The most active users *within one organization* (Figure 4 restricts to
/// Rutgers / U. Washington users).
pub fn top_users_of_largest_org(trace: &Trace, n: usize) -> (usize, Vec<u32>) {
    let mut org_sizes = vec![0usize; trace.population.orgs.len()];
    for u in &trace.population.users {
        org_sizes[u.org] += 1;
    }
    let largest =
        org_sizes.iter().enumerate().max_by_key(|&(_, s)| *s).map(|(o, _)| o).unwrap_or(0);
    let mut counts = vec![0usize; trace.population.n_users()];
    for e in &trace.events {
        counts[e.user as usize] += 1;
    }
    let mut members: Vec<u32> = (0..trace.population.n_users() as u32)
        .filter(|&u| trace.population.users[u as usize].org == largest)
        .collect();
    members.sort_unstable_by(|&a, &b| counts[b as usize].cmp(&counts[a as usize]));
    members.truncate(n);
    (largest, members)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FacilityConfig;
    use crate::trace::Trace;
    use facility_linalg::seeded_rng;

    fn trace() -> Trace {
        Trace::generate(&FacilityConfig::tiny(), 42)
    }

    #[test]
    fn fig3_series_are_sorted_and_sized() {
        let t = trace();
        let s = fig3_series(&t);
        assert_eq!(s.data_objects.len(), t.population.n_users());
        for series in [&s.data_objects, &s.locations, &s.data_types] {
            assert!(series.windows(2).all(|w| w[0] >= w[1]), "series not descending");
        }
        // Distinct types per user can never exceed the catalog's types.
        assert!(s.data_types[0] <= t.config.n_data_types);
    }

    #[test]
    fn affinity_shares_increase_with_affinity() {
        let mut low_cfg = FacilityConfig::tiny();
        low_cfg.locality_affinity = 0.05;
        low_cfg.datatype_affinity = 0.05;
        let mut high_cfg = FacilityConfig::tiny();
        high_cfg.locality_affinity = 0.9;
        high_cfg.datatype_affinity = 0.9;
        let (low_r, low_t) = affinity_shares(&Trace::generate(&low_cfg, 1));
        let (high_r, high_t) = affinity_shares(&Trace::generate(&high_cfg, 1));
        assert!(high_r > low_r, "region share {high_r} !> {low_r}");
        assert!(high_t > low_t, "type share {high_t} !> {low_t}");
    }

    #[test]
    fn pair_affinity_favours_same_city() {
        // Same-city users mostly share an org profile → higher agreement.
        let t = Trace::generate(&FacilityConfig::ooi(), 5);
        let pa = pair_affinity(&t, 4000, &mut seeded_rng(6));
        assert!(
            pa.region_ratio() > 1.5,
            "same-city region ratio {} should exceed random",
            pa.region_ratio()
        );
        assert!(pa.type_ratio() > 1.0, "type ratio {}", pa.type_ratio());
        for p in [pa.same_city_region, pa.random_region, pa.same_city_type, pa.random_type] {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn item_features_are_three_hot() {
        let t = trace();
        let m = item_feature_matrix(&t);
        assert_eq!(m.rows(), t.catalog.n_items());
        for r in 0..m.rows() {
            let ones = m.row(r).iter().filter(|&&x| x == 1.0).count();
            assert_eq!(ones, 3, "row {r} must have exactly region+type+disc bits");
        }
    }

    #[test]
    fn top_users_are_sorted_by_activity() {
        let t = trace();
        let top = top_users_by_activity(&t, 8);
        assert_eq!(top.len(), 8);
        let mut counts = vec![0usize; t.population.n_users()];
        for e in &t.events {
            counts[e.user as usize] += 1;
        }
        for w in top.windows(2) {
            assert!(counts[w[0] as usize] >= counts[w[1] as usize]);
        }
    }

    #[test]
    fn top_users_of_largest_org_belong_to_it() {
        let t = trace();
        let (org, users) = top_users_of_largest_org(&t, 8);
        for &u in &users {
            assert_eq!(t.population.users[u as usize].org, org);
        }
        assert!(!users.is_empty());
    }
}
