//! The user population: organizations, cities, and per-user query
//! profiles.
//!
//! The paper observes (Section III-B1) that "users from the same research
//! group (or same organization) tend to have similar data-query patterns"
//! and exploits city-level co-location. The generative model here makes
//! that observation true by construction: each organization carries a
//! profile (home region + preferred data types) that its members adopt
//! with probability `org_conformity`.

use crate::config::FacilityConfig;
use rand::seq::SliceRandom;
use rand::Rng;

/// An organization's shared query profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Organization {
    /// City where the organization is located.
    pub city: usize,
    /// Region its members predominantly study.
    pub home_region: usize,
    /// The specific site within the home region the org's project
    /// focuses on (real facility users track individual instruments).
    pub home_site: usize,
    /// Data types its members predominantly query; the first entry is the
    /// *primary* type, drawn more often than the rest.
    pub pref_types: Vec<usize>,
}

/// One simulated user.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UserMeta {
    /// Organization index.
    pub org: usize,
    /// City (usually the organization's city).
    pub city: usize,
    /// The region this user predominantly queries.
    pub home_region: usize,
    /// The site this user predominantly queries (within `home_region`).
    pub home_site: usize,
    /// Preferred data types; index 0 is the primary type.
    pub pref_types: Vec<usize>,
    /// Whether the user conformed to the organization profile.
    pub conformist: bool,
}

/// The generated population.
#[derive(Debug, Clone)]
pub struct Population {
    /// Organizations.
    pub orgs: Vec<Organization>,
    /// Users.
    pub users: Vec<UserMeta>,
    /// Users grouped by city.
    pub users_by_city: Vec<Vec<u32>>,
}

impl Population {
    /// Generate organizations and users for `config`.
    ///
    /// Organization sizes are skewed (rank-proportional) like real
    /// institutional usage; each organization's city is drawn uniformly
    /// and its profile independently. A conformist user copies the org
    /// profile; a non-conformist draws an independent one (still keeping
    /// the org's city with 90% probability, as people work where their
    /// institute is).
    pub fn generate(config: &FacilityConfig, rng: &mut impl Rng) -> Self {
        config.validate();
        let orgs: Vec<Organization> = (0..config.n_organizations)
            .map(|_| {
                let home_region = rng.gen_range(0..config.n_regions);
                let sites = config.sites_in_region(home_region);
                Organization {
                    city: rng.gen_range(0..config.n_cities),
                    home_region,
                    home_site: sites[rng.gen_range(0..sites.len())],
                    pref_types: sample_types(config, rng),
                }
            })
            .collect();

        // Skewed org sizes (power law with exponent ½): big institutions
        // dominate, but membership doesn't collapse onto one or two sites,
        // keeping the random-pair baseline of Fig. 5 realistic.
        let weights: Vec<f64> = (0..orgs.len()).map(|o| 1.0 / ((o + 1) as f64).sqrt()).collect();
        let total: f64 = weights.iter().sum();

        let mut users = Vec::with_capacity(config.n_users);
        for _ in 0..config.n_users {
            let mut pick = rng.gen::<f64>() * total;
            let mut org = 0;
            for (o, w) in weights.iter().enumerate() {
                if pick < *w {
                    org = o;
                    break;
                }
                pick -= w;
            }
            let conformist = rng.gen::<f64>() < config.org_conformity;
            let (home_region, home_site, pref_types) = if conformist {
                (orgs[org].home_region, orgs[org].home_site, orgs[org].pref_types.clone())
            } else {
                let region = rng.gen_range(0..config.n_regions);
                let sites = config.sites_in_region(region);
                (region, sites[rng.gen_range(0..sites.len())], sample_types(config, rng))
            };
            // Nearly everyone is physically at their institution; a small
            // remote-member fraction adds city-level noise.
            let city = if rng.gen::<f64>() < 0.97 {
                orgs[org].city
            } else {
                rng.gen_range(0..config.n_cities)
            };
            users.push(UserMeta { org, city, home_region, home_site, pref_types, conformist });
        }

        let mut users_by_city = vec![Vec::new(); config.n_cities];
        for (u, user) in users.iter().enumerate() {
            users_by_city[user.city].push(u as u32);
        }
        Self { orgs, users, users_by_city }
    }

    /// Number of users.
    pub fn n_users(&self) -> usize {
        self.users.len()
    }

    /// User–user association pairs for the UUG. The paper clusters users
    /// "based on their proximity (i.e., the same organization, physical
    /// location, etc.)", so both same-city and same-organization chains
    /// contribute, each capped per group to keep the graph sparse.
    ///
    /// Pairs are formed along a chain within each group: user `k` links to
    /// user `k+1`, which connects the whole group with `O(group)` edges
    /// instead of `O(group²)`.
    pub fn same_city_pairs(&self, max_pairs_per_group: usize) -> Vec<(u32, u32)> {
        let mut pairs = Vec::new();
        let mut chain = |groups: &[Vec<u32>]| {
            for group in groups {
                if group.len() < 2 {
                    continue;
                }
                let take = (group.len() - 1).min(max_pairs_per_group);
                for k in 0..take {
                    pairs.push((group[k], group[k + 1]));
                }
            }
        };
        chain(&self.users_by_city);
        // Same-organization chains.
        let mut by_org: Vec<Vec<u32>> = vec![Vec::new(); self.orgs.len()];
        for (u, user) in self.users.iter().enumerate() {
            by_org[user.org].push(u as u32);
        }
        chain(&by_org);
        pairs
    }
}

fn sample_types(config: &FacilityConfig, rng: &mut impl Rng) -> Vec<usize> {
    let mut all: Vec<usize> = (0..config.n_data_types).collect();
    all.shuffle(rng);
    all.truncate(config.pref_types_per_org);
    // Keep the shuffled order: index 0 is the primary type.
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use facility_linalg::seeded_rng;

    fn pop() -> Population {
        Population::generate(&FacilityConfig::ooi(), &mut seeded_rng(2))
    }

    #[test]
    fn population_counts_match_config() {
        let p = pop();
        let cfg = FacilityConfig::ooi();
        assert_eq!(p.n_users(), cfg.n_users);
        assert_eq!(p.orgs.len(), cfg.n_organizations);
        let by_city: usize = p.users_by_city.iter().map(Vec::len).sum();
        assert_eq!(by_city, cfg.n_users);
    }

    #[test]
    fn conformists_share_their_orgs_profile() {
        let p = pop();
        for user in &p.users {
            if user.conformist {
                assert_eq!(user.home_region, p.orgs[user.org].home_region);
                assert_eq!(user.pref_types, p.orgs[user.org].pref_types);
            }
        }
        let conformists = p.users.iter().filter(|u| u.conformist).count();
        // With conformity 0.85 over 760 users the count concentrates hard.
        assert!(conformists > p.n_users() / 2, "too few conformists: {conformists}");
    }

    #[test]
    fn org_sizes_are_skewed() {
        let p = pop();
        let mut sizes = vec![0usize; p.orgs.len()];
        for u in &p.users {
            sizes[u.org] += 1;
        }
        // The largest org should clearly exceed the median — power-law skew.
        let max = *sizes.iter().max().unwrap();
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2];
        assert!(max >= 2 * median.max(1), "max {max} vs median {median}");
    }

    #[test]
    fn uug_pairs_share_city_or_org_and_have_no_self_loops() {
        let p = pop();
        let pairs = p.same_city_pairs(3);
        assert!(!pairs.is_empty());
        for &(a, b) in &pairs {
            let (ua, ub) = (&p.users[a as usize], &p.users[b as usize]);
            assert!(ua.city == ub.city || ua.org == ub.org, "pair ({a},{b}) unrelated");
            assert_ne!(a, b);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Population::generate(&FacilityConfig::tiny(), &mut seeded_rng(11));
        let b = Population::generate(&FacilityConfig::tiny(), &mut seeded_rng(11));
        assert_eq!(a.users, b.users);
    }
}
