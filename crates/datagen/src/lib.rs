#![warn(missing_docs)]

//! # facility-datagen
//!
//! A synthetic large-facility query-trace simulator, substituting for the
//! proprietary OOI and GAGE traces the paper analyzed (138M / 77M records
//! with user IPs, which are not publicly available).
//!
//! ## What the simulator preserves
//!
//! The recommendation experiments never see raw trace records — only the
//! *derived* structure: the user–item interaction matrix, the user–user
//! co-location graph, and the item–attribute knowledge graph. What decides
//! who-wins in the paper's Tables II–V is the statistical structure of that
//! data, which the simulator reproduces explicitly:
//!
//! * **Facility topology** ([`config`], [`catalog`]): instruments deployed
//!   at sites grouped into research arrays/regions, each producing data
//!   objects of typed disciplines — OOI-like (36 instrument classes, 55
//!   sites, 8 arrays) and GAGE-like (12 data types, stations across many
//!   cities/states) presets.
//! * **User population** ([`population`]): users belong to organizations
//!   located in cities; an organization carries a *query profile* (home
//!   region + preferred data types) that its members inherit with noise —
//!   the mechanism behind the paper's Figure 4 observation that same-org
//!   users query similar data.
//! * **Query affinities** ([`trace`]): per-query, a user targets their home
//!   region with probability ≈ the paper's locality share (43.1% OOI /
//!   36.3% GAGE) and their preferred data type with probability ≈ the
//!   same-type share (51.6% / 68.8%); activity per user is heavy-tailed
//!   (Figure 3's distribution curves).
//! * **Measurable consequences** ([`stats`]): the same statistics the paper
//!   plots — per-user distinct-object/location/type curves (Fig. 3), and
//!   the same-city vs random pair likelihood ratios (Fig. 5).

pub mod catalog;
pub mod config;
pub mod io;
pub mod population;
pub mod stats;
pub mod trace;

pub use catalog::{Catalog, ItemMeta};
pub use config::FacilityConfig;
pub use io::{read_trace, read_trace_with, write_trace, ReadError, ReadMode, SkipSummary};
pub use population::{Population, UserMeta};
pub use trace::{QueryEvent, Trace};
