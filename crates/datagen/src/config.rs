//! Facility simulation parameters with OOI-like and GAGE-like presets.
//!
//! The preset numbers come from the paper where stated (Section III-B and
//! Table I) and are scaled so the resulting CKG matches Table I's order of
//! magnitude: OOI ≈ 1.3k entities / 5.5k triples, GAGE ≈ 4.8k entities /
//! 20k triples.

/// All knobs of the synthetic facility and its user population.
#[derive(Debug, Clone)]
pub struct FacilityConfig {
    /// Facility display name ("OOI-like", "GAGE-like", ...).
    pub name: String,

    // --- Facility topology -------------------------------------------
    /// Research arrays (OOI) or geographic regions/states (GAGE).
    pub n_regions: usize,
    /// Instrument sites (OOI) or station clusters (GAGE), distributed
    /// across the regions.
    pub n_sites: usize,
    /// Instrument classes (e.g. CTD, BOTPT).
    pub n_instrument_classes: usize,
    /// Distinct data types (e.g. pressure, density; GPS/GNSS products).
    pub n_data_types: usize,
    /// Science disciplines grouping the data types.
    pub n_disciplines: usize,
    /// Data objects in the catalog (the recommendable items).
    pub n_items: usize,

    // --- User population ----------------------------------------------
    /// Users (public-IP-level identities in the paper).
    pub n_users: usize,
    /// Cities users come from.
    pub n_cities: usize,
    /// Research organizations; members share a query profile.
    pub n_organizations: usize,
    /// Probability that a user adopts their organization's profile rather
    /// than an independent random one.
    pub org_conformity: f64,

    // --- Query behaviour ------------------------------------------------
    /// Mean of the log-normal distribution of queries per user (in log
    /// space) — controls the Figure 3 heavy tail.
    pub activity_log_mean: f64,
    /// Std-dev of the log-normal activity distribution (log space).
    pub activity_log_std: f64,
    /// Probability a query targets the user's home region (paper: 43.1%
    /// OOI, 36.3% GAGE on average).
    pub locality_affinity: f64,
    /// Probability a query targets one of the user's preferred data types
    /// (paper: 51.6% OOI, 68.8% GAGE).
    pub datatype_affinity: f64,
    /// Preferred data types per organization profile.
    pub pref_types_per_org: usize,
    /// Fraction of *recorded* item attributes (site / data type) that are
    /// wrong in the facility's published metadata. Real facility metadata
    /// is imperfect; models that consume attributes as flat features
    /// inherit the errors, while attentive propagation can down-weight
    /// edges inconsistent with query behaviour (the paper's noise
    /// discussion, Sections II-C and VI-F).
    pub metadata_noise: f64,
}

impl FacilityConfig {
    /// OOI-like preset: 36 instrument classes at 55 sites across 8
    /// research arrays (Section III-B), oceanography-flavoured data types,
    /// and affinity levels from the paper's trace analysis.
    pub fn ooi() -> Self {
        Self {
            name: "OOI-like".into(),
            n_regions: 8,
            n_sites: 55,
            n_instrument_classes: 36,
            n_data_types: 24,
            n_disciplines: 5,
            n_items: 420,
            n_users: 760,
            n_cities: 90,
            n_organizations: 48,
            org_conformity: 0.85,
            activity_log_mean: 1.6,
            activity_log_std: 1.0,
            locality_affinity: 0.431,
            datatype_affinity: 0.516,
            pref_types_per_org: 3,
            metadata_noise: 0.3,
        }
    }

    /// GAGE-like preset: 12 data types from GPS/GNSS stations distributed
    /// across many cities in 48 states (Section III-B); locality dominates
    /// less per query but the graph is larger and sparser.
    pub fn gage() -> Self {
        Self {
            name: "GAGE-like".into(),
            n_regions: 48,
            n_sites: 338,
            n_instrument_classes: 6,
            n_data_types: 12,
            n_disciplines: 4,
            n_items: 1500,
            n_users: 2800,
            n_cities: 160,
            n_organizations: 120,
            org_conformity: 0.85,
            activity_log_mean: 1.7,
            activity_log_std: 1.1,
            locality_affinity: 0.363,
            datatype_affinity: 0.688,
            pref_types_per_org: 2,
            metadata_noise: 0.3,
        }
    }

    /// A deliberately oversized facility for stress-testing the sparse
    /// training path: ~106k CKG entities (70k users + 36k items + a few
    /// hundred attribute nodes), far beyond the paper's Table I scale.
    /// Per-user activity is tuned *low* (log-mean 0.4) so the interaction
    /// count — and with it the batches per epoch — stays bounded while the
    /// entity matrix is huge; this is exactly the regime where batch-local
    /// subgraphs touch a vanishing fraction of rows and dense full-matrix
    /// optimizer updates dominate the epoch.
    pub fn huge() -> Self {
        Self {
            name: "huge-synthetic".into(),
            n_regions: 64,
            n_sites: 600,
            n_instrument_classes: 48,
            n_data_types: 40,
            n_disciplines: 8,
            n_items: 36_000,
            n_users: 70_000,
            n_cities: 400,
            n_organizations: 600,
            org_conformity: 0.85,
            activity_log_mean: 0.4,
            activity_log_std: 0.8,
            locality_affinity: 0.4,
            datatype_affinity: 0.6,
            pref_types_per_org: 3,
            metadata_noise: 0.3,
        }
    }

    /// A miniature configuration for unit/integration tests: everything is
    /// small enough that an end-to-end pipeline runs in well under a
    /// second.
    pub fn tiny() -> Self {
        Self {
            name: "tiny".into(),
            n_regions: 3,
            n_sites: 6,
            n_instrument_classes: 4,
            n_data_types: 6,
            n_disciplines: 2,
            n_items: 40,
            n_users: 60,
            n_cities: 8,
            n_organizations: 6,
            org_conformity: 0.85,
            activity_log_mean: 1.8,
            activity_log_std: 0.7,
            locality_affinity: 0.5,
            datatype_affinity: 0.5,
            pref_types_per_org: 2,
            metadata_noise: 0.0,
        }
    }

    /// Sites assigned to `region` under the canonical round-robin layout
    /// (shared by the catalog and population generators so they agree on
    /// the site→region map without passing the catalog around).
    pub fn sites_in_region(&self, region: usize) -> Vec<usize> {
        (0..self.n_sites).filter(|s| s % self.n_regions == region).collect()
    }

    /// Sanity-check invariants; called by the generators.
    ///
    /// # Panics
    /// Panics on inconsistent settings (zero counts, probabilities outside
    /// `[0, 1]`, more regions than sites, ...). Fallible callers (trace
    /// loading) use [`FacilityConfig::try_validate`] instead.
    pub fn validate(&self) {
        if let Err(msg) = self.try_validate() {
            // audit: unwrap — documented programmer-error panic; trace loading uses
            // try_validate, and the hot-path edge is a validate() name collision
            // in the approximate call graph.
            panic!("{msg}");
        }
    }

    /// The checks of [`FacilityConfig::validate`] as a `Result`, so a
    /// corrupt `meta.csv` surfaces as a clean error instead of a panic.
    pub fn try_validate(&self) -> Result<(), String> {
        if !(self.n_regions > 0 && self.n_sites >= self.n_regions) {
            return Err("sites must cover regions".into());
        }
        if self.n_instrument_classes == 0 {
            return Err("n_instrument_classes must be positive".into());
        }
        if !(self.n_data_types >= self.n_disciplines && self.n_disciplines > 0) {
            return Err("data types must cover disciplines".into());
        }
        if self.n_items == 0 || self.n_users == 0 {
            return Err("n_items and n_users must be positive".into());
        }
        if self.n_cities == 0 || self.n_organizations == 0 {
            return Err("n_cities and n_organizations must be positive".into());
        }
        for (name, p) in [
            ("org_conformity", self.org_conformity),
            ("locality_affinity", self.locality_affinity),
            ("datatype_affinity", self.datatype_affinity),
            ("metadata_noise", self.metadata_noise),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} must be a probability, got {p}"));
            }
        }
        if !(self.pref_types_per_org >= 1 && self.pref_types_per_org <= self.n_data_types) {
            return Err("pref_types_per_org must be in 1..=n_data_types".into());
        }
        if self.activity_log_std < 0.0 {
            return Err("activity_log_std must be non-negative".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        FacilityConfig::ooi().validate();
        FacilityConfig::gage().validate();
        FacilityConfig::tiny().validate();
        FacilityConfig::huge().validate();
    }

    #[test]
    fn huge_preset_exceeds_100k_entities() {
        // users + items alone clear the bar; attribute nodes only add.
        let c = FacilityConfig::huge();
        assert!(c.n_users + c.n_items > 100_000, "{} + {}", c.n_users, c.n_items);
    }

    #[test]
    fn presets_follow_paper_topology() {
        let ooi = FacilityConfig::ooi();
        assert_eq!((ooi.n_regions, ooi.n_sites, ooi.n_instrument_classes), (8, 55, 36));
        let gage = FacilityConfig::gage();
        assert_eq!((gage.n_regions, gage.n_data_types), (48, 12));
        assert!((gage.datatype_affinity - 0.688).abs() < 1e-9);
        assert!((ooi.locality_affinity - 0.431).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn validate_rejects_bad_probability() {
        let mut c = FacilityConfig::tiny();
        c.locality_affinity = 1.5;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "sites must cover regions")]
    fn validate_rejects_fewer_sites_than_regions() {
        let mut c = FacilityConfig::tiny();
        c.n_sites = 1;
        c.validate();
    }
}
