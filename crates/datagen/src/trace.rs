//! Affinity-driven query-trace generation and conversion into CKG inputs.
//!
//! Each simulated query follows the decision structure the paper measures
//! in Section III-B2: with probability `locality_affinity` the user stays
//! in their home region; independently, with probability
//! `datatype_affinity` they request one of their preferred data types; the
//! candidate set is the conjunction, with graceful fallbacks when a
//! combination has no catalog item.

use crate::catalog::Catalog;
use crate::config::FacilityConfig;
use crate::population::Population;
use facility_kg::{CkgBuilder, Id, Interactions, KnowledgeSource};
use rand::Rng;
use rand_distr::{Distribution, LogNormal};

/// Sample one item from `pool` proportionally to the cumulative weight
/// vector `cum` (same length as `pool`, strictly increasing).
fn weighted_pick(pool: &[u32], cum: &[f64], rng: &mut impl Rng) -> u32 {
    debug_assert_eq!(pool.len(), cum.len());
    let total = *cum.last().expect("non-empty pool");
    let x = rng.gen::<f64>() * total;
    let idx = cum.partition_point(|&c| c < x).min(pool.len() - 1);
    pool[idx]
}

/// One query-trace record (the simulator's analogue of one activity-log
/// line: user IP × queried data object).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryEvent {
    /// User index.
    pub user: Id,
    /// Queried item index.
    pub item: Id,
}

/// A complete simulated facility: topology, population, and the query
/// trace.
pub struct Trace {
    /// The generating configuration.
    pub config: FacilityConfig,
    /// The facility catalog.
    pub catalog: Catalog,
    /// The user population.
    pub population: Population,
    /// The raw query events (with repetition, in generation order).
    pub events: Vec<QueryEvent>,
}

impl std::fmt::Debug for Trace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Trace")
            .field("facility", &self.config.name)
            .field("n_users", &self.population.n_users())
            .field("n_items", &self.catalog.n_items())
            .field("n_events", &self.events.len())
            .finish()
    }
}

impl Trace {
    /// Generate a full facility trace from a single seed.
    pub fn generate(config: &FacilityConfig, seed: u64) -> Self {
        config.validate();
        let mut rng = facility_linalg::seeded_rng(seed);
        let catalog = Catalog::generate(config, &mut rng);
        let population = Population::generate(config, &mut rng);

        // Per-(region, type) and per-(site, type) candidate lists for the
        // conjunctive draws.
        let mut by_region_type: Vec<Vec<Vec<u32>>> =
            vec![vec![Vec::new(); config.n_data_types]; config.n_regions];
        let mut by_site_type: Vec<Vec<Vec<u32>>> =
            vec![vec![Vec::new(); config.n_data_types]; config.n_sites];
        for (i, item) in catalog.items.iter().enumerate() {
            by_region_type[item.region][item.data_type].push(i as u32);
            by_site_type[item.site][item.data_type].push(i as u32);
        }

        // Global item popularity: real facility traces are strongly
        // popularity-skewed (flagship instruments absorb most off-profile
        // queries). Exploration draws follow a Zipf(0.9) law over a random
        // item permutation instead of a uniform draw — this is what makes
        // held-out "exploration" queries predictable at all.
        let mut pop_order: Vec<u32> = (0..catalog.n_items() as u32).collect();
        use rand::seq::SliceRandom;
        pop_order.shuffle(&mut rng);
        let mut pop_weight = vec![0.0f64; catalog.n_items()];
        for (rank, &item) in pop_order.iter().enumerate() {
            pop_weight[item as usize] = 1.0 / ((rank + 1) as f64).powf(0.9);
        }
        let cumsum = |pool: &[u32]| -> Vec<f64> {
            let mut acc = 0.0;
            pool.iter()
                .map(|&i| {
                    acc += pop_weight[i as usize];
                    acc
                })
                .collect()
        };
        let all_items: Vec<u32> = (0..catalog.n_items() as u32).collect();
        let global_cum = cumsum(&all_items);
        let type_cums: Vec<Vec<f64>> =
            catalog.items_by_type.iter().map(|pool| cumsum(pool)).collect();

        // Discipline-level spillover: a domain scientist who needs
        // "pressure" data also pulls sibling types of the same discipline
        // (the paper's salinity-from-conductivity/temperature example).
        // This places part of the preference signal two hops away in the
        // KG (item → type → discipline), which is exactly the high-order
        // connectivity the propagation models exploit.
        let mut disc_types: Vec<Vec<usize>> = vec![Vec::new(); config.n_disciplines];
        for (ty, &disc) in catalog.type_discipline.iter().enumerate() {
            disc_types[disc].push(ty);
        }

        let activity = LogNormal::new(config.activity_log_mean, config.activity_log_std)
            .expect("validated std");
        let max_queries = 400usize;

        // Organization project sets: research groups work on *specific*
        // deployments, not whole attribute classes. Each org samples a
        // small item set concentrated around its home site and primary
        // data type; members share it. This collaborative structure is
        // only partly explained by attributes — recovering it fully
        // requires the user–user association graph, which is what gives
        // the paper's UUG its value (Table III).
        let project_size = 14usize.min(catalog.n_items());
        let org_projects: Vec<Vec<u32>> = population
            .orgs
            .iter()
            .map(|org| {
                let mut pool: Vec<u32> = catalog.items_by_site[org.home_site].clone();
                pool.extend_from_slice(&by_region_type[org.home_region][org.pref_types[0]]);
                pool.extend_from_slice(&catalog.items_by_type[org.pref_types[0]]);
                pool.sort_unstable();
                pool.dedup();
                use rand::seq::SliceRandom;
                pool.shuffle(&mut rng);
                pool.truncate(project_size);
                pool
            })
            .collect();

        // Collaborative reuse: group members re-query what colleagues
        // already pulled (shared pipelines, forwarded links). This is the
        // collaborative signal that flows through the user–user graph.
        let mut org_history: Vec<Vec<u32>> = vec![Vec::new(); population.orgs.len()];

        let mut events = Vec::new();
        for (u, user) in population.users.iter().enumerate() {
            let n_q = (activity.sample(&mut rng).ceil() as usize).clamp(1, max_queries);
            for _ in 0..n_q {
                // Project work first: conformist members pull their org's
                // project items.
                if user.conformist && rng.gen::<f64>() < 0.45 {
                    let project = &org_projects[user.org];
                    if !project.is_empty() {
                        let item = project[rng.gen_range(0..project.len())];
                        org_history[user.org].push(item);
                        events.push(QueryEvent { user: u as Id, item });
                        continue;
                    }
                }
                // Social reuse of colleagues' pulls.
                if !org_history[user.org].is_empty() && rng.gen::<f64>() < 0.15 {
                    let hist = &org_history[user.org];
                    let item = hist[rng.gen_range(0..hist.len())];
                    events.push(QueryEvent { user: u as Id, item });
                    continue;
                }
                let want_locality = rng.gen::<f64>() < config.locality_affinity;
                // Locality is site-focused: facility users track specific
                // instruments, so when locality kicks in the home *site*
                // is preferred, falling back to the home region.
                let want_site = want_locality && rng.gen::<f64>() < 0.85;
                let want_type = rng.gen::<f64>() < config.datatype_affinity;
                // Preferred types are skewed toward the primary type, with
                // discipline-level spillover onto sibling types.
                let direct = if rng.gen::<f64>() < 0.65 || user.pref_types.len() == 1 {
                    user.pref_types[0]
                } else {
                    user.pref_types[rng.gen_range(1..user.pref_types.len())]
                };
                let pref_type = if rng.gen::<f64>() < 0.4 {
                    let siblings = &disc_types[catalog.type_discipline[direct]];
                    siblings[rng.gen_range(0..siblings.len())]
                } else {
                    direct
                };
                let (site, region) = (user.home_site, user.home_region);
                // Most-specific non-empty candidate pool wins; locality
                // pools are small and drawn uniformly, type-only and
                // exploration draws follow the popularity law.
                let uniform_pools: [&[u32]; 4] = [
                    if want_site && want_type { &by_site_type[site][pref_type] } else { &[] },
                    if want_locality && want_type {
                        &by_region_type[region][pref_type]
                    } else {
                        &[]
                    },
                    if want_site { &catalog.items_by_site[site] } else { &[] },
                    if want_locality { &catalog.items_by_region[region] } else { &[] },
                ];
                let item = if let Some(pool) = uniform_pools.iter().copied().find(|p| !p.is_empty())
                {
                    pool[rng.gen_range(0..pool.len())]
                } else if want_type && !catalog.items_by_type[pref_type].is_empty() {
                    weighted_pick(
                        &catalog.items_by_type[pref_type],
                        &type_cums[pref_type],
                        &mut rng,
                    )
                } else {
                    weighted_pick(&all_items, &global_cum, &mut rng)
                };
                org_history[user.org].push(item);
                events.push(QueryEvent { user: u as Id, item });
            }
        }

        Self { config: config.clone(), catalog, population, events }
    }

    /// The raw `(user, item)` pairs of the trace.
    pub fn event_pairs(&self) -> Vec<(Id, Id)> {
        self.events.iter().map(|e| (e.user, e.item)).collect()
    }

    /// Split the (deduplicated) trace into train/test interactions using
    /// the paper's per-user 80/20 protocol.
    pub fn split_interactions(&self, test_frac: f64, rng: &mut impl Rng) -> Interactions {
        Interactions::split(
            self.population.n_users(),
            self.catalog.n_items(),
            &self.event_pairs(),
            test_frac,
            rng,
        )
    }

    /// Build a [`CkgBuilder`] loaded with this facility's knowledge —
    /// **without interactions**, which the caller must add from the
    /// *training* split only (adding the raw trace would leak test items
    /// into the graph):
    ///
    /// * UUG: same-city user pairs (capped per city),
    /// * LOC: `item −locatedAt→ site`, `site −siteInRegion→ region`,
    /// * DKG: `item −hasDataType→ type`, `type −dataDiscipline→ discipline`,
    /// * MD (noise): `item −instrumentName→ name`,
    ///   `item −instrumentGroup→ group`.
    pub fn ckg_builder(&self, max_uug_pairs_per_city: usize) -> CkgBuilder {
        let mut b = CkgBuilder::new(self.population.n_users(), self.catalog.n_items());
        b.add_user_user(&self.population.same_city_pairs(max_uug_pairs_per_city));

        for (i, item) in self.catalog.items.iter().enumerate() {
            let i = i as Id;
            // The published metadata (recorded_*) goes into the KG; it
            // carries the configured metadata noise.
            b.add_item_attribute(
                KnowledgeSource::Loc,
                "locatedAt",
                i,
                format!("site:{}", item.recorded_site),
            );
            b.add_item_attribute(
                KnowledgeSource::Dkg,
                "hasDataType",
                i,
                format!("type:{}", item.recorded_type),
            );
            b.add_item_attribute(
                KnowledgeSource::Md,
                "instrumentName",
                i,
                self.catalog.instrument_name(i as usize),
            );
            b.add_item_attribute(
                KnowledgeSource::Md,
                "instrumentGroup",
                i,
                self.catalog.instrument_group(i as usize),
            );
        }
        for (site, &region) in self.catalog.site_region.iter().enumerate() {
            b.add_attribute_attribute(
                KnowledgeSource::Loc,
                "siteInRegion",
                format!("site:{site}"),
                format!("region:{region}"),
            );
        }
        for (ty, &disc) in self.catalog.type_discipline.iter().enumerate() {
            b.add_attribute_attribute(
                KnowledgeSource::Dkg,
                "dataDiscipline",
                format!("type:{ty}"),
                format!("disc:{disc}"),
            );
        }
        b
    }

    /// Number of raw query events.
    pub fn n_events(&self) -> usize {
        self.events.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use facility_kg::SourceMask;
    use facility_linalg::seeded_rng;

    fn trace() -> Trace {
        Trace::generate(&FacilityConfig::tiny(), 42)
    }

    #[test]
    fn every_user_queries_and_ids_are_in_range() {
        let t = trace();
        let mut active = vec![false; t.population.n_users()];
        for e in &t.events {
            assert!((e.item as usize) < t.catalog.n_items());
            active[e.user as usize] = true;
        }
        assert!(active.iter().all(|&a| a), "some user has zero queries");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Trace::generate(&FacilityConfig::tiny(), 7);
        let b = Trace::generate(&FacilityConfig::tiny(), 7);
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn locality_affinity_shows_up_in_queries() {
        // With locality 0.9 most queries should hit the home region.
        let mut cfg = FacilityConfig::tiny();
        cfg.locality_affinity = 0.9;
        let t = Trace::generate(&cfg, 3);
        let mut home = 0usize;
        for e in &t.events {
            let user = &t.population.users[e.user as usize];
            if t.catalog.items[e.item as usize].region == user.home_region {
                home += 1;
            }
        }
        let share = home as f64 / t.n_events() as f64;
        assert!(share > 0.75, "home-region share {share} too low for affinity 0.9");
    }

    #[test]
    fn zero_affinity_is_roughly_uniform() {
        let mut cfg = FacilityConfig::tiny();
        cfg.locality_affinity = 0.0;
        cfg.datatype_affinity = 0.0;
        let t = Trace::generate(&cfg, 4);
        let mut home = 0usize;
        for e in &t.events {
            let user = &t.population.users[e.user as usize];
            if t.catalog.items[e.item as usize].region == user.home_region {
                home += 1;
            }
        }
        let share = home as f64 / t.n_events() as f64;
        // Uniform over 3 regions (tiny config) → about 1/3.
        assert!(share < 0.55, "share {share} too high without affinity");
    }

    #[test]
    fn ckg_builder_produces_consistent_graph() {
        let t = trace();
        let mut rng = seeded_rng(0);
        let inter = t.split_interactions(0.2, &mut rng);
        let mut b = t.ckg_builder(3);
        b.add_interactions(&inter.train_pairs);
        let ckg = b.build(SourceMask::all());
        assert_eq!(ckg.n_users, t.population.n_users());
        assert_eq!(ckg.n_items, t.catalog.n_items());
        // LOC+DKG attribute entities exist: sites, regions, types, discs.
        assert!(ckg.n_attrs > 0);
        // Relations: Interact, locatedAt, hasDataType, siteInRegion,
        // dataDiscipline (MD masked out by all()).
        assert_eq!(ckg.n_canonical_relations(), 5);

        let with_md = {
            let mut b = t.ckg_builder(3);
            b.add_interactions(&inter.train_pairs);
            b.build(SourceMask::all_with_noise())
        };
        assert_eq!(with_md.n_canonical_relations(), 7);
        assert!(with_md.n_attrs > ckg.n_attrs);
    }

    #[test]
    fn trace_scale_matches_table1_order_of_magnitude() {
        // The OOI-like preset should land near Table I: ~1.3k entities,
        // ~5.5k triples. Allow generous slack — the claim is order of
        // magnitude, not an exact hit.
        let t = Trace::generate(&FacilityConfig::ooi(), 1);
        let mut rng = seeded_rng(1);
        let inter = t.split_interactions(0.2, &mut rng);
        let mut b = t.ckg_builder(4);
        b.add_interactions(&inter.train_pairs);
        let ckg = b.build(SourceMask::all());
        let ents = ckg.n_entities();
        let triples = ckg.canonical_triples.len();
        assert!((900..2200).contains(&ents), "OOI-like entities {ents}");
        assert!((3000..11000).contains(&triples), "OOI-like triples {triples}");
    }
}
