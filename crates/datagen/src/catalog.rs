//! The facility's data-object catalog: sites, instruments, and items.
//!
//! Mirrors what the paper scrapes from facility websites (Section III-B):
//! "instrument name, coordinates, data type, and research discipline".
//! Every item carries the attributes that later become the IAG knowledge
//! sources — LOC (site, region), DKG (data type, discipline), and MD
//! (instrument name, instrument group).

use crate::config::FacilityConfig;
use rand::seq::SliceRandom;
use rand::Rng;

/// Metadata of one recommendable data object. The all-zero `Default` is
/// the neutral placeholder lenient trace loading substitutes for a
/// skipped row.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ItemMeta {
    /// Site index (`< config.n_sites`).
    pub site: usize,
    /// Region (research array / state) of the site.
    pub region: usize,
    /// Instrument class producing this object.
    pub instrument_class: usize,
    /// Data type of the object.
    pub data_type: usize,
    /// Discipline the data type belongs to.
    pub discipline: usize,
    /// Site as *recorded* in the published metadata (may be wrong with
    /// probability `metadata_noise`).
    pub recorded_site: usize,
    /// Data type as *recorded* in the published metadata.
    pub recorded_type: usize,
}

/// The facility catalog: per-site region assignment, per-class data-type
/// menus, per-type disciplines, and the item list.
#[derive(Debug, Clone)]
pub struct Catalog {
    /// Region of each site.
    pub site_region: Vec<usize>,
    /// Data types each instrument class can measure.
    pub class_data_types: Vec<Vec<usize>>,
    /// Discipline of each data type.
    pub type_discipline: Vec<usize>,
    /// The items.
    pub items: Vec<ItemMeta>,
    /// Items grouped by region (index = region).
    pub items_by_region: Vec<Vec<u32>>,
    /// Items grouped by site (index = site).
    pub items_by_site: Vec<Vec<u32>>,
    /// Items grouped by data type (index = data type).
    pub items_by_type: Vec<Vec<u32>>,
}

impl Catalog {
    /// Generate a catalog for `config`.
    ///
    /// Sites are spread round-robin over regions (every region gets at
    /// least one site). Each instrument class measures a random subset of
    /// 2–5 data types. Each item is an (instrument at a site) × data type
    /// product, drawn so every region and data type is populated when the
    /// catalog is large enough.
    pub fn generate(config: &FacilityConfig, rng: &mut impl Rng) -> Self {
        config.validate();
        // Round-robin site→region keeps regions balanced like real arrays.
        let site_region: Vec<usize> = (0..config.n_sites).map(|s| s % config.n_regions).collect();
        // Data type → discipline, round-robin so every discipline is used.
        let type_discipline: Vec<usize> =
            (0..config.n_data_types).map(|t| t % config.n_disciplines).collect();
        // Instrument class → 2..=5 data types (bounded by availability).
        let all_types: Vec<usize> = (0..config.n_data_types).collect();
        let class_data_types: Vec<Vec<usize>> = (0..config.n_instrument_classes)
            .map(|_| {
                let k = rng.gen_range(2..=5).min(config.n_data_types);
                let mut menu = all_types.clone();
                menu.shuffle(rng);
                menu.truncate(k);
                menu.sort_unstable();
                menu
            })
            .collect();

        let mut items = Vec::with_capacity(config.n_items);
        for idx in 0..config.n_items {
            // Seed the catalog so the first items cover all sites, then
            // fill the rest uniformly — guarantees no empty site/region.
            let site = if idx < config.n_sites { idx } else { rng.gen_range(0..config.n_sites) };
            let instrument_class = rng.gen_range(0..config.n_instrument_classes);
            let menu = &class_data_types[instrument_class];
            let data_type = menu[rng.gen_range(0..menu.len())];
            let recorded_site = if rng.gen::<f64>() < config.metadata_noise {
                rng.gen_range(0..config.n_sites)
            } else {
                site
            };
            let recorded_type = if rng.gen::<f64>() < config.metadata_noise {
                rng.gen_range(0..config.n_data_types)
            } else {
                data_type
            };
            items.push(ItemMeta {
                site,
                region: site_region[site],
                instrument_class,
                data_type,
                discipline: type_discipline[data_type],
                recorded_site,
                recorded_type,
            });
        }

        let mut items_by_region = vec![Vec::new(); config.n_regions];
        let mut items_by_site = vec![Vec::new(); config.n_sites];
        let mut items_by_type = vec![Vec::new(); config.n_data_types];
        for (i, item) in items.iter().enumerate() {
            items_by_region[item.region].push(i as u32);
            items_by_site[item.site].push(i as u32);
            items_by_type[item.data_type].push(i as u32);
        }

        Self {
            site_region,
            class_data_types,
            type_discipline,
            items,
            items_by_region,
            items_by_site,
            items_by_type,
        }
    }

    /// Number of items.
    pub fn n_items(&self) -> usize {
        self.items.len()
    }

    /// Human-readable instrument name for MD facts (e.g. `"inst:12@site:4"`
    /// — unique per class/site pair, mimicking asset names).
    pub fn instrument_name(&self, item: usize) -> String {
        let m = &self.items[item];
        format!("inst:{}@site:{}", m.instrument_class, m.site)
    }

    /// Instrument group for MD facts (the class name).
    pub fn instrument_group(&self, item: usize) -> String {
        format!("group:{}", self.items[item].instrument_class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use facility_linalg::seeded_rng;

    fn catalog() -> Catalog {
        Catalog::generate(&FacilityConfig::ooi(), &mut seeded_rng(1))
    }

    #[test]
    fn every_region_and_type_is_populated() {
        let c = catalog();
        assert!(c.items_by_region.iter().all(|v| !v.is_empty()), "empty region");
        // Data types may be rare but the index must be consistent.
        let total: usize = c.items_by_type.iter().map(Vec::len).sum();
        assert_eq!(total, c.n_items());
    }

    #[test]
    fn item_attributes_are_internally_consistent() {
        let c = catalog();
        for item in &c.items {
            assert_eq!(item.region, c.site_region[item.site]);
            assert_eq!(item.discipline, c.type_discipline[item.data_type]);
            assert!(
                c.class_data_types[item.instrument_class].contains(&item.data_type),
                "item data type not in its instrument's menu"
            );
        }
    }

    #[test]
    fn site_coverage_is_complete() {
        let c = catalog();
        let mut seen = vec![false; c.site_region.len()];
        for item in &c.items {
            seen[item.site] = true;
        }
        assert!(seen.iter().all(|&s| s), "some site has no items");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Catalog::generate(&FacilityConfig::tiny(), &mut seeded_rng(5));
        let b = Catalog::generate(&FacilityConfig::tiny(), &mut seeded_rng(5));
        assert_eq!(a.items, b.items);
    }

    #[test]
    fn md_names_distinguish_site_and_class() {
        let c = catalog();
        assert!(c.instrument_name(0).starts_with("inst:"));
        assert!(c.instrument_group(0).starts_with("group:"));
    }
}
