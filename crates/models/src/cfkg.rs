//! CFKG — collaborative filtering on the unified knowledge graph (Ai et
//! al. 2018), regularization-based baseline.
//! audit: module unwrap — embedding rows are indexed by ids bounded at CKG
//! construction; the model parity/unit tests cover every lookup path.
//!
//! CFKG embeds the *unified* graph — user behaviors and item knowledge
//! together — with TransE: every triple `(h, r, t)`, including the
//! `(user, Interact, item)` triples, should satisfy `e_h + e_r ≈ e_t`.
//! Recommendation scores rank items by `−‖e_u + e_interact − e_v‖²`.
//!
//! The entity matrix enters each tape as a gather leaf over the batch's
//! head/tail/corrupt-tail union, so its gradient is row-sparse and lazy
//! Adam steps only the touched rows; the (small) relation table stays a
//! dense leaf.

use crate::common::{union_locals, ModelConfig, TrainContext};
use crate::replica::{batch_rng, pooled_map, MACRO_WIDTH};
use crate::Recommender;
use facility_autograd::{fold_grads_ordered, Adam, Grad, ParamId, ParamStore, Tape};
use facility_ckpt::{CkptError, ModelState};
use facility_kg::sampling::sample_kg_batch;
use facility_kg::Id;
use facility_linalg::{init, seeded_rng, Matrix};
use rand::rngs::StdRng;
use rand::RngCore;

/// One worker's output for a micro-batch: the per-parameter gradients in
/// application order, and the batch loss.
type BatchOut = (Vec<(ParamId, Grad)>, f32);
use std::sync::Arc;

/// The CFKG model.
pub struct Cfkg {
    store: ParamStore,
    adam: Adam,
    ent_emb: ParamId,
    rel_emb: ParamId,
    config: ModelConfig,
    margin: f32,
    n_users: usize,
    n_items: usize,
    /// Cached `e_u + e_interact` per user.
    cached_query: Option<Matrix>,
    /// Cached item entity embeddings.
    cached_items: Option<Matrix>,
}

impl Cfkg {
    /// Initialize from the training context.
    pub fn new(ctx: &TrainContext<'_>, config: &ModelConfig) -> Self {
        let mut rng = seeded_rng(config.seed);
        let d = config.embed_dim;
        let n_ent = ctx.ckg.n_entities();
        let n_rel = ctx.ckg.n_relations_with_inverse();
        let mut store = ParamStore::new();
        let ent_emb = store.add("ent_emb", init::xavier_uniform(n_ent, d, &mut rng));
        let rel_emb = store.add("rel_emb", init::xavier_uniform(n_rel, d, &mut rng));
        let adam = Adam::default_for(&store, config.lr);
        Self {
            store,
            adam,
            ent_emb,
            rel_emb,
            config: config.clone(),
            margin: 1.0,
            n_users: ctx.inter.n_users,
            n_items: ctx.inter.n_items,
            cached_query: None,
            cached_items: None,
        }
    }

    /// Replica macro-step arm (see `crate::replica`): `MACRO_WIDTH`
    /// micro-batches per optimizer step, each sampled from its own RNG
    /// stream and taped against the frozen snapshot on a pool worker,
    /// gradients folded in batch order and applied once. Identical for
    /// every replica count ≥ 1.
    fn train_epoch_replicated(&mut self, ctx: &TrainContext<'_>, rng: &mut StdRng) -> f32 {
        let threads = self.config.replicas.max(1);
        let n_batches = ctx.batches_per_epoch(self.config.batch_size);
        let stream_base = rng.next_u64();
        let batch_size = self.config.batch_size;
        let (l2, margin) = (self.config.l2, self.margin);
        let (ent_emb, rel_emb) = (self.ent_emb, self.rel_emb);
        let mut total = 0.0;
        for start in (0..n_batches).step_by(MACRO_WIDTH) {
            let end = (start + MACRO_WIDTH).min(n_batches);
            let prepared: Vec<Option<KgPrep>> = (start..end)
                .map(|idx| {
                    let mut brng = batch_rng(stream_base, idx as u64);
                    let batch = sample_kg_batch(ctx.ckg, batch_size, &mut brng);
                    if batch.is_empty() {
                        return None;
                    }
                    let heads: Vec<usize> = batch.iter().map(|s| s.head as usize).collect();
                    let rels: Vec<usize> = batch.iter().map(|s| s.rel as usize).collect();
                    let tails: Vec<usize> = batch.iter().map(|s| s.tail as usize).collect();
                    let negs: Vec<usize> = batch.iter().map(|s| s.neg_tail as usize).collect();
                    let (union, locals) = union_locals(&[&heads, &tails, &negs]);
                    Some(KgPrep { n: batch.len(), rels, union, locals })
                })
                .collect();
            if prepared.iter().all(Option::is_none) {
                continue;
            }
            let mut need: Vec<usize> =
                prepared.iter().flatten().flat_map(|p| p.union.iter().copied()).collect();
            need.sort_unstable();
            need.dedup();
            self.store.sync_rows(&mut self.adam, ent_emb, &need);

            let frozen: &ParamStore = &self.store;
            let mut units = vec![(); threads];
            let outs: Vec<Option<BatchOut>> =
                pooled_map(&mut units, prepared, |_unit, _slot, p: Option<KgPrep>| {
                    let p = p?;
                    let mut t = Tape::new();
                    let eemb = t.gather_leaf(frozen.value(ent_emb), Arc::new(p.union));
                    let remb = t.leaf(frozen.value(rel_emb).clone());
                    let h = t.gather_rows(eemb, &p.locals[0]);
                    let r = t.gather_rows(remb, &p.rels);
                    let tl = t.gather_rows(eemb, &p.locals[1]);
                    let ng = t.gather_rows(eemb, &p.locals[2]);
                    let hr = t.add(h, r);
                    let pos_diff = t.sub(hr, tl);
                    let neg_diff = t.sub(hr, ng);
                    let f_pos = t.rowwise_norm_sq(pos_diff);
                    let f_neg = t.rowwise_norm_sq(neg_diff);
                    let gap = t.sub(f_pos, f_neg);
                    let shifted = t.add_scalar(gap, margin);
                    let hinge = t.relu(shifted);
                    let s = t.sum_all(hinge);
                    let main = t.scale(s, 1.0 / p.n as f32);
                    let re = t.frobenius_sq(h);
                    let rr = t.frobenius_sq(r);
                    let reg0 = t.add(re, rr);
                    let reg = t.scale(reg0, l2 / p.n as f32);
                    let loss = t.add(main, reg);
                    let loss_val = t.value(loss)[(0, 0)];
                    t.backward(loss);
                    let mut grads: Vec<(ParamId, Grad)> = Vec::new();
                    if let Some(g) = t.take_sparse_grad(eemb) {
                        grads.push((ent_emb, Grad::Sparse(g)));
                    }
                    if let Some(g) = t.take_grad(remb) {
                        grads.push((rel_emb, Grad::Dense(g)));
                    }
                    Some((grads, loss_val))
                });
            let mut parts: Vec<Vec<(ParamId, Grad)>> = Vec::new();
            for (grads, loss) in outs.into_iter().flatten() {
                total += loss;
                parts.push(grads);
            }
            let folded = fold_grads_ordered(&parts, 1.0 / parts.len() as f32);
            self.store.apply(&mut self.adam, &folded);
        }
        self.store.sync_all(&mut self.adam, self.ent_emb);
        self.cached_query = None;
        self.cached_items = None;
        total / n_batches as f32
    }
}

/// One prepared micro-batch: TransE samples remapped to union-local ids.
struct KgPrep {
    n: usize,
    rels: Vec<usize>,
    union: Vec<usize>,
    locals: Vec<Vec<usize>>,
}

impl Recommender for Cfkg {
    fn name(&self) -> String {
        "CFKG".into()
    }

    fn train_epoch(&mut self, ctx: &TrainContext<'_>, rng: &mut StdRng) -> f32 {
        // The unified graph's canonical triples include the Interact
        // triples, so TransE over `sample_kg_batch` trains both behaviour
        // and knowledge — exactly CFKG's design.
        if self.config.replicas >= 1 {
            return self.train_epoch_replicated(ctx, rng);
        }
        let n_batches = ctx.batches_per_epoch(self.config.batch_size);
        let mut total = 0.0;
        for _ in 0..n_batches {
            let batch = sample_kg_batch(ctx.ckg, self.config.batch_size, rng);
            if batch.is_empty() {
                return 0.0;
            }
            let heads: Vec<usize> = batch.iter().map(|s| s.head as usize).collect();
            let rels: Vec<usize> = batch.iter().map(|s| s.rel as usize).collect();
            let tails: Vec<usize> = batch.iter().map(|s| s.tail as usize).collect();
            let negs: Vec<usize> = batch.iter().map(|s| s.neg_tail as usize).collect();
            // One gather leaf over the entity union; the three loss
            // gathers index the union rows by local id.
            let (union, locals) = union_locals(&[&heads, &tails, &negs]);
            self.store.sync_rows(&mut self.adam, self.ent_emb, &union);

            let mut t = Tape::new();
            let eemb = t.gather_leaf(self.store.value(self.ent_emb), Arc::new(union));
            let remb = t.leaf(self.store.value(self.rel_emb).clone());
            let h = t.gather_rows(eemb, &locals[0]);
            let r = t.gather_rows(remb, &rels);
            let tl = t.gather_rows(eemb, &locals[1]);
            let ng = t.gather_rows(eemb, &locals[2]);
            let hr = t.add(h, r);
            let pos_diff = t.sub(hr, tl);
            let neg_diff = t.sub(hr, ng);
            let f_pos = t.rowwise_norm_sq(pos_diff);
            let f_neg = t.rowwise_norm_sq(neg_diff);
            let gap = t.sub(f_pos, f_neg);
            let shifted = t.add_scalar(gap, self.margin);
            let hinge = t.relu(shifted);
            let s = t.sum_all(hinge);
            let main = t.scale(s, 1.0 / batch.len() as f32);
            let re = t.frobenius_sq(h);
            let rr = t.frobenius_sq(r);
            let reg0 = t.add(re, rr);
            let reg = t.scale(reg0, self.config.l2 / batch.len() as f32);
            let loss = t.add(main, reg);
            total += t.value(loss)[(0, 0)];
            t.backward(loss);
            let mut grads: Vec<(ParamId, Grad)> = Vec::new();
            if let Some(g) = t.take_sparse_grad(eemb) {
                grads.push((self.ent_emb, Grad::Sparse(g)));
            }
            if let Some(g) = t.take_grad(remb) {
                grads.push((self.rel_emb, Grad::Dense(g)));
            }
            self.store.apply(&mut self.adam, &grads);
        }
        // Catch every deferred entity row up before eval/checkpointing
        // reads the matrix directly.
        self.store.sync_all(&mut self.adam, self.ent_emb);
        self.cached_query = None;
        self.cached_items = None;
        total / n_batches as f32
    }

    fn prepare_eval(&mut self, ctx: &TrainContext<'_>) {
        let ent = self.store.value(self.ent_emb);
        let interact = self.store.value(self.rel_emb).gather_rows(&[0]); // Interact = relation 0
        let user_rows: Vec<usize> = (0..self.n_users).collect();
        let item_rows: Vec<usize> =
            (0..self.n_items).map(|i| ctx.ckg.item_entity(i as Id)).collect();
        self.cached_query = Some(ent.gather_rows(&user_rows).add_row_broadcast(&interact));
        self.cached_items = Some(ent.gather_rows(&item_rows));
    }

    fn score_items(&self, user: Id) -> Vec<f32> {
        let q = self.cached_query.as_ref().expect("prepare_eval not called");
        let items = self.cached_items.as_ref().expect("prepare_eval not called");
        let u = q.row(user as usize);
        items
            .iter_rows()
            .map(|v| {
                let mut d = 0.0;
                for (a, b) in u.iter().zip(v) {
                    let x = a - b;
                    d += x * x;
                }
                -d
            })
            .collect()
    }

    fn num_parameters(&self) -> usize {
        self.store.num_scalars()
    }

    fn save_state(&self) -> ModelState {
        ModelState::capture(&self.store, &self.adam)
    }

    fn load_state(&mut self, state: &ModelState) -> Result<(), CkptError> {
        state.restore(&mut self.store, &mut self.adam)?;
        self.cached_query = None;
        self.cached_items = None;
        Ok(())
    }

    fn scale_lr(&mut self, factor: f32) {
        self.adam.lr *= factor;
    }

    fn replicas(&self) -> usize {
        self.config.replicas
    }

    fn params_finite(&mut self) -> bool {
        self.store.touched_finite()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::{auc, toy_world};

    #[test]
    fn cfkg_learns_toy_world() {
        let (inter, ckg) = toy_world();
        let ctx = TrainContext { inter: &inter, ckg: &ckg };
        let mut model = Cfkg::new(&ctx, &ModelConfig::fast());
        let mut rng = seeded_rng(1);
        let first = model.train_epoch(&ctx, &mut rng);
        let mut last = first;
        for _ in 0..60 {
            last = model.train_epoch(&ctx, &mut rng);
        }
        assert!(last < first, "CFKG loss should fall: {first} -> {last}");
        model.prepare_eval(&ctx);
        let a = auc(&model, &inter);
        assert!(a > 0.65, "CFKG AUC {a}");
    }

    #[test]
    fn scores_are_negative_distances() {
        let (inter, ckg) = toy_world();
        let ctx = TrainContext { inter: &inter, ckg: &ckg };
        let mut model = Cfkg::new(&ctx, &ModelConfig::fast());
        model.prepare_eval(&ctx);
        let scores = model.score_items(0);
        assert!(scores.iter().all(|&s| s <= 0.0), "TransE scores are -distance²");
    }
}
