//! Shared TransR machinery (paper Section V-A, Eqs. 1–2).
//!
//! audit: module unwrap — embedding rows are indexed by ids bounded at CKG
//! construction; the model parity/unit tests cover every lookup path.
//! TransR projects entities from the `d`-dimensional entity space into
//! each relation's `k`-dimensional space via a per-relation matrix `W_r`,
//! and scores a triple by `‖W_r e_h + e_r − W_r e_t‖²` (lower = more
//! plausible). Two things are built on it here:
//!
//! * [`margin_loss`] — the trainable loss `L₁` (Eq. 2), used by CKE and
//!   CKAT's embedding layer;
//! * [`attention_scores`] — the knowledge-aware attention
//!   `f_a(h,r,t) = (W_r e_t)ᵀ tanh(W_r e_h + e_r)` normalized per
//!   neighborhood (Eqs. 4–5), computed forward-only over the whole CKG.
//!   Following the reference KGAT implementation this model family
//!   derives from, attention weights are refreshed once per epoch and
//!   treated as constants inside each mini-batch; the attention
//!   parameters themselves learn through `L₁`.

use facility_autograd::{Tape, Var};
use facility_kg::sampling::KgSample;
use facility_kg::Ckg;
use facility_linalg::{kernels, Matrix};
use rayon::prelude::*;

/// Group `batch` indices by relation id. Returns `(rel, indices)` pairs
/// for non-empty groups.
fn group_by_relation(batch: &[KgSample], n_rel: usize) -> Vec<(usize, Vec<usize>)> {
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); n_rel];
    for (i, s) in batch.iter().enumerate() {
        groups[s.rel as usize].push(i);
    }
    groups.into_iter().enumerate().filter(|(_, g)| !g.is_empty()).collect()
}

/// Build the TransR margin loss (Eq. 2) onto `tape`.
///
/// * `ent` — entity embedding leaf, `(n_entities × d)`;
/// * `rel_emb` — relation embedding leaf, `(n_rel × k)`;
/// * `rel_proj` — stacked projection blocks, `(n_rel·d × k)`; relation
///   `r`'s matrix `W_r` is rows `r·d .. (r+1)·d`.
///
/// Returns the `1 × 1` mean hinge loss over the batch.
#[allow(clippy::too_many_arguments)] // mirrors the mathematical arity of Eq. 2
pub fn margin_loss(
    tape: &mut Tape,
    ent: Var,
    rel_emb: Var,
    rel_proj: Var,
    d: usize,
    n_rel: usize,
    batch: &[KgSample],
    margin: f32,
) -> Var {
    assert!(!batch.is_empty(), "margin_loss: empty batch");
    let mut total: Option<Var> = None;
    for (r, idx) in group_by_relation(batch, n_rel) {
        let heads: Vec<usize> = idx.iter().map(|&i| batch[i].head as usize).collect();
        let tails: Vec<usize> = idx.iter().map(|&i| batch[i].tail as usize).collect();
        let negs: Vec<usize> = idx.iter().map(|&i| batch[i].neg_tail as usize).collect();

        let wr_rows: Vec<usize> = (r * d..(r + 1) * d).collect();
        let wr = tape.gather_rows(rel_proj, &wr_rows); // (d × k)
        let er = tape.gather_rows(rel_emb, &[r]); // (1 × k)

        let eh = tape.gather_rows(ent, &heads);
        let et = tape.gather_rows(ent, &tails);
        let en = tape.gather_rows(ent, &negs);
        let hp = tape.matmul(eh, wr);
        let tp = tape.matmul(et, wr);
        let np = tape.matmul(en, wr);

        let h_plus_r = tape.add_broadcast_row(hp, er);
        let pos_diff = tape.sub(h_plus_r, tp);
        let neg_diff = tape.sub(h_plus_r, np);
        let f_pos = tape.rowwise_norm_sq(pos_diff);
        let f_neg = tape.rowwise_norm_sq(neg_diff);
        let gap = tape.sub(f_pos, f_neg);
        let shifted = tape.add_scalar(gap, margin);
        let hinge = tape.relu(shifted);
        let s = tape.sum_all(hinge);
        total = Some(match total {
            Some(acc) => tape.add(acc, s),
            None => s,
        });
    }
    let total = total.expect("at least one non-empty group");
    tape.scale(total, 1.0 / batch.len() as f32)
}

/// Compute the knowledge-aware attention weight of every CKG edge
/// (Eqs. 4–5), forward-only.
///
/// `ent` is `(n_entities × d)`, `rel_emb` `(n_rel × k)`, `rel_proj`
/// `(n_rel·d × k)`. Returns one weight per edge in CSR order; each head's
/// neighborhood sums to 1.
pub fn attention_scores(ckg: &Ckg, ent: &Matrix, rel_emb: &Matrix, rel_proj: &Matrix) -> Vec<f32> {
    let d = ent.cols();
    let k = rel_emb.cols();
    let n_edges = ckg.n_edges();
    let mut scores = vec![0.0f32; n_edges];

    // Per-relation fused projection, parallel across relations. `W_r` is
    // the contiguous row block `r·d .. (r+1)·d` of `rel_proj`, so each
    // edge needs only two 1×d·(d×k) mat-vecs — no gathered intermediate
    // matrices. Edges within a group arrive in CSR order, so consecutive
    // edges often share a head; the head projection is reused until the
    // head changes.
    let groups = ckg.edges_by_relation();
    let per_rel: Vec<(usize, Vec<f32>)> = groups
        .par_iter()
        .enumerate()
        .filter(|(_, g)| !g.is_empty())
        .map(|(r, g)| {
            let wr = &rel_proj.as_slice()[r * d * k..(r + 1) * d * k];
            let er = rel_emb.row(r);
            let ent_s = ent.as_slice();
            let mut hp = vec![0.0f32; k];
            let mut tp = vec![0.0f32; k];
            let mut last_head = usize::MAX;
            let vals: Vec<f32> = g
                .iter()
                .map(|&e| {
                    let h = ckg.heads[e] as usize;
                    let t = ckg.tails[e] as usize;
                    if h != last_head {
                        hp.fill(0.0);
                        kernels::matmul_rows_into(&ent_s[h * d..(h + 1) * d], d, wr, k, &mut hp);
                        last_head = h;
                    }
                    tp.fill(0.0);
                    kernels::matmul_rows_into(&ent_s[t * d..(t + 1) * d], d, wr, k, &mut tp);
                    // f_a(h,r,t) = (W_r e_t)ᵀ tanh(W_r e_h + e_r), one pass.
                    kernels::fused_tanh_dot(&tp, &hp, er)
                })
                .collect();
            (r, vals)
        })
        .collect();
    for (r, vals) in per_rel {
        for (&e, v) in groups[r].iter().zip(vals) {
            scores[e] = v;
        }
    }

    // Softmax per head neighborhood (CSR segments).
    kernels::segment_softmax_in_place(&mut scores, &ckg.offsets);
    scores
}

/// Uniform attention — `1/|N_h|` per edge — for the "w/o Att" ablation
/// (Table IV).
pub fn uniform_scores(ckg: &Ckg) -> Vec<f32> {
    let mut scores = vec![0.0f32; ckg.n_edges()];
    for w in ckg.offsets.windows(2) {
        let n = (w[1] - w[0]) as f32;
        for s in &mut scores[w[0]..w[1]] {
            *s = 1.0 / n;
        }
    }
    scores
}

/// Forward-only TransR plausibility `‖W_r e_h + e_r − W_r e_t‖²` of one
/// triple (used in tests and diagnostics).
pub fn triple_score(
    ent: &Matrix,
    rel_emb: &Matrix,
    rel_proj: &Matrix,
    d: usize,
    h: usize,
    r: usize,
    t: usize,
) -> f32 {
    let k = rel_emb.cols();
    let wr_rows: Vec<usize> = (r * d..(r + 1) * d).collect();
    let wr = rel_proj.gather_rows(&wr_rows);
    let hp = ent.gather_rows(&[h]).matmul(&wr);
    let tp = ent.gather_rows(&[t]).matmul(&wr);
    let mut acc = 0.0;
    for c in 0..k {
        let v = hp[(0, c)] + rel_emb[(r, c)] - tp[(0, c)];
        acc += v * v;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use facility_autograd::{Adam, ParamStore};
    use facility_kg::sampling::sample_kg_batch;
    use facility_kg::{CkgBuilder, KnowledgeSource, SourceMask};
    use facility_linalg::{init, seeded_rng};

    fn toy_ckg() -> Ckg {
        let mut b = CkgBuilder::new(3, 4);
        b.add_interactions(&[(0, 0), (1, 1), (2, 2), (0, 3)]);
        for i in 0..4u32 {
            b.add_item_attribute(KnowledgeSource::Dkg, "hasDataType", i, format!("t:{}", i % 2));
        }
        b.build(SourceMask::all())
    }

    #[test]
    fn margin_loss_decreases_under_training() {
        let ckg = toy_ckg();
        let (d, k) = (8, 8);
        let n_rel = ckg.n_relations_with_inverse();
        let mut rng = seeded_rng(3);
        let mut store = ParamStore::new();
        let ent = store.add("ent", init::xavier_uniform(ckg.n_entities(), d, &mut rng));
        let rel = store.add("rel", init::xavier_uniform(n_rel, k, &mut rng));
        let proj = store.add("proj", init::xavier_uniform(n_rel * d, k, &mut rng));
        let mut adam = Adam::default_for(&store, 0.01);

        let mut first = None;
        let mut last = 0.0;
        for _ in 0..60 {
            let batch = sample_kg_batch(&ckg, 32, &mut rng);
            let mut t = Tape::new();
            let ev = t.leaf(store.value(ent).clone());
            let rv = t.leaf(store.value(rel).clone());
            let pv = t.leaf(store.value(proj).clone());
            let loss = margin_loss(&mut t, ev, rv, pv, d, n_rel, &batch, 1.0);
            last = t.value(loss)[(0, 0)];
            first.get_or_insert(last);
            t.backward(loss);
            let grads: Vec<_> = [(ent, ev), (rel, rv), (proj, pv)]
                .into_iter()
                .filter_map(|(p, v)| t.take_grad(v).map(|g| (p, g.into())))
                .collect();
            store.apply(&mut adam, &grads);
        }
        let first = first.unwrap();
        assert!(last < first, "TransR loss did not decrease: {first} -> {last}");
    }

    #[test]
    fn trained_transr_ranks_true_triples_above_corrupted() {
        let ckg = toy_ckg();
        let (d, k) = (8, 8);
        let n_rel = ckg.n_relations_with_inverse();
        let mut rng = seeded_rng(4);
        let mut store = ParamStore::new();
        let ent = store.add("ent", init::xavier_uniform(ckg.n_entities(), d, &mut rng));
        let rel = store.add("rel", init::xavier_uniform(n_rel, k, &mut rng));
        let proj = store.add("proj", init::xavier_uniform(n_rel * d, k, &mut rng));
        let mut adam = Adam::default_for(&store, 0.02);
        for _ in 0..150 {
            let batch = sample_kg_batch(&ckg, 64, &mut rng);
            let mut t = Tape::new();
            let ev = t.leaf(store.value(ent).clone());
            let rv = t.leaf(store.value(rel).clone());
            let pv = t.leaf(store.value(proj).clone());
            let loss = margin_loss(&mut t, ev, rv, pv, d, n_rel, &batch, 1.0);
            t.backward(loss);
            let grads: Vec<_> = [(ent, ev), (rel, rv), (proj, pv)]
                .into_iter()
                .filter_map(|(p, v)| t.take_grad(v).map(|g| (p, g.into())))
                .collect();
            store.apply(&mut adam, &grads);
        }
        // True triples should now score lower (more plausible) than
        // corruptions on average.
        let mut wins = 0;
        let mut total = 0;
        for s in sample_kg_batch(&ckg, 200, &mut seeded_rng(9)) {
            let pos = triple_score(
                store.value(ent),
                store.value(rel),
                store.value(proj),
                d,
                s.head as usize,
                s.rel as usize,
                s.tail as usize,
            );
            let neg = triple_score(
                store.value(ent),
                store.value(rel),
                store.value(proj),
                d,
                s.head as usize,
                s.rel as usize,
                s.neg_tail as usize,
            );
            if pos < neg {
                wins += 1;
            }
            total += 1;
        }
        assert!(
            wins * 10 >= total * 7,
            "trained TransR should rank >=70% of true triples better: {wins}/{total}"
        );
    }

    #[test]
    fn attention_sums_to_one_per_neighborhood() {
        let ckg = toy_ckg();
        let (d, k) = (6, 6);
        let mut rng = seeded_rng(5);
        let ent = init::xavier_uniform(ckg.n_entities(), d, &mut rng);
        let rel = init::xavier_uniform(ckg.n_relations_with_inverse(), k, &mut rng);
        let proj = init::xavier_uniform(ckg.n_relations_with_inverse() * d, k, &mut rng);
        let att = attention_scores(&ckg, &ent, &rel, &proj);
        assert_eq!(att.len(), ckg.n_edges());
        for w in ckg.offsets.windows(2) {
            if w[1] > w[0] {
                let s: f32 = att[w[0]..w[1]].iter().sum();
                assert!((s - 1.0).abs() < 1e-4, "neighborhood sum {s}");
            }
        }
        assert!(att.iter().all(|a| a.is_finite() && *a >= 0.0));
    }

    #[test]
    fn uniform_scores_are_inverse_degree() {
        let ckg = toy_ckg();
        let att = uniform_scores(&ckg);
        for e in 0..ckg.n_entities() {
            let deg = ckg.degree(e);
            for &a in &att[ckg.offsets[e]..ckg.offsets[e + 1]] {
                assert!((a - 1.0 / deg as f32).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn attention_differs_from_uniform_for_random_embeddings() {
        let ckg = toy_ckg();
        let mut rng = seeded_rng(6);
        let d = 6;
        let ent = init::xavier_uniform(ckg.n_entities(), d, &mut rng);
        let rel = init::xavier_uniform(ckg.n_relations_with_inverse(), d, &mut rng);
        let proj = init::xavier_uniform(ckg.n_relations_with_inverse() * d, d, &mut rng);
        let att = attention_scores(&ckg, &ent, &rel, &proj);
        let uni = uniform_scores(&ckg);
        let diff: f32 = att.iter().zip(&uni).map(|(a, u)| (a - u).abs()).sum();
        assert!(diff > 1e-3, "attention should discriminate neighbors");
    }
}
