//! Per-phase instrumentation for one training epoch.
//!
//! Propagation-based models spend their time in four places — negative
//! sampling, the once-per-epoch attention refresh, the propagation
//! forward pass, and backward/optimizer work — and the batch-local
//! subgraph engine changes the balance drastically. [`EpochProfile`]
//! captures wall time and work counters per phase so the bench harness
//! (`epoch_profile`) and the trainer's [`EpochLog`] can record a perf
//! trajectory across PRs.
//!
//! [`EpochLog`]: https://docs.rs/facility-eval

/// Wall-time and work counters for one epoch of training.
///
/// Times are nanoseconds. FLOP counts are *estimates* from closed-form
/// per-op formulas (dense matmul `2·m·k·n`, elementwise `m·n`, …), good
/// for relative comparisons rather than absolute hardware utilization.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EpochProfile {
    /// Time drawing BPR and TransR batches.
    pub sampling_ns: u64,
    /// Time refreshing per-edge attention weights (once per epoch).
    pub attention_ns: u64,
    /// Time building forward tapes (propagation + losses).
    pub forward_ns: u64,
    /// Time in backward passes (gradient computation only).
    pub backward_ns: u64,
    /// Time in optimizer updates (`ParamStore::apply` + lazy-row syncs).
    pub optimizer_ns: u64,
    /// Time spent building batch subgraphs, **summed across however many
    /// extraction workers ran** — the single prefetch thread on the
    /// legacy path, or every pool worker in replica mode. Extraction
    /// overlaps other work, so it is *not* part of
    /// [`EpochProfile::train_ns`]; the blocked portion shows up as
    /// [`EpochProfile::extract_wait_ns`].
    pub extract_ns: u64,
    /// Time the main training thread blocked on extraction: waiting for
    /// the next prefetched subgraph on the legacy path, or for the
    /// macro-step's parallel prepare phase in replica mode.
    pub extract_wait_ns: u64,
    /// Time folding per-replica gradients into the macro-step gradient
    /// (main thread, replica mode only; 0 on the per-batch paths).
    pub reduce_ns: u64,
    /// End-to-end wall-clock time of the `train_epoch` call. Unlike
    /// [`EpochProfile::train_ns`] — a *sum of component times*, which
    /// under data-parallel replicas aggregates across workers and can
    /// exceed real time — this is the honest speedup denominator.
    pub wall_ns: u64,
    /// Replica workers used for this epoch (0 = legacy per-batch path).
    pub replicas: u64,
    /// Time spent in evaluation, when the caller evaluated this epoch
    /// (filled by the trainer, not the model).
    pub eval_ns: u64,
    /// Estimated forward-pass FLOPs over the whole epoch.
    pub forward_flops: u64,
    /// Embedding rows placed on the propagation tape, summed over batches.
    pub gathered_rows: u64,
    /// CKG edges propagated, summed over batches.
    pub gathered_edges: u64,
    /// Rows the full-graph path would have used (`n_entities · batches`).
    pub full_rows: u64,
    /// Edges the full-graph path would have used (`n_edges · batches`).
    pub full_edges: u64,
    /// Number of mini-batches this epoch.
    pub batches: u64,
}

impl EpochProfile {
    /// Fraction of full-graph rows actually gathered (1.0 when the model
    /// propagates over the whole graph; < 1.0 under batch-local mode).
    pub fn row_fraction(&self) -> f64 {
        if self.full_rows == 0 {
            1.0
        } else {
            self.gathered_rows as f64 / self.full_rows as f64
        }
    }

    /// Fraction of full-graph edges actually propagated.
    pub fn edge_fraction(&self) -> f64 {
        if self.full_edges == 0 {
            1.0
        } else {
            self.gathered_edges as f64 / self.full_edges as f64
        }
    }

    /// Total instrumented wall time (training phases only): sampling,
    /// attention refresh, forward, backward, optimizer, and any time
    /// blocked on subgraph prefetch. Overlapped extraction work
    /// ([`EpochProfile::extract_ns`]) is excluded — it runs off the
    /// critical path.
    pub fn train_ns(&self) -> u64 {
        self.sampling_ns
            + self.attention_ns
            + self.forward_ns
            + self.backward_ns
            + self.optimizer_ns
            + self.extract_wait_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_degrade_gracefully_on_empty_profiles() {
        let p = EpochProfile::default();
        assert_eq!(p.row_fraction(), 1.0);
        assert_eq!(p.edge_fraction(), 1.0);
        assert_eq!(p.train_ns(), 0);
    }

    #[test]
    fn fractions_reflect_counters() {
        let p = EpochProfile {
            gathered_rows: 25,
            full_rows: 100,
            gathered_edges: 10,
            full_edges: 40,
            ..Default::default()
        };
        assert_eq!(p.row_fraction(), 0.25);
        assert_eq!(p.edge_fraction(), 0.25);
    }

    #[test]
    fn train_ns_counts_wait_but_not_overlapped_extraction() {
        let p = EpochProfile {
            sampling_ns: 1,
            attention_ns: 2,
            forward_ns: 3,
            backward_ns: 4,
            optimizer_ns: 5,
            extract_ns: 1000,
            extract_wait_ns: 6,
            ..Default::default()
        };
        assert_eq!(p.train_ns(), 1 + 2 + 3 + 4 + 5 + 6);
    }
}
